#include "testing/reduce.h"

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "frontend/parser.h"
#include "ir/printer.h"
#include "support/diag.h"

namespace suifx::testing {

namespace {

// --- re-emission of a parsed program with edits applied --------------------
// Mirrors src/ir/printer.cc's concrete syntax (the printer/parser round trip
// is a tested fixed point), adding three edits the printer has no notion of:
// dropped statement subtrees, overridden param defaults, and overridden
// constant DO upper bounds. Unedited simple statements delegate to
// ir::to_string directly.

struct Edits {
  const ir::Stmt* drop = nullptr;                 // subtree to omit
  std::map<const ir::Variable*, long> params;     // param default overrides
  std::map<const ir::Stmt*, long> do_ub;          // constant DO ub overrides
};

std::string dims_str(const ir::Variable* v) {
  if (!v->is_array()) return "";
  std::string out = "[";
  for (size_t i = 0; i < v->dims.size(); ++i) {
    if (i > 0) out += ", ";
    const ir::Dim& d = v->dims[i];
    long lo = 0;
    if (!(ir::eval_const_with_params(d.lower, &lo) && lo == 1)) {
      out += ir::to_string(d.lower) + ":";
    }
    out += ir::to_string(d.upper);
  }
  return out + "]";
}

void emit_var_decl(const ir::Variable* v, std::ostringstream& os, int indent) {
  os << std::string(static_cast<size_t>(indent) * 2, ' ');
  if (v->kind == ir::VarKind::CommonMember) {
    os << "common " << v->common->name << " ";
    if (v->common_offset != 0) os << "@" << v->common_offset << " ";
  }
  os << ir::to_string(v->elem) << " " << v->name << dims_str(v);
  if (v->is_input) os << " input";
  os << ";\n";
}

void emit_body(const std::vector<ir::Stmt*>& body, const Edits& ed,
               std::ostringstream& os, int indent);

void emit_stmt(const ir::Stmt* s, const Edits& ed, std::ostringstream& os,
               int indent) {
  if (s == ed.drop) return;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (s->kind) {
    case ir::StmtKind::If:
      os << pad << "if (" << ir::to_string(s->cond) << ") {\n";
      emit_body(s->then_body, ed, os, indent + 1);
      if (!s->else_body.empty()) {
        os << pad << "} else {\n";
        emit_body(s->else_body, ed, os, indent + 1);
      }
      os << pad << "}\n";
      break;
    case ir::StmtKind::Do: {
      os << pad << "do " << s->ivar->name << " = " << ir::to_string(s->lb)
         << ", ";
      auto ub = ed.do_ub.find(s);
      if (ub != ed.do_ub.end()) {
        os << ub->second;
      } else {
        os << ir::to_string(s->ub);
      }
      long step = 0;
      if (!(ir::eval_const_with_params(s->step, &step) && step == 1)) {
        os << ", " << ir::to_string(s->step);
      }
      if (!s->label.empty()) os << " label " << s->label;
      os << " {\n";
      emit_body(s->body, ed, os, indent + 1);
      os << pad << "}\n";
      break;
    }
    default:
      os << ir::to_string(s, indent);
      break;
  }
}

void emit_body(const std::vector<ir::Stmt*>& body, const Edits& ed,
               std::ostringstream& os, int indent) {
  for (const ir::Stmt* s : body) emit_stmt(s, ed, os, indent);
}

/// Procedures still reachable from main through calls that survive the drop
/// edit — dead helpers are pruned from the emitted source.
std::set<const ir::Procedure*> reachable_procs(const ir::Program& prog,
                                               const Edits& ed) {
  std::set<const ir::Procedure*> seen;
  std::vector<const ir::Procedure*> work;
  if (prog.main() != nullptr) {
    seen.insert(prog.main());
    work.push_back(prog.main());
  }
  std::function<void(const ir::Stmt*)> visit = [&](const ir::Stmt* s) {
    if (s == ed.drop) return;
    if (s->kind == ir::StmtKind::Call && s->callee != nullptr &&
        seen.insert(s->callee).second) {
      work.push_back(s->callee);
    }
    for (const ir::Stmt* c : s->then_body) visit(c);
    for (const ir::Stmt* c : s->else_body) visit(c);
    for (const ir::Stmt* c : s->body) visit(c);
  };
  while (!work.empty()) {
    const ir::Procedure* p = work.back();
    work.pop_back();
    for (const ir::Stmt* s : p->body) visit(s);
  }
  return seen;
}

std::string emit_program(const ir::Program& prog, const Edits& ed) {
  std::ostringstream os;
  os << "program " << prog.name() << ";\n";
  for (const ir::Variable* v : prog.sym_params()) {
    auto it = ed.params.find(v);
    long val = it != ed.params.end() ? it->second : v->param_default;
    os << "param " << v->name << " = " << val << ";\n";
  }
  for (const ir::Variable* v : prog.globals()) {
    os << "global ";
    emit_var_decl(v, os, 0);
  }
  std::set<const ir::Procedure*> keep = reachable_procs(prog, ed);
  for (const ir::Procedure& p : prog.procedures()) {
    if (keep.count(&p) == 0) continue;
    os << "\nproc " << p.name << "(";
    for (size_t i = 0; i < p.formals.size(); ++i) {
      if (i > 0) os << ", ";
      const ir::Variable* f = p.formals[i];
      os << ir::to_string(f->elem) << " " << f->name << dims_str(f);
    }
    os << ") {\n";
    for (const ir::Variable* v : p.locals) emit_var_decl(v, os, 1);
    emit_body(p.body, ed, os, 1);
    os << "}\n";
  }
  return os.str();
}

std::unique_ptr<ir::Program> parse_quiet(const std::string& src) {
  Diag diag;
  return frontend::parse_program(src, diag);
}

/// All statements in reachable procedures, in deterministic pre-order.
std::vector<const ir::Stmt*> all_stmts(const ir::Program& prog) {
  std::vector<const ir::Stmt*> out;
  for (const ir::Procedure& p : prog.procedures()) {
    p.for_each([&](const ir::Stmt* s) { out.push_back(s); });
  }
  return out;
}

}  // namespace

ReduceResult reduce_source(const std::string& src, const FailPredicate& fails,
                           const ReduceOptions& opts) {
  ReduceResult out;
  out.source = src;
  {
    auto prog = parse_quiet(src);
    out.initial_statements = prog != nullptr ? prog->num_stmts() : 0;
    out.final_statements = out.initial_statements;
  }
  auto probe = [&](const std::string& candidate) {
    ++out.probes;
    return fails(candidate);
  };
  if (out.probes >= opts.max_probes || !probe(src)) return out;

  // Phase 1: delete statement subtrees to a greedy fixpoint. The statement
  // list is re-derived from a fresh parse after every accepted deletion (the
  // old pointers die with the old program); `idx` carries the scan position
  // across re-parses so each pass is one linear sweep.
  bool progress = true;
  while (progress && out.probes < opts.max_probes) {
    progress = false;
    size_t idx = 0;
    while (out.probes < opts.max_probes) {
      auto prog = parse_quiet(out.source);
      if (prog == nullptr) break;  // cannot happen: out.source parsed before
      std::vector<const ir::Stmt*> stmts = all_stmts(*prog);
      if (idx >= stmts.size()) break;
      Edits ed;
      ed.drop = stmts[idx];
      std::string candidate = emit_program(*prog, ed);
      if (probe(candidate)) {
        out.source = std::move(candidate);
        out.reduced = true;
        progress = true;  // idx now points at the next surviving statement
      } else {
        ++idx;
      }
    }
  }

  // Phase 2: halve param defaults while the failure persists.
  {
    auto prog = parse_quiet(out.source);
    if (prog != nullptr) {
      for (const ir::Variable* v : prog->sym_params()) {
        long val = v->param_default;
        Edits ed;
        while (val > 2 && out.probes < opts.max_probes) {
          ed.params[v] = val / 2;
          std::string candidate = emit_program(*prog, ed);
          if (!probe(candidate)) break;
          out.source = std::move(candidate);
          out.reduced = true;
          val /= 2;
        }
      }
    }
  }

  // Phase 3: halve constant DO upper bounds. Bounds are identified by the
  // loop's position in the statement pre-order, so a fresh parse per
  // accepted shrink keeps pointers valid.
  {
    bool more = true;
    while (more && out.probes < opts.max_probes) {
      more = false;
      auto prog = parse_quiet(out.source);
      if (prog == nullptr) break;
      for (const ir::Stmt* s : all_stmts(*prog)) {
        long ub = 0;
        if (s->kind != ir::StmtKind::Do ||
            !ir::eval_const_with_params(s->ub, &ub) || ub <= 2) {
          continue;
        }
        // Only literal bounds: halving an N-derived bound is phase 2's job.
        if (s->ub->kind != ir::ExprKind::IntConst) continue;
        if (out.probes >= opts.max_probes) break;
        Edits ed;
        ed.do_ub[s] = ub / 2;
        std::string candidate = emit_program(*prog, ed);
        if (probe(candidate)) {
          out.source = std::move(candidate);
          out.reduced = true;
          more = true;
          break;  // re-parse; statement pointers are stale now
        }
      }
    }
  }

  if (auto prog = parse_quiet(out.source)) {
    out.final_statements = prog->num_stmts();
  }
  return out;
}

}  // namespace suifx::testing
