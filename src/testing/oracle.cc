#include "testing/oracle.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "dynamic/dyndep.h"
#include "dynamic/profile.h"
#include "dynamic/specexec.h"
#include "dynamic/stagedexec.h"
#include "dynamic/validate.h"
#include "explorer/workbench.h"
#include "parallelizer/driver.h"
#include "parallelizer/speculate.h"
#include "simulator/smp.h"

namespace suifx::testing {

namespace {

/// Per-loop DynDep ignore sets, mirroring Guru::analyze exactly: compiler-
/// identified reductions and the loop's own index are transformable, so
/// their carried dependences are not evidence against the plan.
dynamic::DynDepAnalyzer::Options dyndep_options(
    const parallelizer::ParallelPlan& plan) {
  dynamic::DynDepAnalyzer::Options dd;
  for (const parallelizer::LoopPlan* lp : plan.ordered()) {
    std::set<const ir::Variable*> ignore;
    for (const auto& [v, vv] : lp->verdict.vars) {
      if (vv.cls == analysis::VarClass::Reduction ||
          vv.cls == analysis::VarClass::LoopIndex) {
        ignore.insert(v);
      }
    }
    if (!ignore.empty()) dd.ignore[lp->loop] = std::move(ignore);
  }
  return dd;
}

/// One instrumented sequential run. Returns false (and sets a PipelineError)
/// if the interpreter itself failed — generated programs are in-bounds by
/// construction, so a trap here is a harness bug worth surfacing, not a plan
/// violation.
bool instrumented_run(const ir::Program& prog, const OracleOptions& opts,
                      dynamic::DynDepAnalyzer& dd, OracleResult& out) {
  dynamic::Interpreter interp(prog);
  interp.set_inputs(opts.inputs);
  interp.add_hook(&dd);
  dynamic::RunResult rr = interp.run(opts.max_cost);
  if (!rr.ok) {
    out.violation = Property::PipelineError;
    out.detail = "instrumented run failed: " + rr.error;
    return false;
  }
  return true;
}

}  // namespace

const char* to_string(Property p) {
  switch (p) {
    case Property::None: return "none";
    case Property::PipelineError: return "pipeline-error";
    case Property::Soundness: return "soundness";
    case Property::Consistency: return "consistency";
    case Property::Determinism: return "determinism";
    case Property::Speculation: return "speculation";
    case Property::Staging: return "staging";
  }
  return "?";
}

namespace {

/// "first divergence at print 3: staged x vs serial y" (or a count
/// mismatch), shared by the Speculation and Staging legs.
std::string printed_diff(const std::vector<double>& got,
                         const std::vector<double>& want,
                         const char* got_name) {
  size_t n = std::min(got.size(), want.size());
  size_t at = n;
  for (size_t i = 0; i < n; ++i) {
    if (got[i] != want[i]) {
      at = i;
      break;
    }
  }
  char buf[160];
  if (at < n) {
    std::snprintf(buf, sizeof(buf),
                  "first divergence at print %zu: %s %.17g vs serial %.17g", at,
                  got_name, got[at], want[at]);
  } else {
    std::snprintf(buf, sizeof(buf), "print counts differ: %s %zu vs serial %zu",
                  got_name, got.size(), want.size());
  }
  return buf;
}

}  // namespace

OracleResult check_source(const std::string& src, const OracleOptions& opts) {
  OracleResult out;

  Diag diag;
  auto wb = explorer::Workbench::from_source(src, diag,
                                             analysis::LivenessMode::Full,
                                             /*enable_reductions=*/true,
                                             opts.alias_tier);
  if (wb == nullptr) {
    out.violation = Property::PipelineError;
    out.detail = "front end rejected the program:\n" + diag.str();
    return out;
  }
  const ir::Program& prog = wb->program();

  // --- Determinism: parallel memoized Driver vs serial Parallelizer. ------
  parallelizer::ParallelPlan plan = wb->plan();
  {
    parallelizer::ParallelPlan serial = wb->parallelizer().plan(prog);
    std::string sig_par = parallelizer::plan_signature(plan);
    std::string sig_ser = parallelizer::plan_signature(serial);
    if (sig_par != sig_ser) {
      out.violation = Property::Determinism;
      out.detail = "driver plan differs from serial plan\n--- driver:\n" +
                   sig_par + "--- serial:\n" + sig_ser;
      return out;
    }
    // The decision-provenance ledger is held to the same standard: the
    // causal record behind each verdict must not depend on worker count or
    // scheduling (docs/provenance.md).
    std::string led_par = parallelizer::ledger_signature(plan);
    std::string led_ser = parallelizer::ledger_signature(serial);
    if (led_par != led_ser) {
      out.violation = Property::Determinism;
      out.detail =
          "driver provenance ledger differs from serial ledger\n--- driver:\n" +
          led_par + "--- serial:\n" + led_ser;
      return out;
    }
  }

  // --- Optional injected dependence bug. ----------------------------------
  // Target selection is dynamic, not static: a statically rejected loop can
  // still be genuinely independent (e.g. a gather through an index array the
  // affine test cannot see through), and forcing such a loop parallel is
  // *correct* — no oracle should fire. The canary must pick a loop whose
  // carried dependence was actually observed on this input.
  if (opts.inject_dependence_bug) {
    dynamic::DynDepAnalyzer probe(dyndep_options(plan));  // monitors all loops
    if (!instrumented_run(prog, opts, probe, out)) return out;
    parallelizer::Assertions asserts;
    for (const parallelizer::LoopPlan* lp : plan.ordered()) {
      if (lp->parallelizable || lp->degraded || lp->verdict.has_io) continue;
      if (!probe.observed_carried(lp->loop)) continue;
      asserts.force_parallel.insert(lp->loop);
      out.injected = true;
      out.injected_loop = lp->loop->loop_name();
      break;
    }
    if (out.injected) plan = wb->plan(asserts);
  }

  out.loops = static_cast<int>(plan.loops.size());
  out.parallel = plan.num_parallel();
  for (const parallelizer::LoopPlan* lp : plan.ordered()) {
    if (lp->strategy == parallelizer::Strategy::Pipeline) ++out.pipeline_loops;
    if (lp->strategy == parallelizer::Strategy::Doacross) ++out.doacross_loops;
  }

  // --- Soundness: reverse-order execution of the chosen parallel loops. ---
  sim::SmpSimulator simulator(prog, wb->dataflow(), wb->regions());
  std::vector<const ir::Stmt*> chosen = simulator.outermost_parallel(plan);
  // Staged loops run concurrently but carry real dependences: they are
  // byte-identical through staging, not order-insensitive, so the
  // reverse-order validator only sees the proven-parallel subset.
  chosen.erase(std::remove_if(
                   chosen.begin(), chosen.end(),
                   [&](const ir::Stmt* l) { return !plan.is_parallel(l); }),
               chosen.end());
  dynamic::ValidationResult vr =
      dynamic::validate_plan(prog, chosen, opts.inputs, opts.rel_tolerance);
  if (!vr.ok) {
    bool interp_failed = vr.detail.rfind("forward run failed", 0) == 0 ||
                         vr.detail.rfind("reordered run failed", 0) == 0;
    out.violation = interp_failed ? Property::PipelineError : Property::Soundness;
    out.detail = vr.detail;
    return out;
  }

  // --- Consistency: no parallelizable loop shows a carried flow dep. ------
  dynamic::DynDepAnalyzer::Options dd = dyndep_options(plan);
  for (const parallelizer::LoopPlan* lp : plan.ordered()) {
    if (lp->parallelizable) dd.monitor.insert(lp->loop);
  }
  if (!dd.monitor.empty()) {  // empty monitor set means "all loops"
    dynamic::DynDepAnalyzer dyndep(dd);
    if (!instrumented_run(prog, opts, dyndep, out)) return out;
    for (const parallelizer::LoopPlan* lp : plan.ordered()) {
      if (!lp->parallelizable || !dyndep.observed_carried(lp->loop)) continue;
      out.violation = Property::Consistency;
      out.detail = "loop " + lp->loop->loop_name() +
                   " is statically parallelizable but carries a dynamic flow "
                   "dependence on:";
      for (const ir::Variable* v : dyndep.result(lp->loop).dep_vars) {
        out.detail += " " + v->name;
      }
      return out;
    }
  }

  // --- Speculation: executive output ≡ serial, commit and rollback legs. --
  // Promote on the evidence of a fresh all-loops instrumented run (whose
  // printed output doubles as the serial baseline), then require the
  // speculative executive to reproduce it exactly — once letting clean
  // attempts commit, once forcing every attempt to misspeculate so the
  // rollback path re-executes serially. Skipped under an injected bug: the
  // canary mutates the plan, and speculation's contract is defined against
  // the honest one.
  if (opts.check_speculation && !out.injected) {
    dynamic::DynDepAnalyzer dyn(dyndep_options(plan));  // monitors all loops
    dynamic::LoopProfiler prof;
    dynamic::RunResult baseline;
    {
      dynamic::Interpreter interp(prog);
      interp.set_inputs(opts.inputs);
      interp.add_hook(&dyn);
      interp.add_hook(&prof);
      baseline = interp.run(opts.max_cost);
      if (!baseline.ok) {
        out.violation = Property::PipelineError;
        out.detail = "speculation evidence run failed: " + baseline.error;
        return out;
      }
    }
    parallelizer::ParallelPlan spec_plan = plan;
    parallelizer::SpeculationPlanner planner;
    std::vector<parallelizer::SpecDecision> decisions = planner.promote(
        spec_plan,
        dynamic::gather_evidence(
            parallelizer::SpeculationPlanner::candidates(spec_plan), dyn, prof));
    for (const parallelizer::SpecDecision& d : decisions) {
      if (d.promoted) ++out.speculative;
    }
    if (out.speculative > 0) {
      dynamic::SpecExecOptions so;
      so.workers = opts.spec_workers;
      so.max_cost = opts.max_cost;
      for (int leg = 0; leg < 2; ++leg) {
        so.force_misspeculation = leg == 1;
        const char* name = leg == 0 ? "commit" : "forced-rollback";
        dynamic::SpecRunResult sr =
            dynamic::run_speculative(prog, spec_plan, opts.inputs, so);
        if (!sr.run.ok) {
          out.violation = Property::Speculation;
          out.detail = std::string(name) +
                       " leg failed where the serial run succeeded: " +
                       sr.run.error;
          return out;
        }
        if (leg == 1 && sr.commits() != 0) {
          out.violation = Property::Speculation;
          out.detail = "forced misspeculation still committed " +
                       std::to_string(sr.commits()) + " attempt(s)";
          return out;
        }
        if (sr.run.printed != baseline.printed) {
          out.violation = Property::Speculation;
          out.detail = std::string(name) +
                       " leg output diverges from the serial run; " +
                       printed_diff(sr.run.printed, baseline.printed,
                                    "speculative");
          return out;
        }
      }
    }
  }

  // --- Staging: staged executives' output ≡ serial, exactly. --------------
  // The invariant is stronger than Soundness's tolerance comparison: staged
  // execution replays the exact serial value chains, so the printed stream
  // must be bit-identical — once letting clean attempts commit, once forcing
  // every attempt to abort so the demotion path restores pre-loop state and
  // re-executes serially. Skipped under an injected bug (the canary mutates
  // the plan). Also the worker-count leg: the plan's stage/sync sections and
  // the provenance ledger must not depend on how many driver workers planned.
  if (opts.check_staging && !out.injected &&
      out.pipeline_loops + out.doacross_loops > 0) {
    dynamic::RunResult baseline;
    {
      dynamic::Interpreter interp(prog);
      interp.set_inputs(opts.inputs);
      baseline = interp.run(opts.max_cost);
      if (!baseline.ok) {
        out.violation = Property::PipelineError;
        out.detail = "staging baseline run failed: " + baseline.error;
        return out;
      }
    }
    for (int leg = 0; leg < 2; ++leg) {
      dynamic::StagedExecOptions so;
      so.max_cost = opts.max_cost;
      so.force_abort = leg == 1;
      const char* name = leg == 0 ? "staged-commit" : "forced-abort";
      dynamic::StagedRunResult sr =
          dynamic::run_staged(prog, plan, opts.inputs, so);
      if (!sr.run.ok) {
        out.violation = Property::Staging;
        out.detail = std::string(name) +
                     " leg failed where the serial run succeeded: " +
                     sr.run.error;
        return out;
      }
      if (leg == 1 && sr.commits() != 0) {
        out.violation = Property::Staging;
        out.detail = "forced abort still committed " +
                     std::to_string(sr.commits()) + " staged attempt(s)";
        return out;
      }
      if (sr.run.printed != baseline.printed) {
        out.violation = Property::Staging;
        out.detail = std::string(name) +
                     " leg output diverges from the serial run; " +
                     printed_diff(sr.run.printed, baseline.printed, "staged");
        return out;
      }
    }
    std::string sig1, led1;
    for (int w : {1, 4, 8}) {
      parallelizer::Driver::Options dopts;
      dopts.workers = w;
      dopts.memoize = false;
      parallelizer::Driver driver(wb->parallelizer(), dopts);
      parallelizer::ParallelPlan p = driver.plan(prog);
      std::string sig = parallelizer::plan_signature(p);
      std::string led = parallelizer::ledger_signature(p);
      if (w == 1) {
        sig1 = sig;
        led1 = led;
      } else if (sig != sig1 || led != led1) {
        out.violation = Property::Staging;
        out.detail = "staged plan or ledger differs between 1 and " +
                     std::to_string(w) + " driver workers";
        return out;
      }
    }
  }

  return out;
}

}  // namespace suifx::testing
