// Seeded generative fuzzer for SF programs (the differential oracle's input
// source, docs/testing.md). Programs are built from a pattern grammar biased
// toward the thesis's hard cases — privatizable temporaries (§4.4.1),
// +/*/min/max reductions (§6.2), index-array gathers and scatters (§6.4.2),
// permutation scatters with non-commutative updates (the speculation
// executive's canonical target, docs/speculation.md), COMMON blocks with
// reshaped overlays (Fig 5-9), call-by-reference array sections — and are
// well-formed by construction: every subscript is kept in
// bounds so the interpreter never traps on a generator-made program, and
// every program prints order-sensitive checksums (sum of a[i]*i) so an
// unsound plan is visible in the output vector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace suifx::testing {

struct GenOptions {
  /// Pattern instances drawn per program (the epilogue checksums are extra).
  int min_patterns = 2;
  int max_patterns = 6;
  /// Emit call-by-reference patterns (helper procedures).
  bool allow_calls = true;
  /// Emit COMMON blocks with reshaped overlays.
  bool allow_commons = true;
  /// Emit genuine loop-carried recurrences. These are what the oracle's
  /// injected-bug mode forces parallel, so leave them on for fuzzing; turn
  /// them off to generate an all-parallelizable corpus.
  bool allow_recurrences = true;
};

struct GeneratedProgram {
  uint64_t seed = 0;
  std::string name;    // "fz<seed>"
  std::string source;  // complete SF program text
  std::vector<std::string> patterns;  // instantiated pattern names, in order
};

/// Generate one SF program. Deterministic: the same (seed, options) pair
/// always yields byte-identical source — SUIFX_FUZZ_SEED replays rely on it.
GeneratedProgram generate_program(uint64_t seed, const GenOptions& opts = {});

}  // namespace suifx::testing
