// The differential oracle behind bench/ext_fuzz (docs/testing.md): run one
// SF program through the whole pipeline (parse → interprocedural analyses →
// parallel Driver plan) and cross-check the plan against execution. Three
// properties:
//
//  - Soundness: dynamic::validate_plan's reverse-order execution of every
//    chosen outermost-parallel loop must match the sequential output within
//    a relative tolerance (reductions reorder floating point).
//  - Consistency: no loop the static dependence test calls parallelizable
//    may show a loop-carried flow dependence under the DynDepAnalyzer on the
//    same input (inductions and recognized reductions excluded, exactly as
//    the Guru excludes them).
//  - Determinism: the parallel, memoized Driver and a serial
//    Parallelizer::plan must produce byte-identical plan signatures.
//  - Speculation: promoting statically-rejected loops to the speculative
//    executive (docs/speculation.md) must leave the printed output exactly
//    equal to the serial run's — both when attempts commit and when every
//    attempt is forced to misspeculate and roll back to serial re-execution.
//  - Staging: loops the StrategyPlanner promoted to Pipeline/Doacross
//    (docs/pdg_planning.md) must print exactly the serial output under the
//    staged executives — both when attempts commit and when every attempt is
//    forced to abort and demote to serial — and the plan's stage/sync
//    sections plus the provenance ledger must be byte-identical when the
//    Driver plans with 1, 4, and 8 workers.
//
// `inject_dependence_bug` force-parallelizes one loop with an observed
// dynamic carried dependence — the canary proving the oracle catches an
// unsound plan end to end.
#pragma once

#include <cstdint>
#include <string>

#include "dynamic/interp.h"

namespace suifx::testing {

enum class Property : uint8_t {
  None,           // all checks passed
  PipelineError,  // parse/analysis/interpretation itself failed
  Soundness,
  Consistency,
  Determinism,
  Speculation,
  Staging,
};

const char* to_string(Property p);

struct OracleOptions {
  /// Output-comparison tolerance for validate_plan (reductions reorder
  /// floating-point adds/multiplies, so exact equality is wrong).
  double rel_tolerance = 1e-7;
  /// Interpreter fuel per instrumented run.
  uint64_t max_cost = 500'000'000ULL;
  /// Force-parallelize one loop with an observed dynamic carried dependence
  /// (via Assertions::force_parallel, the §2.8 user-assertion path) so the
  /// checks below must fire. `OracleResult::injected` says whether a target
  /// existed.
  bool inject_dependence_bug = false;
  /// Interpreter inputs (params/arrays/scalars/seed) for the dynamic runs.
  dynamic::Inputs inputs;
  /// Check the Speculation property (promote + execute + compare against the
  /// serial output, commit and forced-rollback legs).
  bool check_speculation = true;
  /// Validation workers for the speculative executive.
  int spec_workers = 1;
  /// Check the Staging property (staged execution ≡ serial output, commit
  /// and forced-abort legs, plus worker-count plan/ledger determinism).
  bool check_staging = true;
  /// Alias tier for the planning stack (Workbench::from_source): 0 keeps the
  /// Steensgaard-only relation, 1 arms the lazy Andersen escalation so every
  /// tier-1-refined plan is held to the same dynamic properties, -1 defers
  /// to SUIFX_ALIAS_TIER.
  int alias_tier = -1;
};

struct OracleResult {
  Property violation = Property::None;
  std::string detail;  // human-readable description of the first violation
  int loops = 0;       // loops planned
  int parallel = 0;    // loops the (possibly injected) plan parallelizes
  /// inject_dependence_bug found a target loop and forced it parallel.
  bool injected = false;
  /// Name of the loop the bug was injected into ("" when !injected).
  std::string injected_loop;
  /// Loops the Speculation check promoted to the executive.
  int speculative = 0;
  /// Loops the StrategyPlanner promoted to staged strategies.
  int pipeline_loops = 0;
  int doacross_loops = 0;

  bool ok() const { return violation == Property::None; }
};

/// Run the full pipeline over `src` and check the properties, in the order
/// Determinism, Soundness, Consistency, Speculation, Staging; the first
/// violation wins.
OracleResult check_source(const std::string& src, const OracleOptions& opts = {});

}  // namespace suifx::testing
