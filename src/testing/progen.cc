#include "testing/progen.h"

#include <sstream>

namespace suifx::testing {

namespace {

// ---------------------------------------------------------------------------
// Deterministic RNG (splitmix64). Raw modular draws only — the standard
// <random> distributions are not bit-stable across library implementations,
// and replaying SUIFX_FUZZ_SEED must reproduce the exact program everywhere.
// ---------------------------------------------------------------------------
struct Rng {
  uint64_t s;
  explicit Rng(uint64_t seed) : s(seed ^ 0x9e3779b97f4a7c15ULL) {}
  uint64_t next() {
    s += 0x9e3779b97f4a7c15ULL;
    uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  long range(long lo, long hi) {  // inclusive
    return lo + static_cast<long>(next() % static_cast<uint64_t>(hi - lo + 1));
  }
  bool chance(int pct) { return range(1, 100) <= pct; }
};

// Capacity of every 1-D pool array; the N param never exceeds kTrip so all
// generated subscripts are in bounds by construction.
constexpr long kCap = 64;
constexpr long kTripMax = 56;

class Gen {
 public:
  Gen(uint64_t seed, const GenOptions& opts)
      : rng_(seed), opts_(opts), seed_(seed) {}

  GeneratedProgram run();

 private:
  // --- small emission helpers --------------------------------------------
  std::string lab() {
    std::string l = std::to_string(next_label_);
    next_label_ += 10;
    return l;
  }
  std::string uniq() { return std::to_string(++uniq_); }
  /// One of the four pool arrays.
  std::string arr() {
    static const char* kPool[] = {"ga", "gb", "gc", "gd"};
    return kPool[rng_.range(0, 3)];
  }
  std::string arr_not(const std::string& other) {
    std::string a = arr();
    while (a == other) a = arr();
    return a;
  }
  std::string scal() { return "gs" + std::to_string(rng_.range(1, 4)); }
  /// Positive real constant "a.b" with a in [0,2], b in [1,9].
  std::string rc() {
    return std::to_string(rng_.range(0, 2)) + "." + std::to_string(rng_.range(1, 9));
  }
  /// Real constant in (0,1): "0.b".
  std::string rc01() { return "0." + std::to_string(rng_.range(1, 9)); }

  // --- pattern emitters (each appends to main_ and/or procs_) -------------
  void p_init_map();
  void p_nested_2d();
  void p_priv_temp();
  void p_guarded_priv();
  void p_scalar_reduction();
  void p_region_reduction();
  void p_index_gather();
  void p_index_scatter();
  void p_index_permute_scatter();
  void p_recurrence();
  void p_call_section();
  void p_call_reduction();
  void p_common_overlay();
  void p_deep_call_alias_chain();
  void p_zero_trip();
  void p_stage_producer_consumer();
  void p_doacross_skewed_recurrence();

  void epilogue();

  Rng rng_;
  GenOptions opts_;
  uint64_t seed_;
  std::ostringstream procs_;
  std::ostringstream main_;
  std::vector<std::string> patterns_;
  int next_label_ = 10;
  int uniq_ = 0;
};

// Independent elementwise map, with strided / reversed / self-update
// variants — the bread-and-butter parallel loop.
void Gen::p_init_map() {
  std::string dst = arr();
  std::string src = arr_not(dst);
  std::string hdr;
  switch (rng_.range(0, 3)) {
    case 0: hdr = "do i = 1, N"; break;
    case 1: hdr = "do i = N, 1, -1"; break;       // negative stride
    case 2: hdr = "do i = 1, N, 2"; break;        // non-unit stride
    default: hdr = "do i = 2, N - 1"; break;      // shifted bounds
  }
  std::string rhs;
  switch (rng_.range(0, 3)) {
    case 0: rhs = src + "[i] * " + rc() + " + " + rc01(); break;
    case 1: rhs = "min(" + src + "[i], " + rc01() + ") + " + rc01(); break;
    case 2: rhs = "abs(" + src + "[i] - " + rc01() + ")"; break;
    default: rhs = dst + "[i] * " + rc01() + " + " + src + "[i]"; break;
  }
  main_ << "  " << hdr << " label " << lab() << " {\n"
        << "    " << dst << "[i] = " << rhs << ";\n"
        << "  }\n";
  patterns_.push_back("init_map");
}

// Doubly-nested update of the 2-D pool array.
void Gen::p_nested_2d() {
  std::string src = arr();
  std::string l1 = lab(), l2 = lab();
  main_ << "  do j = 1, 8 label " << l1 << " {\n"
        << "    do i = 1, N label " << l2 << " {\n"
        << "      g2[i, j] = g2[i, j] * " << rc01() << " + " << src
        << "[i] + real(j) * " << rc01() << ";\n"
        << "    }\n"
        << "  }\n";
  patterns_.push_back("nested_2d");
}

// Privatizable scalar temporary: written before every read in the iteration.
void Gen::p_priv_temp() {
  std::string src = arr();
  std::string dst = arr();
  main_ << "  do i = 1, N label " << lab() << " {\n"
        << "    t = " << src << "[i] * " << rc01() << " + " << rc() << ";\n"
        << "    " << dst << "[i] = t * t + t;\n"
        << "  }\n";
  patterns_.push_back("priv_temp");
}

// Privatizable temporary written under a guard — both branches assign, so
// the must-write analysis still proves write-before-read (§4.4.1 shape).
void Gen::p_guarded_priv() {
  std::string src = arr();
  std::string dst = arr_not(src);
  main_ << "  do i = 1, N label " << lab() << " {\n"
        << "    if (" << src << "[i] > " << rc01() << ") {\n"
        << "      t = " << src << "[i] + " << rc01() << ";\n"
        << "    } else {\n"
        << "      t = " << rc() << " - " << src << "[i];\n"
        << "    }\n"
        << "    " << dst << "[i] = t * " << rc01() << ";\n"
        << "  }\n";
  patterns_.push_back("guarded_priv");
}

// Scalar reduction over one of +, *, min, max (§6.2). The multiply variant
// keeps factors near 1 so products stay in range under any N.
void Gen::p_scalar_reduction() {
  std::string s = scal();
  std::string a = arr();
  std::string b = arr();
  switch (rng_.range(0, 3)) {
    case 0:
      main_ << "  " << s << " = 0.0;\n"
            << "  do i = 1, N label " << lab() << " {\n"
            << "    " << s << " = " << s << " + " << a << "[i] * " << b << "[i];\n"
            << "  }\n";
      patterns_.push_back("scalar_red_add");
      break;
    case 1:
      main_ << "  " << s << " = 1.0;\n"
            << "  do i = 1, N label " << lab() << " {\n"
            << "    " << s << " = " << s << " * (1.0 + " << a << "[i] * 0.001);\n"
            << "  }\n";
      patterns_.push_back("scalar_red_mul");
      break;
    case 2:
      main_ << "  " << s << " = 1000000.0;\n"
            << "  do i = 1, N label " << lab() << " {\n"
            << "    " << s << " = min(" << s << ", " << a << "[i] - " << b << "[i]);\n"
            << "  }\n";
      patterns_.push_back("scalar_red_min");
      break;
    default:
      main_ << "  " << s << " = 0.0 - 1000000.0;\n"
            << "  do i = 1, N label " << lab() << " {\n"
            << "    " << s << " = max(" << s << ", " << a << "[i] + " << b << "[i]);\n"
            << "  }\n";
      patterns_.push_back("scalar_red_max");
      break;
  }
  main_ << "  print " << s << ";\n";
}

// Array-region reduction: commutative updates into a small histogram slice.
void Gen::p_region_reduction() {
  std::string dst = arr();
  std::string src = arr_not(dst);
  long k = rng_.range(2, 8);
  main_ << "  do i = 1, N label " << lab() << " {\n"
        << "    " << dst << "[1 + i % " << k << "] = " << dst << "[1 + i % "
        << k << "] + " << src << "[i] * " << rc01() << ";\n"
        << "  }\n";
  patterns_.push_back("region_red");
}

// Fill the index array with clamped in-bounds values, then gather through
// it. Reads through an unknown subscript of a read-only array carry no
// dependence, so the gather loop itself is parallel.
void Gen::p_index_gather() {
  std::string src = arr();
  std::string dst = arr_not(src);
  long k = rng_.range(1, 7);
  main_ << "  do i = 1, N label " << lab() << " {\n"
        << "    gix[i] = 1 + (i * " << k << ") % N;\n"
        << "  }\n"
        << "  do i = 1, N label " << lab() << " {\n"
        << "    " << dst << "[i] = " << src << "[gix[i]] + " << rc01() << ";\n"
        << "  }\n";
  patterns_.push_back("idx_gather");
}

// Scatter-update through the index array: a sparse commutative reduction
// (the bdna §6.4.2 shape) when reduction recognition is on.
void Gen::p_index_scatter() {
  std::string src = arr();
  std::string dst = arr_not(src);
  long k = rng_.range(1, 7);
  main_ << "  do i = 1, N label " << lab() << " {\n"
        << "    gix[i] = 1 + (i * " << k << ") % N;\n"
        << "  }\n"
        << "  do i = 1, N label " << lab() << " {\n"
        << "    " << dst << "[gix[i]] = " << dst << "[gix[i]] + " << src
        << "[i] * " << rc01() << ";\n"
        << "  }\n";
  patterns_.push_back("idx_scatter");
}

// Permutation scatter: the index array holds a rotation of 1..N, so every
// iteration touches a distinct location — but the update is non-commutative
// (scale-and-add, not a recognized reduction) through an unknown subscript,
// so the static test must reject the loop and reduction recognition cannot
// rescue it. This is the canonical SpeculationPlanner candidate: statically
// rejected, dynamically clean (docs/speculation.md).
void Gen::p_index_permute_scatter() {
  std::string src = arr();
  std::string dst = arr_not(src);
  long k = rng_.range(0, 7);
  main_ << "  do i = 1, N label " << lab() << " {\n"
        << "    gix[i] = 1 + (i + " << k << ") % N;\n"
        << "  }\n"
        << "  do i = 1, N label " << lab() << " {\n"
        << "    " << dst << "[gix[i]] = " << dst << "[gix[i]] * " << rc01()
        << " + " << src << "[i] * " << rc01() << ";\n"
        << "  }\n";
  patterns_.push_back("idx_permute_scatter");
}

// A genuine loop-carried recurrence — order-sensitive by construction.
// These loops must never be called independent; they are also the fodder
// the oracle's injected-bug mode forces parallel.
void Gen::p_recurrence() {
  std::string a = arr();
  std::string b = arr_not(a);
  switch (rng_.range(0, 2)) {
    case 0:
      main_ << "  do i = 2, N label " << lab() << " {\n"
            << "    " << a << "[i] = " << a << "[i - 1] * " << rc01() << " + "
            << b << "[i];\n"
            << "  }\n";
      patterns_.push_back("recurrence_fwd");
      break;
    case 1:
      main_ << "  do i = N - 1, 1, -1 label " << lab() << " {\n"
            << "    " << a << "[i] = " << a << "[i + 1] * " << rc01() << " + "
            << rc01() << ";\n"
            << "  }\n";
      patterns_.push_back("recurrence_bwd");
      break;
    default: {
      std::string s = scal();
      main_ << "  do i = 1, N label " << lab() << " {\n"
            << "    " << s << " = " << s << " * " << rc01() << " + " << a
            << "[i];\n"
            << "    " << b << "[i] = " << s << ";\n"
            << "  }\n";
      patterns_.push_back("recurrence_scalar_chain");
      break;
    }
  }
}

// Call-by-reference array section: the callee updates x[1..m] of a section
// base passed Fortran-style, with adjustable formal bounds.
void Gen::p_call_section() {
  std::string a = arr();
  std::string u = uniq();
  procs_ << "proc kadd" << u << "(real x[m], int m, real c) {\n"
         << "  do j = 1, m label " << lab() << " {\n"
         << "    x[j] = x[j] + c * real(j) * 0.01;\n"
         << "  }\n"
         << "}\n\n";
  if (rng_.chance(50)) {
    main_ << "  call kadd" << u << "(" << a << ", N, " << rc() << ");\n";
  } else {
    long off = rng_.range(2, 4);
    main_ << "  call kadd" << u << "(" << a << "[" << off << "], N - " << off
          << ", " << rc() << ");\n";
  }
  patterns_.push_back("call_section");
}

// Interprocedural reduction: the commutative update lives in the callee
// (the dyfesm §6.2.2.4 shape).
void Gen::p_call_reduction() {
  std::string a = arr();
  std::string s = scal();
  std::string u = uniq();
  procs_ << "proc ksum" << u << "(real x[m], int m) {\n"
         << "  do j = 1, m label " << lab() << " {\n"
         << "    " << s << " = " << s << " + x[j] * 0.25;\n"
         << "  }\n"
         << "}\n\n";
  main_ << "  " << s << " = 0.0;\n"
        << "  call ksum" << u << "(" << a << ", N);\n"
        << "  print " << s << ";\n";
  patterns_.push_back("call_reduction");
}

// COMMON block with reshaped overlays: one procedure writes it as a flat
// vector, another reads it back as an 8x8 matrix (the Fig 5-9 shape).
void Gen::p_common_overlay() {
  std::string u = uniq();
  std::string s = scal();
  procs_ << "proc cset" << u << "() {\n"
         << "  common cb" << u << " real u[" << kCap << "];\n"
         << "  do i = 1, N label " << lab() << " {\n"
         << "    u[i] = real(i) * " << rc01() << ";\n"
         << "  }\n"
         << "}\n\n"
         << "proc cget" << u << "() {\n"
         << "  common cb" << u << " real v[8, 8];\n"
         << "  do j = 1, 8 label " << lab() << " {\n"
         << "    do i = 1, 8 label " << lab() << " {\n"
         << "      " << s << " = " << s << " + v[i, j];\n"
         << "    }\n"
         << "  }\n"
         << "}\n\n";
  main_ << "  call cset" << u << "();\n"
        << "  call cget" << u << "();\n"
        << "  print " << s << ";\n";
  patterns_.push_back("common_overlay");
}

// COMMON block whose first two members overlay each other (tier-0 collapses
// the whole block into one blob class) while a third member occupies provably
// disjoint storage — and is threaded pointer-style through a 3-deep chain of
// call-by-reference array sections, with a constant section offset at the
// middle hop. The mixed loop (write the disjoint member, read an overlay
// member) is serial under Steensgaard but DOALL once the Andersen tier carves
// the disjoint member out, so fuzzing with OracleOptions::alias_tier = 1
// exercises the whole escalation path against the dynamic oracle.
void Gen::p_deep_call_alias_chain() {
  std::string u = uniq();
  std::string s = scal();
  long rlen = rng_.range(8, 16);         // the disjoint member's extent
  long soff = rng_.range(1, 3);          // section offset at the middle hop
  long llen = rlen - soff;               // leaf formal extent (stays in bounds)
  long plen = rng_.range(20, 32);        // overlay member 1
  long qlen = plen - rng_.range(4, 12);  // same offset, smaller footprint
  long roff = plen + rng_.range(0, 4);   // disjoint: starts past both overlays
  procs_ << "proc dca" << u << "(real z[" << llen << "]) {\n"
         << "  do j = 1, " << llen << " label " << lab() << " {\n"
         << "    z[j] = z[j] * " << rc01() << " + " << rc01() << ";\n"
         << "  }\n"
         << "}\n\n"
         << "proc dcb" << u << "(real y[" << rlen << "]) {\n"
         << "  call dca" << u << "(y[" << (1 + soff) << "]);\n"
         << "}\n\n"
         << "proc dcc" << u << "(real x[" << rlen << "]) {\n"
         << "  call dcb" << u << "(x);\n"
         << "}\n\n";
  procs_ << "proc dcs" << u << "() {\n"
         << "  common dc" << u << " @ 0 real p[" << plen << "];\n"
         << "  common dc" << u << " @ 0 real q[" << qlen << "];\n"
         << "  common dc" << u << " @ " << roff << " real r[" << rlen << "];\n"
         << "  do i = 1, " << qlen << " label " << lab() << " {\n"
         << "    p[i] = real(i) * " << rc01() << ";\n"
         << "  }\n"
         << "  do i = 1, " << rlen << " label " << lab() << " {\n"
         << "    r[i] = real(i) * " << rc01() << " + " << rc01() << ";\n"
         << "  }\n"
         << "  do i = 1, " << rlen << " label " << lab() << " {\n"
         << "    r[i] = r[i] + p[i] * " << rc01() << ";\n"
         << "  }\n"
         << "  call dcc" << u << "(r);\n"
         << "}\n\n"
         << "proc dck" << u << "() {\n"
         << "  common dc" << u << " @ 0 real p[" << plen << "];\n"
         << "  common dc" << u << " @ " << roff << " real r[" << rlen << "];\n"
         << "  do i = 1, " << rlen << " label " << lab() << " {\n"
         << "    " << s << " = " << s << " + r[i] * real(i) + p[i];\n"
         << "  }\n"
         << "}\n\n";
  main_ << "  call dcs" << u << "();\n"
        << "  call dck" << u << "();\n"
        << "  print " << s << ";\n";
  patterns_.push_back("deep_call_alias_chain");
}

// Producer/consumer chain behind a queueable scalar recurrence: the scalar
// running value is a genuine carried dependence (never DOALL), but every
// downstream statement only reads it — the DSWP shape the StrategyPlanner
// splits into pipeline stages connected by a decoupling queue.
void Gen::p_stage_producer_consumer() {
  std::string s = scal();
  std::string src = arr();
  std::string mid = arr_not(src);
  std::string dst = arr_not(mid);
  main_ << "  do i = 1, N label " << lab() << " {\n"
        << "    " << s << " = " << s << " * " << rc01() << " + " << src
        << "[i];\n"
        << "    " << mid << "[i] = " << s << " * " << rc01() << " + " << mid
        << "[i];\n";
  if (rng_.chance(50)) {
    main_ << "    " << dst << "[i] = " << mid << "[i] * " << rc01() << " + "
          << s << ";\n";
  } else {
    main_ << "    " << dst << "[i] = " << dst << "[i] + " << s << " * "
          << rc01() << ";\n";
  }
  main_ << "  }\n";
  patterns_.push_back("stage_producer_consumer");
}

// Skewed recurrence a[i] = f(a[i - D]) with constant distance D >= 2: the
// carried dependence is real but every chain only couples iterations D
// apart, so the planner's DOACROSS leg runs the D residue classes with
// post/wait synchronization at distance D.
void Gen::p_doacross_skewed_recurrence() {
  std::string a = arr();
  std::string b = arr_not(a);
  long d = rng_.range(2, 4);
  main_ << "  do i = " << (d + 1) << ", N label " << lab() << " {\n"
        << "    " << a << "[i] = " << a << "[i - " << d << "] * " << rc01()
        << " + " << b << "[i];\n"
        << "  }\n";
  patterns_.push_back("doacross_skewed_recurrence");
}

// A loop whose trip count is zero under the Fortran DO rule.
void Gen::p_zero_trip() {
  std::string a = arr();
  main_ << "  do i = 5, 4 label " << lab() << " {\n"
        << "    " << a << "[i] = 0.0;\n"
        << "  }\n";
  patterns_.push_back("zero_trip");
}

// Weighted order-sensitive checksums: sum of a[i]*i distinguishes any
// permutation or corruption of the data an unsound plan produces.
void Gen::epilogue() {
  static const char* k1d[] = {"ga", "gb", "gc", "gd"};
  for (const char* a : k1d) {
    main_ << "  chk = 0.0;\n"
          << "  do i = 1, " << kCap << " label " << lab() << " {\n"
          << "    chk = chk + " << a << "[i] * real(i);\n"
          << "  }\n"
          << "  print chk;\n";
  }
  main_ << "  chk = 0.0;\n"
        << "  do j = 1, 8 label " << lab() << " {\n"
        << "    do i = 1, " << kCap << " label " << lab() << " {\n"
        << "      chk = chk + g2[i, j] * real(i + 3 * j);\n"
        << "    }\n"
        << "  }\n"
        << "  print chk;\n"
        << "  chk = 0.0;\n"
        << "  do i = 1, " << kCap << " label " << lab() << " {\n"
        << "    chk = chk + real(gix[i]) * real(i);\n"
        << "  }\n"
        << "  print chk;\n"
        << "  print gs1;\n  print gs2;\n  print gs3;\n  print gs4;\n";
}

GeneratedProgram Gen::run() {
  GeneratedProgram out;
  out.seed = seed_;
  out.name = "fz" + std::to_string(seed_);

  struct Entry {
    int weight;
    void (Gen::*fn)();
    bool enabled;
  };
  const Entry table[] = {
      {20, &Gen::p_init_map, true},
      {10, &Gen::p_nested_2d, true},
      {12, &Gen::p_priv_temp, true},
      {10, &Gen::p_guarded_priv, true},
      {14, &Gen::p_scalar_reduction, true},
      {8, &Gen::p_region_reduction, true},
      {8, &Gen::p_index_gather, true},
      {8, &Gen::p_index_scatter, true},
      {6, &Gen::p_index_permute_scatter, true},
      {12, &Gen::p_recurrence, opts_.allow_recurrences},
      {8, &Gen::p_call_section, opts_.allow_calls},
      {5, &Gen::p_call_reduction, opts_.allow_calls},
      {6, &Gen::p_common_overlay, opts_.allow_commons},
      {6, &Gen::p_deep_call_alias_chain,
       opts_.allow_calls && opts_.allow_commons},
      {4, &Gen::p_zero_trip, true},
      {7, &Gen::p_stage_producer_consumer, true},
      {7, &Gen::p_doacross_skewed_recurrence, opts_.allow_recurrences},
  };
  int total = 0;
  for (const Entry& e : table) total += e.enabled ? e.weight : 0;

  long n_param = rng_.range(8, kTripMax);
  int n_patterns = static_cast<int>(
      rng_.range(opts_.min_patterns, std::max(opts_.min_patterns, opts_.max_patterns)));
  for (int p = 0; p < n_patterns; ++p) {
    long roll = rng_.range(1, total);
    for (const Entry& e : table) {
      if (!e.enabled) continue;
      roll -= e.weight;
      if (roll <= 0) {
        (this->*e.fn)();
        break;
      }
    }
  }
  epilogue();

  std::ostringstream src;
  src << "// generated by suifx::testing::generate_program seed=" << seed_ << "\n"
      << "program " << out.name << ";\n"
      << "param N = " << n_param << ";\n"
      << "global real ga[" << kCap << "] input;\n"
      << "global real gb[" << kCap << "] input;\n"
      << "global real gc[" << kCap << "] input;\n"
      << "global real gd[" << kCap << "];\n"
      << "global real g2[" << kCap << ", 8] input;\n"
      << "global int gix[" << kCap << "];\n"
      << "global real gs1;\n"
      << "global real gs2;\n"
      << "global real gs3;\n"
      << "global real gs4;\n\n"
      << procs_.str()
      << "proc main() {\n"
      << "  real t;\n"
      << "  real chk;\n"
      << main_.str()
      << "}\n";
  out.source = src.str();
  out.patterns = std::move(patterns_);
  return out;
}

}  // namespace

GeneratedProgram generate_program(uint64_t seed, const GenOptions& opts) {
  return Gen(seed, opts).run();
}

}  // namespace suifx::testing
