// Greedy test-case reducer for SF programs (docs/testing.md). Given a
// program and a predicate "this source still exhibits the failure", it
// shrinks the program while the predicate holds: delete one statement
// subtree at a time (greedy fixpoint, in statement order), then halve param
// defaults, then halve constant DO upper bounds. Every candidate is re-built
// from the parsed IR through the printer, so a reduced repro is always
// well-formed SF — a candidate the parser rejects simply fails the predicate
// and is discarded.
#pragma once

#include <functional>
#include <string>

namespace suifx::testing {

/// Returns true when `source` still exhibits the failure being reduced.
/// Called many times; it should be deterministic for the same source.
using FailPredicate = std::function<bool(const std::string& source)>;

struct ReduceOptions {
  /// Upper bound on predicate evaluations (each one typically runs the full
  /// pipeline, so this bounds reduction wall time).
  int max_probes = 4000;
};

struct ReduceResult {
  std::string source;         // smallest failing source found
  int initial_statements = 0; // statement count of the input program
  int final_statements = 0;   // statement count of `source`
  int probes = 0;             // predicate evaluations spent
  bool reduced = false;       // at least one shrink was accepted
};

/// Reduce `src` under `fails`. Precondition: fails(src) is true (if not, the
/// input is returned unchanged with reduced=false). The result source still
/// satisfies the predicate.
ReduceResult reduce_source(const std::string& src, const FailPredicate& fails,
                           const ReduceOptions& opts = {});

}  // namespace suifx::testing
