// Analysis-as-a-service: a long-lived daemon front end over the Explorer
// stack (the interactive deployment the SUIF Explorer paper assumes — one
// resident parallelizer serving many user actions, §2.2/§4).
//
// An AnalysisService owns a registry of named sessions, each holding one
// Workbench (program + full interprocedural analysis stack + the parallel
// memoized Driver). Requests — open a source, edit it, plan with assertions,
// slice a dependence, read the profile — are submitted asynchronously,
// dispatched onto a runtime::ThreadPool, and answered through futures. The
// point of keeping sessions resident is cache warmth: the driver's memoized
// loop plans and the polyhedral operation caches survive across requests, so
// a re-plan after one assertion touches only the invalidated loop nests.
//
// Edits go through explorer::rebuild_incremental (incremental.h): a request
// that updates a session's source re-derives only the procedures the edit
// can influence; every other procedure's plans are carried into the new
// Workbench, so the next Plan request re-analyzes just the dirty set — and
// still returns a plan byte-identical to a cold rebuild's.
//
// Concurrency model:
//  * the session registry is guarded by one mutex (lookups are cheap);
//  * each session has a shared_mutex — Plan/Slice/Profile hold it shared
//    (the analyses are immutable and the Driver is internally thread-safe,
//    single-flighting duplicate work), Update/Close hold it exclusive;
//  * slicing additionally serializes on a per-session mutex (the Slicer
//    memoizes summaries and is not internally synchronized);
//  * every request runs under its own support::Budget (daemon-grade
//    isolation: one runaway request degrades, the service survives) and a
//    Metrics::ScopedLocal capture whose counters are returned with the
//    response.
#pragma once

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "explorer/incremental.h"
#include "explorer/workbench.h"
#include "runtime/parloop.h"
#include "slicing/slicer.h"
#include "support/budget.h"

namespace suifx::service {

struct ServiceOptions {
  /// Dispatcher threads executing requests; 0 = a small default (each Plan
  /// already fans out across the session driver's own pool).
  int workers = 0;
  /// Resident session cap; opening beyond it evicts the least recently used.
  size_t max_sessions = 64;
  /// Per-request budget when the request carries none. Unlimited by default.
  support::Budget::Limits default_budget;
  /// Workbench configuration for every session this service opens.
  std::optional<analysis::LivenessMode> liveness = analysis::LivenessMode::Full;
  bool enable_reductions = true;
};

enum class RequestKind : uint8_t {
  Open,
  Update,
  Plan,
  Slice,
  Profile,
  Explain,  // why did loops get their verdicts (decision provenance)
  Close,
};

const char* to_string(RequestKind k);

/// One user assertion, by stable name ("proc/label" loops, "proc.name" or
/// global variables) — names survive rebuilds; statement pointers do not.
struct AssertionReq {
  enum class Kind : uint8_t { Privatize, Independent, ForceParallel };
  Kind kind = Kind::Privatize;
  std::string loop;
  std::string var;  // unused for ForceParallel
};

struct Request {
  RequestKind kind = RequestKind::Plan;
  std::string session;
  std::string source;                 // Open / Update
  std::vector<AssertionReq> asserts;  // Plan / Explain
  std::string loop;                   // Slice / Explain ("" = every loop)
  std::string var;                    // Slice
  /// Explain only: run the speculation round (instrumented evidence pass,
  /// promotion, speculative executive) and report why each candidate was or
  /// wasn't promoted and whether speculation paid off. docs/speculation.md.
  bool speculate = false;
  /// Override of the service-wide default budget for this request only.
  std::optional<support::Budget::Limits> budget;
};

struct Response {
  bool ok = false;
  std::string error;  // set when !ok
  std::string session;

  // Plan
  std::string plan_sig;  // parallelizer::plan_signature of the full plan
  int loops = 0;
  int parallel = 0;
  bool degraded = false;      // any loop fell to the conservative tier
  uint64_t cache_hits = 0;    // session driver hit delta across this request
  uint64_t cache_misses = 0;  // (exact when the session is quiesced)

  // Update
  bool incremental = false;  // plans were carried; false = full invalidation
  std::vector<std::string> changed;
  std::vector<std::string> dirty;
  size_t carried = 0;
  size_t dropped = 0;

  // Slice
  int slice_size = 0;

  // Profile / Explain (and free-form diagnostics)
  std::string text;
  /// Machine-readable twin of `text`: Profile returns the session stats plus
  /// Metrics::report_json(); Explain returns the schema-versioned provenance
  /// records ({"schema":"suifx-provenance/1","loops":[...]}).
  std::string json;

  /// Counters recorded on the request thread while this request ran
  /// (Metrics::ScopedLocal capture).
  std::map<std::string, uint64_t> metrics;
  double latency_ms = 0;
};

class AnalysisService {
 public:
  explicit AnalysisService(ServiceOptions opts = {});
  ~AnalysisService();  // drains in-flight requests
  AnalysisService(const AnalysisService&) = delete;
  AnalysisService& operator=(const AnalysisService&) = delete;

  /// Enqueue one request; the future carries the response (never an
  /// exception — failures come back as ok=false).
  std::future<Response> submit(Request req);
  std::vector<std::future<Response>> submit_batch(std::vector<Request> reqs);
  /// Synchronous convenience: submit + wait.
  Response call(Request req);

  size_t num_sessions() const;
  uint64_t requests_served() const { return served_; }
  uint64_t sessions_evicted() const { return evicted_; }

 private:
  struct Session;

  Response handle(Request& req);
  Response open(Request& req);
  Response update(Request& req, Session& s);
  Response plan(Request& req, Session& s);
  Response slice(Request& req, Session& s);
  Response profile(Session& s);
  Response explain(Request& req, Session& s);
  std::shared_ptr<Session> find(const std::string& name);
  void evict_lru_locked();

  ServiceOptions opts_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  mutable std::mutex mu_;  // guards sessions_ / lru_tick_
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  uint64_t lru_tick_ = 0;
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> evicted_{0};
};

}  // namespace suifx::service
