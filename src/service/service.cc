#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <shared_mutex>
#include <sstream>
#include <utility>

#include "dynamic/specexec.h"
#include "parallelizer/speculate.h"
#include "support/metrics.h"
#include "support/provenance.h"
#include "support/trace.h"

namespace suifx::service {

namespace {

/// Minimal JSON string escaping for the hand-rolled response objects.
std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace

const char* to_string(RequestKind k) {
  switch (k) {
    case RequestKind::Open: return "open";
    case RequestKind::Update: return "update";
    case RequestKind::Plan: return "plan";
    case RequestKind::Slice: return "slice";
    case RequestKind::Profile: return "profile";
    case RequestKind::Explain: return "explain";
    case RequestKind::Close: return "close";
  }
  return "?";
}

/// One resident session. `mu` is the reader/writer gate: request handlers
/// hold it shared for immutable-stack operations (Plan/Slice/Profile) and
/// exclusive for source replacement (Update). The Slicer memoizes summary
/// nodes without internal locking, so slice requests additionally serialize
/// on `slice_mu` (two concurrent Slice requests on one session queue up;
/// Slice never blocks Plan).
struct AnalysisService::Session {
  std::string name;
  std::shared_mutex mu;
  std::mutex slice_mu;
  std::unique_ptr<explorer::Workbench> wb;
  std::unique_ptr<slicing::Slicer> slicer;  // lazy; reset by Update
  std::string source;
  uint64_t last_used = 0;  // registry LRU tick
  uint64_t updates = 0;
};

AnalysisService::AnalysisService(ServiceOptions opts) : opts_(std::move(opts)) {
  int n = opts_.workers;
  if (n <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    n = static_cast<int>(std::min(4u, hw != 0 ? hw : 2u));
  }
  pool_ = std::make_unique<runtime::ThreadPool>(n);
}

AnalysisService::~AnalysisService() { pool_->shutdown(); }

std::future<Response> AnalysisService::submit(Request req) {
  auto prom = std::make_shared<std::promise<Response>>();
  std::future<Response> fut = prom->get_future();
  pool_->submit([this, prom, r = std::move(req)]() mutable {
    try {
      prom->set_value(handle(r));
    } catch (const std::exception& ex) {
      Response resp;
      resp.error = std::string("internal error: ") + ex.what();
      resp.session = r.session;
      prom->set_value(std::move(resp));
    }
  });
  return fut;
}

std::vector<std::future<Response>> AnalysisService::submit_batch(
    std::vector<Request> reqs) {
  std::vector<std::future<Response>> futs;
  futs.reserve(reqs.size());
  for (Request& r : reqs) futs.push_back(submit(std::move(r)));
  return futs;
}

Response AnalysisService::call(Request req) { return submit(std::move(req)).get(); }

size_t AnalysisService::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::shared_ptr<AnalysisService::Session> AnalysisService::find(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return nullptr;
  it->second->last_used = ++lru_tick_;
  return it->second;
}

void AnalysisService::evict_lru_locked() {
  auto victim = sessions_.end();
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (victim == sessions_.end() ||
        it->second->last_used < victim->second->last_used) {
      victim = it;
    }
  }
  if (victim != sessions_.end()) {
    support::Metrics::global().count("service.evict");
    ++evicted_;
    sessions_.erase(victim);  // in-flight holders keep their shared_ptr
  }
}

Response AnalysisService::handle(Request& req) {
  // Fresh correlation id per request, installed before the span so the
  // request span itself (and every span/provenance event below it, including
  // the session driver's pool tasks) carries it. Chrome-trace filtering by
  // args.corr then isolates one request end-to-end.
  support::provenance::CorrScope corr(support::provenance::next_corr());
  support::trace::TraceSpan span("service/request", to_string(req.kind));
  auto t0 = std::chrono::steady_clock::now();

  // Daemon-grade isolation: this request's analyses charge this budget and
  // only this budget (Workbench::from_source and Driver::plan both adopt an
  // installed budget), so one runaway request degrades without starving its
  // neighbors. Limits come from the request, else the service default —
  // never from a process-lifetime env snapshot.
  support::Budget budget(req.budget.has_value() ? *req.budget
                                                : opts_.default_budget);
  support::Budget::Scope budget_scope(&budget);

  // Request-scoped counter capture, returned in Response::metrics.
  support::Metrics local;
  Response resp;
  {
    support::Metrics::ScopedLocal tee(&local);
    support::Metrics::global().count("service.request");
    support::Metrics::global().count(std::string("service.request.") +
                                     to_string(req.kind));
    resp.session = req.session;
    try {
      switch (req.kind) {
        case RequestKind::Open:
          resp = open(req);
          break;
        case RequestKind::Close: {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = sessions_.find(req.session);
          if (it == sessions_.end()) {
            resp.error = "unknown session: " + req.session;
          } else {
            sessions_.erase(it);
            resp.ok = true;
          }
          resp.session = req.session;
          break;
        }
        default: {
          std::shared_ptr<Session> s = find(req.session);
          if (s == nullptr) {
            resp.error = "unknown session: " + req.session;
            break;
          }
          if (req.kind == RequestKind::Update) {
            std::unique_lock<std::shared_mutex> wlock(s->mu);
            resp = update(req, *s);
          } else {
            std::shared_lock<std::shared_mutex> rlock(s->mu);
            if (req.kind == RequestKind::Plan) {
              resp = plan(req, *s);
            } else if (req.kind == RequestKind::Slice) {
              resp = slice(req, *s);
            } else if (req.kind == RequestKind::Explain) {
              resp = explain(req, *s);
            } else {
              resp = profile(*s);
            }
          }
          resp.session = req.session;
          break;
        }
      }
    } catch (const std::exception& ex) {
      resp.ok = false;
      resp.error = ex.what();
    }
  }

  resp.metrics = local.counters();
  resp.latency_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  support::Metrics::global().histogram("service.latency").record_ms(resp.latency_ms);
  support::Metrics::global()
      .histogram(std::string("service.latency.") + to_string(req.kind))
      .record_ms(resp.latency_ms);
  ++served_;
  return resp;
}

Response AnalysisService::open(Request& req) {
  Response resp;
  if (req.session.empty()) {
    resp.error = "open: session name required";
    return resp;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.count(req.session) > 0) {
      resp.error = "session already open: " + req.session;
      return resp;
    }
  }
  Diag diag;
  auto wb = explorer::Workbench::from_source(req.source, diag, opts_.liveness,
                                             opts_.enable_reductions);
  if (wb == nullptr) {
    resp.error = "parse error:\n" + diag.str();
    return resp;
  }
  auto s = std::make_shared<Session>();
  s->name = req.session;
  s->wb = std::move(wb);
  s->source = req.source;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (sessions_.size() >= opts_.max_sessions && !sessions_.empty()) {
      evict_lru_locked();
    }
    s->last_used = ++lru_tick_;
    // A racing Open of the same name between the check above and here:
    // first wins, second reports the conflict.
    if (!sessions_.emplace(req.session, s).second) {
      resp.error = "session already open: " + req.session;
      return resp;
    }
  }
  resp.ok = true;
  return resp;
}

Response AnalysisService::update(Request& req, Session& s) {
  Response resp;
  Diag diag;
  explorer::RebuildStats stats;
  auto wb = explorer::rebuild_incremental(*s.wb, req.source, diag, &stats,
                                          opts_.liveness,
                                          opts_.enable_reductions);
  if (wb == nullptr) {
    // The edit does not parse: keep the old session intact so the user can
    // keep querying it while fixing the source.
    resp.error = "parse error (session unchanged):\n" + diag.str();
    return resp;
  }
  s.wb = std::move(wb);
  s.slicer.reset();  // ISSA nodes point into the old program
  s.source = req.source;
  ++s.updates;
  resp.ok = true;
  resp.incremental = !stats.full_invalidation;
  resp.changed = std::move(stats.changed);
  resp.dirty = std::move(stats.dirty);
  resp.carried = stats.carried;
  resp.dropped = stats.dropped;
  return resp;
}

namespace {

/// Resolve the request's by-name assertions against the session's program.
/// False (with resp.error set) on an unknown loop or variable.
bool parse_asserts(const Request& req, explorer::Workbench& wb,
                   parallelizer::Assertions& asserts, Response& resp) {
  for (const AssertionReq& a : req.asserts) {
    const ir::Stmt* loop = wb.loop(a.loop);
    if (loop == nullptr) {
      resp.error = "unknown loop: " + a.loop;
      return false;
    }
    if (a.kind == AssertionReq::Kind::ForceParallel) {
      asserts.force_parallel.insert(loop);
      continue;
    }
    const ir::Variable* var = wb.var(a.var);
    if (var == nullptr) {
      resp.error = "unknown variable: " + a.var;
      return false;
    }
    if (a.kind == AssertionReq::Kind::Privatize) {
      asserts.privatize[loop].insert(var);
    } else {
      asserts.independent[loop].insert(var);
    }
  }
  return true;
}

}  // namespace

Response AnalysisService::plan(Request& req, Session& s) {
  Response resp;
  explorer::Workbench& wb = *s.wb;
  parallelizer::Assertions asserts;
  if (!parse_asserts(req, wb, asserts, resp)) return resp;

  parallelizer::Driver& driver = wb.driver();
  uint64_t hits0 = driver.cache_hits();
  uint64_t misses0 = driver.cache_misses();
  parallelizer::ParallelPlan p = wb.plan(asserts);
  resp.cache_hits = driver.cache_hits() - hits0;
  resp.cache_misses = driver.cache_misses() - misses0;
  resp.loops = static_cast<int>(p.loops.size());
  resp.parallel = p.num_parallel();
  for (const auto& [stmt, lp] : p.loops) {
    if (lp.degraded) resp.degraded = true;
  }
  resp.plan_sig = parallelizer::plan_signature(p);
  resp.ok = true;
  return resp;
}

Response AnalysisService::slice(Request& req, Session& s) {
  Response resp;
  explorer::Workbench& wb = *s.wb;
  const ir::Stmt* loop = wb.loop(req.loop);
  if (loop == nullptr) {
    resp.error = "unknown loop: " + req.loop;
    return resp;
  }
  const ir::Variable* var = wb.var(req.var);
  if (var == nullptr) {
    resp.error = "unknown variable: " + req.var;
    return resp;
  }
  std::lock_guard<std::mutex> lock(s.slice_mu);
  if (s.slicer == nullptr) {
    s.slicer = std::make_unique<slicing::Slicer>(wb.issa());
  }
  slicing::SliceResult r = s.slicer->dependence_slice(loop, var);
  resp.slice_size = r.size();
  resp.degraded = r.degraded;
  std::ostringstream os;
  os << "slice " << req.loop << " " << var->qualified_name() << ": "
     << r.size() << " stmts, " << r.terminals.size() << " terminals";
  resp.text = os.str();
  resp.ok = true;
  return resp;
}

Response AnalysisService::profile(Session& s) {
  Response resp;
  explorer::Workbench& wb = *s.wb;
  parallelizer::Driver& d = wb.driver();
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "session " << s.name << " (updates " << s.updates << ")\n";
  os << "passes:\n";
  for (const auto& [pass, ms] : wb.pass_times_ms()) {
    os << "  " << pass << "  " << ms << " ms\n";
  }
  os << "dominant pass: " << wb.dominant_pass() << "\n";
  os << "driver: workers " << d.workers() << ", epoch " << d.epoch()
     << ", cache " << d.cache_size() << " entries, hits " << d.cache_hits()
     << ", misses " << d.cache_misses() << ", shared "
     << d.single_flight_waits() << ", degraded " << d.degraded_loops() << "\n";
  if (!wb.degradations().empty()) {
    os << "degradations:\n";
    for (const std::string& dg : wb.degradations()) os << "  " << dg << "\n";
  }
  resp.text = os.str();

  // Machine-readable twin: the session/driver stats above plus the global
  // metrics registry, one JSON object. Tooling consumes this; the text stays
  // for humans.
  std::ostringstream js;
  js << "{\"session\":\"" << esc(s.name) << "\",\"updates\":" << s.updates
     << ",\"dominant_pass\":\"" << esc(wb.dominant_pass()) << "\",\"passes_ms\":{";
  bool first = true;
  js.setf(std::ios::fixed);
  js.precision(3);
  for (const auto& [pass, ms] : wb.pass_times_ms()) {
    js << (first ? "" : ",") << "\"" << esc(pass) << "\":" << ms;
    first = false;
  }
  js << "},\"driver\":{\"workers\":" << d.workers() << ",\"epoch\":" << d.epoch()
     << ",\"cache_entries\":" << d.cache_size() << ",\"hits\":" << d.cache_hits()
     << ",\"misses\":" << d.cache_misses() << ",\"shared\":"
     << d.single_flight_waits() << ",\"degraded\":" << d.degraded_loops()
     << "},\"degradations\":[";
  first = true;
  for (const std::string& dg : wb.degradations()) {
    js << (first ? "" : ",") << "\"" << esc(dg) << "\"";
    first = false;
  }
  js << "],\"metrics\":" << support::Metrics::global().report_json() << "}";
  resp.json = js.str();
  resp.ok = true;
  return resp;
}

Response AnalysisService::explain(Request& req, Session& s) {
  Response resp;
  explorer::Workbench& wb = *s.wb;
  parallelizer::Assertions asserts;
  if (!parse_asserts(req, wb, asserts, resp)) return resp;

  // Warm path: the driver memoizes per-loop plans, so when the caller
  // already ran Plan with the same assertions this re-plan is all cache hits
  // and Explain answers from the recorded verdicts without re-analysis.
  parallelizer::ParallelPlan p = wb.plan(asserts);

  // Speculation round (opt-in): one instrumented evidence run, promotion on
  // this request's private plan copy (the driver's cached records are
  // shared immutably — promotion amends copies), then the executive. The
  // promoted records below then carry the speculation-attempted entries.
  std::vector<parallelizer::SpecDecision> decisions;
  dynamic::SpecRunResult spec;
  if (req.speculate) {
    dynamic::LoopProfiler prof;
    dynamic::DynDepAnalyzer dyn;
    dynamic::Interpreter interp(wb.program());
    interp.add_hook(&prof);
    interp.add_hook(&dyn);
    interp.run();
    parallelizer::SpeculationPlanner planner;
    decisions = planner.promote(
        p, dynamic::gather_evidence(
               parallelizer::SpeculationPlanner::candidates(p), dyn, prof));
    spec = dynamic::run_speculative(wb.program(), p, dynamic::Inputs{});
  }

  // Render one loop's record (or a minimal stub when provenance was off).
  auto record_of = [](const parallelizer::LoopPlan& lp) {
    if (lp.why != nullptr) return lp.why;
    auto rec = std::make_shared<support::provenance::LoopRecord>();
    rec->loop = lp.loop->loop_name();
    rec->verdict =
        lp.degraded         ? "degraded"
        : lp.parallelizable ? "parallel"
        : lp.strategy == parallelizer::Strategy::Pipeline ? "pipeline"
        : lp.strategy == parallelizer::Strategy::Doacross ? "doacross"
                                                          : "serial";
    rec->reason = lp.reason;
    return std::shared_ptr<const support::provenance::LoopRecord>(rec);
  };

  std::vector<std::shared_ptr<const support::provenance::LoopRecord>> records;
  if (!req.loop.empty()) {
    const ir::Stmt* loop = wb.loop(req.loop);
    if (loop == nullptr) {
      resp.error = "unknown loop: " + req.loop;
      return resp;
    }
    const parallelizer::LoopPlan* lp = p.find(loop);
    if (lp == nullptr) {
      resp.error = "loop not in plan (unreachable from main?): " + req.loop;
      return resp;
    }
    records.push_back(record_of(*lp));
  } else {
    for (const parallelizer::LoopPlan* lp : p.ordered()) {
      records.push_back(record_of(*lp));
    }
  }

  std::string text;
  std::string js = "{\"schema\":\"";
  js += support::provenance::Ledger::kSchema;
  js += "\",\"loops\":[";
  bool first = true;
  for (const auto& rec : records) {
    text += rec->text();
    js += first ? "" : ",";
    js += rec->json();
    first = false;
  }
  js += "],\"degradations\":[";
  first = true;
  for (const std::string& dg : wb.degradations()) {
    text += "  ! build degradation: " + dg + "\n";
    js += (first ? "" : ",");
    js += "\"" + esc(dg) + "\"";
    first = false;
  }
  js += "]";
  if (req.speculate) {
    js += ",\"speculation\":[";
    first = true;
    for (const parallelizer::SpecDecision& d : decisions) {
      text += "speculation " + d.loop_name + ": " +
              (d.promoted ? "promoted" : "not promoted") + " (" + d.detail +
              ")\n";
      js += (first ? "" : ",");
      js += "{\"loop\":\"" + esc(d.loop_name) + "\",\"promoted\":";
      js += d.promoted ? "true" : "false";
      char risk[32];
      std::snprintf(risk, sizeof risk, "%.4f", d.risk);
      js += ",\"risk\":";
      js += risk;
      js += ",\"detail\":\"" + esc(d.detail) + "\"";
      auto it = spec.loops.find(d.loop_name);
      if (it != spec.loops.end()) {
        const dynamic::SpecLoopOutcome& o = it->second;
        text += "  outcome: " + std::to_string(o.attempts) + " attempt(s), " +
                std::to_string(o.commits) + " commit(s), " +
                std::to_string(o.misspeculations) + " misspeculation(s)" +
                (o.demoted ? "; demoted to serial" : "") + "\n";
        js += ",\"attempts\":" + std::to_string(o.attempts) +
              ",\"commits\":" + std::to_string(o.commits) +
              ",\"misspeculations\":" + std::to_string(o.misspeculations) +
              ",\"demoted\":" + (o.demoted ? "true" : "false");
      }
      js += "}";
      first = false;
    }
    js += "]";
  }
  js += "}";
  resp.text = std::move(text);
  resp.json = std::move(js);
  resp.loops = static_cast<int>(records.size());
  resp.ok = true;
  return resp;
}

}  // namespace suifx::service
