// The Loop Profile Analyzer (§2.5.1): runs the program sequentially and
// determines, for each loop, its total execution cost and average cost per
// invocation — the coverage and granularity inputs of the Parallelization
// Guru (§2.6). Additionally records, for a fixed set of processor counts,
// the block-scheduled maximum-chunk cost of every invocation, which lets the
// SMP simulator reproduce load imbalance exactly without storing every
// iteration cost.
#pragma once

#include <array>
#include <map>

#include "dynamic/interp.h"

namespace suifx::dynamic {

/// Processor counts for which block-schedule imbalance is precomputed.
inline constexpr std::array<int, 7> kProfiledProcs = {1, 2, 4, 8, 16, 32, 64};

struct LoopStats {
  uint64_t invocations = 0;
  uint64_t iterations = 0;
  uint64_t total_cost = 0;  // all units spent inside the loop (nested incl.)
  /// Per processor count p: sum over invocations of the heaviest block-
  /// scheduled chunk — the simulated parallel execution cost of the loop.
  std::array<uint64_t, kProfiledProcs.size()> max_chunk_cost{};

  double avg_invocation_cost() const {
    return invocations == 0 ? 0.0
                            : static_cast<double>(total_cost) /
                                  static_cast<double>(invocations);
  }
};

class LoopProfiler : public ExecHooks {
 public:
  void on_loop_enter(const ir::Stmt* loop) override;
  void on_loop_iter(const ir::Stmt* loop, long iv) override;
  void on_loop_exit(const ir::Stmt* loop) override;
  void on_cost(const ir::Stmt* s, uint64_t units) override;

  const std::map<const ir::Stmt*, LoopStats>& stats() const { return stats_; }
  const LoopStats* find(const ir::Stmt* loop) const;
  uint64_t program_cost() const { return program_cost_; }

  /// Fraction of total execution cost spent inside `loop` (0..1).
  double coverage(const ir::Stmt* loop) const;

  /// The thesis reports granularity in milliseconds; we convert cost units
  /// with a fixed calibration constant (units are ~one IR operation).
  static constexpr double kMsPerUnit = 20e-6;  // 20ns per unit
  double granularity_ms(const ir::Stmt* loop) const;

 private:
  struct ActiveLoop {
    const ir::Stmt* loop = nullptr;
    std::vector<uint64_t> iter_costs;
    uint64_t current = 0;
    bool iterating = false;
  };

  std::vector<ActiveLoop> active_;
  std::map<const ir::Stmt*, LoopStats> stats_;
  uint64_t program_cost_ = 0;
};

}  // namespace suifx::dynamic
