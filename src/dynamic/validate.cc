#include "dynamic/validate.h"

#include <cmath>

namespace suifx::dynamic {

ValidationResult validate_plan(const ir::Program& prog,
                               const std::vector<const ir::Stmt*>& parallel_loops,
                               const Inputs& inputs, double rel_tolerance) {
  ValidationResult out;
  {
    Interpreter interp(prog);
    interp.set_inputs(inputs);
    RunResult r = interp.run();
    if (!r.ok) {
      out.detail = "forward run failed: " + r.error;
      return out;
    }
    out.forward = std::move(r.printed);
  }
  {
    Interpreter interp(prog);
    interp.set_inputs(inputs);
    interp.set_reversed_loops(
        {parallel_loops.begin(), parallel_loops.end()});
    RunResult r = interp.run();
    if (!r.ok) {
      out.detail = "reordered run failed: " + r.error;
      return out;
    }
    out.reordered = std::move(r.printed);
  }
  if (out.forward.size() != out.reordered.size()) {
    out.detail = "output counts differ";
    return out;
  }
  for (size_t i = 0; i < out.forward.size(); ++i) {
    double a = out.forward[i];
    double b = out.reordered[i];
    double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
    if (std::fabs(a - b) > rel_tolerance * scale) {
      out.detail = "output " + std::to_string(i) + " differs: " +
                   std::to_string(a) + " vs " + std::to_string(b) +
                   " — the plan is order-sensitive";
      return out;
    }
  }
  out.ok = true;
  return out;
}

}  // namespace suifx::dynamic
