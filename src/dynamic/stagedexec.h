// The staged parallelization executive (docs/pdg_planning.md): runs a
// program whose ParallelPlan carries Pipeline/Doacross loops (promoted by
// the parallelizer::StrategyPlanner), driving the Interpreter's staged
// executives per promoted loop — DSWP stage-by-stage fission with bounded
// stage queues, or residue-class DOACROSS with post/wait sync cells — and
// accounting every outcome into Metrics, the provenance ledger, and a
// per-loop report. Output is byte-identical to a plain serial run whether
// loops commit or demote: a demoted attempt restores the pre-loop state and
// re-executes serially (the last rung of the degradation ladder,
// docs/robustness.md).
#pragma once

#include <map>
#include <set>
#include <string>

#include "dynamic/interp.h"
#include "parallelizer/parallelizer.h"

namespace suifx::dynamic {

struct StagedExecOptions {
  /// Interpreter execution budget.
  uint64_t max_cost = 2'000'000'000ULL;
  /// Per-channel stage queue capacity (0 = SUIFX_STAGE_QUEUE_CAP or the
  /// built-in default). Loops with channels and trip > capacity are refused.
  size_t queue_capacity = 0;
  /// Force every staged attempt to demote to serial (fault drills; the fuzz
  /// oracle's forced-abort leg).
  bool force_abort = false;
};

/// Per-loop staging accounting, keyed by loop name in StagedRunResult.
struct StagedLoopOutcome {
  std::string loop_name;
  parallelizer::Strategy strategy = parallelizer::Strategy::Serial;
  uint64_t attempts = 0;       // staged executions started
  uint64_t commits = 0;        // ran staged to completion
  uint64_t demotions = 0;      // fell back to the plain serial loop
  uint64_t refusals = 0;       // executive declined before staging
  uint64_t queued_values = 0;  // channel pushes (pipeline)
  uint64_t max_queue_depth = 0;
  uint64_t syncs = 0;          // post/wait pairs (doacross)
  /// The degradation ladder stopped offering this loop's staged plan after
  /// its first abort.
  bool demoted = false;
  /// Last abort/ineligibility reason ("" when clean).
  std::string last_detail;
};

struct StagedRunResult {
  RunResult run;
  std::map<std::string, StagedLoopOutcome> loops;

  uint64_t attempts() const;
  uint64_t commits() const;
  uint64_t demotions() const;
};

/// Execute the program, running every Pipeline/Doacross loop of `plan` under
/// the staged executives.
StagedRunResult run_staged(const ir::Program& prog,
                           const parallelizer::ParallelPlan& plan,
                           const Inputs& inputs,
                           const StagedExecOptions& opts = {});

}  // namespace suifx::dynamic
