#include "dynamic/profile.h"

#include <algorithm>

namespace suifx::dynamic {

void LoopProfiler::on_loop_enter(const ir::Stmt* loop) {
  ActiveLoop a;
  a.loop = loop;
  active_.push_back(std::move(a));
}

void LoopProfiler::on_loop_iter(const ir::Stmt* loop, long iv) {
  (void)iv;
  ActiveLoop& a = active_.back();
  if (a.loop != loop) return;  // defensive; hooks are well-nested
  if (a.iterating) {
    a.iter_costs.push_back(a.current);
  }
  a.current = 0;
  a.iterating = true;
}

void LoopProfiler::on_loop_exit(const ir::Stmt* loop) {
  ActiveLoop a = std::move(active_.back());
  active_.pop_back();
  if (a.iterating) a.iter_costs.push_back(a.current);

  LoopStats& st = stats_[loop];
  ++st.invocations;
  st.iterations += a.iter_costs.size();
  uint64_t total = 0;
  for (uint64_t c : a.iter_costs) total += c;
  st.total_cost += total;
  // Block-scheduled heaviest chunk per processor count.
  size_t n = a.iter_costs.size();
  for (size_t pi = 0; pi < kProfiledProcs.size(); ++pi) {
    int p = kProfiledProcs[pi];
    uint64_t max_chunk = 0;
    for (int proc = 0; proc < p; ++proc) {
      size_t lo = n * static_cast<size_t>(proc) / static_cast<size_t>(p);
      size_t hi = n * static_cast<size_t>(proc + 1) / static_cast<size_t>(p);
      uint64_t chunk = 0;
      for (size_t k = lo; k < hi; ++k) chunk += a.iter_costs[k];
      max_chunk = std::max(max_chunk, chunk);
    }
    st.max_chunk_cost[pi] += max_chunk;
  }
  // The loop's cost is also part of every still-active enclosing loop's
  // current iteration (already accumulated through on_cost), nothing to do.
}

void LoopProfiler::on_cost(const ir::Stmt* s, uint64_t units) {
  (void)s;
  program_cost_ += units;
  for (ActiveLoop& a : active_) a.current += units;
}

const LoopStats* LoopProfiler::find(const ir::Stmt* loop) const {
  auto it = stats_.find(loop);
  return it != stats_.end() ? &it->second : nullptr;
}

double LoopProfiler::coverage(const ir::Stmt* loop) const {
  const LoopStats* st = find(loop);
  if (st == nullptr || program_cost_ == 0) return 0.0;
  return static_cast<double>(st->total_cost) / static_cast<double>(program_cost_);
}

double LoopProfiler::granularity_ms(const ir::Stmt* loop) const {
  const LoopStats* st = find(loop);
  if (st == nullptr) return 0.0;
  return st->avg_invocation_cost() * kMsPerUnit;
}

}  // namespace suifx::dynamic
