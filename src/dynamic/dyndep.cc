#include "dynamic/dyndep.h"

namespace suifx::dynamic {

void DynDepAnalyzer::on_loop_enter(const ir::Stmt* loop) {
  ActiveFrame f;
  f.loop = loop;
  f.monitored = opts_.monitor.empty() || opts_.monitor.count(loop) != 0;
  active_.push_back(std::move(f));
}

void DynDepAnalyzer::on_loop_iter(const ir::Stmt* loop, long iv) {
  (void)iv;
  ActiveFrame& f = active_.back();
  if (f.loop != loop) return;
  ++f.iter_seq;
  f.sampled = opts_.stride <= 1 || (f.iter_seq % opts_.stride) == 0;
}

void DynDepAnalyzer::on_loop_exit(const ir::Stmt* loop) {
  ActiveFrame f = std::move(active_.back());
  active_.pop_back();
  if (!f.monitored) return;
  DynDepResult& r = results_[loop];
  r.monitored_iterations += static_cast<uint64_t>(f.iter_seq + 1);
  for (const ir::Variable* v : f.read_from_prev_iter) {
    r.dep_vars.insert(v);
    r.any_carried = true;
  }
  for (const ir::Variable* v : f.wrote) {
    if (f.read_from_prev_iter.count(v) == 0) r.priv_candidates.insert(v);
  }
}

void DynDepAnalyzer::on_read(const ir::Stmt* s, const Addr& a) {
  (void)s;
  for (ActiveFrame& f : active_) {
    if (!f.monitored || !f.sampled) continue;
    auto it = f.last_write.find(key(a));
    if (it == f.last_write.end()) continue;  // value from before the loop
    if (it->second.first != f.iter_seq) {
      // Flow dependence carried across iterations — unless the compiler
      // already knows how to transform this variable.
      auto ig = opts_.ignore.find(f.loop);
      if (ig != opts_.ignore.end() &&
          (ig->second.count(a.var) != 0 || ig->second.count(it->second.second) != 0)) {
        continue;
      }
      f.read_from_prev_iter.insert(a.var);
    }
  }
}

void DynDepAnalyzer::on_write(const ir::Stmt* s, const Addr& a) {
  (void)s;
  for (ActiveFrame& f : active_) {
    if (!f.monitored || !f.sampled) continue;
    f.last_write[key(a)] = {f.iter_seq, a.var};
    f.wrote.insert(a.var);
  }
}

const DynDepResult& DynDepAnalyzer::result(const ir::Stmt* loop) const {
  static const DynDepResult kEmpty;
  auto it = results_.find(loop);
  return it != results_.end() ? it->second : kEmpty;
}

bool DynDepAnalyzer::observed_carried(const ir::Stmt* loop) const {
  return result(loop).any_carried;
}

}  // namespace suifx::dynamic
