#include "dynamic/specexec.h"

#include <cstdio>

#include "support/metrics.h"
#include "support/provenance.h"

namespace suifx::dynamic {

namespace prov = support::provenance;

namespace {

std::string fmt_rate(double r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", r);
  return buf;
}

/// Interpreter-side controller backed by a ParallelPlan: speculate exactly
/// the Speculative loops the breaker still allows, and account every outcome
/// into Metrics, the global ledger, and the run's per-loop report.
class PlanSpecController : public SpecController {
 public:
  PlanSpecController(const parallelizer::ParallelPlan& plan,
                     const SpecExecOptions& opts, SpecRunResult& out)
      : plan_(plan), opts_(opts), out_(out) {}

  bool should_speculate(const ir::Stmt* loop) override {
    const parallelizer::LoopPlan* lp = plan_.find(loop);
    if (lp == nullptr || lp->strategy != parallelizer::Strategy::Speculative) {
      return false;
    }
    if (opts_.breaker != nullptr && !opts_.breaker->allow(loop->loop_name())) {
      support::Metrics::global().count("spec.breaker_skip");
      return false;
    }
    return true;
  }

  bool force_misspeculate(const ir::Stmt* loop) override {
    (void)loop;
    return opts_.force_misspeculation;
  }

  void on_attempt(const Attempt& a) override {
    support::Metrics& m = support::Metrics::global();
    const std::string name = a.loop->loop_name();
    SpecLoopOutcome& o = out_.loops[name];
    o.loop_name = name;

    if (!a.attempted) {
      ++o.refusals;
      o.last_detail = a.ineligible;
      m.count("spec.refused");
      return;
    }
    ++o.attempts;
    o.shadow_writes += a.writes;
    m.count("spec.attempt");

    if (a.committed) {
      ++o.commits;
      o.commit_writes += a.commit_writes;
      o.validated_iterations += static_cast<uint64_t>(a.trip);
      o.last_detail.clear();
      m.count("spec.commit");
    } else {
      ++o.misspeculations;
      o.last_detail = a.conflict_var;
      m.count("spec.misspeculation");
      m.count("spec.rollback");
      std::string detail;
      if (a.forced) {
        detail = "forced misspeculation (drill or injected fault)";
      } else if (!a.conflict_var.empty()) {
        detail = std::to_string(a.conflicts) +
                 " cross-iteration conflict(s); first on " + a.conflict_var;
        // Did the planner's watch set anticipate the conflicting variable?
        const parallelizer::LoopPlan* lp = plan_.find(a.loop);
        bool hit = false;
        if (lp != nullptr) {
          for (const ir::Variable* v : lp->watch) {
            hit |= v->qualified_name() == a.conflict_var;
          }
        }
        m.count(hit ? "spec.watch_hit" : "spec.watch_miss");
      } else {
        detail = "execution failed under speculation; re-running serially";
      }
      prov::event(prov::Kind::Misspeculation, name, a.conflict_var, detail);
      prov::event(prov::Kind::Rollback, name, "",
                  "speculative state discarded after " +
                      std::to_string(a.trip) +
                      " iteration(s); serial re-execution");
    }

    if (opts_.breaker != nullptr &&
        opts_.breaker->record(name, !a.committed)) {
      o.demoted = true;
      m.count("spec.demoted");
      runtime::spec::SpecBreaker::Stats st = opts_.breaker->stats(name);
      prov::event(prov::Kind::Degraded, name, "",
                  "speculation demoted to serial: misspeculation rate " +
                      fmt_rate(st.attempts == 0
                                   ? 0.0
                                   : static_cast<double>(st.misspecs) /
                                         static_cast<double>(st.attempts)) +
                      " over " + std::to_string(st.attempts) + " attempts");
    }
  }

 private:
  const parallelizer::ParallelPlan& plan_;
  const SpecExecOptions& opts_;
  SpecRunResult& out_;
};

}  // namespace

uint64_t SpecRunResult::attempts() const {
  uint64_t n = 0;
  for (const auto& [name, o] : loops) n += o.attempts;
  return n;
}

uint64_t SpecRunResult::commits() const {
  uint64_t n = 0;
  for (const auto& [name, o] : loops) n += o.commits;
  return n;
}

uint64_t SpecRunResult::misspeculations() const {
  uint64_t n = 0;
  for (const auto& [name, o] : loops) n += o.misspeculations;
  return n;
}

SpecRunResult run_speculative(const ir::Program& prog,
                              const parallelizer::ParallelPlan& plan,
                              const Inputs& inputs,
                              const SpecExecOptions& opts) {
  SpecRunResult out;
  PlanSpecController ctl(plan, opts, out);
  Interpreter interp(prog);
  interp.set_inputs(inputs);
  interp.set_spec_controller(&ctl);
  interp.set_spec_workers(opts.workers);
  out.run = interp.run(opts.max_cost);
  return out;
}

parallelizer::SpecEvidence evidence_for(const ir::Stmt* loop,
                                        const DynDepAnalyzer& dyn,
                                        const LoopProfiler& prof) {
  parallelizer::SpecEvidence ev;
  const DynDepResult& d = dyn.result(loop);
  ev.observed_carried = d.any_carried;
  ev.monitored_iterations = d.monitored_iterations;
  if (const LoopStats* st = prof.find(loop)) {
    ev.invocations = st->invocations;
    ev.loop_cost = static_cast<double>(st->total_cost);
  }
  return ev;
}

std::map<const ir::Stmt*, parallelizer::SpecEvidence> gather_evidence(
    const std::vector<const ir::Stmt*>& loops, const DynDepAnalyzer& dyn,
    const LoopProfiler& prof) {
  std::map<const ir::Stmt*, parallelizer::SpecEvidence> out;
  for (const ir::Stmt* loop : loops) {
    out[loop] = evidence_for(loop, dyn, prof);
  }
  return out;
}

}  // namespace suifx::dynamic
