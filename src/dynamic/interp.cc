#include "dynamic/interp.h"

#include <cmath>
#include <deque>
#include <stdexcept>

#include "support/fault.h"

namespace suifx::dynamic {

namespace {

/// Deterministic 64-bit mix (splitmix64 finalizer).
uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t name_hash(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  return h;
}

struct AbortExec {};

}  // namespace

Interpreter::Interpreter(const ir::Program& prog) : prog_(prog) {}

bool Interpreter::formal_modified(const ir::Procedure* callee, size_t ix) {
  auto it = formal_mod_.find(callee);
  if (it == formal_mod_.end()) {
    std::vector<bool> mods(callee->formals.size(), false);
    callee->for_each([&](const ir::Stmt* s) {
      auto mark = [&](const ir::Variable* v) {
        for (size_t i = 0; i < callee->formals.size(); ++i) {
          if (callee->formals[i] == v) mods[i] = true;
        }
      };
      if (s->kind == ir::StmtKind::Assign) {
        mark(s->lhs->var);
      } else if (s->kind == ir::StmtKind::Do) {
        mark(s->ivar);
      } else if (s->kind == ir::StmtKind::Call) {
        for (size_t i = 0; i < s->args.size(); ++i) {
          const ir::Expr* a = s->args[i];
          if ((a->is_var_ref() || a->is_array_ref()) &&
              formal_modified(s->callee, i)) {
            mark(a->var);
          }
        }
      }
    });
    it = formal_mod_.insert({callee, std::move(mods)}).first;
  }
  return ix < it->second.size() && it->second[ix];
}

long Interpreter::param_value(const ir::Variable* p) const {
  auto it = inputs_.params.find(p->name);
  return it != inputs_.params.end() ? it->second : p->param_default;
}

double Interpreter::default_fill(const ir::Variable* v, long index) const {
  uint64_t h = mix(name_hash(v->name) ^ mix(inputs_.seed + static_cast<uint64_t>(index)));
  if (v->elem == ir::ScalarType::Int) {
    // Small positive integers: safe as subscript components for typical SF
    // programs that bound them further themselves.
    return static_cast<double>(1 + static_cast<long>(h % 8));
  }
  return static_cast<double>(h % 1000000ULL) / 1000000.0;
}

uint64_t Interpreter::expr_cost(const ir::Expr* e) const {
  uint64_t n = 0;
  ir::for_each_expr(e, [&](const ir::Expr*) { ++n; });
  return n;
}

void Interpreter::fail(const ir::Stmt* s, const std::string& msg) {
  if (!aborted_) {
    result_.error = "line " + std::to_string(s != nullptr ? s->line : 0) + ": " + msg;
    aborted_ = true;
  }
  throw AbortExec{};
}

// ---------------------------------------------------------------------------
// Storage & bindings
// ---------------------------------------------------------------------------

Interpreter::ArrayBinding Interpreter::make_binding(const ir::Variable* v, Frame& f,
                                                    int storage, long base) {
  ArrayBinding b;
  b.storage = storage;
  b.base = base;
  for (const ir::Dim& d : v->dims) {
    long lo = eval_int(d.lower, f);
    long hi = eval_int(d.upper, f);
    b.lower.push_back(lo);
    b.extent.push_back(std::max<long>(0, hi - lo + 1));
  }
  return b;
}

double* Interpreter::scalar_slot(const ir::Variable* v, Frame& f) {
  if (v->kind == ir::VarKind::Formal) return &f.scalars[v];
  return nullptr;  // storage-backed (local/global/common)
}

Addr Interpreter::scalar_addr(const ir::Variable* v, Frame& f) {
  Addr a;
  a.var = v;
  switch (v->kind) {
    case ir::VarKind::Local: {
      auto it = f.scalar_addrs.find(v);
      if (it == f.scalar_addrs.end()) {
        // Auto-declared (loop index discovered mid-body): allocate lazily.
        storages_.push_back({});
        storages_.back().data.assign(1, 0.0);
        Addr na;
        na.storage = static_cast<int>(storages_.size()) - 1;
        na.offset = 0;
        na.var = v;
        it = f.scalar_addrs.insert({v, na}).first;
      }
      return it->second;
    }
    case ir::VarKind::CommonMember:
      a.storage = common_storage_.at(v->common);
      a.offset = v->common_offset;
      return a;
    case ir::VarKind::Global:
      a.storage = global_storage_.at(v);
      a.offset = 0;
      return a;
    default:
      fail(nullptr, "no storage for scalar '" + v->name + "'");
      return a;
  }
}

double Interpreter::load(const Addr& a) {
  double base =
      storages_[static_cast<size_t>(a.storage)].data[static_cast<size_t>(a.offset)];
  if (spec_ != nullptr && spec_->cur_iter >= 0 &&
      static_cast<size_t>(a.storage) < spec_->base_storages) {
    uint64_t key = spec_key(a);
    spec_->key_var.emplace(key, a.var);
    return spec_->vm.load(spec_->cur_iter, key, base);
  }
  return base;
}

void Interpreter::store(const Addr& a, double v) {
  if (spec_ != nullptr && spec_->cur_iter >= 0 &&
      static_cast<size_t>(a.storage) < spec_->base_storages) {
    uint64_t key = spec_key(a);
    spec_->key_var.emplace(key, a.var);
    spec_->vm.store(spec_->cur_iter, key, v);
    return;
  }
  storages_[static_cast<size_t>(a.storage)].data[static_cast<size_t>(a.offset)] = v;
}

Addr Interpreter::locate(const ir::Expr* ref, Frame& f) {
  const ir::Variable* v = ref->var;
  const ArrayBinding* b = nullptr;
  if (v->kind == ir::VarKind::Global) {
    auto it = global_bindings_.find(v);
    if (it == global_bindings_.end()) fail(nullptr, "unbound array '" + v->name + "'");
    b = &it->second;
  } else {
    auto it = f.arrays.find(v);
    if (it == f.arrays.end()) fail(nullptr, "unbound array '" + v->name + "'");
    b = &it->second;
  }
  // Column-major (Fortran) flattening with bounds checks.
  long flat = 0;
  long stride = 1;
  for (size_t k = 0; k < ref->idx.size(); ++k) {
    long ix = eval_int(ref->idx[k], f);
    long rel = ix - b->lower[k];
    if (rel < 0 || rel >= b->extent[k]) {
      fail(nullptr, "subscript " + std::to_string(ix) + " out of bounds for '" +
                        v->name + "' dim " + std::to_string(k + 1));
    }
    flat += rel * stride;
    stride *= b->extent[k];
  }
  Addr a;
  a.storage = b->storage;
  a.offset = b->base + flat;
  a.var = v;
  if (a.offset < 0 ||
      a.offset >= static_cast<long>(storages_[static_cast<size_t>(a.storage)].data.size())) {
    fail(nullptr, "address out of storage for '" + v->name + "'");
  }
  return a;
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

long Interpreter::eval_int(const ir::Expr* e, Frame& f) {
  double v = eval(e, f);
  return static_cast<long>(std::llround(v));
}

double Interpreter::eval(const ir::Expr* e, Frame& f) {
  switch (e->kind) {
    case ir::ExprKind::IntConst:
      return static_cast<double>(e->ival);
    case ir::ExprKind::RealConst:
      return e->rval;
    case ir::ExprKind::VarRef: {
      const ir::Variable* v = e->var;
      if (v->kind == ir::VarKind::SymParam) return static_cast<double>(param_value(v));
      if (v->is_array()) fail(nullptr, "whole-array read of '" + v->name + "'");
      if (double* slot = scalar_slot(v, f)) return *slot;
      Addr a = scalar_addr(v, f);
      for (ExecHooks* h : hooks_) h->on_read(nullptr, a);
      return load(a);
    }
    case ir::ExprKind::ArrayRef: {
      Addr a = locate(e, f);
      for (ExecHooks* h : hooks_) h->on_read(nullptr, a);
      return load(a);
    }
    case ir::ExprKind::Binary: {
      double x = eval(e->a, f);
      // Short-circuit booleans.
      if (e->bop == ir::BinOp::And) return (x != 0.0 && eval(e->b, f) != 0.0) ? 1.0 : 0.0;
      if (e->bop == ir::BinOp::Or) return (x != 0.0 || eval(e->b, f) != 0.0) ? 1.0 : 0.0;
      double y = eval(e->b, f);
      switch (e->bop) {
        case ir::BinOp::Add: return x + y;
        case ir::BinOp::Sub: return x - y;
        case ir::BinOp::Mul: return x * y;
        case ir::BinOp::Div:
          if (e->type == ir::ScalarType::Int) {
            long yi = static_cast<long>(std::llround(y));
            if (yi == 0) fail(nullptr, "integer division by zero");
            return static_cast<double>(static_cast<long>(std::llround(x)) / yi);
          }
          return x / y;
        case ir::BinOp::Mod: {
          long yi = static_cast<long>(std::llround(y));
          if (yi == 0) fail(nullptr, "mod by zero");
          return static_cast<double>(static_cast<long>(std::llround(x)) % yi);
        }
        case ir::BinOp::Min: return std::min(x, y);
        case ir::BinOp::Max: return std::max(x, y);
        case ir::BinOp::Lt: return x < y ? 1.0 : 0.0;
        case ir::BinOp::Le: return x <= y ? 1.0 : 0.0;
        case ir::BinOp::Gt: return x > y ? 1.0 : 0.0;
        case ir::BinOp::Ge: return x >= y ? 1.0 : 0.0;
        case ir::BinOp::Eq: return x == y ? 1.0 : 0.0;
        case ir::BinOp::Ne: return x != y ? 1.0 : 0.0;
        default: return 0.0;
      }
    }
    case ir::ExprKind::Unary: {
      double x = eval(e->a, f);
      switch (e->uop) {
        case ir::UnOp::Neg: return -x;
        case ir::UnOp::Not: return x == 0.0 ? 1.0 : 0.0;
        case ir::UnOp::Sqrt: return std::sqrt(x);
        case ir::UnOp::Exp: return std::exp(x);
        case ir::UnOp::Log: return std::log(x);
        case ir::UnOp::Abs: return std::fabs(x);
        case ir::UnOp::IntCast: return static_cast<double>(static_cast<long>(x));
        case ir::UnOp::RealCast: return x;
      }
      return 0.0;
    }
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void Interpreter::exec_stmt(const ir::Stmt* s, Frame& f) {
  if (fuel_ == 0) fail(s, "execution budget exhausted");
  uint64_t cost = 1;
  switch (s->kind) {
    case ir::StmtKind::Assign: {
      cost += expr_cost(s->rhs) + expr_cost(s->lhs);
      double v = eval(s->rhs, f);
      if (s->lhs->is_array_ref()) {
        Addr a = locate(s->lhs, f);
        for (ExecHooks* h : hooks_) h->on_write(s, a);
        if (s->lhs->type == ir::ScalarType::Int) v = std::llround(v);
        store(a, v);
      } else {
        const ir::Variable* lv = s->lhs->var;
        if (s->lhs->type == ir::ScalarType::Int) v = std::llround(v);
        if (double* slot = scalar_slot(lv, f)) {
          *slot = v;
        } else {
          Addr a = scalar_addr(lv, f);
          for (ExecHooks* h : hooks_) h->on_write(s, a);
          store(a, v);
        }
      }
      break;
    }
    case ir::StmtKind::If:
      cost += expr_cost(s->cond);
      if (eval(s->cond, f) != 0.0) {
        for (ExecHooks* h : hooks_) h->on_cost(s, cost);
        fuel_ = fuel_ > cost ? fuel_ - cost : 0;
        result_.total_cost += cost;
        exec_body(s->then_body, f);
        return;
      }
      for (ExecHooks* h : hooks_) h->on_cost(s, cost);
      fuel_ = fuel_ > cost ? fuel_ - cost : 0;
      result_.total_cost += cost;
      exec_body(s->else_body, f);
      return;
    case ir::StmtKind::Do: {
      cost += expr_cost(s->lb) + expr_cost(s->ub);
      long lb = eval_int(s->lb, f);
      long ub = eval_int(s->ub, f);
      long step = eval_int(s->step, f);
      for (ExecHooks* h : hooks_) h->on_cost(s, cost);
      fuel_ = fuel_ > cost ? fuel_ - cost : 0;
      result_.total_cost += cost;
      for (ExecHooks* h : hooks_) h->on_loop_enter(s);
      double* islot = scalar_slot(s->ivar, f);
      Addr iaddr;
      if (islot == nullptr) iaddr = scalar_addr(s->ivar, f);
      long trip = step > 0 ? (ub - lb + step) / step : (lb - ub - step) / (-step);
      trip = std::max<long>(0, trip);
      bool reversed = reversed_.count(s) != 0;
      if (spec_ == nullptr && !stage_active_ && stage_ctl_ != nullptr &&
          !reversed && trip > 1) {
        if (const runtime::staged::StagedLoopPlan* sp = stage_ctl_->staged_plan(s)) {
          bool done = sp->kind == runtime::staged::StagedKind::Pipeline
                          ? exec_do_pipeline(s, f, islot, iaddr, lb, step, trip, *sp)
                          : exec_do_doacross(s, f, islot, iaddr, lb, step, trip, *sp);
          if (done) {
            for (ExecHooks* h : hooks_) h->on_loop_exit(s);
            return;
          }
          // Refused or demoted: the snapshot restored the pre-loop state;
          // fall through to the plain serial loop.
        }
      }
      if (spec_ == nullptr && !stage_active_ && spec_ctl_ != nullptr &&
          !reversed && trip > 1 && spec_ctl_->should_speculate(s)) {
        if (exec_do_speculative(s, f, islot, iaddr, lb, step, trip)) {
          for (ExecHooks* h : hooks_) h->on_loop_exit(s);
          return;
        }
        // Refused or rolled back: fall through to the plain serial loop
        // against the untouched pre-loop state.
      }
      for (long k = 0; k < trip; ++k) {
        long iv = reversed ? lb + (trip - 1 - k) * step : lb + k * step;
        for (ExecHooks* h : hooks_) h->on_loop_iter(s, iv);
        if (islot != nullptr) {
          *islot = static_cast<double>(iv);
        } else {
          for (ExecHooks* h : hooks_) h->on_write(s, iaddr);
          store(iaddr, static_cast<double>(iv));
        }
        exec_body(s->body, f);
      }
      for (ExecHooks* h : hooks_) h->on_loop_exit(s);
      return;
    }
    case ir::StmtKind::Call:
      exec_call(s, f);
      break;
    case ir::StmtKind::Print:
      cost += expr_cost(s->value);
      result_.printed.push_back(eval(s->value, f));
      break;
    case ir::StmtKind::Nop:
      break;
  }
  for (ExecHooks* h : hooks_) h->on_cost(s, cost);
  fuel_ = fuel_ > cost ? fuel_ - cost : 0;
  result_.total_cost += cost;
}

void Interpreter::exec_body(const std::vector<ir::Stmt*>& body, Frame& f) {
  for (const ir::Stmt* s : body) exec_stmt(s, f);
}

// ---------------------------------------------------------------------------
// Speculative executive (docs/speculation.md)
// ---------------------------------------------------------------------------

std::string Interpreter::spec_ineligible(const ir::Stmt* s) {
  std::string why;
  ir::for_each_nested(s, [&](const ir::Stmt* n) {
    if (!why.empty()) return;
    // The loop's own induction variable is exempt: the executive writes it
    // itself in serial iteration order, so its final value matches a serial
    // run with or without a commit.
    auto formal_scalar = [&](const ir::Variable* v) {
      return v != nullptr && v != s->ivar && v->kind == ir::VarKind::Formal &&
             v->is_scalar();
    };
    if (n->kind == ir::StmtKind::Assign && n->lhs->is_var_ref() &&
        formal_scalar(n->lhs->var)) {
      why = "writes formal scalar '" + n->lhs->var->name + "'";
    } else if (n->kind == ir::StmtKind::Do && formal_scalar(n->ivar)) {
      why = "inner loop index '" + n->ivar->name + "' is a formal scalar";
    } else if (n->kind == ir::StmtKind::Call) {
      for (size_t i = 0; i < n->args.size(); ++i) {
        const ir::Expr* a = n->args[i];
        if (a->is_var_ref() && formal_scalar(a->var) &&
            formal_modified(n->callee, i)) {
          why = "call may write formal scalar '" + a->var->name + "'";
          break;
        }
      }
    }
  });
  if (why.empty()) return why;
  return why +
         "; formal scalars are frame-private and bypass the speculative "
         "shadow";
}

bool Interpreter::exec_do_speculative(const ir::Stmt* s, Frame& f, double* islot,
                                      const Addr& iaddr, long lb, long step,
                                      long trip) {
  namespace fault = support::fault;
  SpecController::Attempt at;
  at.loop = s;
  at.trip = trip;
  at.ineligible = spec_ineligible(s);
  if (!at.ineligible.empty()) {
    spec_ctl_->on_attempt(at);
    return false;
  }
  at.attempted = true;

  // Rollback snapshot: the shadow absorbs every write to pre-existing
  // storage, so only the interpreter's own bookkeeping needs saving.
  const uint64_t fuel0 = fuel_;
  const uint64_t cost0 = result_.total_cost;
  const size_t printed0 = result_.printed.size();

  spec_ = std::make_unique<SpecState>();
  spec_->base_storages = storages_.size();
  spec_->vm.reset(trip);

  bool exec_ok = true;
  try {
    for (long k = 0; k < trip; ++k) {
      long iv = lb + k * step;
      for (ExecHooks* h : hooks_) h->on_loop_iter(s, iv);
      spec_->cur_iter = k;
      if (islot != nullptr) {
        *islot = static_cast<double>(iv);
      } else {
        for (ExecHooks* h : hooks_) h->on_write(s, iaddr);
        store(iaddr, static_cast<double>(iv));
      }
      exec_body(s->body, f);
      spec_->cur_iter = -1;
    }
  } catch (const AbortExec&) {
    // Any in-flight failure (bounds, budget) is treated as a misspeculation:
    // roll back and let the serial re-execution reproduce the identical
    // failure against identical state.
    exec_ok = false;
  }
  spec_->cur_iter = -1;
  at.writes = spec_->vm.writes();
  at.exposed_reads = spec_->vm.exposed_reads();

  // Injection point: a simulated conflict — validation is treated as failed
  // without consulting the shadow.
  bool conflict_injected = false;
  if (exec_ok) {
    try {
      SUIFX_FAULT_POINT("speculate.conflict");
    } catch (const fault::InjectedFault&) {
      conflict_injected = true;
    }
  }

  runtime::spec::ValidateResult vr;
  if (exec_ok && !conflict_injected) vr = spec_->vm.validate(spec_workers_);
  const bool forced = spec_ctl_->force_misspeculate(s);
  at.forced = exec_ok && vr.ok && (forced || conflict_injected);
  at.conflicts = vr.conflicts;
  if (!vr.first.empty()) {
    auto it = spec_->key_var.find(vr.first.front().key);
    if (it != spec_->key_var.end() && it->second != nullptr) {
      at.conflict_var = it->second->qualified_name();
    }
  }

  if (exec_ok && !conflict_injected && vr.ok && !forced) {
    // Commit: merged last-writer-wins state, ascending key order. The undo
    // log makes a fault injected mid-commit leave memory untouched.
    std::vector<std::pair<uint64_t, double>> plan = spec_->vm.commit_plan();
    std::vector<std::pair<uint64_t, double>> undo;
    undo.reserve(plan.size());
    bool commit_ok = true;
    for (const auto& [key, val] : plan) {
      try {
        SUIFX_FAULT_POINT("speculate.commit");
      } catch (const fault::InjectedFault&) {
        commit_ok = false;
        break;
      }
      size_t sid = static_cast<size_t>(key >> 40);
      size_t off = static_cast<size_t>(key & ((1ULL << 40) - 1));
      undo.push_back({key, storages_[sid].data[off]});
      storages_[sid].data[off] = val;
    }
    if (commit_ok) {
      at.committed = true;
      at.commit_writes = static_cast<uint64_t>(plan.size());
      spec_.reset();
      spec_ctl_->on_attempt(at);
      return true;
    }
    for (size_t i = undo.size(); i > 0; --i) {
      const auto& [key, old] = undo[i - 1];
      storages_[static_cast<size_t>(key >> 40)]
          .data[static_cast<size_t>(key & ((1ULL << 40) - 1))] = old;
    }
    at.forced = true;  // injected commit fault, not an observed conflict
  }

  // Roll back. Memory is already pristine (shadow writes never landed, the
  // partial commit was undone above); restore the bookkeeping the attempt
  // advanced so the serial re-execution is byte-identical to a run that
  // never speculated.
  fuel_ = fuel0;
  result_.total_cost = cost0;
  result_.printed.resize(printed0);
  result_.error.clear();
  aborted_ = false;
  spec_.reset();
  try {
    SUIFX_FAULT_POINT("speculate.rollback");
  } catch (const fault::InjectedFault&) {
    // Rollback is infallible by design: the fault is absorbed (the registry
    // still counts it as fired) — there is nothing left to unwind.
  }
  spec_ctl_->on_attempt(at);
  return false;
}

// ---------------------------------------------------------------------------
// Staged executives (docs/pdg_planning.md)
// ---------------------------------------------------------------------------

double Interpreter::read_scalar_var(const ir::Variable* v, Frame& f) {
  if (double* slot = scalar_slot(v, f)) return *slot;
  return load(scalar_addr(v, f));
}

void Interpreter::write_scalar_var(const ir::Variable* v, Frame& f, double val) {
  if (double* slot = scalar_slot(v, f)) {
    *slot = val;
  } else {
    store(scalar_addr(v, f), val);
  }
}

Interpreter::StageSnapshot Interpreter::stage_snapshot(const Frame& f) const {
  StageSnapshot snap;
  snap.fuel = fuel_;
  snap.cost = result_.total_cost;
  snap.printed = result_.printed.size();
  snap.storages = storages_;
  snap.scalars = f.scalars;
  snap.scalar_addrs = f.scalar_addrs;
  return snap;
}

void Interpreter::stage_restore(StageSnapshot&& snap, Frame& f) {
  fuel_ = snap.fuel;
  result_.total_cost = snap.cost;
  result_.printed.resize(snap.printed);
  result_.error.clear();
  aborted_ = false;
  // Restoring the storage vector also drops lazily-allocated scalar slots and
  // any callee-frame storage an aborted nested call left behind.
  storages_ = std::move(snap.storages);
  f.scalar_addrs = std::move(snap.scalar_addrs);
  // In place, preserving node addresses: the Do executive holds a pointer
  // into f.scalars for the induction slot across the demotion. A key the
  // attempt lazily inserted reverts to the value-initialized 0.0 the serial
  // re-execution's own lazy insert would produce.
  for (auto& [v, val] : f.scalars) {
    auto it = snap.scalars.find(v);
    val = it != snap.scalars.end() ? it->second : 0.0;
  }
}

bool Interpreter::exec_do_pipeline(const ir::Stmt* s, Frame& f, double* islot,
                                   const Addr& iaddr, long lb, long step,
                                   long trip,
                                   const runtime::staged::StagedLoopPlan& plan) {
  namespace fault = support::fault;
  namespace staged = runtime::staged;
  StageController::Attempt at;
  at.loop = s;
  at.trip = trip;
  at.plan = &plan;

  const size_t cap = stage_cap_ != 0 ? stage_cap_ : staged::stage_queue_capacity();
  // Stage-by-stage fission needs queue depth = trip on every channel; refuse
  // upfront rather than demote mid-flight.
  if (!plan.channels.empty() && static_cast<size_t>(trip) > cap) {
    at.ineligible = "trip count " + std::to_string(trip) +
                    " exceeds stage queue capacity " + std::to_string(cap);
    stage_ctl_->on_attempt(at);
    return false;
  }
  at.attempted = true;

  StageSnapshot snap = stage_snapshot(f);
  // deque, not vector: StageQueue holds atomics and is immovable.
  std::deque<staged::StageQueue> queues;
  for (size_t i = 0; i < plan.channels.size(); ++i) queues.emplace_back(cap);

  stage_active_ = true;
  bool ok = true;
  std::string why;
  try {
    for (size_t si = 0; si < plan.stages.size() && ok; ++si) {
      const staged::Stage& st = plan.stages[si];
      for (long k = 0; k < trip && ok; ++k) {
        long iv = lb + k * step;
        // Iteration hooks fire once per iteration, on the first pass.
        if (si == 0) {
          for (ExecHooks* h : hooks_) h->on_loop_iter(s, iv);
        }
        // Every stage replays the serial induction sequence.
        if (islot != nullptr) {
          *islot = static_cast<double>(iv);
        } else {
          store(iaddr, static_cast<double>(iv));
        }
        // Pop this stage's inbound channels: the queued value is exactly the
        // serial value of the variable after producer iteration k.
        for (size_t ci = 0; ci < plan.channels.size() && ok; ++ci) {
          if (plan.channels[ci].consumer_stage != static_cast<int>(si)) continue;
          double v = 0.0;
          if (!queues[ci].pop(&v)) {
            ok = false;
            why = "channel underrun on " + plan.channels[ci].var->qualified_name();
            break;
          }
          write_scalar_var(plan.channels[ci].var, f, v);
        }
        if (!ok) break;
        for (const ir::Stmt* stx : st.stmts) exec_stmt(stx, f);
        // Push outbound channels with the variable's current (serial) value.
        for (size_t ci = 0; ci < plan.channels.size() && ok; ++ci) {
          if (plan.channels[ci].producer_stage != static_cast<int>(si)) continue;
          try {
            SUIFX_FAULT_POINT("pipeline.queue");
          } catch (const fault::InjectedFault&) {
            ok = false;
            why = "injected stage queue fault";
            break;
          }
          if (!queues[ci].push(read_scalar_var(plan.channels[ci].var, f))) {
            ok = false;
            why = "stage queue full on " + plan.channels[ci].var->qualified_name();
            break;
          }
        }
      }
    }
  } catch (const AbortExec&) {
    // In-flight failure (bounds, budget): demote and let the serial
    // re-execution reproduce the identical failure against identical state.
    ok = false;
    why = "execution aborted under staging";
  }
  stage_active_ = false;
  for (const staged::StageQueue& q : queues) {
    at.queued_values += q.total_pushed();
    at.max_queue_depth = std::max<uint64_t>(at.max_queue_depth, q.max_depth());
  }
  if (ok && stage_ctl_->force_abort(s)) {
    ok = false;
    why = "forced abort (drill)";
  }
  if (ok) {
    at.committed = true;
    stage_ctl_->on_attempt(at);
    return true;
  }
  stage_restore(std::move(snap), f);
  at.abort_reason = why;
  stage_ctl_->on_attempt(at);
  return false;
}

bool Interpreter::exec_do_doacross(const ir::Stmt* s, Frame& f, double* islot,
                                   const Addr& iaddr, long lb, long step,
                                   long trip,
                                   const runtime::staged::StagedLoopPlan& plan) {
  namespace fault = support::fault;
  namespace staged = runtime::staged;
  StageController::Attempt at;
  at.loop = s;
  at.trip = trip;
  at.plan = &plan;

  const long d = plan.sync_distance;
  if (d < 2) {
    at.ineligible = "sync distance " + std::to_string(d) + " < 2";
    stage_ctl_->on_attempt(at);
    return false;
  }
  at.attempted = true;

  StageSnapshot snap = stage_snapshot(f);
  staged::SyncCellArray cells(static_cast<size_t>(trip));
  std::vector<double> fixvals(plan.fixups.size(), 0.0);
  bool have_fixvals = false;

  stage_active_ = true;
  bool ok = true;
  std::string why;
  try {
    // Residue-class order: every carried dependence distance is a multiple
    // of d, so a dependent pair lands in the same class, in source order.
    for (long r = 0; r < d && ok; ++r) {
      for (long k = r; k < trip && ok; k += d) {
        if (k >= d) {
          try {
            SUIFX_FAULT_POINT("doacross.sync");
          } catch (const fault::InjectedFault&) {
            ok = false;
            why = "injected sync fault";
            break;
          }
          if (!cells.wait(static_cast<size_t>(k - d))) {
            ok = false;
            why = "sync deadlock: iteration " + std::to_string(k - d) +
                  " not posted";
            break;
          }
          ++at.syncs;
        }
        long iv = lb + k * step;
        for (ExecHooks* h : hooks_) h->on_loop_iter(s, iv);
        if (islot != nullptr) {
          *islot = static_cast<double>(iv);
        } else {
          store(iaddr, static_cast<double>(iv));
        }
        exec_body(s->body, f);
        if (k == trip - 1) {
          // The serially-last iteration: capture the last-iteration
          // finalization values before later residue classes overwrite them.
          for (size_t i = 0; i < plan.fixups.size(); ++i) {
            fixvals[i] = read_scalar_var(plan.fixups[i], f);
          }
          have_fixvals = true;
        }
        cells.post(static_cast<size_t>(k));
      }
    }
  } catch (const AbortExec&) {
    ok = false;
    why = "execution aborted under staging";
  }
  stage_active_ = false;
  if (ok && stage_ctl_->force_abort(s)) {
    ok = false;
    why = "forced abort (drill)";
  }
  if (ok) {
    // Restore the serial exit state: finalized scalars hold their iteration
    // trip-1 values and the induction variable its serial final value.
    if (have_fixvals) {
      for (size_t i = 0; i < plan.fixups.size(); ++i) {
        write_scalar_var(plan.fixups[i], f, fixvals[i]);
      }
    }
    long last_iv = lb + (trip - 1) * step;
    if (islot != nullptr) {
      *islot = static_cast<double>(last_iv);
    } else {
      store(iaddr, static_cast<double>(last_iv));
    }
    at.committed = true;
    stage_ctl_->on_attempt(at);
    return true;
  }
  stage_restore(std::move(snap), f);
  at.abort_reason = why;
  stage_ctl_->on_attempt(at);
  return false;
}

void Interpreter::bind_local_arrays(Frame& f) {
  for (const ir::Variable* v : f.proc->locals) {
    if (v->kind == ir::VarKind::Local && v->is_array()) {
      storages_.push_back({});
      int sid = static_cast<int>(storages_.size()) - 1;
      ArrayBinding b = make_binding(v, f, sid, 0);
      long n = 1;
      for (long e : b.extent) n *= std::max<long>(1, e);
      storages_.back().data.assign(static_cast<size_t>(n), 0.0);
      if (v->is_input) {
        for (long i = 0; i < n; ++i) {
          storages_.back().data[static_cast<size_t>(i)] = default_fill(v, i);
        }
      }
      f.arrays[v] = b;
    } else if (v->kind == ir::VarKind::CommonMember && v->is_array()) {
      f.arrays[v] = make_binding(v, f, common_storage_.at(v->common), v->common_offset);
    } else if (v->kind == ir::VarKind::Local && v->is_scalar()) {
      storages_.push_back({});
      double init = 0.0;
      if (v->is_input) {
        auto it = inputs_.scalars.find(v->name);
        init = it != inputs_.scalars.end() ? it->second : default_fill(v, 0);
      }
      storages_.back().data.assign(1, init);
      Addr a;
      a.storage = static_cast<int>(storages_.size()) - 1;
      a.offset = 0;
      a.var = v;
      f.scalar_addrs[v] = a;
    }
  }
}

void Interpreter::exec_call(const ir::Stmt* s, Frame& caller) {
  const ir::Procedure* callee = s->callee;
  Frame f;
  f.proc = callee;
  f.storage_base = storages_.size();
  // Bind formals.
  std::vector<std::pair<const ir::Variable*, const ir::Expr*>> copy_out;
  for (size_t i = 0; i < s->args.size(); ++i) {
    const ir::Variable* formal = callee->formals[i];
    const ir::Expr* a = s->args[i];
    if (formal->is_array()) {
      // Resolve the actual's binding (whole array or element base).
      const ArrayBinding* ab = nullptr;
      const ir::Variable* av = a->var;
      if (av->kind == ir::VarKind::Global) {
        ab = &global_bindings_.at(av);
      } else {
        ab = &caller.arrays.at(av);
      }
      long base = ab->base;
      if (a->is_array_ref()) {
        long flat = 0;
        long stride = 1;
        for (size_t k = 0; k < a->idx.size(); ++k) {
          long ix = eval_int(a->idx[k], caller);
          flat += (ix - ab->lower[k]) * stride;
          stride *= ab->extent[k];
        }
        base += flat;
      }
      // Formal dims may reference other formals: bind scalars first when the
      // dims need them — we bind scalars below, so evaluate dims lazily by
      // deferring make_binding until all scalars are set.
      f.arrays[formal] = ArrayBinding{ab->storage, base, {}, {}};
    } else {
      double v = eval(a, caller);
      if (formal->elem == ir::ScalarType::Int) v = std::llround(v);
      f.scalars[formal] = v;
      if ((a->is_var_ref() || a->is_array_ref()) && formal_modified(callee, i)) {
        copy_out.push_back({formal, a});
      }
    }
  }
  // Now that scalar formals exist, evaluate array-formal dims.
  for (size_t i = 0; i < s->args.size(); ++i) {
    const ir::Variable* formal = callee->formals[i];
    if (!formal->is_array()) continue;
    ArrayBinding& b = f.arrays[formal];
    ArrayBinding full = make_binding(formal, f, b.storage, b.base);
    b = full;
  }
  bind_local_arrays(f);
  exec_body(callee->body, f);
  // Copy-out scalar formals bound to lvalues.
  for (const auto& [formal, actual] : copy_out) {
    double v = f.scalars[formal];
    if (actual->is_array_ref()) {
      Addr addr = locate(actual, caller);
      for (ExecHooks* h : hooks_) h->on_write(s, addr);
      store(addr, v);
    } else {
      const ir::Variable* av = actual->var;
      if (double* slot = scalar_slot(av, caller)) {
        *slot = v;
      } else {
        Addr addr = scalar_addr(av, caller);
        for (ExecHooks* h : hooks_) h->on_write(s, addr);
        store(addr, v);
      }
    }
  }
  // Frame-local storages die with the activation (stack discipline); ids are
  // reused by later activations, which is harmless for the hint-grade
  // dynamic dependence analysis.
  storages_.resize(f.storage_base);
}

RunResult Interpreter::run(uint64_t max_cost) {
  result_ = {};
  storages_.clear();
  global_storage_.clear();
  common_storage_.clear();
  global_bindings_.clear();
  aborted_ = false;
  fuel_ = max_cost;

  if (prog_.main() == nullptr) {
    result_.error = "no main procedure";
    return result_;
  }

  // Allocate commons.
  for (const ir::CommonBlock& blk : prog_.commons()) {
    storages_.push_back({});
    storages_.back().data.assign(static_cast<size_t>(std::max<long>(1, blk.size_elems)),
                                 0.0);
    common_storage_[&blk] = static_cast<int>(storages_.size()) - 1;
  }
  // Allocate globals.
  Frame ghost;  // dims of globals only reference params/constants
  ghost.proc = prog_.main();
  for (const ir::Variable* g : prog_.globals()) {
    storages_.push_back({});
    int sid = static_cast<int>(storages_.size()) - 1;
    ArrayBinding b;
    long n = 1;
    if (g->is_array()) {
      b = make_binding(g, ghost, sid, 0);
      for (long e : b.extent) n *= std::max<long>(1, e);
    } else {
      b.storage = sid;
    }
    storages_.back().data.assign(static_cast<size_t>(n), 0.0);
    global_storage_[g] = sid;
    global_bindings_[g] = b;
    // Fill inputs.
    auto arr_it = inputs_.arrays.find(g->name);
    if (arr_it != inputs_.arrays.end()) {
      for (size_t i = 0; i < arr_it->second.size() && i < storages_.back().data.size();
           ++i) {
        storages_.back().data[i] = arr_it->second[i];
      }
    } else if (g->is_input) {
      auto sc_it = inputs_.scalars.find(g->name);
      if (g->is_scalar() && sc_it != inputs_.scalars.end()) {
        storages_.back().data[0] = sc_it->second;
      } else {
        for (size_t i = 0; i < storages_.back().data.size(); ++i) {
          storages_.back().data[i] = default_fill(g, static_cast<long>(i));
        }
      }
    }
  }
  // Common member input fills (by overlay name).
  for (const ir::Variable& v : prog_.variables()) {
    if (v.kind != ir::VarKind::CommonMember) continue;
    auto arr_it = inputs_.arrays.find(v.name);
    if (arr_it == inputs_.arrays.end()) continue;
    Storage& st = storages_[static_cast<size_t>(common_storage_.at(v.common))];
    for (size_t i = 0; i < arr_it->second.size(); ++i) {
      size_t off = static_cast<size_t>(v.common_offset) + i;
      if (off < st.data.size()) st.data[off] = arr_it->second[i];
    }
  }

  Frame f;
  f.proc = prog_.main();
  try {
    bind_local_arrays(f);
    exec_body(prog_.main()->body, f);
    result_.ok = true;
  } catch (const AbortExec&) {
    result_.ok = false;
  }
  return result_;
}

}  // namespace suifx::dynamic
