// The speculative parallelization executive (docs/speculation.md): runs a
// program whose ParallelPlan carries Speculative loops (promoted by the
// parallelizer::SpeculationPlanner), driving the Interpreter's versioned-
// memory machinery per promoted loop — attempt, validate, commit or roll
// back to serial — and accounting every outcome into Metrics, the provenance
// ledger, and a per-loop report. A runtime::spec::SpecBreaker (owned by the
// caller so it can persist across analyze() rounds) demotes chronic
// misspeculators back to serial, extending the degradation ladder of
// docs/robustness.md.
//
// evidence_for()/gather_evidence() are the bridge to the planner: they
// distill one instrumented run (DynDepAnalyzer + LoopProfiler) into the
// neutral SpecEvidence map the planner consumes, keeping the layering
// one-way (parallelizer never sees dynamic's types).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dynamic/dyndep.h"
#include "dynamic/interp.h"
#include "dynamic/profile.h"
#include "parallelizer/speculate.h"
#include "runtime/specmem.h"

namespace suifx::dynamic {

struct SpecExecOptions {
  /// Validation worker threads (results byte-identical at any count).
  int workers = 1;
  /// Force every attempt to roll back (fault drills; the fuzz oracle's
  /// forced-misspeculation leg).
  bool force_misspeculation = false;
  /// Interpreter execution budget.
  uint64_t max_cost = 2'000'000'000ULL;
  /// Optional circuit breaker; pass the same instance across runs so the
  /// misspeculation rate accumulates. Null = no demotion.
  runtime::spec::SpecBreaker* breaker = nullptr;
};

/// Per-loop speculation accounting, keyed by loop name in SpecRunResult.
struct SpecLoopOutcome {
  std::string loop_name;
  uint64_t attempts = 0;         // speculative executions started
  uint64_t commits = 0;          // validated and written back
  uint64_t misspeculations = 0;  // rolled back (observed, forced, or faulted)
  uint64_t refusals = 0;         // executive declined before speculating
  uint64_t validated_iterations = 0;
  uint64_t shadow_writes = 0;
  uint64_t commit_writes = 0;
  /// The breaker demoted this loop to serial during the run.
  bool demoted = false;
  /// Last conflict variable or ineligibility reason ("" when clean).
  std::string last_detail;

  double misspec_rate() const {
    return attempts == 0 ? 0.0
                         : static_cast<double>(misspeculations) /
                               static_cast<double>(attempts);
  }
};

struct SpecRunResult {
  RunResult run;
  std::map<std::string, SpecLoopOutcome> loops;

  uint64_t attempts() const;
  uint64_t commits() const;
  uint64_t misspeculations() const;
};

/// Execute the program, running every Speculative loop of `plan` under the
/// executive. Output (printed values, error, cost on the serial path) is
/// byte-identical to a plain serial run whether loops commit or roll back.
SpecRunResult run_speculative(const ir::Program& prog,
                              const parallelizer::ParallelPlan& plan,
                              const Inputs& inputs,
                              const SpecExecOptions& opts = {});

/// Distill one instrumented run's observations about `loop` into planner
/// evidence. Unmonitored loops yield zero iterations (the planner then
/// refuses for insufficient evidence).
parallelizer::SpecEvidence evidence_for(const ir::Stmt* loop,
                                        const DynDepAnalyzer& dyn,
                                        const LoopProfiler& prof);

std::map<const ir::Stmt*, parallelizer::SpecEvidence> gather_evidence(
    const std::vector<const ir::Stmt*>& loops, const DynDepAnalyzer& dyn,
    const LoopProfiler& prof);

}  // namespace suifx::dynamic
