// Tree-walking interpreter for SF programs with instrumentation hooks — the
// execution substrate of the thesis's Execution Analyzers (§2.5): the Loop
// Profile Analyzer and the Dynamic Dependence Analyzer attach as hooks, and
// the SMP simulator consumes the recorded per-loop costs.
//
// Semantics: Fortran-style. DO bounds/step evaluate once at entry; scalars
// pass copy-in/copy-out; arrays pass by reference (optionally at an element
// base, Fortran `a(k1)` style); COMMON blocks are process-lifetime storage
// shared across overlay views; locals are per-activation. All data is stored
// as double (exact for the integer ranges SF programs use). Array accesses
// are bounds-checked.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace suifx::dynamic {

/// A runtime memory location: a storage buffer id plus a flat element offset.
struct Addr {
  int storage = -1;
  long offset = 0;
  const ir::Variable* var = nullptr;  // the variable the access went through

  bool operator<(const Addr& o) const {
    return storage != o.storage ? storage < o.storage : offset < o.offset;
  }
  bool operator==(const Addr& o) const {
    return storage == o.storage && offset == o.offset;
  }
};

/// Instrumentation interface. All methods have empty defaults so hooks
/// override only what they need.
class ExecHooks {
 public:
  virtual ~ExecHooks() = default;
  virtual void on_loop_enter(const ir::Stmt* loop) { (void)loop; }
  /// Called before each iteration body with the induction value.
  virtual void on_loop_iter(const ir::Stmt* loop, long iv) { (void)loop, (void)iv; }
  virtual void on_loop_exit(const ir::Stmt* loop) { (void)loop; }
  virtual void on_read(const ir::Stmt* s, const Addr& a) { (void)s, (void)a; }
  virtual void on_write(const ir::Stmt* s, const Addr& a) { (void)s, (void)a; }
  /// Called once per executed statement with its evaluation cost in units.
  virtual void on_cost(const ir::Stmt* s, uint64_t units) { (void)s, (void)units; }
};

/// Inputs for `input`-flagged variables and SymParam overrides. Variables
/// without explicit data get a deterministic seeded fill.
struct Inputs {
  std::map<std::string, long> params;                 // SymParam overrides
  std::map<std::string, std::vector<double>> arrays;  // by variable name
  std::map<std::string, double> scalars;
  uint64_t seed = 42;
};

struct RunResult {
  bool ok = false;
  std::string error;
  std::vector<double> printed;
  uint64_t total_cost = 0;
};

class Interpreter {
 public:
  explicit Interpreter(const ir::Program& prog);

  void set_inputs(Inputs inputs) { inputs_ = std::move(inputs); }
  void add_hook(ExecHooks* hook) { hooks_.push_back(hook); }

  /// Execute the listed loops' iterations in reverse order (plan
  /// validation: a correct parallelization plan is order-insensitive).
  void set_reversed_loops(std::set<const ir::Stmt*> loops) {
    reversed_ = std::move(loops);
  }

  /// Execute main() to completion (or until `max_cost` units).
  RunResult run(uint64_t max_cost = 2'000'000'000ULL);

  /// SymParam value in effect (override or default).
  long param_value(const ir::Variable* p) const;

 private:
  struct Storage {
    std::vector<double> data;
  };
  struct ArrayBinding {
    int storage = -1;
    long base = 0;                 // element offset of the bound base
    std::vector<long> lower;       // per-dim lower bounds (declared)
    std::vector<long> extent;      // per-dim extents
  };
  struct Frame {
    const ir::Procedure* proc = nullptr;
    /// Formal scalars: activation-private copies (copy-in/copy-out), not
    /// visible to the memory hooks.
    std::map<const ir::Variable*, double> scalars;
    /// Local scalars: storage-backed so the Dynamic Dependence Analyzer sees
    /// their reads and writes.
    std::map<const ir::Variable*, Addr> scalar_addrs;
    std::map<const ir::Variable*, ArrayBinding> arrays;
    size_t storage_base = 0;  // storages_ size at frame entry (stack discipline)
  };

  double eval(const ir::Expr* e, Frame& f);
  long eval_int(const ir::Expr* e, Frame& f);
  Addr locate(const ir::Expr* ref, Frame& f);
  void exec_body(const std::vector<ir::Stmt*>& body, Frame& f);
  void exec_stmt(const ir::Stmt* s, Frame& f);
  void exec_call(const ir::Stmt* s, Frame& f);
  void bind_local_arrays(Frame& f);
  ArrayBinding make_binding(const ir::Variable* v, Frame& f, int storage, long base);
  double load(const Addr& a) const;
  void store(const Addr& a, double v);
  double* scalar_slot(const ir::Variable* v, Frame& f);
  /// Address of a storage-backed scalar (local/global/common); fails for
  /// formals (which are frame-private).
  Addr scalar_addr(const ir::Variable* v, Frame& f);
  void fail(const ir::Stmt* s, const std::string& msg);
  uint64_t expr_cost(const ir::Expr* e) const;
  double default_fill(const ir::Variable* v, long index) const;
  /// True when `callee` (or its callees through by-reference passing) may
  /// assign the formal at `ix` — copy-out happens only then (Fortran
  /// intent(out) behavior, matching the static ModRef analysis).
  bool formal_modified(const ir::Procedure* callee, size_t ix);

  const ir::Program& prog_;
  Inputs inputs_;
  std::set<const ir::Stmt*> reversed_;
  std::vector<ExecHooks*> hooks_;
  std::vector<Storage> storages_;
  std::map<const ir::Variable*, int> global_storage_;      // globals
  std::map<const ir::CommonBlock*, int> common_storage_;   // commons
  std::map<const ir::Variable*, ArrayBinding> global_bindings_;
  RunResult result_;
  std::map<const ir::Procedure*, std::vector<bool>> formal_mod_;
  uint64_t fuel_ = 0;
  bool aborted_ = false;
};

}  // namespace suifx::dynamic
