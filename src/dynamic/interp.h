// Tree-walking interpreter for SF programs with instrumentation hooks — the
// execution substrate of the thesis's Execution Analyzers (§2.5): the Loop
// Profile Analyzer and the Dynamic Dependence Analyzer attach as hooks, and
// the SMP simulator consumes the recorded per-loop costs.
//
// Semantics: Fortran-style. DO bounds/step evaluate once at entry; scalars
// pass copy-in/copy-out; arrays pass by reference (optionally at an element
// base, Fortran `a(k1)` style); COMMON blocks are process-lifetime storage
// shared across overlay views; locals are per-activation. All data is stored
// as double (exact for the integer ranges SF programs use). Array accesses
// are bounds-checked.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "runtime/specmem.h"
#include "runtime/stagequeue.h"

namespace suifx::dynamic {

/// A runtime memory location: a storage buffer id plus a flat element offset.
struct Addr {
  int storage = -1;
  long offset = 0;
  const ir::Variable* var = nullptr;  // the variable the access went through

  bool operator<(const Addr& o) const {
    return storage != o.storage ? storage < o.storage : offset < o.offset;
  }
  bool operator==(const Addr& o) const {
    return storage == o.storage && offset == o.offset;
  }
};

/// Instrumentation interface. All methods have empty defaults so hooks
/// override only what they need.
class ExecHooks {
 public:
  virtual ~ExecHooks() = default;
  virtual void on_loop_enter(const ir::Stmt* loop) { (void)loop; }
  /// Called before each iteration body with the induction value.
  virtual void on_loop_iter(const ir::Stmt* loop, long iv) { (void)loop, (void)iv; }
  virtual void on_loop_exit(const ir::Stmt* loop) { (void)loop; }
  virtual void on_read(const ir::Stmt* s, const Addr& a) { (void)s, (void)a; }
  virtual void on_write(const ir::Stmt* s, const Addr& a) { (void)s, (void)a; }
  /// Called once per executed statement with its evaluation cost in units.
  virtual void on_cost(const ir::Stmt* s, uint64_t units) { (void)s, (void)units; }
};

/// Controls the speculative executive (docs/speculation.md). When installed
/// with set_spec_controller(), each Do loop the controller approves runs its
/// iterations against versioned shadow memory (runtime::spec::VersionedMemory)
/// in serial iteration order, validates at the bottom, and either commits the
/// merged last-writer-wins state or rolls everything back — in which case the
/// interpreter re-executes the loop serially, byte-identical to a run that
/// never speculated. Speculation does not nest: loops inside an active
/// speculative region execute normally within it.
class SpecController {
 public:
  virtual ~SpecController() = default;

  /// Everything that happened in one speculative attempt (or refusal).
  struct Attempt {
    const ir::Stmt* loop = nullptr;
    long trip = 0;
    /// False when the executive refused before doing speculative work;
    /// `ineligible` then says why.
    bool attempted = false;
    bool committed = false;
    /// Misspeculation was forced (controller or injected fault), not
    /// observed by validation.
    bool forced = false;
    std::string ineligible;
    uint64_t conflicts = 0;
    std::string conflict_var;  // first conflicting variable, qualified
    uint64_t writes = 0;        // speculative shadow writes
    uint64_t exposed_reads = 0; // pre-loop values read under speculation
    uint64_t commit_writes = 0; // distinct locations written back on commit
  };

  /// Should this loop run under the executive? Called once per dynamic
  /// loop entry (outside any active speculative region).
  virtual bool should_speculate(const ir::Stmt* loop) {
    (void)loop;
    return false;
  }
  /// Force a rollback even when validation passes (fault drills, tests).
  virtual bool force_misspeculate(const ir::Stmt* loop) {
    (void)loop;
    return false;
  }
  /// Outcome report, once per should_speculate()=true loop entry.
  virtual void on_attempt(const Attempt& a) { (void)a; }
};

/// Controls the staged executives (docs/pdg_planning.md). When installed
/// with set_stage_controller(), each Do loop the controller hands a
/// StagedLoopPlan for runs DSWP-style stage-by-stage fission (Pipeline) or
/// residue-class execution with post/wait sync (Doacross). Both replay the
/// exact serial value chains, so a committed staged run is byte-identical to
/// serial; any failure (queue backpressure, sync deadlock, injected fault,
/// forced drill) restores the pre-loop state and demotes to the plain serial
/// loop. Staging does not nest, and speculation is off inside a staged
/// region.
class StageController {
 public:
  virtual ~StageController() = default;

  /// Everything that happened in one staged attempt (or refusal).
  struct Attempt {
    const ir::Stmt* loop = nullptr;
    long trip = 0;
    const runtime::staged::StagedLoopPlan* plan = nullptr;
    /// False when the executive refused before doing staged work;
    /// `ineligible` then says why.
    bool attempted = false;
    bool committed = false;
    std::string ineligible;
    /// Why a started attempt demoted to serial ("" when committed).
    std::string abort_reason;
    uint64_t queued_values = 0;   // total channel pushes (pipeline)
    uint64_t max_queue_depth = 0; // high-water mark over all channels
    uint64_t syncs = 0;           // post/wait pairs observed (doacross)
  };

  /// The staged recipe for this loop, or null to run it normally. Called
  /// once per dynamic loop entry (outside any active staged region).
  virtual const runtime::staged::StagedLoopPlan* staged_plan(const ir::Stmt* loop) {
    (void)loop;
    return nullptr;
  }
  /// Force a demotion even when the staged run succeeds (fault drills).
  virtual bool force_abort(const ir::Stmt* loop) {
    (void)loop;
    return false;
  }
  /// Outcome report, once per staged_plan()!=null loop entry.
  virtual void on_attempt(const Attempt& a) { (void)a; }
};

/// Inputs for `input`-flagged variables and SymParam overrides. Variables
/// without explicit data get a deterministic seeded fill.
struct Inputs {
  std::map<std::string, long> params;                 // SymParam overrides
  std::map<std::string, std::vector<double>> arrays;  // by variable name
  std::map<std::string, double> scalars;
  uint64_t seed = 42;
};

struct RunResult {
  bool ok = false;
  std::string error;
  std::vector<double> printed;
  uint64_t total_cost = 0;
};

class Interpreter {
 public:
  explicit Interpreter(const ir::Program& prog);

  void set_inputs(Inputs inputs) { inputs_ = std::move(inputs); }
  void add_hook(ExecHooks* hook) { hooks_.push_back(hook); }

  /// Execute the listed loops' iterations in reverse order (plan
  /// validation: a correct parallelization plan is order-insensitive).
  void set_reversed_loops(std::set<const ir::Stmt*> loops) {
    reversed_ = std::move(loops);
  }

  /// Install the speculative executive's controller (null = off). The
  /// controller must outlive run().
  void set_spec_controller(SpecController* c) { spec_ctl_ = c; }
  /// Worker threads commit-time validation shards over (results are
  /// byte-identical at any count; >1 exercises the concurrent scan).
  void set_spec_workers(int n) { spec_workers_ = n < 1 ? 1 : n; }

  /// Install the staged executives' controller (null = off). The controller
  /// must outlive run().
  void set_stage_controller(StageController* c) { stage_ctl_ = c; }
  /// Per-channel stage queue capacity (0 = SUIFX_STAGE_QUEUE_CAP or the
  /// built-in default). Loops whose trip count exceeds this are refused —
  /// stage-by-stage fission needs queue depth = trip.
  void set_stage_queue_capacity(size_t cap) { stage_cap_ = cap; }

  /// Execute main() to completion (or until `max_cost` units).
  RunResult run(uint64_t max_cost = 2'000'000'000ULL);

  /// SymParam value in effect (override or default).
  long param_value(const ir::Variable* p) const;

 private:
  struct Storage {
    std::vector<double> data;
  };
  struct ArrayBinding {
    int storage = -1;
    long base = 0;                 // element offset of the bound base
    std::vector<long> lower;       // per-dim lower bounds (declared)
    std::vector<long> extent;      // per-dim extents
  };
  struct Frame {
    const ir::Procedure* proc = nullptr;
    /// Formal scalars: activation-private copies (copy-in/copy-out), not
    /// visible to the memory hooks.
    std::map<const ir::Variable*, double> scalars;
    /// Local scalars: storage-backed so the Dynamic Dependence Analyzer sees
    /// their reads and writes.
    std::map<const ir::Variable*, Addr> scalar_addrs;
    std::map<const ir::Variable*, ArrayBinding> arrays;
    size_t storage_base = 0;  // storages_ size at frame entry (stack discipline)
  };

  double eval(const ir::Expr* e, Frame& f);
  long eval_int(const ir::Expr* e, Frame& f);
  Addr locate(const ir::Expr* ref, Frame& f);
  void exec_body(const std::vector<ir::Stmt*>& body, Frame& f);
  void exec_stmt(const ir::Stmt* s, Frame& f);
  void exec_call(const ir::Stmt* s, Frame& f);
  void bind_local_arrays(Frame& f);
  ArrayBinding make_binding(const ir::Variable* v, Frame& f, int storage, long base);
  double load(const Addr& a);
  void store(const Addr& a, double v);
  /// Run one approved loop speculatively. True = committed (caller skips the
  /// plain loop); false = refused or rolled back (caller runs the loop
  /// serially against untouched state).
  bool exec_do_speculative(const ir::Stmt* s, Frame& f, double* islot,
                           const Addr& iaddr, long lb, long step, long trip);
  /// Why the executive must refuse this loop ("" = eligible): a lexically
  /// nested write to an enclosing frame's formal scalar would bypass the
  /// shadow (formals are frame-private, invisible to load()/store()).
  std::string spec_ineligible(const ir::Stmt* s);
  double* scalar_slot(const ir::Variable* v, Frame& f);
  /// Address of a storage-backed scalar (local/global/common); fails for
  /// formals (which are frame-private).
  Addr scalar_addr(const ir::Variable* v, Frame& f);
  /// Staged executives (docs/pdg_planning.md). True = the staged run
  /// committed (caller skips the plain loop); false = refused or demoted
  /// with pre-loop state restored (caller runs the loop serially).
  bool exec_do_pipeline(const ir::Stmt* s, Frame& f, double* islot,
                        const Addr& iaddr, long lb, long step, long trip,
                        const runtime::staged::StagedLoopPlan& plan);
  bool exec_do_doacross(const ir::Stmt* s, Frame& f, double* islot,
                        const Addr& iaddr, long lb, long step, long trip,
                        const runtime::staged::StagedLoopPlan& plan);
  /// Bookkeeping access to a scalar's current value (no hooks fired): the
  /// channel push/pop and fixup paths of the staged executives.
  double read_scalar_var(const ir::Variable* v, Frame& f);
  void write_scalar_var(const ir::Variable* v, Frame& f, double val);
  /// Pre-loop state a demoted staged attempt restores. Scalar values are
  /// restored in place (node identity preserved — the caller holds a pointer
  /// into f.scalars for the induction slot).
  struct StageSnapshot {
    uint64_t fuel = 0;
    uint64_t cost = 0;
    size_t printed = 0;
    std::vector<Storage> storages;
    std::map<const ir::Variable*, double> scalars;
    std::map<const ir::Variable*, Addr> scalar_addrs;
  };
  StageSnapshot stage_snapshot(const Frame& f) const;
  void stage_restore(StageSnapshot&& snap, Frame& f);
  void fail(const ir::Stmt* s, const std::string& msg);
  uint64_t expr_cost(const ir::Expr* e) const;
  double default_fill(const ir::Variable* v, long index) const;
  /// True when `callee` (or its callees through by-reference passing) may
  /// assign the formal at `ix` — copy-out happens only then (Fortran
  /// intent(out) behavior, matching the static ModRef analysis).
  bool formal_modified(const ir::Procedure* callee, size_t ix);

  const ir::Program& prog_;
  Inputs inputs_;
  std::set<const ir::Stmt*> reversed_;
  std::vector<ExecHooks*> hooks_;
  std::vector<Storage> storages_;
  std::map<const ir::Variable*, int> global_storage_;      // globals
  std::map<const ir::CommonBlock*, int> common_storage_;   // commons
  std::map<const ir::Variable*, ArrayBinding> global_bindings_;
  RunResult result_;
  std::map<const ir::Procedure*, std::vector<bool>> formal_mod_;
  uint64_t fuel_ = 0;
  bool aborted_ = false;

  /// Active speculative region (null = none). Shadow keys pack
  /// (storage,offset) into 64 bits; only storages that existed at loop entry
  /// (< base_storages) are shadowed — storages created inside the region are
  /// callee-frame locals that die within their iteration.
  struct SpecState {
    runtime::spec::VersionedMemory vm;
    size_t base_storages = 0;
    long cur_iter = -1;  // -1 between iterations (setup/teardown accesses)
    /// First variable seen touching each key (conflict reporting).
    std::map<uint64_t, const ir::Variable*> key_var;
  };
  static uint64_t spec_key(const Addr& a) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a.storage)) << 40) |
           (static_cast<uint64_t>(a.offset) & ((1ULL << 40) - 1));
  }
  SpecController* spec_ctl_ = nullptr;
  int spec_workers_ = 1;
  std::unique_ptr<SpecState> spec_;

  StageController* stage_ctl_ = nullptr;
  size_t stage_cap_ = 0;   // 0 = env/default (stage_queue_capacity())
  bool stage_active_ = false;
};

}  // namespace suifx::dynamic
