// Dynamic validation of a parallelization plan: execute the program twice —
// once normally and once with every chosen outermost-parallel loop's
// iterations in REVERSE order — and compare the printed outputs. A loop
// whose plan (privatization legality, reduction commutativity, claimed
// independence) is wrong will generally produce different results under a
// different iteration order; this is the Explorer-style safety net behind
// user assertions, run before anything ships to the parallel runtime.
// Reductions reorder floating-point operations, so comparison uses a
// relative tolerance.
#pragma once

#include "dynamic/interp.h"
#include "parallelizer/parallelizer.h"

namespace suifx::dynamic {

struct ValidationResult {
  bool ok = false;
  std::string detail;
  std::vector<double> forward;
  std::vector<double> reordered;
};

/// Validate `plan` on `prog` with `inputs`: reorder the given loops
/// (normally SmpSimulator::outermost_parallel(plan)) and compare outputs.
ValidationResult validate_plan(const ir::Program& prog,
                               const std::vector<const ir::Stmt*>& parallel_loops,
                               const Inputs& inputs, double rel_tolerance = 1e-9);

}  // namespace suifx::dynamic
