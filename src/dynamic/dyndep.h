// The Dynamic Dependence Analyzer (§2.5.2): instruments reads and writes,
// keeps the most recent write per memory location for every monitored loop,
// and reports loop-carried flow dependences observed on the user-supplied
// input. Anti- and output dependences are ignored (they vanish under
// privatization); variables the compiler identified as inductions or
// reductions can be excluded; iteration sampling ("skip batches of
// iterations because the result is only a hint", §2.5.2) is supported via
// `stride`.
#pragma once

#include <set>
#include <unordered_map>

#include "dynamic/interp.h"

namespace suifx::dynamic {

struct DynDepResult {
  bool any_carried = false;
  /// Variables with an observed cross-iteration flow dependence.
  std::set<const ir::Variable*> dep_vars;
  /// Variables observed written-before-read in the same iteration only —
  /// dynamic evidence for privatizability.
  std::set<const ir::Variable*> priv_candidates;
  uint64_t monitored_iterations = 0;
};

class DynDepAnalyzer : public ExecHooks {
 public:
  struct Options {
    /// Loops to monitor; empty means every loop.
    std::set<const ir::Stmt*> monitor;
    /// Per loop: variables to ignore (compiler-identified inductions and
    /// reductions — their dependences are transformable).
    std::map<const ir::Stmt*, std::set<const ir::Variable*>> ignore;
    /// Sample every `stride`-th iteration (1 = every iteration).
    int stride = 1;
  };

  DynDepAnalyzer() = default;
  explicit DynDepAnalyzer(Options opts) : opts_(std::move(opts)) {}

  void on_loop_enter(const ir::Stmt* loop) override;
  void on_loop_iter(const ir::Stmt* loop, long iv) override;
  void on_loop_exit(const ir::Stmt* loop) override;
  void on_read(const ir::Stmt* s, const Addr& a) override;
  void on_write(const ir::Stmt* s, const Addr& a) override;

  const DynDepResult& result(const ir::Stmt* loop) const;
  bool observed_carried(const ir::Stmt* loop) const;

 private:
  struct ActiveFrame {
    const ir::Stmt* loop = nullptr;
    bool monitored = false;
    bool sampled = true;
    long iter_seq = -1;
    // addr key -> (iteration, writing variable)
    std::unordered_map<uint64_t, std::pair<long, const ir::Variable*>> last_write;
    std::set<const ir::Variable*> read_from_prev_iter;
    std::set<const ir::Variable*> wrote;
  };

  static uint64_t key(const Addr& a) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a.storage)) << 40) ^
           static_cast<uint64_t>(a.offset);
  }

  Options opts_;
  std::vector<ActiveFrame> active_;
  std::map<const ir::Stmt*, DynDepResult> results_;
};

}  // namespace suifx::dynamic
