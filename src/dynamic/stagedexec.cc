#include "dynamic/stagedexec.h"

#include "support/metrics.h"
#include "support/provenance.h"

namespace suifx::dynamic {

namespace prov = support::provenance;

namespace {

/// Interpreter-side controller backed by a ParallelPlan: stage exactly the
/// Pipeline/Doacross loops, and account every outcome into Metrics, the
/// global ledger, and the run's per-loop report. Degradation ladder: after a
/// loop's first abort it is demoted for the rest of the run — the staged
/// plan is no longer offered and subsequent entries run plain serial.
class PlanStageController : public StageController {
 public:
  PlanStageController(const parallelizer::ParallelPlan& plan,
                      const StagedExecOptions& opts, StagedRunResult& out)
      : plan_(plan), opts_(opts), out_(out) {}

  const runtime::staged::StagedLoopPlan* staged_plan(const ir::Stmt* loop) override {
    const parallelizer::LoopPlan* lp = plan_.find(loop);
    if (lp == nullptr || lp->staging == nullptr) return nullptr;
    if (lp->strategy != parallelizer::Strategy::Pipeline &&
        lp->strategy != parallelizer::Strategy::Doacross) {
      return nullptr;
    }
    if (demoted_.count(loop) != 0) {
      support::Metrics::global().count("stage.demoted_skip");
      return nullptr;
    }
    return lp->staging.get();
  }

  bool force_abort(const ir::Stmt* loop) override {
    (void)loop;
    return opts_.force_abort;
  }

  void on_attempt(const Attempt& a) override {
    support::Metrics& m = support::Metrics::global();
    const std::string name = a.loop->loop_name();
    StagedLoopOutcome& o = out_.loops[name];
    o.loop_name = name;
    if (const parallelizer::LoopPlan* lp = plan_.find(a.loop)) {
      o.strategy = lp->strategy;
    }

    if (!a.attempted) {
      ++o.refusals;
      o.last_detail = a.ineligible;
      m.count("stage.refused");
      return;
    }
    ++o.attempts;
    o.queued_values += a.queued_values;
    o.max_queue_depth = std::max(o.max_queue_depth, a.max_queue_depth);
    o.syncs += a.syncs;
    m.count("stage.attempt");

    if (a.committed) {
      ++o.commits;
      o.last_detail.clear();
      m.count("stage.commit");
      return;
    }
    ++o.demotions;
    o.last_detail = a.abort_reason;
    m.count("stage.demotion");
    prov::event(prov::Kind::Rollback, name, "",
                "staged state discarded (" + a.abort_reason + ") after " +
                    std::to_string(a.trip) +
                    " iteration(s); serial re-execution");
    if (demoted_.insert(a.loop).second) {
      o.demoted = true;
      m.count("stage.demoted");
      prov::event(prov::Kind::Degraded, name, "",
                  "staged execution demoted to serial after an abort (" +
                      a.abort_reason + ")");
    }
  }

 private:
  const parallelizer::ParallelPlan& plan_;
  const StagedExecOptions& opts_;
  StagedRunResult& out_;
  std::set<const ir::Stmt*> demoted_;
};

}  // namespace

uint64_t StagedRunResult::attempts() const {
  uint64_t n = 0;
  for (const auto& [name, o] : loops) n += o.attempts;
  return n;
}

uint64_t StagedRunResult::commits() const {
  uint64_t n = 0;
  for (const auto& [name, o] : loops) n += o.commits;
  return n;
}

uint64_t StagedRunResult::demotions() const {
  uint64_t n = 0;
  for (const auto& [name, o] : loops) n += o.demotions;
  return n;
}

StagedRunResult run_staged(const ir::Program& prog,
                           const parallelizer::ParallelPlan& plan,
                           const Inputs& inputs,
                           const StagedExecOptions& opts) {
  StagedRunResult out;
  PlanStageController ctl(plan, opts, out);
  Interpreter interp(prog);
  interp.set_inputs(inputs);
  interp.set_stage_controller(&ctl);
  interp.set_stage_queue_capacity(opts.queue_capacity);
  out.run = interp.run(opts.max_cost);
  return out;
}

}  // namespace suifx::dynamic
