#include "support/budget.h"

#include <cstdlib>
#include <sstream>

#include "support/metrics.h"
#include "support/provenance.h"
#include "support/trace.h"

namespace suifx::support {

namespace {
thread_local Budget* tl_budget = nullptr;
}  // namespace

const char* to_string(BudgetExceeded::Kind k) {
  switch (k) {
    case BudgetExceeded::Kind::Steps: return "steps";
    case BudgetExceeded::Kind::Deadline: return "deadline";
    case BudgetExceeded::Kind::Cancelled: return "cancelled";
  }
  return "?";
}

void Budget::charge(uint64_t n) {
  uint64_t s = steps_.fetch_add(n, std::memory_order_relaxed) + n;
  // All three conditions are monotone (steps only grow, clocks only advance,
  // cancellation is sticky), so once tripped every later charge re-throws —
  // the remaining work keeps unwinding to its degraded tier.
  if (cancel_ != nullptr && cancel_->cancel_requested()) {
    trip(BudgetExceeded::Kind::Cancelled, s);
  }
  if (limits_.max_steps != 0 && s > limits_.max_steps) {
    trip(BudgetExceeded::Kind::Steps, s);
  }
  if (deadline_.expired()) {
    trip(BudgetExceeded::Kind::Deadline, s);
  }
}

bool Budget::exhausted() const {
  uint64_t s = steps_.load(std::memory_order_relaxed);
  return (cancel_ != nullptr && cancel_->cancel_requested()) ||
         (limits_.max_steps != 0 && s > limits_.max_steps) ||
         deadline_.expired();
}

void Budget::trip(BudgetExceeded::Kind k, uint64_t steps_now) {
  std::ostringstream os;
  os << "analysis budget exceeded (" << to_string(k) << "): " << steps_now
     << " steps";
  if (limits_.max_steps != 0) os << " of " << limits_.max_steps;
  if (limits_.deadline_ms > 0) os << ", deadline " << limits_.deadline_ms << " ms";
  if (!tripped_.exchange(true, std::memory_order_relaxed)) {
    Metrics::global().count("budget.exceeded");
    trace::TraceSpan span("budget/exceeded", to_string(k));
    provenance::event(provenance::Kind::BudgetExhausted, "", to_string(k),
                      os.str());
  }
  throw BudgetExceeded(k, os.str());
}

Budget::Scope::Scope(Budget* b) : prev_(tl_budget) { tl_budget = b; }
Budget::Scope::~Scope() { tl_budget = prev_; }

Budget* Budget::current() { return tl_budget; }

void Budget::charge_current(uint64_t n) {
  if (tl_budget != nullptr) tl_budget->charge(n);
}

Budget::Limits Budget::limits_from_env() {
  // Deliberately NOT cached in a static: a long-lived daemon serves
  // per-request budgets, and tests set the variables between cases. Two
  // getenv calls per Budget construction are noise next to the analysis the
  // budget governs (budgets are built per plan()/build, not per charge()).
  Limits l;
  if (const char* s = std::getenv("SUIFX_BUDGET_STEPS")) {
    l.max_steps = std::strtoull(s, nullptr, 10);
  }
  if (const char* s = std::getenv("SUIFX_DEADLINE_MS")) {
    l.deadline_ms = std::strtod(s, nullptr);
  }
  return l;
}

}  // namespace suifx::support
