#include "support/diag.h"

namespace suifx {

std::string SourceLoc::str() const {
  if (!valid()) return "<unknown>";
  return std::to_string(line) + ":" + std::to_string(col);
}

std::string Diagnostic::str() const {
  const char* sev = severity == Severity::Error     ? "error"
                    : severity == Severity::Warning ? "warning"
                                                    : "note";
  return loc.str() + ": " + sev + ": " + message;
}

void Diag::error(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Error, loc, std::move(msg)});
  ++error_count_;
}

void Diag::warning(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Warning, loc, std::move(msg)});
  ++warning_count_;
}

void Diag::note(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Note, loc, std::move(msg)});
  ++note_count_;
}

int Diag::count(Severity s) const {
  switch (s) {
    case Severity::Error: return error_count_;
    case Severity::Warning: return warning_count_;
    case Severity::Note: return note_count_;
  }
  return 0;
}

std::string Diag::str() const {
  std::string out;
  for (const auto& d : diags_) {
    out += d.str();
    out += '\n';
  }
  if (!diags_.empty()) {
    out += std::to_string(error_count_) + " error(s), " +
           std::to_string(warning_count_) + " warning(s), " +
           std::to_string(note_count_) + " note(s)\n";
  }
  return out;
}

void Diag::clear() {
  diags_.clear();
  error_count_ = 0;
  warning_count_ = 0;
  note_count_ = 0;
}

}  // namespace suifx
