// Cooperative analysis budgets (the robustness substrate, see
// docs/robustness.md). A Budget bundles a step allowance, a wall-clock
// deadline, and an optional CancelToken; long-running passes call
// Budget::charge_current() at their interval boundaries (per statement, per
// procedure, per dependence probe, per slicer step) and a BudgetExceeded is
// thrown the moment any limit trips. Callers that own a degraded tier —
// the Workbench liveness ladder, the Driver's conservative plans, the
// Slicer's over-approximate slice — catch it and fall back instead of dying.
//
// Installation is thread-local (Budget::Scope), so the parallel Driver can
// share ONE budget across all of its pool tasks: the step counter is a
// single atomic the tasks bump together, and the deadline clock started when
// the budget was constructed. With no scope installed, charge_current() is a
// no-op — serial baselines and tests that want exact behavior pay nothing.
//
// Env knobs (re-read per Budget construction, see limits_from_env):
// SUIFX_BUDGET_STEPS caps charged steps, SUIFX_DEADLINE_MS bounds wall time
// per budget. The per-construction read matters in daemon processes
// (service::AnalysisService): limits must not be frozen at first use for the
// life of the process.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace suifx::support {

/// External cancellation: the owner requests, budgeted work observes the
/// request at its next charge() and unwinds with BudgetExceeded::Cancelled.
class CancelToken {
 public:
  void request_cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Thrown by Budget::charge() when a limit trips. Carries which limit.
class BudgetExceeded : public std::runtime_error {
 public:
  enum class Kind : uint8_t { Steps, Deadline, Cancelled };

  BudgetExceeded(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

const char* to_string(BudgetExceeded::Kind k);

/// Absolute wall-clock deadline on the steady clock. Default-constructed:
/// never expires.
class Deadline {
 public:
  Deadline() = default;
  static Deadline in_ms(double ms) {
    Deadline d;
    d.armed_ = true;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  bool armed() const { return armed_; }
  bool expired() const {
    return armed_ && std::chrono::steady_clock::now() >= at_;
  }

 private:
  std::chrono::steady_clock::time_point at_{};
  bool armed_ = false;
};

class Budget {
 public:
  struct Limits {
    uint64_t max_steps = 0;  // 0 = unlimited
    double deadline_ms = 0;  // <= 0 = no deadline (measured from construction)
    bool unlimited() const { return max_steps == 0 && deadline_ms <= 0; }
  };

  /// Unlimited budget (never trips unless a cancel token fires).
  Budget() = default;
  explicit Budget(const Limits& limits, CancelToken* cancel = nullptr)
      : limits_(limits), cancel_(cancel) {
    if (limits.deadline_ms > 0) deadline_ = Deadline::in_ms(limits.deadline_ms);
  }
  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Account `n` steps; throws BudgetExceeded once a limit trips. Safe to
  /// call concurrently (the Driver's tasks share one budget).
  void charge(uint64_t n = 1);
  /// Non-throwing probe of the same conditions.
  bool exhausted() const;

  uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }
  const Limits& limits() const { return limits_; }

  /// Install `b` (may be null = uninstall) as this thread's budget for the
  /// scope's lifetime; nests, restoring the previous installation on exit.
  class Scope {
   public:
    explicit Scope(Budget* b);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Budget* prev_;
  };

  /// The budget installed on this thread (null when none).
  static Budget* current();
  /// charge() on the installed budget; no-op when none is installed.
  static void charge_current(uint64_t n = 1);

  /// Limits from SUIFX_BUDGET_STEPS / SUIFX_DEADLINE_MS, re-read on every
  /// call so env changes take effect per budget (daemon-safe — see the file
  /// comment). Unlimited when neither is set.
  static Limits limits_from_env();

 private:
  [[noreturn]] void trip(BudgetExceeded::Kind k, uint64_t steps_now);

  Limits limits_;
  CancelToken* cancel_ = nullptr;
  Deadline deadline_;
  std::atomic<uint64_t> steps_{0};
  std::atomic<bool> tripped_{false};  // first-trip metric/trace, once
};

}  // namespace suifx::support
