#include "support/fault.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/metrics.h"
#include "support/provenance.h"
#include "support/trace.h"

namespace suifx::support::fault {

namespace {

thread_local int tl_suppress_depth = 0;

uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

bool matches(const std::string& pattern, const char* point) {
  if (pattern == "*") return true;
  if (!pattern.empty() && pattern.back() == '*') {
    return std::strncmp(point, pattern.c_str(), pattern.size() - 1) == 0;
  }
  return pattern == point;
}

std::string trim(const std::string& s) {
  size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) return "";
  size_t b = s.find_last_not_of(" \t");
  return s.substr(a, b - a + 1);
}

}  // namespace

SuppressScope::SuppressScope() { ++tl_suppress_depth; }
SuppressScope::~SuppressScope() { --tl_suppress_depth; }

bool suppressed() { return tl_suppress_depth > 0; }

Registry& Registry::global() {
  static Registry r;
  return r;
}

bool Registry::register_point(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.insert(name);
  return true;
}

bool Registry::configure(const std::string& spec) {
  // A malformed spec arms NOTHING: any previously armed rules are dropped
  // too, so a bad reconfigure cannot silently keep firing the old spec.
  auto reject = [this] {
    std::lock_guard<std::mutex> lock(mu_);
    rules_.clear();
    hits_.clear();
    fired_.store(0, std::memory_order_relaxed);
    configured_ = true;
    armed_.store(false, std::memory_order_release);
    return false;
  };
  std::vector<Rule> rules;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t semi = spec.find(';', start);
    std::string entry = trim(
        spec.substr(start, semi == std::string::npos ? semi : semi - start));
    start = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (entry.empty()) continue;
    Rule r;
    size_t at = entry.find('@');
    r.pattern = trim(entry.substr(0, at));
    if (r.pattern.empty()) return reject();
    if (at != std::string::npos) {
      std::string trig = trim(entry.substr(at + 1));
      if (trig.rfind("p=", 0) == 0) {
        r.probabilistic = true;
        // "p=<float>[,seed=<int>]"
        char* end = nullptr;
        r.p = std::strtod(trig.c_str() + 2, &end);
        if (end == trig.c_str() + 2 || (*end != '\0' && *end != ',') ||
            r.p < 0 || r.p > 1) {
          return reject();
        }
        size_t comma = trig.find(',');
        if (comma != std::string::npos) {
          std::string seed = trim(trig.substr(comma + 1));
          if (seed.rfind("seed=", 0) != 0) return reject();
          char* send = nullptr;
          r.seed = std::strtoull(seed.c_str() + 5, &send, 10);
          if (send == seed.c_str() + 5 || *send != '\0') return reject();
        }
      } else {
        char* end = nullptr;
        r.nth = std::strtoull(trig.c_str(), &end, 10);
        if (r.nth == 0 || end == trig.c_str() || *end != '\0') return reject();
      }
    }
    rules.push_back(std::move(r));
  }
  std::lock_guard<std::mutex> lock(mu_);
  rules_ = std::move(rules);
  hits_.clear();
  fired_.store(0, std::memory_order_relaxed);
  configured_ = true;
  armed_.store(!rules_.empty(), std::memory_order_release);
  return true;
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  rules_.clear();
  hits_.clear();
  fired_.store(0, std::memory_order_relaxed);
  configured_ = true;
}

void Registry::hit(const char* point) {
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.load(std::memory_order_relaxed)) return;
    points_.insert(point);  // hitting a point implies it exists
    uint64_t n = ++hits_[point];
    for (Rule& r : rules_) {
      if (!matches(r.pattern, point)) continue;
      if (r.probabilistic) {
        uint64_t h = splitmix64(r.seed ^ fnv1a(point) ^
                                (n * 0x9e3779b97f4a7c15ULL));
        // Top 53 bits → uniform double in [0, 1).
        double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
        fire = u < r.p;
      } else if (!r.fired && n == r.nth) {
        r.fired = true;
        fire = true;
      }
      if (fire) break;
    }
    if (fire) fired_.fetch_add(1, std::memory_order_relaxed);
  }
  if (fire) {
    Metrics::global().count("fault.injected");
    Metrics::global().count(std::string("fault.injected.") + point);
    trace::TraceSpan span("fault/injected", point);
    provenance::event(provenance::Kind::FaultInjected, "", point,
                      "fault injection fired at this point");
    throw InjectedFault(point);
  }
}

std::vector<std::string> Registry::points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {points_.begin(), points_.end()};
}

void Registry::init_from_env() {
  // One-shot by design (audited for daemon use): SUIFX_FAULT configures the
  // deterministic injection plan for a whole process run, and mutating it
  // mid-flight would break seed reproducibility. Long-lived daemons that
  // need to change the plan call configure() programmatically — it is not
  // frozen, only the env *read* is.
  static std::once_flag once;
  std::call_once(once, [this] {
    const char* s = std::getenv("SUIFX_FAULT");
    if (s == nullptr) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (configured_) return;  // a programmatic spec beat us to it
    }
    if (!configure(s)) {
      std::fprintf(stderr, "suifx: malformed SUIFX_FAULT spec '%s' (ignored)\n",
                   s);
    }
  });
}

}  // namespace suifx::support::fault
