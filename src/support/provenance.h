// Decision-provenance ledger: structured records of *why* the parallelizer
// decided what it decided. SUIF Explorer's premise (§2.6, §4) is that
// programmers parallelize loops when the system shows them what is blocking
// parallelism; the trace/metrics substrate says how long analyses took, this
// layer says what they concluded and on what grounds — which dependence
// pair, alias merge, budget exhaustion, or degraded pass produced a serial
// verdict.
//
// Two collection surfaces, one event vocabulary (Kind):
//
//  * The global Ledger: a mutex-protected fixed-capacity ring of Events, each
//    stamped with the correlation id of the request it ran under (CorrScope —
//    service::AnalysisService opens one per request, parallelizer::Driver
//    forwards it into its pool tasks). Exported as schema-versioned JSON
//    (`suifx-provenance/1`) next to the Chrome-trace export, and via
//    SUIFX_PROVENANCE_JSON=<path> at process exit. The ledger is an
//    observability stream: event arrival order depends on thread scheduling,
//    so it is NOT the determinism oracle.
//
//  * Per-loop verdict records (LoopRecord): Parallelizer::plan_loop opens a
//    thread-local LoopScope; the analyses it consults call note() and the
//    entries accumulate into one canonically-sorted record that is stored in
//    the resulting LoopPlan (shared_ptr, so it is memoized with the plan in
//    the Driver cache, replayed on cache hits, and carried across
//    explorer::rebuild_incremental). Records deliberately contain no
//    timestamps, thread ids, pointers, or raw statement/variable ids — only
//    source-level names — so the record text for a clean procedure is
//    byte-identical between a cold rebuild and an incremental rebuild, at any
//    worker count, cold or warm caches. parallelizer::ledger_signature()
//    reduces a whole plan to that canonical text; the fuzz oracle and
//    tests/provenance_test.cc diff it.
//
// Cost model: when disabled (set_enabled(false) or SUIFX_PROVENANCE=0) every
// entry point is one relaxed atomic load and a branch; no allocation, no
// lock. LoopScope then never installs itself, so note() no-ops on the
// thread-local check alone.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace suifx::support::provenance {

/// The decision-event vocabulary. Every kind names a fact that changed (or
/// could have changed) a loop's verdict or the fidelity of the analysis that
/// produced it.
enum class Kind : uint8_t {
  DependenceFound,       // unresolved cross-iteration dependence (src->dst)
  AliasAssumed,          // storage merged into an alias class / blob
  ReductionRecognized,   // commutative-update region validated
  PrivatizationApplied,  // per-processor copy removes the conflict
  FinalizeBlocked,       // privatizable, but no legal finalization
  AssertionApplied,      // a user assertion overrode the analysis
  IoFound,               // loop contains I/O: never parallel
  Degraded,              // a pass fell to a lower-fidelity tier
  BudgetExhausted,       // step/deadline budget tripped
  CacheSeeded,           // a plan was carried across an incremental rebuild
  FaultInjected,         // a fault-injection rule fired
  SpeculationAttempted,  // a statically-rejected loop ran speculatively
  Misspeculation,        // commit-time validation found a conflict
  Rollback,              // speculative state discarded; serial re-execution
  PipelineStaged,        // SCC condensation split the loop into DSWP stages
  DoacrossSynced,        // carried deps have a fixed distance: synced DOACROSS
  AliasRefined,          // tier-1 alias oracle carved a class out of a blob
};

const char* to_string(Kind k);

/// Global recording switch. Default on; SUIFX_PROVENANCE=0 turns it off at
/// init_from_env(). One relaxed atomic load.
bool enabled();
void set_enabled(bool on);

/// If SUIFX_PROVENANCE=0, disable recording; if SUIFX_PROVENANCE_CAP=<n[K|M]>,
/// resize the global ring; if SUIFX_PROVENANCE_JSON=<path>, register an
/// atexit hook that writes Ledger::global().json() there (the same contract
/// trace::init_from_env has with SUIFX_TRACE). Idempotent; called by
/// Workbench::from_source.
void init_from_env();

// ---------------------------------------------------------------------------
// Correlation ids
// ---------------------------------------------------------------------------

/// A fresh nonzero correlation id (process-wide counter). The service
/// allocates one per request.
uint64_t next_corr();
/// The correlation id installed on this thread (0 = none).
uint64_t current_corr();

/// RAII: installs a correlation id on this thread; nests and restores the
/// previous id. Driver::plan captures current_corr() and opens a CorrScope
/// inside each pool task so pass-level events stay attributed to the request
/// that triggered them (trace spans stamp the same id).
class CorrScope {
 public:
  explicit CorrScope(uint64_t corr);
  ~CorrScope();
  CorrScope(const CorrScope&) = delete;
  CorrScope& operator=(const CorrScope&) = delete;

 private:
  uint64_t prev_;
};

// ---------------------------------------------------------------------------
// The global event ledger
// ---------------------------------------------------------------------------

struct Event {
  Kind kind = Kind::Degraded;
  uint64_t corr = 0;   // CorrScope id active when recorded (0 = none)
  uint64_t seq = 0;    // global arrival order (monotone per process)
  std::string loop;    // "proc/label" when loop-scoped, else ""
  std::string var;     // subject variable, qualified name ("" when n/a)
  std::string detail;  // kind-specific, human-readable
};

class Ledger {
 public:
  /// Default events kept (ring). Override with SUIFX_PROVENANCE_CAP (plain
  /// count, or with a K/M suffix) via init_from_env(), or set_capacity().
  static constexpr size_t kDefaultCapacity = 1 << 16;
  static constexpr const char* kSchema = "suifx-provenance/1";

  /// Append one event (stamps corr from the current thread and a global
  /// sequence number). No-op when recording is disabled.
  void record(Kind kind, std::string loop, std::string var, std::string detail);

  /// Events currently held, oldest first.
  std::vector<Event> snapshot() const;
  /// Total events ever recorded / overwritten by ring wrap.
  uint64_t recorded() const;
  uint64_t dropped() const;
  void clear();

  /// Resize the ring (drops held events; resets the wrap warning). Capacity
  /// is clamped to at least 1.
  void set_capacity(size_t cap);
  size_t capacity() const;

  /// Schema-versioned JSON: {"schema":"suifx-provenance/1","dropped":N,
  /// "events":[{"seq":..,"corr":..,"kind":..,"loop":..,"var":..,
  /// "detail":..},...]}.
  std::string json() const;
  bool write_json(const std::string& path) const;

  static Ledger& global();

 private:
  mutable std::mutex mu_;
  std::vector<Event> ring_;
  size_t next_ = 0;
  uint64_t recorded_ = 0;
  size_t capacity_ = kDefaultCapacity;
  /// Warn-once latch: the first overwritten event prints one stderr line and
  /// bumps the `provenance.ring_wrap` metric (there is no global Diag
  /// instance to route through — see docs/speculation.md).
  bool warned_wrap_ = false;
};

/// Record into the global ledger, gated on enabled(). `loop` may be empty
/// (build-level events: pass degradations, fault injections).
void event(Kind kind, std::string loop, std::string var, std::string detail);

// ---------------------------------------------------------------------------
// Per-loop verdict records
// ---------------------------------------------------------------------------

struct LoopEntry {
  Kind kind = Kind::DependenceFound;
  std::string var;     // qualified name ("" when n/a)
  std::string detail;  // canonical: no ids, pointers, or timestamps
};

/// The causal record behind one loop's verdict. Stored in LoopPlan::why;
/// entries are sorted canonically by finish(), so text() is byte-identical
/// across worker counts, cache states, and incremental rebuilds.
struct LoopRecord {
  std::string loop;     // "proc/label"
  std::string verdict;  // "parallel" | "serial" | "degraded"
  std::string reason;   // LoopPlan::reason ("" when parallel)
  std::vector<LoopEntry> entries;

  /// Canonical multi-line rendering (the ledger_signature unit).
  std::string text() const;
  /// One JSON object (same escaping rules as the Ledger export).
  std::string json() const;
};

/// RAII recorder installed by Parallelizer::plan_loop: while open, note()
/// calls on this thread append to this record (innermost scope wins; nesting
/// is supported but plan_loop does not nest in practice). When recording is
/// disabled the scope never installs itself and finish() returns null.
class LoopScope {
 public:
  explicit LoopScope(std::string loop_name);
  ~LoopScope();
  LoopScope(const LoopScope&) = delete;
  LoopScope& operator=(const LoopScope&) = delete;

  /// True when notes will land in this scope's record.
  bool active() const { return rec_ != nullptr; }

  /// Seal the record: set verdict/reason, canonically sort the entries, and
  /// return it (null when inactive). Idempotent via move: call once.
  std::shared_ptr<const LoopRecord> finish(std::string verdict,
                                           std::string reason);

 private:
  LoopScope* prev_ = nullptr;
  std::shared_ptr<LoopRecord> rec_;
};

/// True when a note() would record (enabled + a LoopScope open on this
/// thread). Callers building expensive detail strings gate on this.
bool noting();

/// Append an entry to the innermost open LoopScope on this thread AND mirror
/// it to the global ledger (stamped with the scope's loop name). No-op
/// without an open scope.
void note(Kind kind, std::string var, std::string detail);

}  // namespace suifx::support::provenance
