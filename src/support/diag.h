// Diagnostics engine: collects errors/warnings with source locations.
// Every front-end and verifier failure flows through a Diag instance so
// callers can decide whether to abort, print, or test against messages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace suifx {

/// A position in an SF source file (1-based line/column, 0 = unknown).
struct SourceLoc {
  int line = 0;
  int col = 0;

  bool valid() const { return line > 0; }
  std::string str() const;
};

enum class Severity { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  Severity severity;
  SourceLoc loc;
  std::string message;

  std::string str() const;
};

/// Accumulates diagnostics for one compilation.
class Diag {
 public:
  void error(SourceLoc loc, std::string msg);
  void warning(SourceLoc loc, std::string msg);
  void note(SourceLoc loc, std::string msg);

  bool has_errors() const { return error_count_ > 0; }
  int error_count() const { return error_count_; }
  int warning_count() const { return warning_count_; }
  /// Diagnostics of exactly the given severity.
  int count(Severity s) const;
  const std::vector<Diagnostic>& all() const { return diags_; }

  /// All diagnostics rendered one per line, followed by a severity-totals
  /// line when anything was reported (for tests, CLI output, and the bench
  /// front ends reporting warning volume next to trace summaries).
  std::string str() const;
  void clear();

 private:
  std::vector<Diagnostic> diags_;
  int error_count_ = 0;
  int warning_count_ = 0;
  int note_count_ = 0;
};

}  // namespace suifx
