#include "support/metrics.h"

#include <sstream>

namespace suifx::support {

void Metrics::count(const std::string& key, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[key] += n;
}

void Metrics::add_ms(const std::string& key, double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  timers_[key] += ms;
}

uint64_t Metrics::counter(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  return it != counters_.end() ? it->second : 0;
}

double Metrics::total_ms(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(key);
  return it != timers_.end() ? it->second : 0.0;
}

std::map<std::string, uint64_t> Metrics::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, double> Metrics::timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timers_;
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  timers_.clear();
}

std::string Metrics::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t w = 0;
  for (const auto& [k, v] : counters_) w = std::max(w, k.size());
  for (const auto& [k, v] : timers_) w = std::max(w, k.size());
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  for (const auto& [k, v] : counters_) {
    os << k << std::string(w - k.size() + 2, ' ') << v << "\n";
  }
  for (const auto& [k, v] : timers_) {
    os << k << std::string(w - k.size() + 2, ' ') << v << " ms\n";
  }
  return os.str();
}

Metrics& Metrics::global() {
  static Metrics m;
  return m;
}

}  // namespace suifx::support
