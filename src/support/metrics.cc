#include "support/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

namespace suifx::support {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

int Histogram::bucket_index(double ms) {
  if (!(ms > 0)) return 0;  // negatives/NaN clamp to the first bucket
  double us = ms * 1000.0;
  if (us < 1.0) return 0;
  uint64_t v = static_cast<uint64_t>(us);
  // v in [2^(k), 2^(k+1)) has bit_width k+1 and belongs to bucket k+1.
  int i = std::bit_width(v);
  return std::min(i, kBuckets - 1);
}

double Histogram::bucket_upper_ms(int i) {
  // Bucket 0: [0, 1µs). Bucket i >= 1: [2^(i-1), 2^i) µs.
  return std::ldexp(1.0, std::max(i, 0)) / 1000.0;
}

void Histogram::record_ms(double ms) {
  buckets_[static_cast<size_t>(bucket_index(ms))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(static_cast<int64_t>(std::max(0.0, ms) * 1e6),
                      std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  // Snapshot the buckets once so the walk is over a consistent-enough view.
  std::array<uint64_t, kBuckets> snap;
  uint64_t n = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snap[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    n += snap[static_cast<size_t>(i)];
  }
  if (n == 0) return 0.0;
  double target = q * static_cast<double>(n);
  double cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    double c = static_cast<double>(snap[static_cast<size_t>(i)]);
    if (c == 0) continue;
    if (cum + c >= target) {
      double lower = i == 0 ? 0.0 : bucket_upper_ms(i - 1);
      double upper = bucket_upper_ms(i);
      double frac = c > 0 ? (target - cum) / c : 0.0;
      return lower + std::clamp(frac, 0.0, 1.0) * (upper - lower);
    }
    cum += c;
  }
  return bucket_upper_ms(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ShardedCounter
// ---------------------------------------------------------------------------

namespace {
size_t this_thread_shard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard = next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}
}  // namespace

void ShardedCounter::add(uint64_t n) {
  shards_[this_thread_shard() % kShards].v.fetch_add(n, std::memory_order_relaxed);
}

uint64_t ShardedCounter::value() const {
  uint64_t sum = 0;
  for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void ShardedCounter::reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

namespace {
// The ScopedLocal tee target for this thread (null = no capture). Checked
// against `this` so recording into the local registry itself cannot recurse.
thread_local Metrics* tls_local = nullptr;
}  // namespace

void Metrics::count(const std::string& key, uint64_t n) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[key] += n;
  }
  if (tls_local != nullptr && tls_local != this) tls_local->count(key, n);
}

void Metrics::add_ms(const std::string& key, double ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    timers_[key] += ms;
  }
  if (tls_local != nullptr && tls_local != this) tls_local->add_ms(key, ms);
}

Metrics::ScopedLocal::ScopedLocal(Metrics* local) : prev_(tls_local) {
  tls_local = local;
}

Metrics::ScopedLocal::~ScopedLocal() { tls_local = prev_; }

uint64_t Metrics::counter(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  return it != counters_.end() ? it->second : 0;
}

double Metrics::total_ms(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(key);
  return it != timers_.end() ? it->second : 0.0;
}

std::map<std::string, uint64_t> Metrics::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, double> Metrics::timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timers_;
}

Histogram& Metrics::histogram(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[key];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

ShardedCounter& Metrics::sharded(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sharded_[key];
  if (slot == nullptr) slot = std::make_unique<ShardedCounter>();
  return *slot;
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  timers_.clear();
  // Zero in place: references returned by histogram()/sharded() stay valid.
  for (auto& [k, h] : histograms_) h->reset();
  for (auto& [k, s] : sharded_) s->reset();
}

std::string Metrics::report() const {
  // One snapshot under the lock; all formatting happens outside it so a
  // report cannot interleave with (or block) concurrent recorders.
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> timers;
  struct HistRow {
    uint64_t count;
    double total, p50, p95;
  };
  std::map<std::string, HistRow> hists;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters = counters_;
    timers = timers_;
    for (const auto& [k, s] : sharded_) {
      if (uint64_t v = s->value()) counters[k] += v;
    }
    for (const auto& [k, h] : histograms_) {
      if (h->count() == 0) continue;
      hists[k] = {h->count(), h->total_ms(), h->p50(), h->p95()};
    }
  }

  size_t w = 0;
  for (const auto& [k, v] : counters) w = std::max(w, k.size());
  for (const auto& [k, v] : timers) w = std::max(w, k.size());
  for (const auto& [k, v] : hists) w = std::max(w, k.size());
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  for (const auto& [k, v] : counters) {
    os << k << std::string(w - k.size() + 2, ' ') << v << "\n";
  }
  for (const auto& [k, v] : timers) {
    os << k << std::string(w - k.size() + 2, ' ') << v << " ms\n";
  }
  for (const auto& [k, h] : hists) {
    os << k << std::string(w - k.size() + 2, ' ') << h.count << " events  "
       << h.total << " ms  p50 " << h.p50 << " ms  p95 " << h.p95 << " ms\n";
  }
  return os.str();
}

std::string Metrics::report_json() const {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> timers;
  struct HistRow {
    uint64_t count;
    double total, p50, p95;
  };
  std::map<std::string, HistRow> hists;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters = counters_;
    timers = timers_;
    for (const auto& [k, s] : sharded_) {
      if (uint64_t v = s->value()) counters[k] += v;
    }
    for (const auto& [k, h] : histograms_) {
      if (h->count() == 0) continue;
      hists[k] = {h->count(), h->total_ms(), h->p50(), h->p95()};
    }
  }

  auto esc = [](const std::string& s) {
    std::string out;
    for (unsigned char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += static_cast<char>(c);
      }
    }
    return out;
  };
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : counters) {
    os << (first ? "" : ",") << "\"" << esc(k) << "\":" << v;
    first = false;
  }
  os << "},\"timers_ms\":{";
  first = true;
  for (const auto& [k, v] : timers) {
    os << (first ? "" : ",") << "\"" << esc(k) << "\":" << v;
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [k, h] : hists) {
    os << (first ? "" : ",") << "\"" << esc(k) << "\":{\"count\":" << h.count
       << ",\"total_ms\":" << h.total << ",\"p50_ms\":" << h.p50
       << ",\"p95_ms\":" << h.p95 << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

Metrics& Metrics::global() {
  static Metrics m;
  return m;
}

}  // namespace suifx::support
