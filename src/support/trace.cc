#include "support/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "support/provenance.h"

namespace suifx::support::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

constexpr size_t kRingCapacity = 1 << 15;  // events per thread

// Trace epoch base (steady-clock ns) and generation counter. A buffer
// stamped with an older generation is logically empty: start() never has to
// touch other threads' rings.
std::atomic<int64_t> g_base_ns{0};
std::atomic<uint64_t> g_gen{0};

int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ThreadBuf {
  std::mutex mu;  // owner thread (writes) vs. exporter (reads); uncontended
  std::vector<TraceEvent> ring;
  size_t next = 0;       // next write slot
  uint64_t written = 0;  // events written this generation (> capacity = wrap)
  uint64_t gen = 0;
  int tid = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  int next_tid = 0;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives static destructors
  return *r;
}

ThreadBuf& local_buf() {
  thread_local std::shared_ptr<ThreadBuf> tb = [] {
    auto b = std::make_shared<ThreadBuf>();
    b->ring.resize(kRingCapacity);
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    b->tid = r.next_tid++;
    r.bufs.push_back(b);
    return b;
  }();
  return *tb;
}

void append_escaped(std::string& out, const std::string& s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

std::string& env_path() {
  static std::string* p = new std::string;
  return *p;
}

}  // namespace

void start() {
  g_base_ns.store(steady_ns(), std::memory_order_relaxed);
  g_gen.fetch_add(1, std::memory_order_relaxed);
  detail::g_enabled.store(true, std::memory_order_release);
}

void stop() { detail::g_enabled.store(false, std::memory_order_release); }

int64_t now_ns() {
  int64_t base = g_base_ns.load(std::memory_order_relaxed);
  return base == 0 ? 0 : steady_ns() - base;
}

void TraceSpan::begin(const char* name) {
  live_ = true;
  name_ = name;
  corr_ = provenance::current_corr();
  t0_ = steady_ns() - g_base_ns.load(std::memory_order_relaxed);
}

void TraceSpan::end() {
  const int64_t now = steady_ns() - g_base_ns.load(std::memory_order_relaxed);
  if (!enabled()) return;  // stopped mid-span: drop, don't tear
  ThreadBuf& b = local_buf();
  std::lock_guard<std::mutex> lock(b.mu);
  const uint64_t gen = g_gen.load(std::memory_order_relaxed);
  if (b.gen != gen) {  // first event of a new generation: logical clear
    b.gen = gen;
    b.next = 0;
    b.written = 0;
  }
  TraceEvent& e = b.ring[b.next];
  e.name = name_;
  e.detail = std::move(detail_);
  e.t0_ns = t0_;
  e.dur_ns = now - t0_;
  e.tid = b.tid;
  e.corr = corr_;
  b.next = (b.next + 1) % kRingCapacity;
  ++b.written;
}

std::vector<TraceEvent> snapshot() {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    bufs = r.bufs;
  }
  const uint64_t gen = g_gen.load(std::memory_order_relaxed);
  std::vector<TraceEvent> out;
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lock(b->mu);
    if (b->gen != gen || b->written == 0) continue;
    if (b->written <= kRingCapacity) {
      out.insert(out.end(), b->ring.begin(),
                 b->ring.begin() + static_cast<long>(b->next));
    } else {  // wrapped: oldest surviving event is at `next`
      out.insert(out.end(), b->ring.begin() + static_cast<long>(b->next),
                 b->ring.end());
      out.insert(out.end(), b->ring.begin(),
                 b->ring.begin() + static_cast<long>(b->next));
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.t0_ns < b.t0_ns;
  });
  return out;
}

uint64_t dropped() {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    bufs = r.bufs;
  }
  const uint64_t gen = g_gen.load(std::memory_order_relaxed);
  uint64_t n = 0;
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lock(b->mu);
    if (b->gen == gen && b->written > kRingCapacity) n += b->written - kRingCapacity;
  }
  return n;
}

std::string json() {
  std::vector<TraceEvent> events = snapshot();
  std::string out = "{\"traceEvents\":[";
  char buf[128];
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"suifx\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof buf, "%d,\"ts\":%.3f,\"dur\":%.3f", e.tid,
                  static_cast<double>(e.t0_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0);
    out += buf;
    if (!e.detail.empty() || e.corr != 0) {
      out += ",\"args\":{";
      if (!e.detail.empty()) {
        out += "\"detail\":\"";
        append_escaped(out, e.detail);
        out += "\"";
      }
      if (e.corr != 0) {
        if (!e.detail.empty()) out += ",";
        std::snprintf(buf, sizeof buf, "\"corr\":%llu",
                      static_cast<unsigned long long>(e.corr));
        out += buf;
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool write_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string text = json();
  size_t n = std::fwrite(text.data(), 1, text.size(), f);
  return std::fclose(f) == 0 && n == text.size();
}

std::string summary() {
  std::vector<TraceEvent> events = snapshot();  // sorted by (tid, t0)

  // Self time: within one thread spans nest properly (RAII), so a stack
  // sweep in start order attributes each span's duration against its
  // innermost enclosing span. Ties on t0 put the longer (outer) span first.
  std::vector<size_t> order(events.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const TraceEvent& x = events[a];
    const TraceEvent& y = events[b];
    if (x.tid != y.tid) return x.tid < y.tid;
    if (x.t0_ns != y.t0_ns) return x.t0_ns < y.t0_ns;
    return x.dur_ns > y.dur_ns;
  });
  std::vector<int64_t> self(events.size());
  for (size_t i = 0; i < events.size(); ++i) self[i] = events[i].dur_ns;
  std::vector<size_t> stack;  // indices of open spans, innermost last
  int cur_tid = -1;
  for (size_t ix : order) {
    const TraceEvent& e = events[ix];
    if (e.tid != cur_tid) {
      stack.clear();
      cur_tid = e.tid;
    }
    while (!stack.empty() &&
           events[stack.back()].t0_ns + events[stack.back()].dur_ns <= e.t0_ns) {
      stack.pop_back();
    }
    if (!stack.empty()) self[stack.back()] -= e.dur_ns;
    stack.push_back(ix);
  }

  struct Row {
    uint64_t count = 0;
    int64_t total_ns = 0;
    int64_t self_ns = 0;
    std::vector<int64_t> durs;
  };
  std::map<std::string, Row> rows;
  for (size_t i = 0; i < events.size(); ++i) {
    Row& r = rows[events[i].name];
    ++r.count;
    r.total_ns += events[i].dur_ns;
    r.self_ns += self[i];
    r.durs.push_back(events[i].dur_ns);
  }

  auto pct = [](std::vector<int64_t>& v, double q) {
    std::sort(v.begin(), v.end());
    size_t ix = static_cast<size_t>(q * static_cast<double>(v.size() - 1) + 0.5);
    return static_cast<double>(v[std::min(ix, v.size() - 1)]) / 1e6;
  };

  std::vector<std::pair<std::string, Row*>> sorted;
  size_t w = 4;
  for (auto& [name, row] : rows) {
    sorted.push_back({name, &row});
    w = std::max(w, name.size());
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second->total_ns > b.second->total_ns; });

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << events.size() << " spans";
  if (uint64_t d = dropped()) os << " (" << d << " dropped by ring wrap)";
  os << "\n";
  char line[256];
  std::snprintf(line, sizeof line, "%-*s %8s %12s %12s %10s %10s\n",
                static_cast<int>(w), "span", "count", "total ms", "self ms",
                "p50 ms", "p95 ms");
  os << line;
  for (auto& [name, row] : sorted) {
    std::snprintf(line, sizeof line, "%-*s %8llu %12.3f %12.3f %10.3f %10.3f\n",
                  static_cast<int>(w), name.c_str(),
                  static_cast<unsigned long long>(row->count),
                  static_cast<double>(row->total_ns) / 1e6,
                  static_cast<double>(row->self_ns) / 1e6, pct(row->durs, 0.50),
                  pct(row->durs, 0.95));
    os << line;
  }
  return os.str();
}

void init_from_env() {
  // One-shot by design (audited for daemon use): SUIFX_TRACE binds an atexit
  // writer to one output path, so re-reading it per call could only clobber
  // that binding. Daemons wanting tracing on a request path use the
  // programmatic start()/write_json() API instead of the env knob.
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("SUIFX_TRACE");
    if (path == nullptr || *path == '\0') return;
    env_path() = path;
    start();
    std::atexit([] {
      if (!write_json(env_path())) {
        std::fprintf(stderr, "suifx: could not write SUIFX_TRACE file %s\n",
                     env_path().c_str());
      }
    });
  });
}

}  // namespace suifx::support::trace
