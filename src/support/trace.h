// Span tracing for the whole pipeline: every analysis pass, slicer query,
// driver task, pool epoch, and parloop chunk opens an RAII TraceSpan; the
// collected spans export as Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing) and as an aligned text summary (count, total/self time,
// p50/p95 per span name). This is the measurement substrate the perf PRs
// cite: worker attribution (tid) makes concurrency, utilization, and load
// imbalance directly visible.
//
// Design constraints:
//
//  * Always compiled, cheap when disabled. A disabled TraceSpan is one
//    relaxed-ish atomic load and a branch — no clock read, no allocation.
//    Call sites that build a dynamic detail string guard it behind
//    `span.active()` so the disabled path stays allocation-free.
//
//  * No global lock on the hot path. Each emitting thread owns a
//    fixed-capacity ring buffer guarded by its own (uncontended) mutex; the
//    global registry mutex is taken only on first emission per thread and
//    during export. When a ring wraps, the oldest events are overwritten
//    and counted in dropped().
//
//  * Activation: programmatic trace::start()/stop(), or the environment —
//    SUIFX_TRACE=<path> starts tracing at init_from_env() (called by
//    Workbench::from_source and the benches) and writes <path> at process
//    exit.
//
// start()/stop() delimit a *generation*: spans recorded under an older
// generation are excluded from snapshot()/json()/summary(), so a fresh
// start() needs no cross-thread buffer clearing. Spans in flight across a
// start()/stop() edge are dropped, not torn.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace suifx::support::trace {

/// One completed span ("X" phase in the Chrome trace-event schema).
struct TraceEvent {
  std::string name;    // e.g. "pass/depend", "driver/task", "parloop/chunk"
  std::string detail;  // optional attribution: procedure, loop, proc id
  int64_t t0_ns = 0;   // start, ns since trace::start()
  int64_t dur_ns = 0;
  int tid = 0;         // stable per-thread id (registration order)
  /// Request correlation id (provenance::current_corr() at span start; 0 =
  /// no request context). Exported as args.corr, so a Chrome trace of a
  /// multi-request daemon can be filtered down to one request's spans.
  uint64_t corr = 0;
};

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// True while a trace is being collected. Safe from any thread.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_acquire);
}

/// Begin a new trace generation (clears prior events logically).
void start();
/// Stop collecting. Events recorded so far stay exportable.
void stop();

/// Nanoseconds since start() on the tracer's clock (0 when never started).
/// Benches use this to window snapshot() around a measured region.
int64_t now_ns();

/// All events of the current generation, sorted by (tid, t0_ns).
std::vector<TraceEvent> snapshot();
/// Events overwritten by ring wrap-around in the current generation.
uint64_t dropped();

/// Chrome trace-event JSON ({"traceEvents":[...]}, complete "X" events,
/// microsecond timestamps, JSON-escaped names). Loads in Perfetto.
std::string json();
/// Write json() to `path`; false on I/O failure.
bool write_json(const std::string& path);

/// Aligned per-name table: count, total ms, self ms (total minus time in
/// enclosed spans on the same thread), p50/p95 span duration. Sorted by
/// total time, descending.
std::string summary();

/// If SUIFX_TRACE=<path> is set (and this is the first call): start() now
/// and register an atexit hook that writes the JSON to <path>. Idempotent.
void init_from_env();

/// RAII span. Construct at scope entry; the completed span is recorded at
/// destruction on the emitting thread's ring. Does nothing when tracing is
/// disabled at construction (or got disabled before destruction).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (enabled()) begin(name);
  }
  TraceSpan(const char* name, std::string_view det) {
    if (enabled()) {
      begin(name);
      detail_.assign(det);
    }
  }
  ~TraceSpan() {
    if (live_) end();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span will be recorded — guard dynamic-detail
  /// construction with it to keep the disabled path allocation-free.
  bool active() const { return live_; }
  /// Attach/replace the attribution string (no-op when inactive).
  void set_detail(std::string det) {
    if (live_) detail_ = std::move(det);
  }

 private:
  void begin(const char* name);
  void end();

  bool live_ = false;
  const char* name_ = nullptr;
  std::string detail_;
  int64_t t0_ = 0;
  uint64_t corr_ = 0;
};

}  // namespace suifx::support::trace
