// Deterministic fault injection (see docs/robustness.md). Call sites drop a
// SUIFX_FAULT_POINT("name") at the places the pipeline must survive losing —
// pass entries, driver/pool task dispatch, slicer steps, parloop chunks. The
// macro registers the point name once per call site (so sweeps can enumerate
// every point) and throws InjectedFault there when the armed spec selects
// the hit. Disarmed cost is one atomic load.
//
// Spec grammar (SUIFX_FAULT env var or Registry::configure), entries
// separated by ';':
//   point            fire at the 1st hit of `point`, once
//   point@N          fire at the Nth hit, once
//   point@p=F,seed=S fire each hit with probability F, decided by a seeded
//                    hash of (seed, point, hit#) — bit-for-bit reproducible
//   prefix*  /  *    wildcards match by prefix / match every point
//
// Hit counters are per point name and reset on configure(), so counting
// triggers are deterministic wherever the pipeline's hit order is (the
// seeded-probability mode is deterministic even under concurrent hit
// interleaving, since it keys on the per-point hit index).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace suifx::support::fault {

/// The injected failure. Carries the point that fired.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& point)
      : std::runtime_error("injected fault at " + point), point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

class Registry {
 public:
  /// The process-wide registry every SUIFX_FAULT_POINT reports to.
  static Registry& global();

  /// Record a point name (idempotent). Returns true so the registration
  /// macro can bind it to a function-local static.
  bool register_point(const char* name);

  /// Parse and arm a spec (replacing any previous one); resets hit and fire
  /// counts. Empty spec disarms. Returns false — arming nothing — when the
  /// spec is malformed.
  bool configure(const std::string& spec);
  /// Disarm and forget all rules and counts.
  void clear();

  bool armed() const { return armed_.load(std::memory_order_acquire); }
  /// Account one hit of `point`; throws InjectedFault when a rule fires.
  void hit(const char* point);

  /// Every point name registered so far (sorted). A sweep drives this.
  std::vector<std::string> points() const;
  /// Faults fired since the last configure()/clear().
  uint64_t fired() const { return fired_.load(std::memory_order_relaxed); }

  /// Arm from SUIFX_FAULT once per process; a programmatic configure() or
  /// clear() beforehand takes precedence. Called by Workbench::from_source.
  void init_from_env();

 private:
  struct Rule {
    std::string pattern;  // exact name, "prefix*", or "*"
    uint64_t nth = 1;     // counting mode: fire at the nth hit, once
    bool probabilistic = false;
    double p = 0;
    uint64_t seed = 0;
    bool fired = false;  // counting-mode rules fire at most once
  };

  mutable std::mutex mu_;
  std::set<std::string> points_;
  std::vector<Rule> rules_;
  std::map<std::string, uint64_t> hits_;
  std::atomic<uint64_t> fired_{0};
  std::atomic<bool> armed_{false};
  bool configured_ = false;  // programmatic configure()/clear() beats env
};

/// While alive on a thread, every injection point on it is a no-op — the
/// degraded-tier retries wrap themselves in one so a retry cannot be
/// re-failed by the same spec.
class SuppressScope {
 public:
  SuppressScope();
  ~SuppressScope();
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;
};

/// True when a SuppressScope is alive on this thread.
bool suppressed();

inline void maybe_inject(const char* point) {
  Registry& r = Registry::global();
  if (!r.armed() || suppressed()) return;
  r.hit(point);
}

}  // namespace suifx::support::fault

/// Named injection point. Registers once per call site, then injects per the
/// armed spec. Cheap when disarmed.
#define SUIFX_FAULT_POINT(point_name)                                        \
  do {                                                                       \
    static const bool suifx_fault_registered_ =                              \
        ::suifx::support::fault::Registry::global().register_point(          \
            point_name);                                                     \
    (void)suifx_fault_registered_;                                           \
    ::suifx::support::fault::maybe_inject(point_name);                       \
  } while (0)
