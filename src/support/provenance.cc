#include "support/provenance.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "support/metrics.h"

namespace suifx::support::provenance {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<uint64_t> g_next_corr{0};
std::atomic<uint64_t> g_seq{0};

thread_local uint64_t tl_corr = 0;
thread_local LoopScope* tl_scope = nullptr;
// The record of the innermost open scope (kept separate so note() needs no
// friend access into LoopScope).
thread_local LoopRecord* tl_rec = nullptr;

void append_escaped(std::string& out, const std::string& s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

std::string& env_path() {
  static std::string* p = new std::string;  // outlives static destructors
  return *p;
}

}  // namespace

const char* to_string(Kind k) {
  switch (k) {
    case Kind::DependenceFound: return "dependence-found";
    case Kind::AliasAssumed: return "alias-assumed";
    case Kind::ReductionRecognized: return "reduction-recognized";
    case Kind::PrivatizationApplied: return "privatization-applied";
    case Kind::FinalizeBlocked: return "finalize-blocked";
    case Kind::AssertionApplied: return "assertion-applied";
    case Kind::IoFound: return "io-found";
    case Kind::Degraded: return "degraded";
    case Kind::BudgetExhausted: return "budget-exhausted";
    case Kind::CacheSeeded: return "cache-seeded";
    case Kind::FaultInjected: return "fault-injected";
    case Kind::SpeculationAttempted: return "speculation-attempted";
    case Kind::Misspeculation: return "misspeculation";
    case Kind::Rollback: return "rollback";
    case Kind::PipelineStaged: return "pipeline-staged";
    case Kind::DoacrossSynced: return "doacross-synced";
    case Kind::AliasRefined: return "alias-refined";
  }
  return "?";
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void init_from_env() {
  // One-shot, like trace::init_from_env: the atexit writer binds one output
  // path. Daemons use the programmatic Ledger API on request paths.
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* s = std::getenv("SUIFX_PROVENANCE")) {
      if (s[0] == '0' && s[1] == '\0') set_enabled(false);
    }
    if (const char* s = std::getenv("SUIFX_PROVENANCE_CAP")) {
      char* end = nullptr;
      unsigned long long v = std::strtoull(s, &end, 10);
      if (end != s && v > 0) {
        if (*end == 'K' || *end == 'k') v *= 1024, ++end;
        else if (*end == 'M' || *end == 'm') v *= 1024 * 1024, ++end;
        if (*end == '\0') Ledger::global().set_capacity(static_cast<size_t>(v));
      }
    }
    const char* path = std::getenv("SUIFX_PROVENANCE_JSON");
    if (path == nullptr || *path == '\0') return;
    env_path() = path;
    std::atexit([] {
      if (!Ledger::global().write_json(env_path())) {
        std::fprintf(stderr,
                     "suifx: could not write SUIFX_PROVENANCE_JSON file %s\n",
                     env_path().c_str());
      }
    });
  });
}

uint64_t next_corr() {
  return g_next_corr.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t current_corr() { return tl_corr; }

CorrScope::CorrScope(uint64_t corr) : prev_(tl_corr) { tl_corr = corr; }
CorrScope::~CorrScope() { tl_corr = prev_; }

// ---------------------------------------------------------------------------
// Ledger
// ---------------------------------------------------------------------------

void Ledger::record(Kind kind, std::string loop, std::string var,
                    std::string detail) {
  if (!enabled()) return;
  Event e;
  e.kind = kind;
  e.corr = tl_corr;
  e.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  e.loop = std::move(loop);
  e.var = std::move(var);
  e.detail = std::move(detail);
  bool warn_now = false;
  size_t cap = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(e));
    } else {
      ring_[next_] = std::move(e);
      next_ = (next_ + 1) % capacity_;
      if (!warned_wrap_) {
        warned_wrap_ = true;
        warn_now = true;
        cap = capacity_;
      }
    }
    ++recorded_;
  }
  if (warn_now) {
    // Once per wrap epoch (re-armed by clear()/set_capacity()). stderr, not
    // Diag: the ledger is a process-wide singleton with no Diag instance to
    // route through.
    std::fprintf(stderr,
                 "suifx: provenance ring wrapped at %zu events; earliest "
                 "events dropped (raise SUIFX_PROVENANCE_CAP)\n",
                 cap);
    Metrics::global().count("provenance.ring_wrap");
  }
}

std::vector<Event> Ledger::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  // Oldest first: [next_, end) then [0, next_) once the ring has wrapped.
  if (recorded_ > ring_.size()) {
    out.insert(out.end(), ring_.begin() + static_cast<long>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<long>(next_));
  } else {
    out = ring_;
  }
  return out;
}

uint64_t Ledger::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t Ledger::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

void Ledger::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
  warned_wrap_ = false;
}

void Ledger::set_capacity(size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, cap);
  ring_.clear();
  next_ = 0;
  warned_wrap_ = false;
}

size_t Ledger::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::string Ledger::json() const {
  std::vector<Event> events = snapshot();
  std::string out = "{\"schema\":\"";
  out += kSchema;
  out += "\",\"dropped\":";
  out += std::to_string(dropped());
  out += ",\"events\":[";
  char buf[64];
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof buf, "\n{\"seq\":%llu,\"corr\":%llu,",
                  static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned long long>(e.corr));
    out += buf;
    out += "\"kind\":\"";
    out += to_string(e.kind);
    out += "\",\"loop\":\"";
    append_escaped(out, e.loop);
    out += "\",\"var\":\"";
    append_escaped(out, e.var);
    out += "\",\"detail\":\"";
    append_escaped(out, e.detail);
    out += "\"}";
  }
  out += "\n]}\n";
  return out;
}

bool Ledger::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string text = json();
  size_t n = std::fwrite(text.data(), 1, text.size(), f);
  return std::fclose(f) == 0 && n == text.size();
}

Ledger& Ledger::global() {
  static Ledger* l = new Ledger;  // leaked: atexit writers may outlive statics
  return *l;
}

void event(Kind kind, std::string loop, std::string var, std::string detail) {
  if (!enabled()) return;
  Ledger::global().record(kind, std::move(loop), std::move(var),
                          std::move(detail));
}

// ---------------------------------------------------------------------------
// LoopScope / note
// ---------------------------------------------------------------------------

LoopScope::LoopScope(std::string loop_name) {
  if (!enabled()) return;
  rec_ = std::make_shared<LoopRecord>();
  rec_->loop = std::move(loop_name);
  rec_->entries.reserve(4);  // typical records hold a handful of causes
  prev_ = tl_scope;
  tl_scope = this;
  tl_rec = rec_.get();
}

LoopScope::~LoopScope() {
  if (tl_scope == this) {
    tl_scope = prev_;
    tl_rec = (prev_ != nullptr && prev_->rec_ != nullptr) ? prev_->rec_.get()
                                                          : nullptr;
  }
}

std::shared_ptr<const LoopRecord> LoopScope::finish(std::string verdict,
                                                    std::string reason) {
  if (rec_ == nullptr) return nullptr;
  rec_->verdict = std::move(verdict);
  rec_->reason = std::move(reason);
  // Canonical entry order: records are built concurrently from analyses that
  // iterate pointer-keyed maps; sorting by (kind, var, detail) makes the
  // rendered record independent of heap layout and worker interleaving.
  std::sort(rec_->entries.begin(), rec_->entries.end(),
            [](const LoopEntry& a, const LoopEntry& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.var != b.var) return a.var < b.var;
              return a.detail < b.detail;
            });
  std::shared_ptr<const LoopRecord> out = std::move(rec_);
  if (tl_scope == this) tl_rec = nullptr;
  return out;
}

bool noting() { return tl_rec != nullptr && enabled(); }

void note(Kind kind, std::string var, std::string detail) {
  if (tl_rec == nullptr || !enabled()) return;
  Ledger::global().record(kind, tl_rec->loop, var, detail);
  tl_rec->entries.push_back({kind, std::move(var), std::move(detail)});
}

// ---------------------------------------------------------------------------
// LoopRecord rendering
// ---------------------------------------------------------------------------

std::string LoopRecord::text() const {
  std::string out = "loop " + loop + ": " + verdict;
  if (!reason.empty()) {
    out += " (";
    out += reason;
    out += ")";
  }
  out += "\n";
  for (const LoopEntry& e : entries) {
    out += "  - ";
    out += to_string(e.kind);
    if (!e.var.empty()) {
      out += " ";
      out += e.var;
    }
    if (!e.detail.empty()) {
      out += ": ";
      out += e.detail;
    }
    out += "\n";
  }
  return out;
}

std::string LoopRecord::json() const {
  std::string out = "{\"loop\":\"";
  append_escaped(out, loop);
  out += "\",\"verdict\":\"";
  append_escaped(out, verdict);
  out += "\",\"reason\":\"";
  append_escaped(out, reason);
  out += "\",\"causes\":[";
  bool first = true;
  for (const LoopEntry& e : entries) {
    if (!first) out += ",";
    first = false;
    out += "{\"kind\":\"";
    out += to_string(e.kind);
    out += "\",\"var\":\"";
    append_escaped(out, e.var);
    out += "\",\"detail\":\"";
    append_escaped(out, e.detail);
    out += "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace suifx::support::provenance
