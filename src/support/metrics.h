// Lightweight pass-timing and counter registry. Analyses bump named
// counters/timers as they run; benches and tests read them back to assert
// re-analysis behavior (e.g. the plan cache re-analyzing only invalidated
// loop nests) and to report per-pass cost next to the figure tables.
//
// Three kinds of instrument:
//  * counters / timers — mutex-protected maps; one lock per event, which is
//    negligible at analysis-pass granularity.
//  * Histogram — fixed exponential latency buckets with lock-free
//    (atomic) recording and p50/p95 readout; for per-event latencies
//    (driver tasks, parloop chunks, slicer queries).
//  * ShardedCounter — cache-line-padded atomic shards for counters bumped
//    from many pool workers at once (no shared cache line, no lock).
//
// Thread-safety contract:
//  * Every method is safe to call concurrently with every other.
//  * `histogram()` / `sharded()` return references that stay valid for the
//    registry's lifetime; `reset()` zeroes them in place rather than
//    destroying them.
//  * `reset()` concurrent with in-flight recording is racy-by-design in
//    the benign sense: an event recorded while reset() runs lands either
//    before or after the wipe, atomically per instrument. A ScopedTimer
//    destroyed after a reset() re-creates its key and contributes only its
//    own elapsed time — benches that reset mid-epoch therefore see exactly
//    the timers that *finish* after the reset.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace suifx::support {

/// Fixed-bucket latency histogram over milliseconds. Bucket 0 holds values
/// below 1µs; bucket i (i >= 1) holds [2^(i-1), 2^i) µs; the last bucket is
/// a catch-all. Recording is a couple of relaxed atomic adds; quantiles are
/// linearly interpolated within the winning bucket.
class Histogram {
 public:
  static constexpr int kBuckets = 44;  // last finite bound ≈ 2.4 days

  void record_ms(double ms);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_ms() const {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) / 1e6;
  }
  /// Interpolated quantile in ms, q in [0, 1]. 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }

  uint64_t bucket_count(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Inclusive-exclusive upper bound of bucket i, in ms.
  static double bucket_upper_ms(int i);
  /// The bucket record_ms(ms) lands in (exposed for the boundary tests).
  static int bucket_index(double ms);

  void reset();

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> total_ns_{0};
};

/// A counter sharded across cache-line-padded atomic slots: concurrent
/// add() calls from different threads touch different cache lines.
class ShardedCounter {
 public:
  void add(uint64_t n = 1);
  uint64_t value() const;
  void reset();

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

class Metrics {
 public:
  /// Add `n` to the counter named `key` (created at zero on first use).
  void count(const std::string& key, uint64_t n = 1);
  /// Add wall-clock milliseconds to the timer named `key`.
  void add_ms(const std::string& key, double ms);

  uint64_t counter(const std::string& key) const;
  double total_ms(const std::string& key) const;
  std::map<std::string, uint64_t> counters() const;
  std::map<std::string, double> timers() const;

  /// The named histogram / sharded counter, created on first use. The
  /// returned reference stays valid for the registry's lifetime (reset()
  /// zeroes in place), so hot paths may cache it.
  Histogram& histogram(const std::string& key);
  ShardedCounter& sharded(const std::string& key);

  /// Zero every instrument. See the thread-safety contract above.
  void reset();

  /// All counters, timers, sharded counters, and histograms, one aligned
  /// line each. Takes one snapshot under the lock and renders outside it,
  /// so it never interleaves with concurrent count()/add_ms() callers.
  std::string report() const;

  /// The same snapshot as report(), rendered as one JSON object:
  /// {"counters":{...},"timers_ms":{...},"histograms":{name:{"count":..,
  /// "total_ms":..,"p50_ms":..,"p95_ms":..},...}}. Sharded counters fold
  /// into "counters". The service Profile response returns this.
  std::string report_json() const;

  /// The process-wide registry every instrumented pass reports into.
  static Metrics& global();

  /// RAII wall-clock timer: adds the elapsed time to timer `key` on
  /// destruction, and records it into `hist` when one is given. If the
  /// registry is reset() mid-scope, only this scope's elapsed time lands in
  /// the re-created key (see the contract above).
  class ScopedTimer {
   public:
    ScopedTimer(Metrics& m, std::string key, Histogram* hist = nullptr)
        : m_(m),
          key_(std::move(key)),
          hist_(hist),
          t0_(std::chrono::steady_clock::now()) {}
    ~ScopedTimer() {
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0_)
                      .count();
      m_.add_ms(key_, ms);
      if (hist_ != nullptr) hist_->record_ms(ms);
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

   private:
    Metrics& m_;
    std::string key_;
    Histogram* hist_;
    std::chrono::steady_clock::time_point t0_;
  };

  /// Thread-local tee for request-scoped capture: while a ScopedLocal is
  /// alive, every count()/add_ms() this thread records into any *other*
  /// registry is also recorded into `local`. A daemon wraps each request in
  /// one and reads `local` back to attribute work to that request without
  /// diffing the global registry under concurrency. Nests (the innermost
  /// scope receives the tee). Pool workers spawned by the request do NOT
  /// inherit it — totals that must include pool-side work are read from the
  /// instrument's owner instead (e.g. Driver's hit/miss counters).
  class ScopedLocal {
   public:
    explicit ScopedLocal(Metrics* local);
    ~ScopedLocal();
    ScopedLocal(const ScopedLocal&) = delete;
    ScopedLocal& operator=(const ScopedLocal&) = delete;

   private:
    Metrics* prev_;
  };

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> timers_;
  // unique_ptr values: references handed out survive map rehash/insert.
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<ShardedCounter>> sharded_;
};

}  // namespace suifx::support
