// Lightweight pass-timing and counter registry. Analyses bump named
// counters/timers as they run; benches and tests read them back to assert
// re-analysis behavior (e.g. the plan cache re-analyzing only invalidated
// loop nests) and to report per-pass cost next to the figure tables.
//
// Thread-safe: the parallel analysis driver bumps counters from pool
// workers. Cost is one mutex acquisition per event, which is negligible at
// analysis-pass granularity.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace suifx::support {

class Metrics {
 public:
  /// Add `n` to the counter named `key` (created at zero on first use).
  void count(const std::string& key, uint64_t n = 1);
  /// Add wall-clock milliseconds to the timer named `key`.
  void add_ms(const std::string& key, double ms);

  uint64_t counter(const std::string& key) const;
  double total_ms(const std::string& key) const;
  std::map<std::string, uint64_t> counters() const;
  std::map<std::string, double> timers() const;

  void reset();

  /// All counters and timers, one aligned "key value" line each.
  std::string report() const;

  /// The process-wide registry every instrumented pass reports into.
  static Metrics& global();

  /// RAII wall-clock timer: adds the elapsed time to `key` on destruction.
  class ScopedTimer {
   public:
    ScopedTimer(Metrics& m, std::string key)
        : m_(m), key_(std::move(key)), t0_(std::chrono::steady_clock::now()) {}
    ~ScopedTimer() {
      m_.add_ms(key_, std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0_)
                          .count());
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

   private:
    Metrics& m_;
    std::string key_;
    std::chrono::steady_clock::time_point t0_;
  };

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> timers_;
};

}  // namespace suifx::support
