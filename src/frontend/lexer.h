// Lexer for the SF mini-language.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/diag.h"

namespace suifx::frontend {

enum class Tok : uint8_t {
  End, Ident, IntLit, RealLit,
  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semi, Colon, At, Assign,
  // operators
  Plus, Minus, Star, Slash, Percent,
  Lt, Le, Gt, Ge, EqEq, Ne, AndAnd, OrOr, Bang,
  // keywords
  KwProgram, KwParam, KwGlobal, KwInput, KwProc, KwCommon,
  KwInt, KwReal, KwBool, KwIf, KwElse, KwDo, KwLabel, KwCall, KwPrint,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;   // identifier spelling or literal spelling
  long ival = 0;      // IntLit
  double rval = 0.0;  // RealLit
  SourceLoc loc;
};

/// Tokenize `src`; lexical errors go to `diag`. Always ends with a Tok::End.
std::vector<Token> lex(std::string_view src, Diag& diag);

const char* to_string(Tok t);

}  // namespace suifx::frontend
