// Recursive-descent parser for SF producing finalized, verified IR.
//
// Grammar (comments are // to end-of-line):
//   program  := "program" IDENT ";" { param | global | proc }
//   param    := "param" IDENT "=" INT ";"
//   global   := "global" type IDENT [dims] ["input"] ";"
//   proc     := "proc" IDENT "(" [formal {"," formal}] ")" "{" {decl} {stmt} "}"
//   formal   := type IDENT [dims]
//   decl     := type IDENT [dims] ["input"] ";"
//             | "common" IDENT ["@" INT] type IDENT [dims] ["input"] ";"
//   dims     := "[" dim {"," dim} "]"           // bare expr means 1:expr
//   dim      := expr [":" expr]
//   stmt     := lval "=" expr ";"
//             | "if" "(" expr ")" block ["else" block]
//             | "do" IDENT "=" expr "," expr ["," expr] ["label" INT] block
//             | "call" IDENT "(" [expr {"," expr}] ")" ";"
//             | "print" expr ";" | ";"
// Intrinsics: min(a,b), max(a,b), sqrt, abs, exp, log, int, real.
// Loop indices are auto-declared as int locals when not declared.
// The procedure named "main" (or the first procedure) is the entry point.
#pragma once

#include <memory>
#include <string_view>

#include "ir/ir.h"
#include "support/diag.h"

namespace suifx::frontend {

struct ParseOptions {
  /// Panic-mode recovery reports up to this many syntax errors before giving
  /// up (one note marks the suppression point). Must be >= 1.
  int max_errors = 25;
};

/// Parse, finalize, and verify an SF program. Returns null on error (details
/// in `diag`). Malformed or truncated input never crashes the parser: it
/// resynchronizes at statement/declaration boundaries and keeps going, so one
/// bad statement yields one diagnostic, not a cascade or a wedged parse.
std::unique_ptr<ir::Program> parse_program(std::string_view src, Diag& diag);
std::unique_ptr<ir::Program> parse_program(std::string_view src, Diag& diag,
                                           const ParseOptions& opts);

}  // namespace suifx::frontend
