#include "frontend/parser.h"

#include <map>

#include "frontend/lexer.h"
#include "ir/verify.h"

namespace suifx::frontend {

namespace ir = suifx::ir;

namespace {

class Parser {
 public:
  Parser(std::vector<Token> toks, Diag& diag, const ParseOptions& opts)
      : toks_(std::move(toks)), diag_(diag), opts_(opts) {}

  std::unique_ptr<ir::Program> run() {
    expect(Tok::KwProgram, "program header");
    std::string name = expect_ident("program name");
    expect(Tok::Semi, "';' after program name");
    prog_ = std::make_unique<ir::Program>(name);
    prescan_procs();
    while (!at(Tok::End) && !fatal_) {
      if (at(Tok::KwParam)) {
        parse_param();
      } else if (at(Tok::KwGlobal)) {
        parse_global();
      } else if (at(Tok::KwProc)) {
        parse_proc();
      } else {
        error("expected 'param', 'global', or 'proc'");
        sync_top();
      }
    }
    if (diag_.has_errors()) return nullptr;
    ir::Procedure* main = prog_->find_procedure("main");
    if (main == nullptr && !prog_->procedures().empty()) {
      main = &prog_->procedures().front();
    }
    prog_->set_main(main);
    prog_->finalize();
    if (!ir::verify(*prog_, diag_)) return nullptr;
    return std::move(prog_);
  }

 private:
  // --- token helpers --------------------------------------------------------
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(size_t k = 1) const {
    size_t p = pos_ + k;
    return p < toks_.size() ? toks_[p] : toks_.back();
  }
  bool at(Tok k) const { return cur().kind == k; }
  Token take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  void error(const std::string& msg) {
    if (fatal_) return;  // past the cap: stay quiet while callers unwind
    diag_.error(cur().loc, msg + " (got " + to_string(cur().kind) + ")");
    if (++errors_ >= opts_.max_errors) {
      fatal_ = true;
      diag_.note(cur().loc, "too many syntax errors; further diagnostics suppressed");
    }
  }

  // --- panic-mode recovery --------------------------------------------------
  /// Skip to the next token that can begin a top-level construct.
  void sync_top() {
    while (!at(Tok::End) && !at(Tok::KwParam) && !at(Tok::KwGlobal) &&
           !at(Tok::KwProc)) {
      take();
    }
  }

  /// Skip to a statement boundary: past the next ';', or up to a token that
  /// can begin a statement or close the enclosing block. Callers' loops
  /// guarantee progress (parse_stmt_list consumes a token when a statement
  /// parse consumed nothing).
  void sync_stmt() {
    for (;;) {
      if (at(Tok::End) || at(Tok::RBrace) || at(Tok::LBrace) || at(Tok::KwIf) ||
          at(Tok::KwDo) || at(Tok::KwCall) || at(Tok::KwPrint) ||
          at(Tok::KwElse) || at(Tok::KwProc)) {
        return;
      }
      if (at(Tok::Semi)) {
        take();
        return;
      }
      take();
    }
  }
  bool expect(Tok k, const std::string& what) {
    if (at(k)) {
      take();
      return true;
    }
    error("expected " + what);
    return false;
  }
  std::string expect_ident(const std::string& what) {
    if (at(Tok::Ident)) return take().text;
    error("expected " + what);
    return "?";
  }
  bool accept(Tok k) {
    if (at(k)) {
      take();
      return true;
    }
    return false;
  }

  // --- declarations ---------------------------------------------------------
  void prescan_procs() {
    for (size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (toks_[i].kind == Tok::KwProc && toks_[i + 1].kind == Tok::Ident) {
        if (prog_->find_procedure(toks_[i + 1].text) != nullptr) {
          diag_.error(toks_[i + 1].loc, "duplicate procedure '" + toks_[i + 1].text + "'");
        } else {
          prog_->new_procedure(toks_[i + 1].text);
        }
      }
    }
  }

  bool at_type() const {
    return at(Tok::KwInt) || at(Tok::KwReal) || at(Tok::KwBool);
  }

  ir::ScalarType parse_type() {
    if (accept(Tok::KwInt)) return ir::ScalarType::Int;
    if (accept(Tok::KwReal)) return ir::ScalarType::Real;
    if (accept(Tok::KwBool)) return ir::ScalarType::Bool;
    error("expected a type");
    return ir::ScalarType::Real;
  }

  std::vector<ir::Dim> parse_dims(ir::Procedure* scope) {
    std::vector<ir::Dim> dims;
    if (!accept(Tok::LBracket)) return dims;
    do {
      const ir::Expr* a = parse_expr(scope);
      ir::Dim d;
      if (accept(Tok::Colon)) {
        d.lower = a;
        d.upper = parse_expr(scope);
      } else {
        d.lower = prog_->int_const(1);
        d.upper = a;
      }
      dims.push_back(d);
    } while (accept(Tok::Comma));
    expect(Tok::RBracket, "']' after dimensions");
    return dims;
  }

  void parse_param() {
    take();  // param
    std::string n = expect_ident("parameter name");
    expect(Tok::Assign, "'=' in param");
    long v = 0;
    bool neg = accept(Tok::Minus);
    if (at(Tok::IntLit)) {
      v = take().ival;
    } else {
      error("expected integer default for param");
    }
    if (neg) v = -v;
    expect(Tok::Semi, "';' after param");
    prog_->new_sym_param(n, v);
  }

  void parse_global() {
    take();  // global
    ir::ScalarType t = parse_type();
    std::string n = expect_ident("global name");
    std::vector<ir::Dim> dims = parse_dims(nullptr);
    ir::Variable* v = prog_->new_global(n, t, std::move(dims));
    v->is_input = accept(Tok::KwInput);
    expect(Tok::Semi, "';' after global");
  }

  void parse_proc() {
    take();  // proc
    std::string n = expect_ident("procedure name");
    ir::Procedure* p = prog_->find_procedure(n);
    if (p == nullptr) {
      // The name was malformed, so the prescan registered nothing. Parse the
      // body into a recovery procedure anyway: the program already has an
      // error (run() returns null), but later statements still get checked.
      p = prog_->new_procedure("$recovery" + std::to_string(pos_));
    }
    expect(Tok::LParen, "'(' after procedure name");
    // Two passes over the formal list so adjustable array dims may reference
    // any other formal regardless of order (Fortran style): pass 1 registers
    // the formals (skipping bracketed dims), pass 2 re-parses the dims.
    size_t list_start = pos_;
    int errors_before = errors_;
    if (!at(Tok::RParen)) {
      do {
        ir::ScalarType t = parse_type();
        std::string fn = expect_ident("formal name");
        prog_->new_formal(p, fn, t);
        if (at(Tok::LBracket)) {
          int depth = 0;
          do {
            if (at(Tok::LBracket)) ++depth;
            if (at(Tok::RBracket)) --depth;
            take();
          } while (depth > 0 && !at(Tok::End));
        }
      } while (accept(Tok::Comma));
    }
    // Re-parse dims only if pass 1 was clean: a malformed list would both
    // duplicate its diagnostics and misalign formal_ix against formals.
    if (errors_ == errors_before) {
      pos_ = list_start;
      size_t formal_ix = 0;
      if (!at(Tok::RParen)) {
        do {
          parse_type();
          expect_ident("formal name");
          if (formal_ix < p->formals.size()) {
            p->formals[formal_ix++]->dims = parse_dims(p);
          } else {
            parse_dims(p);
          }
        } while (accept(Tok::Comma));
      }
    }
    expect(Tok::RParen, "')' after formals");
    expect(Tok::LBrace, "'{' opening procedure body");
    // Declarations first.
    while ((at_type() || at(Tok::KwCommon)) && !fatal_) parse_local_decl(p);
    // Then statements.
    p->body = parse_stmt_list(p);
    expect(Tok::RBrace, "'}' closing procedure body");
  }

  void parse_local_decl(ir::Procedure* p) {
    if (accept(Tok::KwCommon)) {
      std::string blk_name = expect_ident("common block name");
      ir::CommonBlock* blk = prog_->new_common(blk_name);
      long offset = 0;
      if (accept(Tok::At)) {
        if (at(Tok::IntLit)) {
          offset = take().ival;
        } else {
          error("expected integer offset after '@'");
        }
      }
      ir::ScalarType t = parse_type();
      std::string n = expect_ident("common member name");
      std::vector<ir::Dim> dims = parse_dims(p);
      ir::Variable* v = prog_->new_common_member(p, blk, n, t, std::move(dims), offset);
      v->is_input = accept(Tok::KwInput);
      expect(Tok::Semi, "';' after common declaration");
      return;
    }
    ir::ScalarType t = parse_type();
    std::string n = expect_ident("local name");
    std::vector<ir::Dim> dims = parse_dims(p);
    ir::Variable* v = prog_->new_local(p, n, t, std::move(dims));
    v->is_input = accept(Tok::KwInput);
    expect(Tok::Semi, "';' after declaration");
  }

  // --- name resolution ------------------------------------------------------
  ir::Variable* lookup(ir::Procedure* scope, const std::string& n) {
    if (scope != nullptr) {
      if (ir::Variable* v = scope->find_var(n)) return v;
    }
    for (ir::Variable* g : prog_->globals()) {
      if (g->name == n) return g;
    }
    for (ir::Variable* s : prog_->sym_params()) {
      if (s->name == n) return s;
    }
    return nullptr;
  }

  // --- statements -----------------------------------------------------------
  std::vector<ir::Stmt*> parse_stmt_list(ir::Procedure* p) {
    std::vector<ir::Stmt*> out;
    while (!at(Tok::RBrace) && !at(Tok::End) && !fatal_) {
      size_t before = pos_;
      if (ir::Stmt* s = parse_stmt(p)) out.push_back(s);
      // Progress guarantee: a statement parse that consumed nothing (a
      // malformed token recovery couldn't resynchronize past) must not stall
      // the list forever.
      if (pos_ == before) take();
    }
    return out;
  }

  std::vector<ir::Stmt*> parse_block(ir::Procedure* p) {
    expect(Tok::LBrace, "'{'");
    std::vector<ir::Stmt*> out = parse_stmt_list(p);
    expect(Tok::RBrace, "'}'");
    return out;
  }

  ir::Stmt* parse_stmt(ir::Procedure* p) {
    SourceLoc loc = cur().loc;
    if (accept(Tok::Semi)) return nullptr;
    if (at(Tok::KwIf)) return parse_if(p, loc);
    if (at(Tok::KwDo)) return parse_do(p, loc);
    if (at(Tok::KwCall)) return parse_call(p, loc);
    if (at(Tok::KwPrint)) {
      take();
      const ir::Expr* v = parse_expr(p);
      expect(Tok::Semi, "';' after print");
      return prog_->print(v, loc);
    }
    // Assignment.
    const ir::Expr* lhs = parse_primary(p);
    if (lhs == nullptr || !lhs->is_lvalue()) {
      error("expected a statement");
      sync_stmt();
      return nullptr;
    }
    if (!expect(Tok::Assign, "'=' in assignment")) {
      sync_stmt();
      return nullptr;
    }
    const ir::Expr* rhs = parse_expr(p);
    if (!expect(Tok::Semi, "';' after assignment")) sync_stmt();
    return prog_->assign(lhs, rhs, loc);
  }

  ir::Stmt* parse_if(ir::Procedure* p, SourceLoc loc) {
    take();  // if
    expect(Tok::LParen, "'(' after if");
    const ir::Expr* cond = parse_expr(p);
    expect(Tok::RParen, "')' after condition");
    std::vector<ir::Stmt*> then_body = parse_block(p);
    std::vector<ir::Stmt*> else_body;
    if (accept(Tok::KwElse)) else_body = parse_block(p);
    return prog_->if_(cond, std::move(then_body), std::move(else_body), loc);
  }

  ir::Stmt* parse_do(ir::Procedure* p, SourceLoc loc) {
    take();  // do
    std::string iname = expect_ident("loop index");
    ir::Variable* ivar = lookup(p, iname);
    if (ivar == nullptr) {
      ivar = prog_->new_local(p, iname, ir::ScalarType::Int);
    }
    expect(Tok::Assign, "'=' in do");
    const ir::Expr* lb = parse_expr(p);
    expect(Tok::Comma, "',' between loop bounds");
    const ir::Expr* ub = parse_expr(p);
    const ir::Expr* step = nullptr;
    if (accept(Tok::Comma)) step = parse_expr(p);
    std::string label;
    if (accept(Tok::KwLabel)) {
      if (at(Tok::IntLit)) {
        label = take().text;
      } else if (at(Tok::Ident)) {
        label = take().text;
      } else {
        error("expected a label after 'label'");
      }
    }
    std::vector<ir::Stmt*> body = parse_block(p);
    return prog_->do_(ivar, lb, ub, std::move(body), std::move(label), step, loc);
  }

  ir::Stmt* parse_call(ir::Procedure* p, SourceLoc loc) {
    take();  // call
    std::string cn = expect_ident("callee name");
    ir::Procedure* callee = prog_->find_procedure(cn);
    if (callee == nullptr) {
      error("unknown procedure '" + cn + "'");
      sync_stmt();  // skip the argument list: one diagnostic, not a cascade
      return nullptr;
    }
    expect(Tok::LParen, "'(' after callee");
    std::vector<const ir::Expr*> args;
    if (!at(Tok::RParen)) {
      do {
        args.push_back(parse_expr(p));
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "')' after arguments");
    expect(Tok::Semi, "';' after call");
    return prog_->call(callee, std::move(args), loc);
  }

  // --- expressions (precedence climbing) ------------------------------------
  const ir::Expr* parse_expr(ir::Procedure* p) { return parse_or(p); }

  const ir::Expr* parse_or(ir::Procedure* p) {
    const ir::Expr* e = parse_and(p);
    while (at(Tok::OrOr)) {
      take();
      e = prog_->binary(ir::BinOp::Or, e, parse_and(p));
    }
    return e;
  }

  const ir::Expr* parse_and(ir::Procedure* p) {
    const ir::Expr* e = parse_cmp(p);
    while (at(Tok::AndAnd)) {
      take();
      e = prog_->binary(ir::BinOp::And, e, parse_cmp(p));
    }
    return e;
  }

  const ir::Expr* parse_cmp(ir::Procedure* p) {
    const ir::Expr* e = parse_add(p);
    for (;;) {
      ir::BinOp op;
      if (at(Tok::Lt)) op = ir::BinOp::Lt;
      else if (at(Tok::Le)) op = ir::BinOp::Le;
      else if (at(Tok::Gt)) op = ir::BinOp::Gt;
      else if (at(Tok::Ge)) op = ir::BinOp::Ge;
      else if (at(Tok::EqEq)) op = ir::BinOp::Eq;
      else if (at(Tok::Ne)) op = ir::BinOp::Ne;
      else break;
      take();
      e = prog_->binary(op, e, parse_add(p));
    }
    return e;
  }

  const ir::Expr* parse_add(ir::Procedure* p) {
    const ir::Expr* e = parse_mul(p);
    for (;;) {
      if (at(Tok::Plus)) {
        take();
        e = prog_->binary(ir::BinOp::Add, e, parse_mul(p));
      } else if (at(Tok::Minus)) {
        take();
        e = prog_->binary(ir::BinOp::Sub, e, parse_mul(p));
      } else {
        break;
      }
    }
    return e;
  }

  const ir::Expr* parse_mul(ir::Procedure* p) {
    const ir::Expr* e = parse_unary(p);
    for (;;) {
      if (at(Tok::Star)) {
        take();
        e = prog_->binary(ir::BinOp::Mul, e, parse_unary(p));
      } else if (at(Tok::Slash)) {
        take();
        e = prog_->binary(ir::BinOp::Div, e, parse_unary(p));
      } else if (at(Tok::Percent)) {
        take();
        e = prog_->binary(ir::BinOp::Mod, e, parse_unary(p));
      } else {
        break;
      }
    }
    return e;
  }

  const ir::Expr* parse_unary(ir::Procedure* p) {
    if (accept(Tok::Minus)) return prog_->unary(ir::UnOp::Neg, parse_unary(p));
    if (accept(Tok::Bang)) return prog_->unary(ir::UnOp::Not, parse_unary(p));
    return parse_primary(p);
  }

  const ir::Expr* intrinsic(ir::Procedure* p, const std::string& name) {
    // One- and two-argument intrinsic functions.
    static const std::map<std::string, ir::UnOp> un = {
        {"sqrt", ir::UnOp::Sqrt}, {"abs", ir::UnOp::Abs},
        {"exp", ir::UnOp::Exp},   {"log", ir::UnOp::Log},
    };
    static const std::map<std::string, ir::BinOp> bin = {
        {"min", ir::BinOp::Min}, {"max", ir::BinOp::Max},
    };
    expect(Tok::LParen, "'(' after intrinsic");
    const ir::Expr* a = parse_expr(p);
    auto bi = bin.find(name);
    if (bi != bin.end()) {
      expect(Tok::Comma, "',' in two-arg intrinsic");
      const ir::Expr* b = parse_expr(p);
      expect(Tok::RParen, "')'");
      return prog_->binary(bi->second, a, b);
    }
    expect(Tok::RParen, "')'");
    auto ui = un.find(name);
    if (ui != un.end()) return prog_->unary(ui->second, a);
    return a;
  }

  const ir::Expr* parse_primary(ir::Procedure* p) {
    if (at(Tok::IntLit)) return prog_->int_const(take().ival);
    if (at(Tok::RealLit)) return prog_->real_const(take().rval);
    if (accept(Tok::LParen)) {
      const ir::Expr* e = parse_expr(p);
      expect(Tok::RParen, "')'");
      return e;
    }
    if (at(Tok::KwInt) || at(Tok::KwReal)) {
      // int(expr) / real(expr) casts.
      bool to_int = at(Tok::KwInt);
      take();
      expect(Tok::LParen, "'(' after cast");
      const ir::Expr* e = parse_expr(p);
      expect(Tok::RParen, "')' after cast");
      return prog_->unary(to_int ? ir::UnOp::IntCast : ir::UnOp::RealCast, e);
    }
    if (at(Tok::Ident)) {
      std::string n = take().text;
      if (at(Tok::LParen) &&
          (n == "min" || n == "max" || n == "sqrt" || n == "abs" || n == "exp" ||
           n == "log")) {
        return intrinsic(p, n);
      }
      ir::Variable* v = lookup(p, n);
      if (v == nullptr) {
        error("unknown variable '" + n + "'");
        return prog_->int_const(0);
      }
      if (accept(Tok::LBracket)) {
        std::vector<const ir::Expr*> idx;
        do {
          idx.push_back(parse_expr(p));
        } while (accept(Tok::Comma));
        expect(Tok::RBracket, "']' after subscripts");
        return prog_->array_ref(v, std::move(idx));
      }
      return prog_->var_ref(v);
    }
    error("expected an expression");
    return prog_->int_const(0);
  }

  std::vector<Token> toks_;
  Diag& diag_;
  ParseOptions opts_;
  size_t pos_ = 0;
  std::unique_ptr<ir::Program> prog_;
  int errors_ = 0;
  bool fatal_ = false;  // error cap reached: unwind without more diagnostics
};

}  // namespace

std::unique_ptr<ir::Program> parse_program(std::string_view src, Diag& diag) {
  return parse_program(src, diag, ParseOptions{});
}

std::unique_ptr<ir::Program> parse_program(std::string_view src, Diag& diag,
                                           const ParseOptions& opts) {
  std::vector<Token> toks = lex(src, diag);
  if (diag.has_errors()) return nullptr;
  ParseOptions clamped = opts;
  if (clamped.max_errors < 1) clamped.max_errors = 1;
  return Parser(std::move(toks), diag, clamped).run();
}

}  // namespace suifx::frontend
