#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

namespace suifx::frontend {

namespace {

const std::map<std::string, Tok, std::less<>>& keywords() {
  static const std::map<std::string, Tok, std::less<>> kw = {
      {"program", Tok::KwProgram}, {"param", Tok::KwParam},
      {"global", Tok::KwGlobal},   {"input", Tok::KwInput},
      {"proc", Tok::KwProc},       {"common", Tok::KwCommon},
      {"int", Tok::KwInt},         {"real", Tok::KwReal},
      {"bool", Tok::KwBool},       {"if", Tok::KwIf},
      {"else", Tok::KwElse},       {"do", Tok::KwDo},
      {"label", Tok::KwLabel},     {"call", Tok::KwCall},
      {"print", Tok::KwPrint},
  };
  return kw;
}

}  // namespace

std::vector<Token> lex(std::string_view src, Diag& diag) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1, col = 1;

  auto loc = [&]() { return SourceLoc{line, col}; };
  auto advance = [&](size_t n = 1) {
    for (size_t k = 0; k < n && i < src.size(); ++k) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto peek = [&](size_t k = 0) -> char {
    return i + k < src.size() ? src[i + k] : '\0';
  };
  auto push = [&](Tok k, SourceLoc l, std::string text = "") {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.loc = l;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < src.size() && peek() != '\n') advance();
      continue;
    }
    SourceLoc l = loc();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
        word.push_back(peek());
        advance();
      }
      auto it = keywords().find(word);
      if (it != keywords().end()) {
        push(it->second, l, word);
      } else {
        push(Tok::Ident, l, word);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::string num;
      bool is_real = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        num.push_back(peek());
        advance();
      }
      if (peek() == '.' && peek(1) != '.') {
        is_real = true;
        num.push_back(peek());
        advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          num.push_back(peek());
          advance();
        }
      }
      if (peek() == 'e' || peek() == 'E') {
        char sign = peek(1);
        if (std::isdigit(static_cast<unsigned char>(sign)) ||
            ((sign == '+' || sign == '-') &&
             std::isdigit(static_cast<unsigned char>(peek(2))))) {
          is_real = true;
          num.push_back(peek());
          advance();
          if (peek() == '+' || peek() == '-') {
            num.push_back(peek());
            advance();
          }
          while (std::isdigit(static_cast<unsigned char>(peek()))) {
            num.push_back(peek());
            advance();
          }
        }
      }
      Token t;
      t.loc = l;
      t.text = num;
      if (is_real) {
        t.kind = Tok::RealLit;
        t.rval = std::strtod(num.c_str(), nullptr);
      } else {
        t.kind = Tok::IntLit;
        t.ival = std::strtol(num.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      continue;
    }
    // Punctuation and operators.
    switch (c) {
      case '(': push(Tok::LParen, l); advance(); break;
      case ')': push(Tok::RParen, l); advance(); break;
      case '{': push(Tok::LBrace, l); advance(); break;
      case '}': push(Tok::RBrace, l); advance(); break;
      case '[': push(Tok::LBracket, l); advance(); break;
      case ']': push(Tok::RBracket, l); advance(); break;
      case ',': push(Tok::Comma, l); advance(); break;
      case ';': push(Tok::Semi, l); advance(); break;
      case ':': push(Tok::Colon, l); advance(); break;
      case '@': push(Tok::At, l); advance(); break;
      case '+': push(Tok::Plus, l); advance(); break;
      case '-': push(Tok::Minus, l); advance(); break;
      case '*': push(Tok::Star, l); advance(); break;
      case '/': push(Tok::Slash, l); advance(); break;
      case '%': push(Tok::Percent, l); advance(); break;
      case '<':
        if (peek(1) == '=') { push(Tok::Le, l); advance(2); }
        else { push(Tok::Lt, l); advance(); }
        break;
      case '>':
        if (peek(1) == '=') { push(Tok::Ge, l); advance(2); }
        else { push(Tok::Gt, l); advance(); }
        break;
      case '=':
        if (peek(1) == '=') { push(Tok::EqEq, l); advance(2); }
        else { push(Tok::Assign, l); advance(); }
        break;
      case '!':
        if (peek(1) == '=') { push(Tok::Ne, l); advance(2); }
        else { push(Tok::Bang, l); advance(); }
        break;
      case '&':
        if (peek(1) == '&') { push(Tok::AndAnd, l); advance(2); }
        else { diag.error(l, "stray '&'"); advance(); }
        break;
      case '|':
        if (peek(1) == '|') { push(Tok::OrOr, l); advance(2); }
        else { diag.error(l, "stray '|'"); advance(); }
        break;
      default:
        diag.error(l, std::string("unexpected character '") + c + "'");
        advance();
        break;
    }
  }
  Token end;
  end.kind = Tok::End;
  end.loc = loc();
  out.push_back(std::move(end));
  return out;
}

const char* to_string(Tok t) {
  switch (t) {
    case Tok::End: return "<eof>";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::RealLit: return "real literal";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::At: return "'@'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::EqEq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Bang: return "'!'";
    case Tok::KwProgram: return "'program'";
    case Tok::KwParam: return "'param'";
    case Tok::KwGlobal: return "'global'";
    case Tok::KwInput: return "'input'";
    case Tok::KwProc: return "'proc'";
    case Tok::KwCommon: return "'common'";
    case Tok::KwInt: return "'int'";
    case Tok::KwReal: return "'real'";
    case Tok::KwBool: return "'bool'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwDo: return "'do'";
    case Tok::KwLabel: return "'label'";
    case Tok::KwCall: return "'call'";
    case Tok::KwPrint: return "'print'";
  }
  return "?";
}

}  // namespace suifx::frontend
