#include "runtime/reduction.h"

#include <algorithm>

#include "support/metrics.h"
#include "support/trace.h"

namespace suifx::runtime {

double identity_of(RedOp op) {
  switch (op) {
    case RedOp::Sum: return 0.0;
    case RedOp::Product: return 1.0;
    case RedOp::Min: return std::numeric_limits<double>::infinity();
    case RedOp::Max: return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

double apply_op(RedOp op, double a, double b) {
  switch (op) {
    case RedOp::Sum: return a + b;
    case RedOp::Product: return a * b;
    case RedOp::Min: return std::min(a, b);
    case RedOp::Max: return std::max(a, b);
  }
  return a;
}

ScalarReduction::ScalarReduction(RedOp op, int nproc) : op_(op) {
  partial_.resize(static_cast<size_t>(nproc));
  for (Slot& s : partial_) s.v = identity_of(op);
}

void ScalarReduction::finalize(double* global) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& s : partial_) {
    if (s.v != identity_of(op_)) *global = apply_op(op_, *global, s.v);
    s.v = identity_of(op_);
  }
}

ArrayReduction::ArrayReduction(RedOp op, double* shared, long size, int nproc,
                               Options opts)
    : op_(op),
      shared_(shared),
      size_(size),
      opts_(opts),
      priv_(static_cast<size_t>(nproc)),
      section_mu_(static_cast<size_t>(std::max(1, opts.lock_sections))),
      stripe_mu_(static_cast<size_t>(std::max(1, opts.lock_stripes))) {}

ArrayReduction::ArrayReduction(RedOp op, double* shared, long size, int nproc)
    : ArrayReduction(op, shared, size, nproc, Options()) {}

void ArrayReduction::update(int proc, long index, double value) {
  if (opts_.element_locks) {
    // §6.3.5: no private copy; serialize the individual commutative update.
    std::mutex& mu =
        stripe_mu_[static_cast<size_t>(index) % stripe_mu_.size()];
    std::lock_guard<std::mutex> lock(mu);
    shared_[index] = apply_op(op_, shared_[index], value);
    return;
  }
  Private& p = priv_[static_cast<size_t>(proc)];
  if (!p.allocated) {
    p.data.assign(static_cast<size_t>(size_), identity_of(op_));
    p.allocated = true;
    init_count_ += static_cast<uint64_t>(size_);
  }
  p.data[static_cast<size_t>(index)] =
      apply_op(op_, p.data[static_cast<size_t>(index)], value);
  p.lo = std::min(p.lo, index);
  p.hi = std::max(p.hi, index);
}

long ArrayReduction::touched_span(int proc) const {
  const Private& p = priv_[static_cast<size_t>(proc)];
  return p.hi >= p.lo ? p.hi - p.lo + 1 : 0;
}

void ArrayReduction::finalize() {
  if (opts_.element_locks) return;
  support::trace::TraceSpan span("reduction/finalize");
  support::Metrics& metrics = support::Metrics::global();
  support::Metrics::ScopedTimer timer(metrics, "reduction.finalize",
                                      &metrics.histogram("reduction.finalize"));
  int nproc = static_cast<int>(priv_.size());
  int nsect = static_cast<int>(section_mu_.size());
  // Staggered section order per processor (§6.3.4). On this single executor
  // thread we emulate the per-processor traversal order; under a real pool
  // each processor would call its own stagger — the section locks make both
  // correct.
  for (int proc = 0; proc < nproc; ++proc) {
    Private& p = priv_[static_cast<size_t>(proc)];
    if (!p.allocated || p.hi < p.lo) continue;
    for (int k = 0; k < nsect; ++k) {
      int sect = (proc + k) % nsect;
      long s_lo = size_ * sect / nsect;
      long s_hi = size_ * (sect + 1) / nsect;
      long lo = std::max(p.lo, s_lo);
      long hi = std::min(p.hi + 1, s_hi);
      if (lo >= hi) continue;
      std::lock_guard<std::mutex> lock(section_mu_[static_cast<size_t>(sect)]);
      for (long i = lo; i < hi; ++i) {
        double v = p.data[static_cast<size_t>(i)];
        if (v != identity_of(op_)) {
          shared_[i] = apply_op(op_, shared_[i], v);
          ++final_count_;
        }
      }
    }
    p.data.clear();
    p.allocated = false;
    p.lo = std::numeric_limits<long>::max();
    p.hi = -1;
  }
}

}  // namespace suifx::runtime
