// Privatization runtime: per-processor private copies of a shared array with
// optional copy-in of upward-exposed values and two finalization policies —
// none (array liveness proved the values dead at loop exit, §5.4) or
// last-iteration write-back (every iteration writes the same region; the
// processor executing the last iteration owns the final values).
#pragma once

#include <cstdint>
#include <vector>

namespace suifx::runtime {

enum class FinalizePolicy : uint8_t { None, LastIteration };

class PrivateArray {
 public:
  PrivateArray(double* shared, long size, int nproc, bool copy_in,
               FinalizePolicy policy);

  /// The private buffer of `proc` (copy-in applied on first touch).
  double* local(int proc);

  /// Tell the runtime which processor executed the last iteration; under
  /// FinalizePolicy::LastIteration its buffer is copied back.
  void finalize(int last_iteration_proc);

 private:
  double* shared_;
  long size_;
  bool copy_in_;
  FinalizePolicy policy_;
  std::vector<std::vector<double>> priv_;
};

}  // namespace suifx::runtime
