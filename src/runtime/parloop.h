// SPMD parallel-loop runtime — the library SUIF's generated C code calls
// (§4.5, §6.3): block-scheduled parallel DO loops over a persistent worker
// pool, suppression of nested parallelism, and a run-time serial fallback
// for loops too fine-grained to profit ("the run-time system estimates the
// amount of computation ... and runs the loop sequentially if it is
// considered too fine-grained", §4.5).
//
// The pool doubles as a generic task pool for the compiler itself: besides
// the SPMD epoch protocol (`run`), `submit` enqueues independent tasks whose
// completion (and exceptions) are observed through std::future — the
// parallel analysis driver (parallelizer::Driver) is built on it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace suifx::runtime {

/// Iteration range [begin, end) with stride 1 assigned to one worker.
struct IterRange {
  long begin = 0;
  long end = 0;
};

/// Block distribution: iterations [lb, ub] step `step` split across `nproc`
/// processors the way SUIF divides them ("evenly divided between the
/// processors at the time the parallel loop is spawned"). Overflow-safe for
/// trip counts near LONG_MAX; throws std::invalid_argument for nproc <= 0.
std::vector<IterRange> block_schedule(long trip_count, int nproc);

class ThreadPool {
 public:
  explicit ThreadPool(int nthreads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run fn(proc_id) on every processor (the calling thread acts as
  /// processor 0) and wait for completion. If any processor's invocation
  /// throws, one of the exceptions is rethrown here after every processor
  /// has finished — the pool stays reusable.
  void run(const std::function<void(int)>& fn);

  /// Enqueue one independent task; the returned future reports completion
  /// and carries any exception the task threw. With no workers (size() == 1)
  /// the task runs inline. Tasks may interleave with `run` epochs. After
  /// shutdown() the returned future carries a std::runtime_error instead of
  /// silently never completing.
  std::future<void> submit(std::function<void()> task);

  /// Stop and join the workers. Idempotent; the destructor calls it. Tasks
  /// already queued still complete: workers drain the queue before exiting,
  /// and anything left after the join (a task enqueued in the shutdown race
  /// window) runs inline here — no returned future is ever abandoned, even
  /// when draining tasks throw. After shutdown, run() executes inline on the
  /// calling thread.
  void shutdown();

 private:
  void worker_main(int id);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* fn_ = nullptr;
  uint64_t epoch_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
  bool shutdown_ = false;  // submit() rejects; run() goes inline
  std::exception_ptr epoch_error_;
  std::deque<std::packaged_task<void()>> tasks_;
};

/// The loop executor. Not reentrant from inside a parallel region: nested
/// parallel loops run serially on the calling worker (SUIF's policy).
class ParallelRuntime {
 public:
  explicit ParallelRuntime(int nproc);

  int nproc() const;

  /// Execute body(i) for i in [lb, ub] step `step`. Runs serially when
  /// trip_count * est_cost_per_iter < serial_threshold, or when called from
  /// inside an active parallel region. Exception-safe: a throwing body
  /// leaves the runtime able to spawn subsequent parallel regions.
  void parallel_do(long lb, long ub, long step,
                   const std::function<void(long i, int proc)>& body,
                   double est_cost_per_iter = 1e9);

  /// Lower-level: run fn(proc, range) per processor for a trip count.
  void parallel_chunks(long trip_count,
                       const std::function<void(int proc, IterRange r)>& fn);

  bool in_parallel() const { return in_parallel_; }
  void set_serial_threshold(double units) { serial_threshold_ = units; }

  /// Number of parallel regions actually spawned (tests / stats).
  uint64_t regions_spawned() const { return regions_spawned_; }
  uint64_t regions_serialized() const { return regions_serialized_; }

  /// Load-imbalance telemetry: per spawned region, the ratio of the slowest
  /// chunk's wall time to the mean chunk time (1.0 = perfectly balanced;
  /// nproc = one worker did everything). The Astrée-style scaling diagnosis
  /// in bench/ext_observability reads this.
  struct ImbalanceStats {
    uint64_t regions = 0;          // spawned regions measured
    double sum_max_over_mean = 0;  // sum of per-region max/mean ratios
    double worst = 1.0;            // worst single region's ratio
    double mean() const {
      return regions > 0 ? sum_max_over_mean / static_cast<double>(regions) : 1.0;
    }
  };
  ImbalanceStats imbalance() const;

 private:
  ThreadPool pool_;
  std::atomic<bool> in_parallel_{false};
  double serial_threshold_ = 64.0;
  std::atomic<uint64_t> regions_spawned_{0};
  std::atomic<uint64_t> regions_serialized_{0};
  mutable std::mutex imbalance_mu_;  // cold: one update per spawned region
  ImbalanceStats imbalance_;
};

}  // namespace suifx::runtime
