// Parallel reduction runtime (§6.3): scalar reductions via per-processor
// partials with a locked global accumulation; array reductions via private
// copies with
//   - region minimization: each private copy tracks the touched offset range
//     so initialization/finalization cost is proportional to the used region
//     (§6.3.3),
//   - staggered multi-lock finalization: the array is partitioned into
//     sections with one lock each and processor p finalizes sections
//     p, p+1, ..., wrapping, to avoid convoying (§6.3.4),
//   - an element-lock mode that updates the shared array directly under a
//     lock stripe, eliminating init/finalize at the cost of contention
//     (§6.3.5).
#pragma once

#include <atomic>
#include <limits>
#include <mutex>
#include <vector>

#include "runtime/parloop.h"

namespace suifx::runtime {

enum class RedOp : uint8_t { Sum, Product, Min, Max };

double identity_of(RedOp op);
double apply_op(RedOp op, double a, double b);

/// Scalar reduction: one private slot per processor (§6.3.1).
class ScalarReduction {
 public:
  ScalarReduction(RedOp op, int nproc);

  double& local(int proc) { return partial_[static_cast<size_t>(proc)].v; }
  /// Accumulate all non-identity partials into *global under the lock.
  void finalize(double* global);
  RedOp op() const { return op_; }

 private:
  struct alignas(64) Slot {
    double v;
  };
  RedOp op_;
  std::vector<Slot> partial_;
  std::mutex mu_;
};

/// Array reduction over a shared buffer of `size` doubles.
class ArrayReduction {
 public:
  struct Options {
    bool element_locks = false;  // §6.3.5 mode
    int lock_sections = 8;       // §6.3.4 staggered finalization sections
    int lock_stripes = 64;       // element-lock stripe count
  };

  ArrayReduction(RedOp op, double* shared, long size, int nproc, Options opts);
  ArrayReduction(RedOp op, double* shared, long size, int nproc);

  /// Private-copy mode: the processor's accumulation target for element `i`.
  /// Lazily initializes the private copy and tracks the touched range.
  void update(int proc, long index, double value);

  /// Element-lock mode path is chosen automatically by `update` when
  /// configured; finalize() merges private copies (no-op for element locks).
  void finalize();

  /// Runtime statistics for the overhead study (§6.3.2).
  long touched_span(int proc) const;
  uint64_t elements_initialized() const { return init_count_; }
  uint64_t elements_finalized() const { return final_count_; }

 private:
  struct Private {
    std::vector<double> data;
    long lo = std::numeric_limits<long>::max();
    long hi = -1;
    bool allocated = false;
  };

  RedOp op_;
  double* shared_;
  long size_;
  Options opts_;
  std::vector<Private> priv_;
  std::vector<std::mutex> section_mu_;
  std::vector<std::mutex> stripe_mu_;
  // Atomic: bumped concurrently by pool workers (update) and by staggered
  // finalizers holding different section locks.
  std::atomic<uint64_t> init_count_{0};
  std::atomic<uint64_t> final_count_{0};
};

}  // namespace suifx::runtime
