#include "runtime/stagequeue.h"

#include <algorithm>
#include <cstdlib>

namespace suifx::runtime::staged {

StageQueue::StageQueue(size_t capacity)
    : buf_(std::max<size_t>(1, capacity)) {}

bool StageQueue::push(double v) {
  uint64_t tail = tail_.load(std::memory_order_relaxed);
  uint64_t head = head_.load(std::memory_order_acquire);
  if (tail - head >= buf_.size()) return false;  // full: backpressure
  buf_[tail % buf_.size()] = v;
  tail_.store(tail + 1, std::memory_order_release);
  pushed_.fetch_add(1, std::memory_order_relaxed);
  size_t depth = static_cast<size_t>(tail + 1 - head);
  size_t prev = max_depth_.load(std::memory_order_relaxed);
  while (depth > prev &&
         !max_depth_.compare_exchange_weak(prev, depth,
                                           std::memory_order_relaxed)) {
  }
  return true;
}

bool StageQueue::pop(double* out) {
  uint64_t head = head_.load(std::memory_order_relaxed);
  uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head == tail) return false;  // empty
  *out = buf_[head % buf_.size()];
  head_.store(head + 1, std::memory_order_release);
  return true;
}

size_t StageQueue::size() const {
  uint64_t head = head_.load(std::memory_order_acquire);
  uint64_t tail = tail_.load(std::memory_order_acquire);
  return static_cast<size_t>(tail - head);
}

SyncCellArray::SyncCellArray(long n) : n_(std::max<long>(0, n)) {
  cells_ = std::make_unique<std::atomic<uint8_t>[]>(static_cast<size_t>(n_));
  for (long i = 0; i < n_; ++i) {
    cells_[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
  }
}

void SyncCellArray::post(long i) {
  if (i < 0 || i >= n_) return;
  cells_[static_cast<size_t>(i)].store(1, std::memory_order_release);
  posts_.fetch_add(1, std::memory_order_relaxed);
}

bool SyncCellArray::wait(long i) const {
  waits_.fetch_add(1, std::memory_order_relaxed);
  if (i < 0 || i >= n_) return false;
  return cells_[static_cast<size_t>(i)].load(std::memory_order_acquire) != 0;
}

const char* to_string(StagedKind k) {
  switch (k) {
    case StagedKind::Pipeline: return "pipeline";
    case StagedKind::Doacross: return "doacross";
  }
  return "?";
}

size_t stage_queue_capacity(size_t fallback) {
  if (const char* env = std::getenv("SUIFX_STAGE_QUEUE_CAP");
      env != nullptr && *env != '\0') {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

}  // namespace suifx::runtime::staged
