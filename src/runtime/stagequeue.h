// Runtime support for staged loop execution (docs/pdg_planning.md): the
// bounded SPSC value queues that decouple pipeline stages (DSWP-style) and
// the post/wait synchronization cells DOACROSS iterations use to observe the
// fixed carried-dependence distance. The StagedLoopPlan the StrategyPlanner
// attaches to a LoopPlan lives here too, so the dynamic layer can execute a
// staged plan without the parallelizer headers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace suifx::ir {
struct Stmt;
struct Variable;
}  // namespace suifx::ir

namespace suifx::runtime::staged {

/// Bounded single-producer/single-consumer ring of scalar values. `push`
/// refuses (returns false) when full — backpressure, never blocking — and
/// `pop` refuses when empty. Safe for one producer thread and one consumer
/// thread concurrently (acquire/release on the indices); the interpreter's
/// staged executive also uses it single-threaded.
class StageQueue {
 public:
  explicit StageQueue(size_t capacity);

  bool push(double v);
  bool pop(double* out);

  size_t capacity() const { return buf_.size(); }
  size_t size() const;
  uint64_t total_pushed() const { return pushed_.load(std::memory_order_relaxed); }
  /// High-water mark of queued values (producer-side estimate).
  size_t max_depth() const { return max_depth_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> buf_;
  std::atomic<uint64_t> head_{0};  // next pop slot (consumer-owned)
  std::atomic<uint64_t> tail_{0};  // next push slot (producer-owned)
  std::atomic<uint64_t> pushed_{0};
  std::atomic<size_t> max_depth_{0};
};

/// One flag per iteration: iteration k posts its cell when its body is done;
/// iteration k' waits on cell k'-d before running. `wait` is a non-blocking
/// check — under a schedule that honors the sync distance it always finds the
/// cell posted, and a miss means the schedule is wrong (the executive treats
/// it as a deadlock and demotes to serial).
class SyncCellArray {
 public:
  explicit SyncCellArray(long n);

  void post(long i);
  bool wait(long i) const;

  long size() const { return n_; }
  uint64_t posts() const { return posts_.load(std::memory_order_relaxed); }
  uint64_t waits() const { return waits_.load(std::memory_order_relaxed); }

 private:
  long n_ = 0;
  std::unique_ptr<std::atomic<uint8_t>[]> cells_;
  std::atomic<uint64_t> posts_{0};
  mutable std::atomic<uint64_t> waits_{0};
};

/// How a promoted loop is staged. Pipeline fissions the body: each stage
/// runs its statement subset for every iteration before the next stage
/// starts (legal because condensation edges are forward-only), with scalar
/// recurrence values crossing stages through StageQueues. Doacross keeps the
/// body whole but executes iterations by residue class modulo the sync
/// distance d (all carried distances are multiples of d, so every dependent
/// pair stays in source order). Both are byte-identical to serial execution.
enum class StagedKind : uint8_t { Pipeline, Doacross };

const char* to_string(StagedKind k);

struct Stage {
  /// Top-level body statements of this stage, in source order.
  std::vector<const ir::Stmt*> stmts;
  /// True when a member SCC carries a cross-iteration dependence — the
  /// stage must run its iterations in order (DSWP "sequential" stage).
  bool sequential = false;
};

/// A scalar whose serial value chain flows producer-stage -> consumer-stage
/// through a StageQueue: the producer pushes the value after each of its
/// iterations, the consumer pops it before each of its own.
struct Channel {
  const ir::Variable* var = nullptr;
  int producer_stage = 0;
  int consumer_stage = 0;
};

struct StagedLoopPlan {
  StagedKind kind = StagedKind::Pipeline;

  // Pipeline only.
  std::vector<Stage> stages;
  std::vector<Channel> channels;

  // Doacross only.
  long sync_distance = 0;
  /// Privatizable must-write scalars whose final value the executive
  /// restores from iteration trip-1 after the residue-reordered run.
  std::vector<const ir::Variable*> fixups;

  // Diagnostics (Guru explain / simulator cost model).
  int num_sccs = 0;
  int num_carried_sccs = 0;

  int num_sequential_stages() const {
    int n = 0;
    for (const Stage& s : stages) n += s.sequential ? 1 : 0;
    return n;
  }
};

/// Stage-queue capacity for the interpreter's pipeline executive: the
/// SUIFX_STAGE_QUEUE_CAP environment override, else `fallback`. A loop whose
/// trip count exceeds the capacity is refused (executes serially).
size_t stage_queue_capacity(size_t fallback = 4096);

}  // namespace suifx::runtime::staged
