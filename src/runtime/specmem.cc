#include "runtime/specmem.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace suifx::runtime::spec {

void VersionedMemory::reset(long trip) {
  iters_.clear();
  iters_.resize(static_cast<size_t>(std::max<long>(0, trip)));
}

double VersionedMemory::load(long iter, uint64_t key, double base) {
  IterLog& il = iters_[static_cast<size_t>(iter)];
  auto it = il.writes.find(key);
  if (it != il.writes.end()) return it->second;
  il.exposed.insert(key);
  return base;
}

void VersionedMemory::store(long iter, uint64_t key, double value) {
  iters_[static_cast<size_t>(iter)].writes[key] = value;
}

std::unordered_map<uint64_t, long> VersionedMemory::first_writer() const {
  std::unordered_map<uint64_t, long> fw;
  for (size_t k = 0; k < iters_.size(); ++k) {
    for (const auto& [key, val] : iters_[k].writes) {
      (void)val;
      auto [it, inserted] = fw.emplace(key, static_cast<long>(k));
      if (!inserted && it->second > static_cast<long>(k)) it->second = static_cast<long>(k);
    }
  }
  return fw;
}

void VersionedMemory::validate_range(
    long begin, long end, const std::unordered_map<uint64_t, long>& fw,
    ValidateResult& out) const {
  for (long j = begin; j < end; ++j) {
    const IterLog& il = iters_[static_cast<size_t>(j)];
    if (il.exposed.empty()) continue;
    // Sort the iteration's exposed keys so the reported sample is canonical.
    std::vector<uint64_t> keys(il.exposed.begin(), il.exposed.end());
    std::sort(keys.begin(), keys.end());
    for (uint64_t key : keys) {
      auto it = fw.find(key);
      if (it == fw.end() || it->second >= j) continue;
      // Iteration j read the pre-loop value of a key iteration it->second
      // wrote: a serial execution would have seen the written value.
      out.ok = false;
      ++out.conflicts;
      if (out.first.size() < ValidateResult::kMaxReported) {
        out.first.push_back({j, it->second, key});
      }
    }
  }
}

ValidateResult VersionedMemory::validate(int workers) const {
  ValidateResult out;
  const long trip = this->trip();
  if (trip == 0) return out;
  const std::unordered_map<uint64_t, long> fw = first_writer();

  int n = std::max(1, workers);
  if (static_cast<long>(n) > trip) n = static_cast<int>(trip);
  if (n == 1) {
    validate_range(0, trip, fw, out);
    return out;
  }

  // Shard the iteration range; each worker fills a private result, then the
  // shards merge in range order — ascending (iter, key) — so count and
  // sample match the single-threaded scan exactly.
  std::vector<ValidateResult> parts(static_cast<size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));
  const long chunk = (trip + n - 1) / n;
  for (int w = 0; w < n; ++w) {
    long begin = static_cast<long>(w) * chunk;
    long end = std::min(trip, begin + chunk);
    threads.emplace_back([this, begin, end, &fw, &parts, w] {
      if (begin < end) validate_range(begin, end, fw, parts[static_cast<size_t>(w)]);
    });
  }
  for (std::thread& t : threads) t.join();
  for (const ValidateResult& p : parts) {
    if (p.ok) continue;
    out.ok = false;
    out.conflicts += p.conflicts;
    for (const SpecConflict& c : p.first) {
      if (out.first.size() < ValidateResult::kMaxReported) out.first.push_back(c);
    }
  }
  return out;
}

std::vector<std::pair<uint64_t, double>> VersionedMemory::commit_plan() const {
  std::unordered_map<uint64_t, double> last;
  for (const IterLog& il : iters_) {  // ascending iteration: later wins
    for (const auto& [key, val] : il.writes) last[key] = val;
  }
  std::vector<std::pair<uint64_t, double>> out(last.begin(), last.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

uint64_t VersionedMemory::writes() const {
  uint64_t n = 0;
  for (const IterLog& il : iters_) n += il.writes.size();
  return n;
}

uint64_t VersionedMemory::exposed_reads() const {
  uint64_t n = 0;
  for (const IterLog& il : iters_) n += il.exposed.size();
  return n;
}

// ---------------------------------------------------------------------------
// SpecBreaker
// ---------------------------------------------------------------------------

BreakerConfig BreakerConfig::from_env() {
  BreakerConfig cfg;
  if (const char* s = std::getenv("SUIFX_SPEC_BREAKER_MIN")) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (end != s && v > 0) cfg.min_attempts = v;
  }
  if (const char* s = std::getenv("SUIFX_SPEC_BREAKER_RATE")) {
    char* end = nullptr;
    double v = std::strtod(s, &end);
    if (end != s && v >= 0.0 && v <= 1.0) cfg.max_rate = v;
  }
  return cfg;
}

SpecBreaker::SpecBreaker(BreakerConfig cfg) : cfg_(cfg) {}

bool SpecBreaker::allow(const std::string& loop) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = loops_.find(loop);
  return it == loops_.end() || !it->second.demoted;
}

bool SpecBreaker::record(const std::string& loop, bool misspeculated) {
  std::lock_guard<std::mutex> lock(mu_);
  Stats& st = loops_[loop];
  ++st.attempts;
  if (misspeculated) ++st.misspecs;
  if (st.demoted || st.attempts < cfg_.min_attempts) return false;
  double rate = static_cast<double>(st.misspecs) / static_cast<double>(st.attempts);
  if (rate > cfg_.max_rate) {
    st.demoted = true;
    return true;
  }
  return false;
}

SpecBreaker::Stats SpecBreaker::stats(const std::string& loop) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = loops_.find(loop);
  return it != loops_.end() ? it->second : Stats{};
}

std::map<std::string, SpecBreaker::Stats> SpecBreaker::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return loops_;
}

}  // namespace suifx::runtime::spec
