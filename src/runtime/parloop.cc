#include "runtime/parloop.h"

#include <algorithm>

namespace suifx::runtime {

std::vector<IterRange> block_schedule(long trip_count, int nproc) {
  std::vector<IterRange> out;
  out.reserve(static_cast<size_t>(nproc));
  for (int p = 0; p < nproc; ++p) {
    IterRange r;
    r.begin = trip_count * p / nproc;
    r.end = trip_count * (p + 1) / nproc;
    out.push_back(r);
  }
  return out;
}

ThreadPool::ThreadPool(int nthreads) {
  for (int i = 1; i < nthreads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_main(int id) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      fn = fn_;
    }
    (*fn)(id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run(const std::function<void(int)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    remaining_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  cv_.notify_all();
  fn(0);  // the calling thread is processor 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return remaining_ == 0; });
}

ParallelRuntime::ParallelRuntime(int nproc) : pool_(std::max(1, nproc)) {}

int ParallelRuntime::nproc() const { return pool_.size(); }

void ParallelRuntime::parallel_chunks(
    long trip_count, const std::function<void(int proc, IterRange r)>& fn) {
  if (in_parallel_ || trip_count <= 0) {
    // Nested parallelism is suppressed: run everything on this processor.
    ++regions_serialized_;
    fn(0, {0, trip_count});
    return;
  }
  ++regions_spawned_;
  in_parallel_ = true;
  std::vector<IterRange> chunks = block_schedule(trip_count, pool_.size());
  pool_.run([&](int proc) { fn(proc, chunks[static_cast<size_t>(proc)]); });
  in_parallel_ = false;
}

void ParallelRuntime::parallel_do(long lb, long ub, long step,
                                  const std::function<void(long, int)>& body,
                                  double est_cost_per_iter) {
  if (step == 0) return;
  long trip = step > 0 ? (ub - lb + step) / step : (lb - ub - step) / (-step);
  trip = std::max<long>(0, trip);
  if (in_parallel_ ||
      static_cast<double>(trip) * est_cost_per_iter < serial_threshold_) {
    ++regions_serialized_;
    for (long k = 0; k < trip; ++k) body(lb + k * step, 0);
    return;
  }
  parallel_chunks(trip, [&](int proc, IterRange r) {
    for (long k = r.begin; k < r.end; ++k) body(lb + k * step, proc);
  });
}

}  // namespace suifx::runtime
