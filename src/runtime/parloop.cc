#include "runtime/parloop.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "support/fault.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace suifx::runtime {

namespace {

/// RAII: clear an atomic flag on scope exit, exception or not.
class ScopedFlagClear {
 public:
  explicit ScopedFlagClear(std::atomic<bool>& flag) : flag_(flag) {}
  ~ScopedFlagClear() { flag_.store(false); }
  ScopedFlagClear(const ScopedFlagClear&) = delete;
  ScopedFlagClear& operator=(const ScopedFlagClear&) = delete;

 private:
  std::atomic<bool>& flag_;
};

}  // namespace

std::vector<IterRange> block_schedule(long trip_count, int nproc) {
  if (nproc <= 0) {
    throw std::invalid_argument("block_schedule: nproc must be positive");
  }
  trip_count = std::max(0L, trip_count);
  // floor(trip * p / nproc) via div/mod decomposition: trip * p overflows a
  // long for large trip counts. With trip = q * nproc + r (0 <= r < nproc),
  // floor(trip * p / nproc) == q * p + floor(r * p / nproc), and both
  // products stay within range (q * p <= trip, r * p < nproc^2 < 2^62).
  const long q = trip_count / nproc;
  const long r = trip_count % nproc;
  auto split = [&](long p) { return q * p + r * p / nproc; };
  std::vector<IterRange> out;
  out.reserve(static_cast<size_t>(nproc));
  for (int p = 0; p < nproc; ++p) {
    out.push_back({split(p), split(p + 1)});
  }
  return out;
}

ThreadPool::ThreadPool(int nthreads) {
  for (int i = 1; i < nthreads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // A task enqueued between the last worker's exit check and shutdown_
  // becoming visible would otherwise hang its future forever. After the
  // join no worker can race us, so drain inline; packaged_task stores any
  // exception in the future, so throwing tasks cannot abort the drain.
  std::deque<std::packaged_task<void()>> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(tasks_);
  }
  for (std::packaged_task<void()>& task : leftovers) task();
}

void ThreadPool::worker_main(int id) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || epoch_ != seen || !tasks_.empty(); });
      if (!tasks_.empty()) {
        // Drain submitted tasks first (also on shutdown, so every returned
        // future completes).
        task = std::move(tasks_.front());
        tasks_.pop_front();
      } else if (epoch_ != seen) {
        seen = epoch_;
        fn = fn_;
      } else {
        return;  // stop_ with nothing left to do
      }
    }
    if (fn != nullptr) {
      try {
        support::trace::TraceSpan span("pool/worker");
        (*fn)(id);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (epoch_error_ == nullptr) epoch_error_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    } else {
      task();  // a packaged_task stores its exception in the future
    }
  }
}

void ThreadPool::run(const std::function<void(int)>& fn) {
  support::trace::TraceSpan span("pool/epoch");
  bool inline_only = workers_.empty();
  if (!inline_only) {
    // After shutdown the workers are gone; an epoch would wait on
    // remaining_ forever. Run on the calling thread instead.
    std::lock_guard<std::mutex> lock(mu_);
    inline_only = shutdown_;
  }
  if (inline_only) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    remaining_ = static_cast<int>(workers_.size());
    epoch_error_ = nullptr;
    ++epoch_;
  }
  cv_.notify_all();
  std::exception_ptr caller_error;
  try {
    fn(0);  // the calling thread is processor 0
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    error = caller_error != nullptr ? caller_error : epoch_error_;
    epoch_error_ = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // The wrapper makes "this task was dispatched by the pool" an injection
  // point; the fault lands in the packaged_task, hence in the future, where
  // the submitter's failure isolation (e.g. the Driver's degraded retry)
  // handles it like any task failure.
  std::packaged_task<void()> pt([task = std::move(task)] {
    SUIFX_FAULT_POINT("pool.task");
    task();
  });
  std::future<void> fut = pt.get_future();
  if (workers_.empty()) {
    pt();
    return fut;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      std::promise<void> broken;
      broken.set_exception(std::make_exception_ptr(
          std::runtime_error("ThreadPool::submit after shutdown")));
      return broken.get_future();
    }
    tasks_.push_back(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

ParallelRuntime::ParallelRuntime(int nproc) : pool_(std::max(1, nproc)) {}

int ParallelRuntime::nproc() const { return pool_.size(); }

void ParallelRuntime::parallel_chunks(
    long trip_count, const std::function<void(int proc, IterRange r)>& fn) {
  // Nested parallelism is suppressed: run everything on this processor. The
  // exchange claims the flag atomically so two racing spawn attempts cannot
  // both win.
  if (trip_count <= 0 || in_parallel_.exchange(true)) {
    ++regions_serialized_;
    fn(0, {0, trip_count});
    return;
  }
  ScopedFlagClear guard(in_parallel_);  // restored even if a body throws
  ++regions_spawned_;
  std::vector<IterRange> chunks = block_schedule(trip_count, pool_.size());
  std::vector<double> chunk_ms(chunks.size(), 0.0);
  support::Histogram& hist = support::Metrics::global().histogram("parloop.chunk");
  support::ShardedCounter& nchunks =
      support::Metrics::global().sharded("parloop.chunks");
  pool_.run([&](int proc) {
    support::trace::TraceSpan span("parloop/chunk");
    if (span.active()) {
      char det[16];
      std::snprintf(det, sizeof det, "p%d", proc);
      span.set_detail(det);
    }
    try {
      SUIFX_FAULT_POINT("parloop.chunk");
    } catch (const support::fault::InjectedFault&) {
      // Absorbed at the dispatch boundary, before any loop-body side effect:
      // the chunk still runs exactly once below (a retry after partial
      // execution would be unsound for reductions), but the event counts as
      // a degradation.
      support::Metrics::global().count("degrade.parloop");
    }
    auto t0 = std::chrono::steady_clock::now();
    fn(proc, chunks[static_cast<size_t>(proc)]);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    chunk_ms[static_cast<size_t>(proc)] = ms;
    hist.record_ms(ms);
    nchunks.add();
  });
  // Region imbalance: slowest chunk over mean chunk time (1.0 = balanced).
  double max_ms = 0, sum_ms = 0;
  for (double ms : chunk_ms) {
    max_ms = std::max(max_ms, ms);
    sum_ms += ms;
  }
  if (sum_ms > 0) {
    double ratio = max_ms / (sum_ms / static_cast<double>(chunk_ms.size()));
    std::lock_guard<std::mutex> lock(imbalance_mu_);
    ++imbalance_.regions;
    imbalance_.sum_max_over_mean += ratio;
    imbalance_.worst = std::max(imbalance_.worst, ratio);
  }
}

ParallelRuntime::ImbalanceStats ParallelRuntime::imbalance() const {
  std::lock_guard<std::mutex> lock(imbalance_mu_);
  return imbalance_;
}

void ParallelRuntime::parallel_do(long lb, long ub, long step,
                                  const std::function<void(long, int)>& body,
                                  double est_cost_per_iter) {
  if (step == 0) return;
  long trip = step > 0 ? (ub - lb + step) / step : (lb - ub - step) / (-step);
  trip = std::max<long>(0, trip);
  if (in_parallel_ ||
      static_cast<double>(trip) * est_cost_per_iter < serial_threshold_) {
    ++regions_serialized_;
    for (long k = 0; k < trip; ++k) body(lb + k * step, 0);
    return;
  }
  parallel_chunks(trip, [&](int proc, IterRange r) {
    for (long k = r.begin; k < r.end; ++k) body(lb + k * step, proc);
  });
}

}  // namespace suifx::runtime
