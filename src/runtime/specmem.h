// Versioned shadow memory + misspeculation circuit breaker for the
// speculative parallelization executive (docs/speculation.md). The executive
// (dynamic/specexec) runs the iterations of a `Speculative`-strategy loop
// against per-iteration shadow logs instead of base memory, validates the
// logs for cross-iteration flow (write -> later exposed read) conflicts, and
// either commits the merged writes in iteration order or discards everything
// and re-executes the loop serially — the CPF SpecPriv/smtx recipe.
//
// This layer is deliberately IR-free: locations are opaque 64-bit keys
// (the interpreter packs (storage id << 40) | offset, which stays decodable
// for commit), so the structure can be unit-tested and hammered from real
// threads without an interpreter. Thread-safety contract: distinct
// iterations may be logged concurrently (each IterLog is touched by exactly
// one worker); validate()/commit_plan() require the logging phase to be
// complete (join first).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace suifx::runtime::spec {

/// One detected cross-iteration flow conflict: iteration `iter` performed an
/// exposed read (no prior write of its own) of a key some earlier iteration
/// `writer` wrote — exactly the dependence privatized shadow state cannot
/// hide, so the attempt must be discarded.
struct SpecConflict {
  long iter = 0;    // the (later) reading iteration
  long writer = 0;  // the earliest earlier iteration that wrote the key
  uint64_t key = 0;
};

struct ValidateResult {
  bool ok = true;
  uint64_t conflicts = 0;  // total conflicting (iteration, key) pairs
  /// The first conflicts in ascending (iter, key) order — a deterministic
  /// sample regardless of how many validation workers scanned the logs.
  std::vector<SpecConflict> first;
  static constexpr size_t kMaxReported = 16;
};

class VersionedMemory {
 public:
  explicit VersionedMemory(long trip = 0) { reset(trip); }

  /// Drop all logs and size for `trip` iterations.
  void reset(long trip);
  long trip() const { return static_cast<long>(iters_.size()); }

  /// Read `key` from iteration `iter`'s view: its own last write if any,
  /// else `base` (the pre-loop value) — recording the exposed read. This is
  /// per-iteration privatization, which is what makes the validation verdict
  /// independent of any worker schedule: an iteration never observes another
  /// iteration's speculative state.
  double load(long iter, uint64_t key, double base);
  void store(long iter, uint64_t key, double value);

  /// Scan the logs for cross-iteration flow conflicts. `workers` > 1 shards
  /// the iteration range across real threads; the result (count and reported
  /// sample) is byte-identical at any worker count.
  ValidateResult validate(int workers = 1) const;

  /// The merged write-back: for every written key, the value of the last
  /// iteration that wrote it (= the value a serial execution leaves), sorted
  /// by key. Applying it in order reproduces the serial final state; anti-
  /// and output dependences need no validation because of it.
  std::vector<std::pair<uint64_t, double>> commit_plan() const;

  uint64_t writes() const;         // total logged writes
  uint64_t exposed_reads() const;  // total distinct exposed-read keys

 private:
  struct IterLog {
    std::unordered_map<uint64_t, double> writes;  // key -> last value
    std::unordered_set<uint64_t> exposed;         // read before any own write
  };

  /// key -> earliest writing iteration, for the validate scan.
  std::unordered_map<uint64_t, long> first_writer() const;
  void validate_range(long begin, long end,
                      const std::unordered_map<uint64_t, long>& fw,
                      ValidateResult& out) const;

  std::vector<IterLog> iters_;
};

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

struct BreakerConfig {
  /// Attempts observed before the rate is judged at all.
  uint64_t min_attempts = 4;
  /// Misspeculation rate above which the loop is demoted to serial.
  double max_rate = 0.5;

  /// SUIFX_SPEC_BREAKER_MIN / SUIFX_SPEC_BREAKER_RATE overrides (re-read per
  /// call, like support::Budget::limits_from_env).
  static BreakerConfig from_env();
};

/// Per-loop misspeculation-rate circuit breaker: a loop whose observed
/// misspeculation rate exceeds the threshold is demoted — the executive
/// stops attempting it and runs it serially. This is the runtime rung of the
/// PR 3 degradation ladder (docs/robustness.md): chronic misspeculators cost
/// a wasted attempt plus a serial re-execution per invocation, so demotion
/// restores plain serial cost. Keyed by loop name so a breaker can outlive
/// one executive run (the Guru holds one across analyze() rounds).
class SpecBreaker {
 public:
  explicit SpecBreaker(BreakerConfig cfg = BreakerConfig::from_env());

  struct Stats {
    uint64_t attempts = 0;
    uint64_t misspecs = 0;
    bool demoted = false;
  };

  /// False once the loop has been demoted.
  bool allow(const std::string& loop) const;
  /// Account one attempt; returns true exactly when this record trips the
  /// breaker (the demotion edge — callers log/metric it once).
  bool record(const std::string& loop, bool misspeculated);

  Stats stats(const std::string& loop) const;
  std::map<std::string, Stats> snapshot() const;
  const BreakerConfig& config() const { return cfg_; }

 private:
  BreakerConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::string, Stats> loops_;
};

}  // namespace suifx::runtime::spec
