#include "runtime/privatize.h"

#include <algorithm>

namespace suifx::runtime {

PrivateArray::PrivateArray(double* shared, long size, int nproc, bool copy_in,
                           FinalizePolicy policy)
    : shared_(shared), size_(size), copy_in_(copy_in), policy_(policy),
      priv_(static_cast<size_t>(nproc)) {}

double* PrivateArray::local(int proc) {
  std::vector<double>& p = priv_[static_cast<size_t>(proc)];
  if (p.empty()) {
    if (copy_in_) {
      p.assign(shared_, shared_ + size_);
    } else {
      p.assign(static_cast<size_t>(size_), 0.0);
    }
  }
  return p.data();
}

void PrivateArray::finalize(int last_iteration_proc) {
  if (policy_ != FinalizePolicy::LastIteration) return;
  std::vector<double>& p = priv_[static_cast<size_t>(last_iteration_proc)];
  if (!p.empty()) std::copy(p.begin(), p.end(), shared_);
}

}  // namespace suifx::runtime
