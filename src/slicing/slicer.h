// Demand-driven, context-sensitive interprocedural slicing (Chapter 3).
//
// Two engines over the ISSA graph:
//
//  * The direct engine walks use->def (and, for program slices, control-
//    dependence) edges with an explicit calling-context stack: in-parameter
//    bindings are matched to the return edge being traversed (§3.4.3), so no
//    unrealizable path is ever followed. It supports the §3.6 pruning
//    options (array-restricted and code-region-restricted slices, with
//    terminal-node reporting) and §3.5.3 calling-context-specific slices.
//
//  * The summary engine implements slice summaries <S, F> (§3.5.2, EQ 1) as
//    a memoized graph of hierarchical slice nodes (§3.5.4): the call
//    subslice of a definition is computed once and reused at every call
//    site; unions are O(1) node creations; recurrences (loop phis) become
//    cycles that an SCC condensation collapses — "all elements in a strongly
//    connected component have the same value". Full slices expand the
//    upwards-exposed formal set F through actual parameters per call site.
//
// Both engines return identical unrestricted slices (tested); the ablation
// bench measures the summary machinery's payoff.
#pragma once

#include <set>

#include "ssa/ssa.h"

namespace suifx::slicing {

enum class SliceKind : uint8_t {
  Data,     // data-dependence edges only (§3.2.1)
  Program,  // data + control dependences
};

struct SliceOptions {
  SliceKind kind = SliceKind::Program;
  /// §3.6: prune at array-content accesses (terminal nodes).
  bool array_restrict = false;
  /// §3.6: prune at statements outside this loop (terminal nodes). Callee
  /// code reached from inside the loop counts as inside.
  const ir::Stmt* region_loop = nullptr;
  /// §3.5.3 Cslice: the call-stack context (outermost first). Empty = union
  /// over all realizable contexts.
  std::vector<const ir::Stmt*> context;
};

struct SliceResult {
  std::set<const ir::Stmt*> stmts;
  /// Pruned boundary statements ("highlighted so the programmer does not
  /// assume anything about their contents", §3.6).
  std::set<const ir::Stmt*> terminals;
  /// The walk could not complete (budget exhausted / injected fault) and the
  /// result is the conservative over-approximation: every program statement.
  /// No dependence source is hidden, but nothing is pruned either — see
  /// docs/robustness.md.
  bool degraded = false;

  int size() const { return static_cast<int>(stmts.size()); }
  /// Statements of the slice lexically inside `loop` (the thesis's "loop"
  /// column in Fig 4-8) — callee statements count as inside.
  int size_within(const ir::Stmt* loop) const;
  std::set<int> lines() const;
};

class Slicer {
 public:
  explicit Slicer(ssa::Issa& issa);
  ~Slicer();

  /// Program/data slice of the value of `ref` (a VarRef or ArrayRef read)
  /// occurring in statement `s`.
  SliceResult slice(const ir::Stmt* s, const ir::Expr* ref,
                    const SliceOptions& opts = {}) const;

  /// Control slice of statement `s` (§3.2.1): its immediate control
  /// dependences plus the program slices of those conditions.
  SliceResult control_slice(const ir::Stmt* s, const SliceOptions& opts = {}) const;

  /// Combined program+control slice of every reference to `var` within
  /// `loop` — what the Explorer presents for one data dependence (§4.1.3).
  SliceResult dependence_slice(const ir::Stmt* loop, const ir::Variable* var,
                               const SliceOptions& opts = {}) const;

  /// Summary-engine full slice (unrestricted, no pruning/context).
  SliceResult slice_summarized(const ir::Stmt* s, const ir::Expr* ref,
                               SliceKind kind = SliceKind::Program) const;

  /// Direct-engine slice with summary reuse disabled — the naive baseline
  /// for the ablation bench.
  SliceResult slice_direct(const ir::Stmt* s, const ir::Expr* ref,
                           SliceKind kind = SliceKind::Program) const {
    SliceOptions o;
    o.kind = kind;
    return slice(s, ref, o);
  }

  ssa::Issa& issa() const { return issa_; }

  struct SummaryEngine;

 private:
  struct DirectEngine;
  SummaryEngine& engine(SliceKind kind) const;
  ssa::Issa& issa_;
  /// Persistent summary engines (one per slice kind): slice summaries and
  /// hierarchical nodes are memoized ACROSS queries — the §3.5.2 reuse.
  mutable std::unique_ptr<SummaryEngine> engines_[2];
};

}  // namespace suifx::slicing
