#include "slicing/slicer.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>

#include "support/budget.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace suifx::slicing {

using ssa::Binding;
using ssa::DefKind;
using ssa::SsaDef;
using ssa::SsaFunc;

int SliceResult::size_within(const ir::Stmt* loop) const {
  // Procedures (transitively) invoked from inside the loop execute within
  // it; statements of other procedures are outside.
  std::set<const ir::Procedure*> called;
  std::function<void(const ir::Procedure*)> mark = [&](const ir::Procedure* p) {
    if (!called.insert(p).second) return;
    p->for_each([&](const ir::Stmt* s) {
      if (s->kind == ir::StmtKind::Call) mark(s->callee);
    });
  };
  ir::for_each_nested(loop, [&](const ir::Stmt* s) {
    if (s->kind == ir::StmtKind::Call) mark(s->callee);
  });
  int n = 0;
  for (const ir::Stmt* s : stmts) {
    if (s->proc != loop->proc) {
      if (called.count(s->proc) != 0) ++n;
      continue;
    }
    for (const ir::Stmt* p = s; p != nullptr; p = p->parent) {
      if (p == loop) {
        ++n;
        break;
      }
    }
  }
  return n;
}

std::set<int> SliceResult::lines() const {
  std::set<int> out;
  for (const ir::Stmt* s : stmts) out.insert(s->line);
  return out;
}

// ---------------------------------------------------------------------------
// Direct engine
// ---------------------------------------------------------------------------

struct Slicer::DirectEngine {
  ssa::Issa& issa;
  SliceOptions opts;
  SliceResult out;
  std::vector<const ir::Stmt*> ctx;  // innermost callsite last
  std::set<std::pair<const SsaDef*, std::vector<const ir::Stmt*>>> visited;

  DirectEngine(ssa::Issa& i, SliceOptions o) : issa(i), opts(std::move(o)) {
    ctx = opts.context;
  }

  bool inside_region(const ir::Stmt* s) const {
    if (opts.region_loop == nullptr || s == nullptr) return true;
    if (s == opts.region_loop) return true;
    if (s->proc != opts.region_loop->proc) return true;  // callee code
    for (const ir::Stmt* p = s->parent; p != nullptr; p = p->parent) {
      if (p == opts.region_loop) return true;
    }
    return false;
  }

  void add_stmt(const ir::Stmt* s) {
    if (s != nullptr) out.stmts.insert(s);
  }

  /// Record the statements defining a pruned array value as terminal nodes
  /// (§3.6): walk through phis/weak chains but never into their uses.
  std::set<const SsaDef*> terminal_seen;
  void mark_array_terminal(const SsaDef* d) {
    if (d == nullptr || !terminal_seen.insert(d).second) return;
    if (d->kind != DefKind::Phi && d->kind != DefKind::Entry && d->stmt != nullptr) {
      out.terminals.insert(d->stmt);
      return;
    }
    for (const SsaDef* a : d->phi_args) mark_array_terminal(a);
    if (d->weak_prev != nullptr) mark_array_terminal(d->weak_prev);
  }

  void visit_expr_uses(const ir::Stmt* s, const ir::Expr* e) {
    const SsaFunc& f = issa.func(s->proc);
    ir::for_each_expr(e, [&](const ir::Expr* n) {
      if (!n->is_var_ref() && !n->is_array_ref()) return;
      SsaDef* d = f.use_def(s, n);
      if (d == nullptr) return;
      if (opts.array_restrict && n->is_array_ref()) {
        mark_array_terminal(d);
        return;
      }
      visit_def(d);
    });
  }

  void visit_stmt_uses(const ir::Stmt* s) {
    const SsaFunc& f = issa.func(s->proc);
    for (const auto& [ref, d] : f.uses_of(s)) {
      if (opts.array_restrict && ref->is_array_ref()) {
        mark_array_terminal(d);
        continue;
      }
      visit_def(d);
    }
  }

  void visit_control(const ir::Stmt* s) {
    if (opts.kind == SliceKind::Data) return;
    for (const ir::Stmt* p = s->parent; p != nullptr; p = p->parent) {
      if (p->kind != ir::StmtKind::If && p->kind != ir::StmtKind::Do) continue;
      if (!inside_region(p)) {
        out.terminals.insert(p);
        continue;
      }
      add_stmt(p);
      visit_stmt_uses(p);
    }
  }

  void expand_entry_through(const ir::Stmt* call, const ir::Variable* channel) {
    // Bind the callee channel to the caller side at `call`.
    for (const Binding& b : issa.bindings(call)) {
      if (b.callee_var != channel) continue;
      add_stmt(call);
      visit_control(call);
      if (b.actual != nullptr) {
        visit_expr_uses(call, b.actual);
      } else if (b.caller_var != nullptr) {
        const SsaFunc& cf = issa.func(call->proc);
        if (SsaDef* d = cf.call_in(call, b.caller_var)) visit_def(d);
      }
      return;
    }
  }

  void visit_def(const SsaDef* d) {
    if (d == nullptr) return;
    support::Budget::charge_current();  // one step per visited definition
    SUIFX_FAULT_POINT("slicer.step");
    if (!visited.insert({d, ctx}).second) return;
    if (d->stmt != nullptr && !inside_region(d->stmt)) {
      out.terminals.insert(d->stmt);
      return;
    }
    switch (d->kind) {
      case DefKind::Entry: {
        // Pure locals have no inflow: their entry def is an undefined
        // initial value.
        if (d->var->kind == ir::VarKind::Local) return;
        const ir::Procedure* owner = d->proc;
        if (owner == issa.program().main()) return;  // program inputs
        if (!ctx.empty()) {
          // Context-sensitive: bind through the return edge being traversed
          // (§3.4.3) — but only if that call site actually targets `owner`;
          // a mismatched context means this entry came from a deeper query
          // and falls back to the all-callers union below.
          const ir::Stmt* call = ctx.back();
          if (call->callee == owner) {
            ctx.pop_back();
            expand_entry_through(call, d->var);
            ctx.push_back(call);
            return;
          }
        }
        // Unconstrained: union over every call site of the owning procedure.
        for (const ir::Procedure& p : issa.program().procedures()) {
          p.for_each([&](const ir::Stmt* s) {
            if (s->kind == ir::StmtKind::Call && s->callee == owner) {
              expand_entry_through(s, d->var);
            }
          });
        }
        return;
      }
      case DefKind::Phi:
        for (SsaDef* a : d->phi_args) visit_def(a);
        return;
      case DefKind::Stmt:
        add_stmt(d->stmt);
        visit_stmt_uses(d->stmt);
        if (d->weak_prev != nullptr) {
          if (opts.array_restrict && d->var->is_array()) {
            mark_array_terminal(d->weak_prev);
          } else {
            visit_def(d->weak_prev);
          }
        }
        visit_control(d->stmt);
        return;
      case DefKind::LoopInit:
        add_stmt(d->stmt);
        visit_stmt_uses(d->stmt);  // bounds
        visit_control(d->stmt);
        return;
      case DefKind::LoopNext:
        add_stmt(d->stmt);
        visit_stmt_uses(d->stmt);
        visit_def(d->weak_prev);
        visit_control(d->stmt);
        return;
      case DefKind::CallOut: {
        const ir::Stmt* call = d->stmt;
        add_stmt(call);
        visit_control(call);
        // Resolve to the callee's exit value of the bound channel.
        for (const Binding& b : issa.bindings(call)) {
          if (b.caller_var != d->var || !b.flows_out) continue;
          const SsaFunc& callee = issa.func(call->callee);
          SsaDef* exit = callee.exit_def(
              b.actual != nullptr ? b.callee_var : issa.alias().canonical(b.callee_var));
          ctx.push_back(call);
          visit_def(exit);
          ctx.pop_back();
        }
        if (d->weak_prev != nullptr) {
          if (opts.array_restrict && d->var->is_array()) {
            mark_array_terminal(d->weak_prev);
          } else {
            visit_def(d->weak_prev);
          }
        }
        return;
      }
    }
  }
};

namespace {

/// The degraded slicer answer: every statement of the program, flagged. An
/// over-approximation never hides a dependence source from the user — the
/// conservative direction for a slice — at the cost of all pruning (§3.6
/// terminals are dropped; an over-approximate slice has no boundary).
SliceResult conservative_slice(ssa::Issa& issa, const ir::Stmt* seed,
                               const char* why) {
  SliceResult out;
  out.degraded = true;
  for (const ir::Procedure& p : issa.program().procedures()) {
    p.for_each([&](const ir::Stmt* s) { out.stmts.insert(s); });
  }
  if (seed != nullptr) out.stmts.insert(seed);
  support::Metrics::global().count("degrade.slicer");
  support::trace::TraceSpan span("degrade", std::string("slicer: ") + why);
  return out;
}

/// Installs a per-query budget from the env knobs when the caller has not
/// installed one (the Driver's tasks install their own shared budget).
class QueryBudget {
 public:
  QueryBudget() {
    if (support::Budget::current() == nullptr) {
      local_.emplace(support::Budget::limits_from_env());
      scope_.emplace(&*local_);
    }
  }

 private:
  std::optional<support::Budget> local_;
  std::optional<support::Budget::Scope> scope_;
};

}  // namespace

SliceResult Slicer::slice(const ir::Stmt* s, const ir::Expr* ref,
                          const SliceOptions& opts) const {
  support::Metrics& metrics = support::Metrics::global();
  metrics.count("slicer.slice");
  support::Metrics::ScopedTimer timer(metrics, "slicer.slice",
                                      &metrics.histogram("slicer.slice"));
  support::trace::TraceSpan span("slicer/query");
  if (span.active() && s->proc != nullptr) span.set_detail(s->proc->name);
  QueryBudget budget;
  try {
    SUIFX_FAULT_POINT("slicer.query");
    DirectEngine e(issa_, opts);
    e.add_stmt(s);
    const SsaFunc& f = issa_.func(s->proc);
    if (opts.array_restrict && ref->is_array_ref()) {
      // Still follow the subscripts; prune the content chain.
      for (const ir::Expr* ix : ref->idx) e.visit_expr_uses(s, ix);
      if (SsaDef* d = f.use_def(s, ref)) e.mark_array_terminal(d);
    } else {
      if (SsaDef* d = f.use_def(s, ref)) e.visit_def(d);
      for (const ir::Expr* ix : ref->idx) e.visit_expr_uses(s, ix);
    }
    if (opts.kind != SliceKind::Data) e.visit_control(s);
    return std::move(e.out);
  } catch (const std::exception& ex) {
    return conservative_slice(issa_, s, ex.what());
  }
}

SliceResult Slicer::control_slice(const ir::Stmt* s, const SliceOptions& opts) const {
  SliceOptions o = opts;
  o.kind = SliceKind::Program;
  QueryBudget budget;
  try {
    DirectEngine e(issa_, o);
    e.add_stmt(s);
    e.visit_control(s);
    return std::move(e.out);
  } catch (const std::exception& ex) {
    return conservative_slice(issa_, s, ex.what());
  }
}

SliceResult Slicer::dependence_slice(const ir::Stmt* loop, const ir::Variable* var,
                                     const SliceOptions& opts) const {
  SliceResult combined;
  const analysis::AliasAnalysis& alias = issa_.alias();
  ir::for_each_nested(loop, [&](const ir::Stmt* s) {
    std::vector<const ir::Expr*> refs;
    for (const ir::Access& a : ir::direct_accesses(s)) {
      if (alias.canonical(a.var) == alias.canonical(var)) refs.push_back(a.ref);
    }
    for (const ir::Expr* r : refs) {
      // Slice the subscripts (the locations accessed) and the control
      // conditions (when they are accessed) — the §3.2.2 procedure.
      for (const ir::Expr* ix : r->idx) {
        ir::for_each_expr(ix, [&](const ir::Expr* n) {
          if (n->is_var_ref() || n->is_array_ref()) {
            SliceResult sub = slice(s, n, opts);
            combined.stmts.merge(sub.stmts);
            combined.terminals.merge(sub.terminals);
            combined.degraded = combined.degraded || sub.degraded;
          }
        });
      }
      SliceResult ctl = control_slice(s, opts);
      combined.stmts.merge(ctl.stmts);
      combined.terminals.merge(ctl.terminals);
      combined.degraded = combined.degraded || ctl.degraded;
      combined.stmts.insert(s);
    }
  });
  return combined;
}

// ---------------------------------------------------------------------------
// Summary engine (§3.5.2–§3.5.4)
// ---------------------------------------------------------------------------

struct Slicer::SummaryEngine {
  ssa::Issa& issa;
  SliceKind kind;

  /// An upwards-exposed channel: (procedure boundary, canonical variable).
  using Channel = std::pair<const ir::Procedure*, const ir::Variable*>;

  /// Hierarchical slice node: own statements + child subsets (§3.5.4).
  struct Node {
    std::vector<const ir::Stmt*> own;
    std::vector<Channel> own_channels;  // upwards-exposed at this node
    std::set<Channel> bound;            // channels consumed by a call expansion
    std::vector<Node*> children;
  };

  std::deque<Node> arena;
  std::map<std::pair<const SsaDef*, int>, Node*> def_nodes;   // (def, kind)
  std::map<std::tuple<const SsaDef*, const ir::Stmt*, int>, Node*> call_nodes;
  std::map<std::pair<const ir::Stmt*, int>, Node*> ctrl_nodes;

  explicit SummaryEngine(ssa::Issa& i, SliceKind k) : issa(i), kind(k) {}

  Node* fresh() {
    arena.push_back({});
    return &arena.back();
  }

  Node* control_node(const ir::Stmt* s) {
    auto key = std::make_pair(s, static_cast<int>(kind));
    auto it = ctrl_nodes.find(key);
    if (it != ctrl_nodes.end()) return it->second;
    Node* n = fresh();
    ctrl_nodes[key] = n;
    if (kind == SliceKind::Program) {
      for (const ir::Stmt* p = s->parent; p != nullptr; p = p->parent) {
        if (p->kind != ir::StmtKind::If && p->kind != ir::StmtKind::Do) continue;
        n->own.push_back(p);
        const SsaFunc& f = issa.func(p->proc);
        for (const auto& [ref, d] : f.uses_of(p)) n->children.push_back(def_node(d));
      }
    }
    return n;
  }

  /// Expand a callee channel through one call site: the GetActual of EQ 1.
  Node* actual_node(const ir::Stmt* call, const ir::Variable* channel) {
    Node* n = fresh();
    n->own.push_back(call);
    n->children.push_back(control_node(call));
    for (const Binding& b : issa.bindings(call)) {
      if (b.callee_var != channel) continue;
      if (b.actual != nullptr) {
        const SsaFunc& cf = issa.func(call->proc);
        ir::for_each_expr(b.actual, [&](const ir::Expr* e) {
          if (!e->is_var_ref() && !e->is_array_ref()) return;
          if (SsaDef* d = cf.use_def(call, e)) n->children.push_back(def_node(d));
        });
      } else if (b.caller_var != nullptr) {
        const SsaFunc& cf = issa.func(call->proc);
        if (SsaDef* d = cf.call_in(call, b.caller_var)) n->children.push_back(def_node(d));
      }
      break;
    }
    return n;
  }

  Node* def_node(const SsaDef* d) {
    support::Budget::charge_current();  // one step per summarized definition
    SUIFX_FAULT_POINT("slicer.step");
    auto key = std::make_pair(d, static_cast<int>(kind));
    auto it = def_nodes.find(key);
    if (it != def_nodes.end()) return it->second;
    Node* n = fresh();
    def_nodes[key] = n;  // memoize before recursing (cycles become edges)
    switch (d->kind) {
      case DefKind::Entry:
        if (d->var->kind != ir::VarKind::Local && d->proc != issa.program().main()) {
          n->own_channels.push_back({d->proc, d->var});
        }
        break;
      case DefKind::Phi:
        for (SsaDef* a : d->phi_args) n->children.push_back(def_node(a));
        break;
      case DefKind::Stmt:
      case DefKind::LoopInit:
      case DefKind::LoopNext: {
        n->own.push_back(d->stmt);
        const SsaFunc& f = issa.func(d->stmt->proc);
        for (const auto& [ref, ud] : f.uses_of(d->stmt)) {
          n->children.push_back(def_node(ud));
        }
        if (d->weak_prev != nullptr) n->children.push_back(def_node(d->weak_prev));
        n->children.push_back(control_node(d->stmt));
        break;
      }
      case DefKind::CallOut: {
        const ir::Stmt* call = d->stmt;
        n->own.push_back(call);
        n->children.push_back(control_node(call));
        for (const Binding& b : issa.bindings(call)) {
          if (b.caller_var != d->var || !b.flows_out) continue;
          const SsaFunc& callee = issa.func(call->callee);
          SsaDef* exit = callee.exit_def(
              b.actual != nullptr ? b.callee_var
                                  : issa.alias().canonical(b.callee_var));
          if (exit != nullptr) {
            n->children.push_back(call_expansion(exit, call));
          }
        }
        if (d->weak_prev != nullptr) n->children.push_back(def_node(d->weak_prev));
        break;
      }
    }
    return n;
  }

  /// The slice of a callee definition seen from one call site: its call
  /// subslice plus the slices of the actuals bound to its exposed channels —
  /// memoized per (definition, site): the slice-summary reuse of §3.5.2.
  Node* call_expansion(const SsaDef* exit, const ir::Stmt* call) {
    auto key = std::make_tuple(exit, call, static_cast<int>(kind));
    auto it = call_nodes.find(key);
    if (it != call_nodes.end()) return it->second;
    Node* n = fresh();
    call_nodes[key] = n;
    Node* callee = def_node(exit);
    n->children.push_back(callee);
    // The callee's own exposed channels F expand through this call site and
    // are bound here (they do not propagate further up).
    for (const Channel& ch : exposed_channels(callee)) {
      if (ch.first != call->callee) continue;  // deeper channel: leave it
      n->children.push_back(actual_node(call, ch.second));
      n->bound.insert(ch);
    }
    return n;
  }

  // --- exposed-channel fixpoint & flattening --------------------------------
  // F(n) = (own(n) ∪ ⋃_children F(c)) − bound(n); bound sets are constant so
  // the iteration is monotone and terminates.
  std::map<Node*, std::set<Channel>> channel_fix;

  std::set<Channel> exposed_channels(Node* root) {
    // Collect the reachable subgraph, then iterate to fixpoint. The
    // channel_fix values persist across queries, so repeated fixpoints over
    // already-stable regions converge in one pass.
    std::vector<Node*> nodes;
    std::set<Node*> seen;
    std::function<void(Node*)> collect = [&](Node* n) {
      if (!seen.insert(n).second) return;
      nodes.push_back(n);
      for (Node* c : n->children) collect(c);
    };
    collect(root);
    bool changed = true;
    while (changed) {
      changed = false;
      for (Node* n : nodes) {
        std::set<Channel>& f = channel_fix[n];
        size_t before = f.size();
        f.insert(n->own_channels.begin(), n->own_channels.end());
        for (Node* c : n->children) {
          const std::set<Channel>& cf = channel_fix[c];
          f.insert(cf.begin(), cf.end());
        }
        for (const Channel& b : n->bound) f.erase(b);
        if (f.size() != before) changed = true;
      }
    }
    return channel_fix[root];
  }

  // Per-node flattened statement sets, cached across queries. A node inside
  // a cycle (loop-phi recurrence) is only cached once the whole strongly
  // connected component has been fully explored from outside it.
  std::map<Node*, std::set<const ir::Stmt*>> flat_cache;

  const std::set<const ir::Stmt*>& flatten_node(Node* n) {
    auto hit = flat_cache.find(n);
    if (hit != flat_cache.end()) return hit->second;
    // Collect the reachable subgraph (it may be cyclic), then aggregate.
    std::vector<Node*> nodes;
    std::set<Node*> seen;
    std::function<void(Node*)> collect = [&](Node* x) {
      if (flat_cache.count(x) != 0) return;  // already summarized
      if (!seen.insert(x).second) return;
      nodes.push_back(x);
      for (Node* c : x->children) collect(c);
    };
    collect(n);
    // Every node in the fresh subgraph flattens to the union over its own
    // reachable set; share work by computing once for `n` and caching the
    // same closure for all members of its SCCs is overkill — cache `n` only
    // plus any child whose subtree was independently closed.
    std::set<const ir::Stmt*> acc;
    std::set<Node*> visited;
    std::function<void(Node*)> dfs = [&](Node* x) {
      auto c = flat_cache.find(x);
      if (c != flat_cache.end()) {
        acc.insert(c->second.begin(), c->second.end());
        return;
      }
      if (!visited.insert(x).second) return;
      acc.insert(x->own.begin(), x->own.end());
      for (Node* ch : x->children) dfs(ch);
    };
    dfs(n);
    return flat_cache.emplace(n, std::move(acc)).first->second;
  }

  void flatten(Node* root, SliceResult* out) {
    // The root is a per-query node; flatten its children through the cache.
    out->stmts.insert(root->own.begin(), root->own.end());
    for (Node* c : root->children) {
      const std::set<const ir::Stmt*>& f = flatten_node(c);
      out->stmts.insert(f.begin(), f.end());
    }
  }
};

Slicer::Slicer(ssa::Issa& issa) : issa_(issa) {}
Slicer::~Slicer() = default;

Slicer::SummaryEngine& Slicer::engine(SliceKind kind) const {
  auto& slot = engines_[static_cast<size_t>(kind)];
  if (slot == nullptr) slot = std::make_unique<SummaryEngine>(issa_, kind);
  return *slot;
}

SliceResult Slicer::slice_summarized(const ir::Stmt* s, const ir::Expr* ref,
                                     SliceKind kind) const {
  support::Metrics& metrics = support::Metrics::global();
  metrics.count("slicer.slice_summarized");
  support::Metrics::ScopedTimer timer(metrics, "slicer.slice_summarized",
                                      &metrics.histogram("slicer.slice_summarized"));
  support::trace::TraceSpan span("slicer/query_summarized");
  if (span.active() && s->proc != nullptr) span.set_detail(s->proc->name);
  QueryBudget budget;
  try {
    SUIFX_FAULT_POINT("slicer.query");
    SummaryEngine& eng = engine(kind);
    SliceResult out;
    out.stmts.insert(s);
    const SsaFunc& f = issa_.func(s->proc);

    SummaryEngine::Node* root = eng.fresh();
    if (SsaDef* d = f.use_def(s, ref)) root->children.push_back(eng.def_node(d));
    for (const ir::Expr* ix : ref->idx) {
      ir::for_each_expr(ix, [&](const ir::Expr* e) {
        if (!e->is_var_ref() && !e->is_array_ref()) return;
        if (SsaDef* d = f.use_def(s, e)) root->children.push_back(eng.def_node(d));
      });
    }
    if (kind == SliceKind::Program) root->children.push_back(eng.control_node(s));

    // Expand the still-exposed channels through every call site of the
    // procedure whose boundary exposes them (unconstrained context: the union
    // of EQ 1 over Cr), until no channel remains expandable.
    std::set<std::pair<SummaryEngine::Channel, const ir::Stmt*>> expanded;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const SummaryEngine::Channel& ch : eng.exposed_channels(root)) {
        for (const ir::Procedure& p : issa_.program().procedures()) {
          p.for_each([&](const ir::Stmt* c) {
            if (c->kind != ir::StmtKind::Call || c->callee != ch.first) return;
            if (!expanded.insert({ch, c}).second) return;
            root->children.push_back(eng.actual_node(c, ch.second));
            changed = true;
          });
        }
      }
    }
    eng.flatten(root, &out);
    return out;
  } catch (const std::exception& ex) {
    // An aborted build leaves half-constructed memoized nodes behind; drop
    // the whole engine so later queries rebuild from scratch.
    engines_[static_cast<size_t>(kind)].reset();
    return conservative_slice(issa_, s, ex.what());
  }
}

}  // namespace suifx::slicing
