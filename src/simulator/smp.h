// Deterministic SMP execution model. Inputs: the parallelization plan, the
// Loop Profile Analyzer's measurements (including exact block-schedule
// imbalance per processor count), and the machine model. Output: simulated
// sequential/parallel times and speedup, with per-loop breakdowns.
//
//   T_par = (T_seq − Σ_{L∈outermost-parallel} cost(L))
//         + Σ_L [ max-chunk(L, P)·mem(L, P) + invocations(L)·overhead(L) ]
//
// where overhead(L) covers spawn/join, privatization copy-in/finalization,
// and reduction initialization + finalization (serialized or staggered), and
// mem(L, P) is the cache-footprint multiplier; conflicting array
// decompositions between parallel loops add reshuffle cost (§4.2.4, §5.5).
#pragma once

#include "analysis/contraction.h"
#include "dynamic/profile.h"
#include "parallelizer/parallelizer.h"
#include "simulator/machine.h"

namespace suifx::sim {

struct SimOptions {
  MachineConfig machine = MachineConfig::alpha_server_8400();
  int nproc = 4;
  /// §6.3.4: staggered multi-lock finalization (vs serialized) for array
  /// reductions.
  bool staggered_finalization = true;
  /// §6.3.5: per-update element locks instead of private copies.
  bool element_lock_reductions = false;
  /// §6.3.3: finalize/initialize only the touched region (measured span)
  /// instead of the whole array.
  bool minimize_reduction_region = true;
  /// Arrays treated as contracted (removed from loop footprints and shrunk
  /// to their per-iteration size) per loop.
  std::map<const ir::Stmt*, std::vector<analysis::ContractedArray>> contractions;
  /// Extra per-invocation reshuffle elements per loop (conflicting
  /// decompositions); produced by analyze_decomposition_conflicts().
  std::map<const ir::Stmt*, double> reshuffle_elems;
  /// Inter-loop communication floor: cost units per element of the loop's
  /// (non-contracted) array footprint charged once per invocation regardless
  /// of processor count — producer/consumer traffic between loops that
  /// caps scalability (the effect array contraction removes, Fig 5-12).
  /// 0 disables the floor (default: only the contraction study enables it).
  double comm_elem_cost = 0.0;
  /// Per-loop chunk-cost multiplier for poor spatial locality (mis-strided
  /// innermost loops); the memory advisor's interchange removes it.
  std::map<const ir::Stmt*, double> stride_penalty;
  /// Speculative loops (docs/speculation.md): commit-time validation cost in
  /// units per logged iteration, and the observed misspeculation rate per
  /// loop name (each misspeculation pays a full serial re-execution).
  double spec_validate_cost = 0.25;
  std::map<std::string, double> spec_misspec_rate;
  /// Staged loops (docs/pdg_planning.md): decoupling-queue transfer cost per
  /// pushed value and channel (pipeline), and post/wait cost per iteration
  /// (doacross). Their parallelism is capped by the stage count / sync
  /// distance rather than the processor count.
  double stage_queue_cost = 0.05;
  double sync_cost = 0.2;
};

struct LoopSim {
  const ir::Stmt* loop = nullptr;
  bool ran_parallel = false;
  bool speculative = false;  // ran under the speculative executive
  bool staged = false;       // ran under a staged strategy (pipeline/doacross)
  double seq_cost = 0;
  double par_cost = 0;
  double overhead = 0;
  double mem_factor = 1.0;
};

struct SimResult {
  double seq_time = 0;       // cost units
  double par_time = 0;
  double speedup = 1.0;
  double coverage = 0;       // fraction of time in parallel regions
  double granularity_ms = 0; // avg parallel-region invocation, milliseconds
  std::vector<LoopSim> loops;
};

class SmpSimulator {
 public:
  SmpSimulator(const ir::Program& prog, const analysis::ArrayDataflow& df,
               const graph::RegionTree& regions)
      : prog_(prog), df_(df), regions_(regions) {}

  SimResult simulate(const parallelizer::ParallelPlan& plan,
                     const dynamic::LoopProfiler& prof,
                     const SimOptions& opts) const;

  /// Loops that execute concurrently — proven parallelizable or promoted to
  /// speculative execution — and not dynamically nested (lexically or
  /// through calls) inside another such loop.
  std::vector<const ir::Stmt*> outermost_parallel(
      const parallelizer::ParallelPlan& plan) const;

  /// Total declared footprint (elements) of arrays accessed in a loop.
  double loop_footprint_elems(const ir::Stmt* loop,
                              const SimOptions& opts) const;

 private:
  double reduction_overhead(const parallelizer::LoopPlan& lp,
                            const SimOptions& opts, uint64_t iterations,
                            uint64_t invocations) const;

  const ir::Program& prog_;
  const analysis::ArrayDataflow& df_;
  const graph::RegionTree& regions_;
};

/// Detect arrays distributed along different dimensions by different
/// parallel loops (conflicting decompositions): returns the per-loop
/// reshuffle element counts. `split_commons=true` treats splittable common
/// overlays as distinct arrays (the §5.5 optimization), removing their
/// artificial conflicts.
std::map<const ir::Stmt*, double> analyze_decomposition_conflicts(
    ir::Program& prog, const analysis::ArrayDataflow& df,
    const parallelizer::ParallelPlan& plan,
    const std::vector<const ir::Stmt*>& parallel_loops, bool split_commons);

}  // namespace suifx::sim
