// Machine models for the SMP performance simulator, parameterized after the
// systems the thesis measured on (Fig 6-1 and §4.0): the container in which
// this reproduction runs has a single core, so speedups are produced by a
// deterministic model calibrated from interpreter-measured workloads —
// see DESIGN.md's substitution table.
#pragma once

#include <string>

namespace suifx::sim {

struct MachineConfig {
  std::string name;
  int max_procs = 8;
  /// Cost units charged per parallel-loop spawn + join (synchronization).
  double spawn_overhead = 400.0;
  /// Units per element of reduction private-copy initialization/finalization.
  double red_elem_cost = 1.0;
  /// Units per lock acquire/release.
  double lock_cost = 40.0;
  /// Per-processor cache capacity in "elements" (cost-model granule).
  double cache_elems = 48'000;
  /// Extra cost multiplier applied to a loop whose per-processor footprint
  /// misses the cache entirely (scaled linearly in between).
  double mem_penalty = 1.6;
  /// Units per element for cross-processor data reshuffling (conflicting
  /// decompositions, §4.2.4).
  double reshuffle_elem_cost = 0.35;

  /// 8-processor 300 MHz bus-based Digital AlphaServer 8400 (§4.0).
  static MachineConfig alpha_server_8400();
  /// 4-processor bus-based SGI Challenge (Fig 6-1).
  static MachineConfig sgi_challenge();
  /// 32-processor hypercube-interconnect SGI Origin (Fig 6-1): larger
  /// caches, costlier synchronization, NUMA-flavored memory penalty.
  static MachineConfig sgi_origin();

  std::string summary() const;
};

}  // namespace suifx::sim
