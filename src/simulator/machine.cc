#include "simulator/machine.h"

#include <sstream>

namespace suifx::sim {

MachineConfig MachineConfig::alpha_server_8400() {
  MachineConfig m;
  m.name = "Digital AlphaServer 8400 (8x 21164, 300MHz, bus)";
  m.max_procs = 8;
  m.spawn_overhead = 500.0;
  m.red_elem_cost = 1.0;
  m.lock_cost = 50.0;
  m.cache_elems = 48'000;  // 96KB L2 + 4MB board cache, cost-model scale
  m.mem_penalty = 1.6;
  m.reshuffle_elem_cost = 0.35;
  return m;
}

MachineConfig MachineConfig::sgi_challenge() {
  MachineConfig m;
  m.name = "SGI Challenge (4x R4400, 150MHz, bus)";
  m.max_procs = 4;
  m.spawn_overhead = 420.0;
  m.red_elem_cost = 1.1;
  m.lock_cost = 60.0;
  m.cache_elems = 32'000;  // 1MB secondary cache, cost-model scale
  m.mem_penalty = 1.8;
  m.reshuffle_elem_cost = 0.4;
  return m;
}

MachineConfig MachineConfig::sgi_origin() {
  MachineConfig m;
  m.name = "SGI Origin 2000 (32x R10000, 195MHz, hypercube)";
  m.max_procs = 32;
  m.spawn_overhead = 900.0;  // distributed barrier
  m.red_elem_cost = 1.2;
  m.lock_cost = 80.0;
  m.cache_elems = 120'000;  // 4MB L2, cost-model scale
  m.mem_penalty = 2.2;      // remote-memory NUMA penalty
  m.reshuffle_elem_cost = 0.6;
  return m;
}

std::string MachineConfig::summary() const {
  std::ostringstream os;
  os << name << ": procs<=" << max_procs << " spawn=" << spawn_overhead
     << "u lock=" << lock_cost << "u cache=" << cache_elems
     << "elems mem-penalty=" << mem_penalty;
  return os.str();
}

}  // namespace suifx::sim
