#include "simulator/smp.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

namespace suifx::sim {

namespace {

/// Index into dynamic::kProfiledProcs for a processor count.
int proc_index(int nproc) {
  for (size_t i = 0; i < dynamic::kProfiledProcs.size(); ++i) {
    if (dynamic::kProfiledProcs[i] == nproc) return static_cast<int>(i);
  }
  return -1;
}

/// Constant element count of the box spanned by a reduction region,
/// evaluating SymParams at their defaults; `fallback` when unbounded.
long region_box_elems(const poly::SectionList& region, const ir::Variable* var,
                      long fallback) {
  if (var->is_scalar()) return 1;
  long best = 0;
  for (const poly::LinSystem& sys : region.systems()) {
    long elems = 1;
    bool ok = true;
    for (int k = 0; k < var->rank() && ok; ++k) {
      long lo = LONG_MIN, hi = LONG_MAX;
      for (const poly::Constraint& c : sys.constraints()) {
        // Constraints of the form a*dk + (params/consts) {==,>=} 0.
        long a = 0;
        bool other_syms = false;
        long rest = c.expr.c;
        for (const auto& [s, v] : c.expr.terms) {
          if (s == poly::dim_sym(k)) {
            a = v;
          } else if (poly::is_dim_sym(s)) {
            other_syms = true;
          } else {
            int vid = poly::sym_var_id(s);
            // SymParam columns evaluate at their defaults.
            other_syms = true;
            (void)vid;
          }
        }
        if (a == 0 || other_syms) continue;
        if (c.is_eq) {
          if (rest % a == 0) lo = hi = -rest / a;
        } else if (a > 0) {
          // a*dk + rest >= 0  =>  dk >= ceil(-rest/a)
          long b = -rest;
          long q = b / a + ((b % a != 0 && b > 0) ? 1 : 0);
          lo = std::max(lo, q);
        } else {
          long b = rest;
          long q = b / (-a) - ((b % (-a) != 0 && b < 0) ? 1 : 0);
          hi = std::min(hi, q);
        }
      }
      if (lo == LONG_MIN || hi == LONG_MAX || hi < lo) {
        ok = false;
      } else {
        elems *= hi - lo + 1;
      }
    }
    if (ok) best = std::max(best, elems);
  }
  return best > 0 ? best : fallback;
}

}  // namespace

std::vector<const ir::Stmt*> SmpSimulator::outermost_parallel(
    const parallelizer::ParallelPlan& plan) const {
  std::vector<const ir::Stmt*> chosen;
  std::set<const ir::Procedure*> parallel_ctx;  // procs invoked from parallel loops

  std::function<void(const ir::Procedure*)> mark_ctx = [&](const ir::Procedure* p) {
    if (!parallel_ctx.insert(p).second) return;
    p->for_each([&](const ir::Stmt* s) {
      if (s->kind == ir::StmtKind::Call) mark_ctx(s->callee);
    });
  };

  // Procedures in caller-before-callee order, outer loops before inner.
  graph::CallGraph cg(const_cast<ir::Program&>(prog_));
  for (ir::Procedure* p : cg.top_down()) {
    std::function<void(const std::vector<ir::Stmt*>&, bool)> walk =
        [&](const std::vector<ir::Stmt*>& body, bool suppressed) {
          for (ir::Stmt* s : body) {
            bool sup = suppressed;
            if (s->kind == ir::StmtKind::Do) {
              bool par = !sup && parallel_ctx.count(p) == 0 && plan.runs_concurrently(s);
              if (par) {
                chosen.push_back(s);
                // Everything dynamically nested runs serially.
                ir::for_each_stmt(s->body, [&](ir::Stmt* n) {
                  if (n->kind == ir::StmtKind::Call) mark_ctx(n->callee);
                });
                sup = true;
              }
            }
            walk(s->then_body, sup);
            walk(s->else_body, sup);
            walk(s->body, sup);
          }
        };
    walk(p->body, false);
  }
  return chosen;
}

double SmpSimulator::loop_footprint_elems(const ir::Stmt* loop,
                                          const SimOptions& opts) const {
  const analysis::AccessInfo& info = df_.region_info(regions_.loop_region(loop));
  double total = 0;
  auto contracted_it = opts.contractions.find(loop);
  for (const auto& [v, va] : info.vars) {
    if (!v->is_array()) continue;
    long fp = analysis::declared_footprint(v);
    if (contracted_it != opts.contractions.end()) {
      for (const analysis::ContractedArray& ca : contracted_it->second) {
        if (ca.var == v) fp = ca.contracted_elems;
      }
    }
    total += static_cast<double>(fp);
  }
  return total;
}

double SmpSimulator::reduction_overhead(const parallelizer::LoopPlan& lp,
                                        const SimOptions& opts,
                                        uint64_t iterations,
                                        uint64_t invocations) const {
  const MachineConfig& m = opts.machine;
  double per_invocation = 0;
  double iters_per_inv =
      invocations > 0 ? static_cast<double>(iterations) / static_cast<double>(invocations)
                      : 0;
  for (const parallelizer::ReductionVar& rv : lp.reductions) {
    long whole = rv.var->is_array() ? analysis::declared_footprint(rv.var) : 1;
    long elems = opts.minimize_reduction_region
                     ? region_box_elems(rv.region, rv.var, whole)
                     : whole;
    if (opts.element_lock_reductions) {
      // §6.3.5: no init/finalize; every dynamic update pays a lock.
      per_invocation += iters_per_inv * m.lock_cost;
      continue;
    }
    // Initialization happens in parallel (each processor fills its copy):
    // elapsed cost is one pass. Finalization is serialized across processors
    // unless staggered section locks overlap it (§6.3.4).
    double init = static_cast<double>(elems) * m.red_elem_cost;
    double fin = static_cast<double>(elems) * m.red_elem_cost;
    if (opts.staggered_finalization) {
      fin += 8 * m.lock_cost;  // section lock traffic
    } else {
      fin *= static_cast<double>(opts.nproc);  // one processor at a time
      fin += m.lock_cost;
    }
    per_invocation += init + fin;
  }
  for (const parallelizer::PrivateVar& pv : lp.privatized) {
    long fp = pv.var->is_array() ? analysis::declared_footprint(pv.var) : 1;
    if (pv.copy_in) per_invocation += static_cast<double>(fp);  // parallel copy
    if (pv.finalize == parallelizer::Finalize::LastIteration) {
      per_invocation += static_cast<double>(fp);  // one processor writes back
    }
  }
  return per_invocation;
}

SimResult SmpSimulator::simulate(const parallelizer::ParallelPlan& plan,
                                 const dynamic::LoopProfiler& prof,
                                 const SimOptions& opts) const {
  SimResult out;
  const MachineConfig& m = opts.machine;
  int nproc = std::min(opts.nproc, m.max_procs);
  int pi = proc_index(nproc);

  double seq = static_cast<double>(prof.program_cost());
  double par = seq;
  double parallel_region_cost = 0;
  double parallel_invocations = 0;

  auto mem_factor = [&](double footprint, int procs) {
    if (footprint <= 0) return 1.0;
    double per_proc = footprint / static_cast<double>(procs);
    if (per_proc <= m.cache_elems) return 1.0;
    return 1.0 + m.mem_penalty * (1.0 - m.cache_elems / per_proc);
  };

  for (const ir::Stmt* loop : outermost_parallel(plan)) {
    const dynamic::LoopStats* st = prof.find(loop);
    if (st == nullptr || st->invocations == 0) continue;
    const parallelizer::LoopPlan* lp = plan.find(loop);

    double cost = static_cast<double>(st->total_cost);
    double footprint = loop_footprint_elems(loop, opts);
    double mf1 = mem_factor(footprint, 1);
    double mfp = mem_factor(footprint, nproc);

    double chunk = pi >= 0 ? static_cast<double>(st->max_chunk_cost[static_cast<size_t>(pi)])
                           : cost / nproc;
    auto sp = opts.stride_penalty.find(loop);
    if (sp != opts.stride_penalty.end()) chunk *= sp->second;
    bool speculative = lp->strategy == parallelizer::Strategy::Speculative;
    double iters_per_inv = static_cast<double>(st->iterations) /
                           static_cast<double>(st->invocations);
    // A speculative loop runs the body untransformed, so it pays no
    // privatization/reduction overhead — instead every invocation pays
    // commit-time validation over its logged iterations.
    double overhead =
        speculative
            ? m.spawn_overhead + iters_per_inv * opts.spec_validate_cost
            : m.spawn_overhead +
                  reduction_overhead(*lp, opts, st->iterations, st->invocations);
    // Staged loops don't split iterations across every processor: pipeline
    // parallelism is capped by the stage count, doacross by the sync
    // distance, and each pays its decoupling traffic (queue pushes per
    // channel / post-wait pairs per iteration).
    if (lp->staging != nullptr) {
      const runtime::staged::StagedLoopPlan& stp = *lp->staging;
      double ways =
          stp.kind == runtime::staged::StagedKind::Pipeline
              ? static_cast<double>(std::max<size_t>(stp.stages.size(), 1))
              : static_cast<double>(std::max<long>(stp.sync_distance, 1));
      chunk = cost / std::min(static_cast<double>(nproc), ways);
      overhead =
          m.spawn_overhead +
          (stp.kind == runtime::staged::StagedKind::Pipeline
               ? iters_per_inv * static_cast<double>(stp.channels.size()) *
                     opts.stage_queue_cost
               : iters_per_inv * opts.sync_cost);
    }
    auto rs = opts.reshuffle_elems.find(loop);
    if (rs != opts.reshuffle_elems.end()) {
      overhead += rs->second * m.reshuffle_elem_cost / static_cast<double>(nproc);
    }

    if (opts.comm_elem_cost > 0) {
      overhead += footprint * opts.comm_elem_cost;
    }
    double par_cost =
        chunk * mfp + static_cast<double>(st->invocations) * overhead;
    double seq_cost_adjusted = cost * mf1;
    if (speculative) {
      // Expected misspeculation cost: each rollback discards the parallel
      // attempt and re-executes the invocation serially.
      auto mr = opts.spec_misspec_rate.find(loop->loop_name());
      double rate = mr != opts.spec_misspec_rate.end() ? mr->second : 0.0;
      par_cost += rate * seq_cost_adjusted;
    }
    // SUIF's run-time system suppresses parallel execution when the loop is
    // too fine-grained to profit (§4.5): take the cheaper execution.
    bool ran_parallel = par_cost < seq_cost_adjusted;
    if (!ran_parallel) par_cost = seq_cost_adjusted;

    // Sequential side keeps the (memory-modeled) serial execution.
    seq += seq_cost_adjusted - cost;
    par += seq_cost_adjusted - cost;  // baseline shift applies to both
    par += par_cost - seq_cost_adjusted;

    if (ran_parallel) {
      parallel_region_cost += seq_cost_adjusted;
      parallel_invocations += static_cast<double>(st->invocations);
    }

    LoopSim ls;
    ls.loop = loop;
    ls.ran_parallel = ran_parallel;
    ls.speculative = speculative;
    ls.staged = lp->staging != nullptr;
    ls.seq_cost = seq_cost_adjusted;
    ls.par_cost = par_cost;
    ls.overhead = static_cast<double>(st->invocations) * overhead;
    ls.mem_factor = mfp;
    out.loops.push_back(ls);
  }

  out.seq_time = seq;
  out.par_time = std::max(par, seq / static_cast<double>(nproc));
  out.speedup = out.par_time > 0 ? out.seq_time / out.par_time : 1.0;
  out.coverage = seq > 0 ? parallel_region_cost / seq : 0.0;
  out.granularity_ms = parallel_invocations > 0
                           ? parallel_region_cost / parallel_invocations *
                                 dynamic::LoopProfiler::kMsPerUnit
                           : 0.0;
  return out;
}

std::map<const ir::Stmt*, double> analyze_decomposition_conflicts(
    ir::Program& prog, const analysis::ArrayDataflow& df,
    const parallelizer::ParallelPlan& plan,
    const std::vector<const ir::Stmt*>& parallel_loops, bool split_commons) {
  (void)plan;
  // Rebuild the dataflow in the requested aliasing mode so common overlays
  // are either unified (conflicts possible) or split (conflicts dissolve).
  analysis::AliasAnalysis alias(prog, /*unify_overlays=*/!split_commons);
  graph::CallGraph cg(prog);
  graph::RegionTree regions(prog);
  analysis::ModRef modref(prog, alias, cg);
  analysis::Symbolic symbolic(prog, alias, modref, cg);
  analysis::ArrayDataflow local_df(prog, alias, modref, cg, regions, symbolic);
  (void)df;

  // Distribution dimension per (loop, array): the dim whose write subscript
  // is tied to the loop index.
  std::map<const ir::Variable*, std::set<int>> dims_of;
  std::map<const ir::Variable*, std::vector<const ir::Stmt*>> loops_of;
  for (const ir::Stmt* loop : parallel_loops) {
    poly::SymId isym = local_df.loop_index_sym(loop);
    const analysis::AccessInfo& body = local_df.body_info(loop);
    for (const auto& [v, va] : body.vars) {
      if (!v->is_array()) continue;
      poly::SectionList writes = va.sec.M;
      writes.unite(va.sec.W);
      for (const poly::LinSystem& sys : writes.systems()) {
        for (const poly::Constraint& c : sys.constraints()) {
          if (!c.is_eq || !c.expr.involves(isym)) continue;
          for (int k = 0; k < v->rank(); ++k) {
            if (c.expr.involves(poly::dim_sym(k))) {
              dims_of[v].insert(k);
              loops_of[v].push_back(loop);
            }
          }
        }
      }
    }
  }
  std::map<const ir::Stmt*, double> out;
  for (const auto& [v, dims] : dims_of) {
    if (dims.size() < 2) continue;
    double fp = static_cast<double>(analysis::declared_footprint(v));
    for (const ir::Stmt* loop : loops_of[v]) out[loop] += fp;
  }
  return out;
}

}  // namespace suifx::sim
