#include "parallelizer/alias_tier.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "analysis/array_dataflow.h"
#include "analysis/liveness.h"
#include "analysis/modref.h"
#include "analysis/symbolic.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace suifx::parallelizer {

/// The refined analysis stack: everything downstream of the alias relation
/// rebuilt over the tier-1 refinement. Symbolic value numbering reads alias
/// and modref, so it must be rebuilt too; the CallGraph and RegionTree are
/// pure program structure and are borrowed from the base stack.
struct AliasTierEscalator::Stack {
  analysis::AliasAnalysis alias;
  analysis::ModRef modref;
  analysis::Symbolic symbolic;
  analysis::ArrayDataflow df;
  std::optional<analysis::ArrayLiveness> live;
  std::optional<Parallelizer> par;

  Stack(const ir::Program& prog, const analysis::AliasRefinement& refine,
        const graph::CallGraph& cg, const graph::RegionTree& regions,
        const analysis::ArrayLiveness* base_live, bool enable_reductions)
      : alias(prog, refine),
        modref(prog, alias, cg),
        symbolic(prog, alias, modref, cg),
        df(prog, alias, modref, cg, regions, symbolic) {
    if (base_live != nullptr) {
      live.emplace(prog, df, cg, regions, alias, base_live->mode());
    }
    // Tier 0 inside the probe: no recursive escalation.
    par.emplace(df, regions, live ? &*live : nullptr, enable_reductions);
  }
};

AliasTierEscalator::AliasTierEscalator(const analysis::ArrayDataflow& base_df,
                                       const graph::RegionTree& regions,
                                       const analysis::ArrayLiveness* base_live,
                                       bool enable_reductions)
    : base_df_(base_df),
      regions_(regions),
      base_live_(base_live),
      enable_reductions_(enable_reductions) {}

AliasTierEscalator::~AliasTierEscalator() = default;

std::vector<AliasPayoff> AliasTierEscalator::payoffs(
    const analysis::LoopVerdict& verdict) const {
  std::vector<AliasPayoff> out;
  const analysis::AliasAnalysis& alias = base_df_.alias();
  for (const ir::Variable* v : verdict.dependent_vars()) {
    if (!alias.is_blob(v)) continue;
    std::vector<const ir::Variable*> members = alias.class_members(v);
    long pairs = 0, disjoint = 0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i]->kind != ir::VarKind::CommonMember) continue;
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (members[j]->kind != ir::VarKind::CommonMember) continue;
        ++pairs;
        long fi = analysis::declared_footprint_elems(members[i]);
        long fj = analysis::declared_footprint_elems(members[j]);
        if (fi < 0 || fj < 0) continue;  // unknown extent: assume overlap
        long ilo = members[i]->common_offset, ihi = ilo + fi;
        long jlo = members[j]->common_offset, jhi = jlo + fj;
        if (ihi <= jlo || jhi <= ilo) ++disjoint;
      }
    }
    double score =
        pairs > 0 ? static_cast<double>(disjoint) / static_cast<double>(pairs)
                  : 0.0;
    out.push_back({v, score});
  }
  return out;
}

bool AliasTierEscalator::ensure_stack_locked() {
  if (attempted_) return stack_ != nullptr;
  attempted_ = true;
  support::trace::TraceSpan span("alias/escalate");
  try {
    analysis::Andersen oracle(base_df_.program());
    refinement_ = oracle.refine(base_df_.alias());
    if (refinement_.empty()) {
      support::Metrics::global().count("alias.tier1.no_refinement");
      return false;
    }
    stack_ = std::make_unique<Stack>(base_df_.program(), refinement_,
                                     base_df_.callgraph(), regions_,
                                     base_live_, enable_reductions_);
    support::Metrics::global().count("alias.tier1.refined_members",
                                     refinement_.precise.size());
    return true;
  } catch (...) {
    // Injected fault (alias.andersen) or budget exhaustion during the oracle
    // or refined-stack build: degrade to tier 0, the base verdict stands.
    refinement_ = {};
    stack_.reset();
    support::Metrics::global().count("alias.tier1.degraded");
    return false;
  }
}

std::optional<LoopPlan> AliasTierEscalator::try_refine(const ir::Stmt* loop,
                                                       const Assertions& asserts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = memo_.find(loop);
  if (it != memo_.end()) return it->second;
  std::optional<LoopPlan> result;
  if (ensure_stack_locked()) {
    try {
      // The probe opens its own nested LoopScope; the caller discards the
      // probe's `why` and re-finishes its outer scope ("innermost wins", so
      // the caller's notes are unaffected while the probe runs).
      result = stack_->par->plan_loop(loop, asserts);
    } catch (...) {
      result.reset();  // degraded probe: base verdict stands for this loop
    }
  }
  memo_.emplace(loop, result);
  return result;
}

std::vector<const ir::Variable*> AliasTierEscalator::refined_members_of(
    const ir::Variable* blob_rep) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const ir::Variable*> out;
  for (const ir::Variable* m : refinement_.precise) {
    if (m->common == blob_rep->common) out.push_back(m);
  }
  std::sort(out.begin(), out.end(),
            [](const ir::Variable* a, const ir::Variable* b) {
              if (a->common_offset != b->common_offset) {
                return a->common_offset < b->common_offset;
              }
              return a->name < b->name;
            });
  // The same member re-declared by several procedures is one precise class
  // (the carve-out unifies per offset) — note it once.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const ir::Variable* a, const ir::Variable* b) {
                          return a->common_offset == b->common_offset &&
                                 a->name == b->name;
                        }),
            out.end());
  return out;
}

}  // namespace suifx::parallelizer
