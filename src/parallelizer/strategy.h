// PDG-based strategy planning (docs/pdg_planning.md): when the classic
// analyses leave a loop serial, the StrategyPlanner builds the loop's
// program dependence graph and tries to promote it to a staged strategy —
//
//   Pipeline  — the SCC condensation has >= 2 levels: fission the body
//               DSWP-style into stages (each stage runs its statement subset
//               for every iteration before the next stage starts; scalar
//               recurrence values cross stages through bounded SPSC queues).
//   Doacross  — the condensation is a single cross-iteration cluster but
//               every carried dependence has a constant syntactic distance:
//               run iterations by residue class modulo d = gcd(distances),
//               with post/wait sync cells observing the distance.
//
// Both strategies execute in the interpreter byte-identically to serial by
// construction: every pairwise dependence the PDG records (conservatively)
// is preserved by the staged schedule. DOALL and Reduction planning are
// untouched — this runs only on loops they rejected.
#pragma once

#include <vector>

#include "analysis/depend.h"
#include "graph/pdg.h"
#include "parallelizer/parallelizer.h"
#include "runtime/stagequeue.h"

namespace suifx::parallelizer {

class StrategyPlanner {
 public:
  StrategyPlanner(const analysis::ArrayDataflow& df,
                  const analysis::DependenceAnalysis& dep)
      : df_(df), dep_(dep) {}

  /// Scalar whose serial value chain can cross stages through a queue: all
  /// writes in one top-level node, every other accessing node only reads it
  /// and sits textually after the writer.
  struct ChannelCand {
    const ir::Variable* var = nullptr;
    int producer = 0;            // PDG node index of the writing statement
    std::vector<int> readers;    // PDG node indices of the reading statements
  };

  /// Build `loop`'s PDG: one node per nested statement (pre-order indices),
  /// bidirectional Control edges binding structured regions into one SCC,
  /// typed data edges between top-level statements from the section
  /// summaries (loop-independent forward, carried via the directed
  /// cross-iteration test). Queueable scalars contribute only their
  /// producer's self edges plus forward flow edges (the queue replaces the
  /// carried anti/output pairs — the DSWP decoupling); the candidates are
  /// returned through `channels`.
  graph::Pdg build_pdg(const ir::Stmt* loop, const LoopPlan& lp,
                       std::vector<ChannelCand>* channels = nullptr) const;

  /// Try to promote a statically-serial plan in place: sets `lp.strategy`,
  /// attaches `lp.staging`, and records a pipeline-staged/doacross-synced
  /// provenance note. No-op unless the plan is a clean automatic serial
  /// verdict (not parallel/degraded/asserted/IO). Deterministic: a pure
  /// function of the loop and the analyses.
  void choose(const ir::Stmt* loop, LoopPlan& lp) const;

  /// The DOACROSS sync distance for `loop`: gcd of every carried
  /// dependence's constant syntactic distance, or 0 when some dependence has
  /// no computable constant distance (irregular subscript, scalar
  /// recurrence, inner-loop access, call). Exposed for tests.
  long sync_distance(const ir::Stmt* loop, const LoopPlan& lp) const;

 private:
  bool try_pipeline(const ir::Stmt* loop, LoopPlan& lp) const;
  bool try_doacross(const ir::Stmt* loop, LoopPlan& lp) const;
  /// Any top-level node writes the loop index (through any alias) — staging
  /// cannot replicate the serial index sequence, refuse.
  bool body_writes_index(const ir::Stmt* loop) const;

  const analysis::ArrayDataflow& df_;
  const analysis::DependenceAnalysis& dep_;
};

}  // namespace suifx::parallelizer
