#include "parallelizer/strategy.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <vector>

namespace suifx::parallelizer {

namespace prov = support::provenance;

namespace {

/// Conservative read/write sections of one variable within one node.
struct Acc {
  poly::SectionList reads;
  poly::SectionList writes;
};

Acc acc_of(const analysis::VarAccess& va) {
  Acc a;
  a.reads = va.sec.R;
  a.reads.unite(va.sec.E);
  a.writes = va.sec.W;
  a.writes.unite(va.sec.M);
  // Reduction regions are BOTH read and write here: keeping the update chain
  // ordered is what preserves FP byte-identity under staging.
  for (const auto& [op, sl] : va.red) {
    (void)op;
    a.reads.unite(sl);
    a.writes.unite(sl);
  }
  return a;
}

bool may_overlap(const poly::SectionList& a, const poly::SectionList& b) {
  return !a.empty() && !b.empty() && !a.disjoint_from(b);
}

/// Subscript of the form ivar, ivar+c, c+ivar, or ivar-c; fills the offset.
bool match_index_affine(const ir::Expr* ix, const ir::Variable* iv, long* c) {
  if (ix->is_var_ref() && ix->var == iv) {
    *c = 0;
    return true;
  }
  if (ix->kind != ir::ExprKind::Binary) return false;
  const ir::Expr* a = ix->a;
  const ir::Expr* b = ix->b;
  if (ix->bop == ir::BinOp::Add) {
    if (a->is_var_ref() && a->var == iv && b->is_const_int()) {
      *c = b->ival;
      return true;
    }
    if (b->is_var_ref() && b->var == iv && a->is_const_int()) {
      *c = a->ival;
      return true;
    }
  } else if (ix->bop == ir::BinOp::Sub) {
    if (a->is_var_ref() && a->var == iv && b->is_const_int()) {
      *c = -b->ival;
      return true;
    }
  }
  return false;
}

bool mentions_any_var(const ir::Expr* e) {
  bool found = false;
  ir::for_each_expr(e, [&](const ir::Expr* x) {
    if (x->is_var_ref() || x->is_array_ref()) found = true;
  });
  return found;
}

/// One access of the DOACROSS candidate variable, syntactically decomposed:
/// the loop-index dimension's offset (subscript ivar+offset) plus the
/// constant values of every other dimension.
struct SubAcc {
  long offset = 0;
  std::vector<long> other_dims;
  bool is_write = false;
};

}  // namespace

bool StrategyPlanner::body_writes_index(const ir::Stmt* loop) const {
  const ir::Variable* civ = df_.alias().canonical(loop->ivar);
  for (const ir::Stmt* s : loop->body) {
    const analysis::VarAccess* va = df_.node_info(s).find(civ);
    if (va == nullptr) continue;
    if (!va->sec.W.empty() || !va->sec.M.empty() || !va->red.empty()) {
      return true;
    }
  }
  return false;
}

graph::Pdg StrategyPlanner::build_pdg(const ir::Stmt* loop, const LoopPlan& lp,
                                      std::vector<ChannelCand>* channels) const {
  (void)lp;
  graph::Pdg pdg;
  // Nodes in source pre-order: node index + 1 is the canonical statement
  // ordinal the provenance notes print ("s3").
  ir::for_each_nested(loop, [&](const ir::Stmt* s) { pdg.add_node(s); });
  // Structured control regions are atomic for staging: tie every nested
  // statement to its parent in both directions so a guard and its guarded
  // statements always condense into one SCC.
  ir::for_each_nested(loop, [&](const ir::Stmt* s) {
    if (s->parent == loop) return;
    int p = pdg.node_of(s->parent);
    int c = pdg.node_of(s);
    if (p < 0 || c < 0) return;
    pdg.add_edge(p, c, graph::PdgEdgeKind::Control, false);
    pdg.add_edge(c, p, graph::PdgEdgeKind::Control, false);
  });

  const std::vector<ir::Stmt*>& tops = loop->body;
  const int ntop = static_cast<int>(tops.size());
  const ir::Variable* civ = df_.alias().canonical(loop->ivar);

  // Per-variable access lists over the top-level nodes (node summaries close
  // inner loops and map calls, so compound statements participate whole).
  std::map<const ir::Variable*, std::vector<std::pair<int, Acc>>> acc;
  for (int i = 0; i < ntop; ++i) {
    for (const auto& [v, va] : df_.node_info(tops[i]).vars) {
      if (v == civ) continue;  // the executive replays the index sequence
      if (v->kind == ir::VarKind::SymParam) continue;  // never written
      Acc a = acc_of(va);
      if (a.reads.empty() && a.writes.empty()) continue;
      acc[v].emplace_back(i, std::move(a));
    }
  }

  std::vector<const ir::Variable*> vars;
  vars.reserve(acc.size());
  for (const auto& [v, nodes] : acc) vars.push_back(v);
  std::sort(vars.begin(), vars.end(),
            [](const ir::Variable* a, const ir::Variable* b) {
              return a->id < b->id;
            });

  for (const ir::Variable* v : vars) {
    const std::vector<std::pair<int, Acc>>& nodes = acc[v];

    // Queueable scalar (the DSWP decoupling): all writes in one node, every
    // other accessing node only reads and sits after the writer. The serial
    // value chain then crosses stages through a StageQueue, so the carried
    // anti/output pairs that would merge consumer and producer into one SCC
    // are deliberately NOT emitted — only the producer's own recurrence
    // edges (keeping its stage sequential) and forward flow edges (keeping
    // producer stages no later than consumer stages).
    bool queueable = false;
    int writer = -1;
    if (channels != nullptr && v->is_scalar() && !df_.alias().is_blob(v) &&
        (v->kind == ir::VarKind::Global ||
         ((v->kind == ir::VarKind::Local || v->kind == ir::VarKind::Formal) &&
          v->owner == loop->proc))) {
      int nwriters = 0;
      for (const auto& [i, a] : nodes) {
        if (!a.writes.empty()) {
          writer = i;
          ++nwriters;
        }
      }
      if (nwriters == 1) {
        queueable = true;
        for (const auto& [i, a] : nodes) {
          (void)a;
          if (i < writer) queueable = false;
        }
      }
    }

    if (queueable) {
      int u = pdg.node_of(tops[static_cast<size_t>(writer)]);
      const Acc* wa = nullptr;
      for (const auto& [i, a] : nodes) {
        if (i == writer) wa = &a;
      }
      if (dep_.cross_iteration_overlap_directed(loop, wa->writes, wa->reads)) {
        pdg.add_edge(u, u, graph::PdgEdgeKind::Flow, true);
      }
      if (dep_.cross_iteration_overlap_directed(loop, wa->writes, wa->writes)) {
        pdg.add_edge(u, u, graph::PdgEdgeKind::Output, true);
      }
      ChannelCand cand;
      cand.var = v;
      cand.producer = u;
      for (const auto& [i, a] : nodes) {
        (void)a;
        if (i == writer) continue;
        int w = pdg.node_of(tops[static_cast<size_t>(i)]);
        pdg.add_edge(u, w, graph::PdgEdgeKind::Flow, false);
        cand.readers.push_back(w);
      }
      channels->push_back(std::move(cand));
      continue;
    }

    for (const auto& [i, a] : nodes) {
      for (const auto& [j, b] : nodes) {
        int u = pdg.node_of(tops[static_cast<size_t>(i)]);
        int w = pdg.node_of(tops[static_cast<size_t>(j)]);
        // Loop-independent: within one iteration the source executes first,
        // so only textually-forward pairs are dependences.
        if (i < j) {
          if (may_overlap(a.writes, b.reads)) {
            pdg.add_edge(u, w, graph::PdgEdgeKind::Flow, false);
          }
          if (may_overlap(a.reads, b.writes)) {
            pdg.add_edge(u, w, graph::PdgEdgeKind::Anti, false);
          }
          if (may_overlap(a.writes, b.writes)) {
            pdg.add_edge(u, w, graph::PdgEdgeKind::Output, false);
          }
        }
        // Carried: source at iteration i, sink at a later iteration, any
        // textual order (including the self edges that make a stage
        // sequential).
        if (dep_.cross_iteration_overlap_directed(loop, a.writes, b.reads)) {
          pdg.add_edge(u, w, graph::PdgEdgeKind::Flow, true);
        }
        if (dep_.cross_iteration_overlap_directed(loop, a.reads, b.writes)) {
          pdg.add_edge(u, w, graph::PdgEdgeKind::Anti, true);
        }
        if (dep_.cross_iteration_overlap_directed(loop, a.writes, b.writes)) {
          pdg.add_edge(u, w, graph::PdgEdgeKind::Output, true);
        }
      }
    }
  }
  return pdg;
}

bool StrategyPlanner::try_pipeline(const ir::Stmt* loop, LoopPlan& lp) const {
  std::vector<ChannelCand> cands;
  graph::Pdg pdg = build_pdg(loop, lp, &cands);
  graph::Pdg::Condensation cond = pdg.condense();
  if (cond.num_levels < 2) return false;

  auto plan = std::make_shared<runtime::staged::StagedLoopPlan>();
  plan->kind = runtime::staged::StagedKind::Pipeline;
  plan->stages.resize(static_cast<size_t>(cond.num_levels));
  plan->num_sccs = static_cast<int>(cond.sccs.size());
  for (const graph::Pdg::Scc& scc : cond.sccs) {
    plan->num_carried_sccs += scc.cross_iteration ? 1 : 0;
  }
  std::map<const ir::Stmt*, int> stage_of;
  for (const ir::Stmt* s : loop->body) {
    int node = pdg.node_of(s);
    int scc = cond.scc_of[static_cast<size_t>(node)];
    int lv = cond.level[static_cast<size_t>(scc)];
    plan->stages[static_cast<size_t>(lv)].stmts.push_back(s);
    plan->stages[static_cast<size_t>(lv)].sequential |=
        cond.sccs[static_cast<size_t>(scc)].cross_iteration;
    stage_of[s] = lv;
  }

  // One channel per (variable, later consumer stage); a same-stage reader
  // sees the value directly in storage.
  for (const ChannelCand& c : cands) {
    int ps = stage_of.at(pdg.stmt(c.producer));
    std::set<int> consumer_stages;
    for (int r : c.readers) {
      int cs = stage_of.at(pdg.stmt(r));
      if (cs > ps) consumer_stages.insert(cs);
    }
    for (int cs : consumer_stages) {
      plan->channels.push_back({c.var, ps, cs});
    }
  }

  lp.strategy = Strategy::Pipeline;
  lp.staging = plan;
  if (prov::noting()) {
    auto ordinal = [&](const ir::Stmt* s) {
      return "s" + std::to_string(pdg.node_of(s) + 1);
    };
    std::string d = "SCC condensation: " + std::to_string(pdg.num_nodes()) +
                    " node(s), " + std::to_string(plan->num_sccs) +
                    " SCC(s), " + std::to_string(plan->stages.size()) +
                    " stage(s)";
    for (size_t i = 0; i < plan->stages.size(); ++i) {
      d += "; stage " + std::to_string(i + 1) +
           (plan->stages[i].sequential ? " [sequential]:" : ":");
      for (const ir::Stmt* s : plan->stages[i].stmts) d += " " + ordinal(s);
    }
    for (const runtime::staged::Channel& ch : plan->channels) {
      d += "; channel " + ch.var->qualified_name() + ": stage " +
           std::to_string(ch.producer_stage + 1) + " -> stage " +
           std::to_string(ch.consumer_stage + 1);
    }
    prov::note(prov::Kind::PipelineStaged, "", d);
  }
  return true;
}

namespace {

bool collect_distances(const analysis::ArrayDataflow& df, const ir::Stmt* loop,
                       const ir::Variable* v, std::vector<long>* dists) {
  bool ok = true;
  int index_dim = -1;
  std::vector<SubAcc> accs;
  ir::for_each_nested(loop, [&](const ir::Stmt* s) {
    if (!ok) return;
    // An access under an inner loop varies with the inner index too — its
    // outer-iteration footprint has no single constant offset.
    for (const ir::Stmt* p = s->parent; p != nullptr && p != loop; p = p->parent) {
      if (p->kind == ir::StmtKind::Do) {
        for (const ir::Access& a : ir::direct_accesses(s)) {
          if (df.alias().canonical(a.var) == v) ok = false;
        }
        return;
      }
    }
    for (const ir::Access& a : ir::direct_accesses(s)) {
      if (df.alias().canonical(a.var) != v) continue;
      // Only direct accesses through the canonical variable itself: an
      // aliased view (overlay reshape) has incomparable subscripts.
      if (a.var != v || !a.ref->is_array_ref()) {
        ok = false;  // scalar recurrence or aliased access: no fixed distance
        return;
      }
      SubAcc sa;
      sa.is_write = a.is_write;
      int my_index_dim = -1;
      for (size_t k = 0; k < a.ref->idx.size(); ++k) {
        const ir::Expr* ix = a.ref->idx[k];
        long c = 0;
        if (match_index_affine(ix, loop->ivar, &c)) {
          if (my_index_dim != -1) {
            ok = false;  // index in two dimensions: coupled subscripts
            return;
          }
          my_index_dim = static_cast<int>(k);
          sa.offset = c;
          continue;
        }
        // Literal-constant dimension only: a symbolic value could differ
        // from its default at run time, so it cannot disambiguate pairs.
        if (mentions_any_var(ix) || !ir::eval_const_with_params(ix, &c)) {
          ok = false;
          return;
        }
        sa.other_dims.push_back(c);
      }
      if (my_index_dim == -1) {
        ok = false;  // loop-invariant cell written/read every iteration
        return;
      }
      if (index_dim == -1) index_dim = my_index_dim;
      if (my_index_dim != index_dim) {
        ok = false;
        return;
      }
      accs.push_back(std::move(sa));
    }
  });
  if (!ok) return false;

  bool found = false;
  for (size_t x = 0; x < accs.size(); ++x) {
    for (size_t y = 0; y < accs.size(); ++y) {
      if (!accs[x].is_write && !accs[y].is_write) continue;
      if (accs[x].other_dims != accs[y].other_dims) continue;
      long d = accs[x].offset - accs[y].offset;
      if (d < 0) d = -d;
      if (d > 0) {
        dists->push_back(d);
        found = true;
      }
    }
  }
  // A Dependent verdict with no explaining syntactic distance means the
  // sections see something this decomposition cannot — refuse.
  return found;
}

}  // namespace

long StrategyPlanner::sync_distance(const ir::Stmt* loop,
                                    const LoopPlan& lp) const {
  long step = 0;
  if (!ir::eval_const_with_params(loop->step, &step) || step != 1) return 0;
  if (df_.loop_has_call(loop)) return 0;
  if (body_writes_index(loop)) return 0;

  std::vector<std::pair<const ir::Variable*, const analysis::VarVerdict*>> by_id;
  by_id.reserve(lp.verdict.vars.size());
  for (const auto& [v, vv] : lp.verdict.vars) by_id.push_back({v, &vv});
  std::sort(by_id.begin(), by_id.end(),
            [](const auto& a, const auto& b) { return a.first->id < b.first->id; });

  std::vector<long> dists;
  for (const auto& [v, vv] : by_id) {
    switch (vv->cls) {
      case analysis::VarClass::ReadOnly:
      case analysis::VarClass::Parallel:
      case analysis::VarClass::LoopIndex:
        break;
      case analysis::VarClass::Reduction:
        // Residue order would reorder the FP update chain.
        return 0;
      case analysis::VarClass::Privatizable: {
        const PrivateVar* pv = nullptr;
        for (const PrivateVar& p : lp.privatized) {
          if (p.var == v) pv = &p;
        }
        if (pv == nullptr) return 0;  // finalization blocked
        if (pv->finalize == Finalize::None) break;  // dead at exit: any order
        // Last-iteration finalization survives the residue reorder only via
        // the scalar fixup (capture after iteration trip-1).
        if (!v->is_scalar()) return 0;
        break;
      }
      case analysis::VarClass::Dependent:
        if (!collect_distances(df_, loop, v, &dists)) return 0;
        break;
    }
  }
  if (dists.empty()) return 0;
  long g = 0;
  for (long d : dists) g = std::gcd(g, d);
  return g;
}

bool StrategyPlanner::try_doacross(const ir::Stmt* loop, LoopPlan& lp) const {
  long g = sync_distance(loop, lp);
  if (g < 2) return false;

  auto plan = std::make_shared<runtime::staged::StagedLoopPlan>();
  plan->kind = runtime::staged::StagedKind::Doacross;
  plan->sync_distance = g;
  plan->num_sccs = 1;
  plan->num_carried_sccs = 1;
  for (const PrivateVar& pv : lp.privatized) {
    if (pv.finalize == Finalize::LastIteration && pv.var->is_scalar()) {
      plan->fixups.push_back(pv.var);
    }
  }

  lp.strategy = Strategy::Doacross;
  lp.staging = plan;
  if (prov::noting()) {
    std::string d = "every carried dependence has a constant distance; "
                    "post/wait sync distance " + std::to_string(g) +
                    ": iterations run by residue class, dependent pairs stay "
                    "in source order";
    if (!plan->fixups.empty()) {
      d += "; finalized from iteration trip-1:";
      for (const ir::Variable* v : plan->fixups) d += " " + v->qualified_name();
    }
    prov::note(prov::Kind::DoacrossSynced, "", d);
  }
  return true;
}

void StrategyPlanner::choose(const ir::Stmt* loop, LoopPlan& lp) const {
  // Only clean automatic serial verdicts: assertion-driven, degraded, and
  // I/O loops keep the classic ladder, and DOALL/Reduction stay untouched.
  if (lp.parallelizable || lp.degraded || lp.used_assertion) return;
  if (lp.verdict.has_io) return;
  if (loop->body.empty()) return;
  if (body_writes_index(loop)) return;
  if (try_pipeline(loop, lp)) return;
  try_doacross(loop, lp);
}

}  // namespace suifx::parallelizer
