// The SpeculationPlanner (docs/speculation.md): promotes statically-rejected
// loops to LoopPlan::Strategy::Speculative on dynamic evidence. The thesis's
// Dynamic Dependence Analyzer (§2.5.2) exists because index arrays and
// rarely-taken aliases defeat static analysis on loops that are parallel for
// the inputs that matter; the planner turns that hint into an execution
// strategy — run the loop under the speculative executive, watch the suspect
// variables, and fall back to serial on misspeculation — instead of waiting
// for a user assertion.
//
// Candidates are ranked probabilistically rather than treated as a binary
// "statically unprovable" verdict (the El-Zawawy & Alanazi motivation): the
// estimated misspeculation risk shrinks with the amount of clean monitored
// evidence and grows with the size of the watch set, and loops above the
// risk cutoff stay serial.
//
// Layering: dynamic depends on parallelizer (validate.h), so this planner
// takes a neutral SpecEvidence map — dynamic/specexec.h provides
// gather_evidence() to distill a DynDepAnalyzer + LoopProfiler into it.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "parallelizer/parallelizer.h"

namespace suifx::parallelizer {

/// Per-loop dynamic evidence, distilled from one instrumented run.
struct SpecEvidence {
  /// The Dynamic Dependence Analyzer observed a loop-carried flow
  /// dependence — the loop is known-dependent on this input, never promote.
  bool observed_carried = false;
  /// Iterations the analyzer monitored without a carried dependence.
  uint64_t monitored_iterations = 0;
  /// Loop invocations observed.
  uint64_t invocations = 0;
  /// Profiled loop cost in interpreter units (0 = unknown) — scales the
  /// misspeculation-cost score used for ranking.
  double loop_cost = 0;
};

struct SpecOptions {
  /// Minimum clean monitored iterations before promotion is considered.
  uint64_t min_monitored_iters = 2;
  /// Estimated misspeculation-probability cutoff: risk above this stays
  /// serial.
  double max_risk = 0.35;
  /// Cap on promotions per plan (cheapest expected misspeculation cost
  /// first). SIZE_MAX = no cap.
  size_t max_loops = static_cast<size_t>(-1);
};

/// One candidate's promotion decision, for reports and provenance.
struct SpecDecision {
  const ir::Stmt* loop = nullptr;
  std::string loop_name;
  bool promoted = false;
  /// Estimated misspeculation probability (1.0 = observed carried dep).
  double risk = 0;
  /// risk x profiled cost — the expected misspeculation cost used to rank.
  double score = 0;
  std::vector<const ir::Variable*> watch;  // sorted by qualified name
  std::string detail;  // deterministic human-readable why / why-not
};

class SpeculationPlanner {
 public:
  explicit SpeculationPlanner(SpecOptions opts = {}) : opts_(opts) {}

  /// Statically-rejected loops the executive could attempt: serial verdict,
  /// full-precision (not degraded), no I/O, no compiler-recognized reduction
  /// (the executive applies no transforms, so a genuine reduction would
  /// misspeculate every time), and at least one Dependent or finalize-
  /// blocked variable to watch. Source order.
  static std::vector<const ir::Stmt*> candidates(const ParallelPlan& plan);

  /// The watch set for one candidate: its statically Dependent variables
  /// plus privatizable variables whose finalization was blocked (commit's
  /// last-writer-wins write-back is exactly legal finalization). Sorted by
  /// qualified name.
  static std::vector<const ir::Variable*> watch_set(const LoopPlan& lp);

  /// Promote eligible candidates in `plan` (mutating strategy / watch /
  /// spec_risk and amending the provenance record with a
  /// speculation-attempted entry), and return every candidate's decision in
  /// source order. Deterministic: a pure function of the plan and the
  /// evidence map, so ledger_signature stays byte-identical across driver
  /// worker counts and cache states.
  std::vector<SpecDecision> promote(
      ParallelPlan& plan,
      const std::map<const ir::Stmt*, SpecEvidence>& evidence) const;

 private:
  SpecOptions opts_;
};

}  // namespace suifx::parallelizer
