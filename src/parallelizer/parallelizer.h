// The parallelization driver (§2.4): runs the dependence/privatization/
// reduction analyses over every loop, applies user assertions from the
// Explorer, decides which loops are parallelizable and which transforms
// (privatization with copy-in/finalization, parallel reductions) each needs.
// Execution layers (interpreter, runtime, simulator) parallelize the
// outermost parallelizable loop dynamically, as SUIF's runtime does.
#pragma once

#include <memory>

#include "analysis/depend.h"
#include "analysis/liveness.h"
#include "runtime/stagequeue.h"
#include "support/provenance.h"

namespace suifx::parallelizer {

class StrategyPlanner;
class AliasTierEscalator;

namespace analysis = suifx::analysis;

/// User assertions collected by the Explorer (§2.8).
struct Assertions {
  /// Per loop: variables the user asserts privatizable.
  std::map<const ir::Stmt*, std::set<const ir::Variable*>> privatize;
  /// Per loop: variables the user asserts independent (no carried dep).
  std::map<const ir::Stmt*, std::set<const ir::Variable*>> independent;
  /// Loops the user asserts fully parallelizable.
  std::set<const ir::Stmt*> force_parallel;

  bool empty() const {
    return privatize.empty() && independent.empty() && force_parallel.empty();
  }
};

/// How a loop is executed under the plan. `Doall` is the classic proven-
/// independent parallel loop. `Speculative` marks a statically-rejected loop
/// the SpeculationPlanner promoted on dynamic evidence: it runs under the
/// speculative executive (versioned shadow memory, commit-time validation,
/// serial rollback — docs/speculation.md) instead of being proven safe.
/// `Pipeline` and `Doacross` mark loops the StrategyPlanner promoted from
/// the loop's PDG (docs/pdg_planning.md): DSWP-style staged fission, or
/// residue-class execution synced at a constant dependence distance. Both
/// execute byte-identically to serial by construction.
enum class Strategy : uint8_t {
  Serial,
  Doall,
  Speculative,
  Pipeline,
  Doacross,
};

const char* to_string(Strategy s);

/// How a privatized variable's final value reaches the original storage.
enum class Finalize : uint8_t {
  None,           // dead at loop exit (liveness) — no write-back
  LastIteration,  // every iteration writes the same region (§5.4 base rule)
};

struct PrivateVar {
  const ir::Variable* var = nullptr;
  bool copy_in = false;
  Finalize finalize = Finalize::LastIteration;
};

struct ReductionVar {
  const ir::Variable* var = nullptr;
  ir::BinOp op = ir::BinOp::Add;
  poly::SectionList region;  // closed reduction region (minimization, §6.3.3)
};

/// Tier >= 1 only: one blob-class variable blocking a loop verdict, with the
/// estimated probability that the tier-1 (Andersen) oracle resolves it —
/// the fraction of its class whose declared storage is provably disjoint
/// from it. The Guru ranks alias-escalation suggestions by this score.
struct AliasPayoff {
  const ir::Variable* var = nullptr;
  double score = 0.0;
};

struct LoopPlan {
  const ir::Stmt* loop = nullptr;
  analysis::LoopVerdict verdict;
  bool parallelizable = false;
  /// Why a non-parallel loop failed (Explorer display).
  std::string reason;
  std::vector<PrivateVar> privatized;
  std::vector<ReductionVar> reductions;
  bool used_liveness = false;   // liveness enabled a privatization
  bool used_assertion = false;  // user input was required
  /// Analysis could not complete (budget exhausted / injected fault) and
  /// this is the conservative assume-dependence plan: never parallel, so a
  /// degraded plan cannot mark a loop the full-precision plan rejects. See
  /// docs/robustness.md.
  bool degraded = false;
  /// Execution strategy: Doall when parallelizable, Speculative when the
  /// SpeculationPlanner promoted a statically-rejected loop, else Serial.
  Strategy strategy = Strategy::Serial;
  /// Speculative only: the suspect variables (statically Dependent or
  /// finalize-blocked) whose accesses commit-time validation watches.
  /// Sorted by qualified name — part of the canonical plan rendering.
  std::vector<const ir::Variable*> watch;
  /// Speculative only: the planner's estimated misspeculation probability.
  double spec_risk = 0.0;
  /// Pipeline/Doacross only: the staged execution recipe (stages, channels,
  /// sync distance, finalization fixups). Shared and immutable, memoized
  /// with the plan like `why`. Null for every other strategy.
  std::shared_ptr<const runtime::staged::StagedLoopPlan> staging;
  /// Alias tier >= 1 only: blob-blocked variables with tier-1 payoff scores
  /// (empty at tier 0 and for loops not blocked on a blob class). Not part
  /// of the canonical plan rendering — goldens stay tier-independent.
  std::vector<AliasPayoff> alias_payoffs;
  /// Alias tier >= 1 only: the verdict was obtained after the tier-1 oracle
  /// carved the blocking classes out of their blobs (an AliasRefined note in
  /// `why` records which).
  bool alias_refined = false;
  /// Causal record of how this verdict was reached (docs/provenance.md).
  /// Null when provenance is disabled. Shared and immutable: the Driver
  /// memoizes it with the plan, cache hits replay the identical record, and
  /// incremental rebuilds carry it — which is what makes ledger_signature()
  /// byte-identical between cold and incremental rebuilds.
  std::shared_ptr<const support::provenance::LoopRecord> why;
};

struct ParallelPlan {
  std::map<const ir::Stmt*, LoopPlan> loops;

  const LoopPlan* find(const ir::Stmt* loop) const {
    auto it = loops.find(loop);
    return it != loops.end() ? &it->second : nullptr;
  }
  bool is_parallel(const ir::Stmt* loop) const {
    const LoopPlan* p = find(loop);
    return p != nullptr && p->parallelizable;
  }
  /// True when the loop executes concurrently under this plan — proven
  /// parallel (Doall), promoted to speculative execution, or promoted to a
  /// staged strategy (Pipeline/Doacross). The simulator's outermost-parallel
  /// selection uses this so promoted loops count toward coverage.
  bool runs_concurrently(const ir::Stmt* loop) const {
    const LoopPlan* p = find(loop);
    return p != nullptr &&
           (p->parallelizable || p->strategy != Strategy::Serial);
  }
  int num_parallel() const;
  /// Plans in source order (synthetic line, then statement id). The `loops`
  /// map above is keyed by statement pointer, whose order varies run to run
  /// with heap layout — every user-visible listing, golden snapshot, and the
  /// fuzz oracle's determinism check must iterate this instead.
  std::vector<const LoopPlan*> ordered() const;
};

class Parallelizer {
 public:
  /// `live` may be null: the base compiler without array liveness (the
  /// Chapter 5 ablation baseline). `enable_reductions=false` is the
  /// Chapter 6 no-reduction baseline. `alias_tier >= 1` arms the lazy
  /// Steensgaard -> Andersen escalation (parallelizer/alias_tier.h): loops
  /// left serial by a blob-blocked dependence are re-planned once against a
  /// refined alias stack; tier 0 results and goldens are unaffected.
  Parallelizer(const analysis::ArrayDataflow& df, const graph::RegionTree& regions,
               const analysis::ArrayLiveness* live = nullptr,
               bool enable_reductions = true, int alias_tier = 0);
  ~Parallelizer();

  /// Plan every loop of the program reachable from main.
  ParallelPlan plan(const ir::Program& prog, const Assertions& asserts = {}) const;

  /// Plan a single loop.
  LoopPlan plan_loop(const ir::Stmt* loop, const Assertions& asserts = {}) const;

  /// The degraded tier of the dependence test: the plan used when analysis
  /// cannot complete. Assumes a carried dependence — not parallel, no
  /// transforms, assertions ignored (honoring force_parallel here could
  /// admit a loop the full-precision plan rejects, e.g. one with I/O).
  static LoopPlan conservative_plan(const ir::Stmt* loop, const std::string& why);

 private:
  const analysis::ArrayDataflow& df_;
  const graph::RegionTree& regions_;
  const analysis::ArrayLiveness* live_;
  analysis::DependenceAnalysis dep_;
  /// PDG-based staged-strategy promotion (strategy.h); consulted for loops
  /// the classic ladder leaves serial. unique_ptr: strategy.h includes this
  /// header, so only a forward declaration is visible here.
  std::unique_ptr<StrategyPlanner> strategy_;
  /// Lazy tier-1 alias escalation (alias_tier.h); null at tier 0.
  std::unique_ptr<AliasTierEscalator> escalator_;
};

}  // namespace suifx::parallelizer
