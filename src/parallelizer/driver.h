// The parallel, memoized analysis driver. SUIF Explorer's interactivity
// depends on analyses being fast enough to re-run on every user assertion
// (§4); this driver makes whole-program loop planning both parallel and
// incremental:
//
//  - Planning is partitioned by procedure onto a runtime::ThreadPool (the
//    per-unit partitioning of Monniaux's parallel Astrée): every analysis a
//    plan consults is immutable after Workbench construction, so per-loop
//    planning is embarrassingly parallel. Results are merged in program
//    order, so the plan is identical at 1 and N workers.
//
//  - Each loop's plan is memoized under the fingerprint of the assertions
//    that can influence it (its privatize/independent sets and its
//    force-parallel flag). A Guru re-run after one new assertion therefore
//    re-analyzes only the invalidated loop nests; every other loop is a
//    cache hit. Metrics: driver.cache_hit / driver.cache_miss /
//    driver.plan counters and the driver.plan timer.
//  - Failures are isolated per unit (docs/robustness.md): a per-procedure
//    task that throws — injected fault, exhausted budget, or a genuine
//    analysis error — degrades only its own loops to conservative
//    assume-dependence plans while every sibling task completes at full
//    precision. Degraded plans are never memoized, so the next plan() call
//    retries them at full precision.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "parallelizer/parallelizer.h"
#include "runtime/parloop.h"
#include "support/budget.h"

namespace suifx::parallelizer {

class Driver {
 public:
  struct Options {
    /// Worker threads for planning; 0 = hardware concurrency.
    int workers = 0;
    /// Keep per-loop plans across plan() calls (the Guru re-run cache).
    bool memoize = true;
    /// Per-plan() step/deadline budget shared by all planning tasks.
    /// Unlimited = take SUIFX_BUDGET_STEPS / SUIFX_DEADLINE_MS from the env.
    support::Budget::Limits budget;
    /// Optional external cancellation, observed at budget charges.
    support::CancelToken* cancel = nullptr;
  };

  explicit Driver(const Parallelizer& par) : Driver(par, Options()) {}
  Driver(const Parallelizer& par, Options opts);
  ~Driver();
  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  /// Plan every loop of the program. Equivalent to Parallelizer::plan but
  /// parallel across procedures and incremental across calls.
  ParallelPlan plan(const ir::Program& prog, const Assertions& asserts = {});

  int workers() const { return pool_->size(); }
  uint64_t cache_hits() const { return hits_; }
  uint64_t cache_misses() const { return misses_; }
  /// Loops planned at the degraded tier (cumulative across plan() calls) —
  /// surfaced by Guru::planning_profile().
  uint64_t degraded_loops() const { return degraded_; }
  size_t cache_size() const;
  /// Drop every memoized plan (e.g. if the program were rebuilt).
  void invalidate();

 private:
  /// Hash of the assertion subset that can influence `loop`'s plan.
  static uint64_t assertion_fingerprint(const ir::Stmt* loop,
                                        const Assertions& asserts);

  const Parallelizer& par_;
  Options opts_;
  std::unique_ptr<runtime::ThreadPool> pool_;

  struct CacheEntry {
    uint64_t fingerprint = 0;
    LoopPlan plan;
  };
  mutable std::mutex mu_;
  std::map<const ir::Stmt*, CacheEntry> cache_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> degraded_{0};
};

/// Canonical textual rendering of a plan in program (statement-id) order:
/// byte-identical strings iff the plans agree. Used by the determinism tests
/// and the driver bench.
std::string plan_signature(const ParallelPlan& plan);

}  // namespace suifx::parallelizer
