// The parallel, memoized analysis driver. SUIF Explorer's interactivity
// depends on analyses being fast enough to re-run on every user assertion
// (§4); this driver makes whole-program loop planning both parallel and
// incremental:
//
//  - Planning is partitioned by procedure onto a runtime::ThreadPool (the
//    per-unit partitioning of Monniaux's parallel Astrée): every analysis a
//    plan consults is immutable after Workbench construction, so per-loop
//    planning is embarrassingly parallel. Results are merged in program
//    order, so the plan is identical at 1 and N workers.
//
//  - Each loop's plan is memoized under (program epoch, statement id) plus
//    the fingerprint of the assertions that can influence it (its
//    privatize/independent sets and its force-parallel flag). A Guru re-run
//    after one new assertion therefore re-analyzes only the invalidated loop
//    nests; every other loop is a cache hit. Keys never use raw statement
//    addresses: a rebuilt program can recycle an address (and the dense id
//    space), so lookups are guarded by the bound Program::uid() — planning a
//    different program bumps the epoch and drops every entry, the same
//    epoch-packing discipline poly::PolyInterner uses. Metrics:
//    driver.cache_hit / driver.cache_miss / driver.plan counters and the
//    driver.plan timer.
//
//  - Concurrent plan() calls are single-flighted per (loop, assertion
//    fingerprint): a caller that finds another caller already planning the
//    same stale loop waits for that result instead of scheduling duplicate
//    work (driver.single_flight.wait counts the shares). This is what makes
//    the driver safe to hammer from a multi-request daemon
//    (service::AnalysisService) without duplicate planning or last-writer-
//    wins cache churn.
//
//  - Failures are isolated per unit (docs/robustness.md): a per-procedure
//    task that throws — injected fault, exhausted budget, or a genuine
//    analysis error — degrades only its own loops to conservative
//    assume-dependence plans while every sibling task completes at full
//    precision. Degraded plans are never memoized, so the next plan() call
//    retries them at full precision.
//
//  - Incremental invalidation: invalidate(proc) drops only that procedure's
//    loops, and snapshot_cache()/seed_plan() let a session carry still-valid
//    entries across a Workbench rebuild (explorer::rebuild_incremental
//    translates them into the new program's id space).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "parallelizer/parallelizer.h"
#include "runtime/parloop.h"
#include "support/budget.h"

namespace suifx::parallelizer {

class Driver {
 public:
  struct Options {
    /// Worker threads for planning; 0 = hardware concurrency.
    int workers = 0;
    /// Keep per-loop plans across plan() calls (the Guru re-run cache).
    bool memoize = true;
    /// Per-plan() step/deadline budget shared by all planning tasks.
    /// Unlimited = take SUIFX_BUDGET_STEPS / SUIFX_DEADLINE_MS from the env,
    /// re-read per call. Either way, a support::Budget already installed on
    /// the calling thread (a daemon's per-request budget) takes precedence
    /// and is shared by every planning task of that call.
    support::Budget::Limits budget;
    /// Optional external cancellation, observed at budget charges.
    support::CancelToken* cancel = nullptr;
  };

  explicit Driver(const Parallelizer& par) : Driver(par, Options()) {}
  Driver(const Parallelizer& par, Options opts);
  ~Driver();
  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  /// Plan every loop of the program. Equivalent to Parallelizer::plan but
  /// parallel across procedures and incremental across calls. Thread-safe:
  /// concurrent calls share in-flight work (single-flight) and the cache.
  ParallelPlan plan(const ir::Program& prog, const Assertions& asserts = {});

  int workers() const { return pool_->size(); }
  uint64_t cache_hits() const { return hits_; }
  uint64_t cache_misses() const { return misses_; }
  /// Loops planned at the degraded tier (cumulative across plan() calls) —
  /// surfaced by Guru::planning_profile().
  uint64_t degraded_loops() const { return degraded_; }
  /// Loops whose plan was obtained by waiting on another thread's in-flight
  /// planning instead of duplicating it (counted as cache hits).
  uint64_t single_flight_waits() const { return shared_; }
  size_t cache_size() const;
  /// The current cache epoch: bumped by invalidate() and whenever plan()
  /// sees a program with a different uid than the entries were built for.
  uint64_t epoch() const;

  /// Drop every memoized plan and bump the epoch (full rebuild).
  void invalidate();
  /// Incremental invalidation: drop only `proc`'s loops' plans, leaving
  /// every other procedure's entries warm. Returns the entries erased.
  size_t invalidate(const ir::Procedure& proc);

  /// The assertion subset that can influence one loop's plan, in a
  /// program-portable form (sorted variable ids). Stored with each cache
  /// entry so a session rebuild can re-key entries after variable ids shift.
  struct AssertKey {
    std::vector<int> privatize;    // sorted ir::Variable ids
    std::vector<int> independent;  // sorted ir::Variable ids
    bool force_parallel = false;
  };
  static AssertKey assert_key(const ir::Stmt* loop, const Assertions& asserts);
  static uint64_t fingerprint(const AssertKey& key);

  /// One memoized entry, exported for cross-rebuild carry-over.
  struct CachedPlan {
    int stmt_id = 0;
    AssertKey key;
    LoopPlan plan;
  };
  /// Every live (current-epoch) cache entry.
  std::vector<CachedPlan> snapshot_cache() const;
  /// Install a (translated) entry for `prog`'s statement `stmt_id` under the
  /// current epoch, binding the driver to `prog` if it is still unbound.
  /// Refuses (returns false) degraded plans and entries for a program other
  /// than the bound one.
  bool seed_plan(const ir::Program& prog, int stmt_id, AssertKey key,
                 LoopPlan plan);

 private:
  /// (epoch << 32) | stmt id — epoch in the high bits means entries from
  /// before an invalidation/rebind can never match a current lookup.
  uint64_t pack_key(int stmt_id) const {
    return (epoch_ << 32) | static_cast<uint32_t>(stmt_id);
  }
  /// Epoch guard: planning a program with a different uid than the cache was
  /// built for clears it first. Caller holds mu_.
  void rebind_locked(const ir::Program& prog);

  const Parallelizer& par_;
  Options opts_;
  std::unique_ptr<runtime::ThreadPool> pool_;

  struct CacheEntry {
    uint64_t fingerprint = 0;
    AssertKey key;
    LoopPlan plan;
  };
  mutable std::mutex mu_;
  std::condition_variable cv_;  // single-flight completion wakeups
  std::map<uint64_t, CacheEntry> cache_;  // pack_key(stmt id) -> entry
  std::set<std::pair<uint64_t, uint64_t>> inflight_;  // (key, fingerprint)
  uint64_t epoch_ = 1;
  uint64_t bound_uid_ = 0;  // Program::uid() the entries belong to; 0 = none
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> shared_{0};
};

/// Canonical textual rendering of a plan in program (statement-id) order:
/// byte-identical strings iff the plans agree. Used by the determinism tests
/// and the driver bench.
std::string plan_signature(const ParallelPlan& plan);

/// Concatenated provenance records (LoopPlan::why->text()) in source order —
/// the determinism oracle for the decision ledger: byte-identical across
/// worker counts, cache states, and cold vs. incremental rebuilds of a clean
/// procedure. Unlike the global provenance::Ledger (whose event order follows
/// thread scheduling), this is a pure function of the plan.
std::string ledger_signature(const ParallelPlan& plan);

}  // namespace suifx::parallelizer
