#include "parallelizer/driver.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <thread>
#include <vector>

#include "polyhedra/polycache.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace suifx::parallelizer {

namespace {

uint64_t fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Driver::Driver(const Parallelizer& par, Options opts) : par_(par), opts_(opts) {
  int n = opts.workers > 0
              ? opts.workers
              : static_cast<int>(std::thread::hardware_concurrency());
  pool_ = std::make_unique<runtime::ThreadPool>(std::max(1, n));
}

Driver::~Driver() = default;

size_t Driver::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

void Driver::invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

uint64_t Driver::assertion_fingerprint(const ir::Stmt* loop,
                                       const Assertions& asserts) {
  uint64_t h = 1469598103934665603ULL;
  auto mix_vars = [&](const std::map<const ir::Stmt*, std::set<const ir::Variable*>>& m,
                      uint64_t tag) {
    h = fnv1a(h, tag);
    auto it = m.find(loop);
    if (it == m.end()) return;
    // Variable ids, sorted: stable across set orderings (sets order by
    // pointer, which is not meaningful).
    std::vector<uint64_t> ids;
    ids.reserve(it->second.size());
    for (const ir::Variable* v : it->second) {
      ids.push_back(static_cast<uint64_t>(v->id) + 1);
    }
    std::sort(ids.begin(), ids.end());
    for (uint64_t id : ids) h = fnv1a(h, id);
  };
  mix_vars(asserts.privatize, 0x9e3779b97f4a7c15ULL);
  mix_vars(asserts.independent, 0x85ebca6b0aa53a4dULL);
  h = fnv1a(h, asserts.force_parallel.count(loop) != 0 ? 2 : 1);
  return h;
}

ParallelPlan Driver::plan(const ir::Program& prog, const Assertions& asserts) {
  support::Metrics& metrics = support::Metrics::global();
  metrics.count("driver.plan");
  support::Metrics::ScopedTimer timer(metrics, "driver.plan");
  support::trace::TraceSpan plan_span("driver/plan");
  // All pool workers share the process-wide polyhedral memo cache
  // (poly::cache); snapshot its counters to attribute this call's hits.
  poly::cache::Stats poly_before = poly::cache::stats();

  // One unit of work per procedure with at least one stale loop; loops are
  // collected in deterministic program order. Cache hits merge immediately.
  struct Unit {
    const ir::Procedure* proc = nullptr;
    std::vector<const ir::Stmt*> loops;
    std::vector<uint64_t> fingerprints;
    std::vector<LoopPlan> plans;
  };
  std::deque<Unit> units;  // deque: element addresses stay valid while growing
  ParallelPlan out;
  uint64_t hits = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const ir::Procedure& p : prog.procedures()) {
      Unit* unit = nullptr;
      p.for_each([&](const ir::Stmt* s) {
        if (s->kind != ir::StmtKind::Do) return;
        uint64_t fp = assertion_fingerprint(s, asserts);
        if (opts_.memoize) {
          auto it = cache_.find(s);
          if (it != cache_.end() && it->second.fingerprint == fp) {
            out.loops[s] = it->second.plan;
            ++hits;
            return;
          }
        }
        if (unit == nullptr) {
          units.emplace_back();
          unit = &units.back();
          unit->proc = &p;
        }
        unit->loops.push_back(s);
        unit->fingerprints.push_back(fp);
      });
    }
  }

  // One budget shared by every planning task: the step counter is a single
  // atomic, so the limit bounds the whole plan() call, not each task.
  support::Budget budget(opts_.budget.unlimited()
                             ? support::Budget::limits_from_env()
                             : opts_.budget,
                         opts_.cancel);

  // Fan the stale units out onto the pool. Every analysis consulted by
  // plan_loop is immutable after construction, so units are independent.
  std::vector<std::future<void>> pending;
  pending.reserve(units.size());
  support::Histogram& task_hist = metrics.histogram("driver.task");
  for (Unit& unit : units) {
    unit.plans.resize(unit.loops.size());
    pending.push_back(pool_->submit([this, &unit, &asserts, &task_hist,
                                     &budget] {
      support::Budget::Scope bs(&budget);
      SUIFX_FAULT_POINT("driver.task");
      // The span's tid attributes this procedure's planning to the pool
      // worker that ran it — the bench's utilization table reads these.
      support::trace::TraceSpan span("driver/task", unit.proc->name);
      support::Metrics::ScopedTimer task_timer(support::Metrics::global(),
                                               "driver.task", &task_hist);
      for (size_t i = 0; i < unit.loops.size(); ++i) {
        unit.plans[i] = par_.plan_loop(unit.loops[i], asserts);
      }
    }));
  }
  // Wait for every task; a failed unit degrades alone while its siblings
  // complete at full precision. The degraded retry runs inline with faults
  // suppressed and no budget installed, so it cannot fail again.
  uint64_t degraded_loops = 0;
  for (size_t u = 0; u < pending.size(); ++u) {
    std::string why;
    try {
      pending[u].get();
      continue;
    } catch (const std::exception& ex) {
      why = ex.what();
    } catch (...) {
      why = "unknown error";
    }
    Unit& unit = units[u];
    support::fault::SuppressScope no_faults;
    support::Budget::Scope no_budget(nullptr);
    support::trace::TraceSpan span("degrade",
                                   "driver: " + unit.proc->name + ": " + why);
    for (size_t i = 0; i < unit.loops.size(); ++i) {
      unit.plans[i] = Parallelizer::conservative_plan(unit.loops[i], why);
    }
    degraded_loops += unit.loops.size();
    metrics.count("degrade.driver");
  }
  if (degraded_loops != 0) {
    degraded_ += degraded_loops;
    metrics.count("degrade.driver.loops", degraded_loops);
  }

  // Merge is a std::map keyed by statement: identical contents regardless of
  // worker count or completion order. Degraded plans are never cached — the
  // next plan() call retries those loops at full precision.
  uint64_t misses = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Unit& unit : units) {
      for (size_t i = 0; i < unit.loops.size(); ++i) {
        ++misses;
        if (opts_.memoize && !unit.plans[i].degraded) {
          cache_[unit.loops[i]] = {unit.fingerprints[i], unit.plans[i]};
        }
        out.loops[unit.loops[i]] = std::move(unit.plans[i]);
      }
    }
  }
  hits_ += hits;
  misses_ += misses;
  metrics.count("driver.cache_hit", hits);
  metrics.count("driver.cache_miss", misses);
  metrics.count("driver.loops", hits + misses);
  poly::cache::Stats poly_after = poly::cache::stats();
  metrics.count("driver.plan.poly_hits", poly_after.hits() - poly_before.hits());
  metrics.count("driver.plan.poly_misses",
                poly_after.misses() - poly_before.misses());
  return out;
}

std::string plan_signature(const ParallelPlan& plan) {
  std::vector<std::pair<int, std::string>> rows;
  rows.reserve(plan.loops.size());
  for (const auto& [loop, lp] : plan.loops) {
    std::ostringstream os;
    os << loop->id << " " << loop->loop_name() << " par=" << lp.parallelizable
       << " reason='" << lp.reason << "' live=" << lp.used_liveness
       << " assert=" << lp.used_assertion << " deg=" << lp.degraded
       << " deps=" << lp.verdict.num_dependences << " io=" << lp.verdict.has_io;
    std::vector<std::pair<int, std::string>> vars;
    for (const auto& [v, vv] : lp.verdict.vars) {
      std::ostringstream vs;
      vs << v->qualified_name() << ":" << analysis::to_string(vv.cls)
         << ":ci=" << vv.needs_copy_in << ":sr=" << vv.same_region_every_iter;
      vars.push_back({v->id, vs.str()});
    }
    std::sort(vars.begin(), vars.end());
    os << " vars[";
    for (const auto& [id, text] : vars) os << text << ",";
    os << "] priv[";
    for (const PrivateVar& pv : lp.privatized) {
      os << pv.var->qualified_name() << ":" << pv.copy_in << ":"
         << static_cast<int>(pv.finalize) << ",";
    }
    os << "] red[";
    for (const ReductionVar& rv : lp.reductions) {
      os << rv.var->qualified_name() << ":" << ir::to_string(rv.op) << ",";
    }
    os << "]";
    rows.push_back({loop->id, os.str()});
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& [id, row] : rows) {
    out += row;
    out += "\n";
  }
  return out;
}

}  // namespace suifx::parallelizer
