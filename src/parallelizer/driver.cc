#include "parallelizer/driver.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <thread>
#include <vector>

#include "polyhedra/polycache.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/provenance.h"
#include "support/trace.h"

namespace suifx::parallelizer {

namespace prov = support::provenance;

namespace {

uint64_t fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Driver::Driver(const Parallelizer& par, Options opts) : par_(par), opts_(opts) {
  int n = opts.workers > 0
              ? opts.workers
              : static_cast<int>(std::thread::hardware_concurrency());
  pool_ = std::make_unique<runtime::ThreadPool>(std::max(1, n));
}

Driver::~Driver() = default;

size_t Driver::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

uint64_t Driver::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

void Driver::invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
  cache_.clear();
}

size_t Driver::invalidate(const ir::Procedure& proc) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t erased = 0;
  proc.for_each([&](const ir::Stmt* s) {
    if (s->kind != ir::StmtKind::Do) return;
    erased += cache_.erase(pack_key(s->id));
  });
  return erased;
}

void Driver::rebind_locked(const ir::Program& prog) {
  if (bound_uid_ == prog.uid()) return;
  if (bound_uid_ != 0) {
    // A different program: its statement ids are a fresh dense space that
    // would alias every cached key, so the whole cache is stale. Bumping the
    // epoch (not just clearing) also unmatches any key a concurrent caller
    // captured before this rebind.
    ++epoch_;
    cache_.clear();
    support::Metrics::global().count("driver.rebind");
  }
  bound_uid_ = prog.uid();
}

Driver::AssertKey Driver::assert_key(const ir::Stmt* loop,
                                     const Assertions& asserts) {
  AssertKey k;
  auto ids = [&](const std::map<const ir::Stmt*, std::set<const ir::Variable*>>&
                     m) {
    std::vector<int> out;
    auto it = m.find(loop);
    if (it == m.end()) return out;
    out.reserve(it->second.size());
    // Variable ids, sorted: stable across set orderings (sets order by
    // pointer, which is not meaningful).
    for (const ir::Variable* v : it->second) out.push_back(v->id);
    std::sort(out.begin(), out.end());
    return out;
  };
  k.privatize = ids(asserts.privatize);
  k.independent = ids(asserts.independent);
  k.force_parallel = asserts.force_parallel.count(loop) != 0;
  return k;
}

uint64_t Driver::fingerprint(const AssertKey& key) {
  uint64_t h = 1469598103934665603ULL;
  h = fnv1a(h, 0x9e3779b97f4a7c15ULL);
  for (int id : key.privatize) h = fnv1a(h, static_cast<uint64_t>(id) + 1);
  h = fnv1a(h, 0x85ebca6b0aa53a4dULL);
  for (int id : key.independent) h = fnv1a(h, static_cast<uint64_t>(id) + 1);
  h = fnv1a(h, key.force_parallel ? 2 : 1);
  return h;
}

std::vector<Driver::CachedPlan> Driver::snapshot_cache() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CachedPlan> out;
  out.reserve(cache_.size());
  for (const auto& [key, entry] : cache_) {
    if ((key >> 32) != epoch_) continue;  // unreachable-stale, skip anyway
    out.push_back({static_cast<int>(key & 0xffffffffu), entry.key, entry.plan});
  }
  return out;
}

bool Driver::seed_plan(const ir::Program& prog, int stmt_id, AssertKey key,
                       LoopPlan plan) {
  if (plan.degraded) return false;  // degraded plans are never memoized
  std::string loop_name;
  if (prov::enabled() && plan.loop != nullptr) loop_name = plan.loop->loop_name();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (bound_uid_ == 0) {
      bound_uid_ = prog.uid();
    } else if (bound_uid_ != prog.uid()) {
      return false;
    }
    uint64_t fp = fingerprint(key);
    cache_[pack_key(stmt_id)] = CacheEntry{fp, std::move(key), std::move(plan)};
  }
  prov::event(prov::Kind::CacheSeeded, loop_name, "",
              "plan carried across an incremental rebuild (verdict replayed, "
              "not re-derived)");
  return true;
}

ParallelPlan Driver::plan(const ir::Program& prog, const Assertions& asserts) {
  support::Metrics& metrics = support::Metrics::global();
  metrics.count("driver.plan");
  support::Metrics::ScopedTimer timer(metrics, "driver.plan");
  support::trace::TraceSpan plan_span("driver/plan");
  // All pool workers share the process-wide polyhedral memo cache
  // (poly::cache); snapshot its counters to attribute this call's hits.
  poly::cache::Stats poly_before = poly::cache::stats();

  // One unit of work per procedure with at least one stale loop; loops are
  // collected in deterministic program order. Cache hits merge immediately;
  // loops another plan() call is already planning under the same assertion
  // fingerprint become waiters instead of duplicate units (single-flight).
  struct Unit {
    const ir::Procedure* proc = nullptr;
    std::vector<const ir::Stmt*> loops;
    std::vector<AssertKey> keys;
    std::vector<uint64_t> fingerprints;
    std::vector<LoopPlan> plans;
  };
  struct Waiter {
    const ir::Stmt* loop = nullptr;
    uint64_t key = 0;  // packed cache key captured at registration
    uint64_t fp = 0;
  };
  std::deque<Unit> units;  // deque: element addresses stay valid while growing
  std::vector<Waiter> waiting;
  std::vector<std::pair<uint64_t, uint64_t>> owned;  // our inflight_ entries
  ParallelPlan out;
  uint64_t hits = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rebind_locked(prog);
    for (const ir::Procedure& p : prog.procedures()) {
      Unit* unit = nullptr;
      p.for_each([&](const ir::Stmt* s) {
        if (s->kind != ir::StmtKind::Do) return;
        AssertKey ak = assert_key(s, asserts);
        uint64_t fp = fingerprint(ak);
        if (opts_.memoize) {
          uint64_t key = pack_key(s->id);
          auto it = cache_.find(key);
          if (it != cache_.end() && it->second.fingerprint == fp) {
            out.loops[s] = it->second.plan;
            ++hits;
            return;
          }
          if (inflight_.count({key, fp}) != 0) {
            waiting.push_back({s, key, fp});
            return;
          }
          inflight_.insert({key, fp});
          owned.push_back({key, fp});
        }
        if (unit == nullptr) {
          units.emplace_back();
          unit = &units.back();
          unit->proc = &p;
        }
        unit->loops.push_back(s);
        unit->keys.push_back(std::move(ak));
        unit->fingerprints.push_back(fp);
      });
    }
  }

  // One budget shared by every planning task: the step counter is a single
  // atomic, so the limit bounds the whole plan() call, not each task. A
  // budget already installed on the calling thread (a daemon's per-request
  // budget) takes precedence — its deadline/cancellation then govern every
  // task of this call.
  support::Budget* external = support::Budget::current();
  support::Budget local(opts_.budget.unlimited()
                            ? support::Budget::limits_from_env()
                            : opts_.budget,
                        opts_.cancel);
  support::Budget* budget = external != nullptr ? external : &local;
  // The caller's request correlation id (a daemon's CorrScope) is forwarded
  // into every pool task so pass-level provenance events and trace spans stay
  // attributed to the request that triggered them.
  const uint64_t corr = prov::current_corr();

  uint64_t misses = 0;
  uint64_t degraded_loops = 0;
  try {
    // Fan the stale units out onto the pool. Every analysis consulted by
    // plan_loop is immutable after construction, so units are independent.
    std::vector<std::future<void>> pending;
    pending.reserve(units.size());
    support::Histogram& task_hist = metrics.histogram("driver.task");
    for (Unit& unit : units) {
      unit.plans.resize(unit.loops.size());
      pending.push_back(pool_->submit([this, &unit, &asserts, &task_hist,
                                       budget, corr] {
        support::Budget::Scope bs(budget);
        prov::CorrScope cs(corr);
        SUIFX_FAULT_POINT("driver.task");
        // The span's tid attributes this procedure's planning to the pool
        // worker that ran it — the bench's utilization table reads these.
        support::trace::TraceSpan span("driver/task", unit.proc->name);
        support::Metrics::ScopedTimer task_timer(support::Metrics::global(),
                                                 "driver.task", &task_hist);
        for (size_t i = 0; i < unit.loops.size(); ++i) {
          unit.plans[i] = par_.plan_loop(unit.loops[i], asserts);
        }
      }));
    }
    // Wait for every task; a failed unit degrades alone while its siblings
    // complete at full precision. The degraded retry runs inline with faults
    // suppressed and no budget installed, so it cannot fail again.
    for (size_t u = 0; u < pending.size(); ++u) {
      std::string why;
      try {
        pending[u].get();
        continue;
      } catch (const std::exception& ex) {
        why = ex.what();
      } catch (...) {
        why = "unknown error";
      }
      Unit& unit = units[u];
      support::fault::SuppressScope no_faults;
      support::Budget::Scope no_budget(nullptr);
      support::trace::TraceSpan span(
          "degrade", "driver: " + unit.proc->name + ": " + why);
      prov::event(prov::Kind::Degraded, "", "driver/task",
                  "procedure " + unit.proc->name +
                      " fell to the conservative assume-dependence tier: " +
                      why);
      for (size_t i = 0; i < unit.loops.size(); ++i) {
        unit.plans[i] = Parallelizer::conservative_plan(unit.loops[i], why);
      }
      degraded_loops += unit.loops.size();
      metrics.count("degrade.driver");
    }
  } catch (...) {
    // Never leave our in-flight registrations behind: waiters in other
    // plan() calls would block forever on them.
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& k : owned) inflight_.erase(k);
    cv_.notify_all();
    throw;
  }
  if (degraded_loops != 0) {
    degraded_ += degraded_loops;
    metrics.count("degrade.driver.loops", degraded_loops);
  }

  // Merge is a std::map keyed by statement: identical contents regardless of
  // worker count or completion order. Degraded plans are never cached — the
  // next plan() call retries those loops at full precision. Erasing our
  // in-flight registrations before the wait phase below is what makes
  // cross-waiting calls deadlock-free.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Unit& unit : units) {
      for (size_t i = 0; i < unit.loops.size(); ++i) {
        ++misses;
        if (opts_.memoize && !unit.plans[i].degraded) {
          cache_[pack_key(unit.loops[i]->id)] =
              CacheEntry{unit.fingerprints[i], std::move(unit.keys[i]),
                         unit.plans[i]};
        }
        out.loops[unit.loops[i]] = std::move(unit.plans[i]);
      }
    }
    for (const auto& k : owned) inflight_.erase(k);
  }
  cv_.notify_all();

  // Single-flight wait phase: loops another call was already planning.
  // When that call published (or gave up on) its results, take them from
  // the cache; if it degraded — degraded plans are never cached — fall back
  // to planning inline at full precision.
  if (!waiting.empty()) {
    std::vector<Waiter> fallback;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        for (const Waiter& w : waiting) {
          if (inflight_.count({w.key, w.fp}) != 0) return false;
        }
        return true;
      });
      for (const Waiter& w : waiting) {
        auto it = cache_.find(w.key);
        if (it != cache_.end() && it->second.fingerprint == w.fp) {
          out.loops[w.loop] = it->second.plan;
          ++hits;
          ++shared_;
        } else {
          fallback.push_back(w);
        }
      }
    }
    metrics.count("driver.single_flight.wait", waiting.size() - fallback.size());
    for (const Waiter& w : fallback) {
      support::Budget::Scope bs(budget);
      LoopPlan lp;
      try {
        lp = par_.plan_loop(w.loop, asserts);
      } catch (const std::exception& ex) {
        lp = Parallelizer::conservative_plan(w.loop, ex.what());
        ++degraded_;
        metrics.count("degrade.driver.loops");
      }
      ++misses;
      if (opts_.memoize && !lp.degraded) {
        std::lock_guard<std::mutex> lock(mu_);
        cache_[w.key] = CacheEntry{w.fp, assert_key(w.loop, asserts), lp};
      }
      out.loops[w.loop] = std::move(lp);
    }
  }

  hits_ += hits;
  misses_ += misses;
  metrics.count("driver.cache_hit", hits);
  metrics.count("driver.cache_miss", misses);
  metrics.count("driver.loops", hits + misses);
  poly::cache::Stats poly_after = poly::cache::stats();
  metrics.count("driver.plan.poly_hits", poly_after.hits() - poly_before.hits());
  metrics.count("driver.plan.poly_misses",
                poly_after.misses() - poly_before.misses());
  return out;
}

std::string plan_signature(const ParallelPlan& plan) {
  std::vector<std::pair<int, std::string>> rows;
  rows.reserve(plan.loops.size());
  for (const auto& [loop, lp] : plan.loops) {
    std::ostringstream os;
    os << loop->id << " " << loop->loop_name() << " par=" << lp.parallelizable
       << " reason='" << lp.reason << "' live=" << lp.used_liveness
       << " assert=" << lp.used_assertion << " deg=" << lp.degraded
       << " deps=" << lp.verdict.num_dependences << " io=" << lp.verdict.has_io;
    std::vector<std::pair<int, std::string>> vars;
    for (const auto& [v, vv] : lp.verdict.vars) {
      std::ostringstream vs;
      vs << v->qualified_name() << ":" << analysis::to_string(vv.cls)
         << ":ci=" << vv.needs_copy_in << ":sr=" << vv.same_region_every_iter;
      vars.push_back({v->id, vs.str()});
    }
    std::sort(vars.begin(), vars.end());
    os << " vars[";
    for (const auto& [id, text] : vars) os << text << ",";
    os << "] priv[";
    for (const PrivateVar& pv : lp.privatized) {
      os << pv.var->qualified_name() << ":" << pv.copy_in << ":"
         << static_cast<int>(pv.finalize) << ",";
    }
    os << "] red[";
    for (const ReductionVar& rv : lp.reductions) {
      os << rv.var->qualified_name() << ":" << ir::to_string(rv.op) << ",";
    }
    os << "]";
    if (lp.strategy == Strategy::Speculative) {
      // Appended only for promoted loops so plans that never speculate keep
      // their pre-speculation signature (golden snapshots stay byte-stable).
      os << " spec[";
      for (const ir::Variable* v : lp.watch) os << v->qualified_name() << ",";
      os << "]";
    }
    // Staged sections, same only-when-promoted convention. Everything
    // rendered is a pure function of the loop and the analyses — no worker
    // counts, pointers, or timestamps — so the signature is identical at any
    // driver worker count (the fuzz oracle's Staging property diffs it).
    if (lp.strategy == Strategy::Pipeline && lp.staging != nullptr) {
      os << " stages[";
      for (const runtime::staged::Stage& st : lp.staging->stages) {
        os << (st.sequential ? "S{" : "P{");
        for (const ir::Stmt* s : st.stmts) os << s->id << ",";
        os << "}";
      }
      os << "] chan[";
      for (const runtime::staged::Channel& ch : lp.staging->channels) {
        os << ch.var->qualified_name() << ":" << ch.producer_stage << ">"
           << ch.consumer_stage << ",";
      }
      os << "]";
    }
    if (lp.strategy == Strategy::Doacross && lp.staging != nullptr) {
      os << " sync[d=" << lp.staging->sync_distance << " fix[";
      for (const ir::Variable* v : lp.staging->fixups) {
        os << v->qualified_name() << ",";
      }
      os << "]]";
    }
    rows.push_back({loop->id, os.str()});
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& [id, row] : rows) {
    out += row;
    out += "\n";
  }
  return out;
}

std::string ledger_signature(const ParallelPlan& plan) {
  std::string out;
  for (const LoopPlan* lp : plan.ordered()) {
    if (lp->why != nullptr) {
      out += lp->why->text();
    } else {
      out += "loop " + lp->loop->loop_name() + ": (no provenance record)\n";
    }
  }
  return out;
}

}  // namespace suifx::parallelizer
