#include "parallelizer/parallelizer.h"

#include <algorithm>

#include "parallelizer/alias_tier.h"
#include "parallelizer/strategy.h"

namespace suifx::parallelizer {

namespace prov = support::provenance;

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::Serial: return "serial";
    case Strategy::Doall: return "doall";
    case Strategy::Speculative: return "speculative";
    case Strategy::Pipeline: return "pipeline";
    case Strategy::Doacross: return "doacross";
  }
  return "?";
}

Parallelizer::Parallelizer(const analysis::ArrayDataflow& df,
                           const graph::RegionTree& regions,
                           const analysis::ArrayLiveness* live,
                           bool enable_reductions, int alias_tier)
    : df_(df),
      regions_(regions),
      live_(live),
      dep_(df, enable_reductions),
      strategy_(std::make_unique<StrategyPlanner>(df_, dep_)),
      escalator_(alias_tier >= 1
                     ? std::make_unique<AliasTierEscalator>(df, regions, live,
                                                            enable_reductions)
                     : nullptr) {}

Parallelizer::~Parallelizer() = default;

int ParallelPlan::num_parallel() const {
  int n = 0;
  for (const auto& [loop, plan] : loops) n += plan.parallelizable ? 1 : 0;
  return n;
}

std::vector<const LoopPlan*> ParallelPlan::ordered() const {
  std::vector<const LoopPlan*> out;
  out.reserve(loops.size());
  for (const auto& [loop, plan] : loops) out.push_back(&plan);
  std::sort(out.begin(), out.end(), [](const LoopPlan* a, const LoopPlan* b) {
    if (a->loop->line != b->loop->line) return a->loop->line < b->loop->line;
    return a->loop->id < b->loop->id;
  });
  return out;
}

LoopPlan Parallelizer::conservative_plan(const ir::Stmt* loop,
                                         const std::string& why) {
  LoopPlan out;
  out.loop = loop;
  out.parallelizable = false;
  out.degraded = true;
  out.reason = "analysis degraded (" + why + "): dependence assumed";
  prov::LoopScope scope(loop->loop_name());
  if (scope.active()) {
    prov::note(prov::Kind::Degraded, "",
               "analysis could not complete (" + why +
                   "); conservative tier assumes a carried dependence and "
                   "ignores assertions");
    out.why = scope.finish("degraded", out.reason);
  }
  return out;
}

LoopPlan Parallelizer::plan_loop(const ir::Stmt* loop, const Assertions& asserts) const {
  // Don't render the loop name when recording is off — the disabled path is
  // promised to cost one atomic load and a branch.
  prov::LoopScope pscope(prov::enabled() ? loop->loop_name() : std::string());
  LoopPlan out;
  out.loop = loop;

  std::set<const ir::Variable*> assume_priv;
  std::set<const ir::Variable*> assume_indep;
  auto pi = asserts.privatize.find(loop);
  if (pi != asserts.privatize.end()) assume_priv = pi->second;
  auto ii = asserts.independent.find(loop);
  if (ii != asserts.independent.end()) assume_indep = ii->second;
  bool forced = asserts.force_parallel.count(loop) != 0;
  out.used_assertion = forced || !assume_priv.empty() || !assume_indep.empty();

  if (out.used_assertion && prov::noting()) {
    if (forced) {
      prov::note(prov::Kind::AssertionApplied, "",
                 "user asserted the whole loop parallelizable; residual "
                 "dependences are overridden");
    }
    // Sets are pointer-ordered; note in name order for canonical records.
    auto by_name = [](const std::set<const ir::Variable*>& s) {
      std::vector<const ir::Variable*> v(s.begin(), s.end());
      std::sort(v.begin(), v.end(), [](const ir::Variable* a, const ir::Variable* b) {
        return a->name < b->name;
      });
      return v;
    };
    for (const ir::Variable* v : by_name(assume_priv)) {
      prov::note(prov::Kind::AssertionApplied, v->name,
                 "user asserted privatizable");
    }
    for (const ir::Variable* v : by_name(assume_indep)) {
      prov::note(prov::Kind::AssertionApplied, v->name,
                 "user asserted independent; excluded from dependence testing");
    }
  }

  out.verdict = dep_.analyze(loop, assume_priv, assume_indep);

  if (out.verdict.has_io) {
    out.reason = "contains I/O";
    if (prov::noting()) {
      prov::note(prov::Kind::IoFound, "",
                 "loop body performs I/O; output order must be preserved, so "
                 "the loop runs serially");
    }
    out.why = pscope.finish("serial", out.reason);
    return out;
  }

  bool ok = true;
  // The verdict map is keyed by pointer; iterate in variable-id order so the
  // privatized/reduction lists and the reason text are heap-layout-independent.
  std::vector<std::pair<const ir::Variable*, const analysis::VarVerdict*>> by_id;
  by_id.reserve(out.verdict.vars.size());
  for (const auto& [v, verdict] : out.verdict.vars) by_id.push_back({v, &verdict});
  std::sort(by_id.begin(), by_id.end(),
            [](const auto& a, const auto& b) { return a.first->id < b.first->id; });
  for (const auto& [v, verdict_p] : by_id) {
    const analysis::VarVerdict& verdict = *verdict_p;
    switch (verdict.cls) {
      case analysis::VarClass::Dependent:
        if (forced) break;  // the user vouches for the whole loop
        ok = false;
        if (!out.reason.empty()) out.reason += ", ";
        out.reason += "dependence on " + v->name;
        break;
      case analysis::VarClass::Privatizable: {
        PrivateVar pv;
        pv.var = v;
        pv.copy_in = verdict.needs_copy_in;
        // Finalization: prefer the liveness result (no write-back needed when
        // the written data is dead at loop exit, §5.4); otherwise fall back
        // to the same-region rule; otherwise privatization is illegal.
        bool dead = live_ != nullptr &&
                    live_->dead_at_exit(regions_.loop_region(loop), v);
        if (dead) {
          pv.finalize = Finalize::None;
          out.used_liveness = true;
        } else if (verdict.same_region_every_iter) {
          pv.finalize = Finalize::LastIteration;
        } else if (assume_priv.count(v) != 0 || forced) {
          // The user asserted privatizability; treat the final value as not
          // needed (the Assertion Checker warned if dynamic data disagrees).
          pv.finalize = Finalize::None;
        } else {
          ok = false;
          if (!out.reason.empty()) out.reason += ", ";
          out.reason += "cannot finalize private " + v->name;
          if (prov::noting()) {
            prov::note(prov::Kind::FinalizeBlocked, v->name,
                       "privatizable, but iterations write differing regions "
                       "and the value is live after the loop: no legal "
                       "finalization");
          }
          break;
        }
        if (prov::noting()) {
          // The detail is one of six fixed sentences; table lookup keeps this
          // hot, every-privatized-variable note allocation-light.
          static constexpr const char* kDetail[2][3] = {
              {"per-processor copy removes the carried conflict"
               "; no write-back: region dead at loop exit (liveness)",
               "per-processor copy removes the carried conflict"
               "; finalized from the last iteration (same region every "
               "iteration)",
               "per-processor copy removes the carried conflict"
               "; final value dropped per user assertion"},
              {"per-processor copy removes the carried conflict"
               "; copy-in of exposed reads"
               "; no write-back: region dead at loop exit (liveness)",
               "per-processor copy removes the carried conflict"
               "; copy-in of exposed reads"
               "; finalized from the last iteration (same region every "
               "iteration)",
               "per-processor copy removes the carried conflict"
               "; copy-in of exposed reads"
               "; final value dropped per user assertion"}};
          int fin = dead ? 0 : pv.finalize == Finalize::LastIteration ? 1 : 2;
          prov::note(prov::Kind::PrivatizationApplied, v->name,
                     kDetail[pv.copy_in ? 1 : 0][fin]);
        }
        out.privatized.push_back(pv);
        break;
      }
      case analysis::VarClass::Reduction: {
        ReductionVar rv;
        rv.var = v;
        rv.op = verdict.red_op;
        rv.region = verdict.red_region;
        out.reductions.push_back(rv);
        break;
      }
      default:
        break;
    }
  }
  out.parallelizable = ok;
  out.strategy = ok ? Strategy::Doall : Strategy::Serial;
  if (ok) out.reason.clear();
  // Tier-1 alias escalation: when the only thing between this loop and DOALL
  // is a dependence on a blob-collapsed COMMON class, probe a refined stack
  // (Andersen oracle, alias_tier.h). Runs before the staged-strategy ladder:
  // a loop the oracle fully untangles is a plain DOALL, not a pipeline.
  if (!ok && escalator_ != nullptr) {
    out.alias_payoffs = escalator_->payoffs(out.verdict);
    bool blob_blocked = false;
    for (const ir::Variable* v : out.verdict.dependent_vars()) {
      blob_blocked |= df_.alias().is_blob(v);
    }
    if (blob_blocked) {
      std::optional<LoopPlan> refined = escalator_->try_refine(loop, asserts);
      if (refined && refined->parallelizable) {
        LoopPlan adopted = *refined;
        // The probe's provenance record belongs to its nested scope; ours is
        // the canonical one. Re-note and re-finish so `why` reflects both the
        // escalation and the user assertions noted above.
        adopted.alias_payoffs = out.alias_payoffs;
        adopted.alias_refined = true;
        adopted.used_assertion |= out.used_assertion;
        if (prov::noting()) {
          for (const ir::Variable* v : out.verdict.dependent_vars()) {
            if (!df_.alias().is_blob(v)) continue;
            for (const ir::Variable* m : escalator_->refined_members_of(v)) {
              prov::note(prov::Kind::AliasRefined, m->name,
                         "tier-1 inclusion analysis proved the member's "
                         "storage disjoint from every other view of its "
                         "COMMON block; carved out of the blob class and the "
                         "assumed dependence dropped");
            }
          }
        }
        adopted.why = pscope.finish("parallel", "");
        return adopted;
      }
    }
  }
  // Last rung of the ladder: a clean automatic serial verdict may still
  // stage as a pipeline or a synced DOACROSS (docs/pdg_planning.md). The
  // reason text is kept — it documents why DOALL was refused.
  if (!ok) strategy_->choose(loop, out);
  const char* verdict = ok                                   ? "parallel"
                        : out.strategy == Strategy::Pipeline ? "pipeline"
                        : out.strategy == Strategy::Doacross ? "doacross"
                                                             : "serial";
  out.why = pscope.finish(verdict, out.reason);
  return out;
}

ParallelPlan Parallelizer::plan(const ir::Program& prog, const Assertions& asserts) const {
  ParallelPlan out;
  for (const ir::Procedure& p : prog.procedures()) {
    p.for_each([&](const ir::Stmt* s) {
      if (s->kind == ir::StmtKind::Do) {
        out.loops[s] = plan_loop(s, asserts);
      }
    });
  }
  return out;
}

}  // namespace suifx::parallelizer
