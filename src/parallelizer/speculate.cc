#include "parallelizer/speculate.h"

#include <algorithm>
#include <cstdio>

namespace suifx::parallelizer {

namespace prov = support::provenance;

namespace {

std::string fmt_risk(double r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", r);
  return buf;
}

std::string watch_text(const std::vector<const ir::Variable*>& watch) {
  std::string out = "{";
  for (size_t i = 0; i < watch.size(); ++i) {
    if (i != 0) out += ",";
    out += watch[i]->qualified_name();
  }
  out += "}";
  return out;
}

}  // namespace

std::vector<const ir::Variable*> SpeculationPlanner::watch_set(const LoopPlan& lp) {
  std::vector<const ir::Variable*> out;
  for (const auto& [v, vv] : lp.verdict.vars) {
    if (vv.cls == analysis::VarClass::Dependent) {
      out.push_back(v);
    } else if (vv.cls == analysis::VarClass::Privatizable) {
      // Privatizable but absent from the transform list = finalization was
      // blocked; the shadow commit finalizes it (last writer wins), so it
      // only needs watching, not proof.
      bool applied = false;
      for (const PrivateVar& pv : lp.privatized) applied |= pv.var == v;
      if (!applied) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end(), [](const ir::Variable* a, const ir::Variable* b) {
    return a->qualified_name() < b->qualified_name();
  });
  return out;
}

std::vector<const ir::Stmt*> SpeculationPlanner::candidates(const ParallelPlan& plan) {
  std::vector<const ir::Stmt*> out;
  for (const LoopPlan* lp : plan.ordered()) {
    if (lp->parallelizable || lp->degraded || lp->verdict.has_io) continue;
    // Already promoted — speculative, or staged by the StrategyPlanner
    // (pipeline/doacross loops run byte-identical without speculation).
    if (lp->strategy != Strategy::Serial) continue;
    bool has_reduction = false;
    for (const auto& [v, vv] : lp->verdict.vars) {
      (void)v;
      has_reduction |= vv.cls == analysis::VarClass::Reduction;
    }
    // The executive replays the loop body unchanged: a compiler-recognized
    // reduction carries a real flow dependence the transform would have
    // removed, so speculation on it misspeculates by construction.
    if (has_reduction) continue;
    if (watch_set(*lp).empty()) continue;
    out.push_back(lp->loop);
  }
  return out;
}

std::vector<SpecDecision> SpeculationPlanner::promote(
    ParallelPlan& plan,
    const std::map<const ir::Stmt*, SpecEvidence>& evidence) const {
  std::vector<SpecDecision> out;
  for (const ir::Stmt* loop : candidates(plan)) {
    LoopPlan& lp = plan.loops.at(loop);
    SpecDecision d;
    d.loop = loop;
    d.loop_name = loop->loop_name();
    d.watch = watch_set(lp);

    auto ev_it = evidence.find(loop);
    if (ev_it == evidence.end()) {
      d.detail = "no dynamic evidence: not monitored";
      out.push_back(std::move(d));
      continue;
    }
    const SpecEvidence& ev = ev_it->second;
    if (ev.observed_carried) {
      d.risk = 1.0;
      d.detail = "carried dependence observed on the profiling input";
      out.push_back(std::move(d));
      continue;
    }
    if (ev.monitored_iterations < opts_.min_monitored_iters) {
      d.detail = "insufficient evidence: " +
                 std::to_string(ev.monitored_iterations) +
                 " clean monitored iterations";
      out.push_back(std::move(d));
      continue;
    }
    // Laplace-style risk estimate: |watch| failure chances smoothed against
    // the clean evidence. More clean iterations or a smaller watch set mean
    // lower estimated misspeculation probability.
    double w = static_cast<double>(d.watch.size());
    d.risk = w / (w + static_cast<double>(ev.monitored_iterations));
    d.score = d.risk * std::max(1.0, ev.loop_cost);
    if (d.risk > opts_.max_risk) {
      d.detail = "estimated misspeculation risk " + fmt_risk(d.risk) +
                 " above cutoff " + fmt_risk(opts_.max_risk);
      out.push_back(std::move(d));
      continue;
    }
    d.promoted = true;
    d.detail = "promoted: watch" + watch_text(d.watch) + "; " +
               std::to_string(ev.monitored_iterations) +
               " clean monitored iterations over " +
               std::to_string(ev.invocations) +
               " invocation(s); estimated misspeculation risk " +
               fmt_risk(d.risk);
    out.push_back(std::move(d));
  }

  // Cap by expected misspeculation cost: keep the cheapest-risk promotions.
  if (opts_.max_loops != static_cast<size_t>(-1)) {
    std::vector<SpecDecision*> promoted;
    for (SpecDecision& d : out) {
      if (d.promoted) promoted.push_back(&d);
    }
    if (promoted.size() > opts_.max_loops) {
      std::stable_sort(promoted.begin(), promoted.end(),
                       [](const SpecDecision* a, const SpecDecision* b) {
                         return a->score < b->score;
                       });
      for (size_t i = opts_.max_loops; i < promoted.size(); ++i) {
        promoted[i]->promoted = false;
        promoted[i]->detail = "capped: expected misspeculation cost rank " +
                              std::to_string(i + 1) + " above limit " +
                              std::to_string(opts_.max_loops);
      }
    }
  }

  for (SpecDecision& d : out) {
    if (!d.promoted) continue;
    LoopPlan& lp = plan.loops.at(d.loop);
    lp.strategy = Strategy::Speculative;
    lp.watch = d.watch;
    lp.spec_risk = d.risk;
    if (lp.why != nullptr) {
      // Amend a copy (the original record is shared with the driver cache):
      // same canonical entry order, one speculation-attempted entry, verdict
      // "speculative". Deterministic, so ledger_signature stays stable.
      auto rec = std::make_shared<prov::LoopRecord>(*lp.why);
      rec->verdict = "speculative";
      rec->entries.push_back({prov::Kind::SpeculationAttempted, "", d.detail});
      std::sort(rec->entries.begin(), rec->entries.end(),
                [](const prov::LoopEntry& a, const prov::LoopEntry& b) {
                  if (a.kind != b.kind) return a.kind < b.kind;
                  if (a.var != b.var) return a.var < b.var;
                  return a.detail < b.detail;
                });
      lp.why = std::move(rec);
    }
    prov::event(prov::Kind::SpeculationAttempted, d.loop_name, "", d.detail);
  }
  return out;
}

}  // namespace suifx::parallelizer
