// Lazy Steensgaard -> Andersen alias escalation (the tiered alias oracle of
// docs/dataflow.md): the Parallelizer consults this only when a loop's
// verdict is blocked by a dependence on a blob alias class. The first probe
// builds the tier-1 oracle (analysis/andersen.h) and — when it carves
// anything out of a blob — a full refined analysis stack (AliasAnalysis with
// the refinement, then ModRef, Symbolic, ArrayDataflow, ArrayLiveness, and a
// tier-0 Parallelizer over them; CallGraph and RegionTree are
// alias-independent and reused). Probe results are memoized per loop; the
// stack build is single-flight. Any fault (`alias.andersen`) or budget
// exhaustion during escalation degrades to tier 0: the base verdict stands.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "analysis/andersen.h"
#include "parallelizer/parallelizer.h"

namespace suifx::parallelizer {

class AliasTierEscalator {
 public:
  AliasTierEscalator(const analysis::ArrayDataflow& base_df,
                     const graph::RegionTree& regions,
                     const analysis::ArrayLiveness* base_live,
                     bool enable_reductions);
  ~AliasTierEscalator();

  /// Payoff scores for the blob-class variables blocking `verdict`: the
  /// fraction of declared-disjoint member pairs in each blocking class —
  /// an estimate of how much of the class tier 1 can untangle. Computed
  /// from tier-0 data only (no oracle build).
  std::vector<AliasPayoff> payoffs(const analysis::LoopVerdict& verdict) const;

  /// Re-plan `loop` against the refined stack. nullopt when tier 1 has
  /// nothing to offer (no carve-outs, degradation, or probe failure).
  /// Memoized per loop; thread-safe.
  std::optional<LoopPlan> try_refine(const ir::Stmt* loop,
                                     const Assertions& asserts);

  /// The carved-out members of `blob_rep`'s block, in declaration-offset
  /// order (for canonical provenance notes). Empty before a successful
  /// probe or when tier 1 degraded.
  std::vector<const ir::Variable*> refined_members_of(const ir::Variable* blob_rep);

 private:
  struct Stack;
  bool ensure_stack_locked();

  const analysis::ArrayDataflow& base_df_;
  const graph::RegionTree& regions_;
  const analysis::ArrayLiveness* base_live_;
  bool enable_reductions_;

  std::mutex mu_;
  bool attempted_ = false;
  analysis::AliasRefinement refinement_;
  std::unique_ptr<Stack> stack_;
  std::map<const ir::Stmt*, std::optional<LoopPlan>> memo_;
};

}  // namespace suifx::parallelizer
