// hydro and flo88 recreations (Chapters 4 and 5 studies).
#include "benchsuite/suite.h"

namespace suifx::benchsuite {

// ---------------------------------------------------------------------------
// hydro: 2-D Lagrangian hydrodynamics (Los Alamos). Three ingredient
// patterns, exactly as the thesis describes:
//  * dkrc-style loops (Fig 4-5): ranges k1..k2 come from index arrays and a
//    conditionally-defined k1p1 — statically unresolvable, user-privatized.
//  * aif3-style loops (Fig 5-1): a callee must-writes a loop-variant range
//    that covers every read, so privatization is legal but finalization is
//    impossible without array liveness — liveness alone parallelizes them.
//  * duac is written distributed by column in vsetuv and by row in vqterm —
//    the conflicting decompositions of Fig 4-6 (data reshuffle penalty).
// ---------------------------------------------------------------------------

namespace {
const char* kHydroSource = R"(
program hydro;
param KN = 38;
param LN = 38;
param NSTEPS = 3;
global int k_lower[40] input;
global int k_upper[40] input;
global real duac[40, 40];
global real rho[40, 40];
global real pres[40, 40];
global real ener[40, 40];
global real aif3[40];
global real bif3[40];
global real scr2d[40, 40];

proc init1(real q[n], int n) {
  do j = 1, n label 5 {
    q[j] = 0.2;
  }
}

// --- straightforwardly parallel physics sweeps (auto-parallelized) --------
proc vtstep() {
  do l = 1, LN label 10 {
    do k = 1, KN label 20 {
      pres[k, l] = rho[k, l] * ener[k, l] * 0.4;
    }
  }
}

proc veos() {
  do l = 1, LN label 30 {
    do k = 1, KN label 40 {
      ener[k, l] = ener[k, l] + pres[k, l] * 0.01 + sqrt(abs(rho[k, l])) * 0.001;
    }
  }
}

// --- Fig 5-1: liveness-enabled privatization of aif3/bif3 -----------------
proc vsweep() {
  int k2;
  do l = 2, LN label 85 {
    k2 = k_upper[l];
    call init1(aif3[2], k2 - 1);
    do k = 2, k2 label 60 {
      rho[k, l] = rho[k, l] + aif3[k] * 0.05;
    }
  }
}

proc vgath() {
  int k2;
  do l = 2, LN label 95 {
    k2 = k_upper[l];
    call init1(bif3[2], k2 - 1);
    do k = 2, k2 label 70 {
      ener[k, l] = ener[k, l] + bif3[k] * 0.02;
    }
  }
}

// A write-overwrite-read chain: the values scr2d carries out of loop 300
// are killed by loop 310's full rewrite before loop 320 reads — only the
// kill-capable full liveness sees that loop 300's writes are dead.
proc vscratch() {
  do l = 1, LN label 300 {
    do k = 1, KN label 301 {
      scr2d[k, l] = rho[k, l] * 0.5;
    }
  }
  do l = 1, LN label 310 {
    do k = 1, KN label 311 {
      scr2d[k, l] = ener[k, l] * 0.25;
    }
  }
  do l = 1, LN label 320 {
    do k = 1, KN label 321 {
      pres[k, l] = pres[k, l] + scr2d[k, l] * 0.01;
    }
  }
}

// --- Fig 4-5: dkrc pattern, user-privatized --------------------------------
proc vsetuv() {
  real dkrc[42];
  int k1;
  int k2;
  int k1p1;
  do l = 2, LN label 85 {
    k1 = k_lower[l];
    k2 = k_upper[l];
    k1p1 = k1;
    if (k1 == 1) { k1p1 = k1 + 1; }
    do k = k1p1, k2 + 1 label 60 {
      dkrc[k] = pres[k, l] * 0.3 + 0.01;
    }
    do k = k1, k2 label 80 {
      duac[k, l] = dkrc[k] + dkrc[k + 1];
    }
  }
}

proc vsetgc() {
  real work[42];
  int k1;
  int k2;
  int k1p1;
  do l = 2, LN label 200 {
    k1 = k_lower[l];
    k2 = k_upper[l];
    k1p1 = k1;
    if (k1 == 1) { k1p1 = k1 + 1; }
    do k = k1p1, k2 + 1 label 210 {
      work[k] = rho[k, l] + ener[k, l] * 0.1;
    }
    do k = k1, k2 label 220 {
      rho[k, l] = rho[k, l] + (work[k] + work[k + 1]) * 0.005;
    }
  }
}

// --- Fig 4-6: row-wise sweep conflicting with vsetuv's column-wise one -----
proc vqterm() {
  real drl[42];
  int l1;
  int l2;
  int l1p1;
  do k = 2, KN label 85 {
    l1 = k_lower[k];
    l2 = k_upper[k];
    l1p1 = l1;
    if (l1 == 1) { l1p1 = l1 + 1; }
    do l = l1p1, l2 + 1 label 90 {
      drl[l] = duac[k, l] * 0.5;
    }
    do l = l1, l2 label 100 {
      duac[k, l] = duac[k, l] + (drl[l] + drl[l + 1]) * 0.02;
    }
  }
}

proc main() {
  do l = 1, LN label 1 {
    do k = 1, KN label 2 {
      rho[k, l] = 1.0 + real(k + l) * 0.003;
      ener[k, l] = 0.5;
      duac[k, l] = 0.0;
    }
  }
  do step = 1, NSTEPS label 999 {
    print aif3[1] + bif3[1];
    call vtstep();
    call veos();
    call vscratch();
    call vsweep();
    call vgath();
    call vsetuv();
    call vsetgc();
    call vqterm();
    print ener[5, 5] + duac[7, 7];
  }
}
)";
}  // namespace

const BenchProgram& hydro() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "hydro";
    p.description = "2-D Lagrangian hydrodynamics (Los Alamos)";
    p.source = kHydroSource;
    // Range arrays: k_lower/k_upper in [2, KN-2] with lower <= upper.
    std::vector<double> lo, hi;
    for (int i = 0; i < 40; ++i) {
      int a = 2 + (i * 7) % 8;
      int b = 30 + (i * 5) % 6;
      lo.push_back(a);
      hi.push_back(b);
    }
    p.inputs.arrays["k_lower"] = lo;
    p.inputs.arrays["k_upper"] = hi;
    p.user_input = {
        {"vsetuv/85", "vsetuv.dkrc", UserAssertion::Kind::Privatize},
        {"vsetgc/200", "vsetgc.work", UserAssertion::Kind::Privatize},
        {"vqterm/85", "vqterm.drl", UserAssertion::Kind::Privatize},
    };
    p.paper_lines = 12942;
    p.data_set = "450x450";
    return p;
  }();
  return prog;
}

// ---------------------------------------------------------------------------
// flo88: transonic wing-body analysis (Stanford CITS). Vector-legacy style:
// many small loops communicating through temporary arrays. The psmoo
// recurrence (Fig 5-4) has no exposed reads, but the sweep extents come from
// input scalars whose relation (ie == il + 1) the compiler cannot know —
// exactly the §4.4.1 flo88 story: the user privatizes the temporaries.
// ---------------------------------------------------------------------------

namespace {
const char* kFlo88Source = R"(
program flo88;
param IL = 30;
param JL = 30;
param KL = 12;
param NCYC = 2;
global int ie input;
global int je input;
global real w[32, 32, 14];
global real res[32, 32, 14];
global real radi[32, 32];
global real scr2[32, 32];

// A write-overwrite-read chain for the liveness study (see hydro.vscratch).
proc fscratch() {
  do j = 2, JL label 200 {
    do i = 2, IL label 201 {
      scr2[i, j] = radi[i, j] * 2.0;
    }
  }
  do j = 2, JL label 210 {
    do i = 2, IL label 211 {
      scr2[i, j] = radi[i, j] + 0.5;
    }
  }
  do j = 2, JL label 220 {
    do i = 2, IL label 221 {
      radi[i, j] = radi[i, j] * 0.999 + scr2[i, j] * 0.0001;
    }
  }
}

// Three smoothing passes, each funneling through a private work array whose
// accessed extent depends on the input scalars ie/je (ie == il + 1 holds at
// run time but is invisible to the compiler).
proc psmoo() {
  real d[32, 32];
  real d2[32, 32];
  real d3[32];
  real t;
  do k = 2, KL label 50 {
    do j = 2, JL label 10 {
      d[1, j] = 0.0;
    }
    do i = 2, IL label 20 {
      do j = 2, JL label 21 {
        t = d[i - 1, j] * 0.25;
        d[i, j] = (res[i, j, k] + t) * 0.5;
      }
    }
    do i = 2, ie - 1 label 30 {
      do j = 2, je - 1 label 31 {
        res[i, j, k] = d[i, j];
      }
    }
  }
  do k = 2, KL label 100 {
    do j = 2, JL label 110 {
      do i = 2, IL label 111 {
        d2[i, j] = res[i, j, k] + res[i, j - 1, k];
      }
    }
    do j = 2, je - 1 label 120 {
      do i = 2, ie - 1 label 121 {
        res[i, j, k] = d2[i, j] * 0.5;
      }
    }
  }
  do k = 2, KL label 150 {
    do i = 2, IL label 160 {
      d3[i] = res[i, 2, k] * 0.1;
    }
    do i = 2, ie - 1 label 170 {
      res[i, 2, k] = res[i, 2, k] + d3[i];
    }
  }
}

proc eflux() {
  real fe[32];
  do k = 2, KL label 50 {
    do j = 2, JL label 60 {
      do i = 2, IL label 61 {
        fe[i] = (w[i, j, k] - w[i - 1, j, k]) * 0.3;
      }
      do i = 2, ie - 1 label 62 {
        res[i, j, k] = res[i, j, k] + fe[i];
      }
    }
  }
}

proc dflux() {
  real fs[32];
  real gs[32];
  real hs[32];
  do k = 2, KL label 30 {
    do j = 2, JL label 40 {
      do i = 2, IL label 41 {
        fs[i] = w[i, j, k] - w[i - 1, j, k];
      }
      do i = 2, ie - 1 label 42 {
        res[i, j, k] = res[i, j, k] + (fs[i + 1] - fs[i]) * 0.5;
      }
    }
  }
  do k = 2, KL label 50 {
    do i = 2, IL label 51 {
      do j = 2, JL label 52 {
        gs[j] = w[i, j, k] - w[i, j - 1, k];
      }
      do j = 2, je - 1 label 53 {
        res[i, j, k] = res[i, j, k] + (gs[j + 1] - gs[j]) * 0.5;
      }
    }
  }
  do j = 2, JL label 70 {
    do i = 2, IL label 71 {
      do k = 2, KL label 72 {
        hs[k] = w[i, j, k] - w[i, j, k - 1];
      }
      do k = 2, KL - 1 label 73 {
        res[i, j, k] = res[i, j, k] + (hs[k + 1] - hs[k]) * 0.3;
      }
    }
  }
}

proc addw() {
  do k = 2, KL label 70 {
    do j = 2, JL label 80 {
      do i = 2, IL label 81 {
        w[i, j, k] = w[i, j, k] + res[i, j, k] * radi[i, j] * 0.1
                   + w[i, j, k - 1] * 0.001;
        res[i, j, k] = 0.0;
      }
    }
  }
}

proc main() {
  do k = 1, KL + 2 label 1 {
    do j = 1, JL + 2 label 2 {
      do i = 1, IL + 2 label 3 {
        w[i, j, k] = real(i + j + k) * 0.01;
        res[i, j, k] = 0.0;
      }
    }
  }
  do j = 1, JL + 2 label 4 {
    do i = 1, IL + 2 label 5 {
      radi[i, j] = 1.0 / (1.0 + real(i + j) * 0.02);
    }
  }
  do cyc = 1, NCYC label 999 {
    call fscratch();
    call eflux();
    call dflux();
    call psmoo();
    call addw();
    print w[5, 5, 5];
  }
}
)";

// Fig 5-11(b): psmoo after affine partitioning — the j sweep is outermost,
// all producers/consumers of column j execute together, and d/t become
// contraction candidates (d collapses its j dimension; t is already scalar).
const char* kFlo88FusedSource = R"(
program flo88fused;
param IL = 32;
param JL = 32;
param NSWEEP = 12;
param NCYC = 2;
global real res[34, 34];

proc psmoo() {
  real d[34, 34];
  real e[34, 34];
  real f[34, 34];
  real g[34, 34];
  do k = 2, NSWEEP label 40 {
    do j = 2, JL label 50 {
      d[1, j] = 0.0;
      do i = 2, IL label 30 {
        d[i, j] = (res[i, j] + d[i - 1, j]) * 0.25;
      }
      do i = 2, IL label 31 {
        e[i, j] = d[i, j] + res[i, j] * 0.5;
      }
      do i = 2, IL label 32 {
        f[i, j] = e[i, j] * 0.9 + d[i, j] * 0.1;
      }
      do i = 2, IL label 33 {
        g[i, j] = f[i, j] + e[i, j] * 0.01;
      }
      do i = 2, IL label 34 {
        res[i, j] = g[i, j];
      }
    }
  }
}

proc main() {
  do j = 1, JL + 2 label 1 {
    do i = 1, IL + 2 label 2 {
      res[i, j] = real(i + j) * 0.01;
    }
  }
  do cyc = 1, NCYC label 999 {
    call psmoo();
    print res[5, 5];
  }
}
)";
}  // namespace

const BenchProgram& flo88() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "flo88";
    p.description = "wing-body transonic flow analysis (Stanford CITS)";
    p.source = kFlo88Source;
    p.inputs.scalars["ie"] = 31;  // ie == IL + 1, known only to the user
    p.inputs.scalars["je"] = 31;
    p.user_input = {
        {"psmoo/50", "psmoo.d", UserAssertion::Kind::Privatize},
        {"psmoo/100", "psmoo.d2", UserAssertion::Kind::Privatize},
        {"psmoo/150", "psmoo.d3", UserAssertion::Kind::Privatize},
        {"eflux/50", "eflux.fe", UserAssertion::Kind::Privatize},
        {"dflux/30", "dflux.fs", UserAssertion::Kind::Privatize},
        {"dflux/50", "dflux.gs", UserAssertion::Kind::Privatize},
        {"dflux/70", "dflux.hs", UserAssertion::Kind::Privatize},
    };
    p.paper_lines = 7438;
    p.data_set = "256x32x48";
    return p;
  }();
  return prog;
}

const BenchProgram& flo88_fused() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "flo88-fused";
    p.description = "flo88 psmoo after affine partitioning (Fig 5-11b)";
    p.source = kFlo88FusedSource;
    p.paper_lines = 7438;
    p.data_set = "256x32x48";
    return p;
  }();
  return prog;
}

}  // namespace suifx::benchsuite
