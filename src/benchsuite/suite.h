// The benchmark suite: SF recreations of the applications the thesis
// evaluates. Each program reproduces the analysis challenges the thesis
// describes for its namesake (see DESIGN.md's substitution table): the
// guarded-privatization RL pattern of mdg's interf/1000 (Fig 4-3), hydro's
// loop-variant ranges and conflicting decompositions (Fig 4-5/4-6), arc3d's
// guarded scalar initialization (§4.4.1), flo88's vector-legacy temporaries
// (Fig 5-4/5-11), hydro2d's common-block overlays (Fig 5-9), wave5's small
// dead arrays, and the Chapter 6 reduction kernels (SPEC/NAS/Perfect-style).
#pragma once

#include <string>
#include <vector>

#include "dynamic/interp.h"

namespace suifx::benchsuite {

struct UserAssertion {
  std::string loop;  // "proc/label"
  std::string var;   // "proc.name" or global name
  enum class Kind : uint8_t { Privatize, Independent, Parallel } kind;
};

struct BenchProgram {
  std::string name;
  std::string description;
  const char* source = nullptr;  // SF text
  dynamic::Inputs inputs;
  /// The assertions the thesis's programmer supplied (§4.1.4, §4.2.4).
  std::vector<UserAssertion> user_input;
  /// Thesis-reported source size, for the program-information tables.
  int paper_lines = 0;
  /// Thesis-reported data-set description.
  std::string data_set;
};

const BenchProgram& mdg();
const BenchProgram& hydro();
const BenchProgram& arc3d();
const BenchProgram& flo88();
/// flo88's psmoo kernel after affine partitioning (Fig 5-11(b)): the form on
/// which array contraction applies — the Fig 5-12 study input.
const BenchProgram& flo88_fused();
const BenchProgram& hydro2d();
const BenchProgram& wave5();

/// Chapter 6 reduction kernels (SPEC92 / NAS / Perfect Club flavored).
const BenchProgram& kernel_embar();     // NAS EP: histogram + sums
const BenchProgram& kernel_bdna();      // Perfect: indirect array reductions
const BenchProgram& kernel_dyfesm();    // Perfect: interprocedural reduction
const BenchProgram& kernel_su2cor();    // SPEC: array-region reductions
const BenchProgram& kernel_tomcatv();   // SPEC: max-reductions on residuals
const BenchProgram& kernel_ora();       // SPEC: scalar sum/product reductions
const BenchProgram& kernel_arc2d();     // SPEC: region + max reductions
const BenchProgram& kernel_adm();       // Perfect: interprocedural sums
const BenchProgram& kernel_qcd();       // Perfect: product reductions
const BenchProgram& kernel_trfd();      // Perfect: triangular region sums
const BenchProgram& kernel_mg3d();      // Perfect: shifted trace stacking

/// The Chapter 4 Explorer study programs (Fig 4-1).
std::vector<const BenchProgram*> explorer_suite();
/// The Chapter 5 liveness study programs (Fig 5-5).
std::vector<const BenchProgram*> liveness_suite();
/// The Chapter 6 reduction-impact programs (Figs 6-2..6-7).
std::vector<const BenchProgram*> reduction_suite();
/// The union of all three study suites, deduplicated by name (the 17
/// distinct programs the golden-plan snapshots cover) — whole-benchsuite
/// sweeps (the golden test, ext_poly_cache) iterate this.
std::vector<const BenchProgram*> full_suite();

/// The tiered-alias-oracle study program (docs/dataflow.md): a COMMON
/// overlay blob blocking a storage-disjoint member's loop, which the lazy
/// Andersen escalation unblocks. Deliberately NOT in full_suite() so the
/// golden snapshots stay tier-independent.
const BenchProgram& alias_csplit();
std::vector<const BenchProgram*> alias_suite();

}  // namespace suifx::benchsuite
