// Five more Chapter 6 reduction kernels, bringing the suite to the twelve
// reduction-impacted programs of Fig 6-5 (SPEC92 / NAS / Perfect flavors).
#include "benchsuite/suite.h"

namespace suifx::benchsuite {

namespace {

// SPEC arc2d: implicit-solver residual update — array-region reductions per
// column plus a MAX residual.
const char* kArc2dSource = R"(
program arc2d;
param NI = 120;
param NJ = 40;
global real q[122, 42] input;
global real colsum[42];
global real resmax;

proc main() {
  resmax = 0.0;
  do i = 2, NI label 10 {
    do j = 2, NJ label 20 {
      colsum[j] = colsum[j] + q[i, j] * 0.5;
      if (q[i, j] > resmax) { resmax = q[i, j]; }
    }
  }
  do j = 2, NJ label 30 {
    print colsum[j];
  }
  print resmax;
}
)";

// Perfect adm: pseudospectral air pollution — column physics in a callee
// accumulating into global budgets (interprocedural sum reductions).
const char* kAdmSource = R"(
program adm;
param NCOL = 900;
param NLEV = 12;
global real conc[900, 12] input;
global real budget[12];
global real mass;

proc column(int c) {
  do l = 1, NLEV label 5 {
    budget[l] = budget[l] + conc[c, l] * 0.01;
    mass = mass + conc[c, l] * 0.001;
  }
}

proc main() {
  do c = 1, NCOL label 10 {
    call column(c);
  }
  do l = 1, NLEV label 20 {
    print budget[l];
  }
  print mass;
}
)";

// Perfect qcd: lattice gauge theory — plaquette PRODUCT reductions alongside
// an action sum.
const char* kQcdSource = R"(
program qcd;
param NSITE = 3000;
global real link[3000] input;
global real action;
global real wilson;

proc main() {
  action = 0.0;
  wilson = 1.0;
  do s = 1, NSITE label 10 {
    action = action + link[s] * link[s];
    wilson = wilson * (1.0 + link[s] * 0.0001);
  }
  print action;
  print wilson;
}
)";

// Perfect trfd: two-electron integral transformation — a triangular loop
// accumulating into a packed lower-triangular region.
const char* kTrfdSource = R"(
program trfd;
param NORB = 70;
global real x[70, 70] input;
global real v[2485];

proc main() {
  int ij;
  do i = 1, NORB label 10 {
    do j = 1, i label 20 {
      ij = i * (i - 1) / 2 + j;
      v[ij] = v[ij] + x[i, j] * x[j, i];
    }
  }
  print v[1] + v[2485];
}
)";

// Perfect mg3d: seismic migration — trace stacking: sums through an
// input-dependent time shift (sparse additive updates).
const char* kMg3dSource = R"(
program mg3d;
param NTRACE = 400;
param NT = 60;
global int shift[400] input;
global real trace[400, 60] input;
global real image[200];

proc main() {
  do t = 1, NTRACE label 10 {
    do s = 1, NT label 20 {
      image[1 + (shift[t] + s) % 200] = image[1 + (shift[t] + s) % 200]
                                      + trace[t, s] * 0.1;
    }
  }
  do p = 1, 200 label 30 {
    print image[p];
  }
}
)";

}  // namespace

const BenchProgram& kernel_arc2d() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "arc2d";
    p.description = "SPEC: implicit 2-D Euler solver, region + max reductions";
    p.source = kArc2dSource;
    p.paper_lines = 3965;
    p.data_set = "SPEC ref";
    return p;
  }();
  return prog;
}

const BenchProgram& kernel_adm() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "adm";
    p.description = "Perfect: air pollution model, interprocedural sums";
    p.source = kAdmSource;
    p.paper_lines = 6105;
    p.data_set = "Perfect ref";
    return p;
  }();
  return prog;
}

const BenchProgram& kernel_qcd() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "qcd";
    p.description = "Perfect: lattice gauge theory, product reductions";
    p.source = kQcdSource;
    p.paper_lines = 2327;
    p.data_set = "Perfect ref";
    return p;
  }();
  return prog;
}

const BenchProgram& kernel_trfd() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "trfd";
    p.description = "Perfect: integral transformation, triangular region sums";
    p.source = kTrfdSource;
    p.paper_lines = 485;
    p.data_set = "Perfect ref";
    return p;
  }();
  return prog;
}

const BenchProgram& kernel_mg3d() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "mg3d";
    p.description = "Perfect: seismic migration, shifted trace stacking";
    p.source = kMg3dSource;
    std::vector<double> shift;
    for (int t = 0; t < 400; ++t) shift.push_back((t * 29) % 140);
    p.inputs.arrays["shift"] = shift;
    p.paper_lines = 2812;
    p.data_set = "Perfect ref";
    return p;
  }();
  return prog;
}

}  // namespace suifx::benchsuite
