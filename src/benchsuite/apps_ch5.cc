// hydro2d and wave5 recreations (Chapter 5 liveness study).
#include "benchsuite/suite.h"

namespace suifx::benchsuite {

// ---------------------------------------------------------------------------
// hydro2d: astrophysical Navier-Stokes (SPEC92). The varh COMMON block is
// viewed as vz by tistep/vps and as vz1 by trans2/fct (Fig 5-9). The live
// ranges are disjoint — trans2 writes vz1 which fct consumes, then vps
// overwrites vz before tistep's read in the next time step — but only the
// kill-capable full liveness can prove it and split the block, dissolving
// the artificial decomposition conflict (vz1 is distributed by row, vz by
// column).
// ---------------------------------------------------------------------------

namespace {
const char* kHydro2dSource = R"(
program hydro2d;
param MP = 30;
param NP = 30;
param ISTEP = 3;
global real ro[32, 32];
global real gz[32, 32];
global real sc2[32, 32];

proc tistep() {
  common varh real vz[32, 32];
  real acc;
  acc = 0.0;
  do j = 1, NP label 10 {
    do i = 1, MP label 11 {
      acc = acc + vz[i, j] * 0.001;
    }
  }
  do j = 1, NP label 20 {
    do i = 1, MP label 21 {
      ro[i, j] = ro[i, j] + acc * 0.01;
    }
  }
}

proc trans2() {
  common varh real vz1[32, 32];
  do j = 1, NP label 30 {
    do i = 1, MP label 31 {
      vz1[i, j] = ro[i, j] * gz[i, j] + 0.1;
    }
  }
}

proc fct() {
  common varh real vz1[32, 32];
  do j = 1, NP label 40 {
    do i = 1, MP label 41 {
      gz[i, j] = gz[i, j] * 0.99 + vz1[i, j] * 0.02;
    }
  }
}

// Write-overwrite-read chain for the liveness study.
proc hscratch() {
  do j = 1, NP label 60 {
    do i = 1, MP label 61 {
      sc2[i, j] = ro[i, j] * 0.5;
    }
  }
  do j = 1, NP label 70 {
    do i = 1, MP label 71 {
      sc2[i, j] = gz[i, j] * 0.25;
    }
  }
  do j = 1, NP label 80 {
    do i = 1, MP label 81 {
      ro[i, j] = ro[i, j] + sc2[i, j] * 0.001;
    }
  }
}

proc advnce() {
  call trans2();
  call fct();
}

proc vps() {
  common varh real vz[32, 32];
  do i = 1, MP label 50 {
    do j = 1, NP label 51 {
      vz[i, j] = gz[i, j] + ro[i, j] * 0.5;
    }
  }
}

proc check() {
  call vps();
}

proc main() {
  do j = 1, NP label 1 {
    do i = 1, MP label 2 {
      ro[i, j] = 1.0 + real(i + j) * 0.001;
      gz[i, j] = 0.3;
    }
  }
  call vps();
  do icnt = 1, ISTEP label 100 {
    call tistep();
    call hscratch();
    call advnce();
    call check();
    print ro[4, 4] + gz[6, 6];
  }
}
)";
}  // namespace

const BenchProgram& hydro2d() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "hydro2d";
    p.description = "astrophysical Navier-Stokes program (SPEC92)";
    p.source = kHydro2dSource;
    p.paper_lines = 4461;
    p.data_set = "SPEC ref";
    return p;
  }();
  return prog;
}

// ---------------------------------------------------------------------------
// wave5: Maxwell's equations / particle push (SPEC95). Many small loops
// writing short-lived scratch arrays: array liveness finds plenty of dead
// arrays and legalizes privatization, but the loops are too fine-grained for
// parallel execution to profit — the run-time system suppresses them and the
// speedup stays flat (§5.4's wave5 row).
// ---------------------------------------------------------------------------

namespace {
const char* kWave5Source = R"(
program wave5;
param NB = 8;
param NM = 400;
param NSTEPS = 4;
global int lo_of[8] input;
global int hi_of[8] input;
global real field[8, 20];
global real charge[8, 20];
global real emesh[400];

// The dominant field solve: a genuine first-order recurrence along the
// mesh keeps it sequential (wave5's overall speedup stays flat).
proc solve() {
  do step2 = 1, 6 label 5 {
    do m = 2, NM label 6 {
      emesh[m] = emesh[m - 1] * 0.5 + emesh[m] * 0.5 + 0.001;
    }
  }
}

proc fill(real q[n], int n, real v) {
  do j = 1, n label 5 {
    q[j] = v;
  }
}

proc push1() {
  real scr[20];
  int l1;
  int l2;
  do b = 1, NB label 10 {
    l1 = lo_of[b];
    l2 = hi_of[b];
    call fill(scr[2], l2 - 1, 0.25);
    do i = 2, l2 label 11 {
      field[b, i] = field[b, i] + scr[i] * 0.1;
    }
  }
  print scr[1];
}

proc push2() {
  real scr[20];
  int l1;
  int l2;
  do b = 1, NB label 20 {
    l1 = lo_of[b];
    l2 = hi_of[b];
    call fill(scr[2], l2 - 1, 0.5);
    do i = 2, l2 label 21 {
      charge[b, i] = charge[b, i] + scr[i] * 0.05;
    }
  }
  print scr[1];
}

proc push3() {
  real scr[20];
  int l1;
  int l2;
  do b = 1, NB label 30 {
    l1 = lo_of[b];
    l2 = hi_of[b];
    call fill(scr[2], l2 - 1, 0.75);
    do i = 2, l2 label 31 {
      field[b, i] = field[b, i] * 0.999 + scr[i] * charge[b, i] * 0.01;
    }
  }
  print scr[1];
}

proc main() {
  do b = 1, NB label 1 {
    do i = 1, 20 label 2 {
      field[b, i] = 0.1;
      charge[b, i] = 0.2;
    }
  }
  do m = 1, NM label 3 {
    emesh[m] = real(m) * 0.001;
  }
  do step = 1, NSTEPS label 100 {
    call solve();
    call push1();
    call push2();
    call push3();
    print field[3, 3] + emesh[9];
  }
}
)";
}  // namespace

const BenchProgram& wave5() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "wave5";
    p.description = "Maxwell's equations / particle push (SPEC95)";
    p.source = kWave5Source;
    std::vector<double> lo, hi;
    for (int i = 0; i < 8; ++i) {
      lo.push_back(2 + (i * 3) % 4);
      hi.push_back(8 + (i * 5) % 5);
    }
    p.inputs.arrays["lo_of"] = lo;
    p.inputs.arrays["hi_of"] = hi;
    p.paper_lines = 7764;
    p.data_set = "SPEC ref";
    return p;
  }();
  return prog;
}

}  // namespace suifx::benchsuite
