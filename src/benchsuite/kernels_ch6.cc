// Chapter 6 reduction kernels: SPEC92 / NAS / Perfect Club flavored programs
// exercising every reduction class of §6.1 — scalar, regular array region,
// sparse (index-array) and interprocedural — plus the region-minimization
// case of §6.3.3.
#include <set>

#include "benchsuite/suite.h"

namespace suifx::benchsuite {

namespace {

// NAS EP ("embar"): pseudo-random pair acceptance with a histogram indexed
// by a computed (non-affine) bin — a sparse reduction — plus scalar sums.
const char* kEmbarSource = R"(
program embar;
param NPAIR = 4000;
global real xs[4000] input;
global real ys[4000] input;
global real q[10];
global real sx;
global real sy;

proc main() {
  real t;
  int bin;
  sx = 0.0;
  sy = 0.0;
  do i = 1, NPAIR label 10 {
    t = xs[i] * xs[i] + ys[i] * ys[i];
    if (t <= 1.0) {
      sx = sx + xs[i];
      sy = sy + ys[i];
      bin = 1 + int(t * 9.0);
      q[bin] = q[bin] + 1.0;
    }
  }
  print sx + sy;
  do b = 1, 10 label 20 {
    print q[b];
  }
}
)";

// Perfect Club bdna: commutative updates through an index array (§6.4.2) and
// a dense force reduction touching only FAX(1:NATOMS) of a 2000-element
// array — the §6.3.3 region-minimization example.
const char* kBdnaSource = R"(
program bdna;
param L = 3000;
param NSP = 6;
param NATOMS = 200;
global int ind[3000] input;
global real foxp[3000] input;
global real fox[600];
global real fax[2000];
global real wk[3000] input;

proc main() {
  do j = 1, L label 10 {
    fox[ind[j]] = fox[ind[j]] + foxp[j];
  }
  do i = 1, NSP label 20 {
    do ia = 1, NATOMS label 21 {
      fax[ia] = fax[ia] + wk[ia + i] * 0.01;
    }
  }
  print fox[5] + fax[7];
}
)";

// Perfect Club dyfesm: the reduction statement lives in a callee — an
// interprocedural reduction (§6.2.2.4).
const char* kDyfesmSource = R"(
program dyfesm;
param NELT = 2500;
param NDOF = 16;
global real force[16];
global real strain[2500] input;

proc addfrc(int j, real x) {
  force[j] = force[j] + x;
}

proc main() {
  do e = 1, NELT label 10 {
    call addfrc(1 + e % NDOF, strain[e] * 0.5);
  }
  do j = 1, NDOF label 20 {
    print force[j];
  }
}
)";

// SPEC su2cor: regular array-region reduction B(J) += A(I,J) under a coarse
// outer loop (§6.1.2).
const char* kSu2corSource = R"(
program su2cor;
param NI = 400;
param NJ = 12;
global real a[400, 12] input;
global real b[12];

proc main() {
  do i = 1, NI label 10 {
    do j = 1, NJ label 20 {
      b[j] = b[j] + a[i, j];
    }
  }
  do j = 1, NJ label 30 {
    print b[j];
  }
}
)";

// SPEC tomcatv: MAX reductions over residuals via guarded assignment.
const char* kTomcatvSource = R"(
program tomcatv;
param N = 60;
param NSTEP = 3;
global real rx[62, 62];
global real ry[62, 62];

proc main() {
  real rxm;
  real rym;
  do j = 1, N label 1 {
    do i = 1, N label 2 {
      rx[i, j] = abs(real(i - j)) * 0.01;
      ry[i, j] = abs(real(i + j - N)) * 0.02;
    }
  }
  do step = 1, NSTEP label 100 {
    rxm = 0.0;
    rym = 0.0;
    do j = 2, N - 1 label 10 {
      do i = 2, N - 1 label 11 {
        if (rx[i, j] > rxm) { rxm = rx[i, j]; }
        if (ry[i, j] > rym) { rym = ry[i, j]; }
      }
    }
    do j = 2, N - 1 label 20 {
      do i = 2, N - 1 label 21 {
        rx[i, j] = rx[i, j] * 0.98;
        ry[i, j] = ry[i, j] * 0.97;
      }
    }
    print rxm + rym;
  }
}
)";

// SPEC ora: ray tracing through optical surfaces — scalar sum and product
// reductions in one coarse loop.
const char* kOraSource = R"(
program ora;
param NRAY = 6000;
global real angle[6000] input;

proc main() {
  real suma;
  real prod;
  suma = 0.0;
  prod = 1.0;
  do r = 1, NRAY label 10 {
    suma = suma + sqrt(abs(angle[r]) + 0.5);
    prod = prod * (1.0 + angle[r] * 0.0001);
  }
  print suma;
  print prod;
}
)";

}  // namespace

const BenchProgram& kernel_embar() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "embar";
    p.description = "NAS EP: histogram + scalar sums";
    p.source = kEmbarSource;
    p.paper_lines = 265;
    p.data_set = "2^24 pairs";
    return p;
  }();
  return prog;
}

const BenchProgram& kernel_bdna() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "bdna";
    p.description = "Perfect: nucleic-acid simulation, indirect reductions";
    p.source = kBdnaSource;
    std::vector<double> ind;
    for (int j = 0; j < 3000; ++j) ind.push_back(1 + (j * 37) % 600);
    p.inputs.arrays["ind"] = ind;
    p.paper_lines = 3980;
    p.data_set = "Perfect ref";
    return p;
  }();
  return prog;
}

const BenchProgram& kernel_dyfesm() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "dyfesm";
    p.description = "Perfect: finite-element dynamics, interprocedural reduction";
    p.source = kDyfesmSource;
    p.paper_lines = 7608;
    p.data_set = "Perfect ref";
    return p;
  }();
  return prog;
}

const BenchProgram& kernel_su2cor() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "su2cor";
    p.description = "SPEC: quark-gluon correlation, array-region reductions";
    p.source = kSu2corSource;
    p.paper_lines = 2514;
    p.data_set = "SPEC ref";
    return p;
  }();
  return prog;
}

const BenchProgram& kernel_tomcatv() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "tomcatv";
    p.description = "SPEC: mesh generation, MAX reductions";
    p.source = kTomcatvSource;
    p.paper_lines = 195;
    p.data_set = "SPEC ref";
    return p;
  }();
  return prog;
}

const BenchProgram& kernel_ora() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "ora";
    p.description = "SPEC: optical ray tracing, scalar sum/product reductions";
    p.source = kOraSource;
    p.paper_lines = 535;
    p.data_set = "SPEC ref";
    return p;
  }();
  return prog;
}

std::vector<const BenchProgram*> explorer_suite() {
  return {&mdg(), &arc3d(), &hydro(), &flo88()};
}

std::vector<const BenchProgram*> liveness_suite() {
  return {&hydro(), &flo88(), &arc3d(), &wave5(), &hydro2d()};
}

std::vector<const BenchProgram*> reduction_suite() {
  // The twelve reduction-impacted programs (Fig 6-5's count).
  return {&mdg(),           &kernel_embar(),   &kernel_bdna(),
          &kernel_dyfesm(), &kernel_su2cor(),  &kernel_tomcatv(),
          &kernel_ora(),    &kernel_arc2d(),   &kernel_adm(),
          &kernel_qcd(),    &kernel_trfd(),    &kernel_mg3d()};
}

std::vector<const BenchProgram*> full_suite() {
  std::vector<const BenchProgram*> out;
  std::set<std::string> seen;  // the suites overlap; dedupe by name
  for (const auto& suite : {explorer_suite(), liveness_suite(), reduction_suite()}) {
    for (const BenchProgram* bp : suite) {
      if (seen.insert(bp->name).second) out.push_back(bp);
    }
  }
  return out;
}

}  // namespace suifx::benchsuite
