// mdg and arc3d recreations (Chapter 4 study).
#include "benchsuite/suite.h"

namespace suifx::benchsuite {

// ---------------------------------------------------------------------------
// mdg: molecular dynamics of water molecules (Perfect Club). The heart is
// interf/1000 — a triangular pair loop whose RL working array is written
// under one condition and read under a stronger one (Fig 4-3): statically
// unresolvable, dynamically clean, privatizable only with the user's
// assertion. Forces accumulate through array reductions; the virial and
// potential energy through scalar reductions.
// ---------------------------------------------------------------------------

namespace {
const char* kMdgSource = R"(
program mdg;
param NMOL = 56;
param NSTEPS = 3;
global real xm[168];
global real vel[168];
global real fx[56];
global real fy[56];
global real fz[56];
global real cut2 input;
global real vir;
global real epot;

proc initia() {
  do i = 1, NMOL label 100 {
    xm[i] = real(i) * 0.37;
    xm[NMOL + i] = real(i) * 0.11;
    xm[2 * NMOL + i] = real(i) * 0.53;
  }
  do i = 1, 3 * NMOL label 110 {
    vel[i] = 0.0;
  }
  do i = 1, NMOL label 120 {
    fx[i] = 0.0;
    fy[i] = 0.0;
    fz[i] = 0.0;
  }
}

// Computes the nine pair distances into r_out[1:9] (must-write).
proc dist(real xi, real xj, real r_out[9]) {
  do k = 1, 9 label 10 {
    r_out[k] = abs(xi - xj) * 0.1 + real(k) * 0.01;
  }
}

proc intraf() {
  // Intra-molecular springs: independent per molecule.
  do i = 1, NMOL label 200 {
    fx[i] = fx[i] + (xm[i] - xm[NMOL + i]) * 0.002;
    fy[i] = fy[i] + (xm[NMOL + i] - xm[2 * NMOL + i]) * 0.002;
    fz[i] = fz[i] + (xm[2 * NMOL + i] - xm[i]) * 0.002;
  }
}

proc interf() {
  real rs[9];
  real rl[14];
  int kc;
  do i = 1, NMOL label 1000 {
    do j = 1, NMOL label 1100 {
      if (j != i) {
      call dist(xm[i], xm[j], rs[1]);
      kc = 0;
      do k = 1, 9 label 1110 {
        if (rs[k] > cut2) { kc = kc + 1; }
      }
      if (kc != 9) {
        do k = 2, 5 label 1130 {
          if (rs[k + 4] <= cut2) {
            rl[k + 4] = rs[k] * 2.0 - rs[k + 4];
          }
        }
        if (kc == 0) {
          do k = 11, 14 label 1140 {
            vir = vir + rl[k - 5] * 0.25;
          }
        }
        fx[i] = fx[i] + rs[1] * 0.5;
        fy[i] = fy[i] + rs[2] * 0.5;
        fz[i] = fz[i] + rs[3] * 0.5;
        epot = epot + (rs[1] + rs[5] - rs[9]) * 0.5;
      }
      }
    }
  }
}

proc update() {
  do i = 1, NMOL label 300 {
    vel[i] = vel[i] + fx[i] * 0.01;
    vel[NMOL + i] = vel[NMOL + i] + fy[i] * 0.01;
    vel[2 * NMOL + i] = vel[2 * NMOL + i] + fz[i] * 0.01;
    xm[i] = xm[i] + vel[i] * 0.01;
    xm[NMOL + i] = xm[NMOL + i] + vel[NMOL + i] * 0.01;
    xm[2 * NMOL + i] = xm[2 * NMOL + i] + vel[2 * NMOL + i] * 0.01;
  }
}

proc kineti() {
  real sum;
  sum = 0.0;
  do i = 1, 3 * NMOL label 400 {
    sum = sum + vel[i] * vel[i];
  }
  epot = epot + sum * 0.5;
}

proc main() {
  call initia();
  do step = 1, NSTEPS label 999 {
    vir = 0.0;
    epot = 0.0;
    call intraf();
    call interf();
    call update();
    call kineti();
    print epot + vir;
  }
}
)";
}  // namespace

const BenchProgram& mdg() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "mdg";
    p.description = "molecular dynamics model (Perfect Club)";
    p.source = kMdgSource;
    p.inputs.scalars["cut2"] = 0.35;
    p.user_input = {{"interf/1000", "interf.rl", UserAssertion::Kind::Privatize}};
    p.paper_lines = 1238;
    p.data_set = "1029x1029";
    return p;
  }();
  return prog;
}

// ---------------------------------------------------------------------------
// arc3d: 3-D Euler solver (NASA Ames). The stepf3d loops initialize a scalar
// under a case-style conditional chain that covers the whole iteration space
// (§4.4.1): statically the scalar looks upward-exposed, so the loops need
// the user's privatization assertions for SN-like scalars.
// ---------------------------------------------------------------------------

namespace {
const char* kArc3dSource = R"(
program arc3d;
param LM = 40;
param JM = 40;
param NSTEPS = 2;
global real q[40, 40];
global real work[5, 40];
global real resid[40, 40];
global real coef[40] input;
global int jmx input;
global real scr3[40, 40];

proc initia() {
  do l = 1, LM label 10 {
    do j = 1, JM label 20 {
      q[l, j] = real(l) * 0.01 + real(j) * 0.003;
      resid[l, j] = 0.0;
    }
  }
}

proc filter3d() {
  // Wave-front smoothing: a genuine carried dependence on the sweep
  // direction keeps the outer loop sequential (the one important loop of
  // arc3d that stays sequential, Fig 4-7's "remaining" row); the inner
  // sweep parallelizes but is fine-grained.
  do l = 3, LM - 2 label 701 {
    do j = 1, 6 label 100 {
      resid[l, j] = q[l - 2, j] - 4.0 * q[l - 1, j] + 6.0 * q[l, j]
                  - 4.0 * q[l + 1, j] + q[l + 2, j] + resid[l - 1, j] * 0.1;
    }
  }
}

proc stepf3d() {
  real sn;
  real tmp[40];
  do l = 2, LM label 701 {
    do n = 3, 5 label 300 {
      if (n == 3) { sn = coef[l] * 0.1; }
      if (n == 4) { sn = coef[l] * 0.2; }
      if (n == 5) { sn = coef[l] * 0.3; }
      work[n, l] = sn * 2.0;
      do j = 1, JM label 301 {
        resid[l, j] = resid[l, j] + sn * q[l, j] * 0.001;
      }
    }
  }
  do l = 2, LM label 702 {
    do n = 3, 5 label 310 {
      if (n == 3) { sn = coef[l] + 1.0; }
      if (n == 4) { sn = coef[l] + 2.0; }
      if (n == 5) { sn = coef[l] + 3.0; }
      work[n, l] = work[n, l] + sn;
      do j = 1, JM label 311 {
        q[l, j] = q[l, j] + sn * 0.0001 + sqrt(abs(resid[l, j])) * 0.001;
      }
    }
  }
  do l = 2, LM label 801 {
    do j = 1, jmx label 320 {
      tmp[j] = resid[l, j] * 0.5;
    }
    do j = 1, JM label 330 {
      q[l, j] = q[l, j] + tmp[j] + work[4, l] * 0.001;
    }
  }
}

// Write-overwrite-read chain for the liveness study.
proc ascratch() {
  do l = 1, LM label 900 {
    do j = 1, JM label 901 {
      scr3[l, j] = q[l, j] * 0.5;
    }
  }
  do l = 1, LM label 910 {
    do j = 1, JM label 911 {
      scr3[l, j] = resid[l, j] * 0.25;
    }
  }
  do l = 1, LM label 920 {
    do j = 1, JM label 921 {
      q[l, j] = q[l, j] + scr3[l, j] * 0.001;
    }
  }
}

proc main() {
  call initia();
  do step = 1, NSTEPS label 999 {
    call filter3d();
    call stepf3d();
    call ascratch();
    print q[3, 3];
  }
}
)";
}  // namespace

const BenchProgram& arc3d() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "arc3d";
    p.description = "3-D Euler equations solver (NASA Ames)";
    p.source = kArc3dSource;
    p.inputs.scalars["jmx"] = 40;  // jmx == JM, known only to the user
    p.user_input = {
        {"stepf3d/701", "stepf3d.sn", UserAssertion::Kind::Privatize},
        {"stepf3d/702", "stepf3d.sn", UserAssertion::Kind::Privatize},
        {"stepf3d/801", "stepf3d.tmp", UserAssertion::Kind::Privatize},
    };
    p.paper_lines = 4053;
    p.data_set = "64x64x64";
    return p;
  }();
  return prog;
}

}  // namespace suifx::benchsuite
