// The alias-tier study program (docs/dataflow.md): a COMMON block whose
// overlaid scratch views force the Steensgaard tier to collapse the whole
// block into one blob — taking down an innocent, storage-disjoint member
// with them — which only the lazily-consulted Andersen tier can carve back
// out. Modeled on the turb3d/spec77-style "one big COMMON, many views"
// layout. Deliberately NOT part of full_suite(): the 17 golden-plan
// snapshots stay tier-independent; ext_dataflow and the alias-tier tests
// iterate alias_suite() instead.
#include "benchsuite/suite.h"

namespace suifx::benchsuite {

namespace {

// Block layout (element offsets):
//   a @ 0,   120 elems  \ overlap: Steensgaard unifies the whole block,
//   b @ 0,    80 elems  / so c joins the blob despite being disjoint
//   c @ 200, 100 elems  — tier-1 carve-out target
//
// Loop relax/10 writes c[j] and reads a[j]: at tier 0 both sides land in the
// blob class, so the write looks like a carried dependence on the class and
// the loop stays serial. The Andersen tier proves c's storage disjoint from
// every other view of the block (including the 3-deep formal chain below,
// whose views are fully inside c), re-plans the loop, and gets a DOALL.
const char* kCsplitSource = R"(
program csplit;
param N = 100;
global real seed[100] input;

proc stir() {
  common turb @ 0 real a[120];
  common turb @ 0 real b[80];
  do i = 1, N label 20 {
    a[i] = a[i] * 0.5 + b[i] * 0.25 + 0.001;
  }
}

proc damp3(real z[100]) {
  do k = 1, N label 43 {
    z[k] = z[k] * 0.75 + 0.125;
  }
}

proc damp2(real y[100]) {
  call damp3(y);
}

proc damp1(real x[100]) {
  call damp2(x);
}

proc relax() {
  common turb @ 0 real a[120];
  common turb @ 200 real c[100];
  do j = 1, N label 10 {
    c[j] = a[j] * 0.5 + seed[j];
  }
}

proc main() {
  common turb @ 0 real a[120];
  common turb @ 200 real c[100];
  do i = 1, N label 1 {
    a[i] = seed[i] * 0.3;
  }
  call stir();
  call relax();
  call damp1(c);
  print a[7] + c[7];
}
)";

}  // namespace

const BenchProgram& alias_csplit() {
  static const BenchProgram prog = [] {
    BenchProgram p;
    p.name = "csplit";
    p.description = "COMMON overlay blob with a storage-disjoint member (alias-tier study)";
    p.source = kCsplitSource;
    std::vector<double> seed;
    for (int i = 0; i < 100; ++i) seed.push_back(0.5 + (i % 7) * 0.125);
    p.inputs.arrays["seed"] = seed;
    p.data_set = "synthetic";
    return p;
  }();
  return prog;
}

std::vector<const BenchProgram*> alias_suite() { return {&alias_csplit()}; }

}  // namespace suifx::benchsuite
