#include "polyhedra/section.h"

#include <sstream>

#include "polyhedra/polycache.h"

namespace suifx::poly {

namespace {
/// Part budget per section list; beyond this, parts are merged by weakening.
constexpr int kMaxParts = 10;

/// Element-wise same-node equality. Lists built from the same shared nodes
/// denote the same union, so uniting them is a no-op; the dataflow clients
/// re-join unchanged summaries constantly, which made this the hottest
/// SectionList path by far.
bool same_parts(const std::vector<LinSystem>& a,
                const std::vector<LinSystem>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].same_node(b[i])) return false;
  }
  return true;
}
}  // namespace

SectionList SectionList::single(LinSystem s) {
  SectionList out;
  out.add(std::move(s));
  return out;
}

bool SectionList::empty() const {
  for (const LinSystem& p : parts_) {
    if (!cache::is_empty(p)) return false;
  }
  return true;
}

LinSystem SectionList::weaken_union(const LinSystem& a, const LinSystem& b) {
  // A convex superset of a ∪ b: the constraints of `a` that also hold over
  // all of `b`. (The "conservative and avoids expensive calculations"
  // intersection-style operator of §5.2.1.)
  LinSystem out;
  for (const Constraint& con : a.constraints()) {
    LinSystem test;
    if (con.is_eq) {
      test.add_eq(con.expr);
    } else {
      test.add_ge(con.expr);
    }
    if (cache::contains(test, b)) {
      if (con.is_eq) out.add_eq(con.expr);
      else out.add_ge(con.expr);
    }
  }
  return out;
}

void SectionList::add(LinSystem s) {
  if (cache::is_empty(s)) return;
  for (const LinSystem& p : parts_) {
    if (cache::contains(p, s)) return;  // already covered
  }
  if (static_cast<int>(parts_.size()) >= kMaxParts) {
    // Merge into the last part by weakening (still a superset of the union).
    LinSystem merged = weaken_union(parts_.back(), s);
    parts_.back() = std::move(merged);
    return;
  }
  parts_.push_back(std::move(s));
}

void SectionList::unite(const SectionList& o) {
  if (o.parts_.empty() || same_parts(parts_, o.parts_)) return;
  if (parts_.empty()) {
    // Wholesale adoption preserves o's invariants (its parts went through
    // its own add() calls) and skips every containment probe.
    parts_ = o.parts_;
    return;
  }
  for (const LinSystem& p : o.parts_) add(p);
}

void SectionList::unite(SectionList&& o) {
  if (!o.parts_.empty() && !same_parts(parts_, o.parts_)) {
    if (parts_.empty()) {
      parts_ = std::move(o.parts_);
    } else {
      for (LinSystem& p : o.parts_) add(std::move(p));
    }
  }
  o.parts_.clear();
}

SectionList SectionList::intersect(const SectionList& a, const SectionList& b) {
  SectionList out;
  for (const LinSystem& pa : a.parts_) {
    for (const LinSystem& pb : b.parts_) {
      LinSystem i = cache::intersect(pa, pb);
      if (!cache::is_empty(i)) out.add(std::move(i));
    }
  }
  return out;
}

bool SectionList::disjoint_from(const SectionList& o) const {
  for (const LinSystem& pa : parts_) {
    for (const LinSystem& pb : o.parts_) {
      if (!cache::is_empty(cache::intersect(pa, pb))) return false;
    }
  }
  return true;
}

SectionList SectionList::minus_contained(const SectionList& must) const {
  if (must.parts_.empty()) return *this;  // nothing can kill a part
  SectionList out;
  for (const LinSystem& p : parts_) {
    bool killed = false;
    for (const LinSystem& m : must.systems()) {
      if (cache::contains(m, p)) {
        killed = true;
        break;
      }
    }
    if (!killed) out.add(p);
  }
  return out;
}

SectionList SectionList::subtract(const SectionList& other) const {
  return cache::subtract(*this, other);
}

SectionList SectionList::subtract_uncached(const SectionList& other) const {
  std::vector<LinSystem> work = parts_;
  for (const LinSystem& b : other.systems()) {
    std::vector<LinSystem> next;
    next.reserve(work.size());
    for (const LinSystem& a : work) {
      if (cache::contains(b, a)) continue;  // fully removed
      if (cache::is_empty(cache::intersect(a, b))) {
        next.push_back(a);  // untouched
        continue;
      }
      // a ∧ ¬b: one piece per violated constraint of b.
      for (const Constraint& con : b.constraints()) {
        if (con.is_eq) {
          for (long dir : {+1L, -1L}) {
            LinSystem piece = a;
            LinearExpr e = con.expr;
            e *= dir;
            e.c -= 1;
            piece.add_ge(std::move(e));  // dir*expr >= 1
            if (!cache::is_empty(piece)) next.push_back(std::move(piece));
          }
        } else {
          LinSystem piece = a;
          LinearExpr e = con.expr;
          e *= -1;
          e.c -= 1;
          piece.add_ge(std::move(e));  // expr <= -1
          if (!cache::is_empty(piece)) next.push_back(std::move(piece));
        }
      }
    }
    work = std::move(next);
  }
  SectionList out;
  for (LinSystem& sys : work) out.add(std::move(sys));
  return out;
}

bool SectionList::covers(const LinSystem& sys) const {
  for (const LinSystem& p : parts_) {
    if (cache::contains(p, sys)) return true;
  }
  return false;
}

bool SectionList::covers_all(const SectionList& o) const {
  return cache::covers_all(*this, o);
}

bool SectionList::covers_all_uncached(const SectionList& o) const {
  for (const LinSystem& p : o.parts_) {
    if (!covers(p)) return false;
  }
  return true;
}

SectionList SectionList::project_out(SymId s) const {
  SectionList out;
  for (const LinSystem& p : parts_) out.add(cache::project_out(p, s));
  return out;
}

SectionList SectionList::project_out_if(const std::function<bool(SymId)>& pred) const {
  SectionList out;
  for (const LinSystem& p : parts_) {
    // Same elimination sequence as LinSystem::project_out_if, but each step
    // goes through the memo table.
    LinSystem cur = p;
    for (SymId s : p.symbols()) {
      if (pred(s)) cur = cache::project_out(cur, s);
    }
    out.add(std::move(cur));
  }
  return out;
}

SectionList SectionList::substitute(SymId s, const LinearExpr& e) const {
  SectionList out;
  for (const LinSystem& p : parts_) out.add(p.substitute(s, e));
  return out;
}

SectionList SectionList::rename(const SymMap& m) const {
  SectionList out;
  for (const LinSystem& p : parts_) out.add(p.rename(m));
  return out;
}

std::string SectionList::str(const ir::Program* prog) const {
  if (parts_.empty()) return "{}";
  std::ostringstream os;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) os << " U ";
    os << parts_[i].str(prog);
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// ArraySummary
// ---------------------------------------------------------------------------

ArraySummary ArraySummary::meet(const ArraySummary& a, const ArraySummary& b) {
  ArraySummary out;
  out.R = a.R;
  out.R.unite(b.R);
  out.E = a.E;
  out.E.unite(b.E);
  out.W = a.W;
  out.W.unite(b.W);
  // Must-writes only survive when written on both paths. Also fold each
  // side's must-writes into the other's may-writes so no write is lost.
  out.M = SectionList::intersect(a.M, b.M);
  out.W.unite(a.M.minus_contained(out.M));
  out.W.unite(b.M.minus_contained(out.M));
  return out;
}

ArraySummary ArraySummary::compose(const ArraySummary& node, const ArraySummary& after) {
  ArraySummary out;
  out.R = node.R;
  out.R.unite(after.R);
  out.E = node.E;
  out.E.unite(after.E.minus_contained(node.M));
  out.W = node.W;
  out.W.unite(after.W);
  out.M = node.M;
  out.M.unite(after.M);
  return out;
}

ArraySummary ArraySummary::project_out_if(const std::function<bool(SymId)>& pred) const {
  ArraySummary out;
  out.R = R.project_out_if(pred);
  out.E = E.project_out_if(pred);
  out.W = W.project_out_if(pred);
  // Projecting the loop index out of M unions the per-iteration must-writes.
  // Under SF's full-trip DO semantics every iteration executes, so each such
  // element really is written: the union is a valid must-write of the whole
  // loop (the closure operator of Fig 5-2).
  out.M = M.project_out_if(pred);
  return out;
}

ArraySummary ArraySummary::rename(const SymMap& m) const {
  ArraySummary out;
  out.R = R.rename(m);
  out.E = E.rename(m);
  out.W = W.rename(m);
  out.M = M.rename(m);
  return out;
}

std::string ArraySummary::str(const ir::Program* prog) const {
  std::ostringstream os;
  os << "R=" << R.str(prog) << " E=" << E.str(prog) << " W=" << W.str(prog)
     << " M=" << M.str(prog);
  return os.str();
}

}  // namespace suifx::poly
