// Hash-consing and memoization for the polyhedral section algebra.
//
// Every analysis (array dataflow, liveness, dependence testing, the slicer)
// bottoms out in LinSystem::intersect/contains/project_out and the
// SectionList set algebra, and the same small systems recur constantly: loop
// bounds, array extents, localized summaries. Two layers exploit that:
//
//  * PolyInterner — a sharded hash-consing table mapping each canonical
//    LinSystem to one immutable shared node with a unique 64-bit id.
//    Structural equality of interned systems is id equality; copies are
//    refcount bumps. Ids embed an epoch in the high 16 bits so clear() can
//    never alias a stale id with a fresh one.
//
//  * The op cache (cache::*) — sharded, thread-safe memo tables for the
//    expensive operations, keyed on intern ids. Because LinSystems are
//    immutable behind their nodes and ops are deterministic functions of the
//    canonical form, entries never need invalidation: a hit is always the
//    byte-identical result the raw op would recompute. One global instance
//    is shared by all of the parallel Driver's workers (the read-mostly
//    shared-cache structure of Monniaux's parallel Astrée).
//
// Counters land in support::Metrics (poly.<op>.hit / .miss,
// poly.cache.evict); miss paths open support::trace spans ("poly/<op>").
// Set SUIFX_POLY_CACHE=0 to disable memoization (raw ops still run; used by
// the equivalence tests and the bench's cold baseline).
#pragma once

#include <cstdint>

#include "polyhedra/section.h"

namespace suifx::poly {

/// Unique id of an interned canonical system: (epoch << 48) | counter.
/// Never 0. The universe has a fixed per-epoch id.
using InternId = uint64_t;

class PolyInterner {
 public:
  /// The process-wide table shared by every analysis thread.
  static PolyInterner& global();

  /// The id of `s`'s canonical form, interning it on first sight. O(1) on
  /// re-query (the id is cached in the shared node).
  InternId id(const LinSystem& s);

  /// A copy of `s` sharing the interned node (hash-consing: equal systems
  /// returned from here satisfy same_node()).
  LinSystem canonical(const LinSystem& s);

  /// Live canonical nodes currently stored.
  size_t size() const;

  /// Forget every node and bump the epoch: all previously issued ids become
  /// unmatchable, so callers holding them can never hit stale entries.
  void clear();

 private:
  PolyInterner() = default;
};

namespace cache {

/// Memoization toggle (default on; SUIFX_POLY_CACHE=0 overrides at first
/// use). When off, the cache::* wrappers run the raw ops directly.
bool enabled();
void set_enabled(bool on);

/// Drop every memo entry and interned node (epoch bump), zeroing nothing in
/// Metrics — counters are cumulative across resets.
void reset();

struct OpStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  double hit_rate() const {
    return hits + misses == 0 ? 0.0 : static_cast<double>(hits) / (hits + misses);
  }
};

struct Stats {
  OpStats is_empty, intersect, contains, project, subtract, covers_all;
  uint64_t evictions = 0;
  uint64_t interned = 0;  // live canonical nodes
  uint64_t hits() const {
    return is_empty.hits + intersect.hits + contains.hits + project.hits +
           subtract.hits + covers_all.hits;
  }
  uint64_t misses() const {
    return is_empty.misses + intersect.misses + contains.misses + project.misses +
           subtract.misses + covers_all.misses;
  }
  double hit_rate() const {
    uint64_t t = hits() + misses();
    return t == 0 ? 0.0 : static_cast<double>(hits()) / t;
  }
};
Stats stats();

/// Memoized counterparts of the raw ops. Each runs the documented semantic
/// fast paths first (no locks), then consults the memo table, then computes.
/// Results are interned, so a miss also warms the hash-consing table.
bool is_empty(const LinSystem& s);
LinSystem intersect(const LinSystem& a, const LinSystem& b);
bool contains(const LinSystem& a, const LinSystem& b);  // a ⊇ b
LinSystem project_out(const LinSystem& s, SymId sym);
SectionList subtract(const SectionList& a, const SectionList& b);
bool covers_all(const SectionList& a, const SectionList& b);

}  // namespace cache

}  // namespace suifx::poly
