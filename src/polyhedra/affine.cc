#include "polyhedra/affine.h"

namespace suifx::poly {

std::optional<LinearExpr> to_affine(const ir::Expr* e, const ScalarResolver& resolve) {
  using ir::ExprKind;
  switch (e->kind) {
    case ExprKind::IntConst:
      return LinearExpr::constant(e->ival);
    case ExprKind::VarRef:
      if (e->var->is_array()) return std::nullopt;
      if (e->var->elem != ir::ScalarType::Int) return std::nullopt;
      if (e->var->kind == ir::VarKind::SymParam) {
        return LinearExpr::var(scalar_sym(e->var));
      }
      return resolve(e->var);
    case ExprKind::Binary: {
      auto a = to_affine(e->a, resolve);
      if (!a) return std::nullopt;
      auto b = to_affine(e->b, resolve);
      if (!b) return std::nullopt;
      switch (e->bop) {
        case ir::BinOp::Add:
          *a += *b;
          return a;
        case ir::BinOp::Sub:
          *a -= *b;
          return a;
        case ir::BinOp::Mul:
          if (b->is_constant()) {
            *a *= b->c;
            return a;
          }
          if (a->is_constant()) {
            *b *= a->c;
            return b;
          }
          return std::nullopt;
        case ir::BinOp::Div:
          // Exact division by a constant that divides all coefficients.
          if (b->is_constant() && b->c != 0) {
            long d = b->c;
            for (const auto& [s, v] : a->terms) {
              if (v % d != 0) return std::nullopt;
            }
            if (a->c % d != 0) return std::nullopt;
            for (auto& [s, v] : a->terms) v /= d;
            a->c /= d;
            return a;
          }
          return std::nullopt;
        default:
          return std::nullopt;
      }
    }
    case ExprKind::Unary:
      if (e->uop == ir::UnOp::Neg) {
        auto a = to_affine(e->a, resolve);
        if (!a) return std::nullopt;
        *a *= -1;
        return a;
      }
      if (e->uop == ir::UnOp::IntCast) return to_affine(e->a, resolve);
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

std::optional<LinearExpr> params_only(const ir::Variable* v) {
  if (v->kind == ir::VarKind::SymParam) return LinearExpr::var(scalar_sym(v));
  return std::nullopt;
}

namespace {

/// Add declared bounds for dimension k of `var` when they are affine.
void add_dim_bounds(LinSystem* sys, const ir::Variable* var, int k,
                    const ScalarResolver& resolve) {
  const ir::Dim& d = var->dims[static_cast<size_t>(k)];
  auto lo = to_affine(d.lower, resolve);
  auto hi = to_affine(d.upper, resolve);
  if (lo) {
    LinearExpr e = LinearExpr::var(dim_sym(k));
    e -= *lo;
    sys->add_ge(std::move(e));
  }
  if (hi) {
    LinearExpr e = *hi;
    e -= LinearExpr::var(dim_sym(k));
    sys->add_ge(std::move(e));
  }
}

}  // namespace

LinSystem subscripts_to_section(const ir::Variable* var,
                                const std::vector<const ir::Expr*>& idx,
                                const ScalarResolver& resolve, bool* exact) {
  LinSystem sys;
  bool all_exact = true;
  for (int k = 0; k < static_cast<int>(idx.size()); ++k) {
    auto a = to_affine(idx[static_cast<size_t>(k)], resolve);
    if (a) {
      LinearExpr e = LinearExpr::var(dim_sym(k));
      e -= *a;
      sys.add_eq(std::move(e));
    } else {
      all_exact = false;
      add_dim_bounds(&sys, var, k, resolve);
    }
  }
  if (exact != nullptr) *exact = all_exact;
  return sys;
}

LinSystem whole_array_section(const ir::Variable* var, const ScalarResolver& resolve) {
  LinSystem sys;
  for (int k = 0; k < var->rank(); ++k) add_dim_bounds(&sys, var, k, resolve);
  return sys;
}

}  // namespace suifx::poly
