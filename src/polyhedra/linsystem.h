// Systems of integer linear inequalities — the array-section representation
// of §5.2.1/§2.4: "array regions are represented as sets of systems of linear
// inequalities, and general mathematical algorithms are used to precisely
// capture the data accesses".
//
// A LinSystem is a conjunction of constraints over a sparse set of symbolic
// columns (SymIds). Satisfiability and projection use Fourier–Motzkin
// elimination over rationals with exact integer tightening; all conservative
// bail-outs err toward "may be non-empty" / "not contained", which is the
// safe direction for dependence and liveness clients.
//
// Representation: every LinSystem holds its constraints in a *canonical
// form* — gcd-normalized (by add()), sorted by a fixed total order, and
// duplicate-free — behind a copy-on-write node shared by value copies.
// Canonicality makes structural equality coincide with normal-form equality,
// which is what the interning table and the memoized operation cache
// (polycache.h) key on: the structural hash is computed once per node and
// cached, equality is a pointer/hash fast path, and copying a system is a
// reference-count bump instead of a deep copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ir/ir.h"

namespace suifx::poly {

/// Global symbolic-column identifiers. Columns 0..kMaxRank-1 are reserved for
/// array dimension indices. A scalar program variable gets one symbol per
/// "generation" (the symbolic analysis bumps the generation at opaque
/// redefinitions), and each generation has a "primed" twin used as the
/// second-iteration copy in cross-iteration dependence systems.
using SymId = int;
inline constexpr int kMaxRank = 8;
inline constexpr int kMaxGens = 64;

inline SymId dim_sym(int k) { return k; }
inline bool is_dim_sym(SymId s) { return s < kMaxRank; }
SymId scalar_sym(const ir::Variable* v, int gen = 0);
SymId primed_sym(const ir::Variable* v, int gen = 0);
inline bool is_primed_sym(SymId s) { return s >= kMaxRank && ((s - kMaxRank) & 1) != 0; }
inline SymId prime_of(SymId s) { return s + 1; }
/// The variable id owning a scalar symbol (any generation).
int sym_var_id(SymId s);
/// Human-readable name for diagnostics.
std::string sym_name(SymId s, const ir::Program* prog);

/// An affine expression  sum(coef_i * sym_i) + c  over symbolic columns.
struct LinearExpr {
  std::vector<std::pair<SymId, long>> terms;  // sorted by SymId, coef != 0
  long c = 0;

  static LinearExpr constant(long v);
  static LinearExpr var(SymId s, long coef = 1);
  LinearExpr& operator+=(const LinearExpr& o);
  LinearExpr& operator-=(const LinearExpr& o);
  LinearExpr& operator*=(long k);
  bool is_constant() const { return terms.empty(); }
  bool involves(SymId s) const;
  std::string str(const ir::Program* prog = nullptr) const;
};

/// One linear constraint: expr == 0 (is_eq) or expr >= 0.
struct Constraint {
  LinearExpr expr;
  bool is_eq = false;
};

/// Fixed total order / equality over normalized constraints — the canonical
/// storage order inside a LinSystem (equalities first, then by term vector,
/// then by constant).
bool constraint_less(const Constraint& a, const Constraint& b);
bool constraint_equal(const Constraint& a, const Constraint& b);

/// A small sorted flat map SymId -> SymId used for constraint renames (primed
/// second-iteration copies, localization, dimension shifts). Rename maps are
/// tiny and consulted per term on hot dependence paths, where node-based
/// std::map lookups dominated the cost of small operations; this is a sorted
/// vector with binary search and identity fallback.
class SymMap {
 public:
  SymMap() = default;
  SymMap(std::initializer_list<std::pair<SymId, SymId>> init) {
    for (const auto& [from, to] : init) set(from, to);
  }

  /// Insert or overwrite the mapping from -> to.
  void set(SymId from, SymId to);
  /// The image of `s` (identity when unmapped).
  SymId apply(SymId s) const;
  bool contains(SymId s) const;
  bool empty() const { return m_.empty(); }
  size_t size() const { return m_.size(); }
  const std::vector<std::pair<SymId, SymId>>& entries() const { return m_; }

 private:
  std::vector<std::pair<SymId, SymId>> m_;  // sorted by .first, unique
};

/// A conjunction of linear constraints (a convex polyhedron of integer
/// points). The empty constraint list is the universe.
///
/// Value semantics with a shared immutable node: copies are O(1) and share
/// storage until one side mutates (copy-on-write). The node caches the
/// structural hash and the interned id (polycache.h) so repeated hashing /
/// interning of the same system is free.
class LinSystem {
 public:
  LinSystem() = default;

  static LinSystem universe() { return {}; }
  /// A system containing a single trivially false constraint.
  static LinSystem bottom();

  void add_eq(LinearExpr e);       // e == 0
  void add_ge(LinearExpr e);       // e >= 0
  /// lo <= sym <= hi with affine bounds.
  void add_range(SymId s, const LinearExpr& lo, const LinearExpr& hi);

  const std::vector<Constraint>& constraints() const {
    static const std::vector<Constraint> kNone;
    return rep_ ? rep_->cons : kNone;
  }
  int size() const { return static_cast<int>(constraints().size()); }
  bool trivially_true() const { return constraints().empty(); }
  /// The canonical bottom: exactly the single ground contradiction that
  /// add() normalizes every contradiction into. O(1).
  bool is_false() const;

  /// Structural hash of the canonical constraint list; computed once per
  /// shared node and cached. Never zero.
  uint64_t hash() const;
  /// Structural equality of canonical forms: pointer fast path, then hash
  /// fast path, then constraint-wise compare. Because the stored form is
  /// canonical, this coincides with normal-form equality.
  bool operator==(const LinSystem& o) const;
  bool operator!=(const LinSystem& o) const { return !(*this == o); }
  /// Do the two systems share one physical node (hash-consing witness)?
  bool same_node(const LinSystem& o) const { return rep_ == o.rep_; }

  /// All SymIds mentioned with nonzero coefficient.
  std::vector<SymId> symbols() const;
  bool involves(SymId s) const;

  /// Rational Fourier–Motzkin satisfiability: returns true only when the
  /// system is provably integer-empty (rational emptiness implies integer
  /// emptiness); explosion bails out to false (may be non-empty). Cheap
  /// fast paths (universe, canonical bottom, single constraint, pairwise
  /// single-constraint contradiction) run before any elimination.
  bool is_empty() const;

  /// The node-cached emptiness verdict: -1 not yet decided, 0 non-empty,
  /// 1 empty. The memoized cache (polycache) checks it before interning so a
  /// repeat query on a shared node is one relaxed load, and seeds it via
  /// seed_empty() when the cross-node memo table already knows the answer.
  int8_t cached_empty() const;
  void seed_empty(bool empty) const;

  /// Conjunction of the two systems.
  static LinSystem intersect(const LinSystem& a, const LinSystem& b);

  /// Existentially project a symbol away (FM elimination; exact on the
  /// rational relaxation, conservative over integers — the projection is a
  /// superset of the true shadow, the safe direction for access summaries).
  LinSystem project_out(SymId s) const;
  LinSystem project_out_if(const std::function<bool(SymId)>& pred) const;

  /// Does every integer point of `other` satisfy this system? Sound: only
  /// answers true when provable. (Containment of convex systems via
  /// constraint-wise refutation.)
  bool contains(const LinSystem& other) const;

  /// Replace `s` by an affine expression not involving `s`.
  LinSystem substitute(SymId s, const LinearExpr& e) const;
  /// Rename symbols (ids absent from the map are unchanged).
  LinSystem rename(const SymMap& m) const;

  std::string str(const ir::Program* prog = nullptr) const;

 private:
  friend class PolyInterner;

  struct Rep {
    std::vector<Constraint> cons;
    /// Cached structural hash; 0 = not yet computed.
    mutable std::atomic<uint64_t> hash{0};
    /// Cached intern id (PolyInterner); 0 = not yet interned.
    mutable std::atomic<uint64_t> intern{0};
    /// Cached emptiness verdict: -1 unknown, 0 non-empty, 1 empty.
    mutable std::atomic<int8_t> empty{-1};

    Rep() = default;
    explicit Rep(std::vector<Constraint> c) : cons(std::move(c)) {}
    Rep(const Rep& o) : cons(o.cons) {}  // caches do not travel with clones
  };

  void add(Constraint c);
  /// Copy-on-write access: clones the node when shared, invalidates caches.
  Rep& mut();

  std::shared_ptr<Rep> rep_;  // null = universe (no constraints)
};

}  // namespace suifx::poly
