// Systems of integer linear inequalities — the array-section representation
// of §5.2.1/§2.4: "array regions are represented as sets of systems of linear
// inequalities, and general mathematical algorithms are used to precisely
// capture the data accesses".
//
// A LinSystem is a conjunction of constraints over a sparse set of symbolic
// columns (SymIds). Satisfiability and projection use Fourier–Motzkin
// elimination over rationals with exact integer tightening; all conservative
// bail-outs err toward "may be non-empty" / "not contained", which is the
// safe direction for dependence and liveness clients.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace suifx::poly {

/// Global symbolic-column identifiers. Columns 0..kMaxRank-1 are reserved for
/// array dimension indices. A scalar program variable gets one symbol per
/// "generation" (the symbolic analysis bumps the generation at opaque
/// redefinitions), and each generation has a "primed" twin used as the
/// second-iteration copy in cross-iteration dependence systems.
using SymId = int;
inline constexpr int kMaxRank = 8;
inline constexpr int kMaxGens = 64;

inline SymId dim_sym(int k) { return k; }
inline bool is_dim_sym(SymId s) { return s < kMaxRank; }
SymId scalar_sym(const ir::Variable* v, int gen = 0);
SymId primed_sym(const ir::Variable* v, int gen = 0);
inline bool is_primed_sym(SymId s) { return s >= kMaxRank && ((s - kMaxRank) & 1) != 0; }
inline SymId prime_of(SymId s) { return s + 1; }
/// The variable id owning a scalar symbol (any generation).
int sym_var_id(SymId s);
/// Human-readable name for diagnostics.
std::string sym_name(SymId s, const ir::Program* prog);

/// An affine expression  sum(coef_i * sym_i) + c  over symbolic columns.
struct LinearExpr {
  std::vector<std::pair<SymId, long>> terms;  // sorted by SymId, coef != 0
  long c = 0;

  static LinearExpr constant(long v);
  static LinearExpr var(SymId s, long coef = 1);
  LinearExpr& operator+=(const LinearExpr& o);
  LinearExpr& operator-=(const LinearExpr& o);
  LinearExpr& operator*=(long k);
  bool is_constant() const { return terms.empty(); }
  bool involves(SymId s) const;
  std::string str(const ir::Program* prog = nullptr) const;
};

/// One linear constraint: expr == 0 (is_eq) or expr >= 0.
struct Constraint {
  LinearExpr expr;
  bool is_eq = false;
};

/// A conjunction of linear constraints (a convex polyhedron of integer
/// points). The empty constraint list is the universe.
class LinSystem {
 public:
  LinSystem() = default;

  static LinSystem universe() { return {}; }
  /// A system containing a single trivially false constraint.
  static LinSystem bottom();

  void add_eq(LinearExpr e);       // e == 0
  void add_ge(LinearExpr e);       // e >= 0
  /// lo <= sym <= hi with affine bounds.
  void add_range(SymId s, const LinearExpr& lo, const LinearExpr& hi);

  const std::vector<Constraint>& constraints() const { return cons_; }
  int size() const { return static_cast<int>(cons_.size()); }
  bool trivially_true() const { return cons_.empty(); }

  /// All SymIds mentioned with nonzero coefficient.
  std::vector<SymId> symbols() const;
  bool involves(SymId s) const;

  /// Rational Fourier–Motzkin satisfiability: returns true only when the
  /// system is provably integer-empty (rational emptiness implies integer
  /// emptiness); explosion bails out to false (may be non-empty).
  bool is_empty() const;

  /// Conjunction of the two systems.
  static LinSystem intersect(const LinSystem& a, const LinSystem& b);

  /// Existentially project a symbol away (FM elimination; exact on the
  /// rational relaxation, conservative over integers — the projection is a
  /// superset of the true shadow, the safe direction for access summaries).
  LinSystem project_out(SymId s) const;
  LinSystem project_out_if(const std::function<bool(SymId)>& pred) const;

  /// Does every integer point of `other` satisfy this system? Sound: only
  /// answers true when provable. (Containment of convex systems via
  /// constraint-wise refutation.)
  bool contains(const LinSystem& other) const;

  /// Replace `s` by an affine expression not involving `s`.
  LinSystem substitute(SymId s, const LinearExpr& e) const;
  /// Rename symbols (ids absent from the map are unchanged).
  LinSystem rename(const std::map<SymId, SymId>& m) const;

  std::string str(const ir::Program* prog = nullptr) const;

 private:
  void add(Constraint c);
  std::vector<Constraint> cons_;
};

}  // namespace suifx::poly
