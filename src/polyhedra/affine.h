// Translation from IR expressions to affine LinearExprs over symbolic
// columns. The resolver decides how scalar variables are modeled: loop
// indices map to their own symbol, loop-invariant scalars either map to a
// symbol or to a known affine value supplied by the symbolic analysis (§2.4).
#pragma once

#include <functional>
#include <optional>

#include "ir/ir.h"
#include "polyhedra/linsystem.h"

namespace suifx::poly {

/// Maps a scalar variable reference to an affine expression, or nullopt when
/// the variable may not be modeled affinely in the current context.
using ScalarResolver =
    std::function<std::optional<LinearExpr>(const ir::Variable*)>;

/// Convert `e` to an affine expression. Integer constants, SymParams, and
/// resolver-approved scalars are affine; +, -, and multiplication by a
/// constant are folded. Returns nullopt for anything else (the caller then
/// falls back to a conservative whole-dimension section).
std::optional<LinearExpr> to_affine(const ir::Expr* e, const ScalarResolver& resolve);

/// The default resolver: SymParams become their scalar symbol; every other
/// scalar is rejected.
std::optional<LinearExpr> params_only(const ir::Variable* v);

/// Build the constraint system for one subscript list of `var`: for each
/// affine subscript k, dim_sym(k) == affine(idx_k); non-affine subscripts
/// contribute the declared dimension bounds instead (whole dimension).
/// Declared bounds are also added for affine dims when they are themselves
/// affine, keeping sections within the array box. Returns the section system
/// and reports via `exact` whether every subscript was affine.
LinSystem subscripts_to_section(const ir::Variable* var,
                                const std::vector<const ir::Expr*>& idx,
                                const ScalarResolver& resolve, bool* exact);

/// The whole-array section: every dimension spans its declared bounds
/// (bounds that are not affine over params are left unconstrained).
LinSystem whole_array_section(const ir::Variable* var, const ScalarResolver& resolve);

}  // namespace suifx::poly
