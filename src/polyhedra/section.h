// Array sections as finite unions of convex linear-inequality systems, plus
// the containment-based conservative set algebra used by the array data-flow
// analyses (§5.2.1). All approximation directions are documented at each
// operation; clients rely on: may-sets grow conservatively, must-sets shrink
// conservatively.
#pragma once

#include <string>
#include <vector>

#include "polyhedra/linsystem.h"

namespace suifx::poly {

class SectionList {
 public:
  SectionList() = default;

  static SectionList single(LinSystem s);

  bool empty() const;  // definitely no integer points
  int parts() const { return static_cast<int>(parts_.size()); }
  const std::vector<LinSystem>& systems() const { return parts_; }

  /// Add one convex part (skips parts already covered; merges by weakening
  /// when the part budget is exhausted — result only ever grows).
  void add(LinSystem s);
  void unite(const SectionList& o);
  /// Rvalue overload: steals `o`'s parts instead of copying them (the parts
  /// themselves are shared-node values, but moving skips refcount traffic).
  void unite(SectionList&& o);

  static SectionList intersect(const SectionList& a, const SectionList& b);

  /// True when provably no common integer point with `o` (sound: a false
  /// return means "may overlap").
  bool disjoint_from(const SectionList& o) const;

  /// The thesis-style conservative subtraction: drop parts fully contained in
  /// some part of `must`; the result is a superset of the exact difference.
  SectionList minus_contained(const SectionList& must) const;

  /// Exact convex-decomposition subtraction: A ∧ ¬B expanded constraint-wise
  /// (each part of `other` with k constraints splits a part into ≤ k+1
  /// pieces). Part-budget overflow degrades to a superset — still sound for
  /// exposed-read sets. Used by the §5.2.2.3 sharpening. Memoized at list
  /// granularity (polycache.h); `subtract_uncached` is the raw computation,
  /// kept public for the cache's miss path and the equivalence tests.
  SectionList subtract(const SectionList& other) const;
  SectionList subtract_uncached(const SectionList& other) const;

  /// Is `sys` provably covered by a single part? (Union-covering is not
  /// attempted — sound, may answer false.)
  bool covers(const LinSystem& sys) const;
  /// Every part of `o` covered by some part of this. Memoized at list
  /// granularity; `covers_all_uncached` is the raw computation.
  bool covers_all(const SectionList& o) const;
  bool covers_all_uncached(const SectionList& o) const;

  SectionList project_out(SymId s) const;
  SectionList project_out_if(const std::function<bool(SymId)>& pred) const;
  SectionList substitute(SymId s, const LinearExpr& e) const;
  SectionList rename(const SymMap& m) const;

  /// Keep only parts whose system still involves a dimension symbol or is
  /// the universe; used after projections to tidy summaries.
  std::string str(const ir::Program* prog = nullptr) const;

 private:
  static LinSystem weaken_union(const LinSystem& a, const LinSystem& b);
  std::vector<LinSystem> parts_;
};

/// Per-array access summary: the four-tuple <R, E, W, M> of §5.2.1 —
/// may-read, upwards-exposed read, may-write, must-write sections. The
/// systems constrain dim_sym(k) columns plus symbolic scalars/params.
struct ArraySummary {
  SectionList R;  // all sections that may have been read
  SectionList E;  // upwards-exposed read sections
  SectionList W;  // may-write sections (disjoint from M by convention)
  SectionList M;  // must-write sections

  /// Meet at control-flow joins:  <R1∪R2, E1∪E2, W1∪W2, M1∩M2>.
  static ArraySummary meet(const ArraySummary& a, const ArraySummary& b);

  /// Sequential composition: `node` executes before `after` (backward
  /// traversal transfer function of Fig 5-2):
  ///   <Rn∪R, En∪(E−Mn), Wn∪W, Mn∪M>.
  static ArraySummary compose(const ArraySummary& node, const ArraySummary& after);

  ArraySummary project_out_if(const std::function<bool(SymId)>& pred) const;
  ArraySummary rename(const SymMap& m) const;

  bool all_empty() const { return R.empty() && E.empty() && W.empty() && M.empty(); }
  std::string str(const ir::Program* prog = nullptr) const;
};

}  // namespace suifx::poly
