#include "polyhedra/linsystem.h"

#include <algorithm>
#include <iterator>
#include <numeric>
#include <sstream>

namespace suifx::poly {

namespace {

/// Max derived constraints before Fourier–Motzkin bails out conservatively.
constexpr size_t kFmLimit = 768;

bool mul_overflows(long a, long b) {
  __int128 p = static_cast<__int128>(a) * b;
  return p > INT64_MAX / 4 || p < INT64_MIN / 4;
}

long floor_div(long a, long b) {  // b > 0
  long q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

}  // namespace

SymId scalar_sym(const ir::Variable* v, int gen) {
  return kMaxRank + 2 * (v->id * kMaxGens + gen);
}
SymId primed_sym(const ir::Variable* v, int gen) { return scalar_sym(v, gen) + 1; }

int sym_var_id(SymId s) { return (s - kMaxRank) / 2 / kMaxGens; }

std::string sym_name(SymId s, const ir::Program* prog) {
  if (is_dim_sym(s)) return "d" + std::to_string(s);
  int vid = sym_var_id(s);
  int gen = ((s - kMaxRank) / 2) % kMaxGens;
  bool primed = is_primed_sym(s);
  std::string base = "v" + std::to_string(vid);
  if (prog != nullptr && vid < prog->num_vars()) {
    base = prog->variables()[static_cast<size_t>(vid)].name;
  }
  if (gen != 0) base += "#" + std::to_string(gen);
  return primed ? base + "'" : base;
}

// ---------------------------------------------------------------------------
// SymMap
// ---------------------------------------------------------------------------

void SymMap::set(SymId from, SymId to) {
  auto it = std::lower_bound(m_.begin(), m_.end(), from,
                             [](const auto& e, SymId s) { return e.first < s; });
  if (it != m_.end() && it->first == from) {
    it->second = to;
  } else {
    m_.insert(it, {from, to});
  }
}

SymId SymMap::apply(SymId s) const {
  auto it = std::lower_bound(m_.begin(), m_.end(), s,
                             [](const auto& e, SymId v) { return e.first < v; });
  return it != m_.end() && it->first == s ? it->second : s;
}

bool SymMap::contains(SymId s) const {
  auto it = std::lower_bound(m_.begin(), m_.end(), s,
                             [](const auto& e, SymId v) { return e.first < v; });
  return it != m_.end() && it->first == s;
}

// ---------------------------------------------------------------------------
// LinearExpr
// ---------------------------------------------------------------------------

LinearExpr LinearExpr::constant(long v) {
  LinearExpr e;
  e.c = v;
  return e;
}

LinearExpr LinearExpr::var(SymId s, long coef) {
  LinearExpr e;
  if (coef != 0) e.terms.push_back({s, coef});
  return e;
}

LinearExpr& LinearExpr::operator+=(const LinearExpr& o) {
  std::vector<std::pair<SymId, long>> merged;
  merged.reserve(terms.size() + o.terms.size());
  size_t i = 0, j = 0;
  while (i < terms.size() || j < o.terms.size()) {
    if (j >= o.terms.size() || (i < terms.size() && terms[i].first < o.terms[j].first)) {
      merged.push_back(terms[i++]);
    } else if (i >= terms.size() || o.terms[j].first < terms[i].first) {
      merged.push_back(o.terms[j++]);
    } else {
      long s = terms[i].second + o.terms[j].second;
      if (s != 0) merged.push_back({terms[i].first, s});
      ++i;
      ++j;
    }
  }
  terms = std::move(merged);
  c += o.c;
  return *this;
}

LinearExpr& LinearExpr::operator-=(const LinearExpr& o) {
  LinearExpr neg = o;
  neg *= -1;
  return *this += neg;
}

LinearExpr& LinearExpr::operator*=(long k) {
  if (k == 0) {
    terms.clear();
    c = 0;
    return *this;
  }
  for (auto& [s, v] : terms) v *= k;
  c *= k;
  return *this;
}

bool LinearExpr::involves(SymId s) const {
  for (const auto& [id, v] : terms) {
    if (id == s) return v != 0;
  }
  return false;
}

std::string LinearExpr::str(const ir::Program* prog) const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [s, v] : terms) {
    if (v >= 0 && !first) os << "+";
    if (v == -1) os << "-";
    else if (v != 1) os << v << "*";
    os << sym_name(s, prog);
    first = false;
  }
  if (c != 0 || first) {
    if (c >= 0 && !first) os << "+";
    os << c;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Constraint order & normalization
// ---------------------------------------------------------------------------

bool constraint_less(const Constraint& a, const Constraint& b) {
  if (a.is_eq != b.is_eq) return a.is_eq;  // equalities first
  if (a.expr.terms != b.expr.terms) return a.expr.terms < b.expr.terms;
  return a.expr.c < b.expr.c;
}

bool constraint_equal(const Constraint& a, const Constraint& b) {
  return a.is_eq == b.is_eq && a.expr.c == b.expr.c && a.expr.terms == b.expr.terms;
}

namespace {

long coef_of(const LinearExpr& e, SymId s) {
  for (const auto& [id, v] : e.terms) {
    if (id == s) return v;
  }
  return 0;
}

/// Remove the term for `s` from `e`.
LinearExpr drop_term(const LinearExpr& e, SymId s) {
  LinearExpr out;
  out.c = e.c;
  out.terms.reserve(e.terms.size());
  for (const auto& t : e.terms) {
    if (t.first != s) out.terms.push_back(t);
  }
  return out;
}

/// a*x + b*y with overflow check; returns nullopt on overflow.
std::optional<LinearExpr> combine(long a, const LinearExpr& x, long b, const LinearExpr& y) {
  for (const auto& [s, v] : x.terms) {
    if (mul_overflows(a, v)) return std::nullopt;
  }
  for (const auto& [s, v] : y.terms) {
    if (mul_overflows(b, v)) return std::nullopt;
  }
  if (mul_overflows(a, x.c) || mul_overflows(b, y.c)) return std::nullopt;
  LinearExpr xa = x;
  xa *= a;
  LinearExpr yb = y;
  yb *= b;
  xa += yb;
  return xa;
}

enum class Norm { Keep, TriviallyTrue, Contradiction };

/// Normalize: divide by the gcd of the coefficients; for inequalities, floor
/// the constant (integer tightening). Detects ground contradictions.
Norm normalize(Constraint& con) {
  long g = 0;
  for (const auto& [s, v] : con.expr.terms) g = std::gcd(g, std::abs(v));
  if (g == 0) {
    // Ground constraint.
    if (con.is_eq) return con.expr.c == 0 ? Norm::TriviallyTrue : Norm::Contradiction;
    return con.expr.c >= 0 ? Norm::TriviallyTrue : Norm::Contradiction;
  }
  if (g > 1) {
    for (auto& [s, v] : con.expr.terms) v /= g;
    if (con.is_eq) {
      if (con.expr.c % g != 0) return Norm::Contradiction;  // no integer solution
      con.expr.c /= g;
    } else {
      con.expr.c = floor_div(con.expr.c, g);
    }
  }
  return Norm::Keep;
}

}  // namespace

// ---------------------------------------------------------------------------
// LinSystem
// ---------------------------------------------------------------------------

LinSystem LinSystem::bottom() {
  LinSystem s;
  s.add_ge(LinearExpr::constant(-1));
  return s;
}

bool LinSystem::is_false() const {
  const auto& cons = constraints();
  return cons.size() == 1 && !cons[0].is_eq && cons[0].expr.terms.empty() &&
         cons[0].expr.c < 0;
}

LinSystem::Rep& LinSystem::mut() {
  if (!rep_) {
    rep_ = std::make_shared<Rep>();
  } else if (rep_.use_count() > 1) {
    rep_ = std::make_shared<Rep>(*rep_);  // clone drops the cached hash/id
  } else {
    rep_->hash.store(0, std::memory_order_relaxed);
    rep_->intern.store(0, std::memory_order_relaxed);
    rep_->empty.store(-1, std::memory_order_relaxed);
  }
  return *rep_;
}

void LinSystem::add(Constraint c) {
  switch (normalize(c)) {
    case Norm::TriviallyTrue:
      return;
    case Norm::Contradiction: {
      Rep& r = mut();
      r.cons.clear();
      r.cons.push_back({LinearExpr::constant(-1), false});
      return;
    }
    case Norm::Keep:
      break;
  }
  if (is_false()) return;  // already the canonical bottom: absorb everything
  Rep& r = mut();
  // Canonical form: keep the constraint vector sorted and duplicate-free.
  auto it = std::lower_bound(r.cons.begin(), r.cons.end(), c, constraint_less);
  if (it != r.cons.end() && constraint_equal(*it, c)) return;
  r.cons.insert(it, std::move(c));
}

void LinSystem::add_eq(LinearExpr e) { add({std::move(e), true}); }
void LinSystem::add_ge(LinearExpr e) { add({std::move(e), false}); }

void LinSystem::add_range(SymId s, const LinearExpr& lo, const LinearExpr& hi) {
  LinearExpr a = LinearExpr::var(s);
  a -= lo;
  add_ge(std::move(a));  // s - lo >= 0
  LinearExpr b = hi;
  b -= LinearExpr::var(s);
  add_ge(std::move(b));  // hi - s >= 0
}

uint64_t LinSystem::hash() const {
  if (!rep_ || rep_->cons.empty()) return 0x9e3779b97f4a7c15ULL;  // the universe
  uint64_t cached = rep_->hash.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const Constraint& con : rep_->cons) {
    mix(con.is_eq ? 0x7fu : 0x3u);
    mix(static_cast<uint64_t>(con.expr.c));
    for (const auto& [s, v] : con.expr.terms) {
      mix(static_cast<uint64_t>(s) + 1);
      mix(static_cast<uint64_t>(v));
    }
  }
  if (h == 0) h = 1;  // reserve 0 for "not computed"
  rep_->hash.store(h, std::memory_order_relaxed);
  return h;
}

bool LinSystem::operator==(const LinSystem& o) const {
  if (rep_ == o.rep_) return true;
  const auto& a = constraints();
  const auto& b = o.constraints();
  if (a.size() != b.size()) return false;
  if (hash() != o.hash()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!constraint_equal(a[i], b[i])) return false;
  }
  return true;
}

std::vector<SymId> LinSystem::symbols() const {
  std::vector<SymId> out;
  for (const Constraint& con : constraints()) {
    for (const auto& [s, v] : con.expr.terms) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool LinSystem::involves(SymId s) const {
  for (const Constraint& con : constraints()) {
    if (con.expr.involves(s)) return true;
  }
  return false;
}

LinSystem LinSystem::intersect(const LinSystem& a, const LinSystem& b) {
  // Semantic fast paths: universes and bottoms conjoin trivially, and a
  // system conjoined with itself (same shared node) is itself.
  if (a.trivially_true() || b.is_false()) return b;
  if (b.trivially_true() || a.is_false()) return a;
  if (a.rep_ == b.rep_) return a;
  // Both operands hold canonical constraint lists, so the conjunction is a
  // sorted merge + dedup — no per-constraint normalize/re-insertion.
  LinSystem out;
  Rep& r = out.mut();
  r.cons.reserve(a.constraints().size() + b.constraints().size());
  std::merge(a.constraints().begin(), a.constraints().end(),
             b.constraints().begin(), b.constraints().end(),
             std::back_inserter(r.cons), constraint_less);
  r.cons.erase(std::unique(r.cons.begin(), r.cons.end(), constraint_equal),
               r.cons.end());
  return out;
}

namespace {

bool ground_contradiction(const std::vector<Constraint>& cons) {
  for (const Constraint& con : cons) {
    if (!con.expr.terms.empty()) continue;
    if (con.is_eq ? con.expr.c != 0 : con.expr.c < 0) return true;
  }
  return false;
}

/// Eliminate `s` from `cons` (FM / Gaussian on equalities). Returns nullopt
/// when the derived system exceeds the work limit or overflows — callers
/// treat that as "unknown", the conservative direction.
std::optional<std::vector<Constraint>> eliminate(std::vector<Constraint> cons, SymId s) {
  // Prefer Gaussian elimination through an equality containing s.
  int eq_idx = -1;
  for (size_t i = 0; i < cons.size(); ++i) {
    if (cons[i].is_eq && cons[i].expr.involves(s)) {
      eq_idx = static_cast<int>(i);
      break;
    }
  }
  std::vector<Constraint> out;
  out.reserve(cons.size());
  if (eq_idx >= 0) {
    Constraint eq = cons[static_cast<size_t>(eq_idx)];
    long a = coef_of(eq.expr, s);
    if (a < 0) {
      eq.expr *= -1;  // equalities may be negated freely
      a = -a;
    }
    for (size_t i = 0; i < cons.size(); ++i) {
      if (static_cast<int>(i) == eq_idx) continue;
      const Constraint& c2 = cons[i];
      long b = coef_of(c2.expr, s);
      if (b == 0) {
        out.push_back(c2);
        continue;
      }
      long g = std::gcd(a, std::abs(b));
      // (a/g)*c2 - (b/g)*eq keeps the multiplier on c2 positive, preserving
      // inequality direction.
      auto combined = combine(a / g, c2.expr, -b / g, eq.expr);
      if (!combined) return std::nullopt;
      Constraint nc{std::move(*combined), c2.is_eq};
      switch (normalize(nc)) {
        case Norm::TriviallyTrue: break;
        case Norm::Contradiction:
          return std::vector<Constraint>{{LinearExpr::constant(-1), false}};
        case Norm::Keep: out.push_back(std::move(nc)); break;
      }
    }
    return out;
  }
  // Pure FM over inequalities (no equality mentions s here).
  std::vector<const Constraint*> pos, neg;
  for (const Constraint& con : cons) {
    long a = coef_of(con.expr, s);
    if (a > 0) pos.push_back(&con);
    else if (a < 0) neg.push_back(&con);
    else out.push_back(con);
  }
  if (pos.size() * neg.size() + out.size() > kFmLimit) return std::nullopt;
  for (const Constraint* p : pos) {
    long a = coef_of(p->expr, s);
    for (const Constraint* n : neg) {
      long bp = -coef_of(n->expr, s);  // > 0
      long g = std::gcd(a, bp);
      auto combined = combine(bp / g, p->expr, a / g, n->expr);
      if (!combined) return std::nullopt;
      Constraint nc{std::move(*combined), false};
      switch (normalize(nc)) {
        case Norm::TriviallyTrue: break;
        case Norm::Contradiction:
          return std::vector<Constraint>{{LinearExpr::constant(-1), false}};
        case Norm::Keep: out.push_back(std::move(nc)); break;
      }
    }
  }
  // Deduplicate to curb growth.
  std::sort(out.begin(), out.end(), constraint_less);
  out.erase(std::unique(out.begin(), out.end(), constraint_equal), out.end());
  return out;
}

/// Single-constraint contradiction scan: a pair of constraints over exactly
/// opposite term vectors (x + c1 >= 0 vs -x + c2 >= 0 with c1 + c2 < 0, or
/// an equality pinning the expression outside an inequality's range) proves
/// emptiness without any elimination. Sound pre-filter only — a false return
/// means "run the full check".
bool quick_pair_contradiction(const std::vector<Constraint>& cons) {
  auto negated_terms = [](const LinearExpr& a, const LinearExpr& b) {
    if (a.terms.size() != b.terms.size()) return false;
    for (size_t i = 0; i < a.terms.size(); ++i) {
      if (a.terms[i].first != b.terms[i].first ||
          a.terms[i].second != -b.terms[i].second) {
        return false;
      }
    }
    return true;
  };
  for (size_t i = 0; i < cons.size(); ++i) {
    const Constraint& a = cons[i];
    if (a.expr.terms.empty()) continue;
    for (size_t j = i + 1; j < cons.size(); ++j) {
      const Constraint& b = cons[j];
      if (a.expr.terms.size() != b.expr.terms.size()) continue;
      bool same = a.expr.terms == b.expr.terms;
      bool neg = !same && negated_terms(a.expr, b.expr);
      if (!same && !neg) continue;
      if (a.is_eq && b.is_eq) {
        // e + c1 == 0 and ±e + c2 == 0: constants must agree.
        if (same && a.expr.c != b.expr.c) return true;
        if (neg && a.expr.c != -b.expr.c) return true;
      } else if (a.is_eq || b.is_eq) {
        const Constraint& eq = a.is_eq ? a : b;
        const Constraint& ge = a.is_eq ? b : a;
        // eq pins its expression E to -eq.c; ge is E + c >= 0 (same) or
        // -E + c >= 0 (neg).
        long slack = same ? ge.expr.c - eq.expr.c : ge.expr.c + eq.expr.c;
        if (slack < 0) return true;
      } else if (neg) {
        // e + c1 >= 0 and -e + c2 >= 0 force -c1 <= e <= c2.
        if (a.expr.c + b.expr.c < 0) return true;
      }
      // same-terms inequalities never conflict (one implies the other).
    }
  }
  return false;
}

/// The Fourier–Motzkin elimination loop shared by is_empty() and the
/// contains() refutation probes: true only when the system is provably
/// integer-empty; any bail-out (work limit, overflow) returns false, the
/// conservative direction. Operates on a scratch constraint vector so probe
/// callers never pay for LinSystem node construction.
bool fm_empty(std::vector<Constraint> work) {
  // Per-symbol {positive ineqs, negative ineqs, in an equality} occurrence
  // stats, kept sorted by SymId so the pivot scan visits symbols in the same
  // ascending order the two-pass version did (determinism).
  struct SymStat {
    SymId sym;
    int pos = 0, neg = 0;
    bool eq = false;
  };
  std::vector<SymStat> stats;
  for (;;) {
    stats.clear();
    for (const Constraint& con : work) {
      for (const auto& [s, v] : con.expr.terms) {
        auto it = std::lower_bound(
            stats.begin(), stats.end(), s,
            [](const SymStat& e, SymId sym) { return e.sym < sym; });
        if (it == stats.end() || it->sym != s) it = stats.insert(it, {s});
        if (con.is_eq) it->eq = true;
        else if (v > 0) ++it->pos;
        else ++it->neg;
      }
    }
    if (stats.empty()) return ground_contradiction(work);
    // Pick the symbol minimizing FM fan-out; an equality pivot (Gaussian
    // elimination, cost 0) can't be beaten, so stop at the first one.
    SymId best = stats[0].sym;
    size_t best_cost = SIZE_MAX;
    for (const SymStat& st : stats) {
      size_t cost = st.eq ? 0
                          : static_cast<size_t>(st.pos) *
                                static_cast<size_t>(st.neg);
      if (cost < best_cost) {
        best_cost = cost;
        best = st.sym;
      }
      if (cost == 0) break;
    }
    auto next = eliminate(std::move(work), best);
    if (!next) return false;  // bail out: may be non-empty
    work = std::move(*next);
    if (ground_contradiction(work)) return true;
    if (work.size() > kFmLimit) return false;
  }
}

}  // namespace

int8_t LinSystem::cached_empty() const {
  if (!rep_ || rep_->cons.empty()) return 0;  // the universe is non-empty
  return rep_->empty.load(std::memory_order_relaxed);
}

void LinSystem::seed_empty(bool empty) const {
  if (rep_ != nullptr && !rep_->cons.empty()) {
    rep_->empty.store(empty ? 1 : 0, std::memory_order_relaxed);
  }
}

bool LinSystem::is_empty() const {
  if (!rep_ || rep_->cons.empty()) return false;  // the universe
  int8_t cached = rep_->empty.load(std::memory_order_relaxed);
  if (cached >= 0) return cached != 0;
  bool result = [&] {
    const std::vector<Constraint>& cons = rep_->cons;
    // add() canonicalizes every ground contradiction into the bottom form,
    // so the only ground falsehood a stored system can carry is is_false().
    if (is_false()) return true;
    if (cons.size() == 1) return false;  // one normalized constraint: satisfiable
    if (quick_pair_contradiction(cons)) return true;
    return fm_empty(cons);
  }();
  rep_->empty.store(result ? 1 : 0, std::memory_order_relaxed);
  return result;
}

LinSystem LinSystem::project_out(SymId s) const {
  if (!involves(s)) return *this;
  auto next = eliminate(constraints(), s);
  LinSystem out;
  if (!next) {
    // Bail out: drop every constraint touching s. The result is a superset
    // of the exact projection (conservative for access summaries). A subset
    // of a canonical list is canonical, so build the node directly.
    std::vector<Constraint> kept;
    for (const Constraint& con : constraints()) {
      if (!con.expr.involves(s)) kept.push_back(con);
    }
    if (!kept.empty()) out.mut().cons = std::move(kept);
    return out;
  }
  // eliminate() emits normalized, non-trivial constraints; canonical form is
  // one sort + dedup away — no per-constraint add() re-insertion needed.
  if (next->empty()) return out;  // the universe
  if (ground_contradiction(*next)) return bottom();
  std::sort(next->begin(), next->end(), constraint_less);
  next->erase(std::unique(next->begin(), next->end(), constraint_equal),
              next->end());
  out.mut().cons = std::move(*next);
  return out;
}

LinSystem LinSystem::project_out_if(const std::function<bool(SymId)>& pred) const {
  LinSystem out = *this;
  for (SymId s : symbols()) {
    if (pred(s)) out = out.project_out(s);
  }
  return out;
}

namespace {
/// Does canonical constraint `have` syntactically imply `want`? Exact match
/// for equalities; an inequality t+c >= 0 follows from t+c' (>=|=) 0 with
/// c' <= c. Sufficient only — callers fall back to the refutation probe.
bool implies_con(const Constraint& have, const Constraint& want) {
  if (want.is_eq) {
    return have.is_eq && have.expr.c == want.expr.c &&
           have.expr.terms == want.expr.terms;
  }
  return have.expr.c <= want.expr.c && have.expr.terms == want.expr.terms;
}
}  // namespace

bool LinSystem::contains(const LinSystem& other) const {
  if (!rep_ || rep_->cons.empty()) return true;  // the universe contains all
  if (rep_ == other.rep_) return true;           // identical node
  // A probe conjoins the negated constraint onto `other` and asks for
  // emptiness. It runs on a scratch constraint vector — no COW clone, no
  // canonical re-insertion, no node allocation per probe.
  auto refuted = [&other](LinearExpr e) {
    Constraint nc{std::move(e), false};
    switch (normalize(nc)) {
      case Norm::TriviallyTrue:
        return other.is_empty();  // probe is `other` itself
      case Norm::Contradiction:
        return true;
      case Norm::Keep:
        break;
    }
    const std::vector<Constraint>& base = other.constraints();
    if (ground_contradiction(base)) return true;  // `other` is bottom
    if (base.empty()) return false;  // universe: one constraint is satisfiable
    std::vector<Constraint> work;
    work.reserve(base.size() + 1);
    work = base;
    work.push_back(std::move(nc));
    if (quick_pair_contradiction(work)) return true;
    return fm_empty(std::move(work));
  };
  for (const Constraint& con : constraints()) {
    // `other` carrying the constraint (or a tighter one) verbatim settles it
    // without any probe — the overwhelmingly common case is testing a system
    // against itself-plus-extras (SectionList::add coverage checks).
    bool implied = false;
    for (const Constraint& have : other.constraints()) {
      if (implies_con(have, con)) {
        implied = true;
        break;
      }
    }
    if (implied) continue;
    // Refute: does any point of `other` violate `con`?
    if (con.is_eq) {
      for (long dir : {+1L, -1L}) {
        LinearExpr e = con.expr;
        e *= dir;
        e.c -= 1;
        if (!refuted(std::move(e))) return false;  // dir*expr >= 1 satisfiable
      }
    } else {
      LinearExpr e = con.expr;
      e *= -1;
      e.c -= 1;
      if (!refuted(std::move(e))) return false;  // expr <= -1 satisfiable
    }
  }
  return true;
}

LinSystem LinSystem::substitute(SymId s, const LinearExpr& e) const {
  LinSystem out;
  out.mut().cons.reserve(constraints().size());
  for (const Constraint& con : constraints()) {
    long a = coef_of(con.expr, s);
    if (a == 0) {
      out.add(con);
      continue;
    }
    LinearExpr ne = drop_term(con.expr, s);
    LinearExpr scaled = e;
    scaled *= a;
    ne += scaled;
    out.add({std::move(ne), con.is_eq});
  }
  return out;
}

LinSystem LinSystem::rename(const SymMap& m) const {
  if (m.empty() || trivially_true()) return *this;
  LinSystem out;
  out.mut().cons.reserve(constraints().size());
  for (const Constraint& con : constraints()) {
    Constraint nc;
    nc.is_eq = con.is_eq;
    nc.expr.c = con.expr.c;
    nc.expr.terms.reserve(con.expr.terms.size());
    for (const auto& [s, v] : con.expr.terms) nc.expr.terms.push_back({m.apply(s), v});
    // A rename may reorder columns or merge two onto one target: restore the
    // term invariant (sorted by SymId, coefficients combined, zeros dropped).
    std::sort(nc.expr.terms.begin(), nc.expr.terms.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    size_t w = 0;
    for (size_t i = 0; i < nc.expr.terms.size();) {
      SymId sym = nc.expr.terms[i].first;
      long coef = 0;
      for (; i < nc.expr.terms.size() && nc.expr.terms[i].first == sym; ++i) {
        coef += nc.expr.terms[i].second;
      }
      if (coef != 0) nc.expr.terms[w++] = {sym, coef};
    }
    nc.expr.terms.resize(w);
    out.add(std::move(nc));
  }
  return out;
}

std::string LinSystem::str(const ir::Program* prog) const {
  const auto& cons = constraints();
  if (cons.empty()) return "{true}";
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < cons.size(); ++i) {
    if (i > 0) os << " && ";
    os << cons[i].expr.str(prog) << (cons[i].is_eq ? " == 0" : " >= 0");
  }
  os << "}";
  return os.str();
}

}  // namespace suifx::poly
