#include "polyhedra/linsystem.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace suifx::poly {

namespace {

/// Max derived constraints before Fourier–Motzkin bails out conservatively.
constexpr size_t kFmLimit = 768;

bool mul_overflows(long a, long b) {
  __int128 p = static_cast<__int128>(a) * b;
  return p > INT64_MAX / 4 || p < INT64_MIN / 4;
}

long floor_div(long a, long b) {  // b > 0
  long q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

}  // namespace

SymId scalar_sym(const ir::Variable* v, int gen) {
  return kMaxRank + 2 * (v->id * kMaxGens + gen);
}
SymId primed_sym(const ir::Variable* v, int gen) { return scalar_sym(v, gen) + 1; }

int sym_var_id(SymId s) { return (s - kMaxRank) / 2 / kMaxGens; }

std::string sym_name(SymId s, const ir::Program* prog) {
  if (is_dim_sym(s)) return "d" + std::to_string(s);
  int vid = sym_var_id(s);
  int gen = ((s - kMaxRank) / 2) % kMaxGens;
  bool primed = is_primed_sym(s);
  std::string base = "v" + std::to_string(vid);
  if (prog != nullptr && vid < prog->num_vars()) {
    base = prog->variables()[static_cast<size_t>(vid)].name;
  }
  if (gen != 0) base += "#" + std::to_string(gen);
  return primed ? base + "'" : base;
}

// ---------------------------------------------------------------------------
// LinearExpr
// ---------------------------------------------------------------------------

LinearExpr LinearExpr::constant(long v) {
  LinearExpr e;
  e.c = v;
  return e;
}

LinearExpr LinearExpr::var(SymId s, long coef) {
  LinearExpr e;
  if (coef != 0) e.terms.push_back({s, coef});
  return e;
}

LinearExpr& LinearExpr::operator+=(const LinearExpr& o) {
  std::vector<std::pair<SymId, long>> merged;
  merged.reserve(terms.size() + o.terms.size());
  size_t i = 0, j = 0;
  while (i < terms.size() || j < o.terms.size()) {
    if (j >= o.terms.size() || (i < terms.size() && terms[i].first < o.terms[j].first)) {
      merged.push_back(terms[i++]);
    } else if (i >= terms.size() || o.terms[j].first < terms[i].first) {
      merged.push_back(o.terms[j++]);
    } else {
      long s = terms[i].second + o.terms[j].second;
      if (s != 0) merged.push_back({terms[i].first, s});
      ++i;
      ++j;
    }
  }
  terms = std::move(merged);
  c += o.c;
  return *this;
}

LinearExpr& LinearExpr::operator-=(const LinearExpr& o) {
  LinearExpr neg = o;
  neg *= -1;
  return *this += neg;
}

LinearExpr& LinearExpr::operator*=(long k) {
  if (k == 0) {
    terms.clear();
    c = 0;
    return *this;
  }
  for (auto& [s, v] : terms) v *= k;
  c *= k;
  return *this;
}

bool LinearExpr::involves(SymId s) const {
  for (const auto& [id, v] : terms) {
    if (id == s) return v != 0;
  }
  return false;
}

std::string LinearExpr::str(const ir::Program* prog) const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [s, v] : terms) {
    if (v >= 0 && !first) os << "+";
    if (v == -1) os << "-";
    else if (v != 1) os << v << "*";
    os << sym_name(s, prog);
    first = false;
  }
  if (c != 0 || first) {
    if (c >= 0 && !first) os << "+";
    os << c;
  }
  return os.str();
}

namespace {

long coef_of(const LinearExpr& e, SymId s) {
  for (const auto& [id, v] : e.terms) {
    if (id == s) return v;
  }
  return 0;
}

/// Remove the term for `s` from `e`.
LinearExpr drop_term(const LinearExpr& e, SymId s) {
  LinearExpr out;
  out.c = e.c;
  for (const auto& t : e.terms) {
    if (t.first != s) out.terms.push_back(t);
  }
  return out;
}

/// a*x + b*y with overflow check; returns nullopt on overflow.
std::optional<LinearExpr> combine(long a, const LinearExpr& x, long b, const LinearExpr& y) {
  for (const auto& [s, v] : x.terms) {
    if (mul_overflows(a, v)) return std::nullopt;
  }
  for (const auto& [s, v] : y.terms) {
    if (mul_overflows(b, v)) return std::nullopt;
  }
  if (mul_overflows(a, x.c) || mul_overflows(b, y.c)) return std::nullopt;
  LinearExpr xa = x;
  xa *= a;
  LinearExpr yb = y;
  yb *= b;
  xa += yb;
  return xa;
}

enum class Norm { Keep, TriviallyTrue, Contradiction };

/// Normalize: divide by the gcd of the coefficients; for inequalities, floor
/// the constant (integer tightening). Detects ground contradictions.
Norm normalize(Constraint& con) {
  long g = 0;
  for (const auto& [s, v] : con.expr.terms) g = std::gcd(g, std::abs(v));
  if (g == 0) {
    // Ground constraint.
    if (con.is_eq) return con.expr.c == 0 ? Norm::TriviallyTrue : Norm::Contradiction;
    return con.expr.c >= 0 ? Norm::TriviallyTrue : Norm::Contradiction;
  }
  if (g > 1) {
    for (auto& [s, v] : con.expr.terms) v /= g;
    if (con.is_eq) {
      if (con.expr.c % g != 0) return Norm::Contradiction;  // no integer solution
      con.expr.c /= g;
    } else {
      con.expr.c = floor_div(con.expr.c, g);
    }
  }
  return Norm::Keep;
}

std::string constraint_key(const Constraint& con) {
  std::string k = con.is_eq ? "E" : "G";
  for (const auto& [s, v] : con.expr.terms) {
    k += std::to_string(s) + ":" + std::to_string(v) + ",";
  }
  k += "#" + std::to_string(con.expr.c);
  return k;
}

}  // namespace

// ---------------------------------------------------------------------------
// LinSystem
// ---------------------------------------------------------------------------

LinSystem LinSystem::bottom() {
  LinSystem s;
  s.add_ge(LinearExpr::constant(-1));
  return s;
}

void LinSystem::add(Constraint c) {
  switch (normalize(c)) {
    case Norm::TriviallyTrue:
      return;
    case Norm::Contradiction:
      cons_.clear();
      cons_.push_back({LinearExpr::constant(-1), false});
      return;
    case Norm::Keep:
      cons_.push_back(std::move(c));
      return;
  }
}

void LinSystem::add_eq(LinearExpr e) { add({std::move(e), true}); }
void LinSystem::add_ge(LinearExpr e) { add({std::move(e), false}); }

void LinSystem::add_range(SymId s, const LinearExpr& lo, const LinearExpr& hi) {
  LinearExpr a = LinearExpr::var(s);
  a -= lo;
  add_ge(std::move(a));  // s - lo >= 0
  LinearExpr b = hi;
  b -= LinearExpr::var(s);
  add_ge(std::move(b));  // hi - s >= 0
}

std::vector<SymId> LinSystem::symbols() const {
  std::vector<SymId> out;
  for (const Constraint& con : cons_) {
    for (const auto& [s, v] : con.expr.terms) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool LinSystem::involves(SymId s) const {
  for (const Constraint& con : cons_) {
    if (con.expr.involves(s)) return true;
  }
  return false;
}

LinSystem LinSystem::intersect(const LinSystem& a, const LinSystem& b) {
  LinSystem out = a;
  for (const Constraint& con : b.cons_) out.add(con);
  return out;
}

namespace {

/// Eliminate `s` from `cons` (FM / Gaussian on equalities). Returns nullopt
/// when the derived system exceeds the work limit or overflows — callers
/// treat that as "unknown", the conservative direction.
std::optional<std::vector<Constraint>> eliminate(std::vector<Constraint> cons, SymId s) {
  // Prefer Gaussian elimination through an equality containing s.
  int eq_idx = -1;
  for (size_t i = 0; i < cons.size(); ++i) {
    if (cons[i].is_eq && cons[i].expr.involves(s)) {
      eq_idx = static_cast<int>(i);
      break;
    }
  }
  std::vector<Constraint> out;
  if (eq_idx >= 0) {
    Constraint eq = cons[static_cast<size_t>(eq_idx)];
    long a = coef_of(eq.expr, s);
    if (a < 0) {
      eq.expr *= -1;  // equalities may be negated freely
      a = -a;
    }
    for (size_t i = 0; i < cons.size(); ++i) {
      if (static_cast<int>(i) == eq_idx) continue;
      const Constraint& c2 = cons[i];
      long b = coef_of(c2.expr, s);
      if (b == 0) {
        out.push_back(c2);
        continue;
      }
      long g = std::gcd(a, std::abs(b));
      // (a/g)*c2 - (b/g)*eq keeps the multiplier on c2 positive, preserving
      // inequality direction.
      auto combined = combine(a / g, c2.expr, -b / g, eq.expr);
      if (!combined) return std::nullopt;
      Constraint nc{std::move(*combined), c2.is_eq};
      switch (normalize(nc)) {
        case Norm::TriviallyTrue: break;
        case Norm::Contradiction:
          return std::vector<Constraint>{{LinearExpr::constant(-1), false}};
        case Norm::Keep: out.push_back(std::move(nc)); break;
      }
    }
    return out;
  }
  // Pure FM over inequalities (no equality mentions s here).
  std::vector<const Constraint*> pos, neg;
  for (const Constraint& con : cons) {
    long a = coef_of(con.expr, s);
    if (a > 0) pos.push_back(&con);
    else if (a < 0) neg.push_back(&con);
    else out.push_back(con);
  }
  if (pos.size() * neg.size() + out.size() > kFmLimit) return std::nullopt;
  for (const Constraint* p : pos) {
    long a = coef_of(p->expr, s);
    for (const Constraint* n : neg) {
      long bp = -coef_of(n->expr, s);  // > 0
      long g = std::gcd(a, bp);
      auto combined = combine(bp / g, p->expr, a / g, n->expr);
      if (!combined) return std::nullopt;
      Constraint nc{std::move(*combined), false};
      switch (normalize(nc)) {
        case Norm::TriviallyTrue: break;
        case Norm::Contradiction:
          return std::vector<Constraint>{{LinearExpr::constant(-1), false}};
        case Norm::Keep: out.push_back(std::move(nc)); break;
      }
    }
  }
  // Deduplicate to curb growth.
  std::sort(out.begin(), out.end(), [](const Constraint& x, const Constraint& y) {
    return constraint_key(x) < constraint_key(y);
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Constraint& x, const Constraint& y) {
                          return constraint_key(x) == constraint_key(y);
                        }),
            out.end());
  return out;
}

bool ground_contradiction(const std::vector<Constraint>& cons) {
  for (const Constraint& con : cons) {
    if (!con.expr.terms.empty()) continue;
    if (con.is_eq ? con.expr.c != 0 : con.expr.c < 0) return true;
  }
  return false;
}

}  // namespace

bool LinSystem::is_empty() const {
  std::vector<Constraint> work = cons_;
  if (ground_contradiction(work)) return true;
  for (;;) {
    // Collect remaining symbols.
    std::vector<SymId> syms;
    for (const Constraint& con : work) {
      for (const auto& [s, v] : con.expr.terms) syms.push_back(s);
    }
    std::sort(syms.begin(), syms.end());
    syms.erase(std::unique(syms.begin(), syms.end()), syms.end());
    if (syms.empty()) return ground_contradiction(work);
    // Pick the symbol minimizing FM fan-out.
    SymId best = syms[0];
    size_t best_cost = SIZE_MAX;
    for (SymId s : syms) {
      size_t p = 0, n = 0;
      bool has_eq = false;
      for (const Constraint& con : work) {
        long a = coef_of(con.expr, s);
        if (a == 0) continue;
        if (con.is_eq) has_eq = true;
        else if (a > 0) ++p;
        else ++n;
      }
      size_t cost = has_eq ? 0 : p * n;
      if (cost < best_cost) {
        best_cost = cost;
        best = s;
      }
    }
    auto next = eliminate(std::move(work), best);
    if (!next) return false;  // bail out: may be non-empty
    work = std::move(*next);
    if (ground_contradiction(work)) return true;
    if (work.size() > kFmLimit) return false;
  }
}

LinSystem LinSystem::project_out(SymId s) const {
  if (!involves(s)) return *this;
  auto next = eliminate(cons_, s);
  LinSystem out;
  if (!next) {
    // Bail out: drop every constraint touching s. The result is a superset
    // of the exact projection (conservative for access summaries).
    for (const Constraint& con : cons_) {
      if (!con.expr.involves(s)) out.add(con);
    }
    return out;
  }
  for (Constraint& con : *next) out.add(std::move(con));
  return out;
}

LinSystem LinSystem::project_out_if(const std::function<bool(SymId)>& pred) const {
  LinSystem out = *this;
  for (SymId s : symbols()) {
    if (pred(s)) out = out.project_out(s);
  }
  return out;
}

bool LinSystem::contains(const LinSystem& other) const {
  for (const Constraint& con : cons_) {
    // Refute: does any point of `other` violate `con`?
    if (con.is_eq) {
      for (long dir : {+1L, -1L}) {
        LinSystem probe = other;
        LinearExpr e = con.expr;
        e *= dir;
        e.c -= 1;
        probe.add_ge(std::move(e));  // dir*expr >= 1
        if (!probe.is_empty()) return false;
      }
    } else {
      LinSystem probe = other;
      LinearExpr e = con.expr;
      e *= -1;
      e.c -= 1;
      probe.add_ge(std::move(e));  // expr <= -1
      if (!probe.is_empty()) return false;
    }
  }
  return true;
}

LinSystem LinSystem::substitute(SymId s, const LinearExpr& e) const {
  LinSystem out;
  for (const Constraint& con : cons_) {
    long a = coef_of(con.expr, s);
    if (a == 0) {
      out.add(con);
      continue;
    }
    LinearExpr ne = drop_term(con.expr, s);
    LinearExpr scaled = e;
    scaled *= a;
    ne += scaled;
    out.add({std::move(ne), con.is_eq});
  }
  return out;
}

LinSystem LinSystem::rename(const std::map<SymId, SymId>& m) const {
  LinSystem out;
  for (const Constraint& con : cons_) {
    LinearExpr ne;
    ne.c = con.expr.c;
    for (const auto& [s, v] : con.expr.terms) {
      auto it = m.find(s);
      ne += LinearExpr::var(it != m.end() ? it->second : s, v);
    }
    out.add({std::move(ne), con.is_eq});
  }
  return out;
}

std::string LinSystem::str(const ir::Program* prog) const {
  if (cons_.empty()) return "{true}";
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < cons_.size(); ++i) {
    if (i > 0) os << " && ";
    os << cons_[i].expr.str(prog) << (cons_[i].is_eq ? " == 0" : " >= 0");
  }
  os << "}";
  return os.str();
}

}  // namespace suifx::poly
