#include "polyhedra/polycache.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/metrics.h"
#include "support/trace.h"

namespace suifx::poly {

namespace {

constexpr int kEpochShift = 48;
constexpr size_t kShards = 16;
/// Per-shard entry budget for memo tables; a full shard is dropped whole
/// (entries are pure cache — losing them costs recomputation, not
/// correctness) and counted as evictions.
constexpr size_t kMemoShardCap = size_t{1} << 15;
/// Per-shard canonical-node budget for the interner. Dropping a shard does
/// NOT invalidate issued ids (ids are never reused within an epoch); equal
/// systems interned later simply get fresh ids and miss once.
constexpr size_t kInternShardCap = size_t{1} << 16;

support::ShardedCounter& counter(const char* key) {
  return support::Metrics::global().sharded(key);
}

uint64_t mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

struct PairHash {
  size_t operator()(const std::pair<uint64_t, uint64_t>& p) const {
    return static_cast<size_t>(mix64(p.first * 0x9e3779b97f4a7c15ULL ^ p.second));
  }
};

struct VecHash {
  size_t operator()(const std::vector<uint64_t>& v) const {
    uint64_t h = 1469598103934665603ULL;
    for (uint64_t x : v) {
      h ^= mix64(x);
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// A sharded mutex-per-shard memo table. Values are cheap to copy
/// (LinSystem/SectionList share their nodes). find/insert never hold more
/// than one shard lock; compute always happens outside any lock.
template <typename K, typename V, typename Hash>
class ShardedMap {
 public:
  std::optional<V> find(const K& k) {
    Shard& s = shard(k);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(k);
    if (it == s.map.end()) return std::nullopt;
    return it->second;
  }

  void insert(const K& k, V v) {
    Shard& s = shard(k);
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.map.size() >= kMemoShardCap) {
      counter("poly.cache.evict").add(s.map.size());
      s.map.clear();
    }
    s.map.emplace(k, std::move(v));
  }

  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.map.clear();
    }
  }

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<K, V, Hash> map;
  };
  Shard& shard(const K& k) { return shards_[Hash{}(k) % kShards]; }
  std::array<Shard, kShards> shards_;
};

// Leaky singletons: the tables are process-lifetime shared state touched by
// pool workers; never destroyed, so shutdown order cannot race them.
ShardedMap<uint64_t, char, std::hash<uint64_t>>& empty_memo() {
  static auto& m = *new ShardedMap<uint64_t, char, std::hash<uint64_t>>;
  return m;
}
ShardedMap<std::pair<uint64_t, uint64_t>, LinSystem, PairHash>& intersect_memo() {
  static auto& m = *new ShardedMap<std::pair<uint64_t, uint64_t>, LinSystem, PairHash>;
  return m;
}
ShardedMap<std::pair<uint64_t, uint64_t>, char, PairHash>& contains_memo() {
  static auto& m = *new ShardedMap<std::pair<uint64_t, uint64_t>, char, PairHash>;
  return m;
}
ShardedMap<std::pair<uint64_t, uint64_t>, LinSystem, PairHash>& project_memo() {
  static auto& m = *new ShardedMap<std::pair<uint64_t, uint64_t>, LinSystem, PairHash>;
  return m;
}
ShardedMap<std::vector<uint64_t>, SectionList, VecHash>& subtract_memo() {
  static auto& m = *new ShardedMap<std::vector<uint64_t>, SectionList, VecHash>;
  return m;
}
ShardedMap<std::vector<uint64_t>, char, VecHash>& covers_memo() {
  static auto& m = *new ShardedMap<std::vector<uint64_t>, char, VecHash>;
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// PolyInterner
// ---------------------------------------------------------------------------

namespace {

struct InternShard {
  std::mutex mu;
  // structural hash -> candidate systems with that hash
  std::unordered_map<uint64_t, std::vector<LinSystem>> buckets;
  size_t entries = 0;
};

struct InternState {
  std::array<InternShard, kShards> shards;
  std::atomic<uint64_t> epoch{0};
  std::atomic<uint64_t> next{2};  // 1 is the universe's per-epoch slot
  std::atomic<size_t> nodes{0};
};

InternState& intern_state() {
  static auto& s = *new InternState;
  return s;
}

}  // namespace

PolyInterner& PolyInterner::global() {
  static auto& i = *new PolyInterner;
  return i;
}

InternId PolyInterner::id(const LinSystem& s) {
  InternState& st = intern_state();
  uint64_t epoch = st.epoch.load(std::memory_order_acquire);
  if (s.trivially_true()) return (epoch << kEpochShift) | 1;
  InternId cached = s.rep_->intern.load(std::memory_order_relaxed);
  if (cached != 0 && (cached >> kEpochShift) == epoch) return cached;
  uint64_t h = s.hash();
  InternShard& sh = st.shards[mix64(h) % kShards];
  std::lock_guard<std::mutex> lock(sh.mu);
  std::vector<LinSystem>& bucket = sh.buckets[h];
  for (const LinSystem& cand : bucket) {
    if (cand == s) {
      InternId id = cand.rep_->intern.load(std::memory_order_relaxed);
      s.rep_->intern.store(id, std::memory_order_relaxed);
      return id;
    }
  }
  if (sh.entries >= kInternShardCap) {
    // Dropping the shard forgets canonical nodes but never reuses an id, so
    // ids already issued stay valid (they just stop deduplicating).
    counter("poly.cache.evict").add(sh.entries);
    st.nodes.fetch_sub(sh.entries, std::memory_order_relaxed);
    sh.buckets.clear();
    sh.entries = 0;
  }
  InternId id =
      (epoch << kEpochShift) | st.next.fetch_add(1, std::memory_order_relaxed);
  s.rep_->intern.store(id, std::memory_order_relaxed);
  sh.buckets[h].push_back(s);  // the stored copy shares s's node (and its id)
  ++sh.entries;
  st.nodes.fetch_add(1, std::memory_order_relaxed);
  return id;
}

LinSystem PolyInterner::canonical(const LinSystem& s) {
  if (s.trivially_true()) return s;
  InternState& st = intern_state();
  InternId sid = id(s);  // ensures s (or its twin) is in the table
  uint64_t h = s.hash();
  InternShard& sh = st.shards[mix64(h) % kShards];
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.buckets.find(h);
  if (it != sh.buckets.end()) {
    for (const LinSystem& cand : it->second) {
      if (cand.rep_->intern.load(std::memory_order_relaxed) == sid) return cand;
    }
  }
  return s;  // evicted between id() and here: s itself is canonical enough
}

size_t PolyInterner::size() const {
  return intern_state().nodes.load(std::memory_order_relaxed);
}

void PolyInterner::clear() {
  InternState& st = intern_state();
  // Bump the epoch first: ids cached in live nodes stop matching, so no
  // caller can observe an old id as current while we drop the tables.
  st.epoch.fetch_add(1, std::memory_order_acq_rel);
  for (InternShard& sh : st.shards) {
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.buckets.clear();
    sh.entries = 0;
  }
  st.nodes.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// cache
// ---------------------------------------------------------------------------

namespace cache {

namespace {

std::atomic<bool>& enabled_flag() {
  // The env read happens once at first use (audited for daemon use): the
  // flag seeds an atomic that set_enabled() can flip at any time afterwards,
  // so a long-lived process is never stuck with the boot-time value — only
  // later env *mutations* are ignored, by design.
  static std::atomic<bool>& f = *new std::atomic<bool>([] {
    const char* env = std::getenv("SUIFX_POLY_CACHE");
    return env == nullptr || std::string_view(env) != "0";
  }());
  return f;
}

InternId intern(const LinSystem& s) { return PolyInterner::global().id(s); }

/// Composite key for list-level ops: [ids of a's parts, 0, ids of b's
/// parts]. 0 never collides with a real id (the counter starts at 1).
std::vector<uint64_t> list_key(const SectionList& a, const SectionList& b) {
  std::vector<uint64_t> k;
  k.reserve(a.systems().size() + b.systems().size() + 1);
  for (const LinSystem& p : a.systems()) k.push_back(intern(p));
  k.push_back(0);
  for (const LinSystem& p : b.systems()) k.push_back(intern(p));
  return k;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

void reset() {
  empty_memo().clear();
  intersect_memo().clear();
  contains_memo().clear();
  project_memo().clear();
  subtract_memo().clear();
  covers_memo().clear();
  PolyInterner::global().clear();
}

Stats stats() {
  Stats s;
  auto read = [](const char* op) {
    OpStats o;
    o.hits = counter((std::string("poly.") + op + ".hit").c_str()).value();
    o.misses = counter((std::string("poly.") + op + ".miss").c_str()).value();
    return o;
  };
  s.is_empty = read("is_empty");
  s.intersect = read("intersect");
  s.contains = read("contains");
  s.project = read("project");
  s.subtract = read("subtract");
  s.covers_all = read("covers_all");
  s.evictions = counter("poly.cache.evict").value();
  s.interned = PolyInterner::global().size();
  return s;
}

bool is_empty(const LinSystem& s) {
  // Semantic fast paths (identical verdicts to the raw op, no locks).
  if (s.trivially_true()) return false;
  if (s.is_false()) return true;
  // Repeat query on an already-decided node: one relaxed load — no
  // interning, no memo-table lookup. The raw op stores its verdict in the
  // shared node, and the memo-hit path below seeds it for twin nodes.
  if (int8_t node = s.cached_empty(); node >= 0) return node != 0;
  if (!enabled()) return s.is_empty();
  static support::ShardedCounter& hit = counter("poly.is_empty.hit");
  static support::ShardedCounter& miss = counter("poly.is_empty.miss");
  uint64_t key = intern(s);
  if (auto v = empty_memo().find(key)) {
    hit.add();
    s.seed_empty(*v != 0);
    return *v != 0;
  }
  miss.add();
  support::trace::TraceSpan span("poly/is_empty");
  bool r = s.is_empty();
  empty_memo().insert(key, r ? 1 : 0);
  return r;
}

LinSystem intersect(const LinSystem& a, const LinSystem& b) {
  // Fast paths mirror LinSystem::intersect exactly.
  if (a.trivially_true() || b.is_false()) return b;
  if (b.trivially_true() || a.is_false()) return a;
  if (a.same_node(b)) return a;
  if (!enabled()) return LinSystem::intersect(a, b);
  static support::ShardedCounter& hit = counter("poly.intersect.hit");
  static support::ShardedCounter& miss = counter("poly.intersect.miss");
  InternId ia = intern(a), ib = intern(b);
  if (ia == ib) return a;
  // Conjunction of canonical forms is symmetric: normalize the key order.
  std::pair<uint64_t, uint64_t> key{std::min(ia, ib), std::max(ia, ib)};
  if (auto v = intersect_memo().find(key)) {
    hit.add();
    return *v;
  }
  miss.add();
  support::trace::TraceSpan span("poly/intersect");
  LinSystem r = PolyInterner::global().canonical(LinSystem::intersect(a, b));
  intersect_memo().insert(key, r);
  return r;
}

bool contains(const LinSystem& a, const LinSystem& b) {
  if (a.trivially_true()) return true;   // the universe contains everything
  if (a.same_node(b)) return true;       // identical node
  if (b.is_false()) return true;         // bottom is contained in anything
  if (!enabled()) return a.contains(b);
  static support::ShardedCounter& hit = counter("poly.contains.hit");
  static support::ShardedCounter& miss = counter("poly.contains.miss");
  InternId ia = intern(a), ib = intern(b);
  if (ia == ib) return true;
  std::pair<uint64_t, uint64_t> key{ia, ib};  // NOT symmetric
  if (auto v = contains_memo().find(key)) {
    hit.add();
    return *v != 0;
  }
  miss.add();
  support::trace::TraceSpan span("poly/contains");
  bool r = a.contains(b);
  contains_memo().insert(key, r ? 1 : 0);
  return r;
}

LinSystem project_out(const LinSystem& s, SymId sym) {
  if (!s.involves(sym)) return s;  // mirrors the raw op's first check
  if (!enabled()) return s.project_out(sym);
  static support::ShardedCounter& hit = counter("poly.project.hit");
  static support::ShardedCounter& miss = counter("poly.project.miss");
  std::pair<uint64_t, uint64_t> key{intern(s), static_cast<uint64_t>(sym)};
  if (auto v = project_memo().find(key)) {
    hit.add();
    return *v;
  }
  miss.add();
  support::trace::TraceSpan span("poly/project");
  LinSystem r = PolyInterner::global().canonical(s.project_out(sym));
  project_memo().insert(key, r);
  return r;
}

SectionList subtract(const SectionList& a, const SectionList& b) {
  if (!enabled()) return a.subtract_uncached(b);
  static support::ShardedCounter& hit = counter("poly.subtract.hit");
  static support::ShardedCounter& miss = counter("poly.subtract.miss");
  std::vector<uint64_t> key = list_key(a, b);
  if (auto v = subtract_memo().find(key)) {
    hit.add();
    return *v;
  }
  miss.add();
  support::trace::TraceSpan span("poly/subtract");
  SectionList r = a.subtract_uncached(b);
  subtract_memo().insert(std::move(key), r);
  return r;
}

bool covers_all(const SectionList& a, const SectionList& b) {
  if (b.systems().empty()) return true;
  if (!enabled()) return a.covers_all_uncached(b);
  static support::ShardedCounter& hit = counter("poly.covers_all.hit");
  static support::ShardedCounter& miss = counter("poly.covers_all.miss");
  std::vector<uint64_t> key = list_key(a, b);
  if (auto v = covers_memo().find(key)) {
    hit.add();
    return *v != 0;
  }
  miss.add();
  support::trace::TraceSpan span("poly/covers_all");
  bool r = a.covers_all_uncached(b);
  covers_memo().insert(std::move(key), r ? 1 : 0);
  return r;
}

}  // namespace cache

}  // namespace suifx::poly
