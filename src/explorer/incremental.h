// Incremental session rebuild: re-derive only what an edit invalidated.
//
// A daemon session (service::AnalysisService) holds a Workbench whose driver
// cache has been warmed by previous requests. When the user edits the source,
// rebuilding the Workbench from scratch would discard every memoized loop
// plan — the all-or-nothing invalidation the SUIF Explorer's interactivity
// cannot afford (§4: analyses must be fast enough to re-run per user action).
//
// rebuild_incremental() builds the new Workbench, diffs it against the old
// one procedure-by-procedure (structural fingerprints over *names*, never ids
// or addresses, so unrelated edits don't cascade), computes the dirty set an
// edit can actually influence, and carries every still-valid driver cache
// entry across — translated into the new program's id space — via
// Driver::seed_plan(). A subsequent plan() re-analyzes only the dirty
// procedures' loops; everything else is a cache hit, and the resulting plan
// is byte-identical (plan_signature) to a cold full rebuild.
//
// Dirty set (docs/service.md has the full argument):
//   changed   procedures whose fingerprint differs, or that were added/removed
//   ∪ transitive callers of changed   (data-flow summaries flow bottom-up)
//   ∪ transitive callees of changed   (liveness contexts flow top-down)
//   ∪ storage sharers: procedures touching mutable storage (globals, COMMON
//     blocks, by-reference actuals) that a changed procedure touches — the
//     channel by which symbolic generations and liveness facts about shared
//     data propagate sideways between otherwise-unrelated procedures.
//
// Carried entries additionally drop any plan whose stored array sections
// mention storage that is modified anywhere in the program: the symbolic
// analysis numbers scalar "generations" during a single bottom-up walk, so a
// call-graph reordering elsewhere can renumber a mutable global's symbols
// even in an untouched procedure. Immutable storage (SymParams, never-written
// globals) and the procedure's own locals/formals have stable numbering, and
// plan *decisions* are invariant under the renaming, so only stored sections
// need this guard.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "explorer/workbench.h"

namespace suifx::explorer {

/// What one incremental rebuild did — surfaced by the service's Update
/// response and asserted by the incremental-invalidation tests.
struct RebuildStats {
  /// Every entry was discarded (declaration-level change, a degraded build on
  /// either side, or an unparseable edit handled by the caller).
  bool full_invalidation = false;
  std::vector<std::string> changed;  // procedures whose structure differs
  std::vector<std::string> dirty;    // changed + dependents (will re-plan)
  size_t carried = 0;                // cache entries translated + re-seeded
  size_t dropped = 0;                // entries invalidated or untranslatable
};

/// Structural fingerprint of one procedure: name, formal/local declarations,
/// and the whole statement tree, hashing variables and callees by *qualified
/// name* so the value is stable across re-parses that shift ids.
uint64_t proc_fingerprint(const ir::Procedure& p);

/// Fingerprint of everything outside procedure bodies: globals, symbolic
/// parameters, COMMON block names, and the procedure name order. A change
/// here shifts ground every procedure stands on, so it forces full
/// invalidation.
uint64_t decl_fingerprint(const ir::Program& prog);

/// Build a Workbench for `new_src` and carry still-valid driver cache entries
/// over from `old_wb`. Returns null on parse error (details in `diag`; the
/// caller keeps the old session). Pass the same liveness/reduction
/// configuration the old Workbench was built with — carried plans assume it.
std::unique_ptr<Workbench> rebuild_incremental(
    const Workbench& old_wb, std::string_view new_src, Diag& diag,
    RebuildStats* stats = nullptr,
    std::optional<analysis::LivenessMode> liveness_mode =
        analysis::LivenessMode::Full,
    bool enable_reductions = true);

}  // namespace suifx::explorer
