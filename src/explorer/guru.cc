#include "explorer/guru.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "support/trace.h"

namespace suifx::explorer {

namespace {

/// Loops dynamically nested under one of `chosen` (lexically or through
/// procedure calls made inside them).
std::set<const ir::Stmt*> nested_under(ir::Program& prog,
                                       const std::vector<const ir::Stmt*>& chosen) {
  std::set<const ir::Procedure*> ctx;
  std::function<void(const ir::Procedure*)> mark = [&](const ir::Procedure* p) {
    if (!ctx.insert(p).second) return;
    p->for_each([&](const ir::Stmt* s) {
      if (s->kind == ir::StmtKind::Call) mark(s->callee);
    });
  };
  std::set<const ir::Stmt*> chosen_set(chosen.begin(), chosen.end());
  for (const ir::Stmt* c : chosen) {
    ir::for_each_nested(c, [&](const ir::Stmt* s) {
      if (s->kind == ir::StmtKind::Call) mark(s->callee);
    });
  }
  std::set<const ir::Stmt*> out;
  prog.for_each_stmt([&](ir::Stmt* s) {
    if (s->kind != ir::StmtKind::Do) return;
    if (ctx.count(s->proc) != 0) {
      out.insert(s);
      return;
    }
    for (const ir::Stmt* p = s->parent; p != nullptr; p = p->parent) {
      if (chosen_set.count(p) != 0) {
        out.insert(s);
        return;
      }
    }
  });
  return out;
}

}  // namespace

Guru::Guru(Workbench& wb, GuruConfig cfg) : wb_(wb), cfg_(std::move(cfg)) {
  analyze();
}

void Guru::analyze() {
  support::trace::TraceSpan span("guru/analyze");
  auto t0 = std::chrono::steady_clock::now();
  plan_ = wb_.plan(asserts_);
  last_plan_ms_ = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

  // Execution Analyzers: one instrumented sequential run (§2.3.1).
  dynamic::DynDepAnalyzer::Options dd_opts;
  for (const parallelizer::LoopPlan* lp : plan_.ordered()) {
    std::set<const ir::Variable*> ignore;
    for (const auto& [v, vv] : lp->verdict.vars) {
      if (vv.cls == analysis::VarClass::Reduction ||
          vv.cls == analysis::VarClass::LoopIndex) {
        ignore.insert(v);
      }
    }
    if (!ignore.empty()) dd_opts.ignore[lp->loop] = std::move(ignore);
  }
  profiler_ = dynamic::LoopProfiler();
  dyndep_ = std::make_unique<dynamic::DynDepAnalyzer>(dd_opts);
  dynamic::Interpreter interp(wb_.program());
  interp.set_inputs(cfg_.inputs);
  interp.add_hook(&profiler_);
  interp.add_hook(dyndep_.get());
  interp.run(cfg_.max_cost);

  // Speculation round (opt-in): promote statically-rejected loops on the
  // evidence just gathered, then run them under the speculative executive so
  // the report carries observed commit/misspeculation outcomes. The breaker
  // carries over between rounds: chronic misspeculators stay demoted.
  spec_decisions_.clear();
  spec_result_ = {};
  if (cfg_.speculate) {
    parallelizer::SpeculationPlanner planner(cfg_.spec_options);
    std::vector<const ir::Stmt*> cands =
        parallelizer::SpeculationPlanner::candidates(plan_);
    spec_decisions_ =
        planner.promote(plan_, dynamic::gather_evidence(cands, *dyndep_, profiler_));
    dynamic::SpecExecOptions so;
    so.workers = cfg_.spec_workers;
    so.max_cost = cfg_.max_cost;
    so.breaker = &spec_breaker_;
    spec_result_ = dynamic::run_speculative(wb_.program(), plan_, cfg_.inputs, so);
  }

  // Chosen outermost parallel loops under the current plan.
  sim::SmpSimulator simulator(wb_.program(), wb_.dataflow(), wb_.regions());
  std::vector<const ir::Stmt*> chosen = simulator.outermost_parallel(plan_);
  std::set<const ir::Stmt*> chosen_set(chosen.begin(), chosen.end());
  std::set<const ir::Stmt*> nested = nested_under(wb_.program(), chosen);

  reports_.clear();
  for (const parallelizer::LoopPlan* plp : plan_.ordered()) {
    const ir::Stmt* loop = plp->loop;
    const parallelizer::LoopPlan& lp = *plp;
    LoopReport r;
    r.loop = loop;
    const dynamic::LoopStats* st = profiler_.find(loop);
    r.executed = st != nullptr && st->invocations > 0;
    r.has_calls = wb_.dataflow().loop_has_call(loop);
    r.coverage = profiler_.coverage(loop);
    r.granularity_ms = profiler_.granularity_ms(loop);
    r.invocations = st != nullptr ? st->invocations : 0;
    r.auto_parallel = lp.parallelizable && !lp.used_assertion;
    r.runs_parallel = chosen_set.count(loop) != 0;
    r.num_static_deps = lp.verdict.num_dependences;
    r.dep_vars = lp.verdict.dependent_vars();
    r.dynamic_dep = dyndep_->observed_carried(loop);
    r.blocked_reason = lp.reason;
    r.strategy = lp.strategy;
    r.alias_refined = lp.alias_refined;
    for (const parallelizer::AliasPayoff& ap : lp.alias_payoffs) {
      r.alias_payoff = std::max(r.alias_payoff, ap.score);
    }
    r.speculative = lp.strategy == parallelizer::Strategy::Speculative;
    if (r.speculative) {
      auto so = spec_result_.loops.find(loop->loop_name());
      if (so != spec_result_.loops.end()) r.misspec_rate = so->second.misspec_rate();
    }
    r.user_parallelized =
        lp.parallelizable && lp.used_assertion && user_parallelized_.count(loop) != 0;
    r.important = r.executed && !lp.parallelizable && !lp.verdict.has_io &&
                  nested.count(loop) == 0 &&
                  r.coverage >= cfg_.coverage_cutoff &&
                  r.granularity_ms >= cfg_.granularity_cutoff_ms;
    if (first_analysis_ && r.important) initial_important_.insert(loop);
    reports_.push_back(std::move(r));
  }
  first_analysis_ = false;
  std::sort(reports_.begin(), reports_.end(), [&](const LoopReport& a, const LoopReport& b) {
    if (a.coverage != b.coverage) return a.coverage > b.coverage;
    // Tie-break on source location so report order is stable across runs
    // (the map behind the plan is pointer-keyed).
    if (a.loop->line != b.loop->line) return a.loop->line < b.loop->line;
    return a.loop->id < b.loop->id;
  });
}

std::string Guru::planning_profile() const {
  const parallelizer::Driver& drv = wb_.driver();
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  size_t w = sizeof("plan round") - 1;
  for (const auto& [name, ms] : wb_.pass_times_ms()) w = std::max(w, name.size());
  for (const auto& [name, ms] : wb_.pass_times_ms()) {
    os << name << std::string(w - name.size() + 2, ' ') << ms << " ms\n";
  }
  os << "plan round" << std::string(w - (sizeof("plan round") - 1) + 2, ' ')
     << last_plan_ms_ << " ms (driver: " << drv.workers() << " workers, "
     << drv.cache_hits() << " hits / " << drv.cache_misses() << " misses)\n";
  os << "dominant pass: " << wb_.dominant_pass() << "\n";
  os << "liveness mode: "
     << (wb_.liveness() != nullptr ? analysis::to_string(wb_.liveness()->mode())
                                   : "disabled")
     << "\n";
  // Tiered alias oracle (docs/dataflow.md). Printed only when armed, so the
  // tier-0 profile is byte-identical to builds that predate the tier.
  if (wb_.alias_tier() >= 1) {
    int refined = 0, scored = 0;
    for (const parallelizer::LoopPlan* lp : plan_.ordered()) {
      refined += lp->alias_refined ? 1 : 0;
      scored += lp->alias_payoffs.empty() ? 0 : 1;
    }
    os << "alias tier: " << wb_.alias_tier()
       << " (lazy Andersen escalation; " << refined << " loop(s) refined, "
       << scored << " blob-blocked)\n";
  }
  // The robustness report (docs/robustness.md): which parts of this profile
  // ran at a degraded tier, so the user knows the plan may be conservative.
  if (drv.degraded_loops() != 0) {
    os << "degraded loops: " << drv.degraded_loops()
       << " (conservative assume-dependence plans)\n";
  }
  for (const std::string& d : wb_.degradations()) {
    os << "degraded: " << d << "\n";
  }
  // Staged strategies (docs/pdg_planning.md): loops the classic ladder left
  // serial that the StrategyPlanner promoted off their PDGs.
  {
    int pipelines = 0, doacrosses = 0;
    for (const parallelizer::LoopPlan* lp : plan_.ordered()) {
      pipelines += lp->strategy == parallelizer::Strategy::Pipeline ? 1 : 0;
      doacrosses += lp->strategy == parallelizer::Strategy::Doacross ? 1 : 0;
    }
    if (pipelines + doacrosses != 0) {
      os << "staged strategies: " << pipelines << " pipeline, " << doacrosses
         << " doacross\n";
    }
  }
  if (cfg_.speculate) {
    int promoted = 0;
    for (const parallelizer::SpecDecision& d : spec_decisions_) {
      promoted += d.promoted ? 1 : 0;
    }
    os << "speculation: " << promoted << "/" << spec_decisions_.size()
       << " candidates promoted, " << spec_result_.attempts() << " attempts, "
       << spec_result_.commits() << " commits, "
       << spec_result_.misspeculations() << " misspeculations\n";
    for (const auto& [name, o] : spec_result_.loops) {
      if (o.demoted) {
        os << "demoted: " << name
           << " (misspeculation rate " << o.misspec_rate()
           << "; executing serially)\n";
      }
    }
  }
  return os.str();
}

std::string Guru::explain(const ir::Stmt* loop) const {
  const parallelizer::LoopPlan* lp = plan_.find(loop);
  if (lp == nullptr) return "";
  std::string out;
  if (lp->why != nullptr) {
    out = lp->why->text();
  } else {
    // Provenance was disabled when this plan was produced: fall back to the
    // one-line reason so the Explorer still shows something actionable.
    out = "loop " + loop->loop_name() + ": " +
          (lp->parallelizable ? "parallel" : "serial");
    if (!lp->reason.empty()) out += " (" + lp->reason + ")";
    out += "\n  (provenance disabled: no causal record)\n";
  }
  // Build-level degradations are deliberately NOT part of the per-loop
  // record (they are properties of the build, and keeping them out is what
  // makes records byte-stable across rebuilds) — append them here so the
  // user still sees when the verdict rests on lowered fidelity.
  for (const std::string& d : wb_.degradations()) {
    out += "  ! build degradation: " + d + "\n";
  }
  // Tier-1 escalation surface: the alias-refined entries in the record above
  // say which members were carved out; the payoff scores say how promising
  // escalation looked per blocking class (for still-serial loops they are
  // the Guru's suggestion ranking).
  if (!lp->alias_payoffs.empty()) {
    for (const parallelizer::AliasPayoff& ap : lp->alias_payoffs) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", ap.score);
      out += "  alias payoff: " + ap.var->name + " " + buf +
             " (fraction of the blob class declared disjoint)\n";
    }
  }
  // Staged strategy shape: the provenance record above says why the
  // promotion was legal (the pipeline-staged/doacross-synced entry); this is
  // the executable recipe the interpreter follows.
  if (lp->staging != nullptr) {
    const runtime::staged::StagedLoopPlan& sp = *lp->staging;
    if (lp->strategy == parallelizer::Strategy::Pipeline) {
      out += "  staged: pipeline, " + std::to_string(sp.stages.size()) +
             " stage(s) (" + std::to_string(sp.num_sequential_stages()) +
             " sequential), " + std::to_string(sp.channels.size()) +
             " channel(s)";
      for (const runtime::staged::Channel& c : sp.channels) {
        out += " " + c.var->name + ":" + std::to_string(c.producer_stage) +
               ">" + std::to_string(c.consumer_stage);
      }
      out += "\n";
    } else {
      out += "  staged: doacross, sync distance " +
             std::to_string(sp.sync_distance) + ", " +
             std::to_string(sp.fixups.size()) + " finalization fixup(s)\n";
    }
  }
  // Speculation outcome: why the loop was promoted is in the record above
  // (speculation-attempted entry); whether it paid off comes from the
  // executive's accounting for this round.
  if (lp->strategy == parallelizer::Strategy::Speculative) {
    auto it = spec_result_.loops.find(loop->loop_name());
    if (it != spec_result_.loops.end()) {
      const dynamic::SpecLoopOutcome& o = it->second;
      out += "  speculation outcome: " + std::to_string(o.attempts) +
             " attempt(s), " + std::to_string(o.commits) + " commit(s), " +
             std::to_string(o.misspeculations) + " misspeculation(s)";
      if (!o.last_detail.empty()) out += "; last conflict: " + o.last_detail;
      out += "\n";
      if (o.demoted) {
        out += "  ! demoted: chronic misspeculation; the loop executes "
               "serially from here on\n";
      }
    } else if (cfg_.speculate) {
      out += "  speculation outcome: promoted, but the loop did not execute "
             "on this input\n";
    }
  }
  return out;
}

std::vector<const LoopReport*> Guru::targets() const {
  std::vector<const LoopReport*> out;
  for (const LoopReport& r : reports_) {
    if (r.important) out.push_back(&r);
  }
  // Tier >= 1: suggestions the Andersen oracle is likelier to unblock float
  // up. Stable, and every tier-0 score is 0, so tier 0 keeps the pure
  // coverage order.
  std::stable_sort(out.begin(), out.end(),
                   [](const LoopReport* a, const LoopReport* b) {
                     return a->alias_payoff > b->alias_payoff;
                   });
  return out;
}

bool Guru::assert_privatizable(const ir::Stmt* loop, const ir::Variable* var,
                               std::string* warning) {
  const ir::Variable* canon = wb_.alias().canonical(var);
  const dynamic::DynDepResult& dyn = dyndep_->result(loop);
  if (dyn.dep_vars.count(canon) != 0) {
    if (warning != nullptr) {
      *warning = "assertion contradicted: a cross-iteration flow dependence on '" +
                 var->name + "' was observed for the supplied input set";
    }
    return false;
  }
  if ((canon->kind == ir::VarKind::Global || canon->kind == ir::VarKind::CommonMember) &&
      wb_.dataflow().loop_has_call(loop) && warning != nullptr) {
    // §2.8: the privatization is propagated to every procedure called in the
    // loop that accesses the same array (canonical storage covers them all).
    *warning = "note: '" + var->name +
               "' is shared storage; the privatization is applied across all "
               "procedures called in the loop";
  }
  user_parallelized_.insert(loop);
  asserts_.privatize[loop].insert(canon);
  analyze();
  return true;
}

bool Guru::assert_independent(const ir::Stmt* loop, const ir::Variable* var,
                              std::string* warning) {
  const ir::Variable* canon = wb_.alias().canonical(var);
  const dynamic::DynDepResult& dyn = dyndep_->result(loop);
  if (dyn.dep_vars.count(canon) != 0) {
    if (warning != nullptr) {
      *warning = "assertion contradicted: a true dependence on '" + var->name +
                 "' was observed for the supplied input set";
    }
    return false;
  }
  user_parallelized_.insert(loop);
  asserts_.independent[loop].insert(canon);
  analyze();
  return true;
}

bool Guru::assert_parallel(const ir::Stmt* loop, std::string* warning) {
  if (dyndep_->observed_carried(loop)) {
    if (warning != nullptr) {
      *warning = "assertion contradicted: the Dynamic Dependence Analyzer observed a "
                 "loop-carried dependence in " +
                 loop->loop_name();
    }
    return false;
  }
  user_parallelized_.insert(loop);
  asserts_.force_parallel.insert(loop);
  analyze();
  return true;
}

sim::SimResult Guru::simulate(int nproc, const sim::MachineConfig& machine) const {
  sim::SmpSimulator simulator(wb_.program(), wb_.dataflow(), wb_.regions());
  sim::SimOptions opts;
  opts.machine = machine;
  opts.nproc = nproc;
  for (const auto& [name, o] : spec_result_.loops) {
    opts.spec_misspec_rate[name] = o.misspec_rate();
  }
  opts.reshuffle_elems = sim::analyze_decomposition_conflicts(
      wb_.program(), wb_.dataflow(), plan_, simulator.outermost_parallel(plan_),
      /*split_commons=*/false);
  return simulator.simulate(plan_, profiler_, opts);
}

double Guru::coverage() const {
  sim::SmpSimulator simulator(wb_.program(), wb_.dataflow(), wb_.regions());
  double in_par = 0;
  for (const ir::Stmt* loop : simulator.outermost_parallel(plan_)) {
    const dynamic::LoopStats* st = profiler_.find(loop);
    if (st != nullptr) in_par += static_cast<double>(st->total_cost);
  }
  uint64_t total = profiler_.program_cost();
  return total > 0 ? in_par / static_cast<double>(total) : 0.0;
}

double Guru::granularity_ms() const {
  sim::SmpSimulator simulator(wb_.program(), wb_.dataflow(), wb_.regions());
  double cost = 0, inv = 0;
  for (const ir::Stmt* loop : simulator.outermost_parallel(plan_)) {
    const dynamic::LoopStats* st = profiler_.find(loop);
    if (st != nullptr) {
      cost += static_cast<double>(st->total_cost);
      inv += static_cast<double>(st->invocations);
    }
  }
  return inv > 0 ? cost / inv * dynamic::LoopProfiler::kMsPerUnit : 0.0;
}

InterventionStats Guru::intervention_stats() const {
  InterventionStats st;
  sim::SmpSimulator simulator(wb_.program(), wb_.dataflow(), wb_.regions());
  std::vector<const ir::Stmt*> chosen = simulator.outermost_parallel(plan_);
  std::set<const ir::Stmt*> nested = nested_under(wb_.program(), chosen);
  for (const LoopReport& r : reports_) {
    if (!r.executed) continue;
    auto bump = [&](int& inter, int& intra) { (r.has_calls ? inter : intra)++; };
    bump(st.executed_inter, st.executed_intra);
    const parallelizer::LoopPlan* lp = plan_.find(r.loop);
    bool auto_par = lp->parallelizable && !lp->used_assertion;
    if (!auto_par && !r.user_parallelized) {
      bump(st.sequential_inter, st.sequential_intra);
    } else if (r.user_parallelized) {
      bump(st.sequential_inter, st.sequential_intra);  // was sequential before
    }
    bool was_important = initial_important_.count(r.loop) != 0;
    if (was_important) {
      bump(st.important_inter, st.important_intra);
      if (!r.dynamic_dep) bump(st.important_no_dyndep_inter, st.important_no_dyndep_intra);
    }
    if (r.user_parallelized) bump(st.user_parallelized_inter, st.user_parallelized_intra);
    bool remaining = was_important && !lp->parallelizable && nested.count(r.loop) == 0;
    if (remaining) bump(st.remaining_important_inter, st.remaining_important_intra);
  }
  return st;
}

}  // namespace suifx::explorer
