// The Parallelization Guru (§2.6): integrates the static plan with the
// Execution Analyzers' profile and dynamic-dependence data, ranks the
// important sequential loops (coverage and granularity cutoffs, §4.3.2),
// checks user assertions against the dynamic evidence (§2.8), and
// re-parallelizes as assertions accumulate.
#pragma once

#include "dynamic/dyndep.h"
#include "dynamic/profile.h"
#include "dynamic/specexec.h"
#include "explorer/workbench.h"
#include "parallelizer/speculate.h"
#include "simulator/smp.h"

namespace suifx::explorer {

struct GuruConfig {
  /// "The important loops are those whose coverage is larger than 2% and
  /// granularity is larger than 0.05 milliseconds" (§4.3.2).
  double coverage_cutoff = 0.02;
  double granularity_cutoff_ms = 0.05;
  dynamic::Inputs inputs;
  uint64_t max_cost = 2'000'000'000ULL;
  /// Opt-in speculative parallelization (docs/speculation.md): after the
  /// instrumented run, promote statically-rejected loops on the dynamic
  /// evidence and execute them under the speculative executive.
  bool speculate = false;
  parallelizer::SpecOptions spec_options;
  /// Validation workers for the executive (results identical at any count).
  int spec_workers = 1;
};

struct LoopReport {
  const ir::Stmt* loop = nullptr;
  bool executed = false;
  bool has_calls = false;
  double coverage = 0;
  double granularity_ms = 0;
  uint64_t invocations = 0;
  bool auto_parallel = false;        // parallelized by the compiler
  bool runs_parallel = false;        // chosen outermost parallel loop
  bool important = false;            // sequential + cutoffs + not nested + no IO
  bool dynamic_dep = false;          // Dynamic Dependence Analyzer observed one
  int num_static_deps = 0;
  std::vector<const ir::Variable*> dep_vars;
  bool user_parallelized = false;
  std::string blocked_reason;
  bool speculative = false;    // promoted by the SpeculationPlanner
  double misspec_rate = 0;     // observed under the executive this round
  /// Alias tier >= 1 only: the best tier-1 payoff score among the blob
  /// classes blocking this loop (0 when none) — targets() ranks equally
  /// covered suggestions by it — and whether the verdict was obtained after
  /// the Andersen oracle carved the blockers out of their blobs.
  double alias_payoff = 0;
  bool alias_refined = false;
  /// Execution strategy under the current plan — Pipeline/Doacross mark
  /// loops the StrategyPlanner staged (docs/pdg_planning.md).
  parallelizer::Strategy strategy = parallelizer::Strategy::Serial;
};

/// Aggregate counters matching Fig 4-7's rows.
struct InterventionStats {
  int executed_inter = 0, executed_intra = 0;
  int sequential_inter = 0, sequential_intra = 0;
  int important_inter = 0, important_intra = 0;
  int important_no_dyndep_inter = 0, important_no_dyndep_intra = 0;
  int user_parallelized_inter = 0, user_parallelized_intra = 0;
  int remaining_important_inter = 0, remaining_important_intra = 0;
};

class Guru {
 public:
  Guru(Workbench& wb, GuruConfig cfg = {});

  /// Run the compiler + Execution Analyzers; call again after assertions.
  void analyze();

  /// Where the last planning round's time went: the static-analysis pass
  /// times recorded by the Workbench, the round's plan wall time, and the
  /// driver's cache behavior — so the user can see which analysis dominated
  /// (e.g. "dominant pass: array_dataflow"). One aligned line per entry.
  std::string planning_profile() const;

  /// Why this loop got its verdict: the provenance record from the current
  /// plan (dependence pairs, alias assumptions, privatizations, assertions),
  /// followed by any build-level pass degradations that lowered analysis
  /// fidelity. "" when the loop is not in the plan. docs/provenance.md.
  std::string explain(const ir::Stmt* loop) const;

  /// Every executed loop's report.
  const std::vector<LoopReport>& loops() const { return reports_; }
  /// The worklist presented to the programmer: important sequential loops
  /// sorted by decreasing execution time (§2.6). At alias tier >= 1, loops
  /// are additionally ranked by their tier-1 payoff score (stable, so the
  /// coverage order is the tie-break and tier 0 is unchanged).
  std::vector<const LoopReport*> targets() const;

  /// §2.8 Assertion Checker. Returns false and sets *warning when the
  /// available dynamic information contradicts the assertion; a privatization
  /// assertion on a commonly-accessed array is propagated automatically.
  bool assert_privatizable(const ir::Stmt* loop, const ir::Variable* var,
                           std::string* warning = nullptr);
  bool assert_independent(const ir::Stmt* loop, const ir::Variable* var,
                          std::string* warning = nullptr);
  bool assert_parallel(const ir::Stmt* loop, std::string* warning = nullptr);

  const parallelizer::Assertions& assertions() const { return asserts_; }
  const parallelizer::ParallelPlan& plan() const { return plan_; }
  const dynamic::LoopProfiler& profiler() const { return profiler_; }
  const dynamic::DynDepAnalyzer& dyndep() const { return *dyndep_; }

  /// Speculation round results (empty unless cfg.speculate): every
  /// candidate's promotion decision, and the executive's per-loop outcomes.
  const std::vector<parallelizer::SpecDecision>& spec_decisions() const {
    return spec_decisions_;
  }
  const dynamic::SpecRunResult& speculation() const { return spec_result_; }
  /// The circuit breaker: persists across analyze() rounds, so a loop that
  /// keeps misspeculating is demoted for the rest of the session.
  const runtime::spec::SpecBreaker& spec_breaker() const { return spec_breaker_; }

  /// Simulated whole-program speedup under the current plan.
  sim::SimResult simulate(int nproc, const sim::MachineConfig& machine) const;

  /// Coverage/granularity of the current plan's parallel regions on the
  /// recorded profile.
  double coverage() const;
  double granularity_ms() const;

  InterventionStats intervention_stats() const;

 private:
  Workbench& wb_;
  GuruConfig cfg_;
  parallelizer::Assertions asserts_;
  parallelizer::ParallelPlan plan_;
  dynamic::LoopProfiler profiler_;
  std::unique_ptr<dynamic::DynDepAnalyzer> dyndep_;
  std::vector<LoopReport> reports_;
  std::vector<parallelizer::SpecDecision> spec_decisions_;
  dynamic::SpecRunResult spec_result_;
  runtime::spec::SpecBreaker spec_breaker_;
  std::set<const ir::Stmt*> user_parallelized_;
  /// Importance as judged on the automatic plan (the Fig 4-7 basis): the
  /// worklist the programmer started from.
  std::set<const ir::Stmt*> initial_important_;
  bool first_analysis_ = true;
  double last_plan_ms_ = 0;  // wall time of the last analyze() plan round
};

}  // namespace suifx::explorer
