#include "explorer/workbench.h"

#include <chrono>

#include "support/trace.h"

namespace suifx::explorer {

namespace {

/// Times one pass-construction step into the workbench's per-pass map.
class PassClock {
 public:
  PassClock(std::map<std::string, double>& out, const char* name)
      : out_(out), name_(name), t0_(std::chrono::steady_clock::now()) {}
  ~PassClock() {
    out_[name_] = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0_)
                      .count();
  }
  PassClock(const PassClock&) = delete;
  PassClock& operator=(const PassClock&) = delete;

 private:
  std::map<std::string, double>& out_;
  const char* name_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

std::unique_ptr<Workbench> Workbench::from_source(
    std::string_view src, Diag& diag,
    std::optional<analysis::LivenessMode> liveness_mode, bool enable_reductions) {
  support::trace::init_from_env();  // SUIFX_TRACE=<path> activates tracing
  support::trace::TraceSpan span("workbench/build");
  auto prog = frontend::parse_program(src, diag);
  if (prog == nullptr) return nullptr;
  auto wb = std::make_unique<Workbench>();
  wb->prog_ = std::move(prog);
  {
    PassClock t(wb->pass_ms_, "alias");
    wb->alias_ = std::make_unique<analysis::AliasAnalysis>(*wb->prog_);
  }
  {
    PassClock t(wb->pass_ms_, "callgraph");
    wb->cg_ = std::make_unique<graph::CallGraph>(*wb->prog_);
  }
  {
    PassClock t(wb->pass_ms_, "regions");
    wb->regions_ = std::make_unique<graph::RegionTree>(*wb->prog_);
  }
  {
    PassClock t(wb->pass_ms_, "modref");
    wb->modref_ =
        std::make_unique<analysis::ModRef>(*wb->prog_, *wb->alias_, *wb->cg_);
  }
  {
    PassClock t(wb->pass_ms_, "symbolic");
    wb->symbolic_ = std::make_unique<analysis::Symbolic>(*wb->prog_, *wb->alias_,
                                                         *wb->modref_, *wb->cg_);
  }
  {
    PassClock t(wb->pass_ms_, "array_dataflow");
    wb->df_ = std::make_unique<analysis::ArrayDataflow>(
        *wb->prog_, *wb->alias_, *wb->modref_, *wb->cg_, *wb->regions_,
        *wb->symbolic_);
  }
  if (liveness_mode.has_value()) {
    PassClock t(wb->pass_ms_, "liveness");
    wb->live_ = std::make_unique<analysis::ArrayLiveness>(
        *wb->prog_, *wb->df_, *wb->cg_, *wb->regions_, *wb->alias_, *liveness_mode);
  }
  wb->par_ = std::make_unique<parallelizer::Parallelizer>(
      *wb->df_, *wb->regions_, wb->live_.get(), enable_reductions);
  wb->driver_ = std::make_unique<parallelizer::Driver>(*wb->par_);
  {
    PassClock t(wb->pass_ms_, "issa");
    wb->issa_ = std::make_unique<ssa::Issa>(*wb->prog_, *wb->alias_, *wb->modref_);
  }
  return wb;
}

std::string Workbench::dominant_pass() const {
  std::string best;
  double best_ms = -1;
  for (const auto& [name, ms] : pass_ms_) {
    if (ms > best_ms) {
      best_ms = ms;
      best = name;
    }
  }
  return best;
}

ir::Stmt* Workbench::loop(const std::string& name) const {
  ir::Stmt* found = nullptr;
  for (auto& p : prog_->procedures()) {
    p.for_each([&](ir::Stmt* s) {
      if (s->kind == ir::StmtKind::Do && s->loop_name() == name) found = s;
    });
  }
  return found;
}

const ir::Variable* Workbench::var(const std::string& name) const {
  auto dot = name.find('.');
  if (dot != std::string::npos) {
    ir::Procedure* p = prog_->find_procedure(name.substr(0, dot));
    if (p != nullptr) {
      if (ir::Variable* v = p->find_var(name.substr(dot + 1))) return v;
    }
    return nullptr;
  }
  for (const ir::Variable* g : prog_->globals()) {
    if (g->name == name) return g;
  }
  for (const auto& p : prog_->procedures()) {
    if (ir::Variable* v = p.find_var(name)) return v;
  }
  return nullptr;
}

}  // namespace suifx::explorer
