#include "explorer/workbench.h"

#include <chrono>
#include <cstdlib>

#include "support/budget.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/provenance.h"
#include "support/trace.h"

namespace suifx::explorer {

namespace {

/// Times one pass-construction step into the workbench's per-pass map.
class PassClock {
 public:
  PassClock(std::map<std::string, double>& out, const char* name)
      : out_(out), name_(name), t0_(std::chrono::steady_clock::now()) {}
  ~PassClock() {
    out_[name_] = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0_)
                      .count();
  }
  PassClock(const PassClock&) = delete;
  PassClock& operator=(const PassClock&) = delete;

 private:
  std::map<std::string, double>& out_;
  const char* name_;
  std::chrono::steady_clock::time_point t0_;
};

/// Run an essential pass builder; if it throws (injected fault, exhausted
/// budget), retry ONCE with faults suppressed and no budget installed — the
/// retry cannot fail the same way, so the pipeline survives any single
/// injected failure. A genuine analysis bug still propagates from the retry.
template <typename Fn>
void guarded(std::vector<std::string>& degradations, Diag& diag,
             const char* pass, Fn&& build) {
  try {
    build();
    return;
  } catch (const std::exception& ex) {
    support::Metrics::global().count("degrade.pass.retry");
    support::trace::TraceSpan span("degrade",
                                   std::string(pass) + ": retry: " + ex.what());
    support::provenance::event(
        support::provenance::Kind::Degraded, "", pass,
        std::string("pass failed (") + ex.what() +
            "); retried with faults suppressed and no budget");
    degradations.push_back(std::string(pass) + ": retried after: " + ex.what());
    diag.warning({}, std::string(pass) + " failed (" + ex.what() +
                         "); retrying with faults suppressed");
  }
  support::fault::SuppressScope no_faults;
  support::Budget::Scope no_budget(nullptr);
  build();
}

}  // namespace

std::unique_ptr<Workbench> Workbench::from_source(
    std::string_view src, Diag& diag,
    std::optional<analysis::LivenessMode> liveness_mode, bool enable_reductions,
    int alias_tier) {
  support::trace::init_from_env();  // SUIFX_TRACE=<path> activates tracing
  support::fault::Registry::global().init_from_env();  // SUIFX_FAULT=<spec>
  support::provenance::init_from_env();  // SUIFX_PROVENANCE / _JSON
  support::trace::TraceSpan span("workbench/build");
  auto prog = frontend::parse_program(src, diag);
  if (prog == nullptr) return nullptr;
  auto wb = std::make_unique<Workbench>();
  wb->prog_ = std::move(prog);

  // One budget for the whole build, from SUIFX_BUDGET_STEPS /
  // SUIFX_DEADLINE_MS (unlimited when unset — Scope with an unlimited budget
  // costs one atomic bump per charge). A budget already installed on this
  // thread — a daemon's per-request budget (service::AnalysisService) —
  // takes precedence over the env-derived one.
  support::Budget build_budget(support::Budget::limits_from_env());
  support::Budget::Scope budget_scope(support::Budget::current() != nullptr
                                          ? support::Budget::current()
                                          : &build_budget);
  std::vector<std::string>& deg = wb->degradations_;

  guarded(deg, diag, "alias", [&] {
    PassClock t(wb->pass_ms_, "alias");
    wb->alias_ = std::make_unique<analysis::AliasAnalysis>(*wb->prog_);
  });
  guarded(deg, diag, "callgraph", [&] {
    PassClock t(wb->pass_ms_, "callgraph");
    wb->cg_ = std::make_unique<graph::CallGraph>(*wb->prog_);
  });
  guarded(deg, diag, "regions", [&] {
    PassClock t(wb->pass_ms_, "regions");
    wb->regions_ = std::make_unique<graph::RegionTree>(*wb->prog_);
  });
  guarded(deg, diag, "modref", [&] {
    PassClock t(wb->pass_ms_, "modref");
    wb->modref_ =
        std::make_unique<analysis::ModRef>(*wb->prog_, *wb->alias_, *wb->cg_);
  });
  guarded(deg, diag, "symbolic", [&] {
    PassClock t(wb->pass_ms_, "symbolic");
    wb->symbolic_ = std::make_unique<analysis::Symbolic>(*wb->prog_, *wb->alias_,
                                                         *wb->modref_, *wb->cg_);
  });
  guarded(deg, diag, "array_dataflow", [&] {
    PassClock t(wb->pass_ms_, "array_dataflow");
    wb->df_ = std::make_unique<analysis::ArrayDataflow>(
        *wb->prog_, *wb->alias_, *wb->modref_, *wb->cg_, *wb->regions_,
        *wb->symbolic_);
  });

  // Liveness is optional precision, not correctness (plan_loop treats a null
  // liveness as "everything live"): instead of a blind retry, fall down the
  // ladder Full -> OneBit -> FlowInsensitive -> disabled. Every rung is
  // conservative w.r.t. the one above (docs/robustness.md), so a degraded
  // build can only lose parallel loops, never gain unsound ones.
  if (liveness_mode.has_value()) {
    static const analysis::LivenessMode kLadder[] = {
        analysis::LivenessMode::Full, analysis::LivenessMode::OneBit,
        analysis::LivenessMode::FlowInsensitive};
    size_t rung = 0;
    while (kLadder[rung] != *liveness_mode) ++rung;
    PassClock t(wb->pass_ms_, "liveness");
    for (; rung < 3 && wb->live_ == nullptr; ++rung) {
      try {
        wb->live_ = std::make_unique<analysis::ArrayLiveness>(
            *wb->prog_, *wb->df_, *wb->cg_, *wb->regions_, *wb->alias_,
            kLadder[rung]);
      } catch (const std::exception& ex) {
        support::Metrics::global().count("degrade.liveness");
        const char* next =
            rung + 1 < 3 ? analysis::to_string(kLadder[rung + 1]) : "disabled";
        std::string what = std::string("liveness: ") +
                           analysis::to_string(kLadder[rung]) + " -> " + next +
                           ": " + ex.what();
        support::trace::TraceSpan dspan("degrade", what);
        support::provenance::event(support::provenance::Kind::Degraded, "",
                                   "liveness", what);
        deg.push_back(what);
        diag.warning({}, what);
      }
    }
    // All three rungs failed: proceed without array liveness (the base
    // compiler configuration) rather than dying.
  }

  // Alias tier: explicit argument wins; -1 defers to SUIFX_ALIAS_TIER
  // (unset/invalid -> 0, so default builds and goldens stay tier-0).
  if (alias_tier < 0) {
    alias_tier = 0;
    if (const char* s = std::getenv("SUIFX_ALIAS_TIER")) {
      char* end = nullptr;
      long v = std::strtol(s, &end, 10);
      if (end != s && *end == '\0' && v > 0) alias_tier = static_cast<int>(v);
    }
  }
  wb->alias_tier_ = alias_tier;
  wb->par_ = std::make_unique<parallelizer::Parallelizer>(
      *wb->df_, *wb->regions_, wb->live_.get(), enable_reductions, alias_tier);
  wb->driver_ = std::make_unique<parallelizer::Driver>(*wb->par_);
  guarded(deg, diag, "issa", [&] {
    PassClock t(wb->pass_ms_, "issa");
    wb->issa_ = std::make_unique<ssa::Issa>(*wb->prog_, *wb->alias_, *wb->modref_);
  });
  // Stable-order the degradation record: golden tests and the fuzz oracle's
  // determinism property compare this output across independent runs.
  std::sort(deg.begin(), deg.end());
  return wb;
}

std::string Workbench::dominant_pass() const {
  std::string best;
  double best_ms = -1;
  for (const auto& [name, ms] : pass_ms_) {
    if (ms > best_ms) {
      best_ms = ms;
      best = name;
    }
  }
  return best;
}

ir::Stmt* Workbench::loop(const std::string& name) const {
  ir::Stmt* found = nullptr;
  for (auto& p : prog_->procedures()) {
    p.for_each([&](ir::Stmt* s) {
      if (s->kind == ir::StmtKind::Do && s->loop_name() == name) found = s;
    });
  }
  return found;
}

const ir::Variable* Workbench::var(const std::string& name) const {
  auto dot = name.find('.');
  if (dot != std::string::npos) {
    ir::Procedure* p = prog_->find_procedure(name.substr(0, dot));
    if (p != nullptr) {
      if (ir::Variable* v = p->find_var(name.substr(dot + 1))) return v;
    }
    return nullptr;
  }
  for (const ir::Variable* g : prog_->globals()) {
    if (g->name == name) return g;
  }
  for (const auto& p : prog_->procedures()) {
    if (ir::Variable* v = p.find_var(name)) return v;
  }
  return nullptr;
}

}  // namespace suifx::explorer
