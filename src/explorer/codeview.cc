#include "explorer/codeview.h"

#include <sstream>

#include "ir/printer.h"

namespace suifx::explorer {

std::string codeview(const Workbench& wb, const parallelizer::ParallelPlan& plan,
                     const dynamic::LoopProfiler& prof, const ir::Stmt* focus,
                     const CodeviewFilter& filter) {
  ir::Program& prog = wb.program();
  int nlines = prog.num_lines() + 1;
  std::string rows(static_cast<size_t>(nlines), '.');

  auto paint = [&](const ir::Stmt* loop, char c) {
    rows[static_cast<size_t>(loop->line) % rows.size()] = c;
    ir::for_each_nested(loop, [&](const ir::Stmt* s) {
      if (s->line > 0 && s->line < nlines) {
        rows[static_cast<size_t>(s->line)] = c;
      }
    });
  };

  // Outer loops first so inner loops repaint their own lines.
  std::vector<const ir::Stmt*> loops;
  prog.for_each_stmt([&](ir::Stmt* s) {
    if (s->kind == ir::StmtKind::Do) loops.push_back(s);
  });
  std::sort(loops.begin(), loops.end(), [](const ir::Stmt* a, const ir::Stmt* b) {
    return a->loop_depth() < b->loop_depth();
  });
  for (const ir::Stmt* loop : loops) {
    if (prof.coverage(loop) < filter.min_coverage) continue;
    if (prof.granularity_ms(loop) < filter.min_granularity_ms) continue;
    if (loop->loop_depth() > filter.max_depth) continue;
    paint(loop, plan.is_parallel(loop) ? 'o' : '#');
  }
  if (focus != nullptr) paint(focus, '*');

  std::ostringstream os;
  os << "codeview " << prog.name() << " (" << prog.num_lines() << " lines; "
     << "o=parallel #=sequential .=filtered *=focus)\n";
  constexpr int kWidth = 64;
  for (int base = 1; base < nlines; base += kWidth) {
    os.width(5);
    os << base;
    os << " |";
    for (int l = base; l < std::min(nlines, base + kWidth); ++l) {
      os << rows[static_cast<size_t>(l)];
    }
    os << "|\n";
  }
  return os.str();
}

std::string annotated_source(const Workbench& wb, const slicing::SliceResult& slice,
                             const ir::Stmt* query) {
  std::set<int> slice_lines = slice.lines();
  std::set<int> terminal_lines;
  for (const ir::Stmt* s : slice.terminals) terminal_lines.insert(s->line);

  std::string src = ir::to_string(wb.program());
  std::ostringstream os;
  // The printer's output lines do not track synthetic statement lines
  // one-to-one (declarations shift them), so annotate by statement instead:
  // walk the program and emit each procedure with markers.
  for (const ir::Procedure& p : wb.program().procedures()) {
    os << "proc " << p.name << ":\n";
    p.for_each([&](const ir::Stmt* s) {
      char mark = ' ';
      if (slice.stmts.count(s) != 0) mark = '>';
      if (slice.terminals.count(s) != 0) mark = '?';
      if (s == query) mark = '*';
      std::string text = ir::to_string(s);
      // First line of the statement's rendering only.
      auto nl = text.find('\n');
      if (nl != std::string::npos) text = text.substr(0, nl);
      os << "  " << mark << " ";
      os.width(4);
      os << s->line << "  ";
      for (int d = 0; d < s->loop_depth(); ++d) os << "  ";
      os << text << "\n";
    });
  }
  return os.str();
}

}  // namespace suifx::explorer
