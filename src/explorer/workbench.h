// The Workbench bundles the whole static-analysis stack for one program —
// the "compiler" half of the SUIF Explorer (Fig 2-2). Everything downstream
// (Guru, benches, examples) builds on it.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/depend.h"
#include "analysis/liveness.h"
#include "frontend/parser.h"
#include "graph/callgraph.h"
#include "graph/regions.h"
#include "parallelizer/driver.h"
#include "parallelizer/parallelizer.h"
#include "ssa/ssa.h"

namespace suifx::explorer {

class Workbench {
 public:
  /// Parse SF source and run the full interprocedural stack; null on parse
  /// error (details in `diag`). `liveness_mode` selects the Chapter 5
  /// precision variant; pass nullopt to skip array liveness (the base
  /// compiler configuration). `alias_tier` >= 1 arms the lazy Steensgaard ->
  /// Andersen escalation (docs/dataflow.md); -1 (the default) reads
  /// SUIFX_ALIAS_TIER from the environment, so plans — and the 17 golden
  /// snapshots — are tier-0 unless explicitly opted in.
  static std::unique_ptr<Workbench> from_source(
      std::string_view src, Diag& diag,
      std::optional<analysis::LivenessMode> liveness_mode =
          analysis::LivenessMode::Full,
      bool enable_reductions = true, int alias_tier = -1);

  ir::Program& program() const { return *prog_; }
  const analysis::AliasAnalysis& alias() const { return *alias_; }
  graph::CallGraph& callgraph() const { return *cg_; }
  const graph::RegionTree& regions() const { return *regions_; }
  const analysis::ModRef& modref() const { return *modref_; }
  const analysis::Symbolic& symbolic() const { return *symbolic_; }
  const analysis::ArrayDataflow& dataflow() const { return *df_; }
  const analysis::ArrayLiveness* liveness() const { return live_.get(); }
  const parallelizer::Parallelizer& parallelizer() const { return *par_; }
  parallelizer::Driver& driver() const { return *driver_; }
  ssa::Issa& issa() const { return *issa_; }

  /// Plan with the given assertions (empty = fully automatic). Routed
  /// through the parallel, memoized driver: a re-plan after one new
  /// assertion re-analyzes only the invalidated loop nests.
  parallelizer::ParallelPlan plan(
      const parallelizer::Assertions& asserts = {}) const {
    return driver_->plan(*prog_, asserts);
  }

  /// Find a loop by "proc/label" name (null if absent).
  ir::Stmt* loop(const std::string& name) const;
  /// Find a variable ("proc.name" or a global name).
  const ir::Variable* var(const std::string& name) const;

  /// Wall-clock ms per analysis pass, recorded while from_source built the
  /// stack (keys: alias, callgraph, regions, modref, symbolic,
  /// array_dataflow, liveness, issa). The Guru's planning profile surfaces
  /// the dominant entry so the user can see which analysis their money went
  /// to; bench/ext_observability prints the whole map.
  const std::map<std::string, double>& pass_times_ms() const { return pass_ms_; }
  /// The most expensive pass recorded above ("" before from_source).
  std::string dominant_pass() const;

  /// The resolved alias tier this stack planned with (0 = Steensgaard only,
  /// >= 1 = lazy Andersen escalation armed). Guru::planning_profile prints it.
  int alias_tier() const { return alias_tier_; }

  /// Human-readable record of every degradation the build absorbed (pass
  /// retries, liveness ladder falls), in sorted order so output is stable
  /// across runs. Empty on a clean build. Surfaced by
  /// Guru::planning_profile(); see docs/robustness.md.
  const std::vector<std::string>& degradations() const { return degradations_; }

 private:
  std::unique_ptr<ir::Program> prog_;
  std::unique_ptr<analysis::AliasAnalysis> alias_;
  std::unique_ptr<graph::CallGraph> cg_;
  std::unique_ptr<graph::RegionTree> regions_;
  std::unique_ptr<analysis::ModRef> modref_;
  std::unique_ptr<analysis::Symbolic> symbolic_;
  std::unique_ptr<analysis::ArrayDataflow> df_;
  std::unique_ptr<analysis::ArrayLiveness> live_;
  std::unique_ptr<parallelizer::Parallelizer> par_;
  std::unique_ptr<parallelizer::Driver> driver_;
  std::unique_ptr<ssa::Issa> issa_;
  std::map<std::string, double> pass_ms_;
  std::vector<std::string> degradations_;
  int alias_tier_ = 0;
};

}  // namespace suifx::explorer
