// Text visualization (§2.7): the Rivet substitutes. The Codeview gives the
// bird's-eye per-line view (filtered loops gray '.', sequential loops '#',
// parallel loops 'o', a focus bar '*'); the source viewer renders SF source
// with slice/terminal annotations; the call graph exports to Graphviz (the
// hyperbolic-browser substitute lives in graph::CallGraph::to_dot()).
#pragma once

#include "dynamic/profile.h"
#include "explorer/workbench.h"
#include "slicing/slicer.h"

namespace suifx::explorer {

struct CodeviewFilter {
  /// Hide loops below these thresholds (the §2.7 sliders).
  double min_coverage = 0.0;
  double min_granularity_ms = 0.0;
  int max_depth = 1 << 20;
};

/// One row per synthetic source line:
///   'o' inside an (unfiltered) parallel loop, '#' inside an unfiltered
///   sequential loop, '.' filtered/other code, '*' the focus loop's lines.
std::string codeview(const Workbench& wb, const parallelizer::ParallelPlan& plan,
                     const dynamic::LoopProfiler& prof, const ir::Stmt* focus = nullptr,
                     const CodeviewFilter& filter = {});

/// Annotated source viewer: the full program listing with '>' on slice
/// lines, '?' on pruned terminal lines, and '*' on the queried statement.
std::string annotated_source(const Workbench& wb, const slicing::SliceResult& slice,
                             const ir::Stmt* query = nullptr);

}  // namespace suifx::explorer
