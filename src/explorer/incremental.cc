#include "explorer/incremental.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "analysis/modref.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace suifx::explorer {

namespace {

// FNV-1a with explicit framing (lengths and kind tags), so "ab"+"c" and
// "a"+"bc" hash differently and tree shapes cannot collide by concatenation.
class Hasher {
 public:
  void u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<uint8_t>(v >> (8 * i)));
  }
  void str(const std::string& s) {
    for (char c : s) byte(static_cast<uint8_t>(c));
    u64(s.size());
  }
  void real(double d) {
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof bits);
    u64(bits);
  }
  uint64_t value() const { return h_; }

 private:
  void byte(uint8_t b) {
    h_ ^= b;
    h_ *= 1099511628211ULL;
  }
  uint64_t h_ = 1469598103934665603ULL;
};

void hash_expr(Hasher& h, const ir::Expr* e) {
  if (e == nullptr) {
    h.u64(0);
    return;
  }
  h.u64(1 + static_cast<uint64_t>(e->kind));
  h.u64(static_cast<uint64_t>(e->type));
  switch (e->kind) {
    case ir::ExprKind::IntConst:
      h.u64(static_cast<uint64_t>(e->ival));
      break;
    case ir::ExprKind::RealConst:
      h.real(e->rval);
      break;
    case ir::ExprKind::VarRef:
      h.str(e->var->qualified_name());
      break;
    case ir::ExprKind::ArrayRef:
      h.str(e->var->qualified_name());
      h.u64(e->idx.size());
      for (const ir::Expr* ix : e->idx) hash_expr(h, ix);
      break;
    case ir::ExprKind::Binary:
      h.u64(static_cast<uint64_t>(e->bop));
      hash_expr(h, e->a);
      hash_expr(h, e->b);
      break;
    case ir::ExprKind::Unary:
      h.u64(static_cast<uint64_t>(e->uop));
      hash_expr(h, e->a);
      break;
  }
}

void hash_body(Hasher& h, const std::vector<ir::Stmt*>& body);

void hash_stmt(Hasher& h, const ir::Stmt* s) {
  h.u64(1 + static_cast<uint64_t>(s->kind));
  switch (s->kind) {
    case ir::StmtKind::Assign:
      hash_expr(h, s->lhs);
      hash_expr(h, s->rhs);
      break;
    case ir::StmtKind::If:
      hash_expr(h, s->cond);
      hash_body(h, s->then_body);
      hash_body(h, s->else_body);
      break;
    case ir::StmtKind::Do:
      h.str(s->ivar->qualified_name());
      h.str(s->label);
      hash_expr(h, s->lb);
      hash_expr(h, s->ub);
      hash_expr(h, s->step);
      hash_body(h, s->body);
      break;
    case ir::StmtKind::Call:
      h.str(s->callee != nullptr ? s->callee->name : "");
      h.u64(s->args.size());
      for (const ir::Expr* a : s->args) hash_expr(h, a);
      break;
    case ir::StmtKind::Print:
      hash_expr(h, s->value);
      break;
    case ir::StmtKind::Nop:
      break;
  }
}

void hash_body(Hasher& h, const std::vector<ir::Stmt*>& body) {
  h.u64(body.size());
  for (const ir::Stmt* s : body) hash_stmt(h, s);
}

void hash_var_decl(Hasher& h, const ir::Variable* v) {
  h.str(v->name);
  h.u64(static_cast<uint64_t>(v->kind));
  h.u64(static_cast<uint64_t>(v->elem));
  h.u64(v->dims.size());
  for (const ir::Dim& d : v->dims) {
    hash_expr(h, d.lower);
    hash_expr(h, d.upper);
  }
  h.str(v->common != nullptr ? v->common->name : "");
  h.u64(static_cast<uint64_t>(v->common_offset));
  h.u64(v->is_input ? 1 : 0);
  h.u64(static_cast<uint64_t>(v->param_default));
}

// --- storage tags -----------------------------------------------------------
//
// Canonical names for the storage through which facts can flow between
// procedures: globals ("g:"), whole COMMON blocks ("c:"), and caller-side
// locals bound to by-reference formals ("l:"). SymParams are immutable
// (never assigned), so facts about them never change and they carry no tag —
// tagging them would make every procedure share storage with every other.

void add_tag(std::set<std::string>& out, const ir::Variable* v,
             const analysis::AliasAnalysis& alias) {
  const ir::Variable* c = alias.canonical(v);
  switch (c->kind) {
    case ir::VarKind::SymParam:
      return;
    case ir::VarKind::Global:
      out.insert("g:" + c->name);
      return;
    case ir::VarKind::CommonMember:
      out.insert("c:" + (c->common != nullptr ? c->common->name : c->name));
      return;
    default:
      out.insert("l:" + c->qualified_name());
      return;
  }
}

/// Storage `p` (or any callee) may touch: its MOD/REF sets plus the
/// caller-side actuals its touched formals bind to at every callsite. The
/// actual-binding part is what couples two procedures that share only a
/// caller's local array passed by reference to both.
std::set<std::string> touched_tags(const Workbench& wb, const ir::Procedure* p) {
  std::set<std::string> tags;
  const analysis::ProcEffects& eff = wb.modref().of(p);
  for (const ir::Variable* v : eff.mod) add_tag(tags, v, wb.alias());
  for (const ir::Variable* v : eff.ref) add_tag(tags, v, wb.alias());
  for (const ir::Stmt* call : wb.callgraph().callsites_of(p)) {
    for (size_t i = 0; i < p->formals.size(); ++i) {
      bool m = i < eff.formal_mod.size() && eff.formal_mod[i];
      bool r = i < eff.formal_ref.size() && eff.formal_ref[i];
      if (!m && !r) continue;
      if (const ir::Variable* a = analysis::ModRef::actual_var(call, i)) {
        add_tag(tags, a, wb.alias());
      }
    }
  }
  return tags;
}

/// Every tag some procedure of `wb` may modify — directly, via callees, or
/// through a by-reference actual. Symbols over storage outside this set have
/// rebuild-stable generation numbering.
std::set<std::string> modified_tags(const Workbench& wb) {
  std::set<std::string> tags;
  for (const ir::Procedure& p : wb.program().procedures()) {
    const analysis::ProcEffects& eff = wb.modref().of(&p);
    for (const ir::Variable* v : eff.mod) add_tag(tags, v, wb.alias());
    for (const ir::Stmt* call : wb.callgraph().callsites_of(&p)) {
      for (size_t i = 0; i < p.formals.size(); ++i) {
        if (i >= eff.formal_mod.size() || !eff.formal_mod[i]) continue;
        if (const ir::Variable* a = analysis::ModRef::actual_var(call, i)) {
          add_tag(tags, a, wb.alias());
        }
      }
    }
  }
  return tags;
}

// --- call-edge closure ------------------------------------------------------

using EdgeMap = std::map<std::string, std::set<std::string>>;

void collect_edges(const ir::Program& prog, EdgeMap& callees, EdgeMap& callers) {
  for (const ir::Procedure& p : prog.procedures()) {
    p.for_each([&](const ir::Stmt* s) {
      if (s->kind == ir::StmtKind::Call && s->callee != nullptr) {
        callees[p.name].insert(s->callee->name);
        callers[s->callee->name].insert(p.name);
      }
    });
  }
}

std::set<std::string> closure(const std::set<std::string>& seed,
                              const EdgeMap& next) {
  std::set<std::string> out = seed;
  std::vector<std::string> work(seed.begin(), seed.end());
  while (!work.empty()) {
    std::string n = std::move(work.back());
    work.pop_back();
    auto it = next.find(n);
    if (it == next.end()) continue;
    for (const std::string& m : it->second) {
      if (out.insert(m).second) work.push_back(m);
    }
  }
  return out;
}

// --- plan translation -------------------------------------------------------

struct Translator {
  const ir::Program& old_prog;
  const analysis::AliasAnalysis& old_alias;
  /// Storage modified somewhere in old or new program: scalar symbols over it
  /// may renumber across the rebuild, so sections mentioning it are dropped.
  const std::set<std::string>& mutable_tags;
  std::map<int, const ir::Variable*> var_map;  // old var id -> new var

  const ir::Variable* map_var(const ir::Variable* v) const {
    auto it = var_map.find(v->id);
    return it == var_map.end() ? nullptr : it->second;
  }
};

/// Extend `m` with the renames needed to carry `sl` into the new program.
/// False = the section mentions a symbol whose numbering is not provably
/// stable (see the header's generation argument) — drop the entry.
bool section_symmap(const Translator& t, const ir::Procedure* old_proc,
                    const poly::SectionList& sl, poly::SymMap* m) {
  for (const poly::LinSystem& sys : sl.systems()) {
    for (poly::SymId s : sys.symbols()) {
      if (poly::is_dim_sym(s)) continue;
      if (m->contains(s)) continue;
      int vid = poly::sym_var_id(s);
      if (vid < 0 || vid >= t.old_prog.num_vars()) return false;
      const ir::Variable* ov = &t.old_prog.variables()[static_cast<size_t>(vid)];
      bool stable = false;
      switch (ov->kind) {
        case ir::VarKind::SymParam:
          stable = true;  // immutable: generation 0 forever
          break;
        case ir::VarKind::Local:
        case ir::VarKind::Formal:
          // Bumped only while the symbolic walk is inside the owning
          // procedure, whose body is unchanged here.
          stable = ov->owner == old_proc;
          break;
        case ir::VarKind::Global:
        case ir::VarKind::CommonMember: {
          // Stable iff nothing anywhere modifies the storage: a write
          // elsewhere makes the numbering depend on the bottom-up walk
          // order, which any call-edge edit can permute.
          std::set<std::string> tag;
          add_tag(tag, ov, t.old_alias);
          stable = true;
          for (const std::string& tg : tag) {
            if (t.mutable_tags.count(tg) > 0) stable = false;
          }
          break;
        }
      }
      if (!stable) return false;
      const ir::Variable* nv = t.map_var(ov);
      if (nv == nullptr) return false;
      int gen = ((s - poly::kMaxRank) / 2) % poly::kMaxGens;
      poly::SymId ns = poly::is_primed_sym(s) ? poly::primed_sym(nv, gen)
                                              : poly::scalar_sym(nv, gen);
      if (ns != s) m->set(s, ns);
    }
  }
  return true;
}

std::optional<std::pair<parallelizer::Driver::AssertKey, parallelizer::LoopPlan>>
translate_plan(const Translator& t, const ir::Procedure* old_proc,
               const parallelizer::Driver::CachedPlan& e,
               const ir::Stmt* new_loop) {
  if (e.plan.degraded) return std::nullopt;  // never memoized; belt-and-braces
  // Staged plans hold statement/variable pointers of the old program inside
  // StagedLoopPlan; rather than translating those, drop the entry so the
  // loop is replanned. The StrategyPlanner is deterministic, so the replan
  // reproduces the identical staged plan and the cold/incremental
  // signatures still match.
  if (e.plan.staging != nullptr ||
      e.plan.strategy == parallelizer::Strategy::Pipeline ||
      e.plan.strategy == parallelizer::Strategy::Doacross) {
    return std::nullopt;
  }

  poly::SymMap m;
  for (const auto& [v, vv] : e.plan.verdict.vars) {
    if (!section_symmap(t, old_proc, vv.red_region, &m)) return std::nullopt;
    if (!section_symmap(t, old_proc, vv.exposed, &m)) return std::nullopt;
  }
  for (const parallelizer::ReductionVar& rv : e.plan.reductions) {
    if (!section_symmap(t, old_proc, rv.region, &m)) return std::nullopt;
  }

  parallelizer::LoopPlan out;
  out.loop = new_loop;
  out.parallelizable = e.plan.parallelizable;
  out.strategy = e.plan.parallelizable ? parallelizer::Strategy::Doall
                                       : parallelizer::Strategy::Serial;
  out.reason = e.plan.reason;
  out.used_liveness = e.plan.used_liveness;
  out.used_assertion = e.plan.used_assertion;
  out.degraded = false;
  // The provenance record is already canonical (source names only, no ids),
  // so it carries verbatim: the replayed verdict keeps its original causes,
  // which is what makes cold and incremental ledgers byte-identical.
  out.why = e.plan.why;
  out.verdict.parallel = e.plan.verdict.parallel;
  out.verdict.num_dependences = e.plan.verdict.num_dependences;
  out.verdict.has_io = e.plan.verdict.has_io;
  for (const auto& [v, vv] : e.plan.verdict.vars) {
    const ir::Variable* nv = t.map_var(v);
    if (nv == nullptr) return std::nullopt;
    analysis::VarVerdict nvv = vv;
    nvv.red_region = vv.red_region.rename(m);
    nvv.exposed = vv.exposed.rename(m);
    out.verdict.vars.emplace(nv, std::move(nvv));
  }
  for (const parallelizer::PrivateVar& pv : e.plan.privatized) {
    const ir::Variable* nv = t.map_var(pv.var);
    if (nv == nullptr) return std::nullopt;
    out.privatized.push_back({nv, pv.copy_in, pv.finalize});
  }
  for (const parallelizer::ReductionVar& rv : e.plan.reductions) {
    const ir::Variable* nv = t.map_var(rv.var);
    if (nv == nullptr) return std::nullopt;
    out.reductions.push_back({nv, rv.op, rv.region.rename(m)});
  }

  parallelizer::Driver::AssertKey key;
  key.force_parallel = e.key.force_parallel;
  auto remap_ids = [&](const std::vector<int>& ids, std::vector<int>* dst) {
    for (int id : ids) {
      if (id < 0 || id >= t.old_prog.num_vars()) return false;
      const ir::Variable* nv =
          t.map_var(&t.old_prog.variables()[static_cast<size_t>(id)]);
      if (nv == nullptr) return false;
      dst->push_back(nv->id);
    }
    std::sort(dst->begin(), dst->end());
    return true;
  };
  if (!remap_ids(e.key.privatize, &key.privatize)) return std::nullopt;
  if (!remap_ids(e.key.independent, &key.independent)) return std::nullopt;
  return std::make_pair(std::move(key), std::move(out));
}

}  // namespace

uint64_t proc_fingerprint(const ir::Procedure& p) {
  Hasher h;
  h.str(p.name);
  h.u64(p.formals.size());
  for (const ir::Variable* v : p.formals) hash_var_decl(h, v);
  h.u64(p.locals.size());
  for (const ir::Variable* v : p.locals) hash_var_decl(h, v);
  hash_body(h, p.body);
  return h.value();
}

uint64_t decl_fingerprint(const ir::Program& prog) {
  Hasher h;
  h.u64(prog.globals().size());
  for (const ir::Variable* v : prog.globals()) hash_var_decl(h, v);
  h.u64(prog.sym_params().size());
  for (const ir::Variable* v : prog.sym_params()) hash_var_decl(h, v);
  h.u64(prog.commons().size());
  for (const ir::CommonBlock& c : prog.commons()) h.str(c.name);
  // Procedure name order: bottom-up walk order (symbolic generations) and
  // dense id layout both follow it.
  uint64_t nprocs = 0;
  for (const ir::Procedure& p : prog.procedures()) {
    h.str(p.name);
    ++nprocs;
  }
  h.u64(nprocs);
  h.str(prog.main() != nullptr ? prog.main()->name : "");
  return h.value();
}

std::unique_ptr<Workbench> rebuild_incremental(
    const Workbench& old_wb, std::string_view new_src, Diag& diag,
    RebuildStats* stats, std::optional<analysis::LivenessMode> liveness_mode,
    bool enable_reductions) {
  support::trace::TraceSpan span("workbench/rebuild");
  std::vector<parallelizer::Driver::CachedPlan> snapshot =
      old_wb.driver().snapshot_cache();

  auto wb = Workbench::from_source(new_src, diag, liveness_mode,
                                   enable_reductions);
  if (wb == nullptr) return nullptr;

  RebuildStats local;
  RebuildStats& st = stats != nullptr ? *stats : local;
  st = RebuildStats{};

  const ir::Program& op = old_wb.program();
  const ir::Program& np = wb->program();

  // Changed set: per-procedure structural diff by name.
  std::map<std::string, uint64_t> ofp;
  std::map<std::string, uint64_t> nfp;
  for (const ir::Procedure& p : op.procedures()) ofp[p.name] = proc_fingerprint(p);
  for (const ir::Procedure& p : np.procedures()) nfp[p.name] = proc_fingerprint(p);
  std::set<std::string> changed;
  for (const auto& [name, fp] : ofp) {
    auto it = nfp.find(name);
    if (it == nfp.end() || it->second != fp) changed.insert(name);
  }
  for (const auto& [name, fp] : nfp) {
    if (ofp.count(name) == 0) changed.insert(name);
  }
  st.changed.assign(changed.begin(), changed.end());

  // Declaration-level change or a degraded build on either side: carried
  // plans would rest on ground that moved (or on retried/laddered analyses
  // whose precision may differ), so discard everything.
  if (decl_fingerprint(op) != decl_fingerprint(np) ||
      !old_wb.degradations().empty() || !wb->degradations().empty()) {
    st.full_invalidation = true;
    st.dropped = snapshot.size();
    st.dirty = st.changed;
    support::Metrics::global().count("rebuild.full");
    return wb;
  }

  // Dirty closure over the union of old and new call edges.
  EdgeMap callees;
  EdgeMap callers;
  collect_edges(op, callees, callers);
  collect_edges(np, callees, callers);
  std::set<std::string> dirty = changed;
  for (const std::string& n : closure(changed, callers)) dirty.insert(n);
  for (const std::string& n : closure(changed, callees)) dirty.insert(n);

  // Storage sharers: mutable storage a changed procedure touches couples it
  // to every other procedure touching the same storage.
  std::set<std::string> mutable_tags = modified_tags(old_wb);
  for (const std::string& tg : modified_tags(*wb)) mutable_tags.insert(tg);
  std::set<std::string> coupling;
  for (const std::string& name : changed) {
    std::set<std::string> touched;
    if (const ir::Procedure* p = op.find_procedure(name)) {
      for (const std::string& tg : touched_tags(old_wb, p)) touched.insert(tg);
    }
    if (const ir::Procedure* p = np.find_procedure(name)) {
      for (const std::string& tg : touched_tags(*wb, p)) touched.insert(tg);
    }
    for (const std::string& tg : touched) {
      if (mutable_tags.count(tg) > 0) coupling.insert(tg);
    }
  }
  for (const ir::Procedure& p : np.procedures()) {
    if (dirty.count(p.name) > 0) continue;
    for (const std::string& tg : touched_tags(*wb, &p)) {
      if (coupling.count(tg) > 0) {
        dirty.insert(p.name);
        break;
      }
    }
  }

  // Old-loop -> new-loop correspondence for clean procedures, by position in
  // the outermost-first loop list (bodies are structurally identical).
  std::map<int, const ir::Stmt*> loop_of;  // old stmt id -> new stmt
  for (const ir::Procedure& opc : op.procedures()) {
    if (dirty.count(opc.name) > 0) continue;
    const ir::Procedure* npc = np.find_procedure(opc.name);
    if (npc == nullptr) {
      dirty.insert(opc.name);
      continue;
    }
    std::vector<const ir::Stmt*> ol = opc.loops();
    std::vector<const ir::Stmt*> nl =
        static_cast<const ir::Procedure*>(npc)->loops();
    if (ol.size() != nl.size()) {
      dirty.insert(opc.name);  // cannot happen with equal fingerprints
      continue;
    }
    for (size_t i = 0; i < ol.size(); ++i) loop_of[ol[i]->id] = nl[i];
  }
  st.dirty.assign(dirty.begin(), dirty.end());

  // Variable correspondence by qualified name, shape-checked.
  Translator t{op, old_wb.alias(), mutable_tags, {}};
  std::map<std::string, const ir::Variable*> by_name;
  for (const ir::Variable& v : np.variables()) {
    by_name.emplace(v.qualified_name(), &v);
  }
  for (const ir::Variable& v : op.variables()) {
    auto it = by_name.find(v.qualified_name());
    if (it == by_name.end()) continue;
    const ir::Variable* nv = it->second;
    if (nv->kind != v.kind || nv->elem != v.elem || nv->rank() != v.rank()) {
      continue;
    }
    t.var_map[v.id] = nv;
  }

  // Carry every entry of a clean procedure across, translated.
  for (const parallelizer::Driver::CachedPlan& e : snapshot) {
    const ir::Stmt* old_loop = op.stmt_by_id(e.stmt_id);
    const ir::Procedure* oproc = old_loop->proc;
    auto lit = loop_of.find(e.stmt_id);
    if (oproc == nullptr || dirty.count(oproc->name) > 0 ||
        lit == loop_of.end()) {
      ++st.dropped;
      continue;
    }
    auto tr = translate_plan(t, oproc, e, lit->second);
    if (tr.has_value() &&
        wb->driver().seed_plan(np, lit->second->id, std::move(tr->first),
                               std::move(tr->second))) {
      ++st.carried;
    } else {
      ++st.dropped;
    }
  }

  support::Metrics::global().count("rebuild.incremental");
  support::Metrics::global().count("rebuild.carried", st.carried);
  support::Metrics::global().count("rebuild.dropped", st.dropped);
  return wb;
}

}  // namespace suifx::explorer
