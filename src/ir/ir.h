// Core intermediate representation for the SF mini-language (a Fortran-77-like
// subset sufficient for everything the SUIF Explorer thesis analyzes: DO
// loops, structured IFs, CALLs with by-reference arrays, COMMON blocks with
// per-procedure overlays, symbolic input parameters, and index arrays).
//
// Ownership: a Program owns every Expr, Stmt, Variable, Procedure, and
// CommonBlock in stable-address arenas (std::deque). Raw pointers elsewhere
// are non-owning observers, per the project's RAII convention.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "support/diag.h"

namespace suifx::ir {

class Program;
struct Procedure;
struct CommonBlock;

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

enum class ScalarType : uint8_t { Int, Real, Bool };

const char* to_string(ScalarType t);

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : uint8_t { IntConst, RealConst, VarRef, ArrayRef, Binary, Unary };

enum class BinOp : uint8_t {
  Add, Sub, Mul, Div, Mod, Min, Max,
  Lt, Le, Gt, Ge, Eq, Ne, And, Or
};

enum class UnOp : uint8_t { Neg, Not, Sqrt, Exp, Log, Abs, IntCast, RealCast };

const char* to_string(BinOp op);
const char* to_string(UnOp op);
bool is_comparison(BinOp op);
/// Commutative-and-associative ops eligible for reduction recognition (§6.2).
bool is_reduction_op(BinOp op);

struct Variable;

/// Immutable expression tree node. Allocated by Program factories.
struct Expr {
  int id = 0;
  ExprKind kind;
  ScalarType type;

  long ival = 0;              // IntConst
  double rval = 0.0;          // RealConst
  const Variable* var = nullptr;  // VarRef / ArrayRef
  BinOp bop = BinOp::Add;     // Binary
  UnOp uop = UnOp::Neg;       // Unary
  const Expr* a = nullptr;    // Binary lhs / Unary operand
  const Expr* b = nullptr;    // Binary rhs
  std::vector<const Expr*> idx;  // ArrayRef subscripts (1-based Fortran style)

  bool is_const_int() const { return kind == ExprKind::IntConst; }
  bool is_var_ref() const { return kind == ExprKind::VarRef; }
  bool is_array_ref() const { return kind == ExprKind::ArrayRef; }
  bool is_lvalue() const { return is_var_ref() || is_array_ref(); }
};

/// Visit every node of an expression tree (pre-order).
void for_each_expr(const Expr* e, const std::function<void(const Expr*)>& fn);

// ---------------------------------------------------------------------------
// Variables
// ---------------------------------------------------------------------------

enum class VarKind : uint8_t {
  Local,         // procedure-local scalar or array
  Formal,        // formal parameter (scalars copy-in/copy-out, arrays by ref)
  Global,        // whole-program variable
  CommonMember,  // an overlay member of a COMMON block (per-procedure view)
  SymParam,      // symbolic integer input parameter (e.g. problem size N)
};

/// One dimension of an array: inclusive bounds, each an affine expression
/// over integer constants and SymParams (checked by the verifier).
struct Dim {
  const Expr* lower = nullptr;
  const Expr* upper = nullptr;
};

struct Variable {
  int id = 0;
  std::string name;
  ScalarType elem = ScalarType::Real;
  std::vector<Dim> dims;  // empty => scalar
  VarKind kind = VarKind::Local;
  Procedure* owner = nullptr;        // null for Global/SymParam
  CommonBlock* common = nullptr;     // CommonMember only
  long common_offset = 0;            // element offset within the block
  bool is_input = false;             // runtime-initialized from program inputs
  long param_default = 0;            // SymParam default value

  bool is_array() const { return !dims.empty(); }
  bool is_scalar() const { return dims.empty(); }
  int rank() const { return static_cast<int>(dims.size()); }
  /// Fully qualified for messages: "proc.name" or "name".
  std::string qualified_name() const;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : uint8_t { Assign, If, Do, Call, Print, Nop };

struct Stmt {
  int id = 0;
  int line = 0;  // synthetic source line, assigned by Program::finalize()
  StmtKind kind = StmtKind::Nop;
  SourceLoc loc;

  // Assign
  const Expr* lhs = nullptr;  // VarRef or ArrayRef
  const Expr* rhs = nullptr;

  // If
  const Expr* cond = nullptr;
  std::vector<Stmt*> then_body;
  std::vector<Stmt*> else_body;

  // Do: `do ivar = lb, ub, step { body }` — step a positive or negative
  // integer constant; iteration includes ub when reachable (Fortran DO).
  const Variable* ivar = nullptr;
  const Expr* lb = nullptr;
  const Expr* ub = nullptr;
  const Expr* step = nullptr;
  std::vector<Stmt*> body;
  std::string label;  // Fortran-style numeric label for "proc/label" names

  // Call
  Procedure* callee = nullptr;
  std::vector<const Expr*> args;

  // Print
  const Expr* value = nullptr;

  Stmt* parent = nullptr;        // enclosing If or Do (null at proc top level)
  Procedure* proc = nullptr;     // owning procedure

  bool is_loop() const { return kind == StmtKind::Do; }
  /// "proc/label" (or "proc/L<line>" when unlabeled) — matches thesis naming.
  std::string loop_name() const;
  /// Innermost enclosing Do, or null.
  const Stmt* enclosing_loop() const;
  /// Number of Do statements strictly enclosing this one.
  int loop_depth() const;
};

/// Visit a statement and all statements nested under it (pre-order).
void for_each_stmt(Stmt* s, const std::function<void(Stmt*)>& fn);
void for_each_stmt(const Stmt* s, const std::function<void(const Stmt*)>& fn);
void for_each_stmt(const std::vector<Stmt*>& body, const std::function<void(Stmt*)>& fn);
/// Visit every statement nested under `s` (then/else/body), excluding `s`
/// itself — the const-correct form of for_each_stmt(s->body, fn).
void for_each_nested(const Stmt* s, const std::function<void(const Stmt*)>& fn);

// ---------------------------------------------------------------------------
// Procedures, commons, program
// ---------------------------------------------------------------------------

struct Procedure {
  int id = 0;
  std::string name;
  std::vector<Variable*> formals;
  std::vector<Variable*> locals;       // includes CommonMember overlay views
  std::vector<Stmt*> body;
  Program* program = nullptr;

  /// Visit all statements in this procedure (pre-order). The const overload
  /// hands out const statements (overload choice follows the constness of
  /// the procedure, mirroring Program::for_each_stmt).
  void for_each(const std::function<void(Stmt*)>& fn);
  void for_each(const std::function<void(const Stmt*)>& fn) const;
  /// All Do statements, outermost-first.
  std::vector<Stmt*> loops();
  std::vector<const Stmt*> loops() const;
  Variable* find_var(const std::string& n) const;
};

struct CommonBlock {
  int id = 0;
  std::string name;
  /// Size in elements of the largest overlay; set by Program::finalize().
  long size_elems = 0;
};

/// A whole SF program: arena owner of all IR nodes plus factory methods.
class Program {
 public:
  explicit Program(std::string name)
      : name_(std::move(name)), uid_(next_uid()) {}
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  const std::string& name() const { return name_; }

  /// Process-unique build stamp, assigned at construction and never reused.
  /// Caches keyed by statement ids (parallelizer::Driver) compare this to
  /// detect that a "new" program — possibly reusing recycled node addresses
  /// and the same dense id space — is not the one their entries came from.
  uint64_t uid() const { return uid_; }

  // --- variable factories -------------------------------------------------
  Variable* new_global(const std::string& n, ScalarType t, std::vector<Dim> dims = {});
  Variable* new_sym_param(const std::string& n, long default_value);
  Variable* new_local(Procedure* p, const std::string& n, ScalarType t,
                      std::vector<Dim> dims = {});
  Variable* new_formal(Procedure* p, const std::string& n, ScalarType t,
                       std::vector<Dim> dims = {});
  Variable* new_common_member(Procedure* p, CommonBlock* blk, const std::string& n,
                              ScalarType t, std::vector<Dim> dims, long offset = 0);
  CommonBlock* new_common(const std::string& n);

  // --- expression factories (all return interior-owned nodes) -------------
  const Expr* int_const(long v);
  const Expr* real_const(double v);
  const Expr* bool_const(bool v);
  const Expr* var_ref(const Variable* v);
  const Expr* array_ref(const Variable* v, std::vector<const Expr*> idx);
  const Expr* binary(BinOp op, const Expr* a, const Expr* b);
  const Expr* unary(UnOp op, const Expr* a);
  // Convenience arithmetic.
  const Expr* add(const Expr* a, const Expr* b) { return binary(BinOp::Add, a, b); }
  const Expr* sub(const Expr* a, const Expr* b) { return binary(BinOp::Sub, a, b); }
  const Expr* mul(const Expr* a, const Expr* b) { return binary(BinOp::Mul, a, b); }

  // --- statement factories -------------------------------------------------
  Stmt* assign(const Expr* lhs, const Expr* rhs, SourceLoc loc = {});
  Stmt* if_(const Expr* cond, std::vector<Stmt*> then_body,
            std::vector<Stmt*> else_body = {}, SourceLoc loc = {});
  Stmt* do_(const Variable* ivar, const Expr* lb, const Expr* ub,
            std::vector<Stmt*> body, std::string label = "",
            const Expr* step = nullptr, SourceLoc loc = {});
  Stmt* call(Procedure* callee, std::vector<const Expr*> args, SourceLoc loc = {});
  Stmt* print(const Expr* v, SourceLoc loc = {});

  // --- procedures ----------------------------------------------------------
  Procedure* new_procedure(const std::string& n);
  Procedure* find_procedure(const std::string& n) const;
  void set_main(Procedure* p) { main_ = p; }
  Procedure* main() const { return main_; }

  const std::deque<Procedure>& procedures() const { return procs_; }
  std::deque<Procedure>& procedures() { return procs_; }
  const std::deque<Variable>& variables() const { return vars_; }
  const std::deque<CommonBlock>& commons() const { return commons_; }
  std::deque<CommonBlock>& commons() { return commons_; }
  const std::vector<Variable*>& globals() const { return globals_; }
  const std::vector<Variable*>& sym_params() const { return sym_params_; }

  const Stmt* stmt_by_id(int id) const { return &stmts_[static_cast<size_t>(id)]; }
  Stmt* stmt_by_id(int id) { return &stmts_[static_cast<size_t>(id)]; }
  int num_stmts() const { return static_cast<int>(stmts_.size()); }
  int num_vars() const { return static_cast<int>(vars_.size()); }

  /// Assign synthetic line numbers and parent/proc links; compute common
  /// block sizes. Must be called once after construction, before analysis.
  void finalize();
  bool finalized() const { return finalized_; }

  /// Total synthetic source lines (the thesis's "No. of lines" metric).
  int num_lines() const { return next_line_ - 1; }

  /// Visit every statement of every procedure.
  void for_each_stmt(const std::function<void(Stmt*)>& fn);
  void for_each_stmt(const std::function<void(const Stmt*)>& fn) const;

 private:
  Expr* alloc_expr(ExprKind k, ScalarType t);
  Stmt* alloc_stmt(StmtKind k, SourceLoc loc);
  void number_body(std::vector<Stmt*>& body, Stmt* parent, Procedure* proc);
  static long dim_extent_upper_bound(const Dim& d);
  static uint64_t next_uid();

  std::string name_;
  uint64_t uid_ = 0;
  std::deque<Expr> exprs_;
  std::deque<Stmt> stmts_;
  std::deque<Variable> vars_;
  std::deque<Procedure> procs_;
  std::deque<CommonBlock> commons_;
  std::vector<Variable*> globals_;
  std::vector<Variable*> sym_params_;
  Procedure* main_ = nullptr;
  int next_line_ = 1;
  bool finalized_ = false;
};

// ---------------------------------------------------------------------------
// Access collection helpers (used by nearly every analysis)
// ---------------------------------------------------------------------------

/// One scalar-or-array access appearing in a statement.
struct Access {
  const Expr* ref = nullptr;   // the VarRef/ArrayRef node
  const Variable* var = nullptr;
  bool is_write = false;
  const Stmt* stmt = nullptr;
};

/// Collect the accesses a single (non-compound) statement performs directly:
/// Assign reads its RHS + LHS subscripts and writes its LHS; If reads its
/// condition; Do reads bounds and writes its index; Call reads scalar args
/// and (conservatively) both reads and writes array/lvalue-scalar args.
std::vector<Access> direct_accesses(const Stmt* s);

/// Evaluate an expression over SymParam default values; returns false when the
/// expression is not a compile-time-affine integer expression.
bool eval_const_with_params(const Expr* e, long* out);

}  // namespace suifx::ir
