#include "ir/verify.h"

#include <map>
#include <set>

#include "ir/printer.h"

namespace suifx::ir {

namespace {

class Verifier {
 public:
  Verifier(const Program& prog, Diag& diag) : prog_(prog), diag_(diag) {}

  bool run() {
    if (!prog_.finalized()) {
      diag_.error({}, "program '" + prog_.name() + "' is not finalized");
      return false;
    }
    for (const Procedure& p : prog_.procedures()) check_procedure(p);
    check_call_graph_acyclic();
    return !diag_.has_errors();
  }

 private:
  void err(const Stmt* s, const std::string& msg) {
    diag_.error({s != nullptr ? s->line : 0, 0}, msg);
  }

  bool dim_bounds_affine(const Variable* v) {
    for (const Dim& d : v->dims) {
      long unused = 0;
      if (!eval_const_with_params(d.lower, &unused) ||
          !eval_const_with_params(d.upper, &unused)) {
        // Formal array dims may reference other scalar formals (Fortran
        // adjustable arrays); allow any expression there.
        if (v->kind == VarKind::Formal) continue;
        return false;
      }
    }
    return true;
  }

  void check_ref(const Expr* e, const Stmt* s) {
    for_each_expr(e, [&](const Expr* n) {
      if (n->kind == ExprKind::ArrayRef) {
        if (!n->var->is_array()) {
          err(s, "subscripted scalar '" + n->var->name + "'");
        } else if (static_cast<int>(n->idx.size()) != n->var->rank()) {
          err(s, "rank mismatch on '" + n->var->name + "': " +
                     std::to_string(n->idx.size()) + " subscripts for rank " +
                     std::to_string(n->var->rank()));
        }
        for (const Expr* i : n->idx) {
          if (i->type == ScalarType::Real) {
            err(s, "real-typed subscript on '" + n->var->name + "'");
          }
        }
      } else if (n->kind == ExprKind::VarRef) {
        if (n->var->is_array()) {
          // Whole-array references are legal only as call actuals; assignment
          // statements must subscript. The statement walker enforces context.
        }
      }
    });
  }

  void check_call(const Stmt* s) {
    const Procedure* callee = s->callee;
    if (callee == nullptr) {
      err(s, "call with null callee");
      return;
    }
    if (s->args.size() != callee->formals.size()) {
      err(s, "call to '" + callee->name + "' passes " + std::to_string(s->args.size()) +
                 " args for " + std::to_string(callee->formals.size()) + " formals");
      return;
    }
    for (size_t i = 0; i < s->args.size(); ++i) {
      const Expr* a = s->args[i];
      const Variable* f = callee->formals[i];
      if (f->is_array()) {
        bool whole = a->is_var_ref() && a->var->is_array();
        bool elem_base = a->is_array_ref();
        if (!whole && !elem_base) {
          err(s, "arg " + std::to_string(i + 1) + " of '" + callee->name +
                     "' must be an array (or array-element base)");
        } else if (a->var->elem != f->elem) {
          err(s, "element-type mismatch on arg " + std::to_string(i + 1) + " of '" +
                     callee->name + "'");
        }
      } else {
        if (a->is_var_ref() && a->var->is_array()) {
          err(s, "whole array passed to scalar formal of '" + callee->name + "'");
        }
      }
      check_ref(a, s);
    }
  }

  void check_stmt(const Stmt* s) {
    switch (s->kind) {
      case StmtKind::Assign:
        if (!s->lhs->is_lvalue()) {
          err(s, "assignment target is not an lvalue");
        } else if (s->lhs->is_var_ref() && s->lhs->var->is_array()) {
          err(s, "whole-array assignment to '" + s->lhs->var->name + "'");
        } else if (s->lhs->var->kind == VarKind::SymParam) {
          err(s, "assignment to symbolic parameter '" + s->lhs->var->name + "'");
        }
        check_ref(s->lhs, s);
        check_ref(s->rhs, s);
        if (s->lhs->type == ScalarType::Int && s->rhs->type == ScalarType::Real) {
          err(s, "implicit real->int assignment to '" + s->lhs->var->name +
                     "' (use int())");
        }
        break;
      case StmtKind::If:
        if (s->cond->type != ScalarType::Bool) {
          err(s, "if-condition is not boolean: " + to_string(s->cond));
        }
        check_ref(s->cond, s);
        break;
      case StmtKind::Do: {
        if (s->ivar->elem != ScalarType::Int || s->ivar->is_array()) {
          err(s, "loop index '" + s->ivar->name + "' must be an int scalar");
        }
        long step = 0;
        if (!eval_const_with_params(s->step, &step) || step == 0) {
          err(s, "loop step must be a non-zero integer constant");
        }
        check_ref(s->lb, s);
        check_ref(s->ub, s);
        break;
      }
      case StmtKind::Call:
        check_call(s);
        break;
      case StmtKind::Print:
        check_ref(s->value, s);
        break;
      case StmtKind::Nop:
        break;
    }
  }

  void check_procedure(const Procedure& p) {
    for (const Variable* v : p.locals) {
      if (!dim_bounds_affine(v)) {
        diag_.error({}, "array '" + v->qualified_name() +
                            "' has non-affine bounds over parameters");
      }
    }
    p.for_each([&](const Stmt* s) { check_stmt(s); });
  }

  void check_call_graph_acyclic() {
    // Colors: 0 unvisited, 1 on stack, 2 done.
    std::map<const Procedure*, int> color;
    bool cyclic = false;
    std::function<void(const Procedure*)> dfs = [&](const Procedure* p) {
      color[p] = 1;
      p->for_each([&](const Stmt* s) {
        if (s->kind != StmtKind::Call || cyclic) return;
        const Procedure* q = s->callee;
        if (color[q] == 1) {
          diag_.error({s->line, 0}, "recursive call cycle through '" + q->name + "'");
          cyclic = true;
        } else if (color[q] == 0) {
          dfs(q);
        }
      });
      color[p] = 2;
    };
    for (const Procedure& p : prog_.procedures()) {
      if (color[&p] == 0) dfs(&p);
    }
  }

  const Program& prog_;
  Diag& diag_;
};

}  // namespace

bool verify(const Program& prog, Diag& diag) {
  return Verifier(prog, diag).run();
}

}  // namespace suifx::ir
