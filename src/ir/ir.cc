#include "ir/ir.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace suifx::ir {

const char* to_string(ScalarType t) {
  switch (t) {
    case ScalarType::Int: return "int";
    case ScalarType::Real: return "real";
    case ScalarType::Bool: return "bool";
  }
  return "?";
}

const char* to_string(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Min: return "min";
    case BinOp::Max: return "max";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
  }
  return "?";
}

const char* to_string(UnOp op) {
  switch (op) {
    case UnOp::Neg: return "-";
    case UnOp::Not: return "!";
    case UnOp::Sqrt: return "sqrt";
    case UnOp::Exp: return "exp";
    case UnOp::Log: return "log";
    case UnOp::Abs: return "abs";
    case UnOp::IntCast: return "int";
    case UnOp::RealCast: return "real";
  }
  return "?";
}

bool is_comparison(BinOp op) {
  switch (op) {
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
    case BinOp::Eq:
    case BinOp::Ne:
      return true;
    default:
      return false;
  }
}

bool is_reduction_op(BinOp op) {
  switch (op) {
    case BinOp::Add:
    case BinOp::Mul:
    case BinOp::Min:
    case BinOp::Max:
      return true;
    default:
      return false;
  }
}

void for_each_expr(const Expr* e, const std::function<void(const Expr*)>& fn) {
  if (e == nullptr) return;
  fn(e);
  if (e->a != nullptr) for_each_expr(e->a, fn);
  if (e->b != nullptr) for_each_expr(e->b, fn);
  for (const Expr* i : e->idx) for_each_expr(i, fn);
}

std::string Variable::qualified_name() const {
  if (owner != nullptr) return owner->name + "." + name;
  return name;
}

std::string Stmt::loop_name() const {
  assert(kind == StmtKind::Do);
  std::string base = proc != nullptr ? proc->name : "?";
  if (!label.empty()) return base + "/" + label;
  return base + "/L" + std::to_string(line);
}

const Stmt* Stmt::enclosing_loop() const {
  for (const Stmt* p = parent; p != nullptr; p = p->parent) {
    if (p->kind == StmtKind::Do) return p;
  }
  return nullptr;
}

int Stmt::loop_depth() const {
  int d = 0;
  for (const Stmt* p = parent; p != nullptr; p = p->parent) {
    if (p->kind == StmtKind::Do) ++d;
  }
  return d;
}

void for_each_stmt(Stmt* s, const std::function<void(Stmt*)>& fn) {
  fn(s);
  for (Stmt* c : s->then_body) for_each_stmt(c, fn);
  for (Stmt* c : s->else_body) for_each_stmt(c, fn);
  for (Stmt* c : s->body) for_each_stmt(c, fn);
}

void for_each_stmt(const Stmt* s, const std::function<void(const Stmt*)>& fn) {
  fn(s);
  for (const Stmt* c : s->then_body) for_each_stmt(c, fn);
  for (const Stmt* c : s->else_body) for_each_stmt(c, fn);
  for (const Stmt* c : s->body) for_each_stmt(c, fn);
}

void for_each_stmt(const std::vector<Stmt*>& body, const std::function<void(Stmt*)>& fn) {
  for (Stmt* s : body) for_each_stmt(s, fn);
}

void for_each_nested(const Stmt* s, const std::function<void(const Stmt*)>& fn) {
  for (const Stmt* c : s->then_body) for_each_stmt(c, fn);
  for (const Stmt* c : s->else_body) for_each_stmt(c, fn);
  for (const Stmt* c : s->body) for_each_stmt(c, fn);
}

void Procedure::for_each(const std::function<void(Stmt*)>& fn) {
  for (Stmt* s : body) for_each_stmt(s, fn);
}

void Procedure::for_each(const std::function<void(const Stmt*)>& fn) const {
  for (const Stmt* s : body) for_each_stmt(s, fn);
}

std::vector<Stmt*> Procedure::loops() {
  std::vector<Stmt*> out;
  for_each([&](Stmt* s) {
    if (s->kind == StmtKind::Do) out.push_back(s);
  });
  return out;
}

std::vector<const Stmt*> Procedure::loops() const {
  std::vector<const Stmt*> out;
  for_each([&](const Stmt* s) {
    if (s->kind == StmtKind::Do) out.push_back(s);
  });
  return out;
}

Variable* Procedure::find_var(const std::string& n) const {
  for (Variable* v : formals) {
    if (v->name == n) return v;
  }
  for (Variable* v : locals) {
    if (v->name == n) return v;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Program factories
// ---------------------------------------------------------------------------

uint64_t Program::next_uid() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;  // never 0
}

Variable* Program::new_global(const std::string& n, ScalarType t, std::vector<Dim> dims) {
  vars_.push_back({});
  Variable* v = &vars_.back();
  v->id = static_cast<int>(vars_.size()) - 1;
  v->name = n;
  v->elem = t;
  v->dims = std::move(dims);
  v->kind = VarKind::Global;
  globals_.push_back(v);
  return v;
}

Variable* Program::new_sym_param(const std::string& n, long default_value) {
  vars_.push_back({});
  Variable* v = &vars_.back();
  v->id = static_cast<int>(vars_.size()) - 1;
  v->name = n;
  v->elem = ScalarType::Int;
  v->kind = VarKind::SymParam;
  v->param_default = default_value;
  sym_params_.push_back(v);
  return v;
}

Variable* Program::new_local(Procedure* p, const std::string& n, ScalarType t,
                             std::vector<Dim> dims) {
  vars_.push_back({});
  Variable* v = &vars_.back();
  v->id = static_cast<int>(vars_.size()) - 1;
  v->name = n;
  v->elem = t;
  v->dims = std::move(dims);
  v->kind = VarKind::Local;
  v->owner = p;
  p->locals.push_back(v);
  return v;
}

Variable* Program::new_formal(Procedure* p, const std::string& n, ScalarType t,
                              std::vector<Dim> dims) {
  vars_.push_back({});
  Variable* v = &vars_.back();
  v->id = static_cast<int>(vars_.size()) - 1;
  v->name = n;
  v->elem = t;
  v->dims = std::move(dims);
  v->kind = VarKind::Formal;
  v->owner = p;
  p->formals.push_back(v);
  return v;
}

Variable* Program::new_common_member(Procedure* p, CommonBlock* blk, const std::string& n,
                                     ScalarType t, std::vector<Dim> dims, long offset) {
  vars_.push_back({});
  Variable* v = &vars_.back();
  v->id = static_cast<int>(vars_.size()) - 1;
  v->name = n;
  v->elem = t;
  v->dims = std::move(dims);
  v->kind = VarKind::CommonMember;
  v->owner = p;
  v->common = blk;
  v->common_offset = offset;
  if (p != nullptr) p->locals.push_back(v);
  return v;
}

CommonBlock* Program::new_common(const std::string& n) {
  for (CommonBlock& b : commons_) {
    if (b.name == n) return &b;
  }
  commons_.push_back({});
  CommonBlock* b = &commons_.back();
  b->id = static_cast<int>(commons_.size()) - 1;
  b->name = n;
  return b;
}

Expr* Program::alloc_expr(ExprKind k, ScalarType t) {
  exprs_.push_back({});
  Expr* e = &exprs_.back();
  e->id = static_cast<int>(exprs_.size()) - 1;
  e->kind = k;
  e->type = t;
  return e;
}

const Expr* Program::int_const(long v) {
  Expr* e = alloc_expr(ExprKind::IntConst, ScalarType::Int);
  e->ival = v;
  return e;
}

const Expr* Program::real_const(double v) {
  Expr* e = alloc_expr(ExprKind::RealConst, ScalarType::Real);
  e->rval = v;
  return e;
}

const Expr* Program::bool_const(bool v) {
  Expr* e = alloc_expr(ExprKind::IntConst, ScalarType::Bool);
  e->ival = v ? 1 : 0;
  return e;
}

const Expr* Program::var_ref(const Variable* v) {
  Expr* e = alloc_expr(ExprKind::VarRef, v->elem);
  e->var = v;
  return e;
}

const Expr* Program::array_ref(const Variable* v, std::vector<const Expr*> idx) {
  Expr* e = alloc_expr(ExprKind::ArrayRef, v->elem);
  e->var = v;
  e->idx = std::move(idx);
  return e;
}

const Expr* Program::binary(BinOp op, const Expr* a, const Expr* b) {
  ScalarType t;
  if (is_comparison(op) || op == BinOp::And || op == BinOp::Or) {
    t = ScalarType::Bool;
  } else if (a->type == ScalarType::Real || b->type == ScalarType::Real) {
    t = ScalarType::Real;
  } else {
    t = ScalarType::Int;
  }
  Expr* e = alloc_expr(ExprKind::Binary, t);
  e->bop = op;
  e->a = a;
  e->b = b;
  return e;
}

const Expr* Program::unary(UnOp op, const Expr* a) {
  ScalarType t = a->type;
  if (op == UnOp::Not) t = ScalarType::Bool;
  if (op == UnOp::IntCast) t = ScalarType::Int;
  if (op == UnOp::RealCast || op == UnOp::Sqrt || op == UnOp::Exp || op == UnOp::Log) {
    t = ScalarType::Real;
  }
  Expr* e = alloc_expr(ExprKind::Unary, t);
  e->uop = op;
  e->a = a;
  return e;
}

Stmt* Program::alloc_stmt(StmtKind k, SourceLoc loc) {
  stmts_.push_back({});
  Stmt* s = &stmts_.back();
  s->id = static_cast<int>(stmts_.size()) - 1;
  s->kind = k;
  s->loc = loc;
  return s;
}

Stmt* Program::assign(const Expr* lhs, const Expr* rhs, SourceLoc loc) {
  assert(lhs->is_lvalue());
  Stmt* s = alloc_stmt(StmtKind::Assign, loc);
  s->lhs = lhs;
  s->rhs = rhs;
  return s;
}

Stmt* Program::if_(const Expr* cond, std::vector<Stmt*> then_body,
                   std::vector<Stmt*> else_body, SourceLoc loc) {
  Stmt* s = alloc_stmt(StmtKind::If, loc);
  s->cond = cond;
  s->then_body = std::move(then_body);
  s->else_body = std::move(else_body);
  return s;
}

Stmt* Program::do_(const Variable* ivar, const Expr* lb, const Expr* ub,
                   std::vector<Stmt*> body, std::string label, const Expr* step,
                   SourceLoc loc) {
  Stmt* s = alloc_stmt(StmtKind::Do, loc);
  s->ivar = ivar;
  s->lb = lb;
  s->ub = ub;
  s->step = step != nullptr ? step : int_const(1);
  s->body = std::move(body);
  s->label = std::move(label);
  return s;
}

Stmt* Program::call(Procedure* callee, std::vector<const Expr*> args, SourceLoc loc) {
  Stmt* s = alloc_stmt(StmtKind::Call, loc);
  s->callee = callee;
  s->args = std::move(args);
  return s;
}

Stmt* Program::print(const Expr* v, SourceLoc loc) {
  Stmt* s = alloc_stmt(StmtKind::Print, loc);
  s->value = v;
  return s;
}

Procedure* Program::new_procedure(const std::string& n) {
  procs_.push_back({});
  Procedure* p = &procs_.back();
  p->id = static_cast<int>(procs_.size()) - 1;
  p->name = n;
  p->program = this;
  return p;
}

Procedure* Program::find_procedure(const std::string& n) const {
  for (const Procedure& p : procs_) {
    if (p.name == n) return const_cast<Procedure*>(&p);
  }
  return nullptr;
}

void Program::number_body(std::vector<Stmt*>& body, Stmt* parent, Procedure* proc) {
  for (Stmt* s : body) {
    s->line = next_line_++;
    s->parent = parent;
    s->proc = proc;
    number_body(s->then_body, s, proc);
    if (!s->else_body.empty()) {
      ++next_line_;  // the "else" line
      number_body(s->else_body, s, proc);
    }
    number_body(s->body, s, proc);
    if (s->kind == StmtKind::If || s->kind == StmtKind::Do) {
      ++next_line_;  // the closing line
    }
  }
}

long Program::dim_extent_upper_bound(const Dim& d) {
  long lo = 0, hi = 0;
  if (!eval_const_with_params(d.lower, &lo) || !eval_const_with_params(d.upper, &hi)) {
    return 0;
  }
  return std::max<long>(0, hi - lo + 1);
}

void Program::finalize() {
  assert(!finalized_);
  for (Procedure& p : procs_) {
    ++next_line_;  // the "proc" header line
    number_body(p.body, nullptr, &p);
    ++next_line_;  // the "end" line
  }
  // Common block sizes: the largest overlay footprint in elements.
  for (Variable& v : vars_) {
    if (v.kind != VarKind::CommonMember) continue;
    long n = 1;
    for (const Dim& d : v.dims) n *= std::max<long>(1, dim_extent_upper_bound(d));
    v.common->size_elems = std::max(v.common->size_elems, v.common_offset + n);
  }
  finalized_ = true;
}

void Program::for_each_stmt(const std::function<void(Stmt*)>& fn) {
  for (Procedure& p : procs_) p.for_each(fn);
}

void Program::for_each_stmt(const std::function<void(const Stmt*)>& fn) const {
  for (const Procedure& p : procs_) p.for_each(fn);
}

// ---------------------------------------------------------------------------
// Access collection
// ---------------------------------------------------------------------------

namespace {

void collect_reads(const Expr* e, const Stmt* s, std::vector<Access>* out) {
  for_each_expr(e, [&](const Expr* n) {
    if (n->is_var_ref() || n->is_array_ref()) {
      out->push_back({n, n->var, /*is_write=*/false, s});
    }
  });
}

}  // namespace

std::vector<Access> direct_accesses(const Stmt* s) {
  std::vector<Access> out;
  switch (s->kind) {
    case StmtKind::Assign:
      collect_reads(s->rhs, s, &out);
      // Subscripts of the LHS are reads; the LHS location itself is a write.
      for (const Expr* i : s->lhs->idx) collect_reads(i, s, &out);
      out.push_back({s->lhs, s->lhs->var, /*is_write=*/true, s});
      break;
    case StmtKind::If:
      collect_reads(s->cond, s, &out);
      break;
    case StmtKind::Do:
      collect_reads(s->lb, s, &out);
      collect_reads(s->ub, s, &out);
      collect_reads(s->step, s, &out);
      break;
    case StmtKind::Call:
      for (const Expr* a : s->args) {
        if (a->is_var_ref() && a->var->is_array()) {
          // Whole array by reference: may read and may write.
          out.push_back({a, a->var, false, s});
          out.push_back({a, a->var, true, s});
        } else if (a->is_array_ref()) {
          // Array element base (Fortran `a(k)` actual): subscripts are reads,
          // the tail of the array may be read and written via the formal.
          for (const Expr* i : a->idx) collect_reads(i, s, &out);
          out.push_back({a, a->var, false, s});
          out.push_back({a, a->var, true, s});
        } else if (a->is_var_ref()) {
          // Scalar copy-in/copy-out.
          out.push_back({a, a->var, false, s});
          out.push_back({a, a->var, true, s});
        } else {
          collect_reads(a, s, &out);
        }
      }
      break;
    case StmtKind::Print:
      collect_reads(s->value, s, &out);
      break;
    case StmtKind::Nop:
      break;
  }
  return out;
}

bool eval_const_with_params(const Expr* e, long* out) {
  if (e == nullptr) return false;
  switch (e->kind) {
    case ExprKind::IntConst:
      *out = e->ival;
      return true;
    case ExprKind::VarRef:
      if (e->var->kind == VarKind::SymParam) {
        *out = e->var->param_default;
        return true;
      }
      return false;
    case ExprKind::Binary: {
      long a = 0, b = 0;
      if (!eval_const_with_params(e->a, &a) || !eval_const_with_params(e->b, &b)) {
        return false;
      }
      switch (e->bop) {
        case BinOp::Add: *out = a + b; return true;
        case BinOp::Sub: *out = a - b; return true;
        case BinOp::Mul: *out = a * b; return true;
        case BinOp::Div: if (b == 0) return false; *out = a / b; return true;
        case BinOp::Min: *out = std::min(a, b); return true;
        case BinOp::Max: *out = std::max(a, b); return true;
        default: return false;
      }
    }
    case ExprKind::Unary:
      if (e->uop == UnOp::Neg) {
        long a = 0;
        if (!eval_const_with_params(e->a, &a)) return false;
        *out = -a;
        return true;
      }
      return false;
    default:
      return false;
  }
}

}  // namespace suifx::ir
