#include "ir/printer.h"

#include <sstream>

namespace suifx::ir {

namespace {

int precedence(BinOp op) {
  switch (op) {
    case BinOp::Or: return 1;
    case BinOp::And: return 2;
    case BinOp::Lt: case BinOp::Le: case BinOp::Gt:
    case BinOp::Ge: case BinOp::Eq: case BinOp::Ne: return 3;
    case BinOp::Add: case BinOp::Sub: return 4;
    case BinOp::Mul: case BinOp::Div: case BinOp::Mod: return 5;
    case BinOp::Min: case BinOp::Max: return 6;  // rendered as calls
  }
  return 0;
}

void print_expr(const Expr* e, std::ostringstream& os, int parent_prec) {
  switch (e->kind) {
    case ExprKind::IntConst:
      os << e->ival;
      break;
    case ExprKind::RealConst: {
      std::ostringstream t;
      t << e->rval;
      std::string s = t.str();
      os << s;
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
        os << ".0";
      }
      break;
    }
    case ExprKind::VarRef:
      os << e->var->name;
      break;
    case ExprKind::ArrayRef:
      os << e->var->name << "[";
      for (size_t i = 0; i < e->idx.size(); ++i) {
        if (i > 0) os << ", ";
        print_expr(e->idx[i], os, 0);
      }
      os << "]";
      break;
    case ExprKind::Binary: {
      if (e->bop == BinOp::Min || e->bop == BinOp::Max) {
        os << to_string(e->bop) << "(";
        print_expr(e->a, os, 0);
        os << ", ";
        print_expr(e->b, os, 0);
        os << ")";
        break;
      }
      int prec = precedence(e->bop);
      bool paren = prec < parent_prec;
      if (paren) os << "(";
      print_expr(e->a, os, prec);
      os << " " << to_string(e->bop) << " ";
      print_expr(e->b, os, prec + 1);
      if (paren) os << ")";
      break;
    }
    case ExprKind::Unary:
      if (e->uop == UnOp::Neg || e->uop == UnOp::Not) {
        os << to_string(e->uop) << "(";
        print_expr(e->a, os, 0);
        os << ")";
      } else {
        os << to_string(e->uop) << "(";
        print_expr(e->a, os, 0);
        os << ")";
      }
      break;
  }
}

std::string dims_str(const Variable* v) {
  if (!v->is_array()) return "";
  std::string out = "[";
  for (size_t i = 0; i < v->dims.size(); ++i) {
    if (i > 0) out += ", ";
    const Dim& d = v->dims[i];
    long lo = 0;
    bool lo_is_one = ir::eval_const_with_params(d.lower, &lo) && lo == 1;
    if (!lo_is_one) {
      out += to_string(d.lower) + ":";
    }
    out += to_string(d.upper);
  }
  out += "]";
  return out;
}

void print_var_decl(const Variable* v, std::ostringstream& os, int indent) {
  os << std::string(static_cast<size_t>(indent) * 2, ' ');
  if (v->kind == VarKind::CommonMember) {
    os << "common " << v->common->name << " ";
    if (v->common_offset != 0) os << "@" << v->common_offset << " ";
  }
  os << to_string(v->elem) << " " << v->name << dims_str(v);
  if (v->is_input) os << " input";
  os << ";\n";
}

void print_body(const std::vector<Stmt*>& body, std::ostringstream& os, int indent);

void print_stmt(const Stmt* s, std::ostringstream& os, int indent) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (s->kind) {
    case StmtKind::Assign:
      os << pad << to_string(s->lhs) << " = " << to_string(s->rhs) << ";\n";
      break;
    case StmtKind::If:
      os << pad << "if (" << to_string(s->cond) << ") {\n";
      print_body(s->then_body, os, indent + 1);
      if (!s->else_body.empty()) {
        os << pad << "} else {\n";
        print_body(s->else_body, os, indent + 1);
      }
      os << pad << "}\n";
      break;
    case StmtKind::Do: {
      os << pad << "do " << s->ivar->name << " = " << to_string(s->lb) << ", "
         << to_string(s->ub);
      long step = 0;
      if (!(eval_const_with_params(s->step, &step) && step == 1)) {
        os << ", " << to_string(s->step);
      }
      if (!s->label.empty()) os << " label " << s->label;
      os << " {\n";
      print_body(s->body, os, indent + 1);
      os << pad << "}\n";
      break;
    }
    case StmtKind::Call:
      os << pad << "call " << s->callee->name << "(";
      for (size_t i = 0; i < s->args.size(); ++i) {
        if (i > 0) os << ", ";
        os << to_string(s->args[i]);
      }
      os << ");\n";
      break;
    case StmtKind::Print:
      os << pad << "print " << to_string(s->value) << ";\n";
      break;
    case StmtKind::Nop:
      os << pad << ";\n";
      break;
  }
}

void print_body(const std::vector<Stmt*>& body, std::ostringstream& os, int indent) {
  for (const Stmt* s : body) print_stmt(s, os, indent);
}

}  // namespace

std::string to_string(const Expr* e) {
  std::ostringstream os;
  print_expr(e, os, 0);
  return os.str();
}

std::string to_string(const Stmt* s, int indent) {
  std::ostringstream os;
  print_stmt(s, os, indent);
  return os.str();
}

std::string to_string(const Procedure& p) {
  std::ostringstream os;
  os << "proc " << p.name << "(";
  for (size_t i = 0; i < p.formals.size(); ++i) {
    if (i > 0) os << ", ";
    const Variable* f = p.formals[i];
    os << to_string(f->elem) << " " << f->name << dims_str(f);
  }
  os << ") {\n";
  for (const Variable* v : p.locals) print_var_decl(v, os, 1);
  print_body(p.body, os, 1);
  os << "}\n";
  return os.str();
}

std::string to_string(const Program& prog) {
  std::ostringstream os;
  os << "program " << prog.name() << ";\n";
  for (const Variable* v : prog.sym_params()) {
    os << "param " << v->name << " = " << v->param_default << ";\n";
  }
  for (const Variable* v : prog.globals()) {
    os << "global ";
    print_var_decl(v, os, 0);
  }
  for (const auto& p : prog.procedures()) {
    os << "\n" << to_string(p);
  }
  return os.str();
}

}  // namespace suifx::ir
