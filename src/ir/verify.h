// Structural and type verifier for finalized programs. Run after the
// frontend (and after programmatic construction) so every downstream
// analysis can assume a well-formed program.
#pragma once

#include "ir/ir.h"
#include "support/diag.h"

namespace suifx::ir {

/// Verify `prog`; reports problems into `diag`. Returns true when clean.
/// Checks: finalization, lvalue shapes, subscript ranks, loop-index typing,
/// call-site/formal compatibility, dim bounds affine over SymParams, and
/// acyclicity of the call graph (recursion is outside SF, as in the thesis's
/// region-based analyses).
bool verify(const Program& prog, Diag& diag);

}  // namespace suifx::ir
