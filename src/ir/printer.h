// Pretty-printer: renders IR back to SF surface syntax. Round-trips through
// the frontend parser (tested), and is the base layer for the Explorer's
// annotated source viewer.
#pragma once

#include <string>

#include "ir/ir.h"

namespace suifx::ir {

/// Render a single expression.
std::string to_string(const Expr* e);

/// Render a single statement (and its nested bodies) at `indent` levels.
std::string to_string(const Stmt* s, int indent = 0);

/// Render a whole procedure.
std::string to_string(const Procedure& p);

/// Render the whole program as SF source.
std::string to_string(const Program& prog);

}  // namespace suifx::ir
