#include "ssa/ssa.h"

#include <algorithm>
#include <functional>
#include <set>

namespace suifx::ssa {

using graph::CfgNode;
using graph::CfgNodeKind;

std::vector<Binding> call_bindings(const ir::Stmt* call, const analysis::ModRef& modref,
                                   const analysis::AliasAnalysis& alias) {
  std::vector<Binding> out;
  const analysis::ProcEffects& fx = modref.of(call->callee);
  for (size_t i = 0; i < call->args.size(); ++i) {
    Binding b;
    b.callee_var = call->callee->formals[i];
    b.actual = call->args[i];
    if (b.actual->is_var_ref() || b.actual->is_array_ref()) {
      b.caller_var = alias.canonical(b.actual->var);
    }
    b.flows_in = fx.formal_ref[i];
    b.flows_out = fx.formal_mod[i] && b.caller_var != nullptr;
    out.push_back(b);
  }
  std::set<const ir::Variable*> globals;
  for (const ir::Variable* g : fx.mod) globals.insert(g);
  for (const ir::Variable* g : fx.ref) globals.insert(g);
  for (const ir::Variable* g : globals) {
    Binding b;
    b.callee_var = g;
    b.caller_var = g;
    b.flows_in = fx.ref.count(g) != 0;
    b.flows_out = fx.mod.count(g) != 0;
    out.push_back(b);
  }
  return out;
}

// ---------------------------------------------------------------------------
// SsaFunc construction
// ---------------------------------------------------------------------------

struct SsaFunc::Build {
  SsaFunc& f;
  std::set<const ir::Variable*> vars;
  std::map<const CfgNode*, std::vector<SsaDef*>> phis;
  std::map<const ir::Variable*, std::vector<SsaDef*>> stack;
  std::map<const CfgNode*, std::vector<CfgNode*>> dom_children;

  explicit Build(SsaFunc& func) : f(func) {}

  const ir::Variable* canon(const ir::Variable* v) const {
    return f.alias_.canonical(v);
  }

  SsaDef* new_def(DefKind k, const ir::Variable* v, const ir::Stmt* s,
                  const CfgNode* b) {
    f.defs_.push_back({});
    SsaDef* d = &f.defs_.back();
    d->id = static_cast<int>(f.defs_.size()) - 1;
    d->kind = k;
    d->var = v;
    d->stmt = s;
    d->proc = &f.proc_;
    d->block = b;
    return d;
  }

  SsaDef* top(const ir::Variable* v) {
    auto& st = stack[v];
    return st.empty() ? nullptr : st.back();
  }

  void collect_vars() {
    auto add = [&](const ir::Variable* v) {
      if (v->kind == ir::VarKind::SymParam) return;
      vars.insert(canon(v));
    };
    f.proc_.for_each([&](ir::Stmt* s) {
      for (const ir::Access& a : ir::direct_accesses(s)) add(a.var);
      if (s->kind == ir::StmtKind::Do) add(s->ivar);
      if (s->kind == ir::StmtKind::Call) {
        for (const Binding& b : call_bindings(s, f.modref_, f.alias_)) {
          if (b.caller_var != nullptr) add(b.caller_var);
        }
      }
    });
    for (const ir::Variable* v : f.proc_.formals) add(v);
  }

  /// Variables defined by the contents of a CFG node (for phi placement).
  std::vector<const ir::Variable*> defined_vars(const CfgNode* n) {
    std::vector<const ir::Variable*> out;
    switch (n->kind) {
      case CfgNodeKind::Entry:
        out.assign(vars.begin(), vars.end());
        break;
      case CfgNodeKind::Plain:
        for (const ir::Stmt* s : n->stmts) {
          if (s->kind == ir::StmtKind::Assign) {
            out.push_back(canon(s->lhs->var));
          } else if (s->kind == ir::StmtKind::Call) {
            for (const Binding& b : call_bindings(s, f.modref_, f.alias_)) {
              if (b.flows_out && b.caller_var != nullptr) out.push_back(b.caller_var);
            }
          }
        }
        break;
      case CfgNodeKind::LoopPre:
      case CfgNodeKind::LoopLatch:
        out.push_back(canon(n->ctrl->ivar));
        break;
      default:
        break;
    }
    return out;
  }

  void place_phis(const graph::DomInfo& dom, const graph::Cfg& cfg) {
    std::map<const ir::Variable*, std::vector<CfgNode*>> def_blocks;
    for (const auto& n : cfg.nodes()) {
      for (const ir::Variable* v : defined_vars(n.get())) {
        def_blocks[v].push_back(n.get());
      }
    }
    for (const auto& [v, blocks] : def_blocks) {
      for (CfgNode* site : dom.iterated_frontier(blocks)) {
        if (site->preds.size() < 2) continue;
        SsaDef* phi = new_def(DefKind::Phi, v, site->ctrl, site);
        phi->phi_args.assign(site->preds.size(), nullptr);
        phis[site].push_back(phi);
      }
    }
  }

  void record_use(const ir::Stmt* s, const ir::Expr* ref) {
    const ir::Variable* v = canon(ref->var);
    if (ref->var->kind == ir::VarKind::SymParam) return;
    SsaDef* d = top(v);
    if (d == nullptr) return;
    f.use_def_[{s->id, ref}] = d;
  }

  void record_stmt_uses(const ir::Stmt* s) {
    for (const ir::Access& a : ir::direct_accesses(s)) {
      if (!a.is_write) record_use(s, a.ref);
    }
  }

  void process_plain_stmt(const ir::Stmt* s, const CfgNode* b) {
    record_stmt_uses(s);
    if (s->kind == ir::StmtKind::Assign) {
      const ir::Variable* v = canon(s->lhs->var);
      bool weak = s->lhs->is_array_ref() || f.alias_.is_blob(s->lhs->var) ||
                  v != s->lhs->var;  // overlay siblings see a weak update
      SsaDef* d = new_def(DefKind::Stmt, v, s, b);
      if (weak) d->weak_prev = top(v);
      stack[v].push_back(d);
    } else if (s->kind == ir::StmtKind::Call) {
      for (const Binding& bind : call_bindings(s, f.modref_, f.alias_)) {
        if (bind.flows_in && bind.caller_var != nullptr) {
          if (SsaDef* d = top(bind.caller_var)) {
            f.call_in_[{s, bind.caller_var}] = d;
          }
        }
      }
      for (const Binding& bind : call_bindings(s, f.modref_, f.alias_)) {
        if (!bind.flows_out || bind.caller_var == nullptr) continue;
        SsaDef* d = new_def(DefKind::CallOut, bind.caller_var, s, b);
        d->weak_prev = top(bind.caller_var);  // callee may write partially
        stack[bind.caller_var].push_back(d);
      }
    }
  }

  void rename(CfgNode* b, const graph::Cfg& cfg) {
    std::map<const ir::Variable*, size_t> saved;
    for (const ir::Variable* v : vars) saved[v] = stack[v].size();

    for (SsaDef* phi : phis[b]) stack[phi->var].push_back(phi);

    switch (b->kind) {
      case CfgNodeKind::Entry:
        for (const ir::Variable* v : vars) {
          SsaDef* d = new_def(DefKind::Entry, v, nullptr, b);
          stack[v].push_back(d);
          f.entry_[v] = d;
        }
        break;
      case CfgNodeKind::Plain:
        for (const ir::Stmt* s : b->stmts) process_plain_stmt(s, b);
        break;
      case CfgNodeKind::Branch:
        record_stmt_uses(b->ctrl);  // condition reads
        break;
      case CfgNodeKind::LoopPre: {
        record_stmt_uses(b->ctrl);  // bound reads
        const ir::Variable* v = canon(b->ctrl->ivar);
        stack[v].push_back(new_def(DefKind::LoopInit, v, b->ctrl, b));
        break;
      }
      case CfgNodeKind::LoopLatch: {
        const ir::Variable* v = canon(b->ctrl->ivar);
        SsaDef* d = new_def(DefKind::LoopNext, v, b->ctrl, b);
        d->weak_prev = top(v);
        stack[v].push_back(d);
        break;
      }
      case CfgNodeKind::Exit:
        for (const ir::Variable* v : vars) f.exit_[v] = top(v);
        break;
      default:
        break;
    }

    // Fill successor phi operands.
    for (CfgNode* succ : b->succs) {
      size_t pred_ix = 0;
      for (; pred_ix < succ->preds.size(); ++pred_ix) {
        if (succ->preds[pred_ix] == b) break;
      }
      for (SsaDef* phi : phis[succ]) {
        phi->phi_args[pred_ix] = top(phi->var);
      }
    }

    for (CfgNode* child : dom_children[b]) rename(child, cfg);

    for (const ir::Variable* v : vars) stack[v].resize(saved[v]);
  }

  void run() {
    collect_vars();
    place_phis(*f.dom_, *f.cfg_);
    // Dominator-tree children.
    for (const auto& n : f.cfg_->nodes()) {
      CfgNode* idom = f.dom_->idom(n.get());
      if (idom != nullptr) dom_children[idom].push_back(n.get());
    }
    rename(f.cfg_->entry(), *f.cfg_);
    // Phi operands on unreachable edges stay null; drop them.
    for (SsaDef& d : f.defs_) {
      if (d.kind == DefKind::Phi) {
        d.phi_args.erase(std::remove(d.phi_args.begin(), d.phi_args.end(), nullptr),
                         d.phi_args.end());
      }
    }
  }
};

SsaFunc::SsaFunc(ir::Procedure& proc, const analysis::AliasAnalysis& alias,
                 const analysis::ModRef& modref)
    : proc_(proc), alias_(alias), modref_(modref) {
  cfg_ = std::make_unique<graph::Cfg>(proc);
  dom_ = std::make_unique<graph::DomInfo>(*cfg_);
  Build(*this).run();
}

SsaDef* SsaFunc::use_def(const ir::Stmt* s, const ir::Expr* ref) const {
  auto it = use_def_.find({s->id, ref});
  return it != use_def_.end() ? it->second : nullptr;
}

std::vector<std::pair<const ir::Expr*, SsaDef*>> SsaFunc::uses_of(
    const ir::Stmt* s) const {
  std::vector<std::pair<const ir::Expr*, SsaDef*>> out;
  auto lo = use_def_.lower_bound({s->id, nullptr});
  for (auto it = lo; it != use_def_.end() && it->first.first == s->id; ++it) {
    out.push_back({it->first.second, it->second});
  }
  return out;
}

SsaDef* SsaFunc::entry_def(const ir::Variable* canon) const {
  auto it = entry_.find(canon);
  return it != entry_.end() ? it->second : nullptr;
}

SsaDef* SsaFunc::exit_def(const ir::Variable* canon) const {
  auto it = exit_.find(canon);
  return it != exit_.end() ? it->second : nullptr;
}

SsaDef* SsaFunc::call_in(const ir::Stmt* call, const ir::Variable* canon) const {
  auto it = call_in_.find({call, canon});
  return it != call_in_.end() ? it->second : nullptr;
}

Issa::Issa(ir::Program& prog, const analysis::AliasAnalysis& alias,
           const analysis::ModRef& modref)
    : prog_(prog), alias_(alias), modref_(modref) {
  for (ir::Procedure& p : prog.procedures()) {
    funcs_[&p] = std::make_unique<SsaFunc>(p, alias, modref);
  }
}

}  // namespace suifx::ssa
