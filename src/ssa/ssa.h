// Interprocedural SSA (§3.4): per-procedure minimal SSA built with iterated
// dominance frontiers over the CFG, glued into a program-wide graph by
// explicit parameter-binding semantics — every procedure treats the global
// and COMMON variables it (or a callee) touches as extra parameters
// (ModRef), formals follow Fortran copy-in/copy-out, and each call site
// produces CallOut definitions for out-flowing channels whose values resolve
// to the callee's exit definitions.
//
// Array variables are versioned like scalars with weak updates: an element
// store defines the array while using its previous definition (§3.4.2), and
// COMMON overlays are unified through their alias-canonical representative.
#pragma once

#include <deque>
#include <map>

#include "analysis/alias.h"
#include "analysis/modref.h"
#include "graph/cfg.h"

namespace suifx::ssa {

namespace analysis = suifx::analysis;

enum class DefKind : uint8_t {
  Entry,     // channel value at procedure entry (formal/global "parameter")
  Phi,       // control-flow merge
  Stmt,      // an Assign statement
  LoopInit,  // DO index initialization (uses the bounds)
  LoopNext,  // DO index increment (uses the previous index value)
  CallOut,   // value of an out-flowing channel after a call site
};

struct SsaDef {
  int id = 0;
  DefKind kind = DefKind::Entry;
  const ir::Variable* var = nullptr;  // canonical variable defined
  const ir::Stmt* stmt = nullptr;     // Assign / Do / Call statement (or null)
  const ir::Procedure* proc = nullptr;  // owning procedure
  const graph::CfgNode* block = nullptr;
  std::vector<SsaDef*> phi_args;      // Phi operands (per predecessor)
  SsaDef* weak_prev = nullptr;        // previous value (array weak update,
                                      // LoopNext's prior index)
};

/// One formal/global channel binding at a call site.
struct Binding {
  const ir::Variable* callee_var = nullptr;  // formal, or canonical global
  const ir::Variable* caller_var = nullptr;  // lvalue actual (null otherwise)
  const ir::Expr* actual = nullptr;          // actual expression (formals)
  bool flows_in = false;
  bool flows_out = false;
};

std::vector<Binding> call_bindings(const ir::Stmt* call, const analysis::ModRef& modref,
                                   const analysis::AliasAnalysis& alias);

/// SSA form of one procedure.
class SsaFunc {
 public:
  SsaFunc(ir::Procedure& proc, const analysis::AliasAnalysis& alias,
          const analysis::ModRef& modref);
  SsaFunc(const SsaFunc&) = delete;
  SsaFunc& operator=(const SsaFunc&) = delete;

  /// The definition reaching a read reference `ref` occurring in `s`
  /// (keyed by statement + expression node; null if not a tracked use).
  SsaDef* use_def(const ir::Stmt* s, const ir::Expr* ref) const;

  /// All (expr -> def) uses recorded for statement `s` (RHS reads,
  /// subscripts, condition reads, bound reads, call argument reads).
  std::vector<std::pair<const ir::Expr*, SsaDef*>> uses_of(const ir::Stmt* s) const;

  SsaDef* entry_def(const ir::Variable* canon) const;
  SsaDef* exit_def(const ir::Variable* canon) const;
  /// Reaching def of a caller-side channel variable just before `call`.
  SsaDef* call_in(const ir::Stmt* call, const ir::Variable* canon) const;

  const std::deque<SsaDef>& defs() const { return defs_; }
  ir::Procedure& proc() const { return proc_; }
  const graph::Cfg& cfg() const { return *cfg_; }

 private:
  struct Build;
  ir::Procedure& proc_;
  const analysis::AliasAnalysis& alias_;
  const analysis::ModRef& modref_;
  std::unique_ptr<graph::Cfg> cfg_;
  std::unique_ptr<graph::DomInfo> dom_;
  std::deque<SsaDef> defs_;
  std::map<std::pair<int, const ir::Expr*>, SsaDef*> use_def_;
  std::map<const ir::Variable*, SsaDef*> entry_;
  std::map<const ir::Variable*, SsaDef*> exit_;
  std::map<std::pair<const ir::Stmt*, const ir::Variable*>, SsaDef*> call_in_;
};

/// Program-wide ISSA: one SsaFunc per procedure plus the call-site glue.
class Issa {
 public:
  Issa(ir::Program& prog, const analysis::AliasAnalysis& alias,
       const analysis::ModRef& modref);

  const SsaFunc& func(const ir::Procedure* p) const { return *funcs_.at(p); }
  std::vector<Binding> bindings(const ir::Stmt* call) const {
    return call_bindings(call, modref_, alias_);
  }
  const analysis::AliasAnalysis& alias() const { return alias_; }
  const analysis::ModRef& modref() const { return modref_; }
  ir::Program& program() const { return prog_; }

 private:
  ir::Program& prog_;
  const analysis::AliasAnalysis& alias_;
  const analysis::ModRef& modref_;
  std::map<const ir::Procedure*, std::unique_ptr<SsaFunc>> funcs_;
};

}  // namespace suifx::ssa
