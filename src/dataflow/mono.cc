#include "dataflow/mono.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "runtime/parloop.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/provenance.h"
#include "support/trace.h"

namespace suifx::dataflow {

namespace prov = support::provenance;

// ---------------------------------------------------------------------------
// Worker configuration + shared pool
// ---------------------------------------------------------------------------

namespace {

std::atomic<int> g_default_workers{0};  // 0 = not yet resolved

int resolve_default_workers() {
  if (const char* env = std::getenv("SUIFX_DATAFLOW_WORKERS")) {
    int v = std::atoi(env);
    if (v >= 1) return std::min(v, 64);
  }
  unsigned hw = std::thread::hardware_concurrency();
  int cores = hw == 0 ? 4 : static_cast<int>(hw);
  return std::clamp(cores, 1, 8);
}

/// One pool per worker count, kept for the life of the process: solves from
/// different threads (daemon requests, the Driver's planning tasks) may be
/// in flight with different counts at once, so pools are never torn down
/// and handed-out references stay valid.
runtime::ThreadPool& shared_pool(int workers) {
  static std::mutex mu;
  static std::map<int, std::unique_ptr<runtime::ThreadPool>>* pools =
      new std::map<int, std::unique_ptr<runtime::ThreadPool>>();
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = (*pools)[workers];
  if (slot == nullptr) slot = std::make_unique<runtime::ThreadPool>(workers);
  return *slot;
}

}  // namespace

int default_workers() {
  int v = g_default_workers.load(std::memory_order_acquire);
  if (v > 0) return v;
  int resolved = resolve_default_workers();
  int expected = 0;
  g_default_workers.compare_exchange_strong(expected, resolved,
                                            std::memory_order_acq_rel);
  return g_default_workers.load(std::memory_order_acquire);
}

void set_default_workers(int workers) {
  g_default_workers.store(std::max(1, workers), std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Condensation: reverse post-order + Tarjan SCCs, all deterministic (roots
// in node order, successors in insertion order)
// ---------------------------------------------------------------------------

namespace {

struct Condensation {
  std::vector<int> prio;                     // node -> RPO index
  std::vector<int> comp;                     // node -> component id, topo order
  std::vector<std::vector<int>> members;     // per comp, sorted by prio
  std::vector<std::vector<int>> comp_succs;  // condensation edges, deduped
  int num_comps = 0;
};

void compute_rpo(const DepGraph& g, std::vector<int>& prio) {
  const int n = g.num_nodes();
  prio.assign(static_cast<size_t>(n), 0);
  std::vector<char> seen(static_cast<size_t>(n), 0);
  std::vector<int> post;
  post.reserve(static_cast<size_t>(n));
  // Iterative DFS: frame = (node, next successor index).
  std::vector<std::pair<int, size_t>> stack;
  for (int root = 0; root < n; ++root) {
    if (seen[static_cast<size_t>(root)]) continue;
    seen[static_cast<size_t>(root)] = 1;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const std::vector<int>& succs = g.succs(node);
      if (next < succs.size()) {
        int s = succs[next++];
        if (!seen[static_cast<size_t>(s)]) {
          seen[static_cast<size_t>(s)] = 1;
          stack.push_back({s, 0});
        }
      } else {
        post.push_back(node);
        stack.pop_back();
      }
    }
  }
  // Reverse post-order: earlier = closer to the roots of the dep graph.
  for (size_t i = 0; i < post.size(); ++i) {
    prio[static_cast<size_t>(post[post.size() - 1 - i])] = static_cast<int>(i);
  }
}

Condensation condense(const DepGraph& g) {
  Condensation c;
  const int n = g.num_nodes();
  compute_rpo(g, c.prio);

  // Iterative Tarjan. Components complete sinks-first (reverse topological
  // order of dep -> dependent), so emitted id k becomes comp num_comps-1-k.
  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> low(static_cast<size_t>(n), 0);
  std::vector<char> on_stack(static_cast<size_t>(n), 0);
  std::vector<int> scc_stack;
  std::vector<int> emitted(static_cast<size_t>(n), -1);
  int next_index = 0;
  int num_emitted = 0;
  struct Frame {
    int node;
    size_t next = 0;
  };
  std::vector<Frame> stack;
  for (int root = 0; root < n; ++root) {
    if (index[static_cast<size_t>(root)] != -1) continue;
    stack.push_back({root});
    index[static_cast<size_t>(root)] = low[static_cast<size_t>(root)] = next_index++;
    scc_stack.push_back(root);
    on_stack[static_cast<size_t>(root)] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const std::vector<int>& succs = g.succs(f.node);
      if (f.next < succs.size()) {
        int s = succs[f.next++];
        if (index[static_cast<size_t>(s)] == -1) {
          index[static_cast<size_t>(s)] = low[static_cast<size_t>(s)] = next_index++;
          scc_stack.push_back(s);
          on_stack[static_cast<size_t>(s)] = 1;
          stack.push_back({s});
        } else if (on_stack[static_cast<size_t>(s)]) {
          low[static_cast<size_t>(f.node)] =
              std::min(low[static_cast<size_t>(f.node)], index[static_cast<size_t>(s)]);
        }
      } else {
        int node = f.node;
        stack.pop_back();
        if (!stack.empty()) {
          int parent = stack.back().node;
          low[static_cast<size_t>(parent)] =
              std::min(low[static_cast<size_t>(parent)], low[static_cast<size_t>(node)]);
        }
        if (low[static_cast<size_t>(node)] == index[static_cast<size_t>(node)]) {
          while (true) {
            int m = scc_stack.back();
            scc_stack.pop_back();
            on_stack[static_cast<size_t>(m)] = 0;
            emitted[static_cast<size_t>(m)] = num_emitted;
            if (m == node) break;
          }
          ++num_emitted;
        }
      }
    }
  }

  c.num_comps = num_emitted;
  c.comp.resize(static_cast<size_t>(n));
  c.members.assign(static_cast<size_t>(num_emitted), {});
  for (int v = 0; v < n; ++v) {
    int id = num_emitted - 1 - emitted[static_cast<size_t>(v)];
    c.comp[static_cast<size_t>(v)] = id;
    c.members[static_cast<size_t>(id)].push_back(v);
  }
  for (auto& m : c.members) {
    std::sort(m.begin(), m.end(), [&](int a, int b) {
      return c.prio[static_cast<size_t>(a)] < c.prio[static_cast<size_t>(b)];
    });
  }
  c.comp_succs.assign(static_cast<size_t>(num_emitted), {});
  for (int v = 0; v < n; ++v) {
    int cv = c.comp[static_cast<size_t>(v)];
    for (int s : g.succs(v)) {
      int cs = c.comp[static_cast<size_t>(s)];
      if (cs != cv) c.comp_succs[static_cast<size_t>(cv)].push_back(cs);
    }
  }
  for (auto& succs : c.comp_succs) {
    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
  }
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// The solve
// ---------------------------------------------------------------------------

namespace detail {

namespace {

/// Iterate one component to its local fixpoint. Deterministic: the worklist
/// is ordered by RPO priority, and everything read outside the component is
/// sealed. Returns pops; adds avoided re-queues to `sparse_skips`.
uint64_t solve_component(const ErasedClient& client, const DepGraph& g,
                         const Condensation& c, int comp,
                         uint64_t* sparse_skips) {
  const std::vector<int>& members = c.members[static_cast<size_t>(comp)];
  uint64_t pops = 0;
  if (members.size() == 1 && [&] {
        // Fast path: a singleton without a self-loop runs exactly once.
        int v = members.front();
        for (int s : g.succs(v)) {
          if (s == v) return false;
        }
        return true;
      }()) {
    int v = members.front();
    support::Budget::charge_current(client.cost(client.self, v));
    ++pops;
    bool changed = client.transfer(client.self, v);
    if (!changed) *sparse_skips += g.succs(v).size();
    return pops;
  }
  // (prio, node) ordered worklist; in_queue keyed by node.
  std::set<std::pair<int, int>> worklist;
  for (int v : members) worklist.insert({c.prio[static_cast<size_t>(v)], v});
  while (!worklist.empty()) {
    auto it = worklist.begin();
    int v = it->second;
    worklist.erase(it);
    support::Budget::charge_current(client.cost(client.self, v));
    ++pops;
    bool changed = client.transfer(client.self, v);
    for (int s : g.succs(v)) {
      if (c.comp[static_cast<size_t>(s)] != comp) continue;  // sealed later
      if (changed) {
        worklist.insert({c.prio[static_cast<size_t>(s)], s});
      } else {
        ++*sparse_skips;
      }
    }
  }
  return pops;
}

}  // namespace

SolveStats solve_erased(const ErasedClient& client, const DepGraph& g,
                        const SolveOptions& opts) {
  support::Metrics& metrics = support::Metrics::global();
  const std::string prefix = std::string("dataflow.") + opts.pass;
  support::trace::TraceSpan span("dataflow.solve", opts.pass);
  SUIFX_FAULT_POINT("dataflow.solve");

  SolveStats stats;
  if (g.num_nodes() == 0) return stats;

  Condensation c = condense(g);
  stats.sccs = static_cast<uint64_t>(c.num_comps);

  int workers = opts.workers > 0 ? opts.workers : default_workers();
  workers = std::min(workers, c.num_comps);
  stats.workers = std::max(1, workers);

  // A pool helper only ever helps when the host has a spare core to run it;
  // on a single-core host every component solves inline, so take the serial
  // path outright and skip the scheduler mutex/condvar machinery.
  unsigned hw_cores = std::thread::hardware_concurrency();
  const int max_helpers =
      std::min(workers - 1, std::max(0, static_cast<int>(hw_cores) - 1));

  if (workers <= 1 || c.num_comps <= 1 || max_helpers == 0) {
    // Serial: components in topological order, each sealed before the next.
    for (int comp = 0; comp < c.num_comps; ++comp) {
      stats.iterations += solve_component(client, g, c, comp, &stats.sparse_skips);
    }
  } else {
    // Parallel: the calling thread drains a topologically-ordered ready set
    // itself and enlists pool helpers only while there is backlog — more
    // than one component ready at once. A chain-shaped condensation (the
    // common case for the call-graph clients) therefore runs entirely
    // inline, with no thread handoffs at all, and a wide condensation fans
    // out to at most workers-1 helpers plus the caller. One mutex guards
    // the scheduler state (ready set, indegrees, counters) and doubles as
    // the happens-before edge from a sealed component's writes to its
    // dependents' reads: the finisher publishes successors under the lock,
    // and whoever pops them acquires the same lock first.
    runtime::ThreadPool& pool = shared_pool(workers);
    std::vector<int> indeg(static_cast<size_t>(c.num_comps), 0);
    for (int comp = 0; comp < c.num_comps; ++comp) {
      for (int s : c.comp_succs[static_cast<size_t>(comp)]) {
        ++indeg[static_cast<size_t>(s)];
      }
    }

    // The caller's cooperative-cancellation, request-attribution, and
    // fault-suppression state are all thread-local; re-install them inside
    // every pool helper (the Driver's planning tasks set the same
    // precedent). The caller's own inline pops keep them for free.
    support::Budget* budget = support::Budget::current();
    const uint64_t corr = prov::current_corr();
    const bool suppressed = support::fault::suppressed();

    std::mutex mu;
    std::condition_variable cv;
    std::set<int> ready;          // topologically-ordered component ids
    int remaining = c.num_comps;  // components not yet finished or abandoned
    int helpers = 0;              // pool tasks alive (spawned, not exited)
    bool abort = false;
    uint64_t on_helpers = 0;  // components a helper (not the caller) solved
    std::vector<std::exception_ptr> errors(static_cast<size_t>(c.num_comps));
    for (int comp = 0; comp < c.num_comps; ++comp) {
      if (indeg[static_cast<size_t>(comp)] == 0) ready.insert(comp);
    }

    // Mutually recursive via std::function: finishing a component releases
    // successors, which may warrant more helpers, which solve components.
    std::function<void(int, bool)> run_comp;
    std::function<void()> maybe_spawn;  // requires mu held
    std::function<void()> helper_body;

    run_comp = [&](int comp, bool on_pool) {
      uint64_t pops = 0, skips = 0;
      std::exception_ptr err;
      try {
        pops = solve_component(client, g, c, comp, &skips);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (err != nullptr) {
        errors[static_cast<size_t>(comp)] = err;
        abort = true;
      } else {
        stats.iterations += pops;
        stats.sparse_skips += skips;
        if (on_pool) ++on_helpers;
        for (int s : c.comp_succs[static_cast<size_t>(comp)]) {
          if (--indeg[static_cast<size_t>(s)] == 0) ready.insert(s);
        }
        maybe_spawn();
      }
      --remaining;
      cv.notify_all();
    };

    helper_body = [&] {
      support::Budget::Scope bs(budget);
      prov::CorrScope cs(corr);
      std::optional<support::fault::SuppressScope> ss;
      if (suppressed) ss.emplace();
      while (true) {
        int comp;
        {
          std::lock_guard<std::mutex> lock(mu);
          if (abort || ready.empty()) {
            --helpers;
            cv.notify_all();
            return;
          }
          comp = *ready.begin();
          ready.erase(ready.begin());
        }
        run_comp(comp, /*on_pool=*/true);
      }
    };

    maybe_spawn = [&] {
      while (!abort && helpers < max_helpers &&
             helpers < static_cast<int>(ready.size())) {
        ++helpers;
        pool.submit(helper_body);
      }
    };

    while (true) {
      int comp;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock,
                [&] { return abort || remaining == 0 || !ready.empty(); });
        if (abort || remaining == 0) break;
        comp = *ready.begin();
        ready.erase(ready.begin());
        maybe_spawn();
      }
      run_comp(comp, /*on_pool=*/false);
    }
    {
      // Helpers reference this frame's locals; they exit promptly once the
      // ready set drains or abort is set.
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return helpers == 0; });
      stats.scc_parallel = on_helpers;
      if (abort) {
        // First failed component in topological order, for a deterministic
        // error surface regardless of scheduling.
        for (auto& err : errors) {
          if (err != nullptr) std::rethrow_exception(err);
        }
      }
    }
  }

  metrics.count(prefix + ".iterations", stats.iterations);
  if (stats.sparse_skips != 0) {
    metrics.count(prefix + ".sparse_skips", stats.sparse_skips);
  }
  if (stats.scc_parallel != 0) {
    metrics.count(prefix + ".scc_parallel", stats.scc_parallel);
  }
  return stats;
}

}  // namespace detail

}  // namespace suifx::dataflow
