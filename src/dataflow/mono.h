// Generic monotone-framework fixpoint engine (docs/dataflow.md): the one
// solver behind every interprocedural dataflow pass. A client exposes its
// problem as a dependency graph over integer nodes (an edge dep -> dependent
// says the dependent's transfer reads the dep's fact) plus a transfer
// function that recomputes one node's fact and reports whether it changed;
// the engine supplies everything the passes used to hand-roll:
//
//  * a priority worklist seeded in reverse post-order, so facts flow in the
//    direction of the graph and each node is visited as late as possible;
//  * sparse change propagation — only the dependents of a fact that actually
//    changed are re-queued (`dataflow.<pass>.sparse_skips` counts the
//    re-queues avoided);
//  * SCC condensation (Tarjan) with per-SCC sealing: a strongly connected
//    component is iterated to its local fixpoint before any dependent
//    component starts, so a transfer only ever reads facts that are either
//    final (sealed predecessor SCCs) or owned by its own component's
//    deterministic worklist. That is what makes the solution byte-identical
//    at any worker count;
//  * a parallel interprocedural scheduler: the calling thread drains a
//    topologically-ordered ready set and enlists shared-pool helpers only
//    while more than one component is ready, so a chain-shaped condensation
//    runs inline with zero thread handoffs and a wide one fans out to the
//    worker count (the scheduler mutex is the happens-before edge for the
//    sealed facts);
//  * cooperative cancellation — the single `support::Budget` charge site for
//    all clients is the worklist pop, weighted by the client's per-node
//    cost, so SUIFX_BUDGET_STEPS trips the same degradation ladders the
//    bespoke per-statement charges did;
//  * observability: a `dataflow.solve` trace span and the Metrics counters
//    `dataflow.<pass>.iterations` / `.sparse_skips` / `.scc_parallel`.
//
// SF forbids recursion, so the call-graph clients (modref, array dataflow,
// liveness) see singleton SCCs and every transfer runs exactly once; the
// iteration machinery exists for clients whose graphs do cycle (the Andersen
// constraint graph under future language growth, synthetic tests) and costs
// the acyclic clients nothing.
#pragma once

#include <concepts>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "support/budget.h"

namespace suifx::dataflow {

// ---------------------------------------------------------------------------
// Lattice + client concepts
// ---------------------------------------------------------------------------

/// A join-semilattice presented statically: a bottom element and a
/// destructive join that reports whether the target grew. Clients are free
/// to keep richer fact types (the array-dataflow port joins whole
/// section-algebra summaries); the concept is the contract the engine's
/// termination argument rests on — transfer must be monotone and the fact
/// height finite.
template <typename L>
concept Lattice = requires(typename L::Value& a, const typename L::Value& b) {
  { L::bottom() } -> std::same_as<typename L::Value>;
  { L::join_into(a, b) } -> std::same_as<bool>;
};

/// The canonical finite set lattice (bottom = {}, join = union).
template <typename T>
struct SetLattice {
  using Value = std::set<T>;
  static Value bottom() { return {}; }
  /// Union `b` into `a`; true when `a` grew.
  static bool join_into(Value& a, const Value& b) {
    bool changed = false;
    for (const T& x : b) changed |= a.insert(x).second;
    return changed;
  }
};

/// One boolean fact per node (bottom = false, join = or).
struct FlagLattice {
  using Value = bool;
  static Value bottom() { return false; }
  static bool join_into(Value& a, const Value& b) {
    bool changed = b && !a;
    a |= b;
    return changed;
  }
};

/// What a pass plugs into the engine. `transfer(n)` recomputes node n's fact
/// from the facts of its dependency-graph predecessors (all sealed or
/// same-SCC, see above) and returns true when the fact changed; it runs
/// concurrently with transfers of nodes in OTHER components, so it must only
/// touch node-local state plus read-only shared structure. `cost(n)` is the
/// budget weight charged when n is popped (the ported passes use the node's
/// statement count so SUIFX_BUDGET_STEPS keeps its old meaning).
template <typename C>
concept MonoClient = requires(C c, int n) {
  { c.transfer(n) } -> std::convertible_to<bool>;
  { c.cost(n) } -> std::convertible_to<uint64_t>;
};

// ---------------------------------------------------------------------------
// Dependency graph
// ---------------------------------------------------------------------------

/// Edge dep -> dependent: the dependent's transfer reads the dep's fact, so
/// the dep solves first (or, inside one SCC, a change to the dep re-queues
/// the dependent). Self-edges and duplicate edges are fine.
class DepGraph {
 public:
  explicit DepGraph(int num_nodes) : succs_(static_cast<size_t>(num_nodes)) {}

  void add_edge(int dep, int dependent) {
    succs_[static_cast<size_t>(dep)].push_back(dependent);
  }

  int num_nodes() const { return static_cast<int>(succs_.size()); }
  const std::vector<int>& succs(int n) const {
    return succs_[static_cast<size_t>(n)];
  }

 private:
  std::vector<std::vector<int>> succs_;
};

// ---------------------------------------------------------------------------
// Solver
// ---------------------------------------------------------------------------

struct SolveOptions {
  /// Metrics key infix: counters land in `dataflow.<pass>.*`.
  const char* pass = "mono";
  /// Worker threads for independent SCCs; 0 = default_workers(). Any value
  /// yields the identical solution — workers only change wall time.
  int workers = 0;
};

struct SolveStats {
  uint64_t iterations = 0;    // worklist pops = transfer applications
  uint64_t sparse_skips = 0;  // dependent re-queues avoided (fact unchanged)
  uint64_t sccs = 0;          // components in the condensation
  uint64_t scc_parallel = 0;  // components solved by pool helpers, not caller
  int workers = 1;            // effective worker count used
};

/// The engine-wide worker default: SUIFX_DATAFLOW_WORKERS if set, else
/// min(hardware_concurrency, 8). set_default_workers overrides both (the
/// bench sweeps 1/4/8 with it); thread-safe.
int default_workers();
void set_default_workers(int workers);

namespace detail {

/// Everything about the solve that does not depend on the client type:
/// priorities, condensation, scheduling, budget, metrics. The client enters
/// type-erased through two function refs.
struct ErasedClient {
  void* self = nullptr;
  bool (*transfer)(void* self, int node) = nullptr;
  uint64_t (*cost)(void* self, int node) = nullptr;
};

SolveStats solve_erased(const ErasedClient& client, const DepGraph& g,
                        const SolveOptions& opts);

}  // namespace detail

/// Solve the client's problem over `g` to a fixpoint. Every node's transfer
/// runs at least once (facts start at the client's initial state). Throws
/// the client's exceptions, `support::BudgetExceeded`, and injected faults;
/// on throw the client's facts are partial and must be discarded (the
/// degradation ladders rebuild the whole pass object).
template <MonoClient C>
SolveStats solve(C& client, const DepGraph& g, const SolveOptions& opts = {}) {
  detail::ErasedClient ec;
  ec.self = &client;
  ec.transfer = [](void* self, int node) {
    return static_cast<bool>(static_cast<C*>(self)->transfer(node));
  };
  ec.cost = [](void* self, int node) {
    return static_cast<uint64_t>(static_cast<C*>(self)->cost(node));
  };
  return detail::solve_erased(ec, g, opts);
}

}  // namespace suifx::dataflow
