// Per-procedure control-flow graph over basic blocks, built from the
// structured IR. Used by SSA construction (iterated dominance frontiers,
// §3.4.3) and by control-dependence computation for control slices.
//
// DO-loop lowering (semantics shared with the interpreter): bounds and step
// are evaluated once at loop entry (Fortran trip-count rule):
//   Pre(i = lb; trip bounds)  ->  Head(i <= ub?)  -> body ... -> Latch(i += step) -> Head
//                                 Head -> after-loop
#pragma once

#include <memory>
#include <vector>

#include "ir/ir.h"

namespace suifx::graph {

enum class CfgNodeKind : uint8_t { Entry, Exit, Plain, Branch, LoopPre, LoopHead, LoopLatch, Join };

struct CfgNode {
  int id = 0;
  CfgNodeKind kind = CfgNodeKind::Plain;
  /// Simple statements executed in order (Plain nodes).
  std::vector<ir::Stmt*> stmts;
  /// The controlling statement: the If for Branch, the Do for Loop* nodes.
  ir::Stmt* ctrl = nullptr;
  std::vector<CfgNode*> succs;
  std::vector<CfgNode*> preds;
};

class Cfg {
 public:
  explicit Cfg(ir::Procedure& proc);

  CfgNode* entry() const { return entry_; }
  CfgNode* exit() const { return exit_; }
  const std::vector<std::unique_ptr<CfgNode>>& nodes() const { return nodes_; }
  int size() const { return static_cast<int>(nodes_.size()); }
  ir::Procedure& proc() const { return proc_; }

  /// Reverse post-order from entry (forward dataflow order).
  std::vector<CfgNode*> rpo() const;

 private:
  CfgNode* new_node(CfgNodeKind k, ir::Stmt* ctrl = nullptr);
  static void link(CfgNode* from, CfgNode* to);
  /// Lower a statement sequence; returns the last open node.
  CfgNode* lower_body(const std::vector<ir::Stmt*>& body, CfgNode* cur);

  ir::Procedure& proc_;
  std::vector<std::unique_ptr<CfgNode>> nodes_;
  CfgNode* entry_ = nullptr;
  CfgNode* exit_ = nullptr;
};

/// Dominator tree + dominance frontiers via the Cooper–Harvey–Kennedy
/// iterative algorithm. Pass `reverse=true` for postdominators (computed on
/// the reversed CFG rooted at exit).
class DomInfo {
 public:
  DomInfo(const Cfg& cfg, bool reverse = false);

  /// Immediate dominator (or postdominator), null for the root.
  CfgNode* idom(const CfgNode* n) const { return idom_[static_cast<size_t>(n->id)]; }
  bool dominates(const CfgNode* a, const CfgNode* b) const;
  const std::vector<CfgNode*>& frontier(const CfgNode* n) const {
    return df_[static_cast<size_t>(n->id)];
  }
  /// Iterated dominance frontier of a set of nodes (phi placement, §3.4.3).
  std::vector<CfgNode*> iterated_frontier(const std::vector<CfgNode*>& defs) const;

 private:
  const Cfg& cfg_;
  bool reverse_;
  std::vector<CfgNode*> idom_;
  std::vector<std::vector<CfgNode*>> df_;
  std::vector<int> order_;  // RPO index per node id for intersect()
};

}  // namespace suifx::graph
