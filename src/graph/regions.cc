#include "graph/regions.h"

#include <cassert>

namespace suifx::graph {

const std::vector<ir::Stmt*>& Region::stmts() const {
  switch (kind) {
    case RegionKind::Procedure:
      return proc->body;
    case RegionKind::LoopBody:
      return loop->body;
    case RegionKind::Loop:
      // The Loop region's only content is its LoopBody child; callers that
      // need statements should descend. Returning the body keeps convenience
      // traversals simple.
      return loop->body;
  }
  return proc->body;
}

std::string Region::name() const {
  switch (kind) {
    case RegionKind::Procedure:
      return proc->name;
    case RegionKind::Loop:
      return loop->loop_name();
    case RegionKind::LoopBody:
      return loop->loop_name() + "/body";
  }
  return "?";
}

RegionTree::RegionTree(ir::Program& prog) {
  for (ir::Procedure& p : prog.procedures()) {
    Region* pr = build(&p, nullptr, nullptr, RegionKind::Procedure);
    proc_region_[&p] = pr;
    scan_body(p.body, pr);
  }
  // Innermost-first postorder per procedure.
  for (const auto& r : regions_) {
    if (r->kind != RegionKind::Procedure) continue;
    std::function<void(Region*)> walk = [&](Region* n) {
      for (Region* c : n->children) walk(c);
      postorder_.push_back(n);
    };
    walk(r.get());
  }
}

Region* RegionTree::build(ir::Procedure* p, ir::Stmt* loop, Region* parent,
                          RegionKind k) {
  regions_.push_back(std::make_unique<Region>());
  Region* r = regions_.back().get();
  r->id = static_cast<int>(regions_.size()) - 1;
  r->kind = k;
  r->proc = p;
  r->loop = loop;
  r->parent = parent;
  if (parent != nullptr) parent->children.push_back(r);
  return r;
}

void RegionTree::scan_body(const std::vector<ir::Stmt*>& body, Region* r) {
  for (ir::Stmt* s : body) {
    switch (s->kind) {
      case ir::StmtKind::Do: {
        Region* lr = build(r->proc, s, r, RegionKind::Loop);
        Region* br = build(r->proc, s, lr, RegionKind::LoopBody);
        loop_region_[s] = lr;
        body_region_[s] = br;
        scan_body(s->body, br);
        break;
      }
      case ir::StmtKind::If:
        scan_body(s->then_body, r);
        scan_body(s->else_body, r);
        break;
      default:
        break;
    }
  }
}

}  // namespace suifx::graph
