// The hierarchical region graph of §5.2: every procedure, loop, and loop
// body is a region; edges connect a region to its subregions. SF is fully
// structured, so the graph is a forest per procedure glued into a DAG by the
// call graph.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "ir/ir.h"

namespace suifx::graph {

enum class RegionKind { Procedure, Loop, LoopBody };

struct Region {
  int id = 0;
  RegionKind kind = RegionKind::Procedure;
  ir::Procedure* proc = nullptr;
  ir::Stmt* loop = nullptr;  // the Do statement for Loop and LoopBody regions
  Region* parent = nullptr;  // lexically enclosing region within the procedure
  std::vector<Region*> children;

  /// The statement sequence this region directly governs: the procedure body
  /// for Procedure regions, the loop body for LoopBody regions; a Loop region
  /// has exactly one LoopBody child and no direct statements.
  const std::vector<ir::Stmt*>& stmts() const;

  bool is_loop() const { return kind == RegionKind::Loop; }
  std::string name() const;
};

class RegionTree {
 public:
  explicit RegionTree(ir::Program& prog);

  Region* of_proc(const ir::Procedure* p) const { return proc_region_.at(p); }
  Region* loop_region(const ir::Stmt* loop) const { return loop_region_.at(loop); }
  Region* body_region(const ir::Stmt* loop) const { return body_region_.at(loop); }

  /// All regions, innermost-first within each procedure (the bottom-up order
  /// of Fig 5-2); procedures appear in IR order.
  const std::vector<Region*>& postorder() const { return postorder_; }
  const std::vector<std::unique_ptr<Region>>& all() const { return regions_; }

 private:
  Region* build(ir::Procedure* p, ir::Stmt* loop, Region* parent, RegionKind k);
  void scan_body(const std::vector<ir::Stmt*>& body, Region* r);

  std::vector<std::unique_ptr<Region>> regions_;
  std::map<const ir::Procedure*, Region*> proc_region_;
  std::map<const ir::Stmt*, Region*> loop_region_;
  std::map<const ir::Stmt*, Region*> body_region_;
  std::vector<Region*> postorder_;
};

}  // namespace suifx::graph
