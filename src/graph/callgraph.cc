#include "graph/callgraph.h"

#include <functional>
#include <set>
#include <sstream>

namespace suifx::graph {

CallGraph::CallGraph(ir::Program& prog) : prog_(prog) {
  for (ir::Procedure& p : prog.procedures()) {
    calls_in_[&p] = {};
    callsites_of_[&p] = {};
  }
  for (ir::Procedure& p : prog.procedures()) {
    p.for_each([&](ir::Stmt* s) {
      if (s->kind == ir::StmtKind::Call) {
        calls_in_[&p].push_back(s);
        callsites_of_[s->callee].push_back(s);
      }
    });
  }
  // Post-order DFS from every root gives callees-before-callers.
  std::set<const ir::Procedure*> done;
  std::function<void(ir::Procedure*)> dfs = [&](ir::Procedure* p) {
    if (!done.insert(p).second) return;
    for (ir::Stmt* c : calls_in_[p]) dfs(c->callee);
    bottom_up_.push_back(p);
  };
  for (ir::Procedure& p : prog.procedures()) dfs(&p);

  // Reachability from main.
  std::set<const ir::Procedure*> reach;
  std::function<void(ir::Procedure*)> mark = [&](ir::Procedure* p) {
    if (!reach.insert(p).second) return;
    for (ir::Stmt* c : calls_in_[p]) mark(c->callee);
  };
  if (prog.main() != nullptr) mark(prog.main());
  for (ir::Procedure* p : bottom_up_) {
    if (reach.count(p) > 0) reachable_.push_back(p);
  }
}

const std::vector<ir::Stmt*>& CallGraph::callsites_of(const ir::Procedure* p) const {
  return callsites_of_.at(p);
}

const std::vector<ir::Stmt*>& CallGraph::calls_in(const ir::Procedure* p) const {
  return calls_in_.at(p);
}

bool CallGraph::is_reachable(const ir::Procedure* p) const {
  for (const ir::Procedure* q : reachable_) {
    if (q == p) return true;
  }
  return false;
}

std::string CallGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph callgraph {\n  rankdir=LR;\n";
  for (const ir::Procedure& p : prog_.procedures()) {
    os << "  \"" << p.name << "\"";
    if (&p == prog_.main()) os << " [shape=doubleoctagon]";
    os << ";\n";
  }
  std::set<std::pair<std::string, std::string>> edges;
  for (const auto& [proc, calls] : calls_in_) {
    for (const ir::Stmt* c : calls) {
      edges.insert({proc->name, c->callee->name});
    }
  }
  for (const auto& [from, to] : edges) {
    os << "  \"" << from << "\" -> \"" << to << "\";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace suifx::graph
