#include "graph/cfg.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <set>

namespace suifx::graph {

CfgNode* Cfg::new_node(CfgNodeKind k, ir::Stmt* ctrl) {
  nodes_.push_back(std::make_unique<CfgNode>());
  CfgNode* n = nodes_.back().get();
  n->id = static_cast<int>(nodes_.size()) - 1;
  n->kind = k;
  n->ctrl = ctrl;
  return n;
}

void Cfg::link(CfgNode* from, CfgNode* to) {
  from->succs.push_back(to);
  to->preds.push_back(from);
}

Cfg::Cfg(ir::Procedure& proc) : proc_(proc) {
  entry_ = new_node(CfgNodeKind::Entry);
  exit_ = new_node(CfgNodeKind::Exit);
  CfgNode* last = lower_body(proc.body, entry_);
  link(last, exit_);
}

CfgNode* Cfg::lower_body(const std::vector<ir::Stmt*>& body, CfgNode* cur) {
  auto ensure_plain = [&]() {
    if (cur->kind != CfgNodeKind::Plain || !cur->succs.empty()) {
      CfgNode* n = new_node(CfgNodeKind::Plain);
      link(cur, n);
      cur = n;
    }
    return cur;
  };
  for (ir::Stmt* s : body) {
    switch (s->kind) {
      case ir::StmtKind::Assign:
      case ir::StmtKind::Call:
      case ir::StmtKind::Print:
      case ir::StmtKind::Nop:
        ensure_plain()->stmts.push_back(s);
        break;
      case ir::StmtKind::If: {
        CfgNode* br = new_node(CfgNodeKind::Branch, s);
        link(cur, br);
        CfgNode* join = new_node(CfgNodeKind::Join, s);
        CfgNode* then_entry = new_node(CfgNodeKind::Plain);
        link(br, then_entry);
        CfgNode* then_last = lower_body(s->then_body, then_entry);
        link(then_last, join);
        if (s->else_body.empty()) {
          link(br, join);
        } else {
          CfgNode* else_entry = new_node(CfgNodeKind::Plain);
          link(br, else_entry);
          CfgNode* else_last = lower_body(s->else_body, else_entry);
          link(else_last, join);
        }
        cur = join;
        break;
      }
      case ir::StmtKind::Do: {
        CfgNode* pre = new_node(CfgNodeKind::LoopPre, s);
        link(cur, pre);
        CfgNode* head = new_node(CfgNodeKind::LoopHead, s);
        link(pre, head);
        CfgNode* body_entry = new_node(CfgNodeKind::Plain);
        link(head, body_entry);
        CfgNode* body_last = lower_body(s->body, body_entry);
        CfgNode* latch = new_node(CfgNodeKind::LoopLatch, s);
        link(body_last, latch);
        link(latch, head);
        CfgNode* after = new_node(CfgNodeKind::Plain);
        link(head, after);
        cur = after;
        break;
      }
    }
  }
  return cur;
}

std::vector<CfgNode*> Cfg::rpo() const {
  std::vector<CfgNode*> post;
  std::vector<char> seen(nodes_.size(), 0);
  std::function<void(CfgNode*)> dfs = [&](CfgNode* n) {
    if (seen[static_cast<size_t>(n->id)] != 0) return;
    seen[static_cast<size_t>(n->id)] = 1;
    for (CfgNode* s : n->succs) dfs(s);
    post.push_back(n);
  };
  dfs(entry_);
  std::reverse(post.begin(), post.end());
  return post;
}

// ---------------------------------------------------------------------------
// Dominators
// ---------------------------------------------------------------------------

DomInfo::DomInfo(const Cfg& cfg, bool reverse) : cfg_(cfg), reverse_(reverse) {
  size_t n = cfg.nodes().size();
  idom_.assign(n, nullptr);
  df_.assign(n, {});
  order_.assign(n, -1);

  CfgNode* root = reverse ? cfg.exit() : cfg.entry();
  auto preds_of = [&](CfgNode* x) -> const std::vector<CfgNode*>& {
    return reverse ? x->succs : x->preds;
  };

  // RPO over the (possibly reversed) graph.
  std::vector<CfgNode*> post;
  std::vector<char> seen(n, 0);
  std::function<void(CfgNode*)> dfs = [&](CfgNode* x) {
    if (seen[static_cast<size_t>(x->id)] != 0) return;
    seen[static_cast<size_t>(x->id)] = 1;
    const auto& succs = reverse ? x->preds : x->succs;
    for (CfgNode* s : succs) dfs(s);
    post.push_back(x);
  };
  dfs(root);
  std::vector<CfgNode*> rpo(post.rbegin(), post.rend());
  for (size_t i = 0; i < rpo.size(); ++i) order_[static_cast<size_t>(rpo[i]->id)] = static_cast<int>(i);

  auto intersect = [&](CfgNode* a, CfgNode* b) {
    while (a != b) {
      while (order_[static_cast<size_t>(a->id)] > order_[static_cast<size_t>(b->id)]) {
        a = idom_[static_cast<size_t>(a->id)];
      }
      while (order_[static_cast<size_t>(b->id)] > order_[static_cast<size_t>(a->id)]) {
        b = idom_[static_cast<size_t>(b->id)];
      }
    }
    return a;
  };

  idom_[static_cast<size_t>(root->id)] = root;
  bool changed = true;
  while (changed) {
    changed = false;
    for (CfgNode* x : rpo) {
      if (x == root) continue;
      CfgNode* new_idom = nullptr;
      for (CfgNode* p : preds_of(x)) {
        if (order_[static_cast<size_t>(p->id)] < 0) continue;  // unreachable
        if (idom_[static_cast<size_t>(p->id)] == nullptr) continue;
        new_idom = new_idom == nullptr ? p : intersect(p, new_idom);
      }
      if (new_idom != nullptr && idom_[static_cast<size_t>(x->id)] != new_idom) {
        idom_[static_cast<size_t>(x->id)] = new_idom;
        changed = true;
      }
    }
  }
  idom_[static_cast<size_t>(root->id)] = nullptr;  // root has no idom

  // Dominance frontiers (Cytron et al.).
  for (CfgNode* x : rpo) {
    const auto& ps = preds_of(x);
    if (ps.size() < 2) continue;
    for (CfgNode* p : ps) {
      if (order_[static_cast<size_t>(p->id)] < 0) continue;
      CfgNode* runner = p;
      while (runner != nullptr && runner != idom_[static_cast<size_t>(x->id)]) {
        auto& f = df_[static_cast<size_t>(runner->id)];
        if (std::find(f.begin(), f.end(), x) == f.end()) f.push_back(x);
        runner = idom_[static_cast<size_t>(runner->id)];
      }
    }
  }
}

bool DomInfo::dominates(const CfgNode* a, const CfgNode* b) const {
  const CfgNode* x = b;
  while (x != nullptr) {
    if (x == a) return true;
    x = idom_[static_cast<size_t>(x->id)];
  }
  return false;
}

std::vector<CfgNode*> DomInfo::iterated_frontier(const std::vector<CfgNode*>& defs) const {
  std::set<CfgNode*> result;
  std::vector<CfgNode*> work = defs;
  std::set<CfgNode*> in_work(defs.begin(), defs.end());
  while (!work.empty()) {
    CfgNode* x = work.back();
    work.pop_back();
    for (CfgNode* y : df_[static_cast<size_t>(x->id)]) {
      if (result.insert(y).second) {
        if (in_work.insert(y).second) work.push_back(y);
      }
    }
  }
  return {result.begin(), result.end()};
}

}  // namespace suifx::graph
