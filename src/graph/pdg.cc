#include "graph/pdg.h"

#include <algorithm>

namespace suifx::graph {

const char* to_string(PdgEdgeKind k) {
  switch (k) {
    case PdgEdgeKind::Control: return "control";
    case PdgEdgeKind::Flow: return "flow";
    case PdgEdgeKind::Anti: return "anti";
    case PdgEdgeKind::Output: return "output";
  }
  return "?";
}

int Pdg::add_node(const ir::Stmt* s) {
  auto [it, inserted] = index_.emplace(s, static_cast<int>(nodes_.size()));
  if (inserted) nodes_.push_back(s);
  return it->second;
}

int Pdg::node_of(const ir::Stmt* s) const {
  auto it = index_.find(s);
  return it == index_.end() ? -1 : it->second;
}

void Pdg::add_edge(int src, int dst, PdgEdgeKind kind, bool carried) {
  edges_.push_back({src, dst, kind, carried});
}

Pdg::Condensation Pdg::condense() const {
  const int n = num_nodes();
  Pdg::Condensation out;
  out.scc_of.assign(static_cast<size_t>(n), -1);
  if (n == 0) return out;

  // Sorted, deduplicated adjacency — the traversal order (and therefore the
  // SCC numbering) is a pure function of the node/edge lists.
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  for (const PdgEdge& e : edges_) adj[static_cast<size_t>(e.src)].push_back(e.dst);
  for (std::vector<int>& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  // Iterative Tarjan. SCCs are emitted in reverse topological order; the
  // final reversal makes lower SCC indices come first in program order.
  std::vector<int> idx(static_cast<size_t>(n), -1);
  std::vector<int> low(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<int> stack;
  std::vector<std::vector<int>> emitted;
  int next_idx = 0;

  struct Frame {
    int v;
    size_t child;
  };
  std::vector<Frame> frames;
  for (int root = 0; root < n; ++root) {
    if (idx[static_cast<size_t>(root)] != -1) continue;
    frames.push_back({root, 0});
    idx[static_cast<size_t>(root)] = low[static_cast<size_t>(root)] = next_idx++;
    stack.push_back(root);
    on_stack[static_cast<size_t>(root)] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const std::vector<int>& succ = adj[static_cast<size_t>(f.v)];
      if (f.child < succ.size()) {
        int w = succ[f.child++];
        if (idx[static_cast<size_t>(w)] == -1) {
          idx[static_cast<size_t>(w)] = low[static_cast<size_t>(w)] = next_idx++;
          stack.push_back(w);
          on_stack[static_cast<size_t>(w)] = true;
          frames.push_back({w, 0});
        } else if (on_stack[static_cast<size_t>(w)]) {
          low[static_cast<size_t>(f.v)] =
              std::min(low[static_cast<size_t>(f.v)], idx[static_cast<size_t>(w)]);
        }
        continue;
      }
      int v = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        int p = frames.back().v;
        low[static_cast<size_t>(p)] =
            std::min(low[static_cast<size_t>(p)], low[static_cast<size_t>(v)]);
      }
      if (low[static_cast<size_t>(v)] == idx[static_cast<size_t>(v)]) {
        std::vector<int> comp;
        while (true) {
          int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<size_t>(w)] = false;
          comp.push_back(w);
          if (w == v) break;
        }
        std::sort(comp.begin(), comp.end());
        emitted.push_back(std::move(comp));
      }
    }
  }

  std::reverse(emitted.begin(), emitted.end());
  out.sccs.resize(emitted.size());
  for (size_t i = 0; i < emitted.size(); ++i) {
    out.sccs[i].nodes = std::move(emitted[i]);
    for (int v : out.sccs[i].nodes) {
      out.scc_of[static_cast<size_t>(v)] = static_cast<int>(i);
    }
  }

  for (const PdgEdge& e : edges_) {
    int s = out.scc_of[static_cast<size_t>(e.src)];
    int d = out.scc_of[static_cast<size_t>(e.dst)];
    if (s == d) {
      out.sccs[static_cast<size_t>(s)].cross_iteration |= e.carried;
    } else {
      out.edges.emplace_back(s, d);
    }
  }
  std::sort(out.edges.begin(), out.edges.end());
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end()),
                  out.edges.end());

  out.level.assign(out.sccs.size(), 0);
  for (const auto& [s, d] : out.edges) {
    // Topological numbering guarantees s < d, so one pass settles levels.
    out.level[static_cast<size_t>(d)] =
        std::max(out.level[static_cast<size_t>(d)],
                 out.level[static_cast<size_t>(s)] + 1);
  }
  for (int lv : out.level) out.num_levels = std::max(out.num_levels, lv + 1);
  return out;
}

}  // namespace suifx::graph
