// Per-loop program dependence graph (PDG) with SCC condensation — the
// substrate for strategy planning beyond the DOALL/serial binary (ROADMAP:
// PDG-based planning; CPF's liberty/lib/PDG is the shape exemplar).
//
// Nodes are the statements of one loop body. Edges are typed:
//
//   Control — a structured control region (If/Do) and each statement it
//             guards, in BOTH directions, so a region and its members always
//             condense into one SCC and a stage never splits a guard from
//             its guarded statements.
//   Flow / Anti / Output — data dependences between top-level body
//             statements, from the array-dataflow section summaries. Each
//             data edge is either loop-independent (same iteration, source
//             textually first) or `carried` (crosses iterations in the
//             forward direction: source at iteration i, sink at i' > i).
//
// The condensation collapses SCCs, numbers them topologically (a pure
// function of node indices and edge lists — byte-deterministic across runs
// and worker counts), and assigns each SCC a pipeline level: level 0 has no
// condensation predecessors, level k+1 depends only on levels <= k. The
// levels are the DSWP stage partition the StrategyPlanner consumes; an SCC
// whose internal edges include a carried one is `cross_iteration` and makes
// its stage sequential.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "ir/ir.h"

namespace suifx::graph {

enum class PdgEdgeKind : uint8_t { Control, Flow, Anti, Output };

const char* to_string(PdgEdgeKind k);

struct PdgEdge {
  int src = 0;
  int dst = 0;
  PdgEdgeKind kind = PdgEdgeKind::Flow;
  /// True when the dependence crosses iterations (source at iteration i,
  /// sink at some later iteration). Loop-independent edges are false.
  bool carried = false;
};

class Pdg {
 public:
  /// Insert a statement node; returns its dense index. Idempotent — a
  /// statement already present keeps its first index, so insertion order
  /// (the builder uses source pre-order) defines the canonical numbering.
  int add_node(const ir::Stmt* s);
  /// Index of `s`, or -1 when it is not a node.
  int node_of(const ir::Stmt* s) const;
  void add_edge(int src, int dst, PdgEdgeKind kind, bool carried);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const ir::Stmt* stmt(int idx) const { return nodes_[static_cast<size_t>(idx)]; }
  const std::vector<PdgEdge>& edges() const { return edges_; }

  struct Scc {
    std::vector<int> nodes;        // ascending node indices
    bool cross_iteration = false;  // an internal edge is carried
  };
  struct Condensation {
    /// SCCs in topological order: every condensation edge goes from a
    /// lower-numbered SCC to a higher-numbered one.
    std::vector<Scc> sccs;
    std::vector<int> scc_of;  // node index -> scc index
    /// Deduplicated inter-SCC edges (src < dst scc indices), sorted.
    std::vector<std::pair<int, int>> edges;
    /// Pipeline level per SCC: 0 = no predecessors, else 1 + max over
    /// predecessor levels. Equal-level SCCs are mutually independent.
    std::vector<int> level;
    int num_levels = 0;
  };
  /// Deterministic: identical node/edge insertion sequences condense to
  /// byte-identical results (Tarjan over index-ordered roots and sorted
  /// adjacency, emission order reversed into topological numbering).
  Condensation condense() const;

 private:
  std::vector<const ir::Stmt*> nodes_;
  std::map<const ir::Stmt*, int> index_;
  std::vector<PdgEdge> edges_;
};

}  // namespace suifx::graph
