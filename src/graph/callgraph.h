// Whole-program call graph with the traversal orders the region-based
// interprocedural analyses need (bottom-up for summaries, top-down for
// context propagation). SF forbids recursion (verified), so both orders are
// plain topological sorts.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace suifx::graph {

class CallGraph {
 public:
  explicit CallGraph(ir::Program& prog);

  /// Callees before callers (leaf procedures first).
  const std::vector<ir::Procedure*>& bottom_up() const { return bottom_up_; }
  /// Callers before callees (main first).
  std::vector<ir::Procedure*> top_down() const {
    return {bottom_up_.rbegin(), bottom_up_.rend()};
  }

  /// All call statements whose callee is `p`.
  const std::vector<ir::Stmt*>& callsites_of(const ir::Procedure* p) const;
  /// All call statements appearing inside `p`.
  const std::vector<ir::Stmt*>& calls_in(const ir::Procedure* p) const;

  /// Procedures reachable from main (including main).
  const std::vector<ir::Procedure*>& reachable() const { return reachable_; }
  bool is_reachable(const ir::Procedure* p) const;

  /// Graphviz rendering (the hyperbolic-browser substitute, §2.7).
  std::string to_dot() const;

 private:
  ir::Program& prog_;
  std::vector<ir::Procedure*> bottom_up_;
  std::vector<ir::Procedure*> reachable_;
  std::map<const ir::Procedure*, std::vector<ir::Stmt*>> callsites_of_;
  std::map<const ir::Procedure*, std::vector<ir::Stmt*>> calls_in_;
};

}  // namespace suifx::graph
