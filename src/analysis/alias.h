// Storage canonicalization and alias classes for SF, the Fortran-flavored
// adaptation of §3.4.1/§3.4.2: aliasing arises only from COMMON-block
// overlays (parameter passing is modeled copy-in/copy-out per the Fortran
// standard, exactly as the thesis does). Overlay members that view the same
// block at the same offset with the same footprint unify into one class with
// a canonical representative (strong updates stay strong); members with
// partially-overlapping footprints collapse the whole block into a single
// conservative "blob" class (every access is a weak whole-blob access) — the
// Steensgaard-style coarsening.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "ir/ir.h"

namespace suifx::analysis {

/// Tier-1 refinement of the Steensgaard classes (produced by the
/// inclusion-based Andersen oracle, analysis/andersen.h): blob-block members
/// whose storage has been proven untouchable by any other view of the block.
/// Such members get back a precise class of their own; the rest of the block
/// stays collapsed.
struct AliasRefinement {
  std::set<const ir::Variable*> precise;

  bool empty() const { return precise.empty(); }
};

class AliasAnalysis {
 public:
  /// `unify_overlays=false` keeps same-offset overlay members distinct — the
  /// hypothesis mode used by the common-block splitting check (§5.5), which
  /// asks "if these views had separate storage, would the program notice?".
  explicit AliasAnalysis(const ir::Program& prog, bool unify_overlays = true);

  /// Tier-1 construction: Steensgaard classes with `refine.precise` members
  /// carved back out of their blob blocks (docs/dataflow.md).
  AliasAnalysis(const ir::Program& prog, const AliasRefinement& refine,
                bool unify_overlays = true);

  /// The canonical representative of `v`'s storage class. Identity for
  /// non-common variables.
  const ir::Variable* canonical(const ir::Variable* v) const;

  /// May the two variables denote overlapping storage?
  bool may_alias(const ir::Variable* a, const ir::Variable* b) const;

  /// True when `v` belongs to a conservative whole-block class (distinct
  /// overlay shapes at overlapping offsets): element-precise reasoning about
  /// it is disabled.
  bool is_blob(const ir::Variable* v) const;

  /// All variables whose canonical representative is `canon`.
  std::vector<const ir::Variable*> class_members(const ir::Variable* canon) const;

  /// Every storage class at once: canonical representative -> members. One
  /// program scan, for callers that would otherwise call class_members() per
  /// variable (each call is itself a full scan).
  std::map<const ir::Variable*, std::vector<const ir::Variable*>> all_classes()
      const;

 private:
  void build(bool unify_overlays, const AliasRefinement* refine);
  long footprint_elems(const ir::Variable* v) const;

  const ir::Program& prog_;
  std::map<const ir::Variable*, const ir::Variable*> canon_;
  std::map<const ir::Variable*, bool> blob_;
};

}  // namespace suifx::analysis
