#include "analysis/memadvisor.h"

namespace suifx::analysis {

const char* to_string(MemAdviceKind k) {
  switch (k) {
    case MemAdviceKind::ArrayTranspose: return "array-transpose";
    case MemAdviceKind::LoopInterchange: return "loop-interchange";
  }
  return "?";
}

namespace {

/// Dimensions of `v` whose write subscripts are tied to `isym` within the
/// loop-body summary.
std::set<int> tied_dims(const VarAccess& va, const ir::Variable* v,
                        poly::SymId isym, bool include_reads = false) {
  std::set<int> out;
  poly::SectionList writes = va.sec.M;
  writes.unite(va.sec.W);
  if (include_reads) writes.unite(va.sec.R);
  for (const poly::LinSystem& sys : writes.systems()) {
    for (const poly::Constraint& c : sys.constraints()) {
      if (!c.is_eq || !c.expr.involves(isym)) continue;
      for (int k = 0; k < v->rank(); ++k) {
        if (c.expr.involves(poly::dim_sym(k))) out.insert(k);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<MemAdvice> advise_memory_opts(
    const ir::Program& prog, const ArrayDataflow& df,
    const std::vector<const ir::Stmt*>& parallel_loops) {
  (void)prog;
  std::vector<MemAdvice> out;

  // 1. Conflicting decompositions -> transpose advice.
  std::map<const ir::Variable*, std::map<int, std::vector<const ir::Stmt*>>> dist;
  for (const ir::Stmt* loop : parallel_loops) {
    poly::SymId isym = df.loop_index_sym(loop);
    for (const auto& [v, va] : df.body_info(loop).vars) {
      if (!v->is_array()) continue;
      for (int k : tied_dims(va, v, isym)) dist[v][k].push_back(loop);
    }
  }
  for (const auto& [v, by_dim] : dist) {
    if (by_dim.size() < 2) continue;
    MemAdvice a;
    a.kind = MemAdviceKind::ArrayTranspose;
    a.array = v;
    for (const auto& [dim, loops] : by_dim) {
      for (const ir::Stmt* l : loops) a.conflict_loops.push_back(l);
    }
    a.rationale = "parallel loops distribute '" + v->name +
                  "' along different dimensions; transposing one live range "
                  "removes the data reshuffle (Fig 4-6)";
    out.push_back(std::move(a));
  }

  // 2. Mis-strided inner loops -> interchange advice. Column-major layout:
  // the innermost loop should walk dimension 0.
  prog.for_each_stmt([&](const ir::Stmt* s) {
    if (s->kind != ir::StmtKind::Do) return;
    // Innermost: no nested Do.
    bool innermost = true;
    ir::for_each_nested(s, [&](const ir::Stmt* n) {
      if (n->kind == ir::StmtKind::Do) innermost = false;
    });
    if (!innermost || s->enclosing_loop() == nullptr) return;
    poly::SymId isym = df.loop_index_sym(s);
    const AccessInfo& body = df.body_info(s);
    int strided = 0, contiguous = 0;
    for (const auto& [v, va] : body.vars) {
      if (!v->is_array() || v->rank() < 2) continue;
      std::set<int> dims = tied_dims(va, v, isym, /*include_reads=*/true);
      for (int k : dims) (k == 0 ? contiguous : strided)++;
    }
    if (strided > 0 && contiguous == 0) {
      MemAdvice a;
      a.kind = MemAdviceKind::LoopInterchange;
      a.loop = s;
      a.rationale = "innermost loop " + s->loop_name() +
                    " strides along a non-contiguous array dimension; "
                    "interchange with its parent improves spatial locality";
      out.push_back(std::move(a));
    }
  });
  return out;
}

}  // namespace suifx::analysis
