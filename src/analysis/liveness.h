// Interprocedural array liveness analysis (Chapter 5): the top-down phase
// of Fig 5-3 over the bottom-up summaries of Fig 5-2, in three precision
// variants (§5.2.3):
//   Full            — context- and flow-sensitive, array sections, kills.
//   OneBit          — one exposed-bit per variable for loop/call summaries
//                     in the top-down phase; no kill operator.
//   FlowInsensitive — a variable is live after a region if it is live after
//                     the parent or exposed in any sibling (incl. itself).
//
// Primary query: the array sections (or bit) of a variable live at the end
// of a region, and L_r = E ∩ (W ∪ M) — sections written in the region that
// are live afterwards (empty => the variable is dead at region exit, the
// metric of Fig 5-7 and the enabler of privatization finalization, common
// block splitting, and array contraction).
#pragma once

#include "analysis/array_dataflow.h"

namespace suifx::analysis {

enum class LivenessMode { Full, OneBit, FlowInsensitive };

const char* to_string(LivenessMode m);

class ArrayLiveness {
 public:
  ArrayLiveness(const ir::Program& prog, const ArrayDataflow& df,
                const graph::CallGraph& cg, const graph::RegionTree& regions,
                const AliasAnalysis& alias, LivenessMode mode);

  LivenessMode mode() const { return mode_; }

  /// May `v`'s value be used after the end of region `r`? (Full mode also
  /// answers per-section via live_sections_after.)
  bool live_after(const graph::Region* r, const ir::Variable* v) const;

  /// Full mode: the exposed-use sections after the end of `r`.
  poly::SectionList live_sections_after(const graph::Region* r,
                                        const ir::Variable* v) const;

  /// L_r of Fig 5-3: sections of `v` written inside `r` that are live after
  /// `r`. Empty iff `v` is dead at `r`'s exit with respect to its writes.
  poly::SectionList written_live_after(const graph::Region* r,
                                       const ir::Variable* v) const;

  /// Fig 5-7 metric: `v` modified in `r` but none of the written data is
  /// used afterwards.
  bool dead_at_exit(const graph::Region* r, const ir::Variable* v) const;

  /// Variables modified within region `r` (from the bottom-up summaries).
  std::vector<const ir::Variable*> modified_vars(const graph::Region* r) const;

 private:
  /// Per-procedure fact bundle while the mono solver runs (docs/dataflow.md):
  /// a transfer writes only its own procedure's bundle and reads the sealed
  /// bundles of callers (top-down flow), so independent procedures walk
  /// concurrently. Merged into the query maps after the solve.
  struct ProcFacts {
    std::map<const graph::Region*, AccessInfo> after;
    std::map<const ir::Stmt*, AccessInfo> after_call;
    std::map<const graph::Region*, std::set<const ir::Variable*>> after_bits;
    std::map<const ir::Stmt*, std::set<const ir::Variable*>> after_call_bits;
  };

  void transfer_full(const ir::Procedure* p, ProcFacts& f);
  void transfer_onebit(const ir::Procedure* p, ProcFacts& f);
  void transfer_flow_insensitive(const ir::Procedure* p, ProcFacts& f);

  // Full mode: S_{r0,r} per region / per call node, as an AccessInfo.
  void walk_body_full(const std::vector<ir::Stmt*>& body, const AccessInfo& cont,
                      const graph::Region* region, ProcFacts& f);
  AccessInfo map_to_callee(const ir::Stmt* call, const AccessInfo& after) const;

  // Bit modes: live variable sets per region.
  void walk_body_bits(const std::vector<ir::Stmt*>& body,
                      std::set<const ir::Variable*> after,
                      const graph::Region* region, ProcFacts& f);
  std::set<const ir::Variable*> exposed_vars(const AccessInfo& info) const;
  std::set<const ir::Variable*> sibling_exposure(const graph::Region* r) const;
  std::set<const ir::Variable*> map_vars_to_callee(
      const ir::Stmt* call, const std::set<const ir::Variable*>& vars) const;

  const ir::Program& prog_;
  const ArrayDataflow& df_;
  const graph::CallGraph& cg_;
  const graph::RegionTree& regions_;
  const AliasAnalysis& alias_;
  LivenessMode mode_;

  // Full: exposed-after summary per region.
  std::map<const graph::Region*, AccessInfo> after_;
  std::map<const ir::Stmt*, AccessInfo> after_call_;
  // Bit modes: live-after variable sets.
  std::map<const graph::Region*, std::set<const ir::Variable*>> after_bits_;
  std::map<const ir::Stmt*, std::set<const ir::Variable*>> after_call_bits_;

  // Solve-time state (empty once construction finishes).
  std::vector<ProcFacts> solve_facts_;
  std::map<const ir::Procedure*, int> node_of_;
};

}  // namespace suifx::analysis
