// Interprocedural-aware symbolic analysis on scalar integer variables
// (§2.4): constant propagation, affine relations between scalars, and
// loop-index tracking, expressed as affine values over per-generation
// symbolic columns. A variable whose definition cannot be modeled affinely
// (array load, conditional merge, call side effect) is "opaque": it resolves
// to a fresh generation symbol, so equalities are never fabricated.
//
// Generation discipline is what makes cross-iteration reasoning sound:
// scalars modified inside a loop body get fresh generations at loop entry,
// so no pre-loop value leaks into the body, and the dependence analysis can
// identify exactly which symbols need primed second-iteration copies.
#pragma once

#include <map>
#include <set>

#include "analysis/alias.h"
#include "analysis/modref.h"
#include "graph/callgraph.h"
#include "polyhedra/affine.h"

namespace suifx::analysis {

class Symbolic {
 public:
  Symbolic(const ir::Program& prog, const AliasAnalysis& alias, const ModRef& modref,
           const graph::CallGraph& cg);

  /// Affine value of integer scalar `v` immediately before `s` executes
  /// (over generation symbols and SymParams). Opaque values resolve to their
  /// current generation symbol.
  poly::LinearExpr value_before(const ir::Stmt* s, const ir::Variable* v) const;

  /// Resolver for subscript conversion at statement `s`.
  poly::ScalarResolver resolver_at(const ir::Stmt* s) const;

  /// Resolver for expressions evaluated once at entry of `loop` (its bounds).
  poly::ScalarResolver resolver_at_loop_entry(const ir::Stmt* loop) const;

  /// Variables (including the index) whose value may differ from iteration
  /// to iteration of `loop` — every generation symbol of such a variable
  /// needs a primed copy in a two-iteration dependence system.
  const std::set<const ir::Variable*>& modified_in(const ir::Stmt* loop) const;
  bool is_variant_sym(const ir::Stmt* loop, poly::SymId sym) const;

  /// Convenience: constant value of `v` before `s`, when known.
  std::optional<long> constant_before(const ir::Stmt* s, const ir::Variable* v) const;

 private:
  struct Env {
    std::map<const ir::Variable*, poly::LinearExpr> known;  // affine values
    std::map<const ir::Variable*, int> gen;                 // current generation
  };

  int fresh_gen(const ir::Variable* v);
  poly::LinearExpr env_value(const Env& env, const ir::Variable* v) const;
  poly::ScalarResolver env_resolver(const Env& env) const;
  void bump(Env* env, const ir::Variable* v);
  void bump_aliases(Env* env, const ir::Variable* canon);
  void walk_body(const std::vector<ir::Stmt*>& body, Env* env);
  void collect_modified(const ir::Stmt* loop);

  const ir::Program& prog_;
  const AliasAnalysis& alias_;
  const ModRef& modref_;
  std::map<const ir::Stmt*, Env> env_at_;          // before each statement
  std::map<const ir::Stmt*, Env> env_loop_entry_;  // bounds-evaluation env
  std::map<const ir::Stmt*, std::set<const ir::Variable*>> modified_in_;
  std::map<const ir::Variable*, int> next_gen_;
  std::set<const ir::Variable*> overflowed_;  // generation-saturated: non-affine
};

}  // namespace suifx::analysis
