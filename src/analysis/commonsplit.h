// Common-block live-range splitting (§5.5): two overlay variables of the
// same COMMON block (same offset and footprint) may be given independent
// storage/layout when their live ranges never overlap — detectable only
// with kill-capable liveness. The analysis re-runs the array data-flow with
// overlay unification disabled (each member keeps its identity) and checks
// that no region exit has both members live.
#pragma once

#include "analysis/liveness.h"

namespace suifx::analysis {

struct CommonSplit {
  const ir::CommonBlock* block = nullptr;
  const ir::Variable* a = nullptr;
  const ir::Variable* b = nullptr;
  bool splittable = false;
  /// First region where both were found live (diagnostics; null if none).
  const graph::Region* conflict = nullptr;
};

/// Evaluate every same-offset overlay pair of every common block under the
/// given liveness precision. Infrastructure objects are rebuilt internally
/// in "no-unification" mode, so pass the plain program.
std::vector<CommonSplit> find_common_splits(ir::Program& prog, LivenessMode mode);

}  // namespace suifx::analysis
