// Bottom-up interprocedural array data-flow analysis (Fig 5-2, §6.2.2.2):
// for every region (loop body, loop, procedure) and every variable, the
// four-tuple <R, E, W, M> of may-read / exposed-read / may-write /
// must-write sections, plus the reduction regions of §6.2 (commutative
// updates per operator) recognized inline with the data-flow computation as
// the thesis describes ("a simple extension of array data-flow analysis").
//
// Scalars are rank-0 arrays: their sections are parameter-free systems, so
// the entire algebra (meet, compose, kill) is shared with arrays.
//
// Loop summaries are closed with the closure operator (project the loop
// index and all iteration-variant symbols; §5.2.2.1), including the
// §5.2.2.3 sharpening of upwards-exposed reads for call-free recurrences.
// Procedure summaries are localized to formal-entry symbols + SymParams and
// mapped through call sites with array reshaping/offset translation.
#pragma once

#include <map>
#include <set>

#include "analysis/modref.h"
#include "analysis/symbolic.h"
#include "graph/regions.h"
#include "polyhedra/section.h"

namespace suifx::analysis {

/// Access information for one variable within a region.
struct VarAccess {
  poly::ArraySummary sec;                         // non-reduction accesses
  std::map<ir::BinOp, poly::SectionList> red;     // reduction regions per op

  bool any() const { return !sec.all_empty() || !red.empty(); }
};

/// Per-region access summary over canonical variables.
struct AccessInfo {
  std::map<const ir::Variable*, VarAccess> vars;

  VarAccess& at(const ir::Variable* v) { return vars[v]; }
  const VarAccess* find(const ir::Variable* v) const;

  static AccessInfo meet(const AccessInfo& a, const AccessInfo& b);
  /// `node` executes before `after`.
  static AccessInfo compose(const AccessInfo& node, const AccessInfo& after);
};

class ArrayDataflow {
 public:
  ArrayDataflow(const ir::Program& prog, const AliasAnalysis& alias,
                const ModRef& modref, const graph::CallGraph& cg,
                const graph::RegionTree& regions, const Symbolic& symbolic);

  /// Closed summary of a region (loop summaries after closure; procedure
  /// summaries before localization — local arrays included).
  const AccessInfo& region_info(const graph::Region* r) const;

  /// Loop-body summary with this loop's iteration symbols still live —
  /// the input to dependence/privatization/reduction testing.
  const AccessInfo& body_info(const ir::Stmt* loop) const;

  /// Procedure summary localized for call-site mapping.
  const AccessInfo& call_summary(const ir::Procedure* p) const;

  /// Summary of one statement as a node in its enclosing region (loops
  /// closed, calls mapped) — the transfer functions the top-down liveness
  /// phase (Fig 5-3) re-composes.
  const AccessInfo& node_info(const ir::Stmt* s) const;

  /// The symbolic column standing for `loop`'s iteration number.
  poly::SymId loop_index_sym(const ir::Stmt* loop) const;

  /// The callee summary of `call` translated into the caller's space.
  AccessInfo map_call(const ir::Stmt* call) const;

  /// Affine bound constraints (lb <= isym <= ub) for `loop`, empty when the
  /// bounds are not affine at loop entry.
  poly::LinSystem loop_bounds(const ir::Stmt* loop) const;

  /// Does the loop (or any nested statement, including callees) perform I/O?
  bool loop_has_io(const ir::Stmt* loop) const;
  bool loop_has_call(const ir::Stmt* loop) const;

  const Symbolic& symbolic() const { return symbolic_; }
  const AliasAnalysis& alias() const { return alias_; }
  /// The inputs this analysis was built from — the alias-tier escalator
  /// (parallelizer/alias_tier.h) rebuilds a refined stack from them.
  const ir::Program& program() const { return prog_; }
  const ModRef& modref() const { return modref_; }
  const graph::CallGraph& callgraph() const { return cg_; }
  const graph::RegionTree& regions() const { return regions_; }

 private:
  /// Per-procedure fact bundle while the mono solver runs (docs/dataflow.md):
  /// a transfer writes only its own procedure's bundle and reads the sealed
  /// bundles of callees, so independent procedures summarize concurrently.
  /// Merged into the query maps after the solve.
  struct ProcFacts {
    std::map<const graph::Region*, AccessInfo> region_info;
    std::map<const ir::Stmt*, AccessInfo> body_info;
    std::map<const ir::Stmt*, AccessInfo> node_info;
    AccessInfo call_summary;
    bool io = false;
  };

  AccessInfo summarize_body(const std::vector<ir::Stmt*>& body, ProcFacts& f);
  AccessInfo summarize_stmt(const ir::Stmt* s, ProcFacts& f);
  AccessInfo summarize_stmt_impl(const ir::Stmt* s, ProcFacts& f);
  AccessInfo close_loop(const ir::Stmt* loop, AccessInfo body);
  /// The callee's localized summary: the sealed solve-time bundle while the
  /// solver runs, the merged map afterwards.
  const AccessInfo& callee_summary(const ir::Procedure* p) const;
  AccessInfo localize(const ir::Procedure* p, const AccessInfo& info) const;
  void record_read(AccessInfo* out, const ir::Expr* ref, const ir::Stmt* s);
  void record_write(AccessInfo* out, const ir::Expr* ref, const ir::Stmt* s,
                    bool must);
  /// Try to match a commutative update at `s`; fills `out` and returns true.
  bool match_reduction_assign(const ir::Stmt* s, AccessInfo* out);
  bool match_reduction_minmax_if(const ir::Stmt* s, AccessInfo* out);
  bool proc_has_io(const ir::Procedure* p) const;

  const ir::Program& prog_;
  const AliasAnalysis& alias_;
  const ModRef& modref_;
  const graph::CallGraph& cg_;
  const graph::RegionTree& regions_;
  const Symbolic& symbolic_;

  std::map<const graph::Region*, AccessInfo> region_info_;
  std::map<const ir::Stmt*, AccessInfo> body_info_;
  std::map<const ir::Stmt*, AccessInfo> node_info_;
  std::map<const ir::Procedure*, AccessInfo> call_summary_;
  std::map<const ir::Procedure*, bool> proc_io_;

  // Solve-time state (empty once construction finishes).
  std::vector<ProcFacts> solve_facts_;
  std::map<const ir::Procedure*, int> node_of_;
  bool solving_ = false;
};

/// Structural expression equality (same shape, same variables/constants).
bool expr_equal(const ir::Expr* a, const ir::Expr* b);

}  // namespace suifx::analysis
