// Memory-performance advisor — the thesis's §7.5.1 future-work direction,
// covering the optimizations its authors applied by hand in §4.2.4/§4.5:
//  * array transposes, recommended when parallel loops distribute the same
//    array along different dimensions (the hydro duac conflict of Fig 4-6);
//  * loop interchanges, recommended when an innermost loop strides along a
//    non-contiguous (non-first, column-major) array dimension.
// The advice feeds the SMP simulator: applying a transpose removes the
// reshuffle penalty; applying an interchange removes the strided-access
// slowdown.
#pragma once

#include "analysis/array_dataflow.h"
#include "parallelizer/parallelizer.h"

namespace suifx::analysis {

enum class MemAdviceKind : uint8_t { ArrayTranspose, LoopInterchange };

struct MemAdvice {
  MemAdviceKind kind = MemAdviceKind::ArrayTranspose;
  const ir::Variable* array = nullptr;  // ArrayTranspose
  const ir::Stmt* loop = nullptr;       // LoopInterchange: the mis-strided nest
  std::vector<const ir::Stmt*> conflict_loops;  // loops with clashing layouts
  std::string rationale;
};

/// Analyze the chosen parallel loops for layout conflicts and mis-strided
/// inner loops.
std::vector<MemAdvice> advise_memory_opts(
    const ir::Program& prog, const ArrayDataflow& df,
    const std::vector<const ir::Stmt*>& parallel_loops);

const char* to_string(MemAdviceKind k);

}  // namespace suifx::analysis
