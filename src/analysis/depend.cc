#include "analysis/depend.h"

#include <algorithm>

#include "ir/printer.h"
#include "polyhedra/polycache.h"
#include "support/budget.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/provenance.h"
#include "support/trace.h"

namespace suifx::analysis {

namespace prov = support::provenance;

using poly::LinearExpr;
using poly::LinSystem;
using poly::SectionList;
using poly::SymId;

namespace {

// ---------------------------------------------------------------------------
// Canonical rendering for provenance records.
//
// Provenance records must be byte-identical between a cold rebuild and an
// incremental rebuild of a clean procedure, but SymIds embed variable ids and
// generation numbers, both of which are renumbered when unrelated procedures
// change. So: symbols render as source names with the generation dropped
// (primes kept — they mark the second-iteration copy), and terms, constraints,
// and systems are each sorted lexicographically by rendered text rather than
// by id.
// ---------------------------------------------------------------------------

std::string canon_sym(SymId s, const ir::Program* prog) {
  if (poly::is_dim_sym(s)) return "d" + std::to_string(static_cast<int>(s));
  int vid = poly::sym_var_id(s);
  std::string base = "v" + std::to_string(vid);
  if (prog != nullptr && vid < prog->num_vars()) {
    base = prog->variables()[static_cast<size_t>(vid)].name;
  }
  return poly::is_primed_sym(s) ? base + "'" : base;
}

std::string canon_expr(const LinearExpr& e, const ir::Program* prog) {
  std::vector<std::string> terms;
  terms.reserve(e.terms.size());
  for (const auto& [s, k] : e.terms) {
    std::string t = k < 0 ? "-" : "+";
    long a = k < 0 ? -k : k;
    if (a != 1) {
      t += std::to_string(a);
      t += "*";
    }
    t += canon_sym(s, prog);
    terms.push_back(std::move(t));
  }
  std::sort(terms.begin(), terms.end());
  std::string out;
  for (const std::string& t : terms) out += t;
  if (e.c != 0 || out.empty()) {
    out += e.c >= 0 ? "+" : "-";
    out += std::to_string(e.c < 0 ? -e.c : e.c);
  }
  return out;
}

std::string canon_system(const LinSystem& sys, const ir::Program* prog) {
  std::vector<std::string> cons;
  cons.reserve(sys.constraints().size());
  for (const poly::Constraint& c : sys.constraints()) {
    cons.push_back(canon_expr(c.expr, prog) + (c.is_eq ? "==0" : ">=0"));
  }
  std::sort(cons.begin(), cons.end());
  std::string out = "{";
  for (size_t i = 0; i < cons.size(); ++i) {
    if (i != 0) out += " && ";
    out += cons[i];
  }
  if (cons.empty()) out += "true";
  out += "}";
  return out;
}

std::string canon_sections(const SectionList& list, const ir::Program* prog) {
  if (list.empty()) return "{}";
  std::vector<std::string> sys;
  sys.reserve(list.systems().size());
  for (const LinSystem& p : list.systems()) sys.push_back(canon_system(p, prog));
  std::sort(sys.begin(), sys.end());
  std::string out;
  for (size_t i = 0; i < sys.size(); ++i) {
    if (i != 0) out += " | ";
    out += sys[i];
  }
  return out;
}

// First source line of the statement, trimmed and clipped — enough for a
// human to recognize the access without pasting whole loop bodies into the
// ledger.
std::string stmt_snippet(const ir::Stmt* s) {
  std::string text = ir::to_string(s);
  size_t nl = text.find('\n');
  if (nl != std::string::npos) text.resize(nl);
  size_t a = text.find_first_not_of(' ');
  if (a != std::string::npos && a > 0) text.erase(0, a);
  if (text.size() > 80) {
    text.resize(77);
    text += "...";
  }
  return text;
}

bool expr_mentions(const ir::Expr* e, const AliasAnalysis& alias,
                   const ir::Variable* v) {
  if (e == nullptr) return false;
  bool hit = false;
  ir::for_each_expr(e, [&](const ir::Expr* n) {
    if ((n->is_var_ref() || n->is_array_ref()) && n->var != nullptr &&
        alias.may_alias(n->var, v)) {
      hit = true;
    }
  });
  return hit;
}

// The concrete statement pair behind a dependence: the first statement in the
// loop body (pre-order) that writes `v` and the first that reads it. Ordinals
// ("s3") are positions in that pre-order walk — per-loop and therefore stable
// across rebuilds, unlike synthetic line numbers, which shift when an
// unrelated procedure above this one grows.
struct AccessPair {
  std::string writer, reader;
};

AccessPair find_access_pair(const ir::Stmt* loop, const AliasAnalysis& alias,
                            const ir::Variable* v) {
  AccessPair out;
  int ord = 0;
  ir::for_each_nested(loop, [&](const ir::Stmt* s) {
    ++ord;
    bool writes = false, reads = false;
    switch (s->kind) {
      case ir::StmtKind::Assign:
        if (s->lhs != nullptr && s->lhs->var != nullptr &&
            alias.may_alias(s->lhs->var, v)) {
          writes = true;
        }
        if (s->lhs != nullptr) {
          for (const ir::Expr* ix : s->lhs->idx) {
            reads = reads || expr_mentions(ix, alias, v);
          }
        }
        reads = reads || expr_mentions(s->rhs, alias, v);
        break;
      case ir::StmtKind::Call:
        // By-reference arguments may both read and write the storage.
        for (const ir::Expr* a : s->args) {
          if (expr_mentions(a, alias, v)) writes = reads = true;
        }
        break;
      case ir::StmtKind::If:
        reads = expr_mentions(s->cond, alias, v);
        break;
      case ir::StmtKind::Do:
        reads = expr_mentions(s->lb, alias, v) ||
                expr_mentions(s->ub, alias, v) ||
                expr_mentions(s->step, alias, v);
        break;
      case ir::StmtKind::Print:
        reads = expr_mentions(s->value, alias, v);
        break;
      case ir::StmtKind::Nop:
        break;
    }
    if ((writes && out.writer.empty()) || (reads && out.reader.empty())) {
      std::string ref = "s" + std::to_string(ord) + " `" + stmt_snippet(s) + "`";
      if (writes && out.writer.empty()) out.writer = ref;
      if (reads && out.reader.empty()) out.reader = std::move(ref);
    }
  });
  if (out.writer.empty()) out.writer = "(write reaches the loop through a call)";
  if (out.reader.empty()) out.reader = out.writer;
  return out;
}

/// Return the memoized detail for `key`, building it on first use. The
/// returned reference stays valid after the lock drops: std::map nodes are
/// stable under insertion and entries are never erased or rewritten.
template <typename Memo, typename Key, typename Build>
const std::string& memoized_detail(std::mutex& mu, Memo& memo, const Key& key,
                                   Build&& build) {
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
  }
  std::string detail = build();  // outside the lock: rendering is the hot part
  std::lock_guard<std::mutex> lock(mu);
  return memo.emplace(key, std::move(detail)).first->second;
}

}  // namespace

const char* to_string(VarClass c) {
  switch (c) {
    case VarClass::ReadOnly: return "read-only";
    case VarClass::Parallel: return "parallel";
    case VarClass::Privatizable: return "privatizable";
    case VarClass::Reduction: return "reduction";
    case VarClass::LoopIndex: return "loop-index";
    case VarClass::Dependent: return "dependent";
  }
  return "?";
}

std::vector<const ir::Variable*> LoopVerdict::dependent_vars() const {
  std::vector<const ir::Variable*> out;
  for (const auto& [v, verdict] : vars) {
    if (verdict.cls == VarClass::Dependent) out.push_back(v);
  }
  // The map is pointer-keyed; sort by id so callers see a stable order
  // regardless of heap layout.
  std::sort(out.begin(), out.end(),
            [](const ir::Variable* a, const ir::Variable* b) { return a->id < b->id; });
  return out;
}

poly::SymMap DependenceAnalysis::prime_map(const ir::Stmt* loop,
                                           const AccessInfo& body) const {
  poly::SymMap prime;
  const Symbolic& sym = df_.symbolic();
  auto visit_list = [&](const SectionList& list) {
    for (const LinSystem& p : list.systems()) {
      for (SymId s : p.symbols()) {
        if (!poly::is_dim_sym(s) && sym.is_variant_sym(loop, s)) {
          prime.set(s, poly::prime_of(s));
        }
      }
    }
  };
  for (const auto& [v, va] : body.vars) {
    visit_list(va.sec.R);
    visit_list(va.sec.E);
    visit_list(va.sec.W);
    visit_list(va.sec.M);
    for (const auto& [op, list] : va.red) visit_list(list);
  }
  for (SymId s : df_.loop_bounds(loop).symbols()) {
    if (!poly::is_dim_sym(s) && sym.is_variant_sym(loop, s)) {
      prime.set(s, poly::prime_of(s));
    }
  }
  return prime;
}

bool DependenceAnalysis::cross_iteration_overlap(const ir::Stmt* loop,
                                                 const SectionList& a,
                                                 const SectionList& b) const {
  return overlap_probe(loop, a, b, /*directed=*/false);
}

bool DependenceAnalysis::cross_iteration_overlap_directed(
    const ir::Stmt* loop, const SectionList& a, const SectionList& b) const {
  return overlap_probe(loop, a, b, /*directed=*/true);
}

bool DependenceAnalysis::overlap_probe(const ir::Stmt* loop,
                                       const SectionList& a,
                                       const SectionList& b,
                                       bool directed) const {
  const AccessInfo& body = df_.body_info(loop);
  poly::SymMap prime = prime_map(loop, body);
  LinSystem bounds = df_.loop_bounds(loop);
  LinSystem bounds2 = bounds.rename(prime);
  SymId isym = df_.loop_index_sym(loop);
  SymId isym2 = prime.contains(isym) ? prime.apply(isym) : poly::prime_of(isym);

  // The primed copy of each part of `b` and its bound conjunction do not
  // depend on `pa`: compute them once per call, not once per (pa, pb) pair.
  std::vector<LinSystem> primed_b;
  primed_b.reserve(b.systems().size());
  for (const LinSystem& pb : b.systems()) {
    primed_b.push_back(poly::cache::intersect(pb.rename(prime), bounds2));
  }

  for (const LinSystem& pa : a.systems()) {
    LinSystem pa_bounded = poly::cache::intersect(pa, bounds);
    for (const LinSystem& pb2 : primed_b) {
      LinSystem base = poly::cache::intersect(pa_bounded, pb2);
      for (long dir : {+1L, -1L}) {
        if (directed && dir < 0) continue;  // forward direction only: i < i'
        LinSystem probe = base;
        LinearExpr diff = LinearExpr::var(isym2);
        diff -= LinearExpr::var(isym);
        diff *= dir;
        diff += LinearExpr::constant(-1);
        probe.add_ge(std::move(diff));  // dir * (i' - i) >= 1
        if (!probe.is_empty()) return true;
      }
    }
  }
  return false;
}

void DependenceAnalysis::build_alias_memo() const {
  std::lock_guard<std::mutex> lock(prov_mu_);
  if (prov_alias_ready_.load(std::memory_order_relaxed)) return;
  const AliasAnalysis& alias = df_.alias();
  for (const auto& [canon, members] : alias.all_classes()) {
    // One rendered detail per class, shared by every member (blob membership
    // is a class property: distinct overlay shapes collapse the whole block).
    std::vector<std::string> names;
    names.reserve(members.size());
    for (const ir::Variable* m : members) names.push_back(m->qualified_name());
    std::sort(names.begin(), names.end());
    for (const ir::Variable* m : members) {
      if (!alias.is_blob(m) && members.size() <= 1) continue;
      std::string detail = alias.is_blob(m)
                               ? "address-taken storage blob: accesses of {"
                               : "storage class merged: accesses of {";
      for (size_t i = 0; i < names.size(); ++i) {
        if (i != 0) detail += ", ";
        detail += names[i];
      }
      detail += "} are tested as one variable";
      prov_alias_memo_.emplace(m, std::move(detail));
    }
  }
  // Readers check the flag with acquire before touching the map lock-free;
  // publish only after the map is fully populated (it is never modified
  // again).
  prov_alias_ready_.store(true, std::memory_order_release);
}

LoopVerdict DependenceAnalysis::analyze(
    const ir::Stmt* loop, const std::set<const ir::Variable*>& assume_private,
    const std::set<const ir::Variable*>& assume_parallel) const {
  support::Metrics& metrics = support::Metrics::global();
  metrics.count("depend.analyze");
  support::Metrics::ScopedTimer timer(metrics, "depend.analyze",
                                      &metrics.histogram("depend.analyze"));
  support::trace::TraceSpan span("pass/depend");
  if (span.active()) span.set_detail(loop->loop_name());
  SUIFX_FAULT_POINT("pass.depend.entry");
  LoopVerdict out;
  out.has_io = df_.loop_has_io(loop);
  const AccessInfo& body = df_.body_info(loop);
  const Symbolic& sym = df_.symbolic();
  LinSystem bounds = df_.loop_bounds(loop);

  bool all_ok = true;
  for (const auto& [v, va] : body.vars) {
    support::Budget::charge_current();  // one step per classified variable
    VarVerdict verdict;
    verdict.exposed = va.sec.E;

    if (v == loop->ivar) {
      verdict.cls = VarClass::LoopIndex;
      out.vars[v] = verdict;
      continue;
    }
    if (v->kind == ir::VarKind::SymParam) continue;

    if (prov::noting()) {
      // Conservative storage merging in effect for this variable: the test
      // below runs over the union of all aliased accesses. The merged-var
      // details are precomputed (build_alias_memo) and read lock-free here —
      // this check runs for every variable of every analyzed loop.
      if (!prov_alias_ready_.load(std::memory_order_acquire)) {
        build_alias_memo();
      }
      auto it = prov_alias_memo_.find(v);
      if (it != prov_alias_memo_.end()) {
        prov::note(prov::Kind::AliasAssumed, v->name, it->second);
      }
    }

    SectionList writes = va.sec.W;
    writes.unite(va.sec.M);
    SectionList all = writes;
    all.unite(va.sec.R);

    // Reduction regions: valid only when disjoint from the variable's
    // ordinary accesses and from reduction regions of other operators
    // (§6.2.2.4). Invalid regions demote to ordinary read+write accesses.
    SectionList red_all;
    std::optional<ir::BinOp> red_op;
    bool red_valid = !va.red.empty() && enable_reductions_;
    for (const auto& [op, list] : va.red) {
      if (red_op && *red_op != op) red_valid = false;
      red_op = op;
      red_all.unite(list);
    }
    if (red_valid && !red_all.empty()) {
      // Overlap with ordinary accesses of the same variable?
      if (cross_iteration_overlap(loop, red_all, all) ||
          cross_iteration_overlap(loop, all, red_all) ||
          !SectionList::intersect(red_all, all).empty()) {
        red_valid = false;
      }
    }
    SectionList eff_writes = writes;
    SectionList eff_all = all;
    SectionList eff_exposed = va.sec.E;
    if (!red_valid && !red_all.empty()) {
      // Demoted reduction updates are reads-before-writes of the region.
      eff_writes.unite(red_all);
      eff_all.unite(red_all);
      eff_exposed.unite(red_all);
    }

    if (eff_writes.empty() && (red_valid ? red_all.empty() : true)) {
      verdict.cls = VarClass::ReadOnly;
      out.vars[v] = verdict;
      continue;
    }

    if (assume_parallel.count(v) != 0) {
      verdict.cls = VarClass::Parallel;
      out.vars[v] = verdict;
      continue;
    }

    bool carried = cross_iteration_overlap(loop, eff_writes, eff_all);
    if (!carried) {
      // Ordinary accesses are independent; if commutative updates remain they
      // still conflict with themselves across iterations and need the
      // reduction transformation (disjointness from ordinary sections was
      // verified above).
      if (red_valid && !red_all.empty()) {
        verdict.cls = VarClass::Reduction;
        verdict.red_op = *red_op;
        verdict.red_region =
            red_all.project_out_if([&](SymId s) { return sym.is_variant_sym(loop, s); });
        if (prov::noting()) {
          const ir::Program* prog =
              loop->proc != nullptr ? loop->proc->program : nullptr;
          prov::note(prov::Kind::ReductionRecognized, v->name,
                     memoized_detail(prov_mu_, prov_red_memo_,
                                     std::make_pair(loop, v), [&] {
                       return std::string("commutative ") +
                              ir::to_string(*red_op) + " updates over region " +
                              canon_sections(verdict.red_region, prog) +
                              ", disjoint from ordinary accesses";
                     }));
        }
      } else {
        verdict.cls = VarClass::Parallel;
      }
      out.vars[v] = verdict;
      continue;
    }

    // Carried dependence on ordinary accesses: try privatization — legal when
    // no exposed read of one iteration is fed by another iteration's write.
    bool priv = !cross_iteration_overlap(loop, eff_writes, eff_exposed) &&
                !cross_iteration_overlap(loop, eff_exposed, eff_writes);
    if (assume_private.count(v) != 0) priv = true;
    if (priv) {
      verdict.cls = VarClass::Privatizable;
      verdict.needs_copy_in = !eff_exposed.empty();
      // Finalization rule without liveness info (§5.4): every iteration
      // must-write exactly the same region, so the processor executing the
      // last iteration can use the original array. Check: the union over all
      // iterations of the must-written region (variant symbols projected) is
      // covered by the symbolic single-iteration region.
      if (!va.sec.M.empty() && va.sec.W.empty() && red_all.empty()) {
        SectionList union_region;
        for (const LinSystem& p : va.sec.M.systems()) {
          union_region.add(poly::cache::intersect(p, bounds).project_out_if(
              [&](SymId s) { return sym.is_variant_sym(loop, s); }));
        }
        bool same = true;
        for (const LinSystem& u : union_region.systems()) {
          bool covered = false;
          for (const LinSystem& p : va.sec.M.systems()) {
            if (poly::cache::contains(p, poly::cache::intersect(u, bounds))) covered = true;
          }
          same = same && covered;
        }
        verdict.same_region_every_iter = same;
      }
      out.vars[v] = verdict;
      continue;
    }

    if (prov::noting()) {
      // Dependent here always means a flow dependence: the privatization test
      // just failed, i.e. one iteration's write feeds another's exposed read.
      const ir::Program* prog =
          loop->proc != nullptr ? loop->proc->program : nullptr;
      prov::note(prov::Kind::DependenceFound, v->name,
                 memoized_detail(prov_mu_, prov_dep_memo_,
                                 std::make_pair(loop, v), [&] {
                   AccessPair pair = find_access_pair(loop, df_.alias(), v);
                   return "flow: " + pair.writer + " -> " + pair.reader +
                          "; writes " + canon_sections(eff_writes, prog) +
                          " overlap cross-iteration exposed reads " +
                          canon_sections(eff_exposed, prog);
                 }));
    }
    verdict.cls = VarClass::Dependent;
    out.vars[v] = verdict;
    ++out.num_dependences;
    all_ok = false;
  }

  // Reduction verdicts coexisting with red_valid + carried==false already
  // handled; a variable with BOTH valid reductions and independent ordinary
  // writes is classified Parallel above — safe, as the sections are disjoint.
  out.parallel = all_ok && !out.has_io;
  return out;
}

}  // namespace suifx::analysis
