#include "analysis/depend.h"

#include <algorithm>

#include "polyhedra/polycache.h"
#include "support/budget.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace suifx::analysis {

using poly::LinearExpr;
using poly::LinSystem;
using poly::SectionList;
using poly::SymId;

const char* to_string(VarClass c) {
  switch (c) {
    case VarClass::ReadOnly: return "read-only";
    case VarClass::Parallel: return "parallel";
    case VarClass::Privatizable: return "privatizable";
    case VarClass::Reduction: return "reduction";
    case VarClass::LoopIndex: return "loop-index";
    case VarClass::Dependent: return "dependent";
  }
  return "?";
}

std::vector<const ir::Variable*> LoopVerdict::dependent_vars() const {
  std::vector<const ir::Variable*> out;
  for (const auto& [v, verdict] : vars) {
    if (verdict.cls == VarClass::Dependent) out.push_back(v);
  }
  // The map is pointer-keyed; sort by id so callers see a stable order
  // regardless of heap layout.
  std::sort(out.begin(), out.end(),
            [](const ir::Variable* a, const ir::Variable* b) { return a->id < b->id; });
  return out;
}

poly::SymMap DependenceAnalysis::prime_map(const ir::Stmt* loop,
                                           const AccessInfo& body) const {
  poly::SymMap prime;
  const Symbolic& sym = df_.symbolic();
  auto visit_list = [&](const SectionList& list) {
    for (const LinSystem& p : list.systems()) {
      for (SymId s : p.symbols()) {
        if (!poly::is_dim_sym(s) && sym.is_variant_sym(loop, s)) {
          prime.set(s, poly::prime_of(s));
        }
      }
    }
  };
  for (const auto& [v, va] : body.vars) {
    visit_list(va.sec.R);
    visit_list(va.sec.E);
    visit_list(va.sec.W);
    visit_list(va.sec.M);
    for (const auto& [op, list] : va.red) visit_list(list);
  }
  for (SymId s : df_.loop_bounds(loop).symbols()) {
    if (!poly::is_dim_sym(s) && sym.is_variant_sym(loop, s)) {
      prime.set(s, poly::prime_of(s));
    }
  }
  return prime;
}

bool DependenceAnalysis::cross_iteration_overlap(const ir::Stmt* loop,
                                                 const SectionList& a,
                                                 const SectionList& b) const {
  const AccessInfo& body = df_.body_info(loop);
  poly::SymMap prime = prime_map(loop, body);
  LinSystem bounds = df_.loop_bounds(loop);
  LinSystem bounds2 = bounds.rename(prime);
  SymId isym = df_.loop_index_sym(loop);
  SymId isym2 = prime.contains(isym) ? prime.apply(isym) : poly::prime_of(isym);

  // The primed copy of each part of `b` and its bound conjunction do not
  // depend on `pa`: compute them once per call, not once per (pa, pb) pair.
  std::vector<LinSystem> primed_b;
  primed_b.reserve(b.systems().size());
  for (const LinSystem& pb : b.systems()) {
    primed_b.push_back(poly::cache::intersect(pb.rename(prime), bounds2));
  }

  for (const LinSystem& pa : a.systems()) {
    LinSystem pa_bounded = poly::cache::intersect(pa, bounds);
    for (const LinSystem& pb2 : primed_b) {
      LinSystem base = poly::cache::intersect(pa_bounded, pb2);
      for (long dir : {+1L, -1L}) {
        LinSystem probe = base;
        LinearExpr diff = LinearExpr::var(isym2);
        diff -= LinearExpr::var(isym);
        diff *= dir;
        diff += LinearExpr::constant(-1);
        probe.add_ge(std::move(diff));  // dir * (i' - i) >= 1
        if (!probe.is_empty()) return true;
      }
    }
  }
  return false;
}

LoopVerdict DependenceAnalysis::analyze(
    const ir::Stmt* loop, const std::set<const ir::Variable*>& assume_private,
    const std::set<const ir::Variable*>& assume_parallel) const {
  support::Metrics& metrics = support::Metrics::global();
  metrics.count("depend.analyze");
  support::Metrics::ScopedTimer timer(metrics, "depend.analyze",
                                      &metrics.histogram("depend.analyze"));
  support::trace::TraceSpan span("pass/depend");
  if (span.active()) span.set_detail(loop->loop_name());
  SUIFX_FAULT_POINT("pass.depend.entry");
  LoopVerdict out;
  out.has_io = df_.loop_has_io(loop);
  const AccessInfo& body = df_.body_info(loop);
  const Symbolic& sym = df_.symbolic();
  LinSystem bounds = df_.loop_bounds(loop);

  bool all_ok = true;
  for (const auto& [v, va] : body.vars) {
    support::Budget::charge_current();  // one step per classified variable
    VarVerdict verdict;
    verdict.exposed = va.sec.E;

    if (v == loop->ivar) {
      verdict.cls = VarClass::LoopIndex;
      out.vars[v] = verdict;
      continue;
    }
    if (v->kind == ir::VarKind::SymParam) continue;

    SectionList writes = va.sec.W;
    writes.unite(va.sec.M);
    SectionList all = writes;
    all.unite(va.sec.R);

    // Reduction regions: valid only when disjoint from the variable's
    // ordinary accesses and from reduction regions of other operators
    // (§6.2.2.4). Invalid regions demote to ordinary read+write accesses.
    SectionList red_all;
    std::optional<ir::BinOp> red_op;
    bool red_valid = !va.red.empty() && enable_reductions_;
    for (const auto& [op, list] : va.red) {
      if (red_op && *red_op != op) red_valid = false;
      red_op = op;
      red_all.unite(list);
    }
    if (red_valid && !red_all.empty()) {
      // Overlap with ordinary accesses of the same variable?
      if (cross_iteration_overlap(loop, red_all, all) ||
          cross_iteration_overlap(loop, all, red_all) ||
          !SectionList::intersect(red_all, all).empty()) {
        red_valid = false;
      }
    }
    SectionList eff_writes = writes;
    SectionList eff_all = all;
    SectionList eff_exposed = va.sec.E;
    if (!red_valid && !red_all.empty()) {
      // Demoted reduction updates are reads-before-writes of the region.
      eff_writes.unite(red_all);
      eff_all.unite(red_all);
      eff_exposed.unite(red_all);
    }

    if (eff_writes.empty() && (red_valid ? red_all.empty() : true)) {
      verdict.cls = VarClass::ReadOnly;
      out.vars[v] = verdict;
      continue;
    }

    if (assume_parallel.count(v) != 0) {
      verdict.cls = VarClass::Parallel;
      out.vars[v] = verdict;
      continue;
    }

    bool carried = cross_iteration_overlap(loop, eff_writes, eff_all);
    if (!carried) {
      // Ordinary accesses are independent; if commutative updates remain they
      // still conflict with themselves across iterations and need the
      // reduction transformation (disjointness from ordinary sections was
      // verified above).
      if (red_valid && !red_all.empty()) {
        verdict.cls = VarClass::Reduction;
        verdict.red_op = *red_op;
        verdict.red_region =
            red_all.project_out_if([&](SymId s) { return sym.is_variant_sym(loop, s); });
      } else {
        verdict.cls = VarClass::Parallel;
      }
      out.vars[v] = verdict;
      continue;
    }

    // Carried dependence on ordinary accesses: try privatization — legal when
    // no exposed read of one iteration is fed by another iteration's write.
    bool priv = !cross_iteration_overlap(loop, eff_writes, eff_exposed) &&
                !cross_iteration_overlap(loop, eff_exposed, eff_writes);
    if (assume_private.count(v) != 0) priv = true;
    if (priv) {
      verdict.cls = VarClass::Privatizable;
      verdict.needs_copy_in = !eff_exposed.empty();
      // Finalization rule without liveness info (§5.4): every iteration
      // must-write exactly the same region, so the processor executing the
      // last iteration can use the original array. Check: the union over all
      // iterations of the must-written region (variant symbols projected) is
      // covered by the symbolic single-iteration region.
      if (!va.sec.M.empty() && va.sec.W.empty() && red_all.empty()) {
        SectionList union_region;
        for (const LinSystem& p : va.sec.M.systems()) {
          union_region.add(poly::cache::intersect(p, bounds).project_out_if(
              [&](SymId s) { return sym.is_variant_sym(loop, s); }));
        }
        bool same = true;
        for (const LinSystem& u : union_region.systems()) {
          bool covered = false;
          for (const LinSystem& p : va.sec.M.systems()) {
            if (poly::cache::contains(p, poly::cache::intersect(u, bounds))) covered = true;
          }
          same = same && covered;
        }
        verdict.same_region_every_iter = same;
      }
      out.vars[v] = verdict;
      continue;
    }

    verdict.cls = VarClass::Dependent;
    out.vars[v] = verdict;
    ++out.num_dependences;
    all_ok = false;
  }

  // Reduction verdicts coexisting with red_valid + carried==false already
  // handled; a variable with BOTH valid reductions and independent ordinary
  // writes is classified Parallel above — safe, as the sections are disjoint.
  out.parallel = all_ok && !out.has_io;
  return out;
}

}  // namespace suifx::analysis
