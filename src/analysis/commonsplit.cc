#include "analysis/commonsplit.h"

namespace suifx::analysis {

std::vector<CommonSplit> find_common_splits(ir::Program& prog, LivenessMode mode) {
  // Hypothesis infrastructure: overlay members keep separate identities.
  AliasAnalysis alias(prog, /*unify_overlays=*/false);
  graph::CallGraph cg(prog);
  graph::RegionTree regions(prog);
  ModRef modref(prog, alias, cg);
  Symbolic symbolic(prog, alias, modref, cg);
  ArrayDataflow df(prog, alias, modref, cg, regions, symbolic);
  ArrayLiveness live(prog, df, cg, regions, alias, mode);

  std::vector<CommonSplit> out;
  // Same-offset, same-footprint overlay pairs (declared in different procs).
  std::map<std::pair<const ir::CommonBlock*, long>, std::vector<const ir::Variable*>>
      groups;
  for (const ir::Variable& v : prog.variables()) {
    if (v.kind != ir::VarKind::CommonMember || alias.is_blob(&v)) continue;
    if (alias.canonical(&v) != &v) continue;  // one entry per logical view
    groups[{v.common, v.common_offset}].push_back(&v);
  }
  for (const auto& [key, members] : groups) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        CommonSplit cs;
        cs.block = key.first;
        cs.a = members[i];
        cs.b = members[j];
        cs.splittable = true;
        // The pair may be split when no region exit has both views live.
        for (const auto& r : regions.all()) {
          if (r->kind == graph::RegionKind::Loop) continue;  // bodies suffice
          if (live.live_after(r.get(), cs.a) && live.live_after(r.get(), cs.b)) {
            cs.splittable = false;
            cs.conflict = r.get();
            break;
          }
        }
        out.push_back(cs);
      }
    }
  }
  return out;
}

}  // namespace suifx::analysis
