#include "analysis/liveness.h"

#include <functional>

#include "dataflow/mono.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace suifx::analysis {

using poly::LinSystem;
using poly::SectionList;
using poly::SymId;

const char* to_string(LivenessMode m) {
  switch (m) {
    case LivenessMode::Full: return "full";
    case LivenessMode::OneBit: return "1-bit";
    case LivenessMode::FlowInsensitive: return "flow-insensitive";
  }
  return "?";
}

ArrayLiveness::ArrayLiveness(const ir::Program& prog, const ArrayDataflow& df,
                             const graph::CallGraph& cg,
                             const graph::RegionTree& regions,
                             const AliasAnalysis& alias, LivenessMode mode)
    : prog_(prog), df_(df), cg_(cg), regions_(regions), alias_(alias), mode_(mode) {
  support::trace::TraceSpan span("pass/liveness", to_string(mode));
  support::Metrics::ScopedTimer timer(support::Metrics::global(), "liveness.build");
  SUIFX_FAULT_POINT("pass.liveness.entry");

  // Mono-solver client (docs/dataflow.md): one node per procedure, an edge
  // caller -> callee (top-down flow): a procedure's continuation is the meet
  // over its callsites, which live in already-sealed caller bundles. No
  // recursion, so each transfer seals its node in one application.
  const std::vector<ir::Procedure*>& procs = cg.top_down();
  const int n = static_cast<int>(procs.size());
  for (int i = 0; i < n; ++i) node_of_[procs[static_cast<size_t>(i)]] = i;

  dataflow::DepGraph g(n);
  std::vector<uint64_t> costs(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    procs[static_cast<size_t>(i)]->for_each([&](const ir::Stmt* s) {
      // Pre-port charges: one per walked node (Full/OneBit); one per region
      // walked (FlowInsensitive: the procedure region plus each loop body).
      if (mode == LivenessMode::FlowInsensitive) {
        if (s->kind == ir::StmtKind::Do) ++costs[static_cast<size_t>(i)];
      } else {
        ++costs[static_cast<size_t>(i)];
      }
      if (s->kind == ir::StmtKind::Call) g.add_edge(i, node_of_.at(s->callee));
    });
    if (mode == LivenessMode::FlowInsensitive) ++costs[static_cast<size_t>(i)];
  }

  solve_facts_.assign(static_cast<size_t>(n), ProcFacts{});
  struct Client {
    ArrayLiveness* self;
    const std::vector<ir::Procedure*>* procs;
    const std::vector<uint64_t>* costs;
    bool transfer(int i) {
      const ir::Procedure* p = (*procs)[static_cast<size_t>(i)];
      ProcFacts& f = self->solve_facts_[static_cast<size_t>(i)];
      switch (self->mode_) {
        case LivenessMode::Full:
          self->transfer_full(p, f);
          break;
        case LivenessMode::OneBit:
          self->transfer_onebit(p, f);
          break;
        case LivenessMode::FlowInsensitive:
          self->transfer_flow_insensitive(p, f);
          break;
      }
      return true;  // acyclic graph: each node runs exactly once
    }
    uint64_t cost(int i) const { return (*costs)[static_cast<size_t>(i)]; }
  };
  Client client{this, &procs, &costs};
  dataflow::SolveOptions opts;
  opts.pass = "liveness";
  dataflow::solve(client, g, opts);

  for (int i = 0; i < n; ++i) {
    ProcFacts& f = solve_facts_[static_cast<size_t>(i)];
    after_.merge(std::move(f.after));
    after_call_.merge(std::move(f.after_call));
    after_bits_.merge(std::move(f.after_bits));
    after_call_bits_.merge(std::move(f.after_call_bits));
  }
  solve_facts_.clear();
}

// ---------------------------------------------------------------------------
// Full (flow- and context-sensitive) top-down phase, Fig 5-3
// ---------------------------------------------------------------------------

namespace {

/// Fig 5-3 loop-body rule: execution of the body may be followed by further
/// iterations (the loop's own closed summary) and then the code after the
/// loop; only the after-loop must-writes are guaranteed to follow every
/// iteration.
AccessInfo loop_body_continuation(const AccessInfo& after_loop,
                                  const AccessInfo& loop_summary) {
  AccessInfo out;
  std::set<const ir::Variable*> keys;
  for (const auto& [v, x] : after_loop.vars) keys.insert(v);
  for (const auto& [v, x] : loop_summary.vars) keys.insert(v);
  for (const ir::Variable* v : keys) {
    static const VarAccess kEmpty;
    const VarAccess* a = after_loop.find(v) != nullptr ? after_loop.find(v) : &kEmpty;
    const VarAccess* l = loop_summary.find(v) != nullptr ? loop_summary.find(v) : &kEmpty;
    VarAccess c;
    c.sec.R = a->sec.R;
    c.sec.R.unite(l->sec.R);
    c.sec.E = a->sec.E;
    c.sec.E.unite(l->sec.E);
    c.sec.W = a->sec.W;
    c.sec.W.unite(l->sec.W);
    c.sec.M = a->sec.M;  // M1 only
    c.red = a->red;
    for (const auto& [op, list] : l->red) c.red[op].unite(list);
    if (c.any()) out.vars[v] = std::move(c);
  }
  return out;
}

bool involves_only_params(const LinSystem& sys, const ir::Program& prog) {
  for (SymId s : sys.symbols()) {
    if (poly::is_dim_sym(s)) continue;
    int vid = poly::sym_var_id(s);
    if (vid < 0 || vid >= prog.num_vars()) return false;
    if (prog.variables()[static_cast<size_t>(vid)].kind != ir::VarKind::SymParam) {
      return false;
    }
  }
  return true;
}

}  // namespace

void ArrayLiveness::walk_body_full(const std::vector<ir::Stmt*>& body,
                                   const AccessInfo& cont,
                                   const graph::Region* region, ProcFacts& f) {
  // Budget steps for the walk are charged by the mono solver when this
  // procedure's node is popped (cost = number of walked nodes).
  AccessInfo after = cont;
  for (auto it = body.rbegin(); it != body.rend(); ++it) {
    ir::Stmt* s = *it;
    switch (s->kind) {
      case ir::StmtKind::Do: {
        const graph::Region* lr = regions_.loop_region(s);
        f.after[lr] = after;
        AccessInfo body_cont =
            loop_body_continuation(after, df_.region_info(lr));
        f.after[regions_.body_region(s)] = body_cont;
        walk_body_full(s->body, body_cont, regions_.body_region(s), f);
        break;
      }
      case ir::StmtKind::If:
        walk_body_full(s->then_body, after, region, f);
        walk_body_full(s->else_body, after, region, f);
        break;
      case ir::StmtKind::Call:
        f.after_call[s] = after;
        break;
      default:
        break;
    }
    after = AccessInfo::compose(df_.node_info(s), after);
  }
}

AccessInfo ArrayLiveness::map_to_callee(const ir::Stmt* call,
                                        const AccessInfo& after) const {
  const ir::Procedure* callee = call->callee;
  AccessInfo out;

  // Localize to symbols meaningful in the callee: SymParams only (caller
  // scalars mean nothing there). May-sets project; must-sets drop weakened
  // parts (fewer kills is the conservative direction).
  auto localize_may = [&](const SectionList& list) {
    // Routed through SectionList::project_out_if so each per-symbol
    // elimination hits the shared polyhedral memo table.
    return list.project_out_if([&](SymId sid) {
      if (poly::is_dim_sym(sid)) return false;
      int vid = poly::sym_var_id(sid);
      return vid < 0 || vid >= prog_.num_vars() ||
             prog_.variables()[static_cast<size_t>(vid)].kind != ir::VarKind::SymParam;
    });
  };
  auto localize_must = [&](const SectionList& list) {
    SectionList out_list;
    for (const LinSystem& sys : list.systems()) {
      if (involves_only_params(sys, prog_)) out_list.add(sys);
    }
    return out_list;
  };

  for (const auto& [v, va] : after.vars) {
    if (v->kind == ir::VarKind::Global || v->kind == ir::VarKind::CommonMember) {
      VarAccess c;
      c.sec.R = localize_may(va.sec.R);
      c.sec.E = localize_may(va.sec.E);
      c.sec.W = localize_may(va.sec.W);
      c.sec.M = localize_must(va.sec.M);
      if (c.any()) out.vars[v] = std::move(c);
    }
  }
  // Map accesses to actual variables onto the formals they are bound to.
  for (size_t i = 0; i < callee->formals.size(); ++i) {
    const ir::Variable* f = callee->formals[i];
    const ir::Expr* a = call->args[i];
    if (!a->is_var_ref() && !a->is_array_ref()) continue;
    const VarAccess* va = after.find(alias_.canonical(a->var));
    if (va == nullptr) continue;
    VarAccess c;
    if (f->is_scalar()) {
      // Copy-out: the actual's liveness makes the formal's final value live.
      c.sec.R = localize_may(va->sec.R);
      c.sec.E = localize_may(va->sec.E);
      c.sec.M = localize_must(va->sec.M);
    } else if (a->is_var_ref() && f->rank() == a->var->rank()) {
      c.sec.R = localize_may(va->sec.R);
      c.sec.E = localize_may(va->sec.E);
      c.sec.W = localize_may(va->sec.W);
      c.sec.M = localize_must(va->sec.M);
    } else {
      // Element-base or reshaped binding: conservative whole-formal liveness
      // when anything of the actual is exposed; no kills.
      if (!va->sec.E.empty()) {
        c.sec.E.add(poly::whole_array_section(f, poly::params_only));
        c.sec.R.add(poly::whole_array_section(f, poly::params_only));
      }
    }
    if (c.any()) {
      VarAccess& slot = out.vars[f];
      slot.sec = poly::ArraySummary::meet(slot.sec, c.sec);
    }
  }
  return out;
}

void ArrayLiveness::transfer_full(const ir::Procedure* p, ProcFacts& f) {
  AccessInfo cont;
  const auto& sites = cg_.callsites_of(p);
  if (p != prog_.main() && !sites.empty()) {
    bool first = true;
    for (const ir::Stmt* c : sites) {
      const ProcFacts& cf =
          solve_facts_[static_cast<size_t>(node_of_.at(c->proc))];
      auto it = cf.after_call.find(c);
      AccessInfo mapped =
          it != cf.after_call.end() ? map_to_callee(c, it->second) : AccessInfo{};
      if (first) {
        cont = std::move(mapped);
        first = false;
      } else {
        cont = AccessInfo::meet(cont, mapped);
      }
    }
  }
  f.after[regions_.of_proc(p)] = cont;
  walk_body_full(p->body, cont, regions_.of_proc(p), f);
}

// ---------------------------------------------------------------------------
// 1-bit and flow-insensitive variants (§5.2.3)
// ---------------------------------------------------------------------------

std::set<const ir::Variable*> ArrayLiveness::exposed_vars(const AccessInfo& info) const {
  std::set<const ir::Variable*> out;
  for (const auto& [v, va] : info.vars) {
    if (!va.sec.E.empty()) out.insert(v);
  }
  return out;
}

std::set<const ir::Variable*> ArrayLiveness::map_vars_to_callee(
    const ir::Stmt* call, const std::set<const ir::Variable*>& vars) const {
  std::set<const ir::Variable*> out;
  for (const ir::Variable* v : vars) {
    if (v->kind == ir::VarKind::Global || v->kind == ir::VarKind::CommonMember) {
      out.insert(v);
    }
  }
  for (size_t i = 0; i < call->callee->formals.size(); ++i) {
    const ir::Expr* a = call->args[i];
    if ((a->is_var_ref() || a->is_array_ref()) &&
        vars.count(alias_.canonical(a->var)) != 0) {
      out.insert(call->callee->formals[i]);
    }
  }
  return out;
}

void ArrayLiveness::walk_body_bits(const std::vector<ir::Stmt*>& body,
                                   std::set<const ir::Variable*> after,
                                   const graph::Region* region, ProcFacts& f) {
  // Budget steps for the walk are charged by the mono solver when this
  // procedure's node is popped (cost = number of walked nodes).
  for (auto it = body.rbegin(); it != body.rend(); ++it) {
    ir::Stmt* s = *it;
    switch (s->kind) {
      case ir::StmtKind::Do: {
        const graph::Region* lr = regions_.loop_region(s);
        f.after_bits[lr] = after;
        std::set<const ir::Variable*> body_after = after;
        for (const ir::Variable* v : exposed_vars(df_.region_info(lr))) {
          body_after.insert(v);
        }
        f.after_bits[regions_.body_region(s)] = body_after;
        walk_body_bits(s->body, body_after, regions_.body_region(s), f);
        break;
      }
      case ir::StmtKind::If:
        walk_body_bits(s->then_body, after, region, f);
        walk_body_bits(s->else_body, after, region, f);
        break;
      case ir::StmtKind::Call:
        f.after_call_bits[s] = after;
        break;
      default:
        break;
    }
    // No kill operator in the 1-bit transfer function (§5.2.3.1).
    for (const ir::Variable* v : exposed_vars(df_.node_info(s))) after.insert(v);
  }
}

void ArrayLiveness::transfer_onebit(const ir::Procedure* p, ProcFacts& f) {
  std::set<const ir::Variable*> cont;
  if (p != prog_.main()) {
    for (const ir::Stmt* c : cg_.callsites_of(p)) {
      const ProcFacts& cf =
          solve_facts_[static_cast<size_t>(node_of_.at(c->proc))];
      auto it = cf.after_call_bits.find(c);
      if (it == cf.after_call_bits.end()) continue;
      for (const ir::Variable* v : map_vars_to_callee(c, it->second)) cont.insert(v);
    }
  }
  f.after_bits[regions_.of_proc(p)] = cont;
  walk_body_bits(p->body, cont, regions_.of_proc(p), f);
}

std::set<const ir::Variable*> ArrayLiveness::sibling_exposure(
    const graph::Region* r) const {
  // Everything exposed by any top-level statement of the region's body —
  // control flow among siblings is ignored (§5.2.3.2), so a variable exposed
  // anywhere in the region is treated as live after every subregion.
  std::set<const ir::Variable*> out;
  const graph::Region* stmts_owner =
      r->kind == graph::RegionKind::Loop ? r->children.front() : r;
  for (const ir::Stmt* s : stmts_owner->stmts()) {
    for (const ir::Variable* v : exposed_vars(df_.node_info(s))) out.insert(v);
  }
  return out;
}

void ArrayLiveness::transfer_flow_insensitive(const ir::Procedure* p,
                                              ProcFacts& f) {
  // live(r) = live(parent) ∪ exposed(any sibling of r, including itself).
  // Budget steps (one per region walked) are charged at the solver pop.
  auto region_of_stmt = [&](const ir::Stmt* s) -> const graph::Region* {
    const ir::Stmt* encl = s->enclosing_loop();
    return encl != nullptr ? regions_.body_region(encl) : regions_.of_proc(s->proc);
  };
  std::set<const ir::Variable*> cont;
  if (p != prog_.main()) {
    for (const ir::Stmt* c : cg_.callsites_of(p)) {
      const graph::Region* r = region_of_stmt(c);
      const ProcFacts& cf =
          solve_facts_[static_cast<size_t>(node_of_.at(c->proc))];
      std::set<const ir::Variable*> live_here;
      auto it = cf.after_bits.find(r);
      if (it != cf.after_bits.end()) live_here = it->second;
      for (const ir::Variable* v : sibling_exposure(r)) live_here.insert(v);
      for (const ir::Variable* v : map_vars_to_callee(c, live_here)) cont.insert(v);
    }
  }
  f.after_bits[regions_.of_proc(p)] = cont;
  std::function<void(const graph::Region*)> walk = [&](const graph::Region* r) {
    std::set<const ir::Variable*> live = f.after_bits[r];
    for (const ir::Variable* v : sibling_exposure(r)) live.insert(v);
    for (graph::Region* c : r->children) {
      if (c->kind == graph::RegionKind::Loop) {
        f.after_bits[c] = live;
        // The loop body additionally sees the loop's own exposure (later
        // iterations).
        std::set<const ir::Variable*> body_live = live;
        for (const ir::Variable* v : exposed_vars(df_.region_info(c))) {
          body_live.insert(v);
        }
        f.after_bits[c->children.front()] = body_live;
        walk(c->children.front());
      }
    }
  };
  walk(regions_.of_proc(p));
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

bool ArrayLiveness::live_after(const graph::Region* r, const ir::Variable* v) const {
  if (mode_ == LivenessMode::Full) {
    auto it = after_.find(r);
    if (it == after_.end()) return false;
    const VarAccess* va = it->second.find(v);
    return va != nullptr && !va->sec.E.empty();
  }
  auto it = after_bits_.find(r);
  return it != after_bits_.end() && it->second.count(v) != 0;
}

poly::SectionList ArrayLiveness::live_sections_after(const graph::Region* r,
                                                     const ir::Variable* v) const {
  if (mode_ != LivenessMode::Full) {
    if (live_after(r, v)) {
      return SectionList::single(
          v->is_array() ? poly::whole_array_section(v, poly::params_only)
                        : LinSystem::universe());
    }
    return {};
  }
  auto it = after_.find(r);
  if (it == after_.end()) return {};
  const VarAccess* va = it->second.find(v);
  return va != nullptr ? va->sec.E : SectionList{};
}

poly::SectionList ArrayLiveness::written_live_after(const graph::Region* r,
                                                    const ir::Variable* v) const {
  const VarAccess* w = df_.region_info(r).find(v);
  if (w == nullptr) return {};
  SectionList written = w->sec.W;
  written.unite(w->sec.M);
  for (const auto& [op, list] : w->red) written.unite(list);
  return SectionList::intersect(live_sections_after(r, v), written);
}

bool ArrayLiveness::dead_at_exit(const graph::Region* r, const ir::Variable* v) const {
  const VarAccess* w = df_.region_info(r).find(v);
  if (w == nullptr) return false;
  bool writes = !w->sec.W.empty() || !w->sec.M.empty() || !w->red.empty();
  if (!writes) return false;
  if (mode_ != LivenessMode::Full) return !live_after(r, v);
  return written_live_after(r, v).empty();
}

std::vector<const ir::Variable*> ArrayLiveness::modified_vars(
    const graph::Region* r) const {
  std::vector<const ir::Variable*> out;
  for (const auto& [v, va] : df_.region_info(r).vars) {
    if (!va.sec.W.empty() || !va.sec.M.empty() || !va.red.empty()) out.push_back(v);
  }
  return out;
}

}  // namespace suifx::analysis
