#include "analysis/array_dataflow.h"

#include <algorithm>
#include <cassert>

#include "dataflow/mono.h"
#include "polyhedra/polycache.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace suifx::analysis {

using poly::ArraySummary;
using poly::LinearExpr;
using poly::LinSystem;
using poly::SectionList;
using poly::SymId;

// ---------------------------------------------------------------------------
// AccessInfo algebra
// ---------------------------------------------------------------------------

const VarAccess* AccessInfo::find(const ir::Variable* v) const {
  auto it = vars.find(v);
  return it != vars.end() ? &it->second : nullptr;
}

namespace {

/// Move all reduction regions of `va` into its ordinary sections: the
/// updates read (exposed) and write the region.
void demote_all_reductions(VarAccess* va) {
  for (const auto& [op, list] : va->red) {
    va->sec.R.unite(list);
    va->sec.E.unite(list);
    va->sec.W.unite(list);
  }
  va->red.clear();
}

poly::SectionList ordinary_sections(const VarAccess& va) {
  poly::SectionList all = va.sec.R;
  all.unite(va.sec.E);
  all.unite(va.sec.W);
  all.unite(va.sec.M);
  return all;
}

/// §6.2.2.3: when two summaries of the same variable are combined, reduction
/// regions survive only if they do not overlap the other summary's ordinary
/// accesses and carry the identical operator. Any conflict demotes every
/// reduction region of the variable on both sides (conservative).
void demote_conflicting_reductions(VarAccess* a, VarAccess* b) {
  if (a->red.empty() && b->red.empty()) return;
  poly::SectionList a_ord = ordinary_sections(*a);
  poly::SectionList b_ord = ordinary_sections(*b);
  bool conflict = false;
  for (const auto& [op, list] : a->red) {
    if (!list.disjoint_from(b_ord)) conflict = true;
    for (const auto& [op2, list2] : b->red) {
      if (op2 != op && !list.disjoint_from(list2)) conflict = true;
    }
  }
  for (const auto& [op, list] : b->red) {
    if (!list.disjoint_from(a_ord)) conflict = true;
  }
  if (conflict) {
    demote_all_reductions(a);
    demote_all_reductions(b);
  }
}

}  // namespace

AccessInfo AccessInfo::meet(const AccessInfo& a, const AccessInfo& b) {
  // Merged in key order; a variable absent from one side meets the empty
  // summary, which only demotes its must-writes (no path through the other
  // side writes it), so the one-sided cases skip the section algebra.
  AccessInfo out;
  auto ia = a.vars.begin();
  auto ib = b.vars.begin();
  while (ia != a.vars.end() || ib != b.vars.end()) {
    const bool only_a =
        ib == b.vars.end() || (ia != a.vars.end() && ia->first < ib->first);
    const bool only_b =
        ia == a.vars.end() || (ib != b.vars.end() && ib->first < ia->first);
    if (only_a || only_b) {
      VarAccess m = only_a ? ia->second : ib->second;
      m.sec.W.unite(std::move(m.sec.M));
      m.sec.M = poly::SectionList();
      out.vars.emplace_hint(out.vars.end(), only_a ? ia->first : ib->first,
                            std::move(m));
      if (only_a) ++ia;
      else ++ib;
      continue;
    }
    if (ia->second.red.empty() && ib->second.red.empty()) {
      // No reductions on either side: nothing to demote, so meet the
      // summaries in place without copying the VarAccess pair.
      VarAccess m;
      m.sec = ArraySummary::meet(ia->second.sec, ib->second.sec);
      out.vars.emplace_hint(out.vars.end(), ia->first, std::move(m));
      ++ia;
      ++ib;
      continue;
    }
    VarAccess va = ia->second;
    VarAccess vb = ib->second;
    demote_conflicting_reductions(&va, &vb);
    VarAccess m;
    m.sec = ArraySummary::meet(va.sec, vb.sec);
    m.red = std::move(va.red);  // va is this iteration's local copy
    for (auto& [op, list] : vb.red) m.red[op].unite(std::move(list));
    out.vars.emplace_hint(out.vars.end(), ia->first, std::move(m));
    ++ia;
    ++ib;
  }
  return out;
}

AccessInfo AccessInfo::compose(const AccessInfo& node, const AccessInfo& after) {
  // Sequencing against the empty summary is the identity on both sides, so
  // variables mentioned by only one operand carry over unchanged and the
  // section algebra runs only on the overlap.
  if (node.vars.empty()) return after;
  if (after.vars.empty()) return node;
  AccessInfo out;
  auto in = node.vars.begin();
  auto ia = after.vars.begin();
  while (in != node.vars.end() || ia != after.vars.end()) {
    const bool only_n =
        ia == after.vars.end() ||
        (in != node.vars.end() && in->first < ia->first);
    const bool only_a =
        in == node.vars.end() ||
        (ia != after.vars.end() && ia->first < in->first);
    if (only_n || only_a) {
      const auto& it = only_n ? in : ia;
      out.vars.emplace_hint(out.vars.end(), it->first, it->second);
      if (only_n) ++in;
      else ++ia;
      continue;
    }
    if (in->second.red.empty() && ia->second.red.empty()) {
      // No reductions on either side: nothing to demote, so compose the
      // summaries in place without copying the VarAccess pair.
      VarAccess c;
      c.sec = ArraySummary::compose(in->second.sec, ia->second.sec);
      out.vars.emplace_hint(out.vars.end(), in->first, std::move(c));
      ++in;
      ++ia;
      continue;
    }
    VarAccess vn = in->second;
    VarAccess va = ia->second;
    demote_conflicting_reductions(&vn, &va);
    VarAccess c;
    c.sec = ArraySummary::compose(vn.sec, va.sec);
    c.red = std::move(vn.red);  // vn is this iteration's local copy
    for (auto& [op, list] : va.red) c.red[op].unite(std::move(list));
    out.vars.emplace_hint(out.vars.end(), in->first, std::move(c));
    ++in;
    ++ia;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Structural expression equality
// ---------------------------------------------------------------------------

bool expr_equal(const ir::Expr* a, const ir::Expr* b) {
  if (a == b) return true;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case ir::ExprKind::IntConst:
      return a->ival == b->ival;
    case ir::ExprKind::RealConst:
      return a->rval == b->rval;
    case ir::ExprKind::VarRef:
      return a->var == b->var;
    case ir::ExprKind::ArrayRef:
      if (a->var != b->var || a->idx.size() != b->idx.size()) return false;
      for (size_t i = 0; i < a->idx.size(); ++i) {
        if (!expr_equal(a->idx[i], b->idx[i])) return false;
      }
      return true;
    case ir::ExprKind::Binary:
      return a->bop == b->bop && expr_equal(a->a, b->a) && expr_equal(a->b, b->b);
    case ir::ExprKind::Unary:
      return a->uop == b->uop && expr_equal(a->a, b->a);
  }
  return false;
}

namespace {

bool refers_to(const ir::Expr* e, const ir::Variable* v, const AliasAnalysis& alias) {
  bool found = false;
  ir::for_each_expr(e, [&](const ir::Expr* n) {
    if ((n->is_var_ref() || n->is_array_ref()) && alias.may_alias(n->var, v)) {
      found = true;
    }
  });
  return found;
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

ArrayDataflow::ArrayDataflow(const ir::Program& prog, const AliasAnalysis& alias,
                             const ModRef& modref, const graph::CallGraph& cg,
                             const graph::RegionTree& regions, const Symbolic& symbolic)
    : prog_(prog), alias_(alias), modref_(modref), cg_(cg), regions_(regions),
      symbolic_(symbolic) {
  support::trace::TraceSpan span("pass/array_dataflow");
  support::Metrics::ScopedTimer timer(support::Metrics::global(), "dataflow.build");
  SUIFX_FAULT_POINT("pass.array_dataflow.entry");

  // Mono-solver client (docs/dataflow.md): one node per procedure, an edge
  // callee -> caller so a procedure is summarized only after every callee's
  // bundle is sealed. No recursion, so each transfer seals its node in one
  // application; independent procedures summarize on pool workers.
  const std::vector<ir::Procedure*>& procs = cg.bottom_up();
  const int n = static_cast<int>(procs.size());
  for (int i = 0; i < n; ++i) node_of_[procs[static_cast<size_t>(i)]] = i;

  dataflow::DepGraph g(n);
  std::vector<uint64_t> costs(static_cast<size_t>(n), 1);
  for (int i = 0; i < n; ++i) {
    procs[static_cast<size_t>(i)]->for_each([&](const ir::Stmt* s) {
      ++costs[static_cast<size_t>(i)];  // pre-port charge: one per node
      if (s->kind == ir::StmtKind::Call) g.add_edge(node_of_.at(s->callee), i);
    });
  }

  solve_facts_.assign(static_cast<size_t>(n), ProcFacts{});
  solving_ = true;
  struct Client {
    ArrayDataflow* self;
    const std::vector<ir::Procedure*>* procs;
    const std::vector<uint64_t>* costs;
    bool transfer(int i) {
      ir::Procedure* p = (*procs)[static_cast<size_t>(i)];
      support::trace::TraceSpan proc_span("pass/array_dataflow/proc", p->name);
      support::Metrics::global().count("dataflow.procs");
      ProcFacts& f = self->solve_facts_[static_cast<size_t>(i)];
      AccessInfo info = self->summarize_body(p->body, f);
      f.region_info[self->regions_.of_proc(p)] = info;
      f.call_summary = self->localize(p, info);
      p->for_each([&](ir::Stmt* s) {
        if (s->kind == ir::StmtKind::Print) f.io = true;
        if (s->kind == ir::StmtKind::Call) {
          f.io = f.io ||
                 self->solve_facts_[static_cast<size_t>(self->node_of_.at(s->callee))].io;
        }
      });
      return true;  // acyclic graph: each node runs exactly once
    }
    uint64_t cost(int i) const { return (*costs)[static_cast<size_t>(i)]; }
  };
  Client client{this, &procs, &costs};
  dataflow::SolveOptions opts;
  opts.pass = "array_dataflow";
  dataflow::solve(client, g, opts);
  solving_ = false;

  for (int i = 0; i < n; ++i) {
    ir::Procedure* p = procs[static_cast<size_t>(i)];
    ProcFacts& f = solve_facts_[static_cast<size_t>(i)];
    region_info_.merge(std::move(f.region_info));
    body_info_.merge(std::move(f.body_info));
    node_info_.merge(std::move(f.node_info));
    call_summary_[p] = std::move(f.call_summary);
    proc_io_[p] = f.io;
  }
  solve_facts_.clear();
}

bool ArrayDataflow::proc_has_io(const ir::Procedure* p) const {
  auto it = proc_io_.find(p);
  if (it != proc_io_.end()) return it->second;
  bool io = false;
  p->for_each([&](const ir::Stmt* s) {
    if (s->kind == ir::StmtKind::Print) io = true;
    if (s->kind == ir::StmtKind::Call) io = io || proc_has_io(s->callee);
  });
  return io;
}

bool ArrayDataflow::loop_has_io(const ir::Stmt* loop) const {
  bool io = false;
  ir::for_each_nested(loop, [&](const ir::Stmt* s) {
    if (s->kind == ir::StmtKind::Print) io = true;
    if (s->kind == ir::StmtKind::Call) io = io || proc_has_io(s->callee);
  });
  return io;
}

bool ArrayDataflow::loop_has_call(const ir::Stmt* loop) const {
  bool call = false;
  ir::for_each_nested(loop, [&](const ir::Stmt* s) {
    if (s->kind == ir::StmtKind::Call) call = true;
  });
  return call;
}

const AccessInfo& ArrayDataflow::region_info(const graph::Region* r) const {
  return region_info_.at(r);
}

const AccessInfo& ArrayDataflow::body_info(const ir::Stmt* loop) const {
  return body_info_.at(loop);
}

const AccessInfo& ArrayDataflow::call_summary(const ir::Procedure* p) const {
  return call_summary_.at(p);
}

const AccessInfo& ArrayDataflow::node_info(const ir::Stmt* s) const {
  static const AccessInfo kEmpty;
  auto it = node_info_.find(s);
  // Statements consumed by a containing pattern (e.g. the assignment inside
  // a recognized MIN/MAX reduction If) have no standalone summary: their
  // effect is carried by the enclosing node.
  return it != node_info_.end() ? it->second : kEmpty;
}

// ---------------------------------------------------------------------------
// Statement-level summaries
// ---------------------------------------------------------------------------

void ArrayDataflow::record_read(AccessInfo* out, const ir::Expr* ref, const ir::Stmt* s) {
  const ir::Variable* v = alias_.canonical(ref->var);
  if (v->kind == ir::VarKind::SymParam) return;  // compile-time symbols
  VarAccess& va = out->at(v);
  LinSystem sec;
  if (ref->is_array_ref() && !alias_.is_blob(ref->var)) {
    sec = poly::subscripts_to_section(ref->var, ref->idx, symbolic_.resolver_at(s),
                                      nullptr);
  } else if (v->is_array()) {
    sec = poly::whole_array_section(v, poly::params_only);
  }
  va.sec.R.add(sec);
  va.sec.E.add(sec);
}

void ArrayDataflow::record_write(AccessInfo* out, const ir::Expr* ref, const ir::Stmt* s,
                                 bool must) {
  const ir::Variable* v = alias_.canonical(ref->var);
  VarAccess& va = out->at(v);
  bool exact = true;
  LinSystem sec;
  if (ref->is_array_ref() && !alias_.is_blob(ref->var)) {
    sec = poly::subscripts_to_section(ref->var, ref->idx, symbolic_.resolver_at(s),
                                      &exact);
  } else if (v->is_array()) {
    sec = poly::whole_array_section(v, poly::params_only);
    exact = false;
  }
  if (alias_.is_blob(ref->var)) exact = false;
  if (must && exact) {
    va.sec.M.add(sec);
  } else {
    va.sec.W.add(sec);
  }
}

bool ArrayDataflow::match_reduction_assign(const ir::Stmt* s, AccessInfo* out) {
  // Pattern: X = X op e  (or X = e op X for commutative op; X = X - e as an
  // additive reduction), where X is a scalar or array ref and e is free of
  // X's storage.
  const ir::Expr* lhs = s->lhs;
  const ir::Expr* rhs = s->rhs;
  if (rhs->kind != ir::ExprKind::Binary) return false;
  ir::BinOp op = rhs->bop;
  bool sub_form = op == ir::BinOp::Sub;
  if (!ir::is_reduction_op(op) && !sub_form) return false;
  const ir::Expr* self = nullptr;
  const ir::Expr* other = nullptr;
  if (expr_equal(rhs->a, lhs)) {
    self = rhs->a;
    other = rhs->b;
  } else if (!sub_form && expr_equal(rhs->b, lhs)) {
    self = rhs->b;
    other = rhs->a;
  } else {
    return false;
  }
  (void)self;
  if (refers_to(other, lhs->var, alias_)) return false;
  // Subscripts must not read the reduction variable either.
  for (const ir::Expr* ix : lhs->idx) {
    if (refers_to(ix, lhs->var, alias_)) return false;
  }
  if (sub_form) op = ir::BinOp::Add;

  const ir::Variable* v = alias_.canonical(lhs->var);
  VarAccess& va = out->at(v);
  LinSystem sec;
  if (lhs->is_array_ref() && !alias_.is_blob(lhs->var)) {
    sec = poly::subscripts_to_section(lhs->var, lhs->idx, symbolic_.resolver_at(s),
                                      nullptr);
  } else if (v->is_array()) {
    sec = poly::whole_array_section(v, poly::params_only);
  }
  va.red[op].add(sec);
  // Reads performed by the subscripts and the free operand are ordinary.
  for (const ir::Expr* ix : lhs->idx) {
    ir::for_each_expr(ix, [&](const ir::Expr* n) {
      if (n->is_var_ref() || n->is_array_ref()) record_read(out, n, s);
    });
  }
  ir::for_each_expr(other, [&](const ir::Expr* n) {
    if (n->is_var_ref() || n->is_array_ref()) record_read(out, n, s);
  });
  return true;
}

bool ArrayDataflow::match_reduction_minmax_if(const ir::Stmt* s, AccessInfo* out) {
  // Pattern (§6.2.2.1): if (e REL X) { X = e; }  — a MIN/MAX reduction on X.
  if (!s->else_body.empty() || s->then_body.size() != 1) return false;
  const ir::Stmt* upd = s->then_body[0];
  if (upd->kind != ir::StmtKind::Assign) return false;
  const ir::Expr* cond = s->cond;
  if (cond->kind != ir::ExprKind::Binary || !ir::is_comparison(cond->bop)) return false;
  const ir::Expr* x = upd->lhs;
  const ir::Expr* e = upd->rhs;
  ir::BinOp op;
  if (expr_equal(cond->a, e) && expr_equal(cond->b, x)) {
    // e REL x
    if (cond->bop == ir::BinOp::Lt || cond->bop == ir::BinOp::Le) op = ir::BinOp::Min;
    else if (cond->bop == ir::BinOp::Gt || cond->bop == ir::BinOp::Ge) op = ir::BinOp::Max;
    else return false;
  } else if (expr_equal(cond->a, x) && expr_equal(cond->b, e)) {
    // x REL e
    if (cond->bop == ir::BinOp::Gt || cond->bop == ir::BinOp::Ge) op = ir::BinOp::Min;
    else if (cond->bop == ir::BinOp::Lt || cond->bop == ir::BinOp::Le) op = ir::BinOp::Max;
    else return false;
  } else {
    return false;
  }
  if (refers_to(e, x->var, alias_)) return false;
  for (const ir::Expr* ix : x->idx) {
    if (refers_to(ix, x->var, alias_)) return false;
  }

  const ir::Variable* v = alias_.canonical(x->var);
  VarAccess& va = out->at(v);
  LinSystem sec;
  if (x->is_array_ref() && !alias_.is_blob(x->var)) {
    sec = poly::subscripts_to_section(x->var, x->idx, symbolic_.resolver_at(upd), nullptr);
  } else if (v->is_array()) {
    sec = poly::whole_array_section(v, poly::params_only);
  }
  va.red[op].add(sec);
  for (const ir::Expr* ix : x->idx) {
    ir::for_each_expr(ix, [&](const ir::Expr* n) {
      if (n->is_var_ref() || n->is_array_ref()) record_read(out, n, s);
    });
  }
  ir::for_each_expr(e, [&](const ir::Expr* n) {
    if (n->is_var_ref() || n->is_array_ref()) record_read(out, n, s);
  });
  return true;
}

AccessInfo ArrayDataflow::summarize_stmt(const ir::Stmt* s, ProcFacts& f) {
  // Budget steps for the walk are charged by the mono solver when this
  // procedure's node is popped (cost = number of summarized nodes).
  AccessInfo result = summarize_stmt_impl(s, f);
  f.node_info[s] = result;
  return result;
}

AccessInfo ArrayDataflow::summarize_stmt_impl(const ir::Stmt* s, ProcFacts& f) {
  AccessInfo out;
  switch (s->kind) {
    case ir::StmtKind::Assign: {
      if (match_reduction_assign(s, &out)) return out;
      ir::for_each_expr(s->rhs, [&](const ir::Expr* n) {
        if (n->is_var_ref() || n->is_array_ref()) record_read(&out, n, s);
      });
      for (const ir::Expr* ix : s->lhs->idx) {
        ir::for_each_expr(ix, [&](const ir::Expr* n) {
          if (n->is_var_ref() || n->is_array_ref()) record_read(&out, n, s);
        });
      }
      record_write(&out, s->lhs, s, /*must=*/true);
      return out;
    }
    case ir::StmtKind::If: {
      if (match_reduction_minmax_if(s, &out)) return out;
      AccessInfo cond;
      ir::for_each_expr(s->cond, [&](const ir::Expr* n) {
        if (n->is_var_ref() || n->is_array_ref()) record_read(&cond, n, s);
      });
      AccessInfo tb = summarize_body(s->then_body, f);
      AccessInfo eb = summarize_body(s->else_body, f);
      return AccessInfo::compose(cond, AccessInfo::meet(tb, eb));
    }
    case ir::StmtKind::Do: {
      AccessInfo body = summarize_body(s->body, f);
      f.body_info[s] = body;
      AccessInfo closed = close_loop(s, std::move(body));
      // Bound expressions are read once at entry; the index is written.
      AccessInfo pre;
      for (const ir::Expr* e : {s->lb, s->ub, s->step}) {
        ir::for_each_expr(e, [&](const ir::Expr* n) {
          if (n->is_var_ref() || n->is_array_ref()) record_read(&pre, n, s);
        });
      }
      pre.at(s->ivar).sec.M.add(LinSystem::universe());
      AccessInfo node = AccessInfo::compose(pre, closed);
      f.region_info[regions_.loop_region(s)] = node;
      return node;
    }
    case ir::StmtKind::Call: {
      AccessInfo args;
      const ProcEffects& fx = modref_.of(s->callee);
      for (size_t i = 0; i < s->args.size(); ++i) {
        const ir::Expr* a = s->args[i];
        if (a->is_array_ref()) {
          for (const ir::Expr* ix : a->idx) {
            ir::for_each_expr(ix, [&](const ir::Expr* n) {
              if (n->is_var_ref() || n->is_array_ref()) record_read(&args, n, s);
            });
          }
        } else if (a->is_var_ref()) {
          // Scalar copy-in reads the actual's value when the callee uses it.
          if (!a->var->is_array() && fx.formal_ref[i]) record_read(&args, a, s);
        } else {
          ir::for_each_expr(a, [&](const ir::Expr* n) {
            if (n->is_var_ref() || n->is_array_ref()) record_read(&args, n, s);
          });
        }
      }
      return AccessInfo::compose(args, map_call(s));
    }
    case ir::StmtKind::Print: {
      ir::for_each_expr(s->value, [&](const ir::Expr* n) {
        if (n->is_var_ref() || n->is_array_ref()) record_read(&out, n, s);
      });
      return out;
    }
    case ir::StmtKind::Nop:
      return out;
  }
  return out;
}

AccessInfo ArrayDataflow::summarize_body(const std::vector<ir::Stmt*>& body,
                                         ProcFacts& f) {
  AccessInfo after;
  for (auto it = body.rbegin(); it != body.rend(); ++it) {
    after = AccessInfo::compose(summarize_stmt(*it, f), after);
  }
  return after;
}

// ---------------------------------------------------------------------------
// Loop closure (Fig 5-2 tail + §5.2.2.3)
// ---------------------------------------------------------------------------

poly::SymId ArrayDataflow::loop_index_sym(const ir::Stmt* loop) const {
  // The iteration symbol is the body's generation of the index variable.
  LinearExpr v = symbolic_.value_before(
      loop->body.empty() ? loop : loop->body.front(), loop->ivar);
  if (v.terms.size() == 1 && v.terms[0].second == 1 && v.c == 0) {
    return v.terms[0].first;
  }
  return poly::scalar_sym(loop->ivar, 0);
}

poly::LinSystem ArrayDataflow::loop_bounds(const ir::Stmt* loop) const {
  LinSystem sys;
  auto resolve = symbolic_.resolver_at_loop_entry(loop);
  auto lb = poly::to_affine(loop->lb, resolve);
  auto ub = poly::to_affine(loop->ub, resolve);
  long step = 0;
  bool known_step = ir::eval_const_with_params(loop->step, &step);
  SymId isym = loop_index_sym(loop);
  // For a positive step the range is [lb, ub]; for a negative step it is
  // [ub, lb]; unknown step (cannot happen past the verifier) is unbounded.
  if (!known_step || step > 0) {
    if (lb) {
      LinearExpr e = LinearExpr::var(isym);
      e -= *lb;
      sys.add_ge(std::move(e));
    }
    if (ub && known_step) {
      LinearExpr e = *ub;
      e -= LinearExpr::var(isym);
      sys.add_ge(std::move(e));
    }
  } else {
    if (lb) {
      LinearExpr e = *lb;
      e -= LinearExpr::var(isym);
      sys.add_ge(std::move(e));
    }
    if (ub) {
      LinearExpr e = LinearExpr::var(isym);
      e -= *ub;
      sys.add_ge(std::move(e));
    }
  }
  return sys;
}

AccessInfo ArrayDataflow::close_loop(const ir::Stmt* loop, AccessInfo body) {
  LinSystem bounds = loop_bounds(loop);
  auto variant = [&](SymId s) { return symbolic_.is_variant_sym(loop, s); };
  auto ivar_only_variants = [&](const LinSystem& sys) {
    for (SymId s : sys.symbols()) {
      if (variant(s) && poly::sym_var_id(s) != loop->ivar->id) return false;
    }
    return true;
  };
  bool has_call = loop_has_call(loop);

  AccessInfo out;
  for (auto& [v, va] : body.vars) {
    VarAccess closed;
    auto close_list = [&](const SectionList& list) {
      SectionList bounded;
      for (const LinSystem& p : list.systems()) {
        bounded.add(poly::cache::intersect(p, bounds));
      }
      return bounded.project_out_if(variant);
    };
    closed.sec.R = close_list(va.sec.R);
    closed.sec.W = close_list(va.sec.W);
    for (const auto& [op, list] : va.red) {
      SectionList c = close_list(list);
      if (!c.empty()) closed.red[op] = std::move(c);
    }
    // Must-writes survive closure only when their only iteration-variant
    // symbols are the loop index itself (full-trip DO: every iteration runs).
    SectionList m_keep, m_demote;
    for (const LinSystem& p : va.sec.M.systems()) {
      LinSystem b = poly::cache::intersect(p, bounds);
      if (ivar_only_variants(b)) {
        m_keep.add(b);
      } else {
        m_demote.add(b);
      }
    }
    closed.sec.M = m_keep.project_out_if(variant);
    closed.sec.W.unite(m_demote.project_out_if(variant));

    // Upwards-exposed reads: baseline closure, then the §5.2.2.3 sharpening
    // for call-free recurrences: when all writes are must-writes and there is
    // no cross-iteration anti-dependence (a read of a location later written
    // by another iteration), every write precedes any read of the same
    // location, so the whole-loop must-write kills the exposed section.
    SectionList e_closed = close_list(va.sec.E);
    bool sharpen = !has_call && va.sec.W.empty() && !va.sec.M.empty();
    if (sharpen) {
      // Anti-dependence probe: R at iteration i vs M at iteration i' != i.
      poly::SymMap prime;
      for (const LinSystem& p : va.sec.M.systems()) {
        for (SymId s : p.symbols()) {
          if (variant(s)) prime.set(s, poly::prime_of(s));
        }
      }
      LinSystem bounds2 = bounds.rename(prime);
      SymId isym = poly::scalar_sym(loop->ivar, 0);
      for (SymId s : bounds.symbols()) {
        if (poly::sym_var_id(s) == loop->ivar->id && variant(s)) isym = s;
      }
      // A location read before it is written within the SAME iteration is a
      // loop-independent anti-dependence: the exposed-read set then overlaps
      // the must-write set at equal iteration symbols.
      bool anti = !SectionList::intersect(va.sec.E, va.sec.M).empty();
      // The primed must-write parts do not depend on `r`: compute each once.
      std::vector<LinSystem> primed_m;
      primed_m.reserve(va.sec.M.systems().size());
      for (const LinSystem& m : va.sec.M.systems()) {
        poly::SymMap pm;
        for (SymId s : m.symbols()) {
          if (variant(s)) pm.set(s, poly::prime_of(s));
        }
        primed_m.push_back(poly::cache::intersect(m.rename(pm), bounds2));
      }
      for (const LinSystem& r : va.sec.R.systems()) {
        LinSystem r_bounded = poly::cache::intersect(r, bounds);
        for (const LinSystem& m2 : primed_m) {
          LinSystem probe = poly::cache::intersect(r_bounded, m2);
          // Anti-dependence: a read at iteration i of a location written by a
          // LATER iteration i' > i (flow dependences — writes in earlier
          // iterations — do not invalidate the write-precedes-read argument).
          LinearExpr diff = LinearExpr::var(poly::prime_of(isym));
          diff -= LinearExpr::var(isym);
          diff += LinearExpr::constant(-1);
          probe.add_ge(std::move(diff));  // i' - i >= 1
          if (!probe.is_empty()) anti = true;
        }
      }
      if (!anti) {
        e_closed = e_closed.subtract(closed.sec.M);
      }
    }
    closed.sec.E = std::move(e_closed);
    if (closed.any()) out.vars[v] = std::move(closed);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Procedure summary localization & call-site mapping
// ---------------------------------------------------------------------------

namespace {

bool is_proc_local(const ir::Variable* v, const ir::Procedure* p) {
  return v->kind == ir::VarKind::Local && v->owner == p;
}

bool is_formal_of(const ir::Variable* v, const ir::Procedure* p) {
  return v->kind == ir::VarKind::Formal && v->owner == p;
}

}  // namespace

AccessInfo ArrayDataflow::localize(const ir::Procedure* p, const AccessInfo& info) const {
  // Allowed symbols after localization: dims, SymParams, generation-0 symbols
  // of the procedure's integer scalar formals.
  auto foreign = [&](SymId s) {
    if (poly::is_dim_sym(s)) return false;
    int vid = poly::sym_var_id(s);
    const ir::Variable* v = &prog_.variables()[static_cast<size_t>(vid)];
    if (v->kind == ir::VarKind::SymParam) return false;
    if (is_formal_of(v, p) && v->is_scalar() && v->elem == ir::ScalarType::Int &&
        s == poly::scalar_sym(v, 0)) {
      return false;
    }
    return true;
  };
  AccessInfo out;
  for (const auto& [v, va] : info.vars) {
    if (is_proc_local(v, p)) continue;  // invisible to callers
    VarAccess lv;
    lv.sec.R = va.sec.R.project_out_if(foreign);
    lv.sec.E = va.sec.E.project_out_if(foreign);
    lv.sec.W = va.sec.W.project_out_if(foreign);
    // Must-writes keep only parts free of foreign symbols (projection would
    // weaken them into may-writes).
    for (const LinSystem& m : va.sec.M.systems()) {
      bool clean = true;
      for (SymId s : m.symbols()) clean = clean && !foreign(s);
      if (clean) {
        lv.sec.M.add(m);
      } else {
        lv.sec.W.add(m.project_out_if(foreign));
      }
    }
    for (const auto& [op, list] : va.red) {
      SectionList l = list.project_out_if(foreign);
      if (!l.empty()) lv.red[op] = std::move(l);
    }
    if (lv.any()) out.vars[v] = std::move(lv);
  }
  return out;
}

const AccessInfo& ArrayDataflow::callee_summary(const ir::Procedure* p) const {
  if (solving_) {
    return solve_facts_[static_cast<size_t>(node_of_.at(p))].call_summary;
  }
  return call_summary_.at(p);
}

AccessInfo ArrayDataflow::map_call(const ir::Stmt* call) const {
  const ir::Procedure* callee = call->callee;
  const AccessInfo& cs = callee_summary(callee);
  auto caller_resolver = symbolic_.resolver_at(call);

  // Build the symbol substitutions for the callee's scalar formals.
  struct Subst {
    SymId sym;
    std::optional<LinearExpr> value;  // nullopt: project away
  };
  std::vector<Subst> substs;
  for (size_t i = 0; i < callee->formals.size(); ++i) {
    const ir::Variable* f = callee->formals[i];
    if (!f->is_scalar() || f->elem != ir::ScalarType::Int) continue;
    substs.push_back({poly::scalar_sym(f, 0),
                      poly::to_affine(call->args[i], caller_resolver)});
  }
  auto translate = [&](const SectionList& list, bool must, SectionList* may_spill) {
    SectionList out;
    for (LinSystem sys : list.systems()) {
      bool weakened = false;
      for (const Subst& s : substs) {
        if (!sys.involves(s.sym)) continue;
        if (s.value) {
          sys = sys.substitute(s.sym, *s.value);
        } else {
          sys = poly::cache::project_out(sys, s.sym);
          weakened = true;
        }
      }
      if (must && weakened && may_spill != nullptr) {
        may_spill->add(std::move(sys));
      } else {
        out.add(std::move(sys));
      }
    }
    return out;
  };

  AccessInfo result;
  for (const auto& [v, va] : cs.vars) {
    // Decide the caller-side variable and the dimension transform.
    const ir::Variable* target = nullptr;
    bool conservative = false;
    std::optional<LinearExpr> dim0_shift;  // actual = formal + shift
    if (is_formal_of(v, callee)) {
      size_t pos = 0;
      for (; pos < callee->formals.size(); ++pos) {
        if (callee->formals[pos] == v) break;
      }
      const ir::Expr* a = call->args[pos];
      if (a->is_var_ref()) {
        target = alias_.canonical(a->var);
        if (v->is_array() && (v->rank() != a->var->rank())) conservative = true;
      } else if (a->is_array_ref()) {
        target = alias_.canonical(a->var);
        long flow = 0;
        bool formal_lb1 =
            v->rank() == 1 &&
            ir::eval_const_with_params(v->dims[0].lower, &flow) && flow == 1;
        if (v->rank() == 1 && a->var->rank() == 1 && formal_lb1 &&
            !alias_.is_blob(a->var)) {
          auto off = poly::to_affine(a->idx[0], caller_resolver);
          if (off) {
            LinearExpr shift = *off;
            shift += LinearExpr::constant(-1);  // actual = formal + (off - 1)
            dim0_shift = shift;
          } else {
            conservative = true;
          }
        } else {
          conservative = true;
        }
      } else {
        // Non-lvalue actual for a scalar formal: effects stay in the callee.
        continue;
      }
    } else {
      target = v;  // global / common canonical
    }
    if (alias_.is_blob(target)) conservative = true;

    VarAccess& tv = result.at(target);
    if (conservative) {
      LinSystem whole = target->is_array()
                            ? poly::whole_array_section(target, poly::params_only)
                            : LinSystem::universe();
      if (!va.sec.R.empty()) tv.sec.R.add(whole);
      if (!va.sec.E.empty()) tv.sec.E.add(whole);
      if (!va.sec.W.empty() || !va.sec.M.empty()) tv.sec.W.add(whole);
      if (!va.red.empty()) tv.sec.W.add(whole), tv.sec.R.add(whole), tv.sec.E.add(whole);
      continue;
    }

    auto shift_dims = [&](SectionList list) {
      if (!dim0_shift) return list;
      // dim0_actual = dim0_formal + shift: rename d0 to a scratch symbol,
      // relate, and project the scratch away. The scratch column lies beyond
      // every real variable's symbol range.
      SymId scratch =
          poly::kMaxRank + 2 * poly::kMaxGens * (prog_.num_vars() + 4);
      SectionList out;
      for (const LinSystem& sys : list.systems()) {
        LinSystem renamed = sys.rename({{poly::dim_sym(0), scratch}});
        LinearExpr rel = LinearExpr::var(poly::dim_sym(0));
        rel -= LinearExpr::var(scratch);
        rel -= *dim0_shift;
        renamed.add_eq(std::move(rel));  // d0 - scratch - shift == 0
        out.add(poly::cache::project_out(renamed, scratch));
      }
      return out;
    };

    tv.sec.R.unite(shift_dims(translate(va.sec.R, false, nullptr)));
    tv.sec.E.unite(shift_dims(translate(va.sec.E, false, nullptr)));
    tv.sec.W.unite(shift_dims(translate(va.sec.W, false, nullptr)));
    SectionList spill;
    SectionList m = translate(va.sec.M, true, &spill);
    tv.sec.M.unite(shift_dims(std::move(m)));
    tv.sec.W.unite(shift_dims(std::move(spill)));
    for (const auto& [op, list] : va.red) {
      SectionList l = shift_dims(translate(list, false, nullptr));
      if (!l.empty()) tv.red[op].unite(std::move(l));
    }
  }
  return result;
}

}  // namespace suifx::analysis
