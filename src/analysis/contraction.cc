#include "analysis/contraction.h"

namespace suifx::analysis {

long declared_footprint(const ir::Variable* v) {
  long n = 1;
  for (const ir::Dim& d : v->dims) {
    long lo = 0, hi = 0;
    if (!ir::eval_const_with_params(d.lower, &lo) ||
        !ir::eval_const_with_params(d.upper, &hi)) {
      return 0;
    }
    n *= std::max<long>(0, hi - lo + 1);
  }
  return n;
}

std::vector<ContractedArray> find_contractions(const ir::Stmt* loop,
                                               const ArrayDataflow& df,
                                               const graph::RegionTree& regions,
                                               const ArrayLiveness& live) {
  std::vector<ContractedArray> out;
  if (live.mode() != LivenessMode::Full) return out;
  DependenceAnalysis dep(df);
  LoopVerdict verdict = dep.analyze(loop);
  const graph::Region* lr = regions.loop_region(loop);
  poly::SymId isym = df.loop_index_sym(loop);

  for (const auto& [v, vv] : verdict.vars) {
    if (!v->is_array()) continue;
    // Written every iteration, values produced and consumed within the
    // iteration (no exposed reads, no cross-iteration flow), and dead at
    // loop exit. Both the privatizable case and the already-independent
    // (disjoint-writes) case qualify.
    bool private_like =
        (vv.cls == VarClass::Privatizable && !vv.needs_copy_in) ||
        (vv.cls == VarClass::Parallel && vv.exposed.empty());
    if (!private_like) continue;
    if (!live.dead_at_exit(lr, v)) continue;

    ContractedArray ca;
    ca.var = v;
    ca.original_elems = declared_footprint(v);
    // Dimensions pinned to the loop index collapse away.
    std::vector<bool> tied(static_cast<size_t>(v->rank()), false);
    const VarAccess* body = df.body_info(loop).find(v);
    if (body != nullptr) {
      for (int k = 0; k < v->rank(); ++k) {
        for (const poly::LinSystem& p : body->sec.M.systems()) {
          for (const poly::Constraint& c : p.constraints()) {
            if (c.is_eq && c.expr.involves(poly::dim_sym(k)) &&
                c.expr.involves(isym)) {
              tied[static_cast<size_t>(k)] = true;
            }
          }
        }
      }
    }
    long per_iter = ca.original_elems;
    for (int k = 0; k < v->rank(); ++k) {
      if (!tied[static_cast<size_t>(k)]) continue;
      ++ca.collapsed_dims;
      long lo = 0, hi = 0;
      if (per_iter > 0 &&
          ir::eval_const_with_params(v->dims[static_cast<size_t>(k)].lower, &lo) &&
          ir::eval_const_with_params(v->dims[static_cast<size_t>(k)].upper, &hi) &&
          hi >= lo) {
        per_iter /= (hi - lo + 1);
      }
    }
    ca.contracted_elems = per_iter;
    if (ca.collapsed_dims > 0) out.push_back(ca);
  }
  return out;
}

}  // namespace suifx::analysis
