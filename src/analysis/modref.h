// Interprocedural MOD/REF analysis: for each procedure, which canonical
// global/common variables it (or any callee) may modify or reference, plus
// per-formal MOD/REF flags. Computed bottom-up over the acyclic call graph —
// the "first step" of interprocedural SSA construction in §3.4.3 ("find, for
// each procedure, all the variables that are modified or referenced by the
// procedure and its callees; handle them as if they were parameters").
#pragma once

#include <set>
#include <vector>

#include "analysis/alias.h"
#include "graph/callgraph.h"
#include "ir/ir.h"

namespace suifx::analysis {

struct ProcEffects {
  std::set<const ir::Variable*> mod;  // canonical globals/commons modified
  std::set<const ir::Variable*> ref;  // canonical globals/commons referenced
  std::vector<bool> formal_mod;       // indexed by formal position
  std::vector<bool> formal_ref;
};

class ModRef {
 public:
  ModRef(const ir::Program& prog, const AliasAnalysis& alias,
         const graph::CallGraph& cg);

  const ProcEffects& of(const ir::Procedure* p) const { return effects_.at(p); }

  /// The caller-side variable an out-flowing formal binds to at `call`
  /// (null when the actual is not an lvalue).
  static const ir::Variable* actual_var(const ir::Stmt* call, size_t formal_ix);

 private:
  std::map<const ir::Procedure*, ProcEffects> effects_;
};

}  // namespace suifx::analysis
