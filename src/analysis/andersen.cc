#include "analysis/andersen.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "dataflow/mono.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace suifx::analysis {

long declared_footprint_elems(const ir::Variable* v) {
  long n = 1;
  for (const ir::Dim& d : v->dims) {
    long lo = 0, hi = 0;
    if (!ir::eval_const_with_params(d.lower, &lo) ||
        !ir::eval_const_with_params(d.upper, &hi)) {
      return -1;  // unknown extent
    }
    n *= std::max<long>(0, hi - lo + 1);
  }
  return n;
}

namespace {

/// Column-major linearized 0-based element offset of an array-ref with
/// compile-time-constant subscripts; nullopt when any subscript or bound is
/// not a constant.
std::optional<long> const_elem_offset(const ir::Expr* ref) {
  long off = 0;
  long stride = 1;
  const ir::Variable* v = ref->var;
  for (size_t d = 0; d < ref->idx.size() && d < v->dims.size(); ++d) {
    long k = 0, lo = 0, hi = 0;
    if (!ir::eval_const_with_params(ref->idx[d], &k) ||
        !ir::eval_const_with_params(v->dims[d].lower, &lo)) {
      return std::nullopt;
    }
    off += (k - lo) * stride;
    if (!ir::eval_const_with_params(v->dims[d].upper, &hi)) return std::nullopt;
    stride *= std::max<long>(0, hi - lo + 1);
  }
  return off;
}

/// One way a formal can receive block storage at a callsite.
struct Binding {
  const ir::Expr* arg = nullptr;  // VarRef or ArrayRef actual
};

bool intervals_intersect(long alo, long ahi, long blo, long bhi) {
  const long inf = std::numeric_limits<long>::max();
  if (ahi < 0) ahi = inf;
  if (bhi < 0) bhi = inf;
  return alo < bhi && blo < ahi;
}

}  // namespace

Andersen::Andersen(const ir::Program& prog) : prog_(prog) {
  support::trace::TraceSpan span("pass/andersen");
  support::Metrics::ScopedTimer timer(support::Metrics::global(), "andersen.build");
  SUIFX_FAULT_POINT("alias.andersen");

  // Nodes: every array formal, in program order (determinism). Edges: a
  // chained binding caller-formal -> callee-formal; direct COMMON-member
  // bindings are seeds recomputed by the transfer.
  std::vector<const ir::Variable*> formals;
  std::map<const ir::Variable*, int> node_of;
  for (const ir::Procedure& p : prog.procedures()) {
    for (const ir::Variable* f : p.formals) {
      if (!f->is_array()) continue;
      node_of[f] = static_cast<int>(formals.size());
      formals.push_back(f);
    }
  }
  const int n = static_cast<int>(formals.size());
  for (const ir::Variable* f : formals) views_[f];  // stable fact slots

  std::vector<std::vector<Binding>> bindings(static_cast<size_t>(n));
  dataflow::DepGraph g(n);
  for (const ir::Procedure& p : prog.procedures()) {
    p.for_each([&](const ir::Stmt* s) {
      if (s->kind != ir::StmtKind::Call) return;
      for (size_t i = 0; i < s->args.size(); ++i) {
        const ir::Variable* f = s->callee->formals[i];
        if (!f->is_array()) continue;
        const ir::Expr* a = s->args[i];
        if (!a->is_var_ref() && !a->is_array_ref()) continue;
        const ir::Variable* av = a->var;
        int dst = node_of.at(f);
        if (av->kind == ir::VarKind::CommonMember) {
          bindings[static_cast<size_t>(dst)].push_back({a});
        } else if (av->kind == ir::VarKind::Formal && av->is_array()) {
          bindings[static_cast<size_t>(dst)].push_back({a});
          g.add_edge(node_of.at(av), dst);
        }
      }
    });
  }

  struct Client {
    Andersen* self;
    const std::vector<const ir::Variable*>* formals;
    const std::vector<std::vector<Binding>>* bindings;
    bool transfer(int i) {
      const ir::Variable* f = (*formals)[static_cast<size_t>(i)];
      long ff = declared_footprint_elems(f);
      std::set<LocInterval>& mine = self->views_[f];
      bool changed = false;
      auto add = [&](const LocInterval& v) { changed |= mine.insert(v).second; };
      for (const Binding& b : (*bindings)[static_cast<size_t>(i)]) {
        const ir::Expr* a = b.arg;
        const ir::Variable* av = a->var;
        auto eo = a->is_array_ref() ? const_elem_offset(a)
                                    : std::optional<long>(0);
        if (av->kind == ir::VarKind::CommonMember) {
          if (eo) {
            long lo = av->common_offset + *eo;
            add({av->common, lo, ff < 0 ? -1 : lo + ff, true});
          } else {
            long fa = declared_footprint_elems(av);
            long lo = av->common_offset;
            long hi = (fa >= 0 && ff >= 0) ? lo + fa - 1 + ff : -1;
            add({av->common, lo, hi, false});
          }
        } else {  // chained caller formal
          for (const LocInterval& v : self->views_.at(av)) {
            if (eo && v.exact) {
              long lo = v.lo + *eo;
              add({v.block, lo, ff < 0 ? -1 : lo + ff, true});
            } else if (eo) {
              // Start somewhere in [v.lo, v.hi): shift the whole range.
              long lo = v.lo + *eo;
              long hi = (v.hi >= 0 && ff >= 0) ? v.hi - 1 + *eo + ff : -1;
              add({v.block, lo, hi, false});
            } else {
              // Unknown subscript: the new start stays inside the parent's
              // touched region, extended by this formal's footprint.
              long hi = (v.hi >= 0 && ff >= 0) ? v.hi - 1 + ff : -1;
              add({v.block, v.lo, hi, false});
            }
          }
        }
      }
      return changed;
    }
    uint64_t cost(int) const { return 1; }
  };
  Client client{this, &formals, &bindings};
  dataflow::SolveOptions opts;
  opts.pass = "andersen";
  dataflow::SolveStats stats = dataflow::solve(client, g, opts);
  iterations_ = stats.iterations;
}

const std::set<LocInterval>& Andersen::views_of(const ir::Variable* formal) const {
  static const std::set<LocInterval> kEmpty;
  auto it = views_.find(formal);
  return it != views_.end() ? it->second : kEmpty;
}

AliasRefinement Andersen::refine(const AliasAnalysis& tier0) const {
  AliasRefinement out;
  std::map<const ir::CommonBlock*, std::vector<const ir::Variable*>> by_block;
  for (const ir::Variable& v : prog_.variables()) {
    if (v.kind == ir::VarKind::CommonMember && tier0.is_blob(&v)) {
      by_block[v.common].push_back(&v);
    }
  }
  if (by_block.empty()) return out;
  std::map<const ir::CommonBlock*, std::vector<std::pair<long, long>>> fviews;
  for (const auto& [f, vs] : views_) {
    for (const LocInterval& v : vs) fviews[v.block].push_back({v.lo, v.hi});
  }
  for (const auto& [blk, members] : by_block) {
    const auto& views = fviews[blk];
    for (const ir::Variable* m : members) {
      long fm = declared_footprint_elems(m);
      if (fm < 0) continue;  // unknown extent: stays in the blob
      long mlo = m->common_offset, mhi = m->common_offset + fm;
      bool ok = true;
      for (const ir::Variable* w : members) {
        if (w == m) continue;
        long fw = declared_footprint_elems(w);
        // The same view re-declared by another procedure (same offset, same
        // footprint, same shape) is the same storage — the carve-out unifies
        // them into one precise class — so it does not veto.
        if (w->common_offset == m->common_offset && fw == fm &&
            w->rank() == m->rank()) {
          continue;
        }
        if (intervals_intersect(w->common_offset,
                                fw < 0 ? -1 : w->common_offset + fw, mlo, mhi)) {
          ok = false;  // declared views overlap: both stay collapsed
          break;
        }
      }
      for (const auto& [vlo, vhi] : views) {
        if (!ok) break;
        if (!intervals_intersect(vlo, vhi, mlo, mhi)) continue;
        // A view fully inside m can only have originated from m itself; a
        // straddling view could route another class's accesses into m.
        if (!(vlo >= mlo && vhi >= 0 && vhi <= mhi)) ok = false;
      }
      if (ok) out.precise.insert(m);
    }
  }
  return out;
}

}  // namespace suifx::analysis
