// Array contraction legality (§5.6): an array may be contracted within a
// loop — replaced by a scalar or an array of lower dimensionality — when it
// has no upwards-exposed reads in the loop, carries no cross-iteration
// dependence (it is privatizable with no copy-in), and is not live at the
// loop's exit. The contracted footprint is the data written in a single
// iteration.
#pragma once

#include "analysis/depend.h"
#include "analysis/liveness.h"

namespace suifx::analysis {

struct ContractedArray {
  const ir::Variable* var = nullptr;
  long original_elems = 0;
  long contracted_elems = 0;  // per-iteration footprint
  /// Dimensions whose subscript is tied to the contracting loop's index
  /// collapse away (rank reduction).
  int collapsed_dims = 0;
};

/// Arrays contractible within `loop` given the dependence and liveness
/// analyses (full liveness required: without it the exit-liveness condition
/// cannot be established and the list is empty).
std::vector<ContractedArray> find_contractions(const ir::Stmt* loop,
                                               const ArrayDataflow& df,
                                               const graph::RegionTree& regions,
                                               const ArrayLiveness& live);

/// Declared footprint in elements (0 when bounds are not compile-time
/// evaluable over parameters).
long declared_footprint(const ir::Variable* v);

}  // namespace suifx::analysis
