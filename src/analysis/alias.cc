#include "analysis/alias.h"

#include <algorithm>

#include "support/budget.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace suifx::analysis {

long AliasAnalysis::footprint_elems(const ir::Variable* v) const {
  long n = 1;
  for (const ir::Dim& d : v->dims) {
    long lo = 0, hi = 0;
    if (!ir::eval_const_with_params(d.lower, &lo) ||
        !ir::eval_const_with_params(d.upper, &hi)) {
      return -1;  // unknown extent
    }
    n *= std::max<long>(0, hi - lo + 1);
  }
  return n;
}

AliasAnalysis::AliasAnalysis(const ir::Program& prog, bool unify_overlays)
    : prog_(prog) {
  build(unify_overlays, nullptr);
}

AliasAnalysis::AliasAnalysis(const ir::Program& prog, const AliasRefinement& refine,
                             bool unify_overlays)
    : prog_(prog) {
  build(unify_overlays, &refine);
}

void AliasAnalysis::build(bool unify_overlays, const AliasRefinement* refine) {
  support::trace::TraceSpan span("pass/alias");
  support::Metrics::ScopedTimer timer(support::Metrics::global(), "alias.build");
  SUIFX_FAULT_POINT("pass.alias.entry");
  support::Budget::charge_current();
  // Group common members per block.
  std::map<const ir::CommonBlock*, std::vector<const ir::Variable*>> by_block;
  for (const ir::Variable& v : prog_.variables()) {
    if (v.kind == ir::VarKind::CommonMember) by_block[v.common].push_back(&v);
  }
  for (auto& [blk, members] : by_block) {
    // Detect partial overlaps: members at different offsets whose extents
    // intersect, or members at the same offset with different footprints.
    bool blob = false;
    for (size_t i = 0; i < members.size() && !blob; ++i) {
      for (size_t j = i + 1; j < members.size() && !blob; ++j) {
        const ir::Variable* a = members[i];
        const ir::Variable* b = members[j];
        long fa = footprint_elems(a);
        long fb = footprint_elems(b);
        if (a->common_offset == b->common_offset) {
          if (fa < 0 || fb < 0 || fa != fb || a->rank() != b->rank()) blob = true;
          continue;
        }
        if (fa < 0 || fb < 0) {
          blob = true;
          continue;
        }
        long a_lo = a->common_offset, a_hi = a->common_offset + fa;
        long b_lo = b->common_offset, b_hi = b->common_offset + fb;
        if (a_lo < b_hi && b_lo < a_hi) blob = true;  // partial overlap
      }
    }
    // Canonical member per offset: the first declared. In no-unify mode
    // (the §5.5 split hypothesis) distinct-NAMED overlays stay separate, but
    // same-named views declared by different procedures remain one logical
    // variable (tistep's vz and vps's vz are the same view).
    std::map<long, const ir::Variable*> rep_at;
    std::map<std::pair<long, std::string>, const ir::Variable*> rep_named;
    for (const ir::Variable* m : members) {
      auto [it, inserted] = rep_at.insert({m->common_offset, m});
      auto [nit, ninserted] =
          rep_named.insert({{m->common_offset, m->name}, m});
      canon_[m] = blob ? members.front() : (unify_overlays ? it->second : nit->second);
      blob_[m] = blob;
    }
    if (!blob) continue;
    // Tier-1 carve-out: members the Andersen oracle proved untouchable keep
    // precise classes (per-offset reps among themselves); the rest of the
    // block collapses onto its first non-precise member.
    auto precise = [&](const ir::Variable* m) {
      return refine != nullptr && refine->precise.count(m) != 0;
    };
    const ir::Variable* blob_rep = nullptr;
    for (const ir::Variable* m : members) {
      if (!precise(m)) {
        blob_rep = m;
        break;
      }
    }
    if (blob_rep == nullptr) blob_rep = members.front();
    std::map<long, const ir::Variable*> prep_at;
    std::map<std::pair<long, std::string>, const ir::Variable*> prep_named;
    for (const ir::Variable* m : members) {
      if (precise(m)) {
        auto [it, inserted] = prep_at.insert({m->common_offset, m});
        auto [nit, ninserted] =
            prep_named.insert({{m->common_offset, m->name}, m});
        canon_[m] = unify_overlays ? it->second : nit->second;
        blob_[m] = false;
      } else {
        canon_[m] = blob_rep;
        blob_[m] = true;
      }
    }
  }
}

const ir::Variable* AliasAnalysis::canonical(const ir::Variable* v) const {
  auto it = canon_.find(v);
  return it != canon_.end() ? it->second : v;
}

bool AliasAnalysis::may_alias(const ir::Variable* a, const ir::Variable* b) const {
  if (a == b) return true;
  if (a->kind == ir::VarKind::CommonMember && b->kind == ir::VarKind::CommonMember &&
      a->common == b->common) {
    if (canonical(a) == canonical(b)) return true;
    // A carved-out precise member vs a blob member falls through to the
    // interval check: the refinement already proved the precise member's
    // declared storage disjoint from every other view of the block.
    if (is_blob(a) && is_blob(b)) return true;
    // Distinct offsets with disjoint footprints: no alias.
    long fa = footprint_elems(a);
    long fb = footprint_elems(b);
    if (fa < 0 || fb < 0) return true;
    long a_lo = a->common_offset, a_hi = a->common_offset + fa;
    long b_lo = b->common_offset, b_hi = b->common_offset + fb;
    return a_lo < b_hi && b_lo < a_hi;
  }
  return false;
}

bool AliasAnalysis::is_blob(const ir::Variable* v) const {
  auto it = blob_.find(v);
  return it != blob_.end() && it->second;
}

std::vector<const ir::Variable*> AliasAnalysis::class_members(
    const ir::Variable* canon) const {
  std::vector<const ir::Variable*> out;
  for (const ir::Variable& v : prog_.variables()) {
    if (canonical(&v) == canon) out.push_back(&v);
  }
  return out;
}

std::map<const ir::Variable*, std::vector<const ir::Variable*>>
AliasAnalysis::all_classes() const {
  std::map<const ir::Variable*, std::vector<const ir::Variable*>> out;
  for (const ir::Variable& v : prog_.variables()) {
    out[canonical(&v)].push_back(&v);
  }
  return out;
}

}  // namespace suifx::analysis
