// Tier-1 alias oracle: an inclusion-based ("Andersen-style") location-set
// analysis over COMMON storage, consulted lazily when the Steensgaard tier
// (analysis/alias.h) has collapsed a block into a blob that blocks a loop
// verdict. Where Steensgaard unifies — one partial overlap anywhere poisons
// the whole block — this tier keeps a directional view: every variable that
// can denote block storage (common members, and array formals bound to them
// through arbitrarily deep call chains) gets a SET of element intervals it
// may touch, propagated along subset constraints formal ⊇ shift(actual)
// until fixpoint. The constraint graph is solved by the shared mono engine
// (dataflow/mono.h) as its one genuinely iterative client.
//
// Refinement rule (v1, docs/dataflow.md): a member `m` of a blob block is
// carved back out as a precise class iff its own extent is known and every
// other view of the block — other members' declared intervals and every
// formal's propagated view — either misses m's interval entirely or lies
// fully inside it (a view fully inside m can only have originated from m,
// so it is just an access to m; a straddling view could smuggle accesses
// recorded under another class into m's storage, which would be unsound).
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "analysis/alias.h"
#include "ir/ir.h"

namespace suifx::analysis {

/// Compile-time element footprint of a variable's declared dimensions; -1
/// when any bound is not a constant (shared by the tiered alias oracle and
/// the escalation payoff model).
long declared_footprint_elems(const ir::Variable* v);

/// A contiguous element interval of one COMMON block that some variable may
/// view: [lo, hi) in block-element units; hi == -1 means the extent is
/// unknown (the view reaches to the end of the block, conservatively).
struct LocInterval {
  const ir::CommonBlock* block = nullptr;
  long lo = 0;
  long hi = 0;
  /// True when the view's start position is exactly `lo` (a direct binding
  /// with constant subscripts, propagated through exact chains). Inexact
  /// views widen per hop: the start may be anywhere inside [lo, hi).
  bool exact = true;

  bool operator<(const LocInterval& o) const {
    if (block != o.block) {
      return std::less<const ir::CommonBlock*>()(block, o.block);
    }
    if (lo != o.lo) return lo < o.lo;
    if (hi != o.hi) return hi < o.hi;
    return exact < o.exact;
  }
  bool operator==(const LocInterval& o) const {
    return block == o.block && lo == o.lo && hi == o.hi && exact == o.exact;
  }
};

class Andersen {
 public:
  explicit Andersen(const ir::Program& prog);

  /// The block intervals `formal` may view through any call chain. Empty for
  /// formals never bound to COMMON storage.
  const std::set<LocInterval>& views_of(const ir::Variable* formal) const;

  /// Members of tier-0 blob blocks whose storage no other view can touch.
  AliasRefinement refine(const AliasAnalysis& tier0) const;

  /// Solver iterations taken to reach the inclusion fixpoint (the mono
  /// engine's `dataflow.andersen.iterations`).
  uint64_t iterations() const { return iterations_; }

 private:
  const ir::Program& prog_;
  std::map<const ir::Variable*, std::set<LocInterval>> views_;
  uint64_t iterations_ = 0;
};

}  // namespace suifx::analysis
