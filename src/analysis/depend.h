// Loop-level dependence testing, privatization, and reduction validation
// (§2.4, §6.2.2.4): decides for each variable accessed in a loop whether its
// accesses carry a cross-iteration dependence, whether privatization or
// reduction transformation eliminates it, and classifies the variable the
// way Fig 4-9 reports (parallel / privatizable / reduction × array/scalar).
//
// Mechanism: the loop-body summary (iteration symbols live) is paired with a
// primed copy of itself — every iteration-variant symbol renamed to its
// primed twin — plus the loop bounds for both copies and i < i' (both strict
// orders are probed). Scalars participate with rank-0 (universe) sections.
#pragma once

#include <atomic>
#include <mutex>

#include "analysis/array_dataflow.h"

namespace suifx::analysis {

enum class VarClass : uint8_t {
  ReadOnly,       // never written in the loop: no constraint
  Parallel,       // written, but no cross-iteration conflict
  Privatizable,   // conflict removed by giving each processor a copy
  Reduction,      // all conflicting accesses are commutative updates
  LoopIndex,      // the loop's own index
  Dependent,      // an unresolved loop-carried dependence
};

const char* to_string(VarClass c);

struct VarVerdict {
  VarClass cls = VarClass::ReadOnly;
  ir::BinOp red_op = ir::BinOp::Add;   // valid when cls == Reduction
  poly::SectionList red_region;        // closed reduction region (Reduction)
  /// Privatizable details:
  bool needs_copy_in = false;   // exposed reads from before the loop
  /// True when every iteration must-writes exactly the same region, so the
  /// last iteration can finalize (the pre-liveness SUIF rule, §5.4).
  bool same_region_every_iter = false;
  /// Exposed-read section of one iteration (diagnostics / Explorer display).
  poly::SectionList exposed;
};

struct LoopVerdict {
  std::map<const ir::Variable*, VarVerdict> vars;
  bool parallel = false;        // every variable resolved
  int num_dependences = 0;      // variables left Dependent (Guru metric)
  bool has_io = false;
  std::vector<const ir::Variable*> dependent_vars() const;
};

class DependenceAnalysis {
 public:
  /// `enable_reductions=false` demotes every recognized commutative-update
  /// region to ordinary accesses — the Chapter 6 "without reduction
  /// analysis" baseline.
  explicit DependenceAnalysis(const ArrayDataflow& df, bool enable_reductions = true)
      : df_(df), enable_reductions_(enable_reductions) {}

  /// Analyze one loop. `assume_private`/`assume_parallel` carry user
  /// assertions from the Explorer (§2.8): variables asserted privatizable or
  /// independent are excluded from dependence testing.
  LoopVerdict analyze(const ir::Stmt* loop,
                      const std::set<const ir::Variable*>& assume_private = {},
                      const std::set<const ir::Variable*>& assume_parallel = {}) const;

  /// Does `list`@i intersect `other`@i' for some i != i' within bounds?
  bool cross_iteration_overlap(const ir::Stmt* loop, const poly::SectionList& a,
                               const poly::SectionList& b) const;

  /// Forward-only variant: does `a`@i intersect `b`@i' for some i < i'?
  /// This is the directed test the PDG builder uses to orient carried data
  /// edges source-at-earlier-iteration -> sink-at-later-iteration.
  bool cross_iteration_overlap_directed(const ir::Stmt* loop,
                                        const poly::SectionList& a,
                                        const poly::SectionList& b) const;

 private:
  poly::SymMap prime_map(const ir::Stmt* loop, const AccessInfo& body) const;
  bool overlap_probe(const ir::Stmt* loop, const poly::SectionList& a,
                     const poly::SectionList& b, bool directed) const;

  const ArrayDataflow& df_;
  bool enable_reductions_ = true;

  /// Rendered provenance details (dependence pairs, reduction regions) are
  /// deterministic per (loop, variable): the sections they print come from
  /// the immutable dataflow summaries, and user assertions only skip the
  /// branches that emit them. Memoized so re-analysis — the serial planner
  /// re-runs every loop per plan() call — pays the statement walk and
  /// polyhedral rendering once, keeping the ledger's suite overhead within
  /// the CI perf-smoke bound (docs/provenance.md).
  using ProvMemo =
      std::map<std::pair<const ir::Stmt*, const ir::Variable*>, std::string>;
  mutable std::mutex prov_mu_;  // analyze() runs concurrently under the Driver
  mutable ProvMemo prov_dep_memo_;
  mutable ProvMemo prov_red_memo_;
  /// Alias merging is loop-independent, so the merged-variable details are
  /// built once for the whole program (one storage-class scan) and read
  /// lock-free afterwards: absent = not merged, no note to emit (the common
  /// case, checked for every variable of every analyzed loop).
  void build_alias_memo() const;
  mutable std::atomic<bool> prov_alias_ready_{false};
  mutable std::map<const ir::Variable*, std::string> prov_alias_memo_;
};

}  // namespace suifx::analysis
