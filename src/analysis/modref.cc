#include "analysis/modref.h"

#include "support/budget.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace suifx::analysis {

namespace {

bool is_global_storage(const ir::Variable* v) {
  return v->kind == ir::VarKind::Global || v->kind == ir::VarKind::CommonMember;
}

int formal_index(const ir::Procedure* p, const ir::Variable* v) {
  for (size_t i = 0; i < p->formals.size(); ++i) {
    if (p->formals[i] == v) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

const ir::Variable* ModRef::actual_var(const ir::Stmt* call, size_t formal_ix) {
  const ir::Expr* a = call->args[formal_ix];
  if (a->is_var_ref() || a->is_array_ref()) return a->var;
  return nullptr;
}

ModRef::ModRef(const ir::Program& prog, const AliasAnalysis& alias,
               const graph::CallGraph& cg) {
  (void)prog;
  support::trace::TraceSpan span("pass/modref");
  support::Metrics::ScopedTimer timer(support::Metrics::global(), "modref.build");
  SUIFX_FAULT_POINT("pass.modref.entry");
  for (ir::Procedure* p : cg.bottom_up()) {
    support::Budget::charge_current();
    ProcEffects fx;
    fx.formal_mod.assign(p->formals.size(), false);
    fx.formal_ref.assign(p->formals.size(), false);

    auto record = [&](const ir::Variable* v, bool is_write) {
      if (is_global_storage(v)) {
        const ir::Variable* c = alias.canonical(v);
        (is_write ? fx.mod : fx.ref).insert(c);
        return;
      }
      int fi = formal_index(p, v);
      if (fi >= 0) {
        (is_write ? fx.formal_mod : fx.formal_ref)[static_cast<size_t>(fi)] = true;
      }
    };

    p->for_each([&](ir::Stmt* s) {
      if (s->kind == ir::StmtKind::Call) {
        // Map the callee's (already computed) effects into this procedure.
        const ProcEffects& ce = effects_.at(s->callee);
        for (const ir::Variable* g : ce.mod) fx.mod.insert(g);
        for (const ir::Variable* g : ce.ref) fx.ref.insert(g);
        for (size_t i = 0; i < s->args.size(); ++i) {
          const ir::Variable* av = actual_var(s, i);
          if (av == nullptr) continue;  // non-lvalue actual: copy-in only
          if (ce.formal_mod[i]) record(av, /*is_write=*/true);
          if (ce.formal_ref[i]) record(av, /*is_write=*/false);
        }
        // Subscripts of actuals and non-lvalue actual expressions are plain
        // reads inside this procedure.
        for (const ir::Expr* a : s->args) {
          if (a->is_array_ref()) {
            for (const ir::Expr* ix : a->idx) {
              ir::for_each_expr(ix, [&](const ir::Expr* n) {
                if (n->is_var_ref() || n->is_array_ref()) record(n->var, false);
              });
            }
          } else if (!a->is_var_ref()) {
            ir::for_each_expr(a, [&](const ir::Expr* n) {
              if (n->is_var_ref() || n->is_array_ref()) record(n->var, false);
            });
          }
        }
        return;
      }
      for (const ir::Access& acc : ir::direct_accesses(s)) {
        record(acc.var, acc.is_write);
      }
    });
    effects_[p] = std::move(fx);
  }
}

}  // namespace suifx::analysis
