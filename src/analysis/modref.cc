#include "analysis/modref.h"

#include "dataflow/mono.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace suifx::analysis {

namespace {

bool is_global_storage(const ir::Variable* v) {
  return v->kind == ir::VarKind::Global || v->kind == ir::VarKind::CommonMember;
}

int formal_index(const ir::Procedure* p, const ir::Variable* v) {
  for (size_t i = 0; i < p->formals.size(); ++i) {
    if (p->formals[i] == v) return static_cast<int>(i);
  }
  return -1;
}

/// One procedure's transfer: recompute its effects from the body plus the
/// (sealed) effects of its callees.
ProcEffects compute_effects(ir::Procedure* p, const AliasAnalysis& alias,
                            const std::vector<ProcEffects>& facts,
                            const std::map<const ir::Procedure*, int>& node_of) {
  ProcEffects fx;
  fx.formal_mod.assign(p->formals.size(), false);
  fx.formal_ref.assign(p->formals.size(), false);

  auto record = [&](const ir::Variable* v, bool is_write) {
    if (is_global_storage(v)) {
      const ir::Variable* c = alias.canonical(v);
      (is_write ? fx.mod : fx.ref).insert(c);
      return;
    }
    int fi = formal_index(p, v);
    if (fi >= 0) {
      (is_write ? fx.formal_mod : fx.formal_ref)[static_cast<size_t>(fi)] = true;
    }
  };

  p->for_each([&](ir::Stmt* s) {
    if (s->kind == ir::StmtKind::Call) {
      // Map the callee's (already sealed) effects into this procedure.
      const ProcEffects& ce = facts[static_cast<size_t>(node_of.at(s->callee))];
      for (const ir::Variable* g : ce.mod) fx.mod.insert(g);
      for (const ir::Variable* g : ce.ref) fx.ref.insert(g);
      for (size_t i = 0; i < s->args.size(); ++i) {
        const ir::Variable* av = ModRef::actual_var(s, i);
        if (av == nullptr) continue;  // non-lvalue actual: copy-in only
        if (ce.formal_mod[i]) record(av, /*is_write=*/true);
        if (ce.formal_ref[i]) record(av, /*is_write=*/false);
      }
      // Subscripts of actuals and non-lvalue actual expressions are plain
      // reads inside this procedure.
      for (const ir::Expr* a : s->args) {
        if (a->is_array_ref()) {
          for (const ir::Expr* ix : a->idx) {
            ir::for_each_expr(ix, [&](const ir::Expr* n) {
              if (n->is_var_ref() || n->is_array_ref()) record(n->var, false);
            });
          }
        } else if (!a->is_var_ref()) {
          ir::for_each_expr(a, [&](const ir::Expr* n) {
            if (n->is_var_ref() || n->is_array_ref()) record(n->var, false);
          });
        }
      }
      return;
    }
    for (const ir::Access& acc : ir::direct_accesses(s)) {
      record(acc.var, acc.is_write);
    }
  });
  return fx;
}

}  // namespace

const ir::Variable* ModRef::actual_var(const ir::Stmt* call, size_t formal_ix) {
  const ir::Expr* a = call->args[formal_ix];
  if (a->is_var_ref() || a->is_array_ref()) return a->var;
  return nullptr;
}

ModRef::ModRef(const ir::Program& prog, const AliasAnalysis& alias,
               const graph::CallGraph& cg) {
  (void)prog;
  support::trace::TraceSpan span("pass/modref");
  support::Metrics::ScopedTimer timer(support::Metrics::global(), "modref.build");
  SUIFX_FAULT_POINT("pass.modref.entry");

  // Mono-solver client (docs/dataflow.md): one node per procedure, an edge
  // callee -> caller (bottom-up flow). No recursion, so every transfer seals
  // its node in one application.
  const std::vector<ir::Procedure*>& procs = cg.bottom_up();
  const int n = static_cast<int>(procs.size());
  std::map<const ir::Procedure*, int> node_of;
  for (int i = 0; i < n; ++i) node_of[procs[static_cast<size_t>(i)]] = i;

  dataflow::DepGraph g(n);
  for (int i = 0; i < n; ++i) {
    procs[static_cast<size_t>(i)]->for_each([&](const ir::Stmt* s) {
      if (s->kind == ir::StmtKind::Call) g.add_edge(node_of.at(s->callee), i);
    });
  }

  std::vector<ProcEffects> facts(static_cast<size_t>(n));
  struct Client {
    const std::vector<ir::Procedure*>* procs;
    const AliasAnalysis* alias;
    const std::map<const ir::Procedure*, int>* node_of;
    std::vector<ProcEffects>* facts;
    bool transfer(int i) {
      (*facts)[static_cast<size_t>(i)] = compute_effects(
          (*procs)[static_cast<size_t>(i)], *alias, *facts, *node_of);
      return true;  // acyclic graph: each node runs exactly once
    }
    uint64_t cost(int) const { return 1; }  // pre-port charge: one per proc
  };
  Client client{&procs, &alias, &node_of, &facts};
  dataflow::SolveOptions opts;
  opts.pass = "modref";
  dataflow::solve(client, g, opts);

  for (int i = 0; i < n; ++i) {
    effects_[procs[static_cast<size_t>(i)]] = std::move(facts[static_cast<size_t>(i)]);
  }
}

}  // namespace suifx::analysis
