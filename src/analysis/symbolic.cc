#include "analysis/symbolic.h"

namespace suifx::analysis {

using poly::LinearExpr;

Symbolic::Symbolic(const ir::Program& prog, const AliasAnalysis& alias,
                   const ModRef& modref, const graph::CallGraph& cg)
    : prog_(prog), alias_(alias), modref_(modref) {
  // Pre-collect per-loop modified sets (needed while walking).
  for (const ir::Procedure& p : prog.procedures()) {
    p.for_each([&](const ir::Stmt* s) {
      if (s->kind == ir::StmtKind::Do) collect_modified(s);
    });
  }
  // Walk every procedure independently: formals and globals start opaque at
  // generation 0 (their entry values — the symbols procedure summaries are
  // expressed over).
  for (ir::Procedure* p : cg.bottom_up()) {
    Env env;
    walk_body(p->body, &env);
  }
}

void Symbolic::collect_modified(const ir::Stmt* loop) {
  std::set<const ir::Variable*>& out = modified_in_[loop];
  out.insert(loop->ivar);
  ir::for_each_nested(loop, [&](const ir::Stmt* s) {
    if (s->kind == ir::StmtKind::Assign) {
      if (s->lhs->is_var_ref()) out.insert(s->lhs->var);
      return;
    }
    if (s->kind == ir::StmtKind::Do) {
      out.insert(s->ivar);
      return;
    }
    if (s->kind == ir::StmtKind::Call) {
      const ProcEffects& fx = modref_.of(s->callee);
      for (const ir::Variable* g : fx.mod) {
        if (g->is_scalar()) out.insert(g);
      }
      for (size_t i = 0; i < s->args.size(); ++i) {
        if (!fx.formal_mod[i]) continue;
        const ir::Variable* av = ModRef::actual_var(s, i);
        if (av != nullptr && av->is_scalar() && s->args[i]->is_var_ref()) {
          out.insert(av);
        }
      }
    }
  });
  // Close over aliases: a modified common member invalidates its overlays.
  std::set<const ir::Variable*> extra;
  for (const ir::Variable* v : out) {
    if (v->kind != ir::VarKind::CommonMember) continue;
    for (const ir::Variable* m : alias_.class_members(alias_.canonical(v))) {
      extra.insert(m);
    }
  }
  out.insert(extra.begin(), extra.end());
}

LinearExpr Symbolic::env_value(const Env& env, const ir::Variable* v) const {
  auto it = env.known.find(v);
  if (it != env.known.end()) return it->second;
  auto g = env.gen.find(v);
  return LinearExpr::var(poly::scalar_sym(v, g != env.gen.end() ? g->second : 0));
}

poly::ScalarResolver Symbolic::env_resolver(const Env& env) const {
  return [this, &env](const ir::Variable* v) -> std::optional<LinearExpr> {
    if (v->is_array() || v->elem != ir::ScalarType::Int) return std::nullopt;
    if (v->kind == ir::VarKind::SymParam) return LinearExpr::var(poly::scalar_sym(v));
    if (overflowed_.count(v) != 0) return std::nullopt;
    return env_value(env, v);
  };
}

int Symbolic::fresh_gen(const ir::Variable* v) {
  int g = ++next_gen_[v];
  if (g >= poly::kMaxGens) {
    // Saturated: distinct values would share a symbol, so mark the variable
    // permanently non-affine instead (sound fallback).
    g = poly::kMaxGens - 1;
    overflowed_.insert(v);
  }
  return g;
}

void Symbolic::bump(Env* env, const ir::Variable* v) {
  env->gen[v] = fresh_gen(v);
  env->known.erase(v);
}

void Symbolic::bump_aliases(Env* env, const ir::Variable* canon) {
  for (const ir::Variable* m : alias_.class_members(canon)) {
    if (m->is_scalar()) bump(env, m);
  }
}

void Symbolic::walk_body(const std::vector<ir::Stmt*>& body, Env* env) {
  for (ir::Stmt* s : body) {
    env_at_[s] = *env;  // snapshot before the statement
    switch (s->kind) {
      case ir::StmtKind::Assign: {
        if (!s->lhs->is_var_ref()) break;  // array element: no scalar change
        const ir::Variable* v = s->lhs->var;
        if (v->elem != ir::ScalarType::Int) break;
        auto val = poly::to_affine(s->rhs, env_resolver(*env));
        if (val) {
          env->known[v] = *val;
        } else {
          bump(env, v);
        }
        if (v->kind == ir::VarKind::CommonMember) {
          // Writing through one overlay invalidates sibling overlays.
          for (const ir::Variable* m : alias_.class_members(alias_.canonical(v))) {
            if (m != v && m->is_scalar()) bump(env, m);
          }
        }
        break;
      }
      case ir::StmtKind::If: {
        Env then_env = *env;
        Env else_env = *env;
        walk_body(s->then_body, &then_env);
        walk_body(s->else_body, &else_env);
        // Merge: a variable keeps its value only when both paths agree on
        // it (same affine expression, or same untouched generation); any
        // disagreement yields a fresh opaque generation.
        Env merged;
        std::set<const ir::Variable*> touched;
        for (const auto& [v, x] : then_env.known) touched.insert(v);
        for (const auto& [v, x] : then_env.gen) touched.insert(v);
        for (const auto& [v, x] : else_env.known) touched.insert(v);
        for (const auto& [v, x] : else_env.gen) touched.insert(v);
        for (const ir::Variable* v : touched) {
          LinearExpr tv = env_value(then_env, v);
          LinearExpr ev = env_value(else_env, v);
          if (tv.terms == ev.terms && tv.c == ev.c) {
            auto kt = then_env.known.find(v);
            if (kt != then_env.known.end()) {
              merged.known[v] = kt->second;
            }
            auto gt = then_env.gen.find(v);
            if (gt != then_env.gen.end()) merged.gen[v] = gt->second;
          } else {
            merged.gen[v] = fresh_gen(v);
          }
        }
        *env = std::move(merged);
        break;
      }
      case ir::StmtKind::Do: {
        env_loop_entry_[s] = *env;  // bounds evaluate here
        // Entering the body: anything the body may modify loses its value.
        for (const ir::Variable* v : modified_in_.at(s)) {
          if (v->is_scalar()) bump(env, v);
        }
        env->known[s->ivar] = LinearExpr::var(
            poly::scalar_sym(s->ivar, env->gen.count(s->ivar) != 0 ? env->gen[s->ivar] : 0));
        walk_body(s->body, env);
        // After the loop: modified values are again unknown.
        for (const ir::Variable* v : modified_in_.at(s)) {
          if (v->is_scalar()) bump(env, v);
        }
        break;
      }
      case ir::StmtKind::Call: {
        const ProcEffects& fx = modref_.of(s->callee);
        for (const ir::Variable* g : fx.mod) {
          if (g->is_scalar()) {
            bump_aliases(env, g);
            bump(env, g);
          } else if (g->kind == ir::VarKind::CommonMember) {
            bump_aliases(env, g);
          }
        }
        for (size_t i = 0; i < s->args.size(); ++i) {
          if (!fx.formal_mod[i]) continue;
          const ir::Variable* av = ModRef::actual_var(s, i);
          if (av != nullptr && av->is_scalar() && s->args[i]->is_var_ref()) {
            bump(env, av);
          }
        }
        break;
      }
      case ir::StmtKind::Print:
      case ir::StmtKind::Nop:
        break;
    }
  }
}

LinearExpr Symbolic::value_before(const ir::Stmt* s, const ir::Variable* v) const {
  auto it = env_at_.find(s);
  if (it == env_at_.end()) return LinearExpr::var(poly::scalar_sym(v, 0));
  return env_value(it->second, v);
}

poly::ScalarResolver Symbolic::resolver_at(const ir::Stmt* s) const {
  auto it = env_at_.find(s);
  if (it == env_at_.end()) {
    return [](const ir::Variable* v) -> std::optional<LinearExpr> {
      if (v->is_array() || v->elem != ir::ScalarType::Int) return std::nullopt;
      return LinearExpr::var(poly::scalar_sym(v, 0));
    };
  }
  return env_resolver(it->second);
}

poly::ScalarResolver Symbolic::resolver_at_loop_entry(const ir::Stmt* loop) const {
  auto it = env_loop_entry_.find(loop);
  if (it == env_loop_entry_.end()) return resolver_at(loop);
  return env_resolver(it->second);
}

const std::set<const ir::Variable*>& Symbolic::modified_in(const ir::Stmt* loop) const {
  return modified_in_.at(loop);
}

bool Symbolic::is_variant_sym(const ir::Stmt* loop, poly::SymId sym) const {
  if (poly::is_dim_sym(sym)) return false;
  int vid = poly::sym_var_id(sym);
  for (const ir::Variable* v : modified_in_.at(loop)) {
    if (v->id == vid) return true;
  }
  return false;
}

std::optional<long> Symbolic::constant_before(const ir::Stmt* s,
                                              const ir::Variable* v) const {
  LinearExpr e = value_before(s, v);
  if (e.is_constant()) return e.c;
  return std::nullopt;
}

}  // namespace suifx::analysis
