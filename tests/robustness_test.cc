// Robustness tests (docs/robustness.md): cooperative budgets/cancellation,
// the deterministic fault-injection registry, the degradation ladder, and
// the sweep that fires every registered injection point and asserts the
// pipeline completes with a degraded-but-SOUND plan (parallel loops under
// degradation are a subset of the loops parallel at full precision).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "benchsuite/suite.h"
#include "dynamic/dyndep.h"
#include "dynamic/interp.h"
#include "dynamic/profile.h"
#include "dynamic/specexec.h"
#include "explorer/workbench.h"
#include "parallelizer/driver.h"
#include "parallelizer/speculate.h"
#include "runtime/parloop.h"
#include "slicing/slicer.h"
#include "support/budget.h"
#include "support/fault.h"
#include "support/metrics.h"

namespace suifx {
namespace {

using explorer::Workbench;
using support::Budget;
using support::BudgetExceeded;
using support::CancelToken;
namespace fault = support::fault;

/// Disarm injection and zero metrics around a test.
class CleanSlate {
 public:
  CleanSlate() {
    fault::Registry::global().clear();
    support::Metrics::global().reset();
  }
  ~CleanSlate() { fault::Registry::global().clear(); }
};

uint64_t counter(const char* key) {
  auto m = support::Metrics::global().counters();
  auto it = m.find(key);
  return it == m.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------------
// Budget
// ---------------------------------------------------------------------------

TEST(Budget, StepLimitTripsAndStaysTripped) {
  Budget::Limits lim;
  lim.max_steps = 10;
  Budget b(lim);
  for (int i = 0; i < 10; ++i) b.charge();
  EXPECT_FALSE(b.exhausted());
  try {
    b.charge();
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& ex) {
    EXPECT_EQ(ex.kind(), BudgetExceeded::Kind::Steps);
  }
  // The trip is sticky: later charges keep throwing.
  EXPECT_THROW(b.charge(), BudgetExceeded);
  EXPECT_TRUE(b.exhausted());
}

TEST(Budget, DeadlineTrips) {
  Budget::Limits lim;
  lim.deadline_ms = 1;
  Budget b(lim);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  try {
    b.charge();
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& ex) {
    EXPECT_EQ(ex.kind(), BudgetExceeded::Kind::Deadline);
  }
}

TEST(Budget, CancelTokenObservedAtCharge) {
  CancelToken cancel;
  Budget b(Budget::Limits{}, &cancel);
  b.charge();  // unlimited: fine
  cancel.request_cancel();
  try {
    b.charge();
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& ex) {
    EXPECT_EQ(ex.kind(), BudgetExceeded::Kind::Cancelled);
  }
}

TEST(Budget, ScopeInstallsPerThreadAndNests) {
  EXPECT_EQ(Budget::current(), nullptr);
  Budget::charge_current();  // uninstalled: a no-op, not a crash
  Budget b;
  {
    Budget::Scope outer(&b);
    EXPECT_EQ(Budget::current(), &b);
    Budget::charge_current(3);
    {
      Budget::Scope inner(nullptr);  // degraded retries uninstall
      EXPECT_EQ(Budget::current(), nullptr);
      Budget::charge_current();  // no-op
    }
    EXPECT_EQ(Budget::current(), &b);
    // Another thread sees no installation (thread-local).
    std::thread([] { EXPECT_EQ(Budget::current(), nullptr); }).join();
  }
  EXPECT_EQ(Budget::current(), nullptr);
  EXPECT_EQ(b.steps(), 3u);
}

TEST(Budget, SharedAcrossThreadsStepCounterIsOneAtomic) {
  Budget::Limits lim;
  lim.max_steps = 1000;
  Budget b(lim);
  std::atomic<int> tripped{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      Budget::Scope scope(&b);
      try {
        for (int i = 0; i < 1000; ++i) Budget::charge_current();
      } catch (const BudgetExceeded&) {
        ++tripped;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // 4000 charges against a shared cap of 1000: most workers must trip.
  EXPECT_GE(tripped.load(), 3);
  EXPECT_GE(b.steps(), 1000u);
}

// ---------------------------------------------------------------------------
// Fault registry
// ---------------------------------------------------------------------------

void test_point() { SUIFX_FAULT_POINT("test.point"); }
void other_point() { SUIFX_FAULT_POINT("test.other"); }

TEST(Fault, NthHitFiresExactlyOnce) {
  CleanSlate slate;
  ASSERT_TRUE(fault::Registry::global().configure("test.point@2"));
  EXPECT_NO_THROW(test_point());  // hit 1
  EXPECT_THROW(test_point(), fault::InjectedFault);  // hit 2 fires
  EXPECT_NO_THROW(test_point());  // counting rules fire at most once
  EXPECT_EQ(fault::Registry::global().fired(), 1u);
  EXPECT_GE(counter("fault.injected"), 1u);
  EXPECT_GE(counter("fault.injected.test.point"), 1u);
}

TEST(Fault, WildcardMatchesByPrefix) {
  CleanSlate slate;
  // A counting wildcard rule fires once TOTAL (whichever matching point is
  // hit first) — the sweep's "fail anywhere, once" mode.
  ASSERT_TRUE(fault::Registry::global().configure("test.*"));
  EXPECT_THROW(test_point(), fault::InjectedFault);
  EXPECT_NO_THROW(other_point());  // the one-shot rule is spent
  // A probabilistic wildcard with p=1 fires at every matching point.
  ASSERT_TRUE(fault::Registry::global().configure("test.*@p=1,seed=1"));
  EXPECT_THROW(test_point(), fault::InjectedFault);
  EXPECT_THROW(other_point(), fault::InjectedFault);
  ASSERT_TRUE(fault::Registry::global().configure("nomatch.*"));
  EXPECT_NO_THROW(test_point());
}

TEST(Fault, SeededRateIsDeterministic) {
  CleanSlate slate;
  auto run = [&]() {
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      bool threw = false;
      try {
        test_point();
      } catch (const fault::InjectedFault&) {
        threw = true;
      }
      fired.push_back(threw);
    }
    return fired;
  };
  ASSERT_TRUE(fault::Registry::global().configure("test.point@p=0.3,seed=42"));
  std::vector<bool> first = run();
  ASSERT_TRUE(fault::Registry::global().configure("test.point@p=0.3,seed=42"));
  EXPECT_EQ(run(), first);  // bit-for-bit reproducible
  size_t hits = 0;
  for (bool b : first) hits += b ? 1 : 0;
  EXPECT_GT(hits, 0u);
  EXPECT_LT(hits, 200u);
  // A different seed gives a different (but still deterministic) pattern.
  ASSERT_TRUE(fault::Registry::global().configure("test.point@p=0.3,seed=43"));
  EXPECT_NE(run(), first);
}

TEST(Fault, SuppressScopeDisablesInjection) {
  CleanSlate slate;
  ASSERT_TRUE(fault::Registry::global().configure("test.point@p=1,seed=1"));
  {
    fault::SuppressScope scope;
    EXPECT_NO_THROW(test_point());
  }
  EXPECT_THROW(test_point(), fault::InjectedFault);
}

TEST(Fault, MalformedSpecsAreRejected) {
  CleanSlate slate;
  for (const char* bad : {"pt@0", "pt@abc", "pt@p=2", "pt@p=-1", "pt@p=x",
                          "pt@p=0.5,seed=notanumber", "pt@"}) {
    EXPECT_FALSE(fault::Registry::global().configure(bad)) << bad;
    EXPECT_FALSE(fault::Registry::global().armed()) << bad;
  }
  // Multi-entry specs and whitespace are fine.
  EXPECT_TRUE(fault::Registry::global().configure(
      "test.point@2 ; test.other@p=0.5,seed=7"));
  fault::Registry::global().clear();
  EXPECT_FALSE(fault::Registry::global().armed());
}

// ---------------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------------

TEST(Degrade, LivenessFallsDownTheLadder) {
  CleanSlate slate;
  const benchsuite::BenchProgram* bp = benchsuite::liveness_suite().front();
  ASSERT_TRUE(fault::Registry::global().configure("pass.liveness.entry"));
  Diag diag;
  auto wb = Workbench::from_source(bp->source, diag);
  ASSERT_NE(wb, nullptr) << diag.str();
  // Full failed once, so the build landed one rung down — still alive.
  ASSERT_NE(wb->liveness(), nullptr);
  EXPECT_EQ(wb->liveness()->mode(), analysis::LivenessMode::OneBit);
  EXPECT_GE(counter("degrade.liveness"), 1u);
  ASSERT_FALSE(wb->degradations().empty());
  EXPECT_NE(wb->degradations()[0].find("liveness"), std::string::npos);
}

TEST(Degrade, DriverIsolatesFailedUnitAndRetriesNextPlan) {
  CleanSlate slate;
  Diag diag;
  auto wb = Workbench::from_source(benchsuite::mdg().source, diag);
  ASSERT_NE(wb, nullptr) << diag.str();
  std::string full_sig = parallelizer::plan_signature(wb->plan());
  std::set<std::string> full_parallel;
  for (const auto& [loop, lp] : wb->plan().loops) {
    if (lp.parallelizable) full_parallel.insert(loop->loop_name());
  }
  ASSERT_FALSE(full_parallel.empty());

  parallelizer::Driver::Options opts;
  opts.workers = 4;
  parallelizer::Driver driver(wb->parallelizer(), opts);
  ASSERT_TRUE(fault::Registry::global().configure("driver.task"));
  parallelizer::ParallelPlan degraded = driver.plan(wb->program());
  // The plan completed; the failed unit's loops are conservative.
  EXPECT_EQ(degraded.loops.size(), wb->plan().loops.size());
  EXPECT_GE(driver.degraded_loops(), 1u);
  EXPECT_GE(counter("degrade.driver"), 1u);
  uint64_t n_deg = 0;
  for (const auto& [loop, lp] : degraded.loops) {
    if (lp.degraded) {
      ++n_deg;
      EXPECT_FALSE(lp.parallelizable);  // assume-dependence: never parallel
    }
    if (lp.parallelizable) {
      EXPECT_TRUE(full_parallel.count(loop->loop_name()) != 0)
          << "degraded plan marked " << loop->loop_name()
          << " parallel but the full-precision plan rejects it";
    }
  }
  EXPECT_EQ(n_deg, driver.degraded_loops());

  // Degraded plans were not memoized: the next plan() call (the rule has
  // already fired) recovers full precision.
  EXPECT_EQ(parallelizer::plan_signature(driver.plan(wb->program())), full_sig);
  EXPECT_EQ(driver.degraded_loops(), n_deg);  // no new degradations
}

TEST(Degrade, SlicerReturnsConservativeOverApproximation) {
  CleanSlate slate;
  Diag diag;
  auto prog = frontend::parse_program(R"(
program p;
proc main() {
  real x;
  real y;
  x = 1.0;
  y = x + 2.0;
  print y;
}
)",
                                      diag);
  ASSERT_NE(prog, nullptr) << diag.str();
  analysis::AliasAnalysis alias(*prog);
  graph::CallGraph cg(*prog);
  analysis::ModRef modref(*prog, alias, cg);
  ssa::Issa issa(*prog, alias, modref);
  slicing::Slicer slicer(issa);

  ir::Stmt* def_y = nullptr;
  size_t total_stmts = 0;
  prog->main()->for_each([&](ir::Stmt* s) {
    ++total_stmts;
    if (s->kind == ir::StmtKind::Assign && s->lhs->var->name == "y") def_y = s;
  });
  ASSERT_NE(def_y, nullptr);

  slicing::SliceResult full = slicer.slice(def_y, def_y->rhs);
  EXPECT_FALSE(full.degraded);

  ASSERT_TRUE(fault::Registry::global().configure("slicer.query"));
  slicing::SliceResult deg = slicer.slice(def_y, def_y->rhs);
  EXPECT_TRUE(deg.degraded);
  EXPECT_GE(counter("degrade.slicer"), 1u);
  // Over-approximation: everything the full slice found (and more) is there —
  // no dependence source is hidden.
  EXPECT_EQ(deg.stmts.size(), total_stmts);
  for (const ir::Stmt* s : full.stmts) EXPECT_TRUE(deg.stmts.count(s) != 0);

  // The rule fired once; the next query is full-precision again.
  slicing::SliceResult again = slicer.slice(def_y, def_y->rhs);
  EXPECT_FALSE(again.degraded);
  EXPECT_EQ(again.stmts, full.stmts);
}

TEST(Degrade, BudgetedSlicerQueryDegradesInsteadOfThrowing) {
  CleanSlate slate;
  Diag diag;
  auto prog = frontend::parse_program(R"(
program p;
proc main() {
  real x;
  real y;
  x = 1.0;
  y = x + 2.0;
  print y;
}
)",
                                      diag);
  ASSERT_NE(prog, nullptr) << diag.str();
  analysis::AliasAnalysis alias(*prog);
  graph::CallGraph cg(*prog);
  analysis::ModRef modref(*prog, alias, cg);
  ssa::Issa issa(*prog, alias, modref);
  slicing::Slicer slicer(issa);
  ir::Stmt* def_y = nullptr;
  prog->main()->for_each([&](ir::Stmt* s) {
    if (s->kind == ir::StmtKind::Assign && s->lhs->var->name == "y") def_y = s;
  });
  ASSERT_NE(def_y, nullptr);

  Budget::Limits lim;
  lim.max_steps = 1;
  Budget tiny(lim);
  try {
    tiny.charge(2);  // exhaust it up front (sticky trip)
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded&) {
  }
  Budget::Scope scope(&tiny);
  // The walk's first budget charge throws; the query falls back to the
  // conservative slice instead of propagating.
  slicing::SliceResult r = slicer.slice(def_y, def_y->rhs->a);  // the x read
  EXPECT_TRUE(r.degraded);
  EXPECT_GE(counter("degrade.slicer"), 1u);
}

// ---------------------------------------------------------------------------
// The sweep: fire every registered point; the pipeline must complete with a
// degraded-but-sound result every time.
// ---------------------------------------------------------------------------

// A slice query wants a VarRef/ArrayRef READ, not an arbitrary expression:
// dig the first one out of an expression tree.
const ir::Expr* first_read(const ir::Expr* e) {
  if (e == nullptr) return nullptr;
  if (e->kind == ir::ExprKind::VarRef || e->kind == ir::ExprKind::ArrayRef) {
    return e;
  }
  if (const ir::Expr* r = first_read(e->a)) return r;
  return first_read(e->b);
}

/// The last assignment in the program whose RHS reads a variable: deep in
/// the loop nests, so its slice walks real use->def chains (and therefore
/// hits the slicer.step point). Returns {stmt, read}.
std::pair<ir::Stmt*, const ir::Expr*> last_sliceable_assign(
    const ir::Program& prog) {
  ir::Stmt* stmt = nullptr;
  const ir::Expr* read = nullptr;
  for (const ir::Procedure& p : prog.procedures()) {
    p.for_each([&](const ir::Stmt* s) {
      if (s->kind != ir::StmtKind::Assign) return;
      if (const ir::Expr* r = first_read(s->rhs)) {
        stmt = const_cast<ir::Stmt*>(s);
        read = r;
      }
    });
  }
  return {stmt, read};
}

// ---------------------------------------------------------------------------
// Speculative executive under injected faults (docs/speculation.md): whatever
// fires — a simulated conflict, a mid-write-back commit fault, a fault inside
// rollback itself — the run completes and the output is byte-identical to
// the serial run. Rollback is the robustness floor speculation stands on.
// ---------------------------------------------------------------------------

const char* kSpecFaultProgram = R"(
program sf;
param N = 16;
global real a[16] input;
global real b[16] input;
global int gix[16];
proc main() {
  real chk;
  do i = 1, N label 10 {
    gix[i] = 1 + (i + 5) % N;
  }
  do i = 1, N label 20 {
    b[gix[i]] = b[gix[i]] * 0.5 + a[i] * 0.3;
  }
  chk = 0.0;
  do i = 1, N label 30 {
    chk = chk + b[i] * real(i);
  }
  print chk;
}
)";

struct SpecHarness {
  std::unique_ptr<Workbench> wb;
  parallelizer::ParallelPlan plan;
  std::vector<double> serial;
};

/// Build the permutation-scatter program, record the serial output, and
/// promote the scatter loop on real dynamic evidence — the same path the
/// Guru's speculation round takes.
SpecHarness make_spec_harness() {
  SpecHarness h;
  Diag diag;
  h.wb = Workbench::from_source(kSpecFaultProgram, diag);
  EXPECT_NE(h.wb, nullptr) << diag.str();
  {
    dynamic::Interpreter interp(h.wb->program());
    dynamic::RunResult rr = interp.run();
    EXPECT_TRUE(rr.ok) << rr.error;
    h.serial = rr.printed;
  }
  h.plan = h.wb->plan();
  dynamic::DynDepAnalyzer dyn;
  dynamic::LoopProfiler prof;
  dynamic::Interpreter interp(h.wb->program());
  interp.add_hook(&dyn);
  interp.add_hook(&prof);
  dynamic::RunResult rr = interp.run();
  EXPECT_TRUE(rr.ok) << rr.error;
  parallelizer::SpeculationPlanner planner;
  auto decisions = planner.promote(
      h.plan, dynamic::gather_evidence(
                  parallelizer::SpeculationPlanner::candidates(h.plan), dyn, prof));
  bool promoted = false;
  for (const auto& d : decisions) promoted |= d.promoted;
  EXPECT_TRUE(promoted) << "scatter loop was not promoted";
  return h;
}

TEST(SpecFault, InjectedConflictRollsBackToSerialResult) {
  CleanSlate slate;
  SpecHarness h = make_spec_harness();
  ASSERT_TRUE(fault::Registry::global().configure("speculate.conflict"));
  dynamic::SpecRunResult sr =
      dynamic::run_speculative(h.wb->program(), h.plan, dynamic::Inputs{});
  ASSERT_TRUE(sr.run.ok) << sr.run.error;
  EXPECT_EQ(sr.run.printed, h.serial);
  EXPECT_GE(fault::Registry::global().fired(), 1u);
  EXPECT_EQ(sr.commits(), 0u);
  EXPECT_GE(sr.misspeculations(), 1u);
}

TEST(SpecFault, CommitFaultMidWritebackUndoesPartialState) {
  CleanSlate slate;
  SpecHarness h = make_spec_harness();
  // Fire at the 3rd committed location: two writes have already landed in
  // base memory and must be undone before the serial re-execution.
  ASSERT_TRUE(fault::Registry::global().configure("speculate.commit@3"));
  dynamic::SpecRunResult sr =
      dynamic::run_speculative(h.wb->program(), h.plan, dynamic::Inputs{});
  ASSERT_TRUE(sr.run.ok) << sr.run.error;
  EXPECT_EQ(sr.run.printed, h.serial);
  EXPECT_GE(fault::Registry::global().fired(), 1u);
  EXPECT_EQ(sr.commits(), 0u);
  EXPECT_GE(sr.misspeculations(), 1u);
}

TEST(SpecFault, FaultInsideRollbackIsAbsorbed) {
  CleanSlate slate;
  SpecHarness h = make_spec_harness();
  // The conflict forces the rollback path; the second entry then fires
  // inside rollback itself. Rollback is infallible by contract — the fault
  // is absorbed and the serial re-execution still happens.
  ASSERT_TRUE(fault::Registry::global().configure(
      "speculate.conflict;speculate.rollback"));
  dynamic::SpecRunResult sr =
      dynamic::run_speculative(h.wb->program(), h.plan, dynamic::Inputs{});
  ASSERT_TRUE(sr.run.ok) << sr.run.error;
  EXPECT_EQ(sr.run.printed, h.serial);
  EXPECT_GE(fault::Registry::global().fired(), 2u);
  EXPECT_EQ(sr.commits(), 0u);
}

TEST(SpecFault, PointsRegisterForSweeps) {
  CleanSlate slate;
  SpecHarness h = make_spec_harness();
  // One committing run and one forced-rollback run execute all three call
  // sites, so a disarmed pass registers every speculation fault point.
  dynamic::run_speculative(h.wb->program(), h.plan, dynamic::Inputs{});
  dynamic::SpecExecOptions forced;
  forced.force_misspeculation = true;
  dynamic::run_speculative(h.wb->program(), h.plan, dynamic::Inputs{}, forced);
  std::vector<std::string> points = fault::Registry::global().points();
  for (const char* must :
       {"speculate.conflict", "speculate.commit", "speculate.rollback"}) {
    EXPECT_TRUE(std::count(points.begin(), points.end(), must) != 0) << must;
  }
}

TEST(FaultSweep, EveryRegisteredPointDegradesSoundly) {
  CleanSlate slate;
  const benchsuite::BenchProgram& bp = benchsuite::mdg();

  // Exercise one of everything (build, plan, slice, parallel loop) with
  // injection disarmed, so every SUIFX_FAULT_POINT call site registers and we
  // have the full-precision parallel set to compare against.
  std::set<std::string> full_parallel;
  {
    Diag diag;
    auto wb = Workbench::from_source(bp.source, diag);
    ASSERT_NE(wb, nullptr) << diag.str();
    for (const auto& [loop, lp] : wb->plan().loops) {
      if (lp.parallelizable) full_parallel.insert(loop->loop_name());
    }
    slicing::Slicer slicer(wb->issa());
    auto [seed, read] = last_sliceable_assign(wb->program());
    ASSERT_NE(seed, nullptr);
    slicer.slice(seed, read);
    slicer.slice_summarized(seed, read);
    runtime::ParallelRuntime rt(2);
    rt.parallel_chunks(8, [](int, runtime::IterRange) {});
  }
  std::vector<std::string> points = fault::Registry::global().points();
  ASSERT_GE(points.size(), 10u) << "expected every instrumented point";
  for (const char* must :
       {"pass.alias.entry", "pass.modref.entry", "pass.array_dataflow.entry",
        "pass.liveness.entry", "pass.depend.entry", "slicer.query",
        "slicer.step", "driver.task", "pool.task", "parloop.chunk"}) {
    EXPECT_TRUE(std::count(points.begin(), points.end(), must) != 0) << must;
  }

  for (const std::string& point : points) {
    SCOPED_TRACE("injection point: " + point);
    ASSERT_TRUE(fault::Registry::global().configure(point));
    support::Metrics::global().reset();

    // The full pipeline, with the point armed to fire at its first hit. It
    // must complete — no crash, no hang, no nullptr — whatever fires.
    Diag diag;
    auto wb = Workbench::from_source(bp.source, diag);
    ASSERT_NE(wb, nullptr) << diag.str();
    parallelizer::ParallelPlan plan = wb->plan();
    EXPECT_FALSE(plan.loops.empty());

    slicing::Slicer slicer(wb->issa());
    auto [seed, read] = last_sliceable_assign(wb->program());
    ASSERT_NE(seed, nullptr);
    slicing::SliceResult sr = slicer.slice(seed, read);
    EXPECT_FALSE(sr.stmts.empty());

    runtime::ParallelRuntime rt(2);
    std::atomic<long> sum{0};
    rt.parallel_chunks(64, [&](int, runtime::IterRange r) {
      for (long i = r.begin; i < r.end; ++i) sum += i;
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);  // the chunk bodies all still ran

    // Soundness: degradation only loses parallel loops, never gains them.
    for (const auto& [loop, lp] : plan.loops) {
      if (lp.parallelizable) {
        EXPECT_TRUE(full_parallel.count(loop->loop_name()) != 0)
            << loop->loop_name() << " parallel under degradation only";
      }
    }
    // If the fault fired, it must be visible: the metric trail names the
    // point and at least one degradation (or absorbed chunk fault) exists.
    if (fault::Registry::global().fired() > 0) {
      EXPECT_GE(counter("fault.injected"), 1u);
      uint64_t degradations =
          counter("degrade.pass.retry") + counter("degrade.liveness") +
          counter("degrade.driver") + counter("degrade.slicer") +
          counter("degrade.parloop");
      EXPECT_GE(degradations, 1u)
          << "a fault fired but no degradation was recorded";
    }
  }

  // CI fault-matrix hook: SUIFX_FAULT_SEED=<n> adds a probabilistic round —
  // every point firing at 5% with that seed, whole pipeline, same soundness
  // invariant. Different seeds exercise different fault interleavings.
  if (const char* seed_env = std::getenv("SUIFX_FAULT_SEED")) {
    SCOPED_TRACE(std::string("probabilistic sweep, seed ") + seed_env);
    ASSERT_TRUE(fault::Registry::global().configure(
        std::string("*@p=0.05,seed=") + seed_env));
    Diag diag;
    auto wb = Workbench::from_source(bp.source, diag);
    ASSERT_NE(wb, nullptr) << diag.str();
    parallelizer::ParallelPlan plan = wb->plan();
    EXPECT_FALSE(plan.loops.empty());
    for (const auto& [loop, lp] : plan.loops) {
      if (lp.parallelizable) {
        EXPECT_TRUE(full_parallel.count(loop->loop_name()) != 0)
            << loop->loop_name() << " parallel under degradation only";
      }
    }
  }
}

}  // namespace
}  // namespace suifx
