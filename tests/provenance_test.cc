// Tests for the decision-provenance ledger (docs/provenance.md): per-loop
// causal records are deterministic across worker counts and cache states,
// byte-identical between a cold rebuild and an incremental rebuild of a
// clean procedure, queryable through Guru::explain and the service's Explain
// request, and absent (at near-zero cost) when recording is disabled.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "benchsuite/suite.h"
#include "explorer/guru.h"
#include "explorer/incremental.h"
#include "explorer/workbench.h"
#include "parallelizer/driver.h"
#include "service/service.h"
#include "support/metrics.h"
#include "support/provenance.h"
#include "support/trace.h"

namespace suifx {
namespace {

namespace prov = support::provenance;

using explorer::Workbench;

/// Re-enables recording when a test that turns it off exits (including via
/// an assertion failure), so state never leaks between tests.
struct EnabledGuard {
  ~EnabledGuard() { prov::set_enabled(true); }
};

std::unique_ptr<Workbench> build(const std::string& src) {
  Diag diag;
  auto wb = Workbench::from_source(src, diag);
  EXPECT_NE(wb, nullptr) << diag.str();
  return wb;
}

std::vector<const benchsuite::BenchProgram*> all_programs() {
  std::vector<const benchsuite::BenchProgram*> out = benchsuite::explorer_suite();
  for (const auto* bp : benchsuite::liveness_suite()) out.push_back(bp);
  for (const auto* bp : benchsuite::reduction_suite()) out.push_back(bp);
  return out;
}

// A loop with an unresolvable carried flow dependence (recurrence through
// a[]), a privatizable temporary, and a sum reduction — one of each record
// kind in a single small program.
const char* kMixedSource = R"(
program provmix;
param N = 40;
global real a[64];
global real s;

proc main() {
  real t;
  do i = 2, N label 100 {
    a[i] = a[i-1] + 1.0;
  }
  do i = 1, N label 200 {
    t = a[i] * 2.0;
    a[i] = t + 1.0;
  }
  do i = 1, N label 300 {
    s = s + a[i];
  }
}
)";

TEST(Provenance, LedgerSignatureMatchesSerialAtAnyWorkerCount) {
  for (const benchsuite::BenchProgram* bp : all_programs()) {
    auto wb = build(bp->source);
    ASSERT_NE(wb, nullptr);
    std::string serial =
        parallelizer::ledger_signature(wb->parallelizer().plan(wb->program()));
    for (int workers : {1, 4, 8}) {
      parallelizer::Driver::Options opts;
      opts.workers = workers;
      parallelizer::Driver driver(wb->parallelizer(), opts);
      EXPECT_EQ(parallelizer::ledger_signature(driver.plan(wb->program())),
                serial)
          << bp->name << " @ " << workers << " workers";
    }
  }
}

TEST(Provenance, ColdAndWarmCachesProduceIdenticalRecords) {
  // First workbench: cold polyhedral/driver caches. Second: everything warm.
  // The rendered records must not depend on which operations were cache hits.
  auto cold = build(kMixedSource);
  ASSERT_NE(cold, nullptr);
  std::string first = parallelizer::ledger_signature(cold->plan());
  std::string replan = parallelizer::ledger_signature(cold->plan());
  EXPECT_EQ(first, replan) << "driver cache hits changed the records";

  auto warm = build(kMixedSource);
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(parallelizer::ledger_signature(warm->plan()), first)
      << "warm polyhedral caches changed the records";
}

TEST(Provenance, RecordsNameConcreteCauses) {
  auto wb = build(kMixedSource);
  ASSERT_NE(wb, nullptr);
  parallelizer::ParallelPlan plan = wb->plan();

  auto record_for = [&](const std::string& name)
      -> std::shared_ptr<const prov::LoopRecord> {
    for (const parallelizer::LoopPlan* lp : plan.ordered()) {
      if (lp->loop->loop_name() == name) return lp->why;
    }
    return nullptr;
  };

  // main/100: recurrence — serial, with a flow pair naming real statements.
  auto dep = record_for("main/100");
  ASSERT_NE(dep, nullptr);
  EXPECT_EQ(dep->verdict, "serial");
  bool found_dep = false;
  for (const prov::LoopEntry& e : dep->entries) {
    if (e.kind != prov::Kind::DependenceFound) continue;
    found_dep = true;
    EXPECT_EQ(e.var, "a");
    EXPECT_NE(e.detail.find("flow:"), std::string::npos) << e.detail;
    EXPECT_NE(e.detail.find("->"), std::string::npos) << e.detail;
    EXPECT_NE(e.detail.find("a[i - 1]"), std::string::npos)
        << "expected the reading statement snippet, got: " << e.detail;
  }
  EXPECT_TRUE(found_dep);

  // main/200: the temporary is privatized; the loop parallelizes.
  auto prv = record_for("main/200");
  ASSERT_NE(prv, nullptr);
  EXPECT_EQ(prv->verdict, "parallel");
  bool found_priv = false;
  for (const prov::LoopEntry& e : prv->entries) {
    if (e.kind == prov::Kind::PrivatizationApplied && e.var == "t") {
      found_priv = true;
    }
  }
  EXPECT_TRUE(found_priv) << prv->text();

  // main/300: the sum is a recognized reduction; the record says over what.
  auto red = record_for("main/300");
  ASSERT_NE(red, nullptr);
  bool found_red = false;
  for (const prov::LoopEntry& e : red->entries) {
    if (e.kind == prov::Kind::ReductionRecognized && e.var == "s") {
      found_red = true;
      EXPECT_NE(e.detail.find("commutative"), std::string::npos) << e.detail;
    }
  }
  EXPECT_TRUE(found_red) << red->text();
}

TEST(Provenance, AssertionsAppearInRecords) {
  auto wb = build(kMixedSource);
  ASSERT_NE(wb, nullptr);
  parallelizer::Assertions asserts;
  asserts.force_parallel.insert(wb->loop("main/100"));
  parallelizer::ParallelPlan plan = wb->plan(asserts);
  const parallelizer::LoopPlan* lp = plan.find(wb->loop("main/100"));
  ASSERT_NE(lp, nullptr);
  ASSERT_NE(lp->why, nullptr);
  EXPECT_EQ(lp->why->verdict, "parallel");
  bool found = false;
  for (const prov::LoopEntry& e : lp->why->entries) {
    if (e.kind == prov::Kind::AssertionApplied) found = true;
  }
  EXPECT_TRUE(found) << lp->why->text();
}

TEST(Provenance, IncrementalRebuildKeepsUntouchedRecordsByteIdentical) {
  // Two-procedure program; the edit touches only `other`, and main neither
  // calls it nor shares its storage, so main stays clean. Loop records for
  // main must be carried across rebuild_incremental byte-for-byte, and the
  // whole incremental ledger must equal a cold rebuild's of the new source.
  const char* base = R"(
program inc;
param N = 40;
global real a[64];
global real b[64];

proc other() {
  do i = 2, N label 500 {
    b[i] = b[i-1] * 0.5;
  }
}

proc main() {
  real t;
  do i = 2, N label 100 {
    a[i] = a[i-1] + 1.0;
  }
  do i = 1, N label 200 {
    t = a[i] * 2.0;
    a[i] = t + 1.0;
  }
}
)";
  std::string edited(base);
  size_t at = edited.find("b[i-1] * 0.5");
  ASSERT_NE(at, std::string::npos);
  edited.replace(at, 12, "b[i-1] * 0.25");

  auto old_wb = build(base);
  ASSERT_NE(old_wb, nullptr);
  old_wb->plan();

  Diag diag;
  explorer::RebuildStats stats;
  auto inc = explorer::rebuild_incremental(*old_wb, edited, diag, &stats);
  ASSERT_NE(inc, nullptr) << diag.str();
  EXPECT_FALSE(stats.full_invalidation);
  EXPECT_GT(stats.carried, 0u);

  uint64_t seeded_before = prov::Ledger::global().recorded();
  parallelizer::ParallelPlan inc_plan = inc->plan();

  auto cold = build(edited);
  ASSERT_NE(cold, nullptr);
  parallelizer::ParallelPlan cold_plan = cold->plan();

  // Whole-ledger equality (covers the untouched-procedure acceptance bound:
  // main's records are inside it).
  EXPECT_EQ(parallelizer::ledger_signature(inc_plan),
            parallelizer::ledger_signature(cold_plan));

  // And the carried record is the same object contents, not a re-derivation:
  // find main/100 in both and compare the rendered text directly.
  auto text_of = [](const parallelizer::ParallelPlan& p, const char* name) {
    for (const parallelizer::LoopPlan* lp : p.ordered()) {
      if (lp->loop->loop_name() == name) {
        return lp->why != nullptr ? lp->why->text() : std::string("(null)");
      }
    }
    return std::string("(missing)");
  };
  EXPECT_EQ(text_of(inc_plan, "main/100"), text_of(cold_plan, "main/100"));
  EXPECT_EQ(text_of(inc_plan, "main/200"), text_of(cold_plan, "main/200"));

  // Carrying plans across the rebuild emits CacheSeeded events into the
  // global ledger.
  bool seeded = false;
  for (const prov::Event& e : prov::Ledger::global().snapshot()) {
    if (e.kind == prov::Kind::CacheSeeded) seeded = true;
  }
  EXPECT_TRUE(seeded);
  (void)seeded_before;
}

TEST(Provenance, GuruExplainRendersTheRecord) {
  auto wb = build(kMixedSource);
  ASSERT_NE(wb, nullptr);
  explorer::Guru guru(*wb);
  std::string out = guru.explain(wb->loop("main/100"));
  EXPECT_NE(out.find("loop main/100: serial"), std::string::npos) << out;
  EXPECT_NE(out.find("dependence-found"), std::string::npos) << out;
}

TEST(Provenance, DisabledModeRecordsNothing) {
  EnabledGuard guard;
  prov::set_enabled(false);
  uint64_t before = prov::Ledger::global().recorded();
  auto wb = build(kMixedSource);
  ASSERT_NE(wb, nullptr);
  parallelizer::ParallelPlan plan = wb->plan();
  EXPECT_EQ(prov::Ledger::global().recorded(), before);
  for (const parallelizer::LoopPlan* lp : plan.ordered()) {
    EXPECT_EQ(lp->why, nullptr);
  }
  // The plan itself is unaffected, and explain() still answers something.
  EXPECT_FALSE(plan.loops.empty());
  explorer::Guru guru(*wb);
  std::string out = guru.explain(wb->loop("main/100"));
  EXPECT_NE(out.find("provenance disabled"), std::string::npos) << out;
}

TEST(Provenance, ServiceExplainReturnsSchemaVersionedRecords) {
  service::AnalysisService svc;
  service::Request open;
  open.kind = service::RequestKind::Open;
  open.session = "prov";
  open.source = kMixedSource;
  ASSERT_TRUE(svc.call(std::move(open)).ok);

  service::Request all;
  all.kind = service::RequestKind::Explain;
  all.session = "prov";
  service::Response r = svc.call(std::move(all));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.loops, 3);
  EXPECT_NE(r.text.find("loop main/100: serial"), std::string::npos) << r.text;
  EXPECT_NE(r.json.find("\"schema\":\"suifx-provenance/1\""), std::string::npos)
      << r.json;
  EXPECT_NE(r.json.find("dependence-found"), std::string::npos) << r.json;

  service::Request one;
  one.kind = service::RequestKind::Explain;
  one.session = "prov";
  one.loop = "main/300";
  r = svc.call(std::move(one));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.loops, 1);
  EXPECT_NE(r.text.find("main/300"), std::string::npos) << r.text;

  service::Request bad;
  bad.kind = service::RequestKind::Explain;
  bad.session = "prov";
  bad.loop = "main/999";
  r = svc.call(std::move(bad));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown loop"), std::string::npos) << r.error;
}

TEST(Provenance, TraceSpansCarryTheCorrelationId) {
  bool was_enabled = support::trace::enabled();
  if (!was_enabled) support::trace::start();
  {
    prov::CorrScope corr(4242);
    support::trace::TraceSpan span("prov/corr-test");
  }
  bool found = false;
  for (const auto& e : support::trace::snapshot()) {
    if (e.name == "prov/corr-test") {
      found = true;
      EXPECT_EQ(e.corr, 4242u);
    }
  }
  EXPECT_TRUE(found);
  if (!was_enabled) support::trace::stop();
}

TEST(Provenance, CorrScopeNestsAndRestores) {
  EXPECT_EQ(prov::current_corr(), 0u);
  {
    prov::CorrScope outer(7);
    EXPECT_EQ(prov::current_corr(), 7u);
    {
      prov::CorrScope inner(9);
      EXPECT_EQ(prov::current_corr(), 9u);
    }
    EXPECT_EQ(prov::current_corr(), 7u);
  }
  EXPECT_EQ(prov::current_corr(), 0u);
  uint64_t a = prov::next_corr();
  EXPECT_GT(prov::next_corr(), a);
}

TEST(Provenance, LedgerJsonIsSchemaVersioned) {
  prov::event(prov::Kind::Degraded, "", "test", "ledger json smoke");
  std::string json = prov::Ledger::global().json();
  EXPECT_NE(json.find("\"schema\":\"suifx-provenance/1\""), std::string::npos);
  EXPECT_NE(json.find("ledger json smoke"), std::string::npos);
}

TEST(Provenance, RingCapacityIsConfigurableAndWarnsOnceOnWrap) {
  prov::Ledger& led = prov::Ledger::global();
  size_t old_cap = led.capacity();
  led.set_capacity(4);
  support::Metrics::global().reset();
  EXPECT_EQ(led.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    prov::event(prov::Kind::Degraded, "main/10", "", "cap" + std::to_string(i));
  }
  std::vector<prov::Event> snap = led.snapshot();
  ASSERT_EQ(snap.size(), 4u);  // ring holds exactly the newest `capacity`
  EXPECT_EQ(snap.front().detail, "cap6");
  EXPECT_EQ(snap.back().detail, "cap9");
  // Six events were overwritten, but the wrap warning (stderr + metric) is
  // recorded exactly once per clear() — SUIFX_PROVENANCE_CAP raises it.
  auto counters = support::Metrics::global().counters();
  EXPECT_EQ(counters["provenance.ring_wrap"], 1u);
  led.set_capacity(old_cap);  // also clears the ring and the warn latch
}

TEST(Provenance, MetricsReportJsonTwin) {
  support::Metrics::global().count("prov.test.counter");
  std::string json = support::Metrics::global().report_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("prov.test.counter"), std::string::npos);
}

TEST(Provenance, EverySerialBenchsuiteLoopHasABlockingCause) {
  // The acceptance criterion: Explain must answer "why not parallel" with a
  // concrete cause, for every serial loop of every benchsuite program, and
  // every variable the cause names must resolve to a real source name.
  for (const benchsuite::BenchProgram* bp : all_programs()) {
    auto wb = build(bp->source);
    ASSERT_NE(wb, nullptr);
    parallelizer::ParallelPlan plan = wb->plan();
    for (const parallelizer::LoopPlan* lp : plan.ordered()) {
      if (lp->parallelizable) continue;
      std::string loop = lp->loop->loop_name();
      ASSERT_NE(lp->why, nullptr) << bp->name << " " << loop;
      bool has_cause = false;
      for (const prov::LoopEntry& e : lp->why->entries) {
        switch (e.kind) {
          case prov::Kind::DependenceFound:
          case prov::Kind::AliasAssumed:
          case prov::Kind::Degraded:
          case prov::Kind::IoFound:
          case prov::Kind::FinalizeBlocked:
          case prov::Kind::BudgetExhausted:
            has_cause = true;
            break;
          default:
            break;
        }
        if (!e.var.empty()) {
          std::string proc = loop.substr(0, loop.find('/'));
          EXPECT_TRUE(wb->var(proc + "." + e.var) != nullptr ||
                      wb->var(e.var) != nullptr)
              << bp->name << " " << loop << ": unresolvable var " << e.var;
        }
      }
      EXPECT_TRUE(has_cause) << bp->name << " " << loop << "\n"
                             << lp->why->text();
    }
  }
}

}  // namespace
}  // namespace suifx
