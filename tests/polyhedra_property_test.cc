// Property-based tests for the polyhedral algebra: every operation is
// checked against brute-force integer point enumeration on small
// two-variable systems generated from a parameter sweep. Soundness
// directions are asserted exactly as the analyses rely on them:
//   is_empty()==true   => truly no integer point,
//   contains(B)==true  => every point of B satisfies A,
//   projection         => superset of the true shadow,
//   subtract           => superset of the true difference, and no point of
//                         the subtrahend that was also removable survives
//                         being reported when it shouldn't.
#include <gtest/gtest.h>

#include <set>

#include "polyhedra/section.h"

namespace suifx::poly {
namespace {

constexpr SymId kX = 300;
constexpr SymId kY = 302;
constexpr int kLo = -4, kHi = 8;

/// All integer points of `sys` in the test box.
std::set<std::pair<long, long>> points(const LinSystem& sys) {
  std::set<std::pair<long, long>> out;
  for (long x = kLo; x <= kHi; ++x) {
    for (long y = kLo; y <= kHi; ++y) {
      bool ok = true;
      for (const Constraint& c : sys.constraints()) {
        long v = c.expr.c;
        for (const auto& [s, a] : c.expr.terms) {
          if (s == kX) v += a * x;
          else if (s == kY) v += a * y;
          else ok = false;  // out-of-model symbol: skip point check
        }
        if (c.is_eq ? v != 0 : v < 0) ok = false;
      }
      if (ok) out.insert({x, y});
    }
  }
  return out;
}

/// Deterministic pseudo-random constraint systems from a seed.
LinSystem make_system(unsigned seed) {
  auto rnd = [&seed]() {
    seed = seed * 1664525u + 1013904223u;
    return seed >> 16;
  };
  LinSystem sys;
  // Bound to the test box so brute force is exhaustive.
  sys.add_range(kX, LinearExpr::constant(kLo), LinearExpr::constant(kHi));
  sys.add_range(kY, LinearExpr::constant(kLo), LinearExpr::constant(kHi));
  int ncons = 1 + static_cast<int>(rnd() % 3);
  for (int i = 0; i < ncons; ++i) {
    long a = static_cast<long>(rnd() % 5) - 2;
    long b = static_cast<long>(rnd() % 5) - 2;
    long c = static_cast<long>(rnd() % 13) - 6;
    LinearExpr e = LinearExpr::var(kX, a);
    e += LinearExpr::var(kY, b);
    e += LinearExpr::constant(c);
    if (rnd() % 4 == 0) {
      sys.add_eq(std::move(e));
    } else {
      sys.add_ge(std::move(e));
    }
  }
  return sys;
}

class PolyProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PolyProperty, EmptinessMatchesBruteForce) {
  LinSystem sys = make_system(GetParam());
  bool truly_empty = points(sys).empty();
  if (sys.is_empty()) {
    EXPECT_TRUE(truly_empty) << sys.str();
  }
  // The reverse need not hold (rational relaxation), but for these small
  // systems FM is complete over the box:
  if (truly_empty) {
    EXPECT_TRUE(sys.is_empty()) << sys.str();
  }
}

TEST_P(PolyProperty, IntersectionIsSetIntersection) {
  LinSystem a = make_system(GetParam());
  LinSystem b = make_system(GetParam() * 7 + 3);
  auto pa = points(a);
  auto pb = points(b);
  auto pi = points(LinSystem::intersect(a, b));
  std::set<std::pair<long, long>> expect;
  for (const auto& p : pa) {
    if (pb.count(p) != 0) expect.insert(p);
  }
  EXPECT_EQ(pi, expect);
}

TEST_P(PolyProperty, ContainmentIsSound) {
  LinSystem a = make_system(GetParam());
  LinSystem b = make_system(GetParam() * 13 + 5);
  if (a.contains(b)) {
    auto pa = points(a);
    for (const auto& p : points(b)) {
      EXPECT_EQ(pa.count(p), 1u) << "point (" << p.first << "," << p.second
                                 << ") of B escapes A";
    }
  }
}

TEST_P(PolyProperty, ProjectionIsSuperset) {
  LinSystem sys = make_system(GetParam());
  LinSystem proj = sys.project_out(kY);
  // Every x with a witness y must satisfy the projection.
  std::set<long> xs;
  for (const auto& [x, y] : points(sys)) xs.insert(x);
  for (long x : xs) {
    LinSystem probe = proj;
    LinearExpr e = LinearExpr::var(kX);
    e += LinearExpr::constant(-x);
    probe.add_eq(std::move(e));
    EXPECT_FALSE(probe.is_empty()) << "x=" << x << " lost by projection";
  }
}

TEST_P(PolyProperty, SubtractIsSupersetOfDifference) {
  SectionList a = SectionList::single(make_system(GetParam()));
  SectionList b = SectionList::single(make_system(GetParam() * 31 + 17));
  if (a.systems().empty() || b.systems().empty()) {
    return;  // a randomly-empty side: nothing to check
  }
  SectionList d = a.subtract(b);
  std::set<std::pair<long, long>> pd;
  for (const LinSystem& part : d.systems()) {
    auto pp = points(part);
    pd.insert(pp.begin(), pp.end());
  }
  auto pa = points(a.systems()[0]);
  auto pb = points(b.systems()[0]);
  for (const auto& p : pa) {
    if (pb.count(p) == 0) {
      EXPECT_EQ(pd.count(p), 1u)
          << "difference lost (" << p.first << "," << p.second << ")";
    }
  }
  // And nothing outside A appears.
  for (const auto& p : pd) {
    EXPECT_EQ(pa.count(p), 1u);
  }
}

TEST_P(PolyProperty, SubstituteMatchesPointwise) {
  LinSystem sys = make_system(GetParam());
  // y := x + 2.
  LinearExpr repl = LinearExpr::var(kX);
  repl += LinearExpr::constant(2);
  LinSystem sub = sys.substitute(kY, repl);
  for (long x = kLo; x <= kHi; ++x) {
    bool in_orig = points(sys).count({x, x + 2}) != 0;
    LinSystem probe = sub;
    LinearExpr e = LinearExpr::var(kX);
    e += LinearExpr::constant(-x);
    probe.add_eq(std::move(e));
    bool in_sub = !probe.is_empty();
    if (x + 2 >= kLo && x + 2 <= kHi) {
      EXPECT_EQ(in_orig, in_sub) << "x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PolyProperty, ::testing::Range(1u, 40u));

}  // namespace
}  // namespace suifx::poly
