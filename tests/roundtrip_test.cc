// Printer/parser round-trip over every benchmark program: printing the
// parsed IR and re-parsing it must reach a fixed point, and the re-parsed
// program must execute to the same outputs.
#include <gtest/gtest.h>

#include "benchsuite/suite.h"
#include "dynamic/interp.h"
#include "frontend/parser.h"
#include "ir/printer.h"

namespace suifx {
namespace {

class RoundTrip
    : public ::testing::TestWithParam<const benchsuite::BenchProgram*> {};

TEST_P(RoundTrip, PrintParseFixedPoint) {
  Diag diag;
  auto prog = frontend::parse_program(GetParam()->source, diag);
  ASSERT_NE(prog, nullptr) << diag.str();
  std::string once = ir::to_string(*prog);
  Diag diag2;
  auto prog2 = frontend::parse_program(once, diag2);
  ASSERT_NE(prog2, nullptr) << diag2.str();
  EXPECT_EQ(ir::to_string(*prog2), once);
}

TEST_P(RoundTrip, ReparsedProgramComputesSameOutputs) {
  Diag diag;
  auto prog = frontend::parse_program(GetParam()->source, diag);
  ASSERT_NE(prog, nullptr);
  auto prog2 = frontend::parse_program(ir::to_string(*prog), diag);
  ASSERT_NE(prog2, nullptr) << diag.str();

  auto run = [&](ir::Program& p) {
    dynamic::Interpreter interp(p);
    interp.set_inputs(GetParam()->inputs);
    return interp.run();
  };
  dynamic::RunResult a = run(*prog);
  dynamic::RunResult b = run(*prog2);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  ASSERT_EQ(a.printed.size(), b.printed.size());
  for (size_t i = 0; i < a.printed.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.printed[i], b.printed[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, RoundTrip,
    ::testing::Values(&benchsuite::mdg(), &benchsuite::arc3d(),
                      &benchsuite::hydro(), &benchsuite::flo88(),
                      &benchsuite::hydro2d(), &benchsuite::wave5(),
                      &benchsuite::flo88_fused(), &benchsuite::kernel_embar(),
                      &benchsuite::kernel_bdna(), &benchsuite::kernel_dyfesm(),
                      &benchsuite::kernel_su2cor(), &benchsuite::kernel_tomcatv(),
                      &benchsuite::kernel_ora(), &benchsuite::kernel_arc2d(),
                      &benchsuite::kernel_adm(), &benchsuite::kernel_qcd(),
                      &benchsuite::kernel_trfd(), &benchsuite::kernel_mg3d()),
    [](const ::testing::TestParamInfo<const benchsuite::BenchProgram*>& info) {
      std::string n = info.param->name;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

}  // namespace
}  // namespace suifx
