// Tests for the memory-performance advisor (§7.5.1 extension).
#include <gtest/gtest.h>

#include "analysis/memadvisor.h"
#include "benchsuite/suite.h"
#include "explorer/workbench.h"
#include "ir/printer.h"
#include "simulator/smp.h"

namespace suifx::analysis {
namespace {

TEST(MemAdvisor, FindsHydroTransposeConflict) {
  const benchsuite::BenchProgram& bp = benchsuite::hydro();
  Diag diag;
  auto wb = explorer::Workbench::from_source(bp.source, diag);
  ASSERT_NE(wb, nullptr);
  parallelizer::Assertions asserts;
  for (const benchsuite::UserAssertion& ua : bp.user_input) {
    asserts.privatize[wb->loop(ua.loop)].insert(
        wb->alias().canonical(wb->var(ua.var)));
  }
  auto plan = wb->plan(asserts);
  sim::SmpSimulator simulator(wb->program(), wb->dataflow(), wb->regions());
  auto advice = advise_memory_opts(wb->program(), wb->dataflow(),
                                   simulator.outermost_parallel(plan));
  bool duac_transpose = false;
  for (const MemAdvice& a : advice) {
    if (a.kind == MemAdviceKind::ArrayTranspose && a.array->name == "duac") {
      duac_transpose = true;
      EXPECT_GE(a.conflict_loops.size(), 2u);
    }
  }
  EXPECT_TRUE(duac_transpose);
}

TEST(MemAdvisor, FlagsMisStridedInnerLoop) {
  const char* src = R"(
program p;
param N = 40;
global real a[40, 40];
proc main() {
  do i = 1, N label 10 {
    do j = 1, N label 20 {
      a[i, j] = real(i + j);
    }
  }
  print a[2, 2];
}
)";
  Diag diag;
  auto wb = explorer::Workbench::from_source(src, diag);
  ASSERT_NE(wb, nullptr);
  auto plan = wb->plan();
  sim::SmpSimulator simulator(wb->program(), wb->dataflow(), wb->regions());
  auto advice = advise_memory_opts(wb->program(), wb->dataflow(),
                                   simulator.outermost_parallel(plan));
  // Inner loop j walks dimension 1 (non-contiguous in column-major).
  bool flagged = false;
  for (const MemAdvice& a : advice) {
    if (a.kind == MemAdviceKind::LoopInterchange && a.loop != nullptr &&
        a.loop->loop_name() == "main/20") {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(MemAdvisor, SilentOnWellStridedCode) {
  const char* src = R"(
program p;
param N = 40;
global real a[40, 40];
proc main() {
  do j = 1, N label 10 {
    do i = 1, N label 20 {
      a[i, j] = real(i + j);
    }
  }
  print a[2, 2];
}
)";
  Diag diag;
  auto wb = explorer::Workbench::from_source(src, diag);
  ASSERT_NE(wb, nullptr);
  auto plan = wb->plan();
  sim::SmpSimulator simulator(wb->program(), wb->dataflow(), wb->regions());
  auto advice = advise_memory_opts(wb->program(), wb->dataflow(),
                                   simulator.outermost_parallel(plan));
  EXPECT_TRUE(advice.empty());
}

TEST(MemAdvisor, StridePenaltyLowersSimulatedSpeedup) {
  const benchsuite::BenchProgram& bp = benchsuite::arc3d();
  Diag diag;
  auto wb = explorer::Workbench::from_source(bp.source, diag);
  ASSERT_NE(wb, nullptr);
  auto plan = wb->plan();
  dynamic::Interpreter interp(wb->program());
  interp.set_inputs(bp.inputs);
  dynamic::LoopProfiler prof;
  interp.add_hook(&prof);
  ASSERT_TRUE(interp.run().ok);
  sim::SmpSimulator simulator(wb->program(), wb->dataflow(), wb->regions());
  sim::SimOptions plain;
  plain.nproc = 8;
  sim::SimOptions penalized = plain;
  for (const ir::Stmt* loop : simulator.outermost_parallel(plan)) {
    penalized.stride_penalty[loop] = 1.5;
  }
  EXPECT_LE(simulator.simulate(plan, prof, penalized).speedup,
            simulator.simulate(plan, prof, plain).speedup);
}

}  // namespace
}  // namespace suifx::analysis
