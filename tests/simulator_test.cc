// Tests for the SMP simulator: outermost-parallel selection, speedup
// behavior, runtime suppression of fine-grain loops, reduction overhead
// modes, and decomposition-conflict detection.
#include <gtest/gtest.h>

#include "benchsuite/suite.h"
#include "dynamic/profile.h"
#include "explorer/workbench.h"
#include "simulator/smp.h"

namespace suifx::sim {
namespace {

struct Simmed {
  std::unique_ptr<explorer::Workbench> wb;
  parallelizer::ParallelPlan plan;
  dynamic::LoopProfiler prof;
  std::unique_ptr<SmpSimulator> simulator;
};

Simmed prepare(const char* src, const dynamic::Inputs& inputs = {}) {
  Simmed s;
  Diag diag;
  s.wb = explorer::Workbench::from_source(src, diag);
  EXPECT_NE(s.wb, nullptr) << diag.str();
  s.plan = s.wb->plan();
  dynamic::Interpreter interp(s.wb->program());
  interp.set_inputs(inputs);
  interp.add_hook(&s.prof);
  EXPECT_TRUE(interp.run().ok);
  s.simulator = std::make_unique<SmpSimulator>(s.wb->program(), s.wb->dataflow(),
                                               s.wb->regions());
  return s;
}

const char* kCoarse = R"(
program c;
param N = 200;
global real a[200, 200];
proc main() {
  do i = 1, N label 10 {
    do j = 1, N label 20 {
      a[i, j] = real(i) * 0.5 + real(j);
    }
  }
  print a[5, 5];
}
)";

TEST(Simulator, OutermostParallelPicksOuterLoop) {
  Simmed s = prepare(kCoarse);
  auto chosen = s.simulator->outermost_parallel(s.plan);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0]->loop_name(), "main/10");
}

TEST(Simulator, SpeedupGrowsWithProcessors) {
  Simmed s = prepare(kCoarse);
  double prev = 0.0;
  for (int p : {1, 2, 4, 8}) {
    SimOptions opts;
    opts.nproc = p;
    SimResult r = s.simulator->simulate(s.plan, s.prof, opts);
    EXPECT_GE(r.speedup, prev - 1e-9);
    prev = r.speedup;
  }
  SimOptions opts;
  opts.nproc = 8;
  SimResult r = s.simulator->simulate(s.plan, s.prof, opts);
  EXPECT_GT(r.speedup, 5.0);
  EXPECT_LE(r.speedup, 8.0 + 1e-9);
}

TEST(Simulator, FineGrainLoopIsSuppressed) {
  Simmed s = prepare(R"(
program f;
global real a[8];
proc main() {
  do rep = 1, 400 label 5 {
    do i = 1, 8 label 10 {
      a[i] = a[i] * 0.5 + real(rep);
    }
  }
  print a[1];
}
)");
  // Loop 10 is parallelizable but tiny; loop 5 carries a dependence on a.
  SimOptions opts;
  opts.nproc = 8;
  SimResult r = s.simulator->simulate(s.plan, s.prof, opts);
  bool any_parallel_run = false;
  for (const LoopSim& ls : r.loops) any_parallel_run |= ls.ran_parallel;
  EXPECT_FALSE(any_parallel_run);
  EXPECT_NEAR(r.speedup, 1.0, 0.05);
}

TEST(Simulator, InterproceduralNestingSuppresssCalleeLoops) {
  Simmed s = prepare(R"(
program n;
param N = 64;
global real a[64, 64];
proc inner(int i) {
  do j = 1, N label 20 {
    a[i, j] = real(i + j);
  }
}
proc main() {
  do i = 1, N label 10 {
    call inner(i);
  }
  print a[2, 2];
}
)");
  auto chosen = s.simulator->outermost_parallel(s.plan);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0]->loop_name(), "main/10");  // inner/20 runs serially
}

TEST(Simulator, SerializedFinalizationCostsMore) {
  Simmed s = prepare(R"(
program r;
param N = 2000;
global real w[2000] input;
global real hist[512];
global int ind[2000] input;
proc main() {
  do i = 1, N label 10 {
    hist[ind[i]] = hist[ind[i]] + w[i];
  }
  print hist[1];
}
)",
                    [] {
                      dynamic::Inputs in;
                      std::vector<double> ind;
                      for (int i = 0; i < 2000; ++i) ind.push_back(1 + (i * 13) % 512);
                      in.arrays["ind"] = ind;
                      return in;
                    }());
  SimOptions stag;
  stag.nproc = 8;
  stag.staggered_finalization = true;
  SimOptions serial = stag;
  serial.staggered_finalization = false;
  double s_stag = s.simulator->simulate(s.plan, s.prof, stag).speedup;
  double s_serial = s.simulator->simulate(s.plan, s.prof, serial).speedup;
  EXPECT_GE(s_stag, s_serial);
}

TEST(Simulator, CommFloorCapsScalabilityUntilContraction) {
  Simmed s = prepare(kCoarse);
  ir::Stmt* loop = s.wb->loop("main/10");
  SimOptions opts;
  opts.nproc = 32;
  opts.machine = MachineConfig::sgi_origin();
  opts.comm_elem_cost = 8.0;
  double capped = s.simulator->simulate(s.plan, s.prof, opts).speedup;

  SimOptions contracted = opts;
  analysis::ContractedArray ca;
  ca.var = s.wb->var("a");
  ca.original_elems = 200 * 200;
  ca.contracted_elems = 200;
  ca.collapsed_dims = 1;
  contracted.contractions[loop] = {ca};
  double freed = s.simulator->simulate(s.plan, s.prof, contracted).speedup;
  EXPECT_GT(freed, capped * 1.5);
}

TEST(Simulator, HydroDecompositionConflictDetected) {
  const benchsuite::BenchProgram& bp = benchsuite::hydro();
  Diag diag;
  auto wb = explorer::Workbench::from_source(bp.source, diag);
  ASSERT_NE(wb, nullptr);
  parallelizer::Assertions asserts;
  for (const benchsuite::UserAssertion& ua : bp.user_input) {
    asserts.privatize[wb->loop(ua.loop)].insert(
        wb->alias().canonical(wb->var(ua.var)));
  }
  auto plan = wb->plan(asserts);
  SmpSimulator simulator(wb->program(), wb->dataflow(), wb->regions());
  auto chosen = simulator.outermost_parallel(plan);
  auto conflicts = analyze_decomposition_conflicts(wb->program(), wb->dataflow(),
                                                   plan, chosen, false);
  // duac is written column-wise by vsetuv and row-wise by vqterm.
  EXPECT_FALSE(conflicts.empty());
}

TEST(Machine, ConfigsAreDistinct) {
  EXPECT_EQ(MachineConfig::alpha_server_8400().max_procs, 8);
  EXPECT_EQ(MachineConfig::sgi_challenge().max_procs, 4);
  EXPECT_EQ(MachineConfig::sgi_origin().max_procs, 32);
  EXPECT_NE(MachineConfig::sgi_origin().summary(),
            MachineConfig::sgi_challenge().summary());
}

}  // namespace
}  // namespace suifx::sim
