// Frontend tests: lexing, parsing, semantic errors, and print/parse
// round-tripping.
#include <gtest/gtest.h>

#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "ir/printer.h"

namespace suifx::frontend {
namespace {

const char* kHydroish = R"(
program hydroish;
param LMAX = 50;
global real duac[60, 60];
global int k_lower[60] input;
global int k_upper[60] input;

proc init(real q[n], int n) {
  do j = 1, n {
    q[j] = 0.5;
  }
}

proc vsetuv() {
  real dkrc[200];
  int k1;
  int k2;
  int k1p1;
  do l = 2, LMAX label 85 {
    k1 = k_lower[l];
    k2 = k_upper[l];
    if (k1 == 0) {
      k1 = 1;
    }
    k1p1 = k1;
    if (k1 == 1) {
      k1p1 = k1 + 1;
    }
    do k = k1p1, k2 + 1 label 60 {
      dkrc[k] = 1.0 * k;
    }
    do k = k1, k2 label 80 {
      duac[k, l] = dkrc[k] + dkrc[k + 1];
    }
  }
}

proc main() {
  call vsetuv();
  print duac[3, 3];
}
)";

TEST(Lexer, TokensAndComments) {
  Diag diag;
  auto toks = lex("do i = 1, 10 { // trailing\n a[i] = 2.5e1; }", diag);
  ASSERT_FALSE(diag.has_errors());
  EXPECT_EQ(toks[0].kind, Tok::KwDo);
  EXPECT_EQ(toks[1].kind, Tok::Ident);
  EXPECT_EQ(toks[1].text, "i");
  // Find the real literal.
  bool found_real = false;
  for (const auto& t : toks) {
    if (t.kind == Tok::RealLit) {
      EXPECT_DOUBLE_EQ(t.rval, 25.0);
      found_real = true;
    }
  }
  EXPECT_TRUE(found_real);
  EXPECT_EQ(toks.back().kind, Tok::End);
}

TEST(Lexer, TracksLines) {
  Diag diag;
  auto toks = lex("a\nbb\n  c", diag);
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[2].loc.line, 3);
  EXPECT_EQ(toks[2].loc.col, 3);
}

TEST(Parser, ParsesHydroish) {
  Diag diag;
  auto prog = parse_program(kHydroish, diag);
  ASSERT_NE(prog, nullptr) << diag.str();
  EXPECT_EQ(prog->name(), "hydroish");
  ASSERT_NE(prog->main(), nullptr);
  EXPECT_EQ(prog->main()->name, "main");
  ir::Procedure* vs = prog->find_procedure("vsetuv");
  ASSERT_NE(vs, nullptr);
  auto loops = vs->loops();
  ASSERT_EQ(loops.size(), 3u);
  EXPECT_EQ(loops[0]->loop_name(), "vsetuv/85");
  EXPECT_EQ(loops[1]->loop_name(), "vsetuv/60");
  // Loop indices were auto-declared.
  EXPECT_NE(vs->find_var("l"), nullptr);
  EXPECT_EQ(vs->find_var("l")->elem, ir::ScalarType::Int);
}

TEST(Parser, AdjustableFormalArray) {
  Diag diag;
  auto prog = parse_program(kHydroish, diag);
  ASSERT_NE(prog, nullptr) << diag.str();
  ir::Procedure* init = prog->find_procedure("init");
  ASSERT_NE(init, nullptr);
  ASSERT_EQ(init->formals.size(), 2u);
  EXPECT_TRUE(init->formals[0]->is_array());
  // q's bound references the formal n.
  const ir::Expr* ub = init->formals[0]->dims[0].upper;
  ASSERT_EQ(ub->kind, ir::ExprKind::VarRef);
  EXPECT_EQ(ub->var, init->formals[1]);
}

TEST(Parser, RoundTripsThroughPrinter) {
  Diag diag;
  auto prog = parse_program(kHydroish, diag);
  ASSERT_NE(prog, nullptr) << diag.str();
  std::string printed = ir::to_string(*prog);
  Diag diag2;
  auto prog2 = parse_program(printed, diag2);
  ASSERT_NE(prog2, nullptr) << diag2.str() << "\n--- printed ---\n" << printed;
  // Second round trip must be a fixed point.
  EXPECT_EQ(ir::to_string(*prog2), printed);
}

TEST(Parser, RejectsUnknownVariable) {
  Diag diag;
  auto prog = parse_program("program p; proc main() { x = 1; }", diag);
  EXPECT_EQ(prog, nullptr);
  EXPECT_NE(diag.str().find("unknown variable 'x'"), std::string::npos);
}

TEST(Parser, RejectsUnknownCallee) {
  Diag diag;
  auto prog = parse_program("program p; proc main() { call nope(); }", diag);
  EXPECT_EQ(prog, nullptr);
  EXPECT_NE(diag.str().find("unknown procedure"), std::string::npos);
}

TEST(Parser, RejectsArityMismatch) {
  Diag diag;
  auto prog = parse_program(
      "program p; proc f(int x) { x = x; } proc main() { call f(); }", diag);
  EXPECT_EQ(prog, nullptr);
  EXPECT_NE(diag.str().find("passes 0 args"), std::string::npos);
}

TEST(Parser, ParsesCommonOverlays) {
  const char* src = R"(
program c;
proc trans2() {
  common varh real vz1[100];
  do i = 1, 100 { vz1[i] = 1.0; }
}
proc tistep() {
  common varh real vz[100];
  do i = 1, 100 { print vz[i]; }
}
proc main() { call trans2(); call tistep(); }
)";
  Diag diag;
  auto prog = parse_program(src, diag);
  ASSERT_NE(prog, nullptr) << diag.str();
  ASSERT_EQ(prog->commons().size(), 1u);
  EXPECT_EQ(prog->commons().front().name, "varh");
  EXPECT_EQ(prog->commons().front().size_elems, 100);
}

TEST(Parser, ParsesIntrinsicsAndCasts) {
  const char* src = R"(
program i;
proc main() {
  real x;
  int k;
  x = sqrt(abs(-2.0)) + min(1.0, 2.0) + max(3.0, 4.0) + exp(0.0) + log(1.0);
  k = int(x) % 3;
  x = real(k) / 2.0;
}
)";
  Diag diag;
  auto prog = parse_program(src, diag);
  ASSERT_NE(prog, nullptr) << diag.str();
}

}  // namespace
}  // namespace suifx::frontend
