// Frontend tests: lexing, parsing, semantic errors, and print/parse
// round-tripping.
#include <gtest/gtest.h>

#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "ir/printer.h"

namespace suifx::frontend {
namespace {

const char* kHydroish = R"(
program hydroish;
param LMAX = 50;
global real duac[60, 60];
global int k_lower[60] input;
global int k_upper[60] input;

proc init(real q[n], int n) {
  do j = 1, n {
    q[j] = 0.5;
  }
}

proc vsetuv() {
  real dkrc[200];
  int k1;
  int k2;
  int k1p1;
  do l = 2, LMAX label 85 {
    k1 = k_lower[l];
    k2 = k_upper[l];
    if (k1 == 0) {
      k1 = 1;
    }
    k1p1 = k1;
    if (k1 == 1) {
      k1p1 = k1 + 1;
    }
    do k = k1p1, k2 + 1 label 60 {
      dkrc[k] = 1.0 * k;
    }
    do k = k1, k2 label 80 {
      duac[k, l] = dkrc[k] + dkrc[k + 1];
    }
  }
}

proc main() {
  call vsetuv();
  print duac[3, 3];
}
)";

TEST(Lexer, TokensAndComments) {
  Diag diag;
  auto toks = lex("do i = 1, 10 { // trailing\n a[i] = 2.5e1; }", diag);
  ASSERT_FALSE(diag.has_errors());
  EXPECT_EQ(toks[0].kind, Tok::KwDo);
  EXPECT_EQ(toks[1].kind, Tok::Ident);
  EXPECT_EQ(toks[1].text, "i");
  // Find the real literal.
  bool found_real = false;
  for (const auto& t : toks) {
    if (t.kind == Tok::RealLit) {
      EXPECT_DOUBLE_EQ(t.rval, 25.0);
      found_real = true;
    }
  }
  EXPECT_TRUE(found_real);
  EXPECT_EQ(toks.back().kind, Tok::End);
}

TEST(Lexer, TracksLines) {
  Diag diag;
  auto toks = lex("a\nbb\n  c", diag);
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[2].loc.line, 3);
  EXPECT_EQ(toks[2].loc.col, 3);
}

TEST(Parser, ParsesHydroish) {
  Diag diag;
  auto prog = parse_program(kHydroish, diag);
  ASSERT_NE(prog, nullptr) << diag.str();
  EXPECT_EQ(prog->name(), "hydroish");
  ASSERT_NE(prog->main(), nullptr);
  EXPECT_EQ(prog->main()->name, "main");
  ir::Procedure* vs = prog->find_procedure("vsetuv");
  ASSERT_NE(vs, nullptr);
  auto loops = vs->loops();
  ASSERT_EQ(loops.size(), 3u);
  EXPECT_EQ(loops[0]->loop_name(), "vsetuv/85");
  EXPECT_EQ(loops[1]->loop_name(), "vsetuv/60");
  // Loop indices were auto-declared.
  EXPECT_NE(vs->find_var("l"), nullptr);
  EXPECT_EQ(vs->find_var("l")->elem, ir::ScalarType::Int);
}

TEST(Parser, AdjustableFormalArray) {
  Diag diag;
  auto prog = parse_program(kHydroish, diag);
  ASSERT_NE(prog, nullptr) << diag.str();
  ir::Procedure* init = prog->find_procedure("init");
  ASSERT_NE(init, nullptr);
  ASSERT_EQ(init->formals.size(), 2u);
  EXPECT_TRUE(init->formals[0]->is_array());
  // q's bound references the formal n.
  const ir::Expr* ub = init->formals[0]->dims[0].upper;
  ASSERT_EQ(ub->kind, ir::ExprKind::VarRef);
  EXPECT_EQ(ub->var, init->formals[1]);
}

TEST(Parser, RoundTripsThroughPrinter) {
  Diag diag;
  auto prog = parse_program(kHydroish, diag);
  ASSERT_NE(prog, nullptr) << diag.str();
  std::string printed = ir::to_string(*prog);
  Diag diag2;
  auto prog2 = parse_program(printed, diag2);
  ASSERT_NE(prog2, nullptr) << diag2.str() << "\n--- printed ---\n" << printed;
  // Second round trip must be a fixed point.
  EXPECT_EQ(ir::to_string(*prog2), printed);
}

TEST(Parser, RejectsUnknownVariable) {
  Diag diag;
  auto prog = parse_program("program p; proc main() { x = 1; }", diag);
  EXPECT_EQ(prog, nullptr);
  EXPECT_NE(diag.str().find("unknown variable 'x'"), std::string::npos);
}

TEST(Parser, RejectsUnknownCallee) {
  Diag diag;
  auto prog = parse_program("program p; proc main() { call nope(); }", diag);
  EXPECT_EQ(prog, nullptr);
  EXPECT_NE(diag.str().find("unknown procedure"), std::string::npos);
}

TEST(Parser, RejectsArityMismatch) {
  Diag diag;
  auto prog = parse_program(
      "program p; proc f(int x) { x = x; } proc main() { call f(); }", diag);
  EXPECT_EQ(prog, nullptr);
  EXPECT_NE(diag.str().find("passes 0 args"), std::string::npos);
}

TEST(Parser, ParsesCommonOverlays) {
  const char* src = R"(
program c;
proc trans2() {
  common varh real vz1[100];
  do i = 1, 100 { vz1[i] = 1.0; }
}
proc tistep() {
  common varh real vz[100];
  do i = 1, 100 { print vz[i]; }
}
proc main() { call trans2(); call tistep(); }
)";
  Diag diag;
  auto prog = parse_program(src, diag);
  ASSERT_NE(prog, nullptr) << diag.str();
  ASSERT_EQ(prog->commons().size(), 1u);
  EXPECT_EQ(prog->commons().front().name, "varh");
  EXPECT_EQ(prog->commons().front().size_elems, 100);
}

TEST(Parser, ParsesIntrinsicsAndCasts) {
  const char* src = R"(
program i;
proc main() {
  real x;
  int k;
  x = sqrt(abs(-2.0)) + min(1.0, 2.0) + max(3.0, 4.0) + exp(0.0) + log(1.0);
  k = int(x) % 3;
  x = real(k) / 2.0;
}
)";
  Diag diag;
  auto prog = parse_program(src, diag);
  ASSERT_NE(prog, nullptr) << diag.str();
}

// --- panic-mode error recovery ---------------------------------------------
// Malformed inputs must produce diagnostics, never a crash or a hang, and
// recovery must resynchronize: independent errors each get reported.

TEST(ParserRecovery, MalformedInputsNeverCrash) {
  struct Case {
    const char* name;
    const char* src;
    // A substring every case must put in the diagnostics ("" = any error).
    const char* expect;
  };
  const Case kCases[] = {
      {"empty", "", ""},
      {"garbage", "@#! 12 )(", ""},
      {"stray_top_level", "program p; 42 proc main() { }", "expected 'param'"},
      {"missing_assign", "program p; proc main() { int x; x 1; }", "'='"},
      {"missing_semi",
       "program p; proc main() { int x; x = 1 x = 2; }", "';'"},
      {"unclosed_paren", "program p; proc main() { int x; x = (1; }", "')'"},
      {"bad_subscript",
       "program p; proc main() { real a[10]; a[ = 1; }", "expression"},
      {"unknown_call_args_skipped",
       "program p; proc main() { call nope(1, 2); }", "unknown procedure"},
      {"bad_formal", "program p; proc f(int) { } proc main() { }", "formal"},
      {"proc_name_missing", "program p; proc (int x) { }", "procedure name"},
      {"decl_without_name", "program p; proc main() { int ; }", "local name"},
      {"do_missing_bounds", "program p; proc main() { do i = { } }",
       "expression"},
      {"unbalanced_brace", "program p; proc main() { if (1) { x = 1; }",
       ""},
      {"two_independent_errors",
       "program p; proc main() { int x; x = ; y = 1; }", "unknown variable 'y'"},
  };
  for (const Case& c : kCases) {
    Diag diag;
    auto prog = parse_program(c.src, diag);
    EXPECT_EQ(prog, nullptr) << c.name;
    EXPECT_TRUE(diag.has_errors()) << c.name;
    if (c.expect[0] != '\0') {
      EXPECT_NE(diag.str().find(c.expect), std::string::npos)
          << c.name << ": diagnostics were:\n"
          << diag.str();
    }
  }
}

TEST(ParserRecovery, TruncatedSourceNeverCrashes) {
  // Every prefix of a valid program must parse without crashing or hanging
  // (most prefixes are errors; that is fine).
  const std::string src =
      "program p; param N = 8; global real a[8];\n"
      "proc f(real q[n], int n) { do j = 1, n { q[j] = 0.5; } }\n"
      "proc main() { int x; x = 1; if (x < 3) { call f(a, 8); } }\n";
  for (size_t len = 0; len <= src.size(); ++len) {
    Diag diag;
    auto prog = parse_program(src.substr(0, len), diag);
    if (len == src.size()) {
      EXPECT_NE(prog, nullptr) << diag.str();
    }
  }
}

TEST(ParserRecovery, ErrorCapSuppressesCascade) {
  // A pathological input with an unbounded number of errors stops at the cap.
  std::string src = "program p; proc main() {";
  for (int i = 0; i < 100; ++i) src += " q = 1;";
  src += " }";
  Diag diag;
  ParseOptions opts;
  opts.max_errors = 5;
  auto prog = parse_program(src, diag, opts);
  EXPECT_EQ(prog, nullptr);
  EXPECT_LE(diag.error_count(), 5);
  EXPECT_NE(diag.str().find("further diagnostics suppressed"),
            std::string::npos);
}

TEST(ParserRecovery, RecoveryKeepsLaterDiagnostics) {
  // The statement after a malformed one is still checked: panic-mode resync
  // reaches it instead of aborting the parse.
  Diag diag;
  auto prog = parse_program(
      "program p; proc main() { int x; x = + ; x = 2; call ghost(); }", diag);
  EXPECT_EQ(prog, nullptr);
  EXPECT_NE(diag.str().find("unknown procedure 'ghost'"), std::string::npos);
}

}  // namespace
}  // namespace suifx::frontend
